package csce_test

import (
	"strings"
	"testing"

	"csce"
)

func socialGraph(t *testing.T) *csce.Graph {
	t.Helper()
	g, err := csce.ParseGraph(strings.NewReader(`
t directed
v 0 Person
v 1 Person
v 2 Person
v 3 Person
e 0 1 knows
e 1 2 knows
e 2 0 knows
e 2 3 knows
`))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseQueryPublicAPI(t *testing.T) {
	g := socialGraph(t)
	engine := csce.NewEngine(g)
	p, vars, err := csce.ParseQuery(
		"MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person)-[:knows]->(a)", g)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
	n, err := engine.Count(p, csce.Homomorphic)
	if err != nil {
		t.Fatal(err)
	}
	// One directed 3-cycle, counted once per rotation start.
	if n != 3 {
		t.Fatalf("cycle query matched %d times, want 3", n)
	}
	if _, _, err := csce.ParseQuery("MATCH (a)-->(b)", g); err == nil {
		t.Fatal("unlabeled node on a labeled graph must error")
	}
}

func TestDeltaMatchingPublicAPI(t *testing.T) {
	g := socialGraph(t)
	engine := csce.NewEngine(g)
	p, _, err := csce.ParseQuery("MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person)", g)
	if err != nil {
		t.Fatal(err)
	}
	before, err := engine.Count(p, csce.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	knows := g.Names.Edge("knows")
	ins := csce.DeltaEdge{Src: 3, Dst: 0, Label: knows}
	if err := engine.InsertEdge(ins.Src, ins.Dst, ins.Label); err != nil {
		t.Fatal(err)
	}
	delta, err := csce.NewEmbeddings(engine, p, ins, csce.DeltaOptions{Variant: csce.EdgeInduced})
	if err != nil {
		t.Fatal(err)
	}
	after, err := engine.Count(p, csce.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	if before+delta != after {
		t.Fatalf("delta accounting: %d + %d != %d", before, delta, after)
	}
	// Mirror image for the deletion.
	removed, err := csce.RemovedEmbeddings(engine, p, ins, csce.DeltaOptions{Variant: csce.EdgeInduced})
	if err != nil {
		t.Fatal(err)
	}
	if removed != delta {
		t.Fatalf("removed (%d) != inserted delta (%d)", removed, delta)
	}
	if err := engine.DeleteEdge(ins.Src, ins.Dst, ins.Label); err != nil {
		t.Fatal(err)
	}
	restored, err := engine.Count(p, csce.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	if restored != before {
		t.Fatalf("delete did not restore the count: %d vs %d", restored, before)
	}
}

func TestHigherOrderPublicAPI(t *testing.T) {
	g, err := csce.ParseGraph(strings.NewReader(`
t undirected
v 0 P
v 1 P
v 2 P
v 3 P
e 0 1
e 1 2
e 0 2
e 2 3
`))
	if err != nil {
		t.Fatal(err)
	}
	engine := csce.NewEngine(g)
	tri := csce.Clique(3, g.Names.Vertex("P"))
	weights, instances, err := engine.BuildHigherOrder(tri, csce.HigherOrderOptions{
		Variant:              csce.EdgeInduced,
		CountAutomorphicOnce: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if instances != 1 {
		t.Fatalf("triangle instances = %d, want 1", instances)
	}
	if weights.Weight(0, 1) != 1 || weights.Weight(2, 3) != 0 {
		t.Fatalf("weights wrong: %v", weights)
	}
}

func TestParallelWorkersPublicAPI(t *testing.T) {
	g := socialGraph(t)
	engine := csce.NewEngine(g)
	p, _, err := csce.ParseQuery("MATCH (a:Person)-[:knows]->(b:Person)", g)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := engine.Match(p, csce.MatchOptions{Variant: csce.EdgeInduced})
	if err != nil {
		t.Fatal(err)
	}
	par, err := engine.Match(p, csce.MatchOptions{Variant: csce.EdgeInduced, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Embeddings != par.Embeddings {
		t.Fatalf("parallel count %d != sequential %d", par.Embeddings, seq.Embeddings)
	}
}

// Package csce is a from-scratch Go implementation of CSCE — "Large
// Subgraph Matching: A Comprehensive and Efficient Approach for
// Heterogeneous Graphs" (ICDE 2024): subgraph matching for large patterns
// (8–2000 vertices) on heterogeneous graphs, supporting the edge-induced,
// vertex-induced, and homomorphic variants.
//
// The engine combines two ideas from the paper:
//
//   - CCSR (Clustered Compressed Sparse Row): the data graph is clustered
//     offline into edge-isomorphism classes so candidate lookup is a direct
//     index access instead of repeated label matching;
//   - SCE (Sequential Candidate Equivalence): a dependency DAG over the
//     matching order reveals which candidate sets are independent of
//     earlier mappings and can be reused instead of recomputed.
//
// Basic use:
//
//	g, _ := csce.ParseGraph(dataReader)
//	engine := csce.NewEngine(g)                 // offline clustering, reusable
//	p, _ := csce.ParsePattern(patternReader, g) // shares g's label table
//	res, _ := engine.Match(p, csce.MatchOptions{Variant: csce.EdgeInduced})
//	fmt.Println(res.Embeddings)
//
// This package is a thin facade; the implementation lives in the internal
// packages (graph model, ccsr index, plan optimizer, join executor,
// baselines, datasets, and the experiment harness that regenerates every
// table and figure of the paper — see DESIGN.md and EXPERIMENTS.md).
package csce

import (
	"io"

	"csce/internal/core"
	"csce/internal/delta"
	"csce/internal/graph"
	"csce/internal/plan"
	"csce/internal/query"
)

// Re-exported graph model types.
type (
	// Graph is an immutable heterogeneous graph (data graph or pattern).
	Graph = graph.Graph
	// Builder constructs graphs programmatically.
	Builder = graph.Builder
	// LabelTable interns symbolic label names; a pattern must share its
	// data graph's table.
	LabelTable = graph.LabelTable
	// VertexID identifies a vertex (dense, starting at 0).
	VertexID = graph.VertexID
	// Label is an interned vertex label.
	Label = graph.Label
	// EdgeLabel is an interned edge label (0 = unlabeled).
	EdgeLabel = graph.EdgeLabel
	// Variant selects the subgraph-matching semantics.
	Variant = graph.Variant
	// Stats summarizes a graph like the paper's Table IV.
	Stats = graph.Stats
)

// The three subgraph-matching variants (Section II of the paper).
const (
	EdgeInduced   = graph.EdgeInduced
	VertexInduced = graph.VertexInduced
	Homomorphic   = graph.Homomorphic
)

// Engine types.
type (
	// Engine owns a clustered data graph and answers matching tasks.
	Engine = core.Engine
	// MatchOptions configures one matching task.
	MatchOptions = core.MatchOptions
	// MatchResult reports embeddings plus per-stage timings.
	MatchResult = core.MatchResult
	// Plan is an optimized matching order with its dependency DAG and SCE
	// statistics.
	Plan = plan.Plan
	// PlanMode selects the optimization pipeline (full CSCE or ablations).
	PlanMode = plan.Mode
)

// Plan modes for MatchOptions.Mode (Fig. 13 ablations).
const (
	PlanCSCE      = plan.ModeCSCE
	PlanRI        = plan.ModeRI
	PlanRICluster = plan.ModeRICluster
	PlanRM        = plan.ModeRM
	// PlanCostBased is the extension heuristic: cluster-statistics cost
	// model plus LDSF (see plan.CostBasedOrder).
	PlanCostBased = plan.ModeCostBased
)

// NewEngine clusters the data graph into CCSR form (the offline stage).
func NewEngine(g *Graph) *Engine { return core.NewEngine(g) }

// LoadEngine reads an engine previously serialized with Engine.Save.
func LoadEngine(r io.Reader) (*Engine, error) { return core.Load(r) }

// NewBuilder returns a graph builder (directed or undirected).
func NewBuilder(directed bool) *Builder { return graph.NewBuilder(directed) }

// NewLabelTable returns an empty label-interning table.
func NewLabelTable() *LabelTable { return graph.NewLabelTable() }

// ParseGraph reads a data graph in the text edge-list format:
//
//	t directed|undirected
//	v <id> <label>
//	e <src> <dst> [edgeLabel]
func ParseGraph(r io.Reader) (*Graph, error) { return graph.Parse(r) }

// ParsePattern reads a pattern graph, interning its labels through the
// data graph's table so equal names mean equal labels.
func ParsePattern(r io.Reader, data *Graph) (*Graph, error) {
	names := data.Names
	if names == nil {
		names = graph.NewLabelTable()
	}
	return graph.ParseWith(r, names)
}

// FormatGraph writes g in the text format read by ParseGraph.
func FormatGraph(w io.Writer, g *Graph) error { return graph.Format(w, g) }

// ComputeStats gathers Table IV-style statistics for g.
func ComputeStats(name string, g *Graph) Stats { return graph.ComputeStats(name, g) }

// Clique returns an undirected k-clique pattern with every vertex labeled
// l — useful for higher-order analysis such as the paper's case study.
func Clique(k int, l Label) *Graph { return graph.Clique(k, l) }

// Higher-order graph analysis (the paper's motivating application).
type (
	// HigherOrderOptions configures Engine.BuildHigherOrder.
	HigherOrderOptions = core.HigherOrderOptions
	// PairWeights maps unordered data-vertex pairs to instance counts.
	PairWeights = core.PairWeights
)

// Continuous (delta) matching after incremental updates.
type (
	// DeltaEdge identifies a data edge for delta matching.
	DeltaEdge = delta.Edge
	// DeltaOptions bounds a delta enumeration.
	DeltaOptions = delta.Options
)

// NewEmbeddings enumerates the embeddings created by the most recent
// InsertEdge (which must already be applied to the engine). See
// internal/delta for semantics; vertex-induced matching is not supported
// because it is not monotone under edge updates.
func NewEmbeddings(e *Engine, p *Graph, inserted DeltaEdge, opts DeltaOptions) (uint64, error) {
	return delta.NewEmbeddings(e.Store(), p, inserted, opts)
}

// RemovedEmbeddings enumerates the embeddings an upcoming DeleteEdge will
// destroy; call before applying the deletion.
func RemovedEmbeddings(e *Engine, p *Graph, toDelete DeltaEdge, opts DeltaOptions) (uint64, error) {
	return delta.RemovedEmbeddings(e.Store(), p, toDelete, opts)
}

// ParseQuery compiles a Cypher-inspired MATCH query into a pattern graph
// against the data graph's labels and directedness:
//
//	MATCH (a:Person)-[:knows]->(b:Person), (b)-[:knows]->(a)
//
// The returned variable names parallel the pattern's vertex IDs.
func ParseQuery(q string, data *Graph) (*Graph, []string, error) {
	names := data.Names
	if names == nil {
		names = graph.NewLabelTable()
	}
	parsed, err := query.Parse(q, names, data.Directed())
	if err != nil {
		return nil, nil, err
	}
	return parsed.Pattern, parsed.Vars, nil
}

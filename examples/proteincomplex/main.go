// Protein-complex search: the paper's motivating workload (Section I).
// Protein complexes and functional modules appear as large subgraphs of
// protein-protein interaction networks — 8 to 360 vertices in the studies
// the paper cites. This example samples complex-sized patterns from a
// DIP-like PPI network and finds all of their occurrences, comparing the
// edge-induced and vertex-induced counts and showing how SCE candidate
// reuse behaves on large sparse patterns.
//
//	go run ./examples/proteincomplex
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"csce"
	"csce/internal/dataset"
)

func main() {
	spec, _ := dataset.ByName("DIP")
	g := spec.Generate()
	engine := csce.NewEngine(g)
	fmt.Printf("PPI network (DIP analogue): %d proteins, %d interactions\n\n",
		g.NumVertices(), g.NumEdges())

	rng := rand.New(rand.NewSource(2024))
	fmt.Printf("%-10s %-8s %-14s %-14s %-10s %-10s\n",
		"complex", "edges", "edge-induced", "vertex-induced", "time", "SCE-reuse")
	for _, size := range []int{8, 12, 16, 24} {
		// Sample a complex-shaped pattern (a connected module) of the
		// requested size from the network itself, like the paper's MIPS
		// complex protocol.
		p, err := dataset.SamplePattern(g, size, false, rng)
		if err != nil {
			log.Fatalf("sample size %d: %v", size, err)
		}
		edge, err := engine.Match(p, csce.MatchOptions{
			Variant:   csce.EdgeInduced,
			TimeLimit: 3 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		vertex, err := engine.Match(p, csce.MatchOptions{
			Variant:   csce.VertexInduced,
			TimeLimit: 3 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		reuse := "-"
		if b := edge.Exec.CandidateBuilds + edge.Exec.CandidateReuses; b > 0 {
			reuse = fmt.Sprintf("%.0f%%", 100*float64(edge.Exec.CandidateReuses)/float64(b))
		}
		note := ""
		if edge.Exec.TimedOut || vertex.Exec.TimedOut {
			note = " (timed out)"
		}
		fmt.Printf("%-10d %-8d %-14d %-14d %-10v %-10s%s\n",
			size, p.NumEdges(), edge.Embeddings, vertex.Embeddings,
			edge.Total().Round(time.Millisecond), reuse, note)
	}

	fmt.Println("\nVertex-induced counts are never larger than edge-induced counts:")
	fmt.Println("an induced complex must reproduce the pattern's exact interaction set.")
}

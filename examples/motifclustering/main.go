// Higher-order graph clustering: the paper's case study (Section VII-G).
// Members of a research institution are clustered by department from
// their email graph. Raw edges are a weak signal; 8-clique motifs — which
// CSCE enumerates quickly — concentrate inside departments and give a
// markedly better pairwise F1 score.
//
//	go run ./examples/motifclustering
package main

import (
	"fmt"
	"log"
	"time"

	"csce/internal/dataset"
	"csce/internal/motifcluster"
)

func main() {
	spec := dataset.EmailEU()
	g, truth := spec.GenerateWithCommunities()
	fmt.Printf("EMAIL-EU analogue: %d members, %d email edges, %d departments\n\n",
		g.NumVertices(), g.NumEdges(), spec.Communities)

	start := time.Now()
	res, err := motifcluster.Run(g, truth, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %-8s %-10s\n", "method", "F1", "clusters")
	fmt.Printf("%-14s %-8.3f %-10d\n", "edge-based", res.EdgeF1, res.EdgeClusters)
	fmt.Printf("%-14s %-8.3f %-10d\n", "8-clique", res.MotifF1, res.MotifClusters)
	fmt.Printf("\n8-clique instances: %d, enumerated in %v (total pipeline %v)\n",
		res.CliqueInstances, res.CliqueTime.Round(time.Millisecond),
		time.Since(start).Round(time.Millisecond))
	if res.MotifF1 > res.EdgeF1 {
		fmt.Println("higher-order clustering wins, as in the paper (0.398 -> 0.515).")
	}
}

// Quickstart: build a small heterogeneous graph, cluster it once, and
// match a triangle pattern under all three subgraph-matching variants.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"csce"
	"csce/internal/graph"
)

const data = `
t undirected
v 0 Person
v 1 Person
v 2 Person
v 3 Forum
v 4 Person
e 0 1 knows
e 1 2 knows
e 0 2 knows
e 2 4 knows
e 0 3 member
e 1 3 member
`

const pattern = `
t undirected
v 0 Person
v 1 Person
v 2 Person
e 0 1 knows
e 1 2 knows
e 0 2 knows
`

func main() {
	g, err := csce.ParseGraph(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	// Offline stage: cluster the data graph into CCSR form once; the
	// engine then serves any number of matching tasks.
	engine := csce.NewEngine(g)
	fmt.Printf("data graph: %d vertices, %d edges, %d clusters\n",
		g.NumVertices(), g.NumEdges(), engine.Store().NumClusters())

	// Patterns share the data graph's label table, so "Person" and
	// "knows" mean the same labels in both graphs.
	p, err := csce.ParsePattern(strings.NewReader(pattern), g)
	if err != nil {
		log.Fatal(err)
	}

	for _, variant := range []csce.Variant{csce.EdgeInduced, csce.VertexInduced, csce.Homomorphic} {
		res, err := engine.Match(p, csce.MatchOptions{Variant: variant})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %d embeddings (read %v, plan %v, exec %v)\n",
			variant, res.Embeddings, res.ReadTime, res.PlanTime, res.ExecTime)
	}

	// Enumerate the edge-induced embeddings explicitly.
	fmt.Println("edge-induced matches (pattern vertex -> data vertex):")
	_, err = engine.Match(p, csce.MatchOptions{
		Variant: csce.EdgeInduced,
		OnEmbedding: func(m []graph.VertexID) bool {
			fmt.Printf("  u0->v%d u1->v%d u2->v%d\n", m[0], m[1], m[2])
			return true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
}

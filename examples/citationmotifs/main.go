// Citation motifs: homomorphic matching on a directed labeled graph, the
// graph-database workload of the paper (Table III pairs it with
// Graphflow). Citation chains and feed-forward motifs are counted on a
// Subcategory-like citation network, comparing the homomorphic and
// vertex-induced variants (Finding 7: homomorphism solves faster).
//
//	go run ./examples/citationmotifs
package main

import (
	"fmt"
	"log"
	"time"

	"csce"
	"csce/internal/dataset"
	"csce/internal/graph"
)

func main() {
	spec, _ := dataset.ByName("Subcategory")
	// Trim the analogue so the example finishes in seconds.
	spec.Vertices = 8000
	spec.TargetEdges = 40000
	spec.Name = "Subcategory-small"
	g := spec.Generate()
	engine := csce.NewEngine(g)
	fmt.Printf("citation network: %d papers, %d citations, %d category labels\n\n",
		g.NumVertices(), g.NumEdges(), g.VertexLabelCount())

	// Motifs are built over the two most frequent category labels.
	la, lb := topLabels(g)

	motifs := []struct {
		name  string
		build func() *csce.Graph
	}{
		{"chain a->b->a", func() *csce.Graph {
			b := csce.NewBuilder(true)
			x := b.AddVertex(la)
			y := b.AddVertex(lb)
			z := b.AddVertex(la)
			b.AddEdge(x, y, 0)
			b.AddEdge(y, z, 0)
			return b.MustBuild()
		}},
		{"feed-forward", func() *csce.Graph {
			b := csce.NewBuilder(true)
			x := b.AddVertex(la)
			y := b.AddVertex(lb)
			z := b.AddVertex(la)
			b.AddEdge(x, y, 0)
			b.AddEdge(y, z, 0)
			b.AddEdge(x, z, 0)
			return b.MustBuild()
		}},
		{"co-citation", func() *csce.Graph {
			b := csce.NewBuilder(true)
			x := b.AddVertex(la)
			y := b.AddVertex(la)
			z := b.AddVertex(lb)
			b.AddEdge(x, z, 0)
			b.AddEdge(y, z, 0)
			return b.MustBuild()
		}},
	}

	fmt.Printf("%-14s %-14s %-14s %-12s %-12s\n",
		"motif", "homomorphic", "vertex-induced", "homo-time", "vi-time")
	for _, m := range motifs {
		p := m.build()
		homo, err := engine.Match(p, csce.MatchOptions{Variant: csce.Homomorphic, TimeLimit: 5 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		vi, err := engine.Match(p, csce.MatchOptions{Variant: csce.VertexInduced, TimeLimit: 5 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-14d %-14d %-12v %-12v\n",
			m.name, homo.Embeddings, vi.Embeddings,
			homo.Total().Round(time.Microsecond), vi.Total().Round(time.Microsecond))
	}
	fmt.Println("\nhomomorphic counts dominate: they admit repeated papers and extra arcs.")
}

// topLabels returns the two most frequent vertex labels of g.
func topLabels(g *csce.Graph) (csce.Label, csce.Label) {
	type lc struct {
		l csce.Label
		c int
	}
	var best, second lc
	seen := map[graph.Label]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		l := g.Label(graph.VertexID(v))
		if seen[l] {
			continue
		}
		seen[l] = true
		c := g.LabelFrequency(l)
		switch {
		case c > best.c:
			second = best
			best = lc{l, c}
		case c > second.c:
			second = lc{l, c}
		}
	}
	return best.l, second.l
}

// Continuous pattern monitoring: the streaming workload of graph
// databases (Graphflow's continuous subgraph queries). A transaction
// graph receives a stream of new edges; after each insertion, delta
// matching reports exactly the new instances of a suspicious pattern —
// here a "cycle of transfers" between accounts — without re-running the
// full query.
//
//	go run ./examples/continuousmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"csce"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	names := csce.NewLabelTable()
	account := names.Vertex("Account")
	transfer := names.Edge("transfer")

	// Seed graph: 200 accounts with random transfers.
	b := csce.NewBuilder(true)
	b.SetNames(names)
	const n = 200
	b.AddVertices(n, account)
	type edge struct{ s, d csce.VertexID }
	present := map[edge]bool{}
	for i := 0; i < 600; i++ {
		s := csce.VertexID(rng.Intn(n))
		d := csce.VertexID(rng.Intn(n))
		if s == d || present[edge{s, d}] {
			continue
		}
		present[edge{s, d}] = true
		b.AddEdge(s, d, transfer)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	engine := csce.NewEngine(g)

	// The monitored pattern: a 3-cycle of transfers.
	pattern, vars, err := csce.ParseQuery(
		"MATCH (a:Account)-[:transfer]->(b:Account)-[:transfer]->(c:Account)-[:transfer]->(a)", g)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := engine.Count(pattern, csce.Homomorphic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %v over %d accounts, %d transfers (%d cycles at start)\n\n",
		vars, g.NumVertices(), g.NumEdges(), baseline)

	// Stream insertions; report the delta per event.
	var streamed, totalDelta uint64
	start := time.Now()
	for streamed < 200 {
		s := csce.VertexID(rng.Intn(n))
		d := csce.VertexID(rng.Intn(n))
		if s == d || present[edge{s, d}] {
			continue
		}
		present[edge{s, d}] = true
		streamed++
		if err := engine.InsertEdge(s, d, transfer); err != nil {
			log.Fatal(err)
		}
		delta, err := csce.NewEmbeddings(engine, pattern, csce.DeltaEdge{Src: s, Dst: d, Label: transfer},
			csce.DeltaOptions{Variant: csce.Homomorphic})
		if err != nil {
			log.Fatal(err)
		}
		totalDelta += delta
		if delta > 0 && streamed <= 100 {
			fmt.Printf("event %3d: transfer %3d->%3d closes %d new cycle(s)\n", streamed, s, d, delta)
		}
	}
	elapsed := time.Since(start)

	final, err := engine.Count(pattern, csce.Homomorphic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d events in %v (%.0f events/s)\n", streamed, elapsed.Round(time.Millisecond),
		float64(streamed)/elapsed.Seconds())
	fmt.Printf("cycles: %d at start + %d from deltas = %d; full recount agrees: %d\n",
		baseline, totalDelta, baseline+totalDelta, final)
	if baseline+totalDelta != final {
		log.Fatal("delta accounting diverged from the recount")
	}
}

package csce_test

import (
	"fmt"
	"strings"

	"csce"
)

// ExampleEngine_Match demonstrates the basic pipeline: cluster a labeled
// graph once, then match a pattern under each variant.
func ExampleEngine_Match() {
	g, _ := csce.ParseGraph(strings.NewReader(`
t undirected
v 0 A
v 1 B
v 2 A
v 3 B
e 0 1
e 1 2
e 2 3
e 3 0
`))
	engine := csce.NewEngine(g)
	p, _ := csce.ParsePattern(strings.NewReader(`
t undirected
v 0 A
v 1 B
e 0 1
`), g)

	for _, variant := range []csce.Variant{csce.EdgeInduced, csce.Homomorphic} {
		res, _ := engine.Match(p, csce.MatchOptions{Variant: variant})
		fmt.Printf("%s: %d\n", variant, res.Embeddings)
	}
	// Output:
	// edge-induced: 4
	// homomorphic: 4
}

// ExampleParseQuery shows the MATCH query front-end.
func ExampleParseQuery() {
	g, _ := csce.ParseGraph(strings.NewReader(`
t directed
v 0 Person
v 1 Person
v 2 Post
e 0 1 knows
e 0 2 wrote
e 1 2 likes
`))
	engine := csce.NewEngine(g)
	p, vars, _ := csce.ParseQuery(
		"MATCH (author:Person)-[:wrote]->(p:Post), (fan:Person)-[:likes]->(p)", g)
	n, _ := engine.Count(p, csce.EdgeInduced)
	fmt.Println(vars, n)
	// Output:
	// [author p fan] 1
}

// ExampleEngine_BuildHigherOrder computes the higher-order weight graph
// G_P: how many triangles contain each vertex pair.
func ExampleEngine_BuildHigherOrder() {
	engine := csce.NewEngine(csce.Clique(4, 0))
	weights, instances, _ := engine.BuildHigherOrder(csce.Clique(3, 0), csce.HigherOrderOptions{
		Variant:              csce.EdgeInduced,
		CountAutomorphicOnce: true,
	})
	fmt.Println(instances, weights.Weight(0, 1))
	// Output:
	// 4 2
}

// ExampleNewEmbeddings shows continuous matching: only the embeddings an
// insertion creates are enumerated.
func ExampleNewEmbeddings() {
	g, _ := csce.ParseGraph(strings.NewReader(`
t undirected
v 0 A
v 1 B
v 2 A
e 0 1
`))
	engine := csce.NewEngine(g)
	p, _ := csce.ParsePattern(strings.NewReader(`
t undirected
v 0 A
v 1 B
e 0 1
`), g)

	_ = engine.InsertEdge(2, 1, 0) // new A-B edge
	delta, _ := csce.NewEmbeddings(engine, p, csce.DeltaEdge{Src: 2, Dst: 1},
		csce.DeltaOptions{Variant: csce.EdgeInduced})
	fmt.Println(delta)
	// Output:
	// 1
}

package csce_test

import (
	"bytes"
	"strings"
	"testing"

	"csce"
)

const exampleData = `
t undirected
v 0 Protein
v 1 Protein
v 2 Kinase
v 3 Protein
v 4 Kinase
e 0 1
e 0 2
e 1 2
e 1 3
e 3 4
e 0 3
`

func TestPublicAPIQuickstart(t *testing.T) {
	g, err := csce.ParseGraph(strings.NewReader(exampleData))
	if err != nil {
		t.Fatal(err)
	}
	engine := csce.NewEngine(g)
	p, err := csce.ParsePattern(strings.NewReader(`
t undirected
v 0 Protein
v 1 Protein
v 2 Kinase
e 0 1
e 0 2
e 1 2
`), g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Match(p, csce.MatchOptions{Variant: csce.EdgeInduced})
	if err != nil {
		t.Fatal(err)
	}
	// Triangles with two Proteins and one Kinase: {0,1,2} only, in 2
	// orientations of the protein pair.
	if res.Embeddings != 2 {
		t.Fatalf("embeddings = %d, want 2", res.Embeddings)
	}
	// Homomorphic count can only grow; vertex-induced can only shrink.
	hres, err := engine.Match(p, csce.MatchOptions{Variant: csce.Homomorphic})
	if err != nil {
		t.Fatal(err)
	}
	vres, err := engine.Match(p, csce.MatchOptions{Variant: csce.VertexInduced})
	if err != nil {
		t.Fatal(err)
	}
	if hres.Embeddings < res.Embeddings || vres.Embeddings > res.Embeddings {
		t.Fatalf("variant ordering violated: H=%d E=%d V=%d",
			hres.Embeddings, res.Embeddings, vres.Embeddings)
	}
}

func TestPublicAPISaveLoadAndFormat(t *testing.T) {
	g, err := csce.ParseGraph(strings.NewReader(exampleData))
	if err != nil {
		t.Fatal(err)
	}
	engine := csce.NewEngine(g)
	var store bytes.Buffer
	if err := engine.Save(&store); err != nil {
		t.Fatal(err)
	}
	engine2, err := csce.LoadEngine(&store)
	if err != nil {
		t.Fatal(err)
	}
	p := csce.Clique(3, g.Names.Vertex("Protein"))
	a, err := engine.Count(p, csce.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine2.Count(p, csce.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("save/load changed counts: %d vs %d", a, b)
	}

	var text bytes.Buffer
	if err := csce.FormatGraph(&text, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "Protein") {
		t.Fatal("formatted graph lost label names")
	}
	s := csce.ComputeStats("example", g)
	if s.VertexCount != 5 || s.EdgeCount != 6 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	names := csce.NewLabelTable()
	b := csce.NewBuilder(true)
	b.SetNames(names)
	a := b.AddVertex(names.Vertex("Paper"))
	c := b.AddVertex(names.Vertex("Paper"))
	b.AddEdge(a, c, names.Edge("cites"))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || g.NumEdges() != 1 {
		t.Fatal("builder misconfigured")
	}
	engine := csce.NewEngine(g)
	pb := csce.NewBuilder(true)
	x := pb.AddVertex(names.Vertex("Paper"))
	y := pb.AddVertex(names.Vertex("Paper"))
	pb.AddEdge(x, y, names.Edge("cites"))
	n, err := engine.Count(pb.MustBuild(), csce.Homomorphic)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("single citation edge count = %d, want 1", n)
	}
}

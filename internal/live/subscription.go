package live

import (
	"fmt"
	"sync/atomic"

	"csce/internal/graph"
)

// EventKind tags one subscription event.
type EventKind uint8

const (
	// EventDelta carries one new embedding created by a committed
	// insertion.
	EventDelta EventKind = iota
	// EventCommit marks the end of a batch's events: every delta and
	// retraction of the batch has been delivered before it.
	EventCommit
	// EventRetract carries one embedding destroyed by a committed
	// deletion; subtracting retractions keeps a subscriber's running
	// count exact across delete_edge mutations.
	EventRetract
)

// String renders the kind as its wire name.
func (k EventKind) String() string {
	switch k {
	case EventDelta:
		return "delta"
	case EventCommit:
		return "commit"
	case EventRetract:
		return "retract"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one message on a subscription stream.
type Event struct {
	Kind EventKind
	// Seq is the WAL sequence of the mutation that created (delta) or
	// destroyed (retract) the embedding; for a commit marker, the
	// batch's last sequence.
	Seq uint64
	// Epoch is the snapshot epoch the batch committed as.
	Epoch uint64
	// Src/Dst/EdgeLabel identify the inserted or deleted data edge
	// (delta and retract only).
	Src, Dst  graph.VertexID
	EdgeLabel graph.EdgeLabel
	// Embedding is the embedding created or destroyed, indexed by
	// pattern vertex ID (delta and retract only).
	Embedding []graph.VertexID
	// Deltas and Retractions are the per-kind event counts this
	// subscriber was sent for the batch (commit only). A subscriber's
	// running count stays exact as count += Deltas - Retractions.
	Deltas      uint64
	Retractions uint64
}

// Subscription is one registered continuous query. Events() yields, per
// committed batch, the delta embeddings followed by one commit marker; a
// batch joined at epoch E sees every delta of epochs > E. The channel
// closes on Close, on graph Close, or when the subscriber is dropped for
// falling behind (Dropped() distinguishes the last case).
type Subscription struct {
	id        uint64
	g         *Graph
	pattern   *graph.Graph
	variant   graph.Variant
	joinEpoch uint64
	ch        chan Event

	// closed and condemned are guarded by g.mu; dropped is read by the
	// consumer after the channel closes, hence atomic.
	closed    bool
	condemned bool
	dropped   atomic.Bool
}

// Subscribe registers a continuous query for pattern p under the given
// matching variant. The returned subscription joins at the current epoch:
// it receives exactly the deltas — and, for deletions, retractions — of
// every batch committed after the call. Vertex-induced patterns are
// rejected with ErrVertexInduced: under that semantics an insertion can
// itself destroy embeddings, so neither deltas nor retractions are pure.
func (g *Graph) Subscribe(p *graph.Graph, variant graph.Variant) (*Subscription, error) {
	if variant == graph.VertexInduced {
		return nil, ErrVertexInduced
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrClosed
	}
	if p.Directed() != g.writer.Directed() {
		return nil, fmt.Errorf("live: pattern directedness mismatch (graph %q)", g.name)
	}
	g.nextSubID++
	sub := &Subscription{
		id:        g.nextSubID,
		g:         g,
		pattern:   p,
		variant:   variant,
		joinEpoch: g.epoch,
		ch:        make(chan Event, g.opts.SubscriberBuffer),
	}
	g.subs[sub.id] = sub
	g.stats.subsTotal.Add(1)
	return sub, nil
}

// Events is the subscription stream; see Subscription for semantics.
func (s *Subscription) Events() <-chan Event { return s.ch }

// JoinEpoch is the published epoch at registration time: the stream
// carries every delta of epochs strictly greater.
func (s *Subscription) JoinEpoch() uint64 { return s.joinEpoch }

// Pattern returns the registered pattern.
func (s *Subscription) Pattern() *graph.Graph { return s.pattern }

// Variant returns the matching semantics of the subscription.
func (s *Subscription) Variant() graph.Variant { return s.variant }

// Dropped reports whether the graph evicted this subscriber for falling
// behind (buffer overflow). Meaningful once Events() is closed.
func (s *Subscription) Dropped() bool { return s.dropped.Load() }

// Close unregisters the subscription and closes Events(). Idempotent and
// safe concurrently with commits.
func (s *Subscription) Close() {
	s.g.mu.Lock()
	defer s.g.mu.Unlock()
	s.closeLocked()
}

func (s *Subscription) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.g.subs, s.id)
	close(s.ch)
}

// trySend delivers without blocking; false means the buffer is full.
func (s *Subscription) trySend(ev Event) bool {
	select {
	case s.ch <- ev:
		return true
	default:
		return false
	}
}

// buffer returns the channel capacity (the per-batch staging bound).
func (s *Subscription) buffer() int { return cap(s.ch) }

// patternUsesLabel reports whether any pattern edge carries the label —
// a cheap pre-filter before the full delta enumeration.
func (s *Subscription) patternUsesLabel(l graph.EdgeLabel) bool {
	used := false
	s.pattern.Edges(func(_, _ graph.VertexID, el graph.EdgeLabel) {
		if el == l {
			used = true
		}
	})
	return used
}

// dropLocked evicts a subscriber that cannot keep up.
func (g *Graph) dropLocked(sub *Subscription) {
	sub.dropped.Store(true)
	g.stats.subsDropped.Add(1)
	sub.closeLocked()
}

package live

import (
	"context"
	"errors"
	"sync"
	"testing"

	"csce/internal/graph"
)

// replayAll drains a Resume's replay into a slice.
func replayAll(t *testing.T, res *Resume) []Event {
	t.Helper()
	var events []Event
	if err := res.Replay(context.Background(), func(ev Event) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return events
}

// resumeScript is a deterministic single-mutation-per-batch history on
// pathGraph (seq == batch == epoch), mixing inserts and deletes so both
// deltas and retractions appear in the replayed window.
var resumeScript = []Mutation{
	{Op: OpInsertEdge, Src: 2, Dst: 3}, // seq 1
	{Op: OpInsertEdge, Src: 0, Dst: 3}, // seq 2
	{Op: OpInsertEdge, Src: 0, Dst: 2}, // seq 3
	{Op: OpDeleteEdge, Src: 0, Dst: 1}, // seq 4
	{Op: OpInsertEdge, Src: 0, Dst: 1}, // seq 5
	{Op: OpDeleteEdge, Src: 2, Dst: 3}, // seq 6
	{Op: OpInsertEdge, Src: 1, Dst: 3}, // seq 7
	{Op: OpDeleteEdge, Src: 0, Dst: 2}, // seq 8
}

// runScript applies the script one batch at a time, recording the
// edge-pattern count after every seq (countAt[0] is the initial state).
func runScript(t *testing.T, g *Graph) (countAt []uint64) {
	t.Helper()
	countAt = []uint64{count(t, g, edgePattern, graph.EdgeInduced)}
	for i, m := range resumeScript {
		if _, err := g.Mutate(context.Background(), []Mutation{m}); err != nil {
			t.Fatalf("script seq %d: %v", i+1, err)
		}
		countAt = append(countAt, count(t, g, edgePattern, graph.EdgeInduced))
	}
	return countAt
}

// TestResumeGaplessEquation pins the resume contract: for any retained
// fromSeq, the replayed stream's Σdeltas − Σretractions reproduces the
// live count difference, events arrive in seq order, and every batch is
// closed by a commit marker whose counts match the events before it.
func TestResumeGaplessEquation(t *testing.T) {
	// Retention 5 truncates seqs 1..3: the resume base must roll forward.
	g := newTestGraph(t, pathGraph, Options{WALRetention: 5})
	countAt := runScript(t, g)
	last := uint64(len(resumeScript))

	oldest := g.OldestResumableSeq()
	if oldest != 3 {
		t.Fatalf("oldest resumable %d, want 3 (retention 5 of 8)", oldest)
	}
	for fromSeq := oldest; fromSeq <= last; fromSeq++ {
		res, err := g.ResumeSubscribe(edgePattern, graph.EdgeInduced, fromSeq)
		if err != nil {
			t.Fatalf("resume from %d: %v", fromSeq, err)
		}
		events := replayAll(t, res)
		var sum int64
		var d, r uint64
		prevSeq := fromSeq
		sawCommit := uint64(0)
		for _, ev := range events {
			if ev.Seq < prevSeq {
				t.Fatalf("from %d: seq went backwards: %d after %d", fromSeq, ev.Seq, prevSeq)
			}
			prevSeq = ev.Seq
			switch ev.Kind {
			case EventDelta:
				sum++
				d++
			case EventRetract:
				sum--
				r++
			case EventCommit:
				if ev.Deltas != d || ev.Retractions != r {
					t.Fatalf("from %d: commit at seq %d counts (%d,%d), events say (%d,%d)",
						fromSeq, ev.Seq, ev.Deltas, ev.Retractions, d, r)
				}
				d, r = 0, 0
				if ev.Seq != sawCommit+fromSeq+1 {
					t.Fatalf("from %d: commit markers not gapless: seq %d after %d markers", fromSeq, ev.Seq, sawCommit)
				}
				sawCommit++
			}
		}
		if sawCommit != last-fromSeq {
			t.Fatalf("from %d: %d commit markers, want %d", fromSeq, sawCommit, last-fromSeq)
		}
		want := int64(countAt[last]) - int64(countAt[fromSeq])
		if sum != want {
			t.Fatalf("from %d: Σdeltas−Σretractions = %d, want %d", fromSeq, sum, want)
		}
		res.Live().Close()
	}
	if g.Stats().SubscribersResumed != last-oldest+1 {
		t.Fatalf("resumed counter: %+v", g.Stats())
	}
}

// TestResumeHandoverToLive checks the seam: a commit that lands after
// registration arrives on the live channel with the next seq, never
// replayed, never skipped.
func TestResumeHandoverToLive(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{})
	countAt := runScript(t, g)
	last := uint64(len(resumeScript))

	res, err := g.ResumeSubscribe(edgePattern, graph.EdgeInduced, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := replayAll(t, res)
	var sum int64
	for _, ev := range events {
		switch ev.Kind {
		case EventDelta:
			sum++
		case EventRetract:
			sum--
		}
	}
	if got, want := sum, int64(countAt[last])-int64(countAt[0]); got != want {
		t.Fatalf("full replay sum %d, want %d", got, want)
	}

	com, err := g.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 0, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if com.FirstSeq != last+1 {
		t.Fatalf("live batch at seq %d, want %d", com.FirstSeq, last+1)
	}
	deadline := 0
	for ev := range res.Live().Events() {
		if ev.Kind == EventCommit {
			if ev.Seq != com.LastSeq || ev.Epoch != com.Epoch {
				t.Fatalf("live commit marker %+v, want seq %d epoch %d", ev, com.LastSeq, com.Epoch)
			}
			break
		}
		if ev.Seq != com.FirstSeq {
			t.Fatalf("live event at seq %d, want %d (no gap, no repeat)", ev.Seq, com.FirstSeq)
		}
		if deadline++; deadline > 1000 {
			t.Fatal("no commit marker")
		}
	}
	res.Live().Close()
}

// TestResumeBoundaries pins the error contract at the edges of the
// retained window: exactly the truncation boundary succeeds, one before is
// ErrSeqTruncated (HTTP 410), past the log is ErrSeqFuture, and the
// vertex-induced variant is refused outright.
func TestResumeBoundaries(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{WALRetention: 4})
	runScript(t, g)
	last := uint64(len(resumeScript))
	oldest := g.OldestResumableSeq()
	if oldest != last-4 {
		t.Fatalf("oldest resumable %d, want %d", oldest, last-4)
	}

	res, err := g.ResumeSubscribe(edgePattern, graph.EdgeInduced, oldest)
	if err != nil {
		t.Fatalf("resume from the exact boundary must work: %v", err)
	}
	replayAll(t, res)
	res.Live().Close()

	if _, err := g.ResumeSubscribe(edgePattern, graph.EdgeInduced, oldest-1); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("one before the boundary: %v, want ErrSeqTruncated", err)
	}
	if _, err := g.ResumeSubscribe(edgePattern, graph.EdgeInduced, last+1); !errors.Is(err, ErrSeqFuture) {
		t.Fatalf("past the log: %v, want ErrSeqFuture", err)
	}
	if _, err := g.ResumeSubscribe(edgePattern, graph.VertexInduced, oldest); !errors.Is(err, ErrVertexInduced) {
		t.Fatalf("vertex-induced resume: %v, want ErrVertexInduced", err)
	}

	// A recovered graph restores its resume horizon from the persisted
	// resume log: the pre-restart window survives the process, so a
	// subscriber that last saw seq 0 replays the pre-restart batch as if
	// the restart never happened, and the boundary errors stay exact.
	dir := t.TempDir()
	opts := Options{Durability: Durability{Dir: dir, Fsync: FsyncNever}}
	d := openDurable(t, pathGraph, opts)
	com, err := d.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 2, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	if rec := r.Recovery(); !rec.ResumeWindowRestored || rec.ResumeWindowLost {
		t.Fatalf("recovery did not restore the resume window: %+v", rec)
	}
	if got := r.OldestResumableSeq(); got != 0 {
		t.Fatalf("post-recovery resume boundary %d, want 0 (persisted window)", got)
	}
	res2, err := r.ResumeSubscribe(edgePattern, graph.EdgeInduced, 0)
	if err != nil {
		t.Fatalf("resume across the restart: %v", err)
	}
	events := replayAll(t, res2)
	if len(events) == 0 || events[len(events)-1].Kind != EventCommit || events[len(events)-1].Seq != com.LastSeq {
		t.Fatalf("restored replay must cover the pre-restart batch, got %+v", events)
	}
	res2.Live().Close()
	res3, err := r.ResumeSubscribe(edgePattern, graph.EdgeInduced, com.LastSeq)
	if err != nil {
		t.Fatalf("resume at the recovered seq: %v", err)
	}
	if events := replayAll(t, res3); len(events) != 0 {
		t.Fatalf("nothing to replay at the boundary, got %d events", len(events))
	}
	res3.Live().Close()
	if _, err := r.ResumeSubscribe(edgePattern, graph.EdgeInduced, com.LastSeq+1); !errors.Is(err, ErrSeqFuture) {
		t.Fatalf("past the recovered log: %v, want ErrSeqFuture", err)
	}
}

// TestResumeReplayOnce pins the once-only contract.
func TestResumeReplayOnce(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{})
	res, err := g.ResumeSubscribe(edgePattern, graph.EdgeInduced, 0)
	if err != nil {
		t.Fatal(err)
	}
	discard := func(Event) error { return nil }
	if err := res.Replay(context.Background(), discard); err != nil {
		t.Fatal(err)
	}
	if err := res.Replay(context.Background(), discard); err == nil {
		t.Fatal("second Replay must fail")
	}
}

// TestLiveRetractionEquation pins retraction delivery on a plain live
// subscription: deleting an edge streams one retract event per destroyed
// embedding, and count(after) = count(before) + Deltas − Retractions.
func TestLiveRetractionEquation(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{})
	before := count(t, g, edgePattern, graph.EdgeInduced)
	sub, err := g.Subscribe(edgePattern, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	com, err := g.Mutate(context.Background(), []Mutation{
		{Op: OpInsertEdge, Src: 2, Dst: 3},
		{Op: OpDeleteEdge, Src: 0, Dst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if com.Deltas != 2 || com.Retractions != 2 {
		t.Fatalf("commit counted deltas=%d retractions=%d, want 2/2", com.Deltas, com.Retractions)
	}
	var d, r uint64
	for ev := range sub.Events() {
		switch ev.Kind {
		case EventDelta:
			d++
		case EventRetract:
			r++
		case EventCommit:
			if ev.Deltas != d || ev.Retractions != r {
				t.Fatalf("marker (%d,%d) after events (%d,%d)", ev.Deltas, ev.Retractions, d, r)
			}
			after := count(t, g, edgePattern, graph.EdgeInduced)
			if after != before+d-r {
				t.Fatalf("count %d != %d + %d − %d", after, before, d, r)
			}
			sub.Close()
			return
		}
	}
	t.Fatal("stream closed without a commit marker")
}

// TestConcurrentCommitAndResume hammers ResumeSubscribe+Replay against a
// live mutation storm; run under -race this pins that the resume path
// (base clone, tail capture, raw replays) never touches shared state
// without the right lock.
func TestConcurrentCommitAndResume(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{WALRetention: 64, SubscriberBuffer: 4096})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := Mutation{Op: OpInsertEdge, Src: 2, Dst: 3}
			if i%2 == 1 {
				m.Op = OpDeleteEdge
			}
			if _, err := g.Mutate(context.Background(), []Mutation{m}); err != nil {
				t.Errorf("storm batch %d: %v", i, err)
				return
			}
		}
	}()

	for k := 0; k < 25; k++ {
		from := g.OldestResumableSeq()
		res, err := g.ResumeSubscribe(edgePattern, graph.EdgeInduced, from)
		if err != nil {
			t.Fatalf("resume %d from %d: %v", k, from, err)
		}
		prevSeq := from
		if err := res.Replay(context.Background(), func(ev Event) error {
			if ev.Seq < prevSeq {
				return errors.New("seq went backwards")
			}
			prevSeq = ev.Seq
			return nil
		}); err != nil {
			t.Fatalf("resume %d replay: %v", k, err)
		}
		res.Live().Close()
	}
	close(stop)
	wg.Wait()
}

package live

import "sync"

// Record is one committed WAL entry.
type Record struct {
	// Seq is the per-graph sequence number, 1-based and gapless across
	// committed mutations (aborted batches are never logged).
	Seq uint64
	// Epoch is the snapshot epoch the entry became visible in; every entry
	// of a batch shares it.
	Epoch uint64
	Mut   Mutation
}

// wal is the append-only in-memory log. It has its own lock so readers of
// the tail (stats, debugging) never contend with the graph writer lock,
// but appends only happen under the writer lock, which keeps sequence
// numbers aligned with commit order.
type wal struct {
	mu        sync.Mutex
	recs      []Record
	nextSeq   uint64 // next sequence number to assign; first is 1
	truncated uint64 // entries dropped by retention
	retention int
}

func newWAL(retention int) *wal {
	return &wal{nextSeq: 1, retention: retention}
}

// append logs a committed batch under the given epoch and returns the
// first and last sequence numbers assigned.
func (w *wal) append(muts []Mutation, epoch uint64) (first, last uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	first = w.nextSeq
	for _, m := range muts {
		w.recs = append(w.recs, Record{Seq: w.nextSeq, Epoch: epoch, Mut: m})
		w.nextSeq++
	}
	last = w.nextSeq - 1
	if over := len(w.recs) - w.retention; over > 0 {
		w.truncated += uint64(over)
		w.recs = append([]Record(nil), w.recs[over:]...)
	}
	return first, last
}

// lastSeq returns the most recently assigned sequence number (0 if none).
func (w *wal) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// tail returns a copy of the retained records with Seq > after.
func (w *wal) tail(after uint64) []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := 0
	for i < len(w.recs) && w.recs[i].Seq <= after {
		i++
	}
	return append([]Record(nil), w.recs[i:]...)
}

// size reports retained length and the count of truncated entries.
func (w *wal) size() (retained int, truncated uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs), w.truncated
}

package live

import "sync"

// Record is one committed WAL entry.
type Record struct {
	// Seq is the per-graph sequence number, 1-based and gapless across
	// committed mutations (aborted batches are never logged).
	Seq uint64
	// Epoch is the snapshot epoch the entry became visible in; every entry
	// of a batch shares it.
	Epoch uint64
	Mut   Mutation
}

// wal is the append-only in-memory log. It has its own lock so readers of
// the tail (stats, debugging) never contend with the graph writer lock,
// but appends only happen under the writer lock, which keeps sequence
// numbers aligned with commit order.
type wal struct {
	mu        sync.Mutex
	recs      []Record
	nextSeq   uint64 // next sequence number to assign; first is 1
	truncated uint64 // entries dropped by retention
	retention int
}

func newWAL(retention int) *wal {
	return &wal{nextSeq: 1, retention: retention}
}

// newWALAt seeds a log that resumes numbering after a recovery: the next
// sequence number is lastSeq+1 and everything at or below lastSeq counts
// as truncated (recovered history lives on disk, not in the tail).
func newWALAt(retention int, lastSeq uint64) *wal {
	return &wal{nextSeq: lastSeq + 1, truncated: lastSeq, retention: retention}
}

// newWALWithTail seeds a log whose retained window survived a restart:
// tail holds the gapless records (oldest, oldest+len(tail)], restored from
// the persisted resume log, and numbering continues after the last of
// them. An empty tail is the newWALAt degenerate case at seq oldest.
func newWALWithTail(retention int, oldest uint64, tail []Record) *wal {
	last := oldest + uint64(len(tail))
	return &wal{
		recs:      tail,
		nextSeq:   last + 1,
		truncated: oldest,
		retention: retention,
	}
}

// peekNextSeq returns the sequence number the next committed record will
// receive. Only meaningful under the graph writer lock, which serializes
// all appends.
func (w *wal) peekNextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// appendRecords logs a committed batch whose Seq fields were pre-assigned
// from peekNextSeq (the durable WAL needs finished records before the
// in-memory tail may admit them). It returns the records retention pushed
// out, oldest first, so the caller can roll its resume base forward.
//
//csce:hotpath runs under the writer lock on every committed batch; the
// common (no-truncation) path must not allocate beyond amortized append
func (w *wal) appendRecords(recs []Record) (dropped []Record) {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recs = append(w.recs, recs...)
	w.nextSeq = recs[len(recs)-1].Seq + 1
	if over := len(w.recs) - w.retention; over > 0 {
		dropped = append([]Record(nil), w.recs[:over]...)
		w.truncated += uint64(over)
		w.recs = append([]Record(nil), w.recs[over:]...)
	}
	return dropped
}

// lastSeq returns the most recently assigned sequence number (0 if none).
func (w *wal) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// tail returns a copy of the retained records with Seq > after.
func (w *wal) tail(after uint64) []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := 0
	for i < len(w.recs) && w.recs[i].Seq <= after {
		i++
	}
	return append([]Record(nil), w.recs[i:]...)
}

// oldestResumable returns the smallest seq a subscriber may resume from:
// the resume base sits at exactly this state, and every later record is
// retained. Resuming from anything smaller would leave a gap.
func (w *wal) oldestResumable() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncated
}

// size reports retained length and the count of truncated entries.
func (w *wal) size() (retained int, truncated uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs), w.truncated
}

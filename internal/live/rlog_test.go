package live

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csce/internal/core"
	"csce/internal/graph"
)

// runScriptDurable applies resumeScript to a durable graph, one batch per
// seq, and returns the per-seq counts like runScript.
func runScriptDurable(t *testing.T, g *Graph) (countAt []uint64) {
	t.Helper()
	countAt = []uint64{count(t, g, edgePattern, graph.EdgeInduced)}
	for i, m := range resumeScript {
		if _, err := g.Mutate(context.Background(), []Mutation{m}); err != nil {
			t.Fatalf("script seq %d: %v", i+1, err)
		}
		countAt = append(countAt, count(t, g, edgePattern, graph.EdgeInduced))
	}
	return countAt
}

// eventTrace flattens a replayed stream into a comparable shape: one line
// per event carrying everything a subscriber acts on.
func eventTrace(events []Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = fmt.Sprintf("%d/%d kind=%d %d-%d(%d) emb=%v d=%d r=%d",
			ev.Seq, ev.Epoch, ev.Kind, ev.Src, ev.Dst, ev.EdgeLabel, ev.Embedding, ev.Deltas, ev.Retractions)
	}
	return out
}

// replayEvents resumes from fromSeq and drains the replay.
func replayEvents(t *testing.T, g *Graph, fromSeq uint64) []Event {
	t.Helper()
	res, err := g.ResumeSubscribe(edgePattern, graph.EdgeInduced, fromSeq)
	if err != nil {
		t.Fatalf("resume from %d: %v", fromSeq, err)
	}
	defer res.Live().Close()
	return replayAll(t, res)
}

// replayTrace resumes from fromSeq and returns the stream's trace.
func replayTrace(t *testing.T, g *Graph, fromSeq uint64) []string {
	t.Helper()
	return eventTrace(replayEvents(t, g, fromSeq))
}

// sumEvents folds a stream into Σdeltas − Σretractions.
func sumEvents(events []Event) (sum int64) {
	for _, ev := range events {
		switch ev.Kind {
		case EventDelta:
			sum++
		case EventRetract:
			sum--
		}
	}
	return sum
}

// TestResumeLogReplayEquivalence pins the tentpole contract: for every
// retained from_seq, the replayed stream after close+reopen is
// event-for-event identical to the stream the pre-restart process served.
func TestResumeLogReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{Dir: dir, Fsync: FsyncNever}}
	g := openDurable(t, pathGraph, opts)
	runScriptDurable(t, g)
	last := uint64(len(resumeScript))

	before := make(map[uint64][]string)
	for from := uint64(0); from <= last; from++ {
		before[from] = replayTrace(t, g, from)
	}
	g.Close()

	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	rec := r.Recovery()
	if !rec.ResumeWindowRestored || rec.ResumeWindowLost {
		t.Fatalf("window not restored: %+v", rec)
	}
	if got := r.OldestResumableSeq(); got != 0 {
		t.Fatalf("restored boundary %d, want 0", got)
	}
	for from := uint64(0); from <= last; from++ {
		after := replayTrace(t, r, from)
		if len(after) != len(before[from]) {
			t.Fatalf("from %d: %d events after restart, %d before", from, len(after), len(before[from]))
		}
		for i := range after {
			if after[i] != before[from][i] {
				t.Fatalf("from %d event %d diverged across restart:\n before %s\n after  %s",
					from, i, before[from][i], after[i])
			}
		}
	}
}

// rlogFiles globs the graph's resume chain files in index order.
func rlogFiles(t *testing.T, walDir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(walDir, rlogDirName, "*"+rlogSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return matches // %020d names sort by index
}

// TestResumeLogTornTailGapFilled crashes the resume log mid-frame: the
// torn tail is truncated and the lost records are gap-filled from the
// fsynced WAL, so the restored window still reaches the recovered seq.
func TestResumeLogTornTailGapFilled(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"partial frame", append([]byte{40, 0, 0, 0, 9, 9, 9, 9}, make([]byte, 10)...)},
		{"lone garbage byte", []byte{0xFF}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Durability: Durability{Dir: dir, Fsync: FsyncNever}}
			g := openDurable(t, pathGraph, opts)
			countAt := runScriptDurable(t, g)
			last := uint64(len(resumeScript))
			g.Close()

			files := rlogFiles(t, dir)
			if len(files) == 0 {
				t.Fatal("no resume chain files on disk")
			}
			f, err := os.OpenFile(files[len(files)-1], os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			r := openDurable(t, pathGraph, opts)
			defer r.Close()
			rec := r.Recovery()
			if !rec.ResumeTornTail {
				t.Fatalf("torn resume tail not detected: %+v", rec)
			}
			if !rec.ResumeWindowRestored {
				t.Fatalf("window must survive a crash tail: %+v", rec)
			}
			if sum, want := sumEvents(replayEvents(t, r, 0)), int64(countAt[last])-int64(countAt[0]); sum != want {
				t.Fatalf("gap-filled replay sum %d, want %d", sum, want)
			}
		})
	}
}

// TestResumeLogMidChainCorruptionRefused flips a byte in a NON-final
// chain file: that cannot be a crash tail, so Open must refuse with the
// delete-the-directory remedy rather than serve a gapped window.
func TestResumeLogMidChainCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{
		Dir:          dir,
		Fsync:        FsyncNever,
		SegmentSize:  1,   // rotate the chain on every batch
		KeepSegments: 100, // never rebase the early files away
	}}
	g := openDurable(t, pathGraph, opts)
	runScriptDurable(t, g)
	g.Close()

	files := rlogFiles(t, dir)
	if len(files) < 2 {
		t.Fatalf("need >= 2 chain files, got %d", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	gr := graph.MustParse(pathGraph)
	if _, err := Open("dur", core.NewEngine(gr), opts); err == nil {
		t.Fatal("mid-chain resume corruption must fail recovery")
	} else if !strings.Contains(err.Error(), "delete the") {
		t.Fatalf("error must carry the operator remedy, got: %v", err)
	}
}

// TestResumeLogRotationBoundary rotates the chain at every batch and
// checks the window survives file boundaries exactly: every retained seq
// resumes, one past the log is the future.
func TestResumeLogRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{
		Dir:          dir,
		Fsync:        FsyncNever,
		SegmentSize:  1,
		KeepSegments: 100,
	}}
	g := openDurable(t, pathGraph, opts)
	countAt := runScriptDurable(t, g)
	last := uint64(len(resumeScript))
	if st := g.Stats(); st.ResumeLogSegments < 2 {
		t.Fatalf("rotation never happened: %+v", st)
	}
	g.Close()

	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	if rec := r.Recovery(); !rec.ResumeWindowRestored {
		t.Fatalf("window not restored across rotations: %+v", rec)
	}
	for from := uint64(0); from <= last; from++ {
		if sum, want := sumEvents(replayEvents(t, r, from)), int64(countAt[last])-int64(countAt[from]); sum != want {
			t.Fatalf("from %d across rotations: sum %d, want %d", from, sum, want)
		}
	}
	if _, err := r.ResumeSubscribe(edgePattern, graph.EdgeInduced, last+1); !errors.Is(err, ErrSeqFuture) {
		t.Fatalf("past the restored log: %v, want ErrSeqFuture", err)
	}
}

// TestResumeLogRebaseRetention drives the chain past KeepSegments so
// rebases must fire, then pins the truncated-window contract across a
// restart: from_seq older than the rebased chain is ErrSeqTruncated (the
// HTTP 410) and the boundary itself still resumes.
func TestResumeLogRebaseRetention(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		WALRetention: 4,
		Durability: Durability{
			Dir:          dir,
			Fsync:        FsyncNever,
			SegmentSize:  1,
			KeepSegments: 2,
		},
	}
	g := openDurable(t, pathGraph, opts)
	runScriptDurable(t, g)
	last := uint64(len(resumeScript))
	st := g.Stats()
	if st.ResumeLogRebases == 0 {
		t.Fatalf("no rebase fired: %+v", st)
	}
	if st.ResumeLogFailures != 0 {
		t.Fatalf("rebase path counted failures: %+v", st)
	}
	if st.ResumeLogSegments > opts.Durability.KeepSegments+2 {
		t.Fatalf("rebase did not bound the chain: %d files", st.ResumeLogSegments)
	}
	g.Close()

	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	rec := r.Recovery()
	if !rec.ResumeWindowRestored {
		t.Fatalf("window not restored after rebases: %+v", rec)
	}
	oldest := r.OldestResumableSeq()
	if oldest != last-uint64(opts.WALRetention) {
		t.Fatalf("restored boundary %d, want %d", oldest, last-uint64(opts.WALRetention))
	}
	if rec.ResumeOldestSeq != oldest {
		t.Fatalf("recovery reports oldest %d, stats say %d", rec.ResumeOldestSeq, oldest)
	}
	res, err := r.ResumeSubscribe(edgePattern, graph.EdgeInduced, oldest)
	if err != nil {
		t.Fatalf("the exact restored boundary must resume: %v", err)
	}
	replayAll(t, res)
	res.Live().Close()
	if _, err := r.ResumeSubscribe(edgePattern, graph.EdgeInduced, oldest-1); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("before the restored boundary: %v, want ErrSeqTruncated", err)
	}
}

// TestResumeLogDeletedDirStartsFresh pins the operator remedy: deleting
// the resume directory loses only the window — recovery still lands on
// the exact committed seq and re-anchors a fresh chain there.
func TestResumeLogDeletedDirStartsFresh(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{Dir: dir, Fsync: FsyncNever}}
	g := openDurable(t, pathGraph, opts)
	runScriptDurable(t, g)
	last := uint64(len(resumeScript))
	g.Close()
	if err := os.RemoveAll(filepath.Join(dir, rlogDirName)); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	rec := r.Recovery()
	if rec.ResumeWindowRestored || rec.ResumeWindowLost {
		t.Fatalf("no log on disk means no window to restore or lose: %+v", rec)
	}
	if rec.RecoveredSeq != last {
		t.Fatalf("recovered seq %d, want %d", rec.RecoveredSeq, last)
	}
	if got := r.OldestResumableSeq(); got != last {
		t.Fatalf("fresh window must re-anchor at the recovered seq, got %d", got)
	}
	if _, err := r.ResumeSubscribe(edgePattern, graph.EdgeInduced, last-1); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("pre-deletion seq: %v, want ErrSeqTruncated", err)
	}
	// The fresh chain regrows: a batch committed now is resumable, and it
	// survives the next restart.
	com, err := r.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 0, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openDurable(t, pathGraph, opts)
	defer r2.Close()
	if rec := r2.Recovery(); !rec.ResumeWindowRestored {
		t.Fatalf("regrown chain not restored: %+v", rec)
	}
	events := replayTrace(t, r2, last)
	if len(events) == 0 || !strings.HasPrefix(events[len(events)-1], fmt.Sprintf("%d/", com.LastSeq)) {
		t.Fatalf("regrown window must replay the post-deletion batch, got %v", events)
	}
}

// TestCheckpointModeParse pins the -checkpoint-mode spellings.
func TestCheckpointModeParse(t *testing.T) {
	for _, mode := range []CheckpointMode{CheckpointFull, CheckpointIncremental} {
		parsed, err := ParseCheckpointMode(mode.String())
		if err != nil || parsed != mode {
			t.Fatalf("mode %v round-trip: %v %v", mode, parsed, err)
		}
	}
	if _, err := ParseCheckpointMode("differential"); err == nil {
		t.Fatal("bad mode spelling must error")
	}
}

// incOpts is the durability shape the incremental-checkpoint tests share:
// rotate every batch, checkpoint after two sealed segments.
func incOpts(dir string, chainMax int) Options {
	return Options{Durability: Durability{
		Dir:            dir,
		Fsync:          FsyncNever,
		SegmentSize:    1,
		KeepSegments:   2,
		CheckpointMode: CheckpointIncremental,
		ChainMax:       chainMax,
	}}
}

// TestIncrementalCheckpointChainAndRecovery drives incremental mode until
// chain files exist, then recovers through base + chain + tail and keeps
// committing gaplessly.
func TestIncrementalCheckpointChainAndRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := incOpts(dir, 0) // default ChainMax
	g := openDurable(t, pathGraph, opts)
	countAt := runScriptDurable(t, g)
	last := uint64(len(resumeScript))
	st := g.Stats()
	if st.WALCheckpoints < 2 {
		t.Fatalf("need a full then incremental checkpoint, got %d: %+v", st.WALCheckpoints, st)
	}
	if st.WALChainSegments == 0 {
		t.Fatalf("incremental mode never chained a segment: %+v", st)
	}
	g.Close()

	matches, err := filepath.Glob(filepath.Join(dir, "*"+chainSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no %s chain files on disk (%v)", chainSuffix, err)
	}
	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	rec := r.Recovery()
	if rec.ChainSegments == 0 {
		t.Fatalf("recovery saw no chain: %+v", rec)
	}
	if !rec.HasCheckpoint || rec.RecoveredSeq != last {
		t.Fatalf("recovered %+v, want checkpoint at seq %d", rec, last)
	}
	if got := count(t, r, edgePattern, graph.EdgeInduced); got != countAt[last] {
		t.Fatalf("recovered count %d, want %d", got, countAt[last])
	}
	com, err := r.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 0, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if com.FirstSeq != last+1 {
		t.Fatalf("post-recovery seq %d, want %d", com.FirstSeq, last+1)
	}
}

// TestIncrementalChainMaxRewritesBase pins the chain bound: once the
// chain holds ChainMax files, the next checkpoint rewrites the base and
// clears them, so the chain stays bounded by ChainMax plus one cycle's
// covered segments instead of growing forever.
func TestIncrementalChainMaxRewritesBase(t *testing.T) {
	dir := t.TempDir()
	const chainMax = 2
	opts := incOpts(dir, chainMax)
	g := openDurable(t, pathGraph, opts)
	defer g.Close()
	// One checkpoint cycle chains at most KeepSegments+1 covered segments.
	bound := chainMax + opts.Durability.KeepSegments + 1
	sawChain, sawRewrite := false, false
	prev := 0
	for i := 0; i < 24; i++ {
		m := Mutation{Op: OpInsertEdge, Src: 2, Dst: 3}
		if i%2 == 1 {
			m.Op = OpDeleteEdge
		}
		if _, err := g.Mutate(context.Background(), []Mutation{m}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		st := g.Stats()
		if st.WALChainSegments > bound {
			t.Fatalf("batch %d: chain grew unbounded (%d files > %d): %+v", i, st.WALChainSegments, bound, st)
		}
		if st.WALChainSegments > 0 {
			sawChain = true
		}
		if st.WALChainSegments < prev {
			sawRewrite = true // a full checkpoint absorbed the chain
		}
		prev = st.WALChainSegments
	}
	if !sawChain {
		t.Fatal("chain never advanced; incremental mode was never exercised")
	}
	if !sawRewrite {
		t.Fatal("chain never shrank; ChainMax never forced a base rewrite")
	}
}

// TestCheckpointModeSwitch restarts an incremental-mode directory in full
// mode and back: both directions must recover, and a full checkpoint must
// absorb the leftover chain files.
func TestCheckpointModeSwitch(t *testing.T) {
	dir := t.TempDir()
	inc := incOpts(dir, 0)
	g := openDurable(t, pathGraph, inc)
	countAt := runScriptDurable(t, g)
	last := uint64(len(resumeScript))
	if st := g.Stats(); st.WALChainSegments == 0 {
		t.Fatalf("setup: no chain to hand over: %+v", st)
	}
	g.Close()

	full := inc
	full.Durability.CheckpointMode = CheckpointFull
	r := openDurable(t, pathGraph, full)
	if got := count(t, r, edgePattern, graph.EdgeInduced); got != countAt[last] {
		t.Fatalf("full-mode recovery count %d, want %d", got, countAt[last])
	}
	// Enough batches to seal KeepSegments+1 segments and force a full
	// checkpoint, which deletes every covered chain file.
	for i := 0; i < 6; i++ {
		m := Mutation{Op: OpInsertEdge, Src: 2, Dst: 3}
		if i%2 == 1 {
			m.Op = OpDeleteEdge
		}
		if _, err := r.Mutate(context.Background(), []Mutation{m}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if st := r.Stats(); st.WALChainSegments != 0 {
		t.Fatalf("full checkpoint left chain files behind: %+v", st)
	}
	wantCount := count(t, r, edgePattern, graph.EdgeInduced)
	r.Close()
	if matches, _ := filepath.Glob(filepath.Join(dir, "*"+chainSuffix)); len(matches) != 0 {
		t.Fatalf("chain files survived the full checkpoint: %v", matches)
	}

	back := openDurable(t, pathGraph, inc)
	defer back.Close()
	if got := count(t, back, edgePattern, graph.EdgeInduced); got != wantCount {
		t.Fatalf("incremental-mode recovery count %d, want %d", got, wantCount)
	}
}

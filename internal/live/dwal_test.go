package live

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"csce/internal/core"
	"csce/internal/graph"
)

// openDurable builds a live graph backed by a WAL directory, from a fresh
// engine parsed from text — the same way a restarted daemon reloads the
// base graph file before recovery replays the log on top.
func openDurable(t *testing.T, text string, opts Options) *Graph {
	t.Helper()
	g := graph.MustParse(text)
	lg, err := Open("dur", core.NewEngine(g), opts)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// TestDurableRecoveryRoundTrip pins the basic crash contract: close a
// durable graph, reopen the same directory with a fresh base engine, and
// the graph comes back at the exact committed seq, epoch, and counts —
// including labels minted at runtime, which survive by name.
func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{Dir: dir, Fsync: FsyncNever}}

	g := openDurable(t, pathGraph, opts)
	if rec := g.Recovery(); rec.RecoveredSeq != 0 || rec.ReplayedRecords != 0 || rec.HasCheckpoint || rec.TornTail {
		t.Fatalf("empty-dir recovery not pristine: %+v", rec)
	}
	ctx := context.Background()
	if _, err := g.Mutate(ctx, []Mutation{
		{Op: OpInsertEdge, Src: 2, Dst: 3},
		{Op: OpInsertEdge, Src: 0, Dst: 3},
	}); err != nil {
		t.Fatal(err)
	}
	// Mint a label the base graph file does not know: two C vertices and
	// an edge between them. Only the name makes their identity durable.
	cLabel := g.Names().Vertex("C")
	com, err := g.Mutate(ctx, []Mutation{
		{Op: OpAddVertex, VertexLabel: cLabel, LabelName: "C", LabelNamed: true},
		{Op: OpAddVertex, VertexLabel: cLabel, LabelName: "C", LabelNamed: true},
		{Op: OpInsertEdge, Src: 4, Dst: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCount := count(t, g, edgePattern, graph.EdgeInduced)
	g.Close()

	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	rec := r.Recovery()
	if rec.RecoveredSeq != com.LastSeq || rec.RecoveredEpoch != com.Epoch {
		t.Fatalf("recovered at seq %d epoch %d, want %d/%d", rec.RecoveredSeq, rec.RecoveredEpoch, com.LastSeq, com.Epoch)
	}
	if rec.ReplayedRecords != 5 || rec.HasCheckpoint || rec.TornTail {
		t.Fatalf("recovery shape: %+v", rec)
	}
	if got := count(t, r, edgePattern, graph.EdgeInduced); got != wantCount {
		t.Fatalf("recovered count %d, want %d", got, wantCount)
	}
	cc, err := graph.ParseStringWith("t undirected\nv 0 C\nv 1 C\ne 0 1\n", r.Names())
	if err != nil {
		t.Fatal(err)
	}
	if got := count(t, r, cc, graph.EdgeInduced); got != 2 {
		t.Fatalf("runtime-minted label C lost across restart: C-C count %d, want 2", got)
	}

	// The log keeps extending gapless after recovery.
	com2, err := r.Mutate(ctx, []Mutation{{Op: OpInsertEdge, Src: 1, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if com2.FirstSeq != com.LastSeq+1 || com2.Epoch != com.Epoch+1 {
		t.Fatalf("post-recovery commit %+v, want seq %d epoch %d", com2, com.LastSeq+1, com.Epoch+1)
	}
}

// TestDurableCheckpointAndRotation forces rotation on every batch and a
// tight retention so checkpoints must fire, then verifies a restart loads
// the checkpoint and replays only the uncovered suffix.
func TestDurableCheckpointAndRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{
		Dir:          dir,
		Fsync:        FsyncNever,
		SegmentSize:  1, // every batch seals its segment
		KeepSegments: 2,
	}}
	g := openDurable(t, pathGraph, opts)
	ctx := context.Background()
	var last Commit
	for i := 0; i < 8; i++ {
		m := Mutation{Op: OpInsertEdge, Src: 2, Dst: 3}
		if i%2 == 1 {
			m.Op = OpDeleteEdge
		}
		com, err := g.Mutate(ctx, []Mutation{m})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		last = com
	}
	st := g.Stats()
	if st.WALCheckpoints == 0 {
		t.Fatalf("no checkpoint fired: %+v", st)
	}
	if st.WALDiskSegments > opts.Durability.KeepSegments+2 {
		t.Fatalf("truncation did not keep up: %d segments on disk", st.WALDiskSegments)
	}
	wantCount := count(t, g, edgePattern, graph.EdgeInduced)
	g.Close()

	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	rec := r.Recovery()
	if !rec.HasCheckpoint {
		t.Fatalf("recovery ignored the checkpoint: %+v", rec)
	}
	if rec.RecoveredSeq != last.LastSeq || rec.RecoveredEpoch != last.Epoch {
		t.Fatalf("recovered at %d/%d, want %d/%d", rec.RecoveredSeq, rec.RecoveredEpoch, last.LastSeq, last.Epoch)
	}
	if rec.ReplayedRecords >= 8 {
		t.Fatalf("checkpoint saved nothing: replayed %d of 8 records", rec.ReplayedRecords)
	}
	if got := count(t, r, edgePattern, graph.EdgeInduced); got != wantCount {
		t.Fatalf("recovered count %d, want %d", got, wantCount)
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return matches[len(matches)-1] // names sort by first seq
}

// TestTornTailTruncated damages the final segment the way a crash does —
// a partial frame, and separately a zero-length frame header — and expects
// recovery to truncate back to the last whole record and carry on.
func TestTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"partial payload", append([]byte{40, 0, 0, 0, 1, 2, 3, 4}, make([]byte, 10)...)},
		{"zero-length frame", make([]byte, frameHeaderLen)},
		{"lone garbage byte", []byte{0xFF}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Durability: Durability{Dir: dir, Fsync: FsyncNever}}
			g := openDurable(t, pathGraph, opts)
			com, err := g.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 2, Dst: 3}})
			if err != nil {
				t.Fatal(err)
			}
			wantCount := count(t, g, edgePattern, graph.EdgeInduced)
			g.Close()

			seg := lastSegment(t, dir)
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			r := openDurable(t, pathGraph, opts)
			defer r.Close()
			rec := r.Recovery()
			if !rec.TornTail {
				t.Fatalf("torn tail not detected: %+v", rec)
			}
			if rec.RecoveredSeq != com.LastSeq {
				t.Fatalf("recovered seq %d, want %d", rec.RecoveredSeq, com.LastSeq)
			}
			if got := count(t, r, edgePattern, graph.EdgeInduced); got != wantCount {
				t.Fatalf("recovered count %d, want %d", got, wantCount)
			}
			// The truncated segment accepts appends again.
			com2, err := r.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 0, Dst: 3}})
			if err != nil {
				t.Fatal(err)
			}
			if com2.FirstSeq != com.LastSeq+1 {
				t.Fatalf("post-truncation seq %d, want %d", com2.FirstSeq, com.LastSeq+1)
			}
		})
	}
}

// TestCRCCorruptionMidLogRefused flips a payload byte in a NON-final
// segment: that cannot be a crash tail, so recovery must refuse rather
// than resurrect a gapped history.
func TestCRCCorruptionMidLogRefused(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{
		Dir:          dir,
		Fsync:        FsyncNever,
		SegmentSize:  1,   // rotate every batch: several segments
		KeepSegments: 100, // never checkpoint them away
	}}
	g := openDurable(t, pathGraph, opts)
	for i, m := range []Mutation{
		{Op: OpInsertEdge, Src: 2, Dst: 3},
		{Op: OpInsertEdge, Src: 0, Dst: 3},
		{Op: OpInsertEdge, Src: 0, Dst: 2},
	} {
		if _, err := g.Mutate(context.Background(), []Mutation{m}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	g.Close()

	matches, err := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
	if err != nil || len(matches) < 2 {
		t.Fatalf("need >= 2 segments, got %v (%v)", matches, err)
	}
	first := matches[0]
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // payload byte of the segment's last record
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	gr := graph.MustParse(pathGraph)
	if _, err := Open("dur", core.NewEngine(gr), opts); err == nil {
		t.Fatal("mid-log corruption must fail recovery")
	} else if !strings.Contains(err.Error(), "corrupt mid-log") {
		t.Fatalf("unexpected recovery error: %v", err)
	}
}

// TestRecordEncodingRoundTrip pins the frame format, in particular the
// biased name field: "no name" and "interned empty name" are different
// records and must decode back as such.
func TestRecordEncodingRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Epoch: 1, Mut: Mutation{Op: OpAddVertex, VertexLabel: 7}},
		{Seq: 2, Epoch: 1, Mut: Mutation{Op: OpAddVertex, VertexLabel: 3, LabelName: "", LabelNamed: true}},
		{Seq: 3, Epoch: 2, Mut: Mutation{Op: OpInsertEdge, Src: 9, Dst: 12, EdgeLabel: 5, LabelName: "likes", LabelNamed: true}},
		{Seq: 4, Epoch: 3, Mut: Mutation{Op: OpDeleteEdge, Src: 12, Dst: 9, EdgeLabel: 5}},
	}
	var buf []byte
	for _, r := range recs {
		buf = encodeRecord(buf, r)
	}
	for i, want := range recs {
		length := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
		payload := buf[frameHeaderLen : frameHeaderLen+length]
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d round-trip:\n got %+v\nwant %+v", i, got, want)
		}
		buf = buf[frameHeaderLen+length:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

// TestFsyncPolicies exercises the interval and always policies end to end
// (the crash semantics differ, the data path must not) and the flag
// spellings.
func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		if parsed, err := ParseFsyncPolicy(pol.String()); err != nil || parsed != pol {
			t.Fatalf("policy %v round-trip: %v %v", pol, parsed, err)
		}
		dir := t.TempDir()
		opts := Options{Durability: Durability{Dir: dir, Fsync: pol, FsyncEvery: time.Millisecond}}
		g := openDurable(t, pathGraph, opts)
		if _, err := g.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 2, Dst: 3}}); err != nil {
			t.Fatal(err)
		}
		if pol == FsyncAlways && g.Stats().WALFsyncs == 0 {
			t.Fatal("FsyncAlways did not sync on commit")
		}
		g.Close()
		r := openDurable(t, pathGraph, opts)
		if rec := r.Recovery(); rec.RecoveredSeq != 1 {
			t.Fatalf("policy %v: recovered seq %d, want 1", pol, rec.RecoveredSeq)
		}
		r.Close()
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy spelling must error")
	}
}

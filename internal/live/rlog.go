package live

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"csce/internal/ccsr"
)

// Resume log: the persisted half of the subscription resume window. The
// in-memory wal keeps the last WALRetention records and resumeBase keeps
// the state at exactly the oldest retained seq; together they answer any
// subscribe?from_seq inside the window. Both die with the process, so
// before this log existed a restart answered 410 to every pre-crash
// from_seq. The resume log persists the same two ingredients next to the
// WAL, in <wal-dir>/resume/:
//
//	<dir>/resume/00000000000000000001.rlog   chain file; name = file index
//	<dir>/resume/00000000000000000002.rlog   ...
//
// Files are numbered by a monotone file index (not by seq: a rebase may
// re-anchor the chain at a seq older than the newest file's records, and
// recovery depends on scanning files in creation order). Each file starts
// with an 8-byte magic and holds the WAL's frame format —
//
//	u32 payload length | u32 crc32(payload) | payload
//
// — where payload[0] is a kind byte:
//
//	kindBase: u64 seq | u64 epoch | ccsr-encoded store  (state at seq)
//	kindMut:  one WAL record body (putRecordBody)
//
// Scanning in file order rebuilds the window: a base record RESETS the
// chain (the old window is dead weight the moment a newer base lands),
// mutation records must then chain gaplessly from it, and mutation
// records seen before any base are skipped (a crash mid-rebase can leave
// a deleted-base prefix). A torn tail in the final file is truncated
// like a WAL crash tail; any earlier damage — or a seq gap after a base —
// cannot be explained by a crash and is refused as corruption (remedy:
// delete the resume directory; only the resume window is lost, never
// acknowledged data, which lives in the WAL proper).
//
// Appends are NOT individually fsynced: the log syncs on rotation,
// rebase, and close. Losing the page-cache tail to a power cut only
// shrinks the restorable window — recovery gap-fills from the fsynced
// WAL segments when they reach further than the resume log — so the
// commit path pays a buffered write, not a second fsync.
//
// An append error does not abort the commit: by the time the resume log
// runs, the batch is already durable in the WAL and will be replayed
// after a crash, so failing the client over auxiliary data would be a
// lie. The log instead marks itself broken (counted in stats) and the
// next rebase rewrites the chain from scratch, healing it if the disk
// recovered.
const (
	rlogMagic   = "CSCERSL1"
	rlogSuffix  = ".rlog"
	rlogDirName = "resume"

	rlogKindBase = 1
	rlogKindMut  = 2

	// maxBaseLen bounds one base payload (a whole serialized store).
	maxBaseLen = 1 << 31
)

// rlogFile is one on-disk chain file, sorted by file index.
type rlogFile struct {
	path string
	idx  uint64
	size int64
}

// resumeLog owns the chain files of one graph's persisted resume window.
// Appends are serialized by the graph's writer lock; the mutex covers
// stats readers.
type resumeLog struct {
	dir  string
	opts Durability
	obs  Observer

	mu       sync.Mutex
	files    []rlogFile // all chain files, cur last
	cur      *os.File   // active file (last of files); nil until openAppend/start
	encBuf   []byte     // reusable frame buffer for appendMuts
	rebases  uint64
	failures uint64
	broken   bool
	closed   bool
}

// rlogState is what load reconstructed from the chain files.
type rlogState struct {
	base      *ccsr.Store // state at exactly baseSeq; nil if no valid base
	baseSeq   uint64
	baseEpoch uint64
	tail      []Record // gapless records baseSeq+1 .. lastSeq
	torn      bool     // final file ended mid-frame and was truncated
}

// lastSeq is the newest seq the restored window covers.
func (s *rlogState) lastSeq() uint64 {
	if len(s.tail) > 0 {
		return s.tail[len(s.tail)-1].Seq
	}
	return s.baseSeq
}

// openResumeLog scans (creating if needed) the resume directory under the
// graph's WAL dir. The returned log is not yet writable: recovery must
// call load and then start or openAppend.
func openResumeLog(walDir string, opts Durability, obs Observer) (*resumeLog, error) {
	dir := filepath.Join(walDir, rlogDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: resume log dir: %w", err)
	}
	l := &resumeLog{dir: dir, opts: opts, obs: obs}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("live: resume log dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, rlogSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(name, rlogSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("live: resume log file %q: bad name", name)
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		l.files = append(l.files, rlogFile{path: filepath.Join(dir, name), idx: idx, size: info.Size()})
	}
	sort.Slice(l.files, func(i, j int) bool { return l.files[i].idx < l.files[j].idx })
	return l, nil
}

func rlogPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", idx, rlogSuffix))
}

// readRlogFile streams the frames of one chain file; fn receives the kind
// byte and the rest of the payload. Same torn-tail contract as
// readSegment: validEnd plus errTornTail marks the longest valid prefix.
func readRlogFile(path string, fn func(kind byte, body []byte) error) (validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	magic := make([]byte, len(rlogMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return 0, fmt.Errorf("%w: missing resume log header", errTornTail)
	}
	if string(magic) != rlogMagic {
		return 0, fmt.Errorf("bad resume log magic %q", magic)
	}
	offset := int64(len(rlogMagic))
	header := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if err == io.EOF {
				return offset, nil // clean end
			}
			return offset, errTornTail
		}
		le := binary.LittleEndian
		length := le.Uint32(header[0:])
		crc := le.Uint32(header[4:])
		if length < 1 || int64(length) > maxBaseLen {
			return offset, errTornTail
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return offset, errTornTail
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return offset, errTornTail
		}
		if err := fn(payload[0], payload[1:]); err != nil {
			return offset, err
		}
		offset += frameHeaderLen + int64(length)
	}
}

// load scans the chain files into the restorable window, truncating a
// torn tail in the final file. Any earlier damage, or a seq gap after a
// base record, is corruption: the error tells the operator to delete the
// resume directory (the WAL proper holds all acknowledged data).
func (l *resumeLog) load() (*rlogState, error) {
	st := &rlogState{}
	haveBase := false
	for i := range l.files {
		file := &l.files[i]
		final := i == len(l.files)-1
		validEnd, err := readRlogFile(file.path, func(kind byte, body []byte) error {
			switch kind {
			case rlogKindBase:
				if len(body) < 16 {
					return fmt.Errorf("base record of %d bytes", len(body))
				}
				seq := binary.LittleEndian.Uint64(body[0:])
				epoch := binary.LittleEndian.Uint64(body[8:])
				store, err := ccsr.Decode(bytes.NewReader(body[16:]))
				if err != nil {
					return fmt.Errorf("base store at seq %d: %w", seq, err)
				}
				st.base, st.baseSeq, st.baseEpoch = store, seq, epoch
				st.tail = nil
				haveBase = true
				return nil
			case rlogKindMut:
				rec, err := decodeRecord(body)
				if err != nil {
					return err
				}
				if !haveBase {
					// A crash mid-rebase can delete the base's file before
					// the files holding its tail; skip orphaned records.
					return nil
				}
				if want := st.lastSeq() + 1; rec.Seq != want {
					return fmt.Errorf("resume chain gap: seq %d follows %d", rec.Seq, want-1)
				}
				st.tail = append(st.tail, rec)
				return nil
			default:
				return fmt.Errorf("unknown resume record kind %d", kind)
			}
		})
		if errors.Is(err, errTornTail) {
			if !final {
				return nil, fmt.Errorf(
					"live: resume log %s is corrupt mid-chain (not a crash tail); delete the %s directory to rebuild the resume window from scratch",
					filepath.Base(file.path), l.dir)
			}
			if terr := os.Truncate(file.path, validEnd); terr != nil {
				return nil, fmt.Errorf("live: truncate resume log tail: %w", terr)
			}
			file.size = validEnd
			st.torn = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf(
				"live: resume log %s: %v; delete the %s directory to rebuild the resume window from scratch",
				filepath.Base(file.path), err, l.dir)
		}
	}
	if !haveBase {
		return &rlogState{torn: st.torn}, nil
	}
	return st, nil
}

// frameBase appends one framed base record (state at seq) to buf.
func frameBase(buf []byte, st *ccsr.Store, seq, epoch uint64) ([]byte, error) {
	var enc bytes.Buffer
	if err := st.Encode(&enc); err != nil {
		return nil, err
	}
	payloadLen := 1 + 16 + enc.Len()
	if payloadLen > maxBaseLen {
		return nil, fmt.Errorf("base store of %d bytes exceeds the resume log frame limit", enc.Len())
	}
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen+payloadLen)...)
	payload := buf[start+frameHeaderLen:]
	payload[0] = rlogKindBase
	binary.LittleEndian.PutUint64(payload[1:], seq)
	binary.LittleEndian.PutUint64(payload[9:], epoch)
	copy(payload[17:], enc.Bytes())
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// frameMut appends one framed mutation record to buf.
func frameMut(buf []byte, r Record) []byte {
	payloadLen := 1 + recordBodyLen(r)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen+payloadLen)...)
	payload := buf[start+frameHeaderLen:]
	payload[0] = rlogKindMut
	putRecordBody(payload[1:], r)
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// nextIdxLocked returns the file index after the newest existing file.
func (l *resumeLog) nextIdxLocked() uint64 {
	if n := len(l.files); n > 0 {
		return l.files[n-1].idx + 1
	}
	return 1
}

// createFileLocked opens a fresh chain file at idx and appends it to the
// file list as the active file.
func (l *resumeLog) createFileLocked(idx uint64) error {
	f, err := os.OpenFile(rlogPath(l.dir, idx), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(rlogMagic); err != nil {
		_ = f.Close()
		return err
	}
	l.cur = f
	l.files = append(l.files, rlogFile{path: f.Name(), idx: idx, size: int64(len(rlogMagic))})
	return nil
}

// openAppend reopens the newest chain file for appending; load must have
// run first (it truncates any torn tail). With no files yet the caller
// must start a fresh chain instead.
func (l *resumeLog) openAppend() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.files)
	if n == 0 {
		return fmt.Errorf("live: resume log has no chain files; start a fresh chain")
	}
	info := l.files[n-1]
	f, err := os.OpenFile(info.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if _, err := f.Seek(info.size, io.SeekStart); err != nil {
		_ = f.Close()
		return err
	}
	l.cur = f
	return nil
}

// start begins a fresh chain: every existing file is deleted and a new
// one is written holding only a base record for the state at seq. Used on
// first boot and whenever recovery could not restore the old window.
func (l *resumeLog) start(st *ccsr.Store, seq, epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rewriteLocked(st, seq, epoch, nil)
}

// rebase rewrites the chain as one fresh file — base record for the state
// at seq, then the retained tail — then deletes every older file,
// oldest first (so a crash mid-delete leaves a skippable orphan prefix,
// never a gapped chain). A successful rebase clears the broken flag: the
// new chain owes nothing to whatever write failed.
func (l *resumeLog) rebase(st *ccsr.Store, seq, epoch uint64, tail []Record) error {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.rewriteLocked(st, seq, epoch, tail); err != nil {
		l.failures++
		l.broken = true
		return err
	}
	l.rebases++
	observe(l.obs.WALCheckpoint, start)
	return nil
}

// rewriteLocked is the shared chain rewrite under l.mu.
func (l *resumeLog) rewriteLocked(st *ccsr.Store, seq, epoch uint64, tail []Record) error {
	if l.cur != nil {
		_ = l.cur.Close()
		l.cur = nil
	}
	old := l.files
	l.files = append([]rlogFile(nil), old...)
	idx := l.nextIdxLocked()
	if err := l.createFileLocked(idx); err != nil {
		l.files = old
		return fmt.Errorf("live: resume log rewrite: %w", err)
	}
	buf, err := frameBase(nil, st, seq, epoch)
	if err != nil {
		return fmt.Errorf("live: resume log base: %w", err)
	}
	for _, r := range tail {
		buf = frameMut(buf, r)
	}
	if _, err := l.cur.Write(buf); err != nil {
		return fmt.Errorf("live: resume log rewrite: %w", err)
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("live: resume log sync: %w", err)
	}
	l.files[len(l.files)-1].size += int64(len(buf))
	// The new chain is durable; old files are now skippable history.
	kept := l.files[:0]
	for _, f := range l.files {
		if f.idx == idx {
			kept = append(kept, f)
			continue
		}
		if err := os.Remove(f.path); err != nil {
			kept = append(kept, f)
		}
	}
	l.files = kept
	l.broken = false
	return nil
}

// appendMuts writes one committed batch to the active chain file,
// rotating when the file outgrew SegmentSize. Called under the graph's
// writer lock after the WAL accepted the batch; an error here marks the
// log broken (the next rebase heals it) but never aborts the commit —
// the batch is already durable in the WAL.
func (l *resumeLog) appendMuts(recs []Record) error {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken || l.cur == nil {
		return nil // already waiting on a rebase to heal
	}
	buf := l.encBuf[:0]
	for _, r := range recs {
		buf = frameMut(buf, r)
	}
	l.encBuf = buf
	if _, err := l.cur.Write(buf); err != nil {
		l.failures++
		l.broken = true
		return fmt.Errorf("live: resume log append: %w", err)
	}
	n := len(l.files) - 1
	l.files[n].size += int64(len(buf))
	if l.files[n].size >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			l.failures++
			l.broken = true
			return fmt.Errorf("live: resume log rotate: %w", err)
		}
	}
	observe(l.obs.ResumeLogAppend, start)
	return nil
}

// rotateLocked seals the active file (sync + close) and opens the next.
func (l *resumeLog) rotateLocked() error {
	if err := l.cur.Sync(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return err
	}
	l.cur = nil
	return l.createFileLocked(l.nextIdxLocked())
}

// markBroken records an out-of-band failure (a reopen or start that did
// not complete): appends stop until the next rebase rewrites the chain.
func (l *resumeLog) markBroken() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failures++
	l.broken = true
}

// needsRebase reports whether the chain accumulated enough sealed files
// for retention to demand a rewrite — or whether a failed append left the
// log broken, in which case the rewrite doubles as the repair.
func (l *resumeLog) needsRebase() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.files) > l.opts.KeepSegments+1 || l.broken
}

// diskStats reports chain file count, total bytes, and the rebase/failure
// counters.
func (l *resumeLog) diskStats() (files int, bytes int64, rebases, failures uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, f := range l.files {
		bytes += f.size
	}
	return len(l.files), bytes, l.rebases, l.failures
}

// close syncs and closes the active chain file. Idempotent.
func (l *resumeLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.cur == nil {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		_ = l.cur.Close()
		l.cur = nil
		return err
	}
	err := l.cur.Close()
	l.cur = nil
	return err
}

// Package live makes registered data graphs writable while queries keep
// running: the mutation side of the serving daemon, built on ccsr
// incremental maintenance and the delta (Graphflow-style) continuous-query
// decomposition.
//
// Three pieces cooperate per graph:
//
//   - an append-only in-memory write-ahead log of typed mutations
//     (AddVertex / InsertEdge / DeleteEdge) with per-graph sequence
//     numbers, the audit and sequencing record of everything committed;
//
//   - a batcher: Mutate applies a whole batch to a private ccsr.Store
//     clone under the writer lock, then publishes the result with one
//     atomic epoch/refcounted snapshot swap. In-flight queries finish on
//     the snapshot they pinned; new queries see the new epoch; a retired
//     snapshot is dropped when its refcount drains. Readers never take the
//     writer lock, so mutation traffic cannot block matching;
//
//   - continuous-query subscriptions: a client registers a pattern and
//     receives the delta embeddings (computed by delta.NewEmbeddings at
//     each insertion's intermediate state, so the exclusion rule holds
//     across a batch) as insertions commit. Only the monotone variants are
//     accepted — under vertex-induced semantics an insertion can destroy
//     existing embeddings, so its delta is not a pure addition.
//
// Commit protocol: a batch is atomic. It applies speculatively to the
// private writer clone; on any invalid mutation (or caller cancellation
// mid-delta) the writer is rebuilt from the current published snapshot and
// nothing is logged or published. On success the batch is appended to the
// WAL — first to the disk log when Options.Durability enables one, then to
// the in-memory tail — the swap publishes the new epoch, and subscribers
// are notified. The swap is the commit point, so the log never contains
// aborted mutations, and a crash before the disk append returns means the
// batch was never acknowledged.
//
// Durability: with Options.Durability.Dir set, every committed record also
// lands in segment files under that directory (CRC-checksummed, fsynced
// per the configured policy) and Open replays checkpoint + segments at
// startup, recovering the exact committed seq and epoch; see dwal.go for
// the format and crash semantics, including the incremental checkpoint
// chain selected by Durability.CheckpointMode. Subscribers that reconnect
// resume from any retained seq with ResumeSubscribe: replayed deltas (and
// retraction events for deletions) arrive gapless before the stream hands
// over to live commits. The resume window is itself persisted (rlog.go),
// so a from_seq that was resumable before a restart replays the identical
// events after it — recovery gap-fills any resume-log tail lost to the
// crash from the WAL.
package live

import (
	"errors"
	"fmt"

	"csce/internal/graph"
)

// Op is the type of one mutation.
type Op uint8

const (
	// OpAddVertex appends an isolated vertex with VertexLabel.
	OpAddVertex Op = iota
	// OpInsertEdge adds the edge (Src, Dst, EdgeLabel).
	OpInsertEdge
	// OpDeleteEdge removes the edge (Src, Dst, EdgeLabel).
	OpDeleteEdge
)

// String renders the op as its wire name.
func (o Op) String() string {
	switch o {
	case OpAddVertex:
		return "add_vertex"
	case OpInsertEdge:
		return "insert_edge"
	case OpDeleteEdge:
		return "delete_edge"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Mutation is one typed entry of a batch. Src/Dst/EdgeLabel apply to the
// edge ops; VertexLabel to OpAddVertex.
type Mutation struct {
	Op          Op
	Src, Dst    graph.VertexID
	EdgeLabel   graph.EdgeLabel
	VertexLabel graph.Label
	// LabelName is the symbolic name behind EdgeLabel/VertexLabel, when
	// the caller interned one (LabelNamed true). Interned ids depend on
	// arrival order, so the durable WAL persists the name and replay
	// re-interns it — that keeps labels stable across restarts even for
	// labels first seen at runtime. LabelNamed false means "trust the
	// raw id" (programmatic callers); it is distinct from an interned
	// empty name, which is a valid label of its own.
	LabelName  string
	LabelNamed bool
}

// ErrVertexInduced is returned by Subscribe for the vertex-induced
// variant: an insertion can destroy existing vertex-induced embeddings
// (their vertex sets now induce an extra edge), so no pure delta stream
// exists — recount instead. This mirrors delta.NewEmbeddings's contract.
var ErrVertexInduced = errors.New(
	"live: vertex-induced matching is not monotone under edge insertions; subscriptions support edge-induced and homomorphic patterns only")

// ErrClosed is returned by Mutate and Subscribe after Close.
var ErrClosed = errors.New("live: graph is closed")

// ErrSeqTruncated is returned by ResumeSubscribe when the requested
// position predates the oldest resumable record: retention already
// truncated that part of history, so a gapless replay is impossible. The
// HTTP layer maps it to 410 Gone; the client must recount from a fresh
// snapshot instead of trusting its running sum.
var ErrSeqTruncated = errors.New("live: requested seq predates retained history")

// ErrSeqFuture is returned by ResumeSubscribe when from_seq is beyond the
// last committed sequence number — the client is asking to resume from a
// position that never existed.
var ErrSeqFuture = errors.New("live: requested seq is beyond the committed log")

// Options tunes one live graph; the zero value takes defaults.
type Options struct {
	// SubscriberBuffer is the per-subscription event channel capacity; a
	// subscriber that falls this many events behind is dropped rather than
	// allowed to block commits (default 256).
	SubscriberBuffer int
	// WALRetention bounds the in-memory log to the most recent entries;
	// sequence numbers keep increasing past truncation (default 4096).
	// It is also the resume horizon: ResumeSubscribe can replay from any
	// seq still inside this window.
	WALRetention int
	// Durability configures the disk-backed WAL; the zero value (empty
	// Dir) keeps the graph purely in-memory.
	Durability Durability
	// Observer receives durations of WAL appends, fsyncs, replays, and
	// checkpoints for external histogramming. All hooks optional.
	Observer Observer
}

func (o Options) withDefaults() Options {
	if o.SubscriberBuffer <= 0 {
		o.SubscriberBuffer = 256
	}
	if o.WALRetention <= 0 {
		o.WALRetention = 4096
	}
	return o
}

package live

import (
	"context"
	"testing"
	"time"

	"csce/internal/graph"
	"csce/internal/prefilter"
)

// TestPrefilterTracksCommits proves the incrementally-maintained signature
// equals a from-scratch rebuild of the published store after every commit,
// that rejected batches leave it untouched, and that the SigMaintain
// observer fires once per commit.
func TestPrefilterTracksCommits(t *testing.T) {
	var maintained int
	g := openDurable(t, pathGraph, Options{Observer: Observer{
		SigMaintain: func(time.Duration) { maintained++ },
	}})
	defer g.Close()
	ctx := context.Background()

	checkAgainstRebuild := func(stage string) {
		t.Helper()
		snap := g.Acquire()
		defer snap.Release()
		want, err := prefilter.Build(snap.Store())
		if err != nil {
			t.Fatalf("%s: rebuild: %v", stage, err)
		}
		if got, wantS := g.Prefilter().Dump(), want.Dump(); got != wantS {
			t.Fatalf("%s: signature diverged from published store:\n--- live\n%s\n--- rebuild\n%s", stage, got, wantS)
		}
	}
	checkAgainstRebuild("open")

	bLabel := g.Names().Vertex("B")
	if _, err := g.Mutate(ctx, []Mutation{
		{Op: OpAddVertex, VertexLabel: bLabel, LabelName: "B", LabelNamed: true},
		{Op: OpInsertEdge, Src: 3, Dst: 4},
		{Op: OpInsertEdge, Src: 0, Dst: 3},
	}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRebuild("inserts")
	if _, err := g.Mutate(ctx, []Mutation{
		{Op: OpDeleteEdge, Src: 1, Dst: 2},
	}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRebuild("delete")

	// A failed batch (duplicate edge after a valid insert) must roll back
	// without touching the signature.
	before := g.Prefilter().Dump()
	if _, err := g.Mutate(ctx, []Mutation{
		{Op: OpInsertEdge, Src: 1, Dst: 2},
		{Op: OpInsertEdge, Src: 0, Dst: 1}, // duplicate: aborts the batch
	}); err == nil {
		t.Fatal("duplicate insert should fail the batch")
	}
	if got := g.Prefilter().Dump(); got != before {
		t.Fatalf("rejected batch mutated the signature:\n--- after\n%s\n--- before\n%s", got, before)
	}
	checkAgainstRebuild("rollback")

	if maintained != 2 {
		t.Fatalf("SigMaintain fired %d times, want 2 (committed batches only)", maintained)
	}

	// The signature actually gates: an A-B edge exists now, an A-C cannot.
	ab, err := graph.ParseStringWith("t undirected\nv 0 A\nv 1 B\ne 0 1\n", g.Names())
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Prefilter().Check(ab, graph.EdgeInduced); !d.Admit {
		t.Fatalf("A-B should admit, got %s", d.Reason(g.Names()))
	}
	cLabel := g.Names().Vertex("C")
	pb := graph.NewBuilder(false)
	pb.AddVertex(g.Names().Vertex("A"))
	pb.AddVertex(cLabel)
	pb.AddEdge(0, 1, 0)
	ac := pb.MustBuild()
	if d := g.Prefilter().Check(ac, graph.EdgeInduced); d.Admit {
		t.Fatal("A-C should be rejected")
	}
}

// TestPrefilterRecoveryRebuild closes a durable graph mid-history and
// reopens it: the signature rebuilt from the recovered store must be
// byte-identical to the incrementally-maintained one at close time —
// including labels minted at runtime, which survive by name.
func TestPrefilterRecoveryRebuild(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{Dir: dir, Fsync: FsyncNever}}
	ctx := context.Background()

	g := openDurable(t, pathGraph, opts)
	cLabel := g.Names().Vertex("C")
	if _, err := g.Mutate(ctx, []Mutation{
		{Op: OpAddVertex, VertexLabel: cLabel, LabelName: "C", LabelNamed: true},
		{Op: OpAddVertex, VertexLabel: cLabel, LabelName: "C", LabelNamed: true},
		{Op: OpInsertEdge, Src: 4, Dst: 5},
		{Op: OpInsertEdge, Src: 0, Dst: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Mutate(ctx, []Mutation{
		{Op: OpDeleteEdge, Src: 0, Dst: 1},
	}); err != nil {
		t.Fatal(err)
	}
	want := g.Prefilter().Dump()
	g.Close()

	r := openDurable(t, pathGraph, opts)
	defer r.Close()
	if got := r.Prefilter().Dump(); got != want {
		t.Fatalf("recovered signature differs from pre-crash incremental state:\n--- recovered\n%s\n--- incremental\n%s", got, want)
	}
}

package live

import (
	"context"
	"fmt"
	"time"

	"csce/internal/ccsr"
	"csce/internal/delta"
	"csce/internal/graph"
)

// Resume is a subscription that first replays history. ResumeSubscribe
// registers the live side and captures the replay inputs in one critical
// section, so the two halves meet without a gap: Replay emits every delta
// and retraction of seqs (fromSeq, lastSeq-at-registration], and Live()
// delivers exactly the batches committed after registration.
type Resume struct {
	g   *Graph
	sub *Subscription

	// base is a private clone of the graph's resume base: the state at
	// exactly the oldest-resumable seq. records is the full retained tail
	// above that seq; Replay rolls base forward through the prefix at or
	// below fromSeq silently, then recomputes events for the rest.
	base    *ccsr.Store
	records []Record
	fromSeq uint64

	replayed bool
}

// ResumeSubscribe registers a continuous query that resumes after fromSeq:
// the caller has already seen every event up to and including fromSeq
// (0 means "from the beginning of retained history"). It fails with
// ErrSeqTruncated when retention already dropped records above fromSeq —
// a gapless replay is impossible and the client must recount — and with
// ErrSeqFuture when fromSeq is beyond the committed log. The same pattern
// restrictions as Subscribe apply.
//
// Call Replay before consuming Live(); the combined stream is gapless and
// in seq order.
func (g *Graph) ResumeSubscribe(p *graph.Graph, variant graph.Variant, fromSeq uint64) (*Resume, error) {
	if variant == graph.VertexInduced {
		return nil, ErrVertexInduced
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrClosed
	}
	if p.Directed() != g.writer.Directed() {
		return nil, fmt.Errorf("live: pattern directedness mismatch (graph %q)", g.name)
	}
	oldest := g.wal.oldestResumable()
	last := g.wal.lastSeq()
	if fromSeq < oldest {
		return nil, fmt.Errorf("%w (from_seq %d, oldest resumable %d)", ErrSeqTruncated, fromSeq, oldest)
	}
	if fromSeq > last {
		return nil, fmt.Errorf("%w (from_seq %d, last committed %d)", ErrSeqFuture, fromSeq, last)
	}

	// Registration and capture share this one critical section: the tail
	// ends at the last committed seq, and every later commit lands on the
	// live channel — no seq can fall between the two.
	g.nextSubID++
	sub := &Subscription{
		id:        g.nextSubID,
		g:         g,
		pattern:   p,
		variant:   variant,
		joinEpoch: g.epoch,
		ch:        make(chan Event, g.opts.SubscriberBuffer),
	}
	g.subs[sub.id] = sub
	g.stats.subsTotal.Add(1)
	g.stats.subsResumed.Add(1)
	return &Resume{
		g:       g,
		sub:     sub,
		base:    g.resumeBase.Clone(),
		records: g.wal.tail(oldest),
		fromSeq: fromSeq,
	}, nil
}

// Live returns the live half of the resumed subscription. Its channel
// starts filling immediately, buffered, so a Replay that takes a while
// does not lose commits — but a replay slower than SubscriberBuffer live
// events will overflow it and drop the subscriber, exactly like any slow
// consumer.
func (r *Resume) Live() *Subscription { return r.sub }

// Replay recomputes the missed events by rolling the captured base state
// through the captured tail: for each insertion past fromSeq the delta
// embeddings at that intermediate state, for each deletion the retracted
// embeddings, each batch closed by a commit marker — the same stream the
// subscriber would have received live. Events arrive through emit in seq
// order; a non-nil error from emit (or ctx cancellation) aborts the
// replay and closes the subscription. Replay must be called exactly once,
// before consuming Live().
func (r *Resume) Replay(ctx context.Context, emit func(Event) error) error {
	if r.replayed {
		return fmt.Errorf("live: Replay called twice")
	}
	r.replayed = true
	start := time.Now()
	i := 0
	// Records the subscriber has already seen only advance the state.
	for ; i < len(r.records) && r.records[i].Seq <= r.fromSeq; i++ {
		if err := applyRaw(r.base, r.records[i].Mut); err != nil {
			r.sub.Close()
			return fmt.Errorf("live: resume roll-forward seq %d: %w", r.records[i].Seq, err)
		}
	}
	var deltas, retractions uint64
	for ; i < len(r.records); i++ {
		if err := ctx.Err(); err != nil {
			r.sub.Close()
			return err
		}
		rec := r.records[i]
		events, err := r.eventsFor(ctx, rec)
		if err != nil {
			r.sub.Close()
			return fmt.Errorf("live: resume replay seq %d (%s): %w", rec.Seq, rec.Mut.Op, err)
		}
		for _, ev := range events {
			if ev.Kind == EventDelta {
				deltas++
			} else {
				retractions++
			}
			if err := emit(ev); err != nil {
				r.sub.Close()
				return err
			}
		}
		// Epoch boundaries are batch boundaries; close each replayed
		// batch with the same commit marker the live stream sends.
		if i+1 == len(r.records) || r.records[i+1].Epoch != rec.Epoch {
			marker := Event{
				Kind:        EventCommit,
				Seq:         rec.Seq,
				Epoch:       rec.Epoch,
				Deltas:      deltas,
				Retractions: retractions,
			}
			deltas, retractions = 0, 0
			if err := emit(marker); err != nil {
				r.sub.Close()
				return err
			}
		}
	}
	r.base = nil // the replay state is dead weight once caught up
	r.records = nil
	observe(r.g.opts.Observer.ResumeReplay, start)
	return nil
}

// eventsFor applies one record to the replay state and returns the events
// it implies for the resumed pattern, in the order the live stream would
// have sent them.
func (r *Resume) eventsFor(ctx context.Context, rec Record) ([]Event, error) {
	m := rec.Mut
	switch m.Op {
	case OpAddVertex:
		return nil, applyRaw(r.base, m)
	case OpInsertEdge:
		if err := applyRaw(r.base, m); err != nil {
			return nil, err
		}
		if !r.sub.patternUsesLabel(m.EdgeLabel) {
			return nil, nil
		}
		return r.enumerate(ctx, EventDelta, delta.NewEmbeddings, rec)
	case OpDeleteEdge:
		var events []Event
		if r.sub.patternUsesLabel(m.EdgeLabel) {
			var err error
			events, err = r.enumerate(ctx, EventRetract, delta.RemovedEmbeddings, rec)
			if err != nil {
				return nil, err
			}
		}
		return events, applyRaw(r.base, m)
	default:
		return nil, fmt.Errorf("unknown op %d", m.Op)
	}
}

func (r *Resume) enumerate(
	ctx context.Context,
	kind EventKind,
	enumerate func(*ccsr.Store, *graph.Graph, delta.Edge, delta.Options) (uint64, error),
	rec Record,
) ([]Event, error) {
	m := rec.Mut
	var events []Event
	_, err := enumerate(r.base, r.sub.pattern, delta.Edge{Src: m.Src, Dst: m.Dst, Label: m.EdgeLabel}, delta.Options{
		Variant: r.sub.variant,
		Ctx:     ctx,
		OnEmbedding: func(mapping []graph.VertexID) bool {
			events = append(events, Event{
				Kind:      kind,
				Seq:       rec.Seq,
				Epoch:     rec.Epoch,
				Src:       m.Src,
				Dst:       m.Dst,
				EdgeLabel: m.EdgeLabel,
				Embedding: append([]graph.VertexID(nil), mapping...),
			})
			return true
		},
	})
	if err != nil {
		return nil, err
	}
	return events, ctx.Err()
}

package live

import (
	"context"
	"strings"
	"sync"
	"testing"

	"csce/internal/core"
	"csce/internal/graph"
)

func newTestGraph(t *testing.T, text string, opts Options) *Graph {
	t.Helper()
	g := graph.MustParse(text)
	lg := NewGraph("test", core.NewEngine(g), opts)
	t.Cleanup(lg.Close)
	return lg
}

const pathGraph = "t undirected\nv 0 A\nv 1 A\nv 2 A\nv 3 A\ne 0 1\ne 1 2\n"

var (
	edgePattern = graph.MustParse("t undirected\nv 0 A\nv 1 A\ne 0 1\n")
	triPattern  = graph.MustParse("t undirected\nv 0 A\nv 1 A\nv 2 A\ne 0 1\ne 1 2\ne 0 2\n")
)

func count(t *testing.T, g *Graph, p *graph.Graph, v graph.Variant) uint64 {
	t.Helper()
	snap := g.Acquire()
	defer snap.Release()
	n, err := snap.Engine().Count(p, v)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestMutateAssignsContiguousSeqs pins the WAL contract: 1-based, gapless
// across batches, shared epoch per batch, retention by truncation only.
func TestMutateAssignsContiguousSeqs(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{WALRetention: 3})

	com, err := g.Mutate(context.Background(), []Mutation{
		{Op: OpInsertEdge, Src: 2, Dst: 3},
		{Op: OpInsertEdge, Src: 0, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if com.FirstSeq != 1 || com.LastSeq != 2 || com.Epoch != 1 {
		t.Fatalf("first batch: %+v", com)
	}
	com, err = g.Mutate(context.Background(), []Mutation{
		{Op: OpDeleteEdge, Src: 0, Dst: 3},
		{Op: OpAddVertex, VertexLabel: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if com.FirstSeq != 3 || com.LastSeq != 4 || com.Epoch != 2 {
		t.Fatalf("second batch: %+v", com)
	}
	if len(com.AddedVertices) != 1 || com.AddedVertices[0] != 4 {
		t.Fatalf("added vertices: %v", com.AddedVertices)
	}

	// Retention 3 keeps seqs 2..4; seq 1 is truncated but numbering holds.
	tail := g.Tail(0)
	if len(tail) != 3 || tail[0].Seq != 2 || tail[2].Seq != 4 {
		t.Fatalf("tail after retention: %+v", tail)
	}
	if tail[0].Epoch != 1 || tail[1].Epoch != 2 || tail[2].Epoch != 2 {
		t.Fatalf("epochs in tail: %+v", tail)
	}
	st := g.Stats()
	if st.LastSeq != 4 || st.WALRetained != 3 || st.WALTruncated != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Batches != 2 || st.EdgesInserted != 2 || st.EdgesDeleted != 1 || st.VerticesAdded != 1 {
		t.Fatalf("op counters: %+v", st)
	}
}

// TestSnapshotPinAndDrain pins the swap protocol: a pinned snapshot keeps
// serving its epoch across commits and drains only on release.
func TestSnapshotPinAndDrain(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{})

	old := g.Acquire()
	if old.Epoch() != 0 {
		t.Fatalf("initial epoch %d", old.Epoch())
	}
	before, err := old.Engine().Count(edgePattern, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := g.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 2, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot still answers for its own epoch.
	pinned, err := old.Engine().Count(edgePattern, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	if pinned != before {
		t.Fatalf("pinned snapshot changed: %d -> %d", before, pinned)
	}
	// An undirected edge pattern maps both orientations: +2 per insert.
	if got := count(t, g, edgePattern, graph.EdgeInduced); got != before+2 {
		t.Fatalf("new epoch count %d, want %d", got, before+2)
	}

	st := g.Stats()
	if st.SnapshotsLive != 2 || st.SnapshotsDrained != 0 {
		t.Fatalf("before release: %+v", st)
	}
	old.Release()
	st = g.Stats()
	if st.SnapshotsLive != 1 || st.SnapshotsDrained != 1 {
		t.Fatalf("after release: %+v", st)
	}
}

// TestMutateBatchIsAtomic pins rollback: a batch that fails mid-way (the
// middle mutation deletes a missing edge) leaves no trace — not in the
// counts, not in the WAL, not in the epoch.
func TestMutateBatchIsAtomic(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{})
	before := count(t, g, edgePattern, graph.EdgeInduced)

	_, err := g.Mutate(context.Background(), []Mutation{
		{Op: OpInsertEdge, Src: 2, Dst: 3},
		{Op: OpDeleteEdge, Src: 0, Dst: 3}, // no such edge
		{Op: OpInsertEdge, Src: 0, Dst: 2},
	})
	if err == nil || !strings.Contains(err.Error(), "mutation 1 (delete_edge)") {
		t.Fatalf("err = %v", err)
	}
	if got := count(t, g, edgePattern, graph.EdgeInduced); got != before {
		t.Fatalf("failed batch leaked: %d -> %d", before, got)
	}
	st := g.Stats()
	if st.Epoch != 0 || st.LastSeq != 0 || st.BatchesFailed != 1 || st.Batches != 0 {
		t.Fatalf("stats after failed batch: %+v", st)
	}

	// The writer must still accept the valid prefix afterwards.
	if _, err := g.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 2, Dst: 3}}); err != nil {
		t.Fatal(err)
	}
	if got := count(t, g, edgePattern, graph.EdgeInduced); got != before+2 {
		t.Fatalf("post-rollback mutate: %d, want %d", got, before+2)
	}
}

// TestMutateCancelledContext pins the abort path: a context cancelled
// before (or during) the batch commits nothing.
func TestMutateCancelledContext(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Mutate(ctx, []Mutation{{Op: OpInsertEdge, Src: 2, Dst: 3}}); err == nil {
		t.Fatal("want context error")
	}
	if st := g.Stats(); st.Epoch != 0 || st.LastSeq != 0 {
		t.Fatalf("cancelled batch committed: %+v", st)
	}
}

// TestSubscriptionDeltaEquation is the core continuous-query invariant on
// the triangle pattern (three compatible pins, so the exclusion rule is
// exercised): for every batch, count(after) = count(before) + Σ deltas,
// and the commit marker arrives after exactly that many delta events.
func TestSubscriptionDeltaEquation(t *testing.T) {
	for _, variant := range []graph.Variant{graph.EdgeInduced, graph.Homomorphic} {
		g := newTestGraph(t, pathGraph, Options{})
		sub, err := g.Subscribe(triPattern, variant)
		if err != nil {
			t.Fatal(err)
		}
		before := count(t, g, triPattern, variant)

		// Batch: close the triangle 0-1-2, then add a vertex and build a
		// second triangle 2-3-4 — deltas from intermediate states must sum
		// exactly.
		com, err := g.Mutate(context.Background(), []Mutation{
			{Op: OpInsertEdge, Src: 0, Dst: 2},
			{Op: OpAddVertex, VertexLabel: 0},
			{Op: OpInsertEdge, Src: 2, Dst: 3},
			{Op: OpInsertEdge, Src: 3, Dst: 4},
			{Op: OpInsertEdge, Src: 2, Dst: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		after := count(t, g, triPattern, variant)
		if after != before+com.Deltas {
			t.Fatalf("%v: count(after)=%d, count(before)=%d + deltas=%d", variant, after, before, com.Deltas)
		}
		if com.Deltas == 0 {
			t.Fatalf("%v: inserting two triangles produced no deltas", variant)
		}

		var deltas uint64
		done := false
		for !done {
			ev, ok := <-sub.Events()
			if !ok {
				t.Fatalf("%v: stream closed early", variant)
			}
			switch ev.Kind {
			case EventDelta:
				deltas++
				if ev.Epoch != com.Epoch || ev.Seq < com.FirstSeq || ev.Seq > com.LastSeq {
					t.Fatalf("%v: delta outside batch: %+v vs %+v", variant, ev, com)
				}
				if len(ev.Embedding) != 3 {
					t.Fatalf("%v: embedding size %d", variant, len(ev.Embedding))
				}
			case EventCommit:
				if ev.Deltas != deltas || ev.Seq != com.LastSeq || ev.Epoch != com.Epoch {
					t.Fatalf("%v: commit marker %+v after %d deltas", variant, ev, deltas)
				}
				done = true
			}
		}
		if deltas != com.Deltas {
			t.Fatalf("%v: received %d deltas, commit reported %d", variant, deltas, com.Deltas)
		}
		sub.Close()
		if _, ok := <-sub.Events(); ok {
			t.Fatalf("%v: events after Close", variant)
		}
	}
}

// TestSubscribeRejectsVertexInduced pins the monotonicity guard.
func TestSubscribeRejectsVertexInduced(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{})
	if _, err := g.Subscribe(triPattern, graph.VertexInduced); err != ErrVertexInduced {
		t.Fatalf("err = %v, want ErrVertexInduced", err)
	}
	dp := graph.MustParse("t directed\nv 0 A\nv 1 A\ne 0 1\n")
	if _, err := g.Subscribe(dp, graph.EdgeInduced); err == nil {
		t.Fatal("directedness mismatch must be rejected")
	}
}

// TestSlowSubscriberIsDropped pins the no-blocking rule: a subscriber
// whose buffer cannot hold a batch's deltas is evicted, the commit still
// succeeds, and Dropped reports the eviction.
func TestSlowSubscriberIsDropped(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{SubscriberBuffer: 1})
	sub, err := g.Subscribe(edgePattern, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	// Two inserted edges -> at least 2 delta events > buffer of 1.
	com, err := g.Mutate(context.Background(), []Mutation{
		{Op: OpInsertEdge, Src: 2, Dst: 3},
		{Op: OpInsertEdge, Src: 0, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if com.Epoch != 1 {
		t.Fatalf("commit must survive subscriber eviction: %+v", com)
	}
	for range sub.Events() {
		// Drain whatever made it into the buffer until eviction closes it.
	}
	if !sub.Dropped() {
		t.Fatal("subscriber must report Dropped")
	}
	st := g.Stats()
	if st.SubscribersDropped != 1 || st.Subscribers != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// A fresh subscriber joins at the current epoch and sees only later
	// batches.
	sub2, err := g.Subscribe(edgePattern, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.JoinEpoch() != 1 {
		t.Fatalf("join epoch %d", sub2.JoinEpoch())
	}
}

// TestConcurrentReadersAcrossSwaps runs readers against whatever snapshot
// is current while a writer commits single-insert batches; under -race
// this is the swap-safety proof, and each observed count must equal some
// epoch's exact count (monotone +1 per commit from a path of 2 edges).
func TestConcurrentReadersAcrossSwaps(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertices(40, 0)
	b.AddEdge(0, 1, 0)
	base := core.NewEngine(b.MustBuild())
	g := NewGraph("bench", base, Options{})
	defer g.Close()

	const inserts = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := g.Acquire()
				n, err := snap.Engine().Count(edgePattern, graph.EdgeInduced)
				epoch := snap.Epoch()
				snap.Release()
				if err != nil {
					t.Error(err)
					return
				}
				// Epoch e holds exactly 1+e edges; each edge-pattern
				// mapping count is 2*edges on an undirected graph.
				if want := 2 * (1 + epoch); n != want {
					t.Errorf("epoch %d saw count %d, want %d", epoch, n, want)
					return
				}
			}
		}()
	}
	for i := 0; i < inserts; i++ {
		if _, err := g.Mutate(context.Background(), []Mutation{
			{Op: OpInsertEdge, Src: graph.VertexID(i + 1), Dst: graph.VertexID(i + 2)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	st := g.Stats()
	if st.Epoch != inserts {
		t.Fatalf("epoch %d, want %d", st.Epoch, inserts)
	}
	if st.SnapshotsLive < 1 {
		t.Fatalf("snapshots live %d", st.SnapshotsLive)
	}
}

// TestMutateAfterClose pins ErrClosed.
func TestMutateAfterClose(t *testing.T) {
	g := newTestGraph(t, pathGraph, Options{})
	g.Close()
	if _, err := g.Mutate(context.Background(), []Mutation{{Op: OpInsertEdge, Src: 2, Dst: 3}}); err != ErrClosed {
		t.Fatalf("Mutate after Close: %v", err)
	}
	if _, err := g.Subscribe(edgePattern, graph.EdgeInduced); err != ErrClosed {
		t.Fatalf("Subscribe after Close: %v", err)
	}
}

package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/delta"
	"csce/internal/graph"
	"csce/internal/obs"
)

// Graph is one writable registered graph: a private writer store mutated
// under g.mu, a published snapshot readers pin lock-free, the WAL, and the
// subscriber table. Construct with NewGraph; all methods are safe for
// concurrent use.
type Graph struct {
	name string
	opts Options
	wal  *wal

	// mu is the writer lock: it serializes Mutate/Subscribe/Close and
	// guards writer, subs, nextSubID, closed, and epoch. Queries never
	// take it.
	mu        sync.Mutex
	writer    *ccsr.Store
	subs      map[uint64]*Subscription
	nextSubID uint64
	closed    bool
	epoch     uint64

	// snapMu guards only the cur pointer, held for pointer-swap duration;
	// cur is written under mu+snapMu and read under either.
	snapMu sync.Mutex
	cur    *Snapshot

	stats counters
}

type counters struct {
	batches          atomic.Uint64
	batchesFailed    atomic.Uint64
	verticesAdded    atomic.Uint64
	edgesInserted    atomic.Uint64
	edgesDeleted     atomic.Uint64
	snapshotsLive    atomic.Int64
	snapshotsDrained atomic.Uint64
	subsTotal        atomic.Uint64
	subsDropped      atomic.Uint64
	deltasDelivered  atomic.Uint64
}

// NewGraph wraps an engine for live mutation. The engine's store becomes
// the epoch-0 published snapshot (cloning the writer from it compacts any
// pending overlays first, so the published version is safe for lock-free
// readers); the engine must not be mutated elsewhere afterwards.
func NewGraph(name string, eng *core.Engine, opts Options) *Graph {
	opts = opts.withDefaults()
	g := &Graph{
		name: name,
		opts: opts,
		wal:  newWAL(opts.WALRetention),
		subs: make(map[uint64]*Subscription),
	}
	g.writer = eng.Store().Clone()
	g.cur = newSnapshot(0, eng, g.onSnapshotDrain)
	g.stats.snapshotsLive.Store(1)
	return g
}

func (g *Graph) onSnapshotDrain() {
	g.stats.snapshotsDrained.Add(1)
	g.stats.snapshotsLive.Add(-1)
}

// Name returns the registry name the graph was created under.
func (g *Graph) Name() string { return g.name }

// Acquire pins the current snapshot for reading. The caller must Release
// it exactly once; until then the snapshot (and its epoch's store) stays
// valid even across later commits.
func (g *Graph) Acquire() *Snapshot {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	g.cur.refs.Add(1)
	return g.cur
}

// Epoch returns the currently published epoch without pinning it.
func (g *Graph) Epoch() uint64 {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	return g.cur.epoch
}

// Commit reports one applied batch.
type Commit struct {
	// FirstSeq..LastSeq are the WAL sequence numbers assigned to the
	// batch, in mutation order.
	FirstSeq, LastSeq uint64
	// Epoch is the snapshot epoch that made the batch visible.
	Epoch uint64
	// AddedVertices are the IDs assigned to OpAddVertex mutations, in
	// batch order.
	AddedVertices []graph.VertexID
	// Deltas is the total number of delta embeddings delivered to
	// subscribers for this batch.
	Deltas uint64
}

// Mutate applies a batch atomically: all mutations commit in one snapshot
// swap, or none do. On an invalid mutation (or ctx cancellation during
// delta enumeration) the private writer is rebuilt from the published
// snapshot and the error is returned with nothing logged or visible.
//
// When ctx carries an obs.Trace, "live.apply", "live.swap", and
// "live.notify" spans record the stage breakdown.
func (g *Graph) Mutate(ctx context.Context, muts []Mutation) (Commit, error) {
	if len(muts) == 0 {
		return Commit{}, fmt.Errorf("live: empty mutation batch")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return Commit{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return Commit{}, err
	}

	tr := obs.TraceFrom(ctx)
	var com Commit
	staged := make(map[*Subscription][]Event)
	var vertsAdded, edgesIns, edgesDel uint64

	endApply := tr.StartSpan("live.apply")
	for i, m := range muts {
		if err := g.applyLocked(ctx, i, m, &com, staged); err != nil {
			endApply()
			g.rollbackLocked()
			g.stats.batchesFailed.Add(1)
			return Commit{}, fmt.Errorf("live: mutation %d (%s): %w", i, m.Op, err)
		}
		switch m.Op {
		case OpAddVertex:
			vertsAdded++
		case OpInsertEdge:
			edgesIns++
		case OpDeleteEdge:
			edgesDel++
		}
	}
	endApply()

	// Commit: log, publish, notify. The swap is the commit point.
	endSwap := tr.StartSpan("live.swap")
	com.Epoch = g.epoch + 1
	com.FirstSeq, com.LastSeq = g.wal.append(muts, com.Epoch)
	g.publishLocked()
	endSwap()

	endNotify := tr.StartSpan("live.notify")
	com.Deltas = g.notifyLocked(com, staged)
	endNotify()

	g.stats.batches.Add(1)
	g.stats.verticesAdded.Add(vertsAdded)
	g.stats.edgesInserted.Add(edgesIns)
	g.stats.edgesDeleted.Add(edgesDel)
	g.stats.deltasDelivered.Add(com.Deltas)
	return com, nil
}

// applyLocked applies one mutation to the private writer and, for
// insertions, stages the delta embeddings of every subscription against
// the writer's intermediate state — the store holds exactly the batch
// prefix up to and including this insertion, which is what makes
// count(after) = count(before) + Σ deltas hold across a batch.
func (g *Graph) applyLocked(ctx context.Context, mutIndex int, m Mutation, com *Commit, staged map[*Subscription][]Event) error {
	switch m.Op {
	case OpAddVertex:
		id := g.writer.AddVertex(m.VertexLabel)
		com.AddedVertices = append(com.AddedVertices, id)
		return nil
	case OpInsertEdge:
		if err := g.writer.InsertEdge(m.Src, m.Dst, m.EdgeLabel); err != nil {
			return err
		}
		return g.stageDeltasLocked(ctx, mutIndex, m, staged)
	case OpDeleteEdge:
		return g.writer.DeleteEdge(m.Src, m.Dst, m.EdgeLabel)
	default:
		return fmt.Errorf("unknown op %d", m.Op)
	}
}

// stageDeltasLocked enumerates, per subscription, the embeddings created
// by the insertion just applied to the writer. Deletions produce no
// events: subscriptions are monotone delta streams (insertions only), as
// documented on Subscribe.
func (g *Graph) stageDeltasLocked(ctx context.Context, mutIndex int, m Mutation, staged map[*Subscription][]Event) error {
	for _, sub := range g.subs {
		if sub.condemned || !sub.patternUsesLabel(m.EdgeLabel) {
			continue
		}
		events := staged[sub]
		_, err := delta.NewEmbeddings(g.writer, sub.pattern, delta.Edge{Src: m.Src, Dst: m.Dst, Label: m.EdgeLabel}, delta.Options{
			Variant: sub.variant,
			Ctx:     ctx,
			OnEmbedding: func(mapping []graph.VertexID) bool {
				if len(events) >= sub.buffer() {
					// The batch alone would overflow the subscriber's
					// channel; condemn it now instead of enumerating an
					// unbounded delta it can never receive.
					sub.condemned = true
					return false
				}
				events = append(events, Event{
					Kind:      EventDelta,
					Seq:       uint64(mutIndex), // rebased to FirstSeq+mutIndex at notify
					Src:       m.Src,
					Dst:       m.Dst,
					EdgeLabel: m.EdgeLabel,
					Embedding: append([]graph.VertexID(nil), mapping...),
				})
				return true
			},
		})
		if err != nil {
			return err
		}
		// A cancelled enumeration returns partial deltas with a nil error
		// (exec's graceful-cancel contract); the batch must still abort.
		if err := ctx.Err(); err != nil {
			return err
		}
		staged[sub] = events
	}
	return nil
}

// rollbackLocked discards the writer's speculative state by re-cloning the
// published snapshot (whose store is compacted and immutable, so cloning
// it never mutates what readers see).
func (g *Graph) rollbackLocked() {
	g.writer = g.cur.Store().Clone()
}

// publishLocked clones the writer into a fresh immutable snapshot and
// swaps it in. Old snapshot: publisher reference dropped, so it drains
// once the last in-flight query releases it.
func (g *Graph) publishLocked() {
	next := g.writer.Clone()
	g.epoch++
	snap := newSnapshot(g.epoch, core.FromStore(next), g.onSnapshotDrain)
	g.stats.snapshotsLive.Add(1)
	g.snapMu.Lock()
	old := g.cur
	g.cur = snap
	g.snapMu.Unlock()
	old.Release()
}

// notifyLocked delivers staged delta events plus one commit marker to
// every subscription. Sends never block: a subscriber whose buffer is
// full (or that was condemned during staging) is dropped — its channel
// closes without an explicit Close, and Dropped() reports why.
func (g *Graph) notifyLocked(com Commit, staged map[*Subscription][]Event) uint64 {
	var delivered uint64
	for _, sub := range g.subs {
		events := staged[sub]
		if sub.condemned {
			g.dropLocked(sub)
			continue
		}
		ok := true
		for _, ev := range events {
			ev.Seq += com.FirstSeq
			ev.Epoch = com.Epoch
			if ok = sub.trySend(ev); !ok {
				break
			}
		}
		if ok {
			ok = sub.trySend(Event{
				Kind:   EventCommit,
				Seq:    com.LastSeq,
				Epoch:  com.Epoch,
				Deltas: uint64(len(events)),
			})
		}
		if !ok {
			g.dropLocked(sub)
			continue
		}
		delivered += uint64(len(events))
	}
	return delivered
}

// Stats is a point-in-time snapshot of the graph's live-ingest counters.
type Stats struct {
	Epoch   uint64 `json:"epoch"`
	LastSeq uint64 `json:"last_seq"`

	WALRetained  int    `json:"wal_retained"`
	WALTruncated uint64 `json:"wal_truncated"`

	Batches       uint64 `json:"batches"`
	BatchesFailed uint64 `json:"batches_failed"`
	VerticesAdded uint64 `json:"vertices_added"`
	EdgesInserted uint64 `json:"edges_inserted"`
	EdgesDeleted  uint64 `json:"edges_deleted"`

	SnapshotsLive    int64  `json:"snapshots_live"`
	SnapshotsDrained uint64 `json:"snapshots_drained"`

	Subscribers        int    `json:"subscribers"`
	SubscribersTotal   uint64 `json:"subscribers_total"`
	SubscribersDropped uint64 `json:"subscribers_dropped"`
	DeltasDelivered    uint64 `json:"deltas_delivered"`
}

// Stats returns the current counters.
func (g *Graph) Stats() Stats {
	retained, truncated := g.wal.size()
	g.mu.Lock()
	subs := len(g.subs)
	g.mu.Unlock()
	return Stats{
		Epoch:              g.Epoch(),
		LastSeq:            g.wal.lastSeq(),
		WALRetained:        retained,
		WALTruncated:       truncated,
		Batches:            g.stats.batches.Load(),
		BatchesFailed:      g.stats.batchesFailed.Load(),
		VerticesAdded:      g.stats.verticesAdded.Load(),
		EdgesInserted:      g.stats.edgesInserted.Load(),
		EdgesDeleted:       g.stats.edgesDeleted.Load(),
		SnapshotsLive:      g.stats.snapshotsLive.Load(),
		SnapshotsDrained:   g.stats.snapshotsDrained.Load(),
		Subscribers:        subs,
		SubscribersTotal:   g.stats.subsTotal.Load(),
		SubscribersDropped: g.stats.subsDropped.Load(),
		DeltasDelivered:    g.stats.deltasDelivered.Load(),
	}
}

// Tail returns the retained WAL records with Seq > after (debugging and
// catch-up inspection; retention may have truncated older entries).
func (g *Graph) Tail(after uint64) []Record { return g.wal.tail(after) }

// Close stops mutations and closes every subscription. Published
// snapshots stay readable until their holders release them; Close is
// idempotent.
func (g *Graph) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for _, sub := range g.subs {
		sub.closeLocked()
	}
	g.subs = map[uint64]*Subscription{}
}

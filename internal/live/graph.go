package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/delta"
	"csce/internal/graph"
	"csce/internal/obs"
	"csce/internal/prefilter"
)

// Graph is one writable registered graph: a private writer store mutated
// under g.mu, a published snapshot readers pin lock-free, the WAL (the
// in-memory tail, plus the durable segment log when configured), and the
// subscriber table. Construct with Open (or NewGraph for a purely
// in-memory graph); all methods are safe for concurrent use.
type Graph struct {
	name string
	opts Options
	wal  *wal
	dwal *diskWAL   // nil without Options.Durability.Dir
	rlog *resumeLog // persisted resume window; nil without Durability.Dir

	// sig is the admission pre-filter signature. It is built from the
	// opening state (in-memory or recovered) and maintained inside Mutate's
	// commit path, so it always describes a published epoch; the pointer
	// itself never changes after Open.
	sig *prefilter.Signature

	// mu is the writer lock: it serializes Mutate/Subscribe/Close and
	// guards writer, resumeBase, subs, nextSubID, closed, and epoch.
	// Queries never take it.
	mu        sync.Mutex
	writer    *ccsr.Store
	subs      map[uint64]*Subscription
	nextSubID uint64
	closed    bool
	epoch     uint64

	// resumeBase is the graph's state at exactly the in-memory WAL's
	// oldest-resumable seq: applying the retained tail to a clone of it
	// reconstructs every intermediate state a resuming subscriber needs.
	// It rolls forward as retention truncates the tail.
	resumeBase *ccsr.Store

	recovery RecoveryStats

	// snapMu guards only the cur pointer, held for pointer-swap duration;
	// cur is written under mu+snapMu and read under either.
	snapMu sync.Mutex
	cur    *Snapshot

	// retMu guards retained: per-epoch metadata of every snapshot that
	// has not drained yet, for GC-pressure metrics.
	retMu    sync.Mutex
	retained map[uint64]snapMeta

	stats counters
}

// snapMeta describes one undrained snapshot for GC-pressure accounting.
type snapMeta struct {
	created time.Time
	bytes   int
}

type counters struct {
	batches              atomic.Uint64
	batchesFailed        atomic.Uint64
	verticesAdded        atomic.Uint64
	edgesInserted        atomic.Uint64
	edgesDeleted         atomic.Uint64
	snapshotsLive        atomic.Int64
	snapshotsDrained     atomic.Uint64
	subsTotal            atomic.Uint64
	subsDropped          atomic.Uint64
	subsResumed          atomic.Uint64
	deltasDelivered      atomic.Uint64
	retractionsDelivered atomic.Uint64
	checkpointFailures   atomic.Uint64
}

// RecoveryStats reports what Open reconstructed from a durable WAL
// directory. The zero value means no durability was configured.
type RecoveryStats struct {
	// HasCheckpoint reports whether a checkpoint file seeded the replay
	// (CheckpointSeq/CheckpointEpoch are its position).
	HasCheckpoint   bool   `json:"has_checkpoint"`
	CheckpointSeq   uint64 `json:"checkpoint_seq"`
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
	// ReplayedRecords is how many log records were applied on top.
	ReplayedRecords int `json:"replayed_records"`
	// RecoveredSeq/RecoveredEpoch are the position the graph reopened at.
	RecoveredSeq   uint64 `json:"recovered_seq"`
	RecoveredEpoch uint64 `json:"recovered_epoch"`
	// TornTail reports that the final segment ended mid-record (a crash
	// during an append) and was truncated back to the last whole record.
	TornTail bool `json:"torn_tail"`
	// ChainSegments is how many incremental-checkpoint chain files the
	// replay folded in on top of the base checkpoint.
	ChainSegments int `json:"chain_segments"`
	// ResumeWindowRestored reports that the persisted resume log restored
	// the pre-restart subscription window, so subscribers can resume from
	// any seq in (ResumeOldestSeq, RecoveredSeq] exactly as if the process
	// had never died.
	ResumeWindowRestored bool `json:"resume_window_restored"`
	// ResumeOldestSeq is the oldest resumable seq after recovery (equals
	// RecoveredSeq when the window starts fresh).
	ResumeOldestSeq uint64 `json:"resume_oldest_seq"`
	// ResumeRecords is how many tail records the restored window holds.
	ResumeRecords int `json:"resume_records"`
	// ResumeTornTail reports a truncated crash tail in the resume log's
	// final chain file (the lost suffix was gap-filled from the WAL when
	// possible).
	ResumeTornTail bool `json:"resume_torn_tail"`
	// ResumeWindowLost reports that a resume log was present but its
	// window could not be restored (seq gap against the WAL, or a label
	// table that diverged from the recovered one); a fresh window was
	// started at RecoveredSeq and pre-restart from_seqs answer 410.
	ResumeWindowLost bool `json:"resume_window_lost"`
	// Duration is the wall time of checkpoint load + replay.
	Duration time.Duration `json:"duration_ns"`
}

// NewGraph wraps an engine for purely in-memory live mutation: any
// Durability in opts is ignored. The engine's store becomes the epoch-0
// published snapshot; the engine must not be mutated elsewhere afterwards.
func NewGraph(name string, eng *core.Engine, opts Options) *Graph {
	opts.Durability = Durability{}
	g, err := Open(name, eng, opts)
	if err != nil {
		// Unreachable in practice: every other error path in Open touches
		// the disk WAL, and the signature build only fails if the engine's
		// just-cloned store cannot decompress itself — corruption-grade.
		panic(err)
	}
	return g
}

// Open wraps an engine for live mutation. With Options.Durability.Dir set
// it first recovers from the WAL directory: the base state is the
// checkpoint if one exists (the engine's store otherwise), the segment
// log is replayed on top — truncating a torn tail left by a crash
// mid-append — and the graph reopens at the exact committed seq and epoch.
// The engine's store (or the recovered state) becomes the first published
// snapshot; the engine must not be mutated elsewhere afterwards.
func Open(name string, eng *core.Engine, opts Options) (*Graph, error) {
	opts = opts.withDefaults()
	g := &Graph{
		name:     name,
		opts:     opts,
		subs:     make(map[uint64]*Subscription),
		retained: make(map[uint64]snapMeta),
	}
	if opts.Durability.Dir == "" {
		g.wal = newWAL(opts.WALRetention)
		g.writer = eng.Store().Clone()
		g.resumeBase = eng.Store().Clone()
		sig, err := prefilter.Build(g.writer)
		if err != nil {
			return nil, fmt.Errorf("live: build prefilter signature: %w", err)
		}
		g.sig = sig
		g.installSnapshot(newSnapshot(0, eng, g.drainHook(0)))
		return g, nil
	}
	if err := g.recover(eng); err != nil {
		return nil, err
	}
	return g, nil
}

// recover rebuilds the graph's state from its durable WAL directory and
// leaves the disk log open for appending.
func (g *Graph) recover(eng *core.Engine) error {
	start := time.Now()
	dw, err := openDiskWAL(g.opts.Durability, g.opts.Observer)
	if err != nil {
		return err
	}
	// The resume log loads before the WAL replays so the replay can
	// collect the gap-fill records the log's unsynced tail may have lost.
	rl, err := openResumeLog(g.opts.Durability.Dir, g.opts.Durability.withDefaults(), g.opts.Observer)
	if err != nil {
		return err
	}
	rstate, err := rl.load()
	if err != nil {
		return err
	}
	base := eng.Store()
	ckStore, ckSeq, ckEpoch, hasCk, err := dw.loadCheckpoint()
	if err != nil {
		return err
	}
	if hasCk {
		base = ckStore
		g.recovery.HasCheckpoint = true
		g.recovery.CheckpointSeq = ckSeq
		g.recovery.CheckpointEpoch = ckEpoch
	}
	g.recovery.ChainSegments = len(dw.chain)
	// The writer replays in place; labels re-intern by name so runtime-
	// minted labels keep their identity across the restart.
	g.writer = base.Clone()
	epoch := ckEpoch
	rlogLast := rstate.lastSeq()
	var fill []Record
	lastSeq, replayed, torn, err := dw.replay(ckSeq, func(rec Record) error {
		if err := applyRecord(g.writer, rec.Mut); err != nil {
			return fmt.Errorf("live: replay seq %d (%s): %w", rec.Seq, rec.Mut.Op, err)
		}
		epoch = rec.Epoch
		if rstate.base != nil && rec.Seq > rlogLast {
			// The WAL reaches past the resume log (its tail is not fsynced
			// per batch, so a power cut can shrink it): keep the missing
			// records, re-interned under the recovered table, to extend the
			// restored window to the recovered seq.
			reinternMutation(g.writer.Names(), &rec.Mut)
			fill = append(fill, rec)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := dw.openAppend(lastSeq + 1); err != nil {
		return err
	}
	g.dwal = dw
	g.epoch = epoch
	// The signature is rebuilt from the recovered writer, not replayed
	// mutation-by-mutation: recovery re-interns labels by name, so only the
	// post-replay store holds the ids the new process will mutate under.
	sig, err := prefilter.Build(g.writer)
	if err != nil {
		return fmt.Errorf("live: rebuild prefilter signature: %w", err)
	}
	g.sig = sig
	g.recovery.ResumeTornTail = rstate.torn
	restored := false
	if rstate.base != nil {
		restored = g.restoreResumeWindow(rl, rstate, fill, lastSeq)
		g.recovery.ResumeWindowRestored = restored
		g.recovery.ResumeWindowLost = !restored
	}
	if !restored {
		// No usable window: resume from the recovered position only, and
		// re-anchor the on-disk chain there so the window regrows.
		g.resumeBase = g.writer.Clone()
		g.wal = newWALAt(g.opts.WALRetention, lastSeq)
		if err := rl.start(g.resumeBase, lastSeq, epoch); err != nil {
			rl.markBroken()
		}
	}
	g.rlog = rl
	g.recovery.ResumeOldestSeq = g.wal.oldestResumable()
	retained, _ := g.wal.size()
	g.recovery.ResumeRecords = retained
	pub := g.writer.Clone()
	g.installSnapshot(newSnapshot(epoch, core.FromStore(pub), g.drainHook(epoch)))
	g.recovery.ReplayedRecords = replayed
	g.recovery.RecoveredSeq = lastSeq
	g.recovery.RecoveredEpoch = epoch
	g.recovery.TornTail = torn
	g.recovery.Duration = time.Since(start)
	observe(g.opts.Observer.WALReplay, start)
	return nil
}

// restoreResumeWindow rebuilds resumeBase and the in-memory tail from the
// loaded resume-log state plus the WAL gap-fill, and heals the on-disk
// chain up to the recovered seq. It returns false — leaving the caller to
// start a fresh window — whenever a gapless, label-consistent window up
// to lastSeq cannot be proven.
func (g *Graph) restoreResumeWindow(rl *resumeLog, rstate *rlogState, fill []Record, lastSeq uint64) bool {
	if rstate.baseSeq > lastSeq {
		return false // the base claims a future the WAL never acknowledged
	}
	// Label ids are arrival-order-dependent: the persisted base indexes its
	// adjacency under the previous process's table, the recovered writer
	// under a freshly re-interned one. Replaying against the base is only
	// sound when the base's table is a prefix of the recovered table —
	// every id the base can contain means the same name in both. Named
	// labels minted after the base was encoded ride in the tail records and
	// re-intern by name below.
	if !labelTablePrefix(rstate.base.Names(), g.writer.Names()) {
		return false
	}
	tail := rstate.tail
	// Drop records past the recovered seq: with -fsync never a power cut
	// can push the WAL behind the resume log, and the unacknowledged
	// suffix must not outlive it.
	for len(tail) > 0 && tail[len(tail)-1].Seq > lastSeq {
		tail = tail[:len(tail)-1]
	}
	droppedFuture := len(tail) != len(rstate.tail)
	rlogLast := rstate.baseSeq + uint64(len(tail))
	if len(fill) > 0 && fill[0].Seq != rlogLast+1 {
		return false // the WAL cannot bridge the log's lost suffix
	}
	if len(fill) == 0 && rlogLast != lastSeq {
		return false // checkpoint truncation consumed the bridge records
	}
	for i := range tail {
		reinternMutation(g.writer.Names(), &tail[i].Mut)
	}
	combined := append(tail, fill...)
	base := rstate.base
	oldest := rstate.baseSeq
	// The restored window may exceed WALRetention (the log truncates by
	// rebase cadence, not record count): fold the excess into the base so
	// the in-memory invariants hold exactly as in steady state.
	if drop := len(combined) - g.opts.WALRetention; drop > 0 {
		for _, rec := range combined[:drop] {
			if err := applyRaw(base, rec.Mut); err != nil {
				return false
			}
		}
		oldest += uint64(drop)
		combined = combined[drop:]
	}
	g.resumeBase = base
	g.wal = newWALWithTail(g.opts.WALRetention, oldest, combined)
	// Heal the on-disk chain. If the chain holds records past the
	// recovered seq it must be rewritten — appending after them would gap
	// the chain — otherwise appending the gap-fill extends it to lastSeq.
	if droppedFuture {
		_ = rl.rebase(base, oldest, g.epoch, combined)
		return true
	}
	if err := rl.openAppend(); err != nil {
		rl.markBroken()
		return true
	}
	if len(fill) > 0 {
		_ = rl.appendMuts(fill)
	}
	return true
}

// labelTablePrefix reports whether every label interned in a is interned
// in b with the same id and name — a's table is a prefix of (or equal to)
// b's, for both namespaces.
func labelTablePrefix(a, b *graph.LabelTable) bool {
	if a == nil {
		return true
	}
	if b == nil {
		return a.NumVertexLabels() == 0 && a.NumEdgeLabels() == 0
	}
	if a.NumVertexLabels() > b.NumVertexLabels() || a.NumEdgeLabels() > b.NumEdgeLabels() {
		return false
	}
	for i := 0; i < a.NumVertexLabels(); i++ {
		if a.VertexName(graph.Label(i)) != b.VertexName(graph.Label(i)) {
			return false
		}
	}
	for i := 0; i < a.NumEdgeLabels(); i++ {
		if a.EdgeName(graph.EdgeLabel(i)) != b.EdgeName(graph.EdgeLabel(i)) {
			return false
		}
	}
	return true
}

// reinternMutation rewrites a named mutation's label id by re-interning
// its symbolic name (the id alone is only stable within a single process
// lifetime). Interning may mutate the table, so this must only run
// single-threaded — which recovery is. Nameless mutations keep their raw
// id by contract.
func reinternMutation(names *graph.LabelTable, m *Mutation) {
	if !m.LabelNamed || names == nil {
		return
	}
	if m.Op == OpAddVertex {
		m.VertexLabel = names.Vertex(m.LabelName)
	} else {
		m.EdgeLabel = names.Edge(m.LabelName)
	}
}

// applyRecord applies one WAL record to a store during crash replay,
// re-interning the label by name when the record carries one. Steady-
// state code paths use applyRaw instead.
func applyRecord(st *ccsr.Store, m Mutation) error {
	reinternMutation(st.Names(), &m)
	return applyRaw(st, m)
}

// applyRaw applies one record by its interned ids, never touching the
// label table. Correct for any record minted by this process run (resume
// roll-forward, resume replay): the ids were assigned under the current
// table, and re-interning would race with concurrent interning elsewhere.
func applyRaw(st *ccsr.Store, m Mutation) error {
	switch m.Op {
	case OpAddVertex:
		st.AddVertex(m.VertexLabel)
		return nil
	case OpInsertEdge:
		return st.InsertEdge(m.Src, m.Dst, m.EdgeLabel)
	case OpDeleteEdge:
		return st.DeleteEdge(m.Src, m.Dst, m.EdgeLabel)
	default:
		return fmt.Errorf("unknown op %d", m.Op)
	}
}

// installSnapshot publishes the first snapshot at construction time.
func (g *Graph) installSnapshot(s *Snapshot) {
	g.cur = s
	g.stats.snapshotsLive.Store(1)
	g.retMu.Lock()
	g.retained[s.epoch] = snapMeta{created: time.Now(), bytes: s.Store().CompressedBytes()}
	g.retMu.Unlock()
}

// drainHook builds the per-snapshot drain callback: it keeps the GC-
// pressure accounting exact by forgetting the epoch's retained metadata
// the moment the last reader lets go.
func (g *Graph) drainHook(epoch uint64) func() {
	return func() {
		g.stats.snapshotsDrained.Add(1)
		g.stats.snapshotsLive.Add(-1)
		g.retMu.Lock()
		delete(g.retained, epoch)
		g.retMu.Unlock()
	}
}

// Recovery reports what Open reconstructed from the durable WAL; the zero
// value means the graph is purely in-memory.
func (g *Graph) Recovery() RecoveryStats { return g.recovery }

// Prefilter returns the graph's admission signature. The pointer is fixed
// at Open; the signature itself synchronizes its own readers against the
// commit path's batched updates.
func (g *Graph) Prefilter() *prefilter.Signature { return g.sig }

// Names returns the label table of the live writer — after a recovery it
// includes every label minted by replayed mutations, not just the ones
// the base engine knew.
func (g *Graph) Names() *graph.LabelTable {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.writer.Names()
}

// Name returns the registry name the graph was created under.
func (g *Graph) Name() string { return g.name }

// Acquire pins the current snapshot for reading. The caller must Release
// it exactly once; until then the snapshot (and its epoch's store) stays
// valid even across later commits.
func (g *Graph) Acquire() *Snapshot {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	g.cur.refs.Add(1)
	return g.cur
}

// Epoch returns the currently published epoch without pinning it.
func (g *Graph) Epoch() uint64 {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	return g.cur.epoch
}

// Commit reports one applied batch.
type Commit struct {
	// FirstSeq..LastSeq are the WAL sequence numbers assigned to the
	// batch, in mutation order.
	FirstSeq, LastSeq uint64
	// Epoch is the snapshot epoch that made the batch visible.
	Epoch uint64
	// AddedVertices are the IDs assigned to OpAddVertex mutations, in
	// batch order.
	AddedVertices []graph.VertexID
	// Deltas is the total number of delta embeddings delivered to
	// subscribers for this batch; Retractions counts the embeddings
	// retracted by the batch's deletions.
	Deltas      uint64
	Retractions uint64
}

// Mutate applies a batch atomically: all mutations commit in one snapshot
// swap, or none do. On an invalid mutation (or ctx cancellation during
// delta enumeration) the private writer is rebuilt from the published
// snapshot and the error is returned with nothing logged or visible.
//
// When ctx carries an obs.Trace, "live.apply", "live.swap", and
// "live.notify" spans record the stage breakdown.
func (g *Graph) Mutate(ctx context.Context, muts []Mutation) (Commit, error) {
	if len(muts) == 0 {
		return Commit{}, fmt.Errorf("live: empty mutation batch")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return Commit{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return Commit{}, err
	}

	tr := obs.TraceFrom(ctx)
	var com Commit
	staged := make(map[*Subscription][]Event)
	var vertsAdded, edgesIns, edgesDel uint64

	endApply := tr.StartSpan("live.apply")
	for i, m := range muts {
		if err := g.applyLocked(ctx, i, m, &com, staged); err != nil {
			endApply(obs.Int("mutations", int64(len(muts))), obs.Str("failed_op", string(m.Op)))
			g.rollbackLocked()
			g.stats.batchesFailed.Add(1)
			return Commit{}, fmt.Errorf("live: mutation %d (%s): %w", i, m.Op, err)
		}
		switch m.Op {
		case OpAddVertex:
			vertsAdded++
		case OpInsertEdge:
			edgesIns++
		case OpDeleteEdge:
			edgesDel++
		}
	}
	endApply(obs.Int("mutations", int64(len(muts))),
		obs.Int("vertices_added", int64(vertsAdded)),
		obs.Int("edges_inserted", int64(edgesIns)),
		obs.Int("edges_deleted", int64(edgesDel)))

	// Commit: log (durably first — a batch the disk refuses is aborted,
	// not acknowledged), publish, notify. The swap is the commit point
	// for readers; the disk append is the commit point for crashes.
	endSwap := tr.StartSpan("live.swap")
	com.Epoch = g.epoch + 1
	com.FirstSeq = g.wal.peekNextSeq()
	com.LastSeq = com.FirstSeq + uint64(len(muts)) - 1
	recs := make([]Record, len(muts))
	for i, m := range muts {
		recs[i] = Record{Seq: com.FirstSeq + uint64(i), Epoch: com.Epoch, Mut: m}
	}
	if g.dwal != nil {
		if err := g.dwal.append(recs); err != nil {
			endSwap()
			g.rollbackLocked()
			g.stats.batchesFailed.Add(1)
			return Commit{}, err
		}
	}
	if g.rlog != nil {
		// The batch is already durable in the WAL, so a resume-log failure
		// never aborts the commit: the log marks itself broken (counted)
		// and the next rebase rewrites the chain.
		_ = g.rlog.appendMuts(recs)
	}
	for _, rec := range g.wal.appendRecords(recs) {
		// Retention pushed this record out of the in-memory tail: fold it
		// into the resume base so the oldest resumable state keeps pace.
		if err := applyRaw(g.resumeBase, rec.Mut); err != nil {
			// Unreachable: the record already applied cleanly to the
			// writer at the same state.
			panic(fmt.Sprintf("live: resume base diverged at seq %d: %v", rec.Seq, err))
		}
	}
	// Fold the batch into the admission signature while still holding the
	// writer lock and only after the durable append accepted it: rollback
	// paths never touch the signature, and the whole batch lands atomically
	// with respect to concurrent admission checks. Interned ids are safe
	// here for the same reason applyLocked uses them.
	sigStart := time.Now()
	g.sig.Batch(func(b *prefilter.BatchWriter) {
		for _, m := range muts {
			switch m.Op {
			case OpAddVertex:
				b.AddVertex(m.VertexLabel)
			case OpInsertEdge:
				b.InsertEdge(m.Src, m.Dst, m.EdgeLabel)
			case OpDeleteEdge:
				b.DeleteEdge(m.Src, m.Dst, m.EdgeLabel)
			}
		}
	})
	observe(g.opts.Observer.SigMaintain, sigStart)
	g.publishLocked()
	endSwap(obs.Int("epoch", int64(com.Epoch)),
		obs.Int("first_seq", int64(com.FirstSeq)),
		obs.Int("last_seq", int64(com.LastSeq)))

	endNotify := tr.StartSpan("live.notify")
	com.Deltas, com.Retractions = g.notifyLocked(com, staged)
	endNotify(obs.Int("deltas", int64(com.Deltas)),
		obs.Int("retractions", int64(com.Retractions)))

	g.stats.batches.Add(1)
	g.stats.verticesAdded.Add(vertsAdded)
	g.stats.edgesInserted.Add(edgesIns)
	g.stats.edgesDeleted.Add(edgesDel)
	g.stats.deltasDelivered.Add(com.Deltas)
	g.stats.retractionsDelivered.Add(com.Retractions)

	if g.dwal != nil && g.dwal.needsCheckpoint() {
		// The just-published store is overlay-free (Clone compacted it)
		// and immutable, so encoding it races with nothing; segments
		// wholly covered by the checkpoint are deleted afterwards. A
		// failed checkpoint is not a failed commit — the batch is already
		// durable in the segment log — so it only counts, it never errors
		// the acknowledged mutation back to the client.
		if err := g.dwal.checkpoint(g.cur.Store(), com.LastSeq, com.Epoch); err != nil {
			g.stats.checkpointFailures.Add(1)
		}
	}
	if g.rlog != nil && g.rlog.needsRebase() {
		// Rewrite the chain as base(oldest-resumable) + retained tail: the
		// on-disk window tracks the in-memory retention policy, and a
		// broken log heals here. Failure is counted inside, never surfaced
		// — the WAL already holds the acknowledged data.
		oldest := g.wal.oldestResumable()
		_ = g.rlog.rebase(g.resumeBase, oldest, com.Epoch, g.wal.tail(oldest))
	}
	return com, nil
}

// applyLocked applies one mutation to the private writer and, for
// insertions, stages the delta embeddings of every subscription against
// the writer's intermediate state — the store holds exactly the batch
// prefix up to and including this insertion, which is what makes
// count(after) = count(before) + Σ deltas hold across a batch.
func (g *Graph) applyLocked(ctx context.Context, mutIndex int, m Mutation, com *Commit, staged map[*Subscription][]Event) error {
	switch m.Op {
	case OpAddVertex:
		id := g.writer.AddVertex(m.VertexLabel)
		com.AddedVertices = append(com.AddedVertices, id)
		return nil
	case OpInsertEdge:
		if err := g.writer.InsertEdge(m.Src, m.Dst, m.EdgeLabel); err != nil {
			return err
		}
		return g.stageDeltasLocked(ctx, mutIndex, m, staged)
	case OpDeleteEdge:
		// Retractions enumerate against the state that still has the
		// edge: every embedding using it is about to be destroyed.
		if err := g.stageRetractionsLocked(ctx, mutIndex, m, staged); err != nil {
			return err
		}
		return g.writer.DeleteEdge(m.Src, m.Dst, m.EdgeLabel)
	default:
		return fmt.Errorf("unknown op %d", m.Op)
	}
}

// stageDeltasLocked enumerates, per subscription, the embeddings created
// by the insertion just applied to the writer.
func (g *Graph) stageDeltasLocked(ctx context.Context, mutIndex int, m Mutation, staged map[*Subscription][]Event) error {
	return g.stageEventsLocked(ctx, EventDelta, delta.NewEmbeddings, mutIndex, m, staged)
}

// stageRetractionsLocked enumerates, per subscription, the embeddings the
// upcoming deletion destroys. The writer must still contain the edge.
func (g *Graph) stageRetractionsLocked(ctx context.Context, mutIndex int, m Mutation, staged map[*Subscription][]Event) error {
	return g.stageEventsLocked(ctx, EventRetract, delta.RemovedEmbeddings, mutIndex, m, staged)
}

// stageEventsLocked is the shared enumeration: for each subscription the
// mutation's edge can touch, the embeddings through that edge at the
// writer's current intermediate state become events of the given kind —
// the store holds exactly the batch prefix up to this mutation, which is
// what makes count(after) = count(before) + Σdeltas − Σretractions hold
// across a batch.
func (g *Graph) stageEventsLocked(
	ctx context.Context,
	kind EventKind,
	enumerate func(*ccsr.Store, *graph.Graph, delta.Edge, delta.Options) (uint64, error),
	mutIndex int,
	m Mutation,
	staged map[*Subscription][]Event,
) error {
	for _, sub := range g.subs {
		if sub.condemned || !sub.patternUsesLabel(m.EdgeLabel) {
			continue
		}
		events := staged[sub]
		_, err := enumerate(g.writer, sub.pattern, delta.Edge{Src: m.Src, Dst: m.Dst, Label: m.EdgeLabel}, delta.Options{
			Variant: sub.variant,
			Ctx:     ctx,
			OnEmbedding: func(mapping []graph.VertexID) bool {
				if len(events) >= sub.buffer() {
					// The batch alone would overflow the subscriber's
					// channel; condemn it now instead of enumerating an
					// unbounded delta it can never receive.
					sub.condemned = true
					return false
				}
				events = append(events, Event{
					Kind:      kind,
					Seq:       uint64(mutIndex), // rebased to FirstSeq+mutIndex at notify
					Src:       m.Src,
					Dst:       m.Dst,
					EdgeLabel: m.EdgeLabel,
					Embedding: append([]graph.VertexID(nil), mapping...),
				})
				return true
			},
		})
		if err != nil {
			return err
		}
		// A cancelled enumeration returns partial deltas with a nil error
		// (exec's graceful-cancel contract); the batch must still abort.
		if err := ctx.Err(); err != nil {
			return err
		}
		staged[sub] = events
	}
	return nil
}

// rollbackLocked discards the writer's speculative state by re-cloning the
// published snapshot (whose store is compacted and immutable, so cloning
// it never mutates what readers see).
func (g *Graph) rollbackLocked() {
	g.writer = g.cur.Store().Clone()
}

// publishLocked clones the writer into a fresh immutable snapshot and
// swaps it in. Old snapshot: publisher reference dropped, so it drains
// once the last in-flight query releases it.
func (g *Graph) publishLocked() {
	next := g.writer.Clone()
	g.epoch++
	snap := newSnapshot(g.epoch, core.FromStore(next), g.drainHook(g.epoch))
	g.stats.snapshotsLive.Add(1)
	g.retMu.Lock()
	g.retained[g.epoch] = snapMeta{created: time.Now(), bytes: next.CompressedBytes()}
	g.retMu.Unlock()
	g.snapMu.Lock()
	old := g.cur
	g.cur = snap
	g.snapMu.Unlock()
	old.Release()
}

// notifyLocked delivers staged delta/retract events plus one commit
// marker to every subscription. Sends never block: a subscriber whose
// buffer is full (or that was condemned during staging) is dropped — its
// channel closes without an explicit Close, and Dropped() reports why.
func (g *Graph) notifyLocked(com Commit, staged map[*Subscription][]Event) (deltas, retractions uint64) {
	for _, sub := range g.subs {
		events := staged[sub]
		if sub.condemned {
			g.dropLocked(sub)
			continue
		}
		var d, r uint64
		for _, ev := range events {
			if ev.Kind == EventDelta {
				d++
			} else {
				r++
			}
		}
		ok := true
		for _, ev := range events {
			ev.Seq += com.FirstSeq
			ev.Epoch = com.Epoch
			if ok = sub.trySend(ev); !ok {
				break
			}
		}
		if ok {
			ok = sub.trySend(Event{
				Kind:        EventCommit,
				Seq:         com.LastSeq,
				Epoch:       com.Epoch,
				Deltas:      d,
				Retractions: r,
			})
		}
		if !ok {
			g.dropLocked(sub)
			continue
		}
		deltas += d
		retractions += r
	}
	return deltas, retractions
}

// Stats is a point-in-time snapshot of the graph's live-ingest counters.
type Stats struct {
	Epoch   uint64 `json:"epoch"`
	LastSeq uint64 `json:"last_seq"`

	WALRetained  int    `json:"wal_retained"`
	WALTruncated uint64 `json:"wal_truncated"`

	// Durable-WAL state; all zero for a purely in-memory graph.
	WALDiskSegments    int    `json:"wal_disk_segments"`
	WALDiskBytes       int64  `json:"wal_disk_bytes"`
	WALFsyncs          uint64 `json:"wal_fsyncs"`
	WALCheckpoints     uint64 `json:"wal_checkpoints"`
	CheckpointFailures uint64 `json:"checkpoint_failures"`
	// Incremental-checkpoint chain files (renamed covered segments) and
	// their bytes; zero under -checkpoint-mode=full.
	WALChainSegments int   `json:"wal_chain_segments"`
	WALChainBytes    int64 `json:"wal_chain_bytes"`

	// Persisted-resume-log state; all zero for a purely in-memory graph.
	// OldestResumableSeq is the smallest from_seq a subscriber may resume
	// from (maintained in memory too, so it is also set for in-memory
	// graphs); ResumeLogFailures counts appends or rebases the disk
	// refused — the window keeps serving from memory and the next rebase
	// repairs the chain.
	ResumeLogSegments  int    `json:"resume_log_segments"`
	ResumeLogBytes     int64  `json:"resume_log_bytes"`
	ResumeLogRebases   uint64 `json:"resume_log_rebases"`
	ResumeLogFailures  uint64 `json:"resume_log_failures"`
	OldestResumableSeq uint64 `json:"oldest_resumable_seq"`

	Batches       uint64 `json:"batches"`
	BatchesFailed uint64 `json:"batches_failed"`
	VerticesAdded uint64 `json:"vertices_added"`
	EdgesInserted uint64 `json:"edges_inserted"`
	EdgesDeleted  uint64 `json:"edges_deleted"`

	SnapshotsLive    int64  `json:"snapshots_live"`
	SnapshotsDrained uint64 `json:"snapshots_drained"`

	// GC pressure of retained (undrained) snapshots: how many bytes of
	// compressed store the unreleased epochs pin, which epoch has been
	// pinned the longest, and for how long. A rising age under mutation
	// load means some reader is sitting on an old snapshot.
	SnapshotBytes     int64   `json:"snapshot_bytes"`
	OldestPinnedEpoch uint64  `json:"oldest_pinned_epoch"`
	OldestPinnedAge   float64 `json:"oldest_pinned_age_seconds"`

	Subscribers          int    `json:"subscribers"`
	SubscribersTotal     uint64 `json:"subscribers_total"`
	SubscribersDropped   uint64 `json:"subscribers_dropped"`
	SubscribersResumed   uint64 `json:"subscribers_resumed"`
	DeltasDelivered      uint64 `json:"deltas_delivered"`
	RetractionsDelivered uint64 `json:"retractions_delivered"`
}

// Stats returns the current counters.
func (g *Graph) Stats() Stats {
	retained, truncated := g.wal.size()
	g.mu.Lock()
	subs := len(g.subs)
	g.mu.Unlock()
	st := Stats{
		Epoch:                g.Epoch(),
		LastSeq:              g.wal.lastSeq(),
		WALRetained:          retained,
		WALTruncated:         truncated,
		CheckpointFailures:   g.stats.checkpointFailures.Load(),
		Batches:              g.stats.batches.Load(),
		BatchesFailed:        g.stats.batchesFailed.Load(),
		VerticesAdded:        g.stats.verticesAdded.Load(),
		EdgesInserted:        g.stats.edgesInserted.Load(),
		EdgesDeleted:         g.stats.edgesDeleted.Load(),
		SnapshotsLive:        g.stats.snapshotsLive.Load(),
		SnapshotsDrained:     g.stats.snapshotsDrained.Load(),
		Subscribers:          subs,
		SubscribersTotal:     g.stats.subsTotal.Load(),
		SubscribersDropped:   g.stats.subsDropped.Load(),
		SubscribersResumed:   g.stats.subsResumed.Load(),
		DeltasDelivered:      g.stats.deltasDelivered.Load(),
		RetractionsDelivered: g.stats.retractionsDelivered.Load(),
	}
	st.OldestResumableSeq = g.wal.oldestResumable()
	if g.dwal != nil {
		st.WALDiskSegments, st.WALDiskBytes, st.WALChainSegments, st.WALChainBytes,
			st.WALFsyncs, st.WALCheckpoints = g.dwal.diskStats()
	}
	if g.rlog != nil {
		st.ResumeLogSegments, st.ResumeLogBytes, st.ResumeLogRebases, st.ResumeLogFailures = g.rlog.diskStats()
	}
	now := time.Now()
	g.retMu.Lock()
	first := true
	for epoch, meta := range g.retained {
		st.SnapshotBytes += int64(meta.bytes)
		if first || epoch < st.OldestPinnedEpoch {
			st.OldestPinnedEpoch = epoch
			st.OldestPinnedAge = now.Sub(meta.created).Seconds()
			first = false
		}
	}
	g.retMu.Unlock()
	return st
}

// Tail returns the retained WAL records with Seq > after (debugging and
// catch-up inspection; retention may have truncated older entries).
func (g *Graph) Tail(after uint64) []Record { return g.wal.tail(after) }

// OldestResumableSeq is the smallest from_seq ResumeSubscribe accepts;
// anything older was truncated out of the retained window.
func (g *Graph) OldestResumableSeq() uint64 { return g.wal.oldestResumable() }

// Close stops mutations, closes every subscription, and syncs+closes the
// durable WAL so the final acknowledged batch is on disk. Published
// snapshots stay readable until their holders release them; Close is
// idempotent.
func (g *Graph) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for _, sub := range g.subs {
		sub.closeLocked()
	}
	g.subs = map[uint64]*Subscription{}
	if g.rlog != nil {
		_ = g.rlog.close()
	}
	if g.dwal != nil {
		_ = g.dwal.close()
	}
}

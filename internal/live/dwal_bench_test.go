package live

import (
	"context"
	"fmt"
	"testing"

	"csce/internal/core"
	"csce/internal/graph"
)

// buildWALDir commits batches mutations into a fresh WAL directory and
// closes the graph, leaving a log (plus any checkpoints rotation forced)
// for a replay benchmark to recover. Batches alternate insert/delete of
// the same edge so the recovered store stays constant-size regardless of
// log length — replay cost is then purely per-record.
func buildWALDir(tb testing.TB, dir string, batches int, d Durability) {
	tb.Helper()
	d.Dir = dir
	g, err := Open("bench", core.NewEngine(graph.MustParse(pathGraph)), Options{Durability: d})
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < batches; i++ {
		m := Mutation{Op: OpInsertEdge, Src: 2, Dst: 3}
		if i%2 == 1 {
			m.Op = OpDeleteEdge
		}
		if _, err := g.Mutate(ctx, []Mutation{m}); err != nil {
			tb.Fatal(err)
		}
	}
	g.Close()
}

// BenchmarkWALAppend measures the full durable commit path — apply,
// serialize, disk append, snapshot swap — under each fsync policy. The
// spread between "never" and "always" is the price of the strongest
// durability guarantee (see EXPERIMENTS.md "Durable WAL").
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		b.Run(pol.String(), func(b *testing.B) {
			g, err := Open("bench", core.NewEngine(graph.MustParse(pathGraph)),
				Options{Durability: Durability{Dir: b.TempDir(), Fsync: pol}})
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := Mutation{Op: OpInsertEdge, Src: 2, Dst: 3}
				if i%2 == 1 {
					m.Op = OpDeleteEdge
				}
				if _, err := g.Mutate(ctx, []Mutation{m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALReplay measures startup recovery: reopen a directory whose
// log holds N records and replay it onto the base engine. Reported as
// records/sec (the number operators size their restart budget with).
func BenchmarkWALReplay(b *testing.B) {
	for _, records := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			// A huge segment bound and keep-count so nothing checkpoints:
			// every record is still in the log at reopen.
			buildWALDir(b, dir, records, Durability{
				Fsync: FsyncNever, SegmentSize: 1 << 30, KeepSegments: 1 << 20,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := Open("bench", core.NewEngine(graph.MustParse(pathGraph)),
					Options{Durability: Durability{Dir: dir, Fsync: FsyncNever,
						SegmentSize: 1 << 30, KeepSegments: 1 << 20}})
				if err != nil {
					b.Fatal(err)
				}
				rec := g.Recovery()
				if rec.ReplayedRecords != records {
					b.Fatalf("replayed %d records, want %d", rec.ReplayedRecords, records)
				}
				b.ReportMetric(float64(records)/rec.Duration.Seconds(), "records/s")
				g.Close()
			}
		})
	}
}

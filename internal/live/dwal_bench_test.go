package live

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/graph"
)

// buildWALDir commits batches mutations into a fresh WAL directory and
// closes the graph, leaving a log (plus any checkpoints rotation forced)
// for a replay benchmark to recover. Batches alternate insert/delete of
// the same edge so the recovered store stays constant-size regardless of
// log length — replay cost is then purely per-record.
func buildWALDir(tb testing.TB, dir string, batches int, d Durability) {
	tb.Helper()
	d.Dir = dir
	g, err := Open("bench", core.NewEngine(graph.MustParse(pathGraph)), Options{Durability: d})
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < batches; i++ {
		m := Mutation{Op: OpInsertEdge, Src: 2, Dst: 3}
		if i%2 == 1 {
			m.Op = OpDeleteEdge
		}
		if _, err := g.Mutate(ctx, []Mutation{m}); err != nil {
			tb.Fatal(err)
		}
	}
	g.Close()
}

// BenchmarkWALAppend measures the full durable commit path — apply,
// serialize, disk append, snapshot swap — under each fsync policy. The
// spread between "never" and "always" is the price of the strongest
// durability guarantee (see EXPERIMENTS.md "Durable WAL").
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		b.Run(pol.String(), func(b *testing.B) {
			g, err := Open("bench", core.NewEngine(graph.MustParse(pathGraph)),
				Options{Durability: Durability{Dir: b.TempDir(), Fsync: pol}})
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := Mutation{Op: OpInsertEdge, Src: 2, Dst: 3}
				if i%2 == 1 {
					m.Op = OpDeleteEdge
				}
				if _, err := g.Mutate(ctx, []Mutation{m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchStore builds a CCSR store with n vertices on a chain of edges —
// the "graph size" axis for the checkpoint benchmarks.
func benchStore(tb testing.TB, n int) *ccsr.Store {
	tb.Helper()
	var sb strings.Builder
	sb.WriteString("t undirected\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "v %d A\n", i)
	}
	for i := 1; i < n; i++ {
		fmt.Fprintf(&sb, "e %d %d\n", i-1, i)
	}
	return core.NewEngine(graph.MustParse(sb.String())).Store()
}

// BenchmarkCheckpoint measures one checkpoint cycle at three store sizes
// under each mode, driving the diskWAL directly so nothing but the cycle
// is on the clock. Every iteration appends one record (sealing a segment,
// identical work in both modes) and checkpoints at its seq: full mode
// re-serializes the whole store each time — O(vertices) — while
// incremental mode renames the covered segment into the chain, a cost
// that does not move with store size. ChainMax is set out of reach so the
// incremental numbers are the pure chain-advance cost; in production the
// default ChainMax (16) folds one full rewrite into every 16 cycles (see
// EXPERIMENTS.md for the amortized view).
func BenchmarkCheckpoint(b *testing.B) {
	for _, n := range []int{2_000, 20_000, 200_000} {
		st := benchStore(b, n)
		for _, mode := range []CheckpointMode{CheckpointFull, CheckpointIncremental} {
			b.Run(fmt.Sprintf("mode=%s/vertices=%d", mode, n), func(b *testing.B) {
				opts := Durability{
					Dir: b.TempDir(), Fsync: FsyncNever, SegmentSize: 1,
					KeepSegments: 1 << 20, CheckpointMode: mode, ChainMax: 1 << 30,
				}.withDefaults()
				opts.SegmentSize = 1 // every append seals its segment
				d, err := openDiskWAL(opts, Observer{})
				if err != nil {
					b.Fatal(err)
				}
				defer d.close()
				if err := d.openAppend(1); err != nil {
					b.Fatal(err)
				}
				// Incremental advances need a base to chain from; writing
				// it here keeps setup off the clock.
				if err := d.writeCheckpoint(st, 0, 0); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seq := uint64(i + 1)
					rec := []Record{{Seq: seq, Epoch: seq, Mut: Mutation{Op: OpInsertEdge, Src: 0, Dst: 1}}}
					if err := d.append(rec); err != nil {
						b.Fatal(err)
					}
					if err := d.checkpoint(st, seq, seq); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkResumeLogAppend measures the per-record cost the persisted
// resume log adds to the commit path: frame, CRC, and buffered write of
// one mutation record (no per-batch fsync — that is the design). This is
// the overhead every durable Mutate pays on top of the WAL append.
func BenchmarkResumeLogAppend(b *testing.B) {
	st := core.NewEngine(graph.MustParse(pathGraph)).Store()
	l, err := openResumeLog(b.TempDir(), Durability{
		Fsync: FsyncNever, SegmentSize: 1 << 30, KeepSegments: 2,
	}.withDefaults(), Observer{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.close()
	if err := l.start(st, 0, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		rec := []Record{{Seq: seq, Epoch: seq, Mut: Mutation{Op: OpInsertEdge, Src: 0, Dst: 1}}}
		if err := l.appendMuts(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures startup recovery: reopen a directory whose
// log holds N records and replay it onto the base engine. Reported as
// records/sec (the number operators size their restart budget with).
func BenchmarkWALReplay(b *testing.B) {
	for _, records := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			// A huge segment bound and keep-count so nothing checkpoints:
			// every record is still in the log at reopen.
			buildWALDir(b, dir, records, Durability{
				Fsync: FsyncNever, SegmentSize: 1 << 30, KeepSegments: 1 << 20,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := Open("bench", core.NewEngine(graph.MustParse(pathGraph)),
					Options{Durability: Durability{Dir: dir, Fsync: FsyncNever,
						SegmentSize: 1 << 30, KeepSegments: 1 << 20}})
				if err != nil {
					b.Fatal(err)
				}
				rec := g.Recovery()
				if rec.ReplayedRecords != records {
					b.Fatalf("replayed %d records, want %d", rec.ReplayedRecords, records)
				}
				b.ReportMetric(float64(records)/rec.Duration.Seconds(), "records/s")
				g.Close()
			}
		})
	}
}

package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"csce/internal/ccsr"
)

// Disk-backed write-ahead log: the durability layer under the in-memory
// mutation log. Layout of a WAL directory (one per live graph):
//
//	<dir>/00000000000000000001.wal   segment; name = first seq it holds
//	<dir>/00000000000000004097.wal   ...
//	<dir>/checkpoint                 latest base checkpoint (optional)
//	<dir>/00000000000000002049.inc      incremental checkpoint chain
//	<dir>/resume/                    persisted resume log (rlog.go)
//
// Each segment starts with an 8-byte magic and holds length-prefixed,
// CRC-checksummed records:
//
//	u32 payload length | u32 crc32(payload) | payload
//	payload: u64 seq | u64 epoch | u8 op | u32 src | u32 dst |
//	         u16 label id | u16 name length | name bytes
//
// Records carry the label's symbolic name when the caller knows it
// (Mutation.LabelName): interned ids are assigned in arrival order and a
// restarted process re-interns names in replay order, so the name — not
// the id — is the stable identity across restarts. Replay prefers the
// name and falls back to the raw id for nameless (programmatic) records.
//
// The checkpoint file bounds both replay time and disk usage: once more
// than KeepSegments sealed segments accumulate, the graph serializes its
// current store (seq S, epoch E) through writeCheckpoint, and every sealed
// segment that holds only records <= S is deleted. Recovery loads the
// checkpoint (if any) and replays the remaining segments on top.
//
// Durability.CheckpointMode selects how that cycle pays for itself.
// CheckpointFull rewrites the whole store every time. CheckpointIncremental
// instead *renames* each newly covered sealed segment to NNN.inc,
// extending a checkpoint chain rooted at the base file: the cycle is O(1)
// in store size because the chain reuses already-fsynced WAL bytes as
// checkpoint content. Recovery replays chain and live segments merged in
// firstSeq order; a torn tail is legal only in the final live segment.
// Once the chain would exceed Durability.ChainMax the next cycle falls
// back to one full serialization, which absorbs and deletes the chain.
//
// The resume/ subdirectory holds the persisted resume log (rlog.go): the
// subscriber-resume window, written in the commit path right after the WAL
// append, so ?from_seq replay survives restarts. It is a convenience tier,
// not a durability tier — recovery gap-fills any lost tail from the WAL,
// and damage beyond a torn tail is healed by deleting the directory.
//
// A crash can leave a torn tail: a partially written frame at the end of
// the *final* segment. Replay detects it (short frame or CRC mismatch),
// truncates the file back to the last whole record, and recovery proceeds
// — the torn batch was never acknowledged, because acknowledgement
// happens after the WAL append returns. The same damage in a non-final
// segment cannot be explained by a crash mid-append and is refused as
// corruption.

const (
	segmentMagic    = "CSCEWAL1"
	checkpointMagic = "CSCECKP1"
	segmentSuffix   = ".wal"
	chainSuffix     = ".inc"
	checkpointName  = "checkpoint"
	frameHeaderLen  = 8       // u32 length + u32 crc
	maxRecordLen    = 1 << 20 // sanity bound on one payload
)

// FsyncPolicy selects when the WAL file is fsynced.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs after every committed batch: an acknowledged
	// mutation survives power loss. The commit path pays one fsync.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer (Durability.FsyncEvery):
	// a crash of the machine can lose up to one interval of acknowledged
	// batches; a crash of only the process loses nothing (writes reached
	// the page cache).
	FsyncInterval
	// FsyncNever leaves syncing to the OS: process crashes lose nothing,
	// machine crashes lose whatever the kernel had not written back.
	FsyncNever
)

// String renders the policy as its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", uint8(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag spelling.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("live: unknown fsync policy %q (always, interval, never)", s)
	}
}

// CheckpointMode selects how retention turns sealed segments into a
// bounded recovery state.
type CheckpointMode uint8

const (
	// CheckpointFull serializes the whole store every time retention
	// triggers: recovery loads one checkpoint plus the remaining segments,
	// but each checkpoint costs O(graph).
	CheckpointFull CheckpointMode = iota
	// CheckpointIncremental writes the full store once (the base), then
	// advances by renaming covered segments into the checkpoint chain — an
	// O(1) metadata operation per cycle regardless of graph size. Recovery
	// loads base + chain + remaining segments. Once the chain exceeds
	// Durability.ChainMax files, the next cycle rewrites the base and
	// drops the chain, bounding both replay time and disk usage.
	CheckpointIncremental
)

// String renders the mode as its flag spelling.
func (m CheckpointMode) String() string {
	switch m {
	case CheckpointFull:
		return "full"
	case CheckpointIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("CheckpointMode(%d)", uint8(m))
	}
}

// ParseCheckpointMode parses the -checkpoint-mode flag spelling.
func ParseCheckpointMode(s string) (CheckpointMode, error) {
	switch s {
	case "full":
		return CheckpointFull, nil
	case "incremental":
		return CheckpointIncremental, nil
	default:
		return 0, fmt.Errorf("live: unknown checkpoint mode %q (full, incremental)", s)
	}
}

// Durability configures the disk WAL of one live graph. The zero value
// (empty Dir) disables it: the graph is purely in-memory, as before.
type Durability struct {
	// Dir is the graph's WAL directory; empty disables durability.
	Dir string
	// Fsync is the sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default 100ms).
	FsyncEvery time.Duration
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 4 MiB).
	SegmentSize int64
	// KeepSegments is how many sealed segments may accumulate before a
	// checkpoint is written and fully-covered segments are deleted
	// (default 4).
	KeepSegments int
	// CheckpointMode selects full-store checkpoints (default) or the
	// incremental base+chain scheme.
	CheckpointMode CheckpointMode
	// ChainMax bounds the incremental-checkpoint chain: once the chain
	// reaches this many files, the next checkpoint rewrites the full base
	// and drops them (default 16). Ignored under CheckpointFull.
	ChainMax int
}

func (d Durability) withDefaults() Durability {
	if d.FsyncEvery <= 0 {
		d.FsyncEvery = 100 * time.Millisecond
	}
	if d.SegmentSize <= 0 {
		d.SegmentSize = 4 << 20
	}
	if d.KeepSegments <= 0 {
		d.KeepSegments = 4
	}
	if d.ChainMax <= 0 {
		d.ChainMax = 16
	}
	return d
}

// Observer receives durations of the WAL's hidden work, so the serving
// layer can histogram them without live importing its metrics. All fields
// are optional.
type Observer struct {
	// WALAppend observes the full disk append of one batch (serialize +
	// write + any same-batch fsync).
	WALAppend func(time.Duration)
	// WALFsync observes each fsync, from any policy.
	WALFsync func(time.Duration)
	// WALReplay observes the one startup replay (checkpoint load included).
	WALReplay func(time.Duration)
	// WALCheckpoint observes each checkpoint write + truncation.
	WALCheckpoint func(time.Duration)
	// ResumeReplay observes each subscriber resume replay.
	ResumeReplay func(time.Duration)
	// ResumeLogAppend observes the resume-log append of each committed
	// batch (buffered write, no fsync; rides the commit path after the
	// WAL append).
	ResumeLogAppend func(time.Duration)
	// SigMaintain observes the prefilter-signature maintenance of each
	// committed batch (it rides inside the commit critical section).
	SigMaintain func(time.Duration)
}

func observe(f func(time.Duration), start time.Time) {
	if f != nil {
		f(time.Since(start))
	}
}

// errTornTail is the internal marker for a frame that ends mid-write; the
// replay loop converts it into truncation when it occurs in the final
// segment.
var errTornTail = errors.New("torn tail")

// segmentInfo is one on-disk segment, sorted by the first seq it holds.
type segmentInfo struct {
	path     string
	firstSeq uint64
	size     int64
}

// diskWAL owns the segment files of one graph. Appends are serialized by
// the graph's writer lock; the internal mutex exists for the background
// fsync timer and stats readers.
type diskWAL struct {
	dir  string
	opts Durability
	obs  Observer

	mu          sync.Mutex
	cur         *os.File
	curInfo     segmentInfo
	sealed      []segmentInfo
	chain       []segmentInfo // incremental-checkpoint chain (.inc), seq order
	hasBase     bool          // a checkpoint file exists on disk
	dirty       bool          // bytes written since the last sync
	fsyncs      uint64
	checkpoints uint64
	closed      bool

	stopFlush chan struct{}
	flushDone chan struct{}
}

// openDiskWAL scans (creating if needed) the WAL directory. The returned
// WAL is not yet writable: recovery must call replay and then openAppend.
func openDiskWAL(opts Durability, obs Observer) (*diskWAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: wal dir: %w", err)
	}
	d := &diskWAL{dir: opts.Dir, opts: opts, obs: obs}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("live: wal dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		var suffix string
		switch {
		case strings.HasSuffix(name, segmentSuffix):
			suffix = segmentSuffix
		case strings.HasSuffix(name, chainSuffix):
			suffix = chainSuffix
		default:
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, suffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("live: wal segment %q: bad name", name)
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		seg := segmentInfo{
			path:     filepath.Join(opts.Dir, name),
			firstSeq: first,
			size:     info.Size(),
		}
		if suffix == chainSuffix {
			d.chain = append(d.chain, seg)
		} else {
			d.sealed = append(d.sealed, seg)
		}
	}
	sort.Slice(d.sealed, func(i, j int) bool { return d.sealed[i].firstSeq < d.sealed[j].firstSeq })
	sort.Slice(d.chain, func(i, j int) bool { return d.chain[i].firstSeq < d.chain[j].firstSeq })
	return d, nil
}

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", firstSeq, segmentSuffix))
}

// recordBodyLen is the number of payload bytes putRecordBody writes for r.
func recordBodyLen(r Record) int {
	if r.Mut.LabelNamed {
		return 29 + len(r.Mut.LabelName)
	}
	return 29
}

// putRecordBody serializes one record into payload, which must be exactly
// recordBodyLen(r) bytes. The name-length field is biased by one: 0 means
// "unnamed" (replay trusts the raw label id), n+1 means a name of n bytes
// follows — an interned empty name is a real label and must survive the
// round trip distinct from "no name". Shared by the WAL segment format and
// the resume log (rlog.go), which wraps the same body in a kind byte.
func putRecordBody(payload []byte, r Record) {
	var name string
	nameField := uint16(0)
	if r.Mut.LabelNamed {
		name = r.Mut.LabelName
		nameField = uint16(len(name)) + 1
	}
	le := binary.LittleEndian
	le.PutUint64(payload[0:], r.Seq)
	le.PutUint64(payload[8:], r.Epoch)
	payload[16] = byte(r.Mut.Op)
	le.PutUint32(payload[17:], uint32(r.Mut.Src))
	le.PutUint32(payload[21:], uint32(r.Mut.Dst))
	label := uint16(r.Mut.VertexLabel)
	if r.Mut.Op != OpAddVertex {
		label = uint16(r.Mut.EdgeLabel)
	}
	le.PutUint16(payload[25:], label)
	le.PutUint16(payload[27:], nameField)
	copy(payload[29:], name)
}

// encodeRecord appends one framed record (header + body) to buf.
func encodeRecord(buf []byte, r Record) []byte {
	payloadLen := recordBodyLen(r)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen+payloadLen)...)
	payload := buf[start+frameHeaderLen:]
	putRecordBody(payload, r)
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodeRecord parses one payload (already CRC-verified).
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 29 {
		return Record{}, fmt.Errorf("payload too short (%d bytes)", len(payload))
	}
	le := binary.LittleEndian
	var r Record
	r.Seq = le.Uint64(payload[0:])
	r.Epoch = le.Uint64(payload[8:])
	r.Mut.Op = Op(payload[16])
	if r.Mut.Op > OpDeleteEdge {
		return Record{}, fmt.Errorf("unknown op %d", payload[16])
	}
	r.Mut.Src = le.Uint32(payload[17:])
	r.Mut.Dst = le.Uint32(payload[21:])
	label := le.Uint16(payload[25:])
	if r.Mut.Op == OpAddVertex {
		r.Mut.VertexLabel = label
	} else {
		r.Mut.EdgeLabel = label
	}
	nameField := int(le.Uint16(payload[27:]))
	if nameField == 0 {
		if len(payload) != 29 {
			return Record{}, fmt.Errorf("payload length %d for unnamed record", len(payload))
		}
		return r, nil
	}
	if len(payload) != 29+nameField-1 {
		return Record{}, fmt.Errorf("payload length %d does not match name length %d", len(payload), nameField-1)
	}
	r.Mut.LabelName = string(payload[29:])
	r.Mut.LabelNamed = true
	return r, nil
}

// readSegment streams the records of one segment file. It returns the
// byte offset of the first invalid frame together with errTornTail when
// the segment ends mid-frame or fails its checksum; validEnd is then the
// truncation point that recovers the longest valid prefix.
func readSegment(path string, fn func(Record) error) (validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return 0, fmt.Errorf("%w: missing segment header", errTornTail)
	}
	if string(magic) != segmentMagic {
		return 0, fmt.Errorf("bad segment magic %q", magic)
	}
	offset := int64(len(segmentMagic))
	header := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if err == io.EOF {
				return offset, nil // clean end
			}
			return offset, errTornTail // partial frame header
		}
		le := binary.LittleEndian
		length := le.Uint32(header[0:])
		crc := le.Uint32(header[4:])
		if length < 29 || length > maxRecordLen {
			return offset, errTornTail
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return offset, errTornTail // partial payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return offset, errTornTail
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return offset, errTornTail
		}
		if err := fn(rec); err != nil {
			return offset, err
		}
		offset += frameHeaderLen + int64(length)
	}
}

// replay streams every record with Seq > afterSeq, in order, across the
// incremental-checkpoint chain and then the segments (chain files are
// renamed segments, so one pass covers base + chain + log tail). A torn
// tail in the final segment is truncated away (reported via torn); any
// invalid frame earlier — including anywhere in a chain file, which was
// sealed and synced before it was renamed — is corruption and fails
// recovery. Sequence numbers are verified gapless across file boundaries.
func (d *diskWAL) replay(afterSeq uint64, fn func(Record) error) (lastSeq uint64, replayed int, torn bool, err error) {
	lastSeq = afterSeq
	prevSeq := uint64(0)
	files := make([]segmentInfo, 0, len(d.chain)+len(d.sealed))
	files = append(files, d.chain...)
	files = append(files, d.sealed...)
	sort.SliceStable(files, func(i, j int) bool { return files[i].firstSeq < files[j].firstSeq })
	for i, seg := range files {
		final := i == len(files)-1 && strings.HasSuffix(seg.path, segmentSuffix)
		validEnd, segErr := readSegment(seg.path, func(rec Record) error {
			if prevSeq != 0 && rec.Seq != prevSeq+1 {
				return fmt.Errorf("sequence gap: %d follows %d in %s", rec.Seq, prevSeq, filepath.Base(seg.path))
			}
			prevSeq = rec.Seq
			if rec.Seq <= afterSeq {
				return nil
			}
			if err := fn(rec); err != nil {
				return err
			}
			lastSeq = rec.Seq
			replayed++
			return nil
		})
		if errors.Is(segErr, errTornTail) {
			if !final {
				return lastSeq, replayed, false, fmt.Errorf(
					"live: wal segment %s is corrupt mid-log (not a crash tail); refusing to recover a gapped history", filepath.Base(seg.path))
			}
			if terr := os.Truncate(seg.path, validEnd); terr != nil {
				return lastSeq, replayed, false, fmt.Errorf("live: truncate torn tail: %w", terr)
			}
			for j := range d.sealed {
				if d.sealed[j].path == seg.path {
					d.sealed[j].size = validEnd
				}
			}
			return lastSeq, replayed, true, nil
		}
		if segErr != nil {
			return lastSeq, replayed, false, fmt.Errorf("live: wal segment %s: %w", filepath.Base(seg.path), segErr)
		}
	}
	return lastSeq, replayed, false, nil
}

// openAppend makes the WAL writable: the last scanned segment is reopened
// for appending (or a fresh one is created at nextSeq) and the background
// fsync timer starts if the policy asks for one.
func (d *diskWAL) openAppend(nextSeq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.sealed); n > 0 {
		info := d.sealed[n-1]
		f, err := os.OpenFile(info.path, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		if _, err := f.Seek(info.size, io.SeekStart); err != nil {
			_ = f.Close()
			return err
		}
		d.cur = f
		d.curInfo = info
		d.sealed = d.sealed[:n-1]
	} else {
		f, err := os.OpenFile(segmentPath(d.dir, nextSeq), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteString(segmentMagic); err != nil {
			_ = f.Close()
			return err
		}
		d.cur = f
		d.curInfo = segmentInfo{path: f.Name(), firstSeq: nextSeq, size: int64(len(segmentMagic))}
	}
	if d.opts.Fsync == FsyncInterval {
		d.stopFlush = make(chan struct{})
		d.flushDone = make(chan struct{})
		go d.flushLoop()
	}
	return nil
}

// flushLoop is the FsyncInterval timer: it syncs the active segment
// whenever bytes were written since the last sync.
func (d *diskWAL) flushLoop() {
	defer close(d.flushDone)
	t := time.NewTicker(d.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stopFlush:
			return
		case <-t.C:
			d.mu.Lock()
			if d.dirty && d.cur != nil {
				start := time.Now()
				if err := d.cur.Sync(); err == nil {
					d.dirty = false
					d.fsyncs++
					observe(d.obs.WALFsync, start)
				}
			}
			d.mu.Unlock()
		}
	}
}

// append writes one committed batch as a single write(2), syncs per
// policy, and rotates the segment when it outgrew SegmentSize. Called
// under the graph's writer lock, before the batch becomes visible: an
// error here aborts the commit.
func (d *diskWAL) append(recs []Record) error {
	start := time.Now()
	var buf []byte
	for _, r := range recs {
		if r.Mut.LabelNamed && len(r.Mut.LabelName) > 0xFFFE {
			return fmt.Errorf("live: label name of %d bytes exceeds the WAL record limit", len(r.Mut.LabelName))
		}
		buf = encodeRecord(buf, r)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, err := d.cur.Write(buf); err != nil {
		return fmt.Errorf("live: wal append: %w", err)
	}
	d.curInfo.size += int64(len(buf))
	switch d.opts.Fsync {
	case FsyncAlways:
		syncStart := time.Now()
		if err := d.cur.Sync(); err != nil {
			return fmt.Errorf("live: wal fsync: %w", err)
		}
		d.fsyncs++
		observe(d.obs.WALFsync, syncStart)
	default:
		d.dirty = true
	}
	if d.curInfo.size >= d.opts.SegmentSize {
		if err := d.rotateLocked(recs[len(recs)-1].Seq + 1); err != nil {
			return fmt.Errorf("live: wal rotate: %w", err)
		}
	}
	observe(d.obs.WALAppend, start)
	return nil
}

// rotateLocked seals the active segment (sync + close) and opens a fresh
// one whose name is the next sequence number to be written.
func (d *diskWAL) rotateLocked(nextSeq uint64) error {
	if err := d.cur.Sync(); err != nil {
		return err
	}
	d.fsyncs++
	if err := d.cur.Close(); err != nil {
		return err
	}
	d.sealed = append(d.sealed, d.curInfo)
	d.dirty = false
	f, err := os.OpenFile(segmentPath(d.dir, nextSeq), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segmentMagic); err != nil {
		_ = f.Close()
		return err
	}
	d.cur = f
	d.curInfo = segmentInfo{path: f.Name(), firstSeq: nextSeq, size: int64(len(segmentMagic))}
	return nil
}

// needsCheckpoint reports whether enough sealed segments accumulated for
// retention to demand a checkpoint + truncation. Chain files do not
// count: they are already part of the checkpoint state.
func (d *diskWAL) needsCheckpoint() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sealed) > d.opts.KeepSegments
}

// checkpoint applies the retention policy at (seq, epoch). Under
// CheckpointFull — or before any base exists, or once the chain reached
// ChainMax — the store is serialized as a fresh base and every covered
// file is deleted. Otherwise the covered segments advance into the chain
// by rename, costing O(1) per file instead of O(graph).
func (d *diskWAL) checkpoint(st *ccsr.Store, seq, epoch uint64) error {
	d.mu.Lock()
	incremental := d.opts.CheckpointMode == CheckpointIncremental &&
		d.hasBase && len(d.chain) < d.opts.ChainMax
	d.mu.Unlock()
	if incremental {
		return d.advanceChain(seq)
	}
	return d.writeCheckpoint(st, seq, epoch)
}

// advanceChain is the incremental checkpoint: every sealed segment whose
// records are all covered by seq is renamed into the chain. The renamed
// file's records stay exactly where they were, so recovery's one replay
// pass over chain + segments reconstructs the same state a full
// checkpoint at seq would have captured — without serializing the store.
func (d *diskWAL) advanceChain(seq uint64) error {
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	kept := d.sealed[:0]
	for i, seg := range d.sealed {
		var upper uint64 // one past the last seq the segment can hold
		if i+1 < len(d.sealed) {
			upper = d.sealed[i+1].firstSeq
		} else {
			upper = d.curInfo.firstSeq
		}
		if upper != 0 && upper-1 <= seq {
			dst := strings.TrimSuffix(seg.path, segmentSuffix) + chainSuffix
			if err := os.Rename(seg.path, dst); err != nil {
				kept = append(kept, d.sealed[i:]...)
				d.sealed = kept
				return err
			}
			seg.path = dst
			d.chain = append(d.chain, seg)
			continue
		}
		kept = append(kept, seg)
	}
	d.sealed = kept
	d.checkpoints++
	observe(d.obs.WALCheckpoint, start)
	return nil
}

// writeCheckpoint atomically replaces the checkpoint file with a store
// serialized at (seq, epoch), then deletes every sealed segment whose
// records are all covered by it. st must be overlay-free or private to
// the caller (Store.Encode compacts in place).
func (d *diskWAL) writeCheckpoint(st *ccsr.Store, seq, epoch uint64) error {
	start := time.Now()
	tmp := filepath.Join(d.dir, checkpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	header := make([]byte, len(checkpointMagic)+16)
	copy(header, checkpointMagic)
	binary.LittleEndian.PutUint64(header[len(checkpointMagic):], seq)
	binary.LittleEndian.PutUint64(header[len(checkpointMagic)+8:], epoch)
	if _, err := f.Write(header); err != nil {
		_ = f.Close()
		return err
	}
	if err := st.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, checkpointName)); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkpoints++
	d.hasBase = true
	// A sealed file holds records [firstSeq, next file's firstSeq); it is
	// deletable once that whole range is <= seq. Chain files sit before
	// every sealed segment in seq order, so their final upper bound is the
	// first sealed segment (or the active one).
	chainUpper := d.curInfo.firstSeq
	if len(d.sealed) > 0 {
		chainUpper = d.sealed[0].firstSeq
	}
	if d.chain, err = removeCovered(d.chain, chainUpper, seq); err != nil {
		return err
	}
	if d.sealed, err = removeCovered(d.sealed, d.curInfo.firstSeq, seq); err != nil {
		return err
	}
	observe(d.obs.WALCheckpoint, start)
	return nil
}

// removeCovered deletes every file of list whose records are all <= seq;
// finalUpper is the exclusive seq bound of the last list entry.
func removeCovered(list []segmentInfo, finalUpper, seq uint64) ([]segmentInfo, error) {
	kept := list[:0]
	for i, seg := range list {
		var upper uint64
		if i+1 < len(list) {
			upper = list[i+1].firstSeq
		} else {
			upper = finalUpper
		}
		if upper != 0 && upper-1 <= seq {
			if err := os.Remove(seg.path); err != nil {
				kept = append(kept, list[i:]...)
				return kept, err
			}
			continue
		}
		kept = append(kept, seg)
	}
	return kept, nil
}

// loadCheckpoint decodes the checkpoint file, if present.
func (d *diskWAL) loadCheckpoint() (st *ccsr.Store, seq, epoch uint64, ok bool, err error) {
	f, err := os.Open(filepath.Join(d.dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, false, nil
	}
	if err != nil {
		return nil, 0, 0, false, err
	}
	defer f.Close()
	header := make([]byte, len(checkpointMagic)+16)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, 0, 0, false, fmt.Errorf("live: checkpoint header: %w", err)
	}
	if string(header[:len(checkpointMagic)]) != checkpointMagic {
		return nil, 0, 0, false, fmt.Errorf("live: bad checkpoint magic")
	}
	seq = binary.LittleEndian.Uint64(header[len(checkpointMagic):])
	epoch = binary.LittleEndian.Uint64(header[len(checkpointMagic)+8:])
	st, err = ccsr.Decode(f)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("live: checkpoint store: %w", err)
	}
	d.mu.Lock()
	d.hasBase = true
	d.mu.Unlock()
	return st, seq, epoch, true, nil
}

// diskStats reports segment count (sealed + active), chain file count,
// total bytes of each, and the fsync/checkpoint counters.
func (d *diskWAL) diskStats() (segments int, bytes int64, chainSegments int, chainBytes int64, fsyncs, checkpoints uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	segments = len(d.sealed)
	for _, s := range d.sealed {
		bytes += s.size
	}
	if d.cur != nil {
		segments++
		bytes += d.curInfo.size
	}
	chainSegments = len(d.chain)
	for _, s := range d.chain {
		chainBytes += s.size
	}
	return segments, bytes, chainSegments, chainBytes, d.fsyncs, d.checkpoints
}

// close flushes, syncs, and closes the active segment and stops the
// background fsync timer. Idempotent.
func (d *diskWAL) close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	stop := d.stopFlush
	done := d.flushDone
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cur == nil {
		return nil
	}
	if err := d.cur.Sync(); err != nil {
		_ = d.cur.Close()
		return err
	}
	d.fsyncs++
	return d.cur.Close()
}

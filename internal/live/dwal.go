package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"csce/internal/ccsr"
)

// Disk-backed write-ahead log: the durability layer under the in-memory
// mutation log. Layout of a WAL directory (one per live graph):
//
//	<dir>/00000000000000000001.wal   segment; name = first seq it holds
//	<dir>/00000000000000004097.wal   ...
//	<dir>/checkpoint                 latest store checkpoint (optional)
//
// Each segment starts with an 8-byte magic and holds length-prefixed,
// CRC-checksummed records:
//
//	u32 payload length | u32 crc32(payload) | payload
//	payload: u64 seq | u64 epoch | u8 op | u32 src | u32 dst |
//	         u16 label id | u16 name length | name bytes
//
// Records carry the label's symbolic name when the caller knows it
// (Mutation.LabelName): interned ids are assigned in arrival order and a
// restarted process re-interns names in replay order, so the name — not
// the id — is the stable identity across restarts. Replay prefers the
// name and falls back to the raw id for nameless (programmatic) records.
//
// The checkpoint file bounds both replay time and disk usage: once more
// than KeepSegments sealed segments accumulate, the graph serializes its
// current store (seq S, epoch E) through writeCheckpoint, and every sealed
// segment that holds only records <= S is deleted. Recovery loads the
// checkpoint (if any) and replays the remaining segments on top.
//
// A crash can leave a torn tail: a partially written frame at the end of
// the *final* segment. Replay detects it (short frame or CRC mismatch),
// truncates the file back to the last whole record, and recovery proceeds
// — the torn batch was never acknowledged, because acknowledgement
// happens after the WAL append returns. The same damage in a non-final
// segment cannot be explained by a crash mid-append and is refused as
// corruption.

const (
	segmentMagic    = "CSCEWAL1"
	checkpointMagic = "CSCECKP1"
	segmentSuffix   = ".wal"
	checkpointName  = "checkpoint"
	frameHeaderLen  = 8       // u32 length + u32 crc
	maxRecordLen    = 1 << 20 // sanity bound on one payload
)

// FsyncPolicy selects when the WAL file is fsynced.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs after every committed batch: an acknowledged
	// mutation survives power loss. The commit path pays one fsync.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer (Durability.FsyncEvery):
	// a crash of the machine can lose up to one interval of acknowledged
	// batches; a crash of only the process loses nothing (writes reached
	// the page cache).
	FsyncInterval
	// FsyncNever leaves syncing to the OS: process crashes lose nothing,
	// machine crashes lose whatever the kernel had not written back.
	FsyncNever
)

// String renders the policy as its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", uint8(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag spelling.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("live: unknown fsync policy %q (always, interval, never)", s)
	}
}

// Durability configures the disk WAL of one live graph. The zero value
// (empty Dir) disables it: the graph is purely in-memory, as before.
type Durability struct {
	// Dir is the graph's WAL directory; empty disables durability.
	Dir string
	// Fsync is the sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default 100ms).
	FsyncEvery time.Duration
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 4 MiB).
	SegmentSize int64
	// KeepSegments is how many sealed segments may accumulate before a
	// checkpoint is written and fully-covered segments are deleted
	// (default 4).
	KeepSegments int
}

func (d Durability) withDefaults() Durability {
	if d.FsyncEvery <= 0 {
		d.FsyncEvery = 100 * time.Millisecond
	}
	if d.SegmentSize <= 0 {
		d.SegmentSize = 4 << 20
	}
	if d.KeepSegments <= 0 {
		d.KeepSegments = 4
	}
	return d
}

// Observer receives durations of the WAL's hidden work, so the serving
// layer can histogram them without live importing its metrics. All fields
// are optional.
type Observer struct {
	// WALAppend observes the full disk append of one batch (serialize +
	// write + any same-batch fsync).
	WALAppend func(time.Duration)
	// WALFsync observes each fsync, from any policy.
	WALFsync func(time.Duration)
	// WALReplay observes the one startup replay (checkpoint load included).
	WALReplay func(time.Duration)
	// WALCheckpoint observes each checkpoint write + truncation.
	WALCheckpoint func(time.Duration)
	// ResumeReplay observes each subscriber resume replay.
	ResumeReplay func(time.Duration)
	// SigMaintain observes the prefilter-signature maintenance of each
	// committed batch (it rides inside the commit critical section).
	SigMaintain func(time.Duration)
}

func observe(f func(time.Duration), start time.Time) {
	if f != nil {
		f(time.Since(start))
	}
}

// errTornTail is the internal marker for a frame that ends mid-write; the
// replay loop converts it into truncation when it occurs in the final
// segment.
var errTornTail = errors.New("torn tail")

// segmentInfo is one on-disk segment, sorted by the first seq it holds.
type segmentInfo struct {
	path     string
	firstSeq uint64
	size     int64
}

// diskWAL owns the segment files of one graph. Appends are serialized by
// the graph's writer lock; the internal mutex exists for the background
// fsync timer and stats readers.
type diskWAL struct {
	dir  string
	opts Durability
	obs  Observer

	mu          sync.Mutex
	cur         *os.File
	curInfo     segmentInfo
	sealed      []segmentInfo
	dirty       bool // bytes written since the last sync
	fsyncs      uint64
	checkpoints uint64
	closed      bool

	stopFlush chan struct{}
	flushDone chan struct{}
}

// openDiskWAL scans (creating if needed) the WAL directory. The returned
// WAL is not yet writable: recovery must call replay and then openAppend.
func openDiskWAL(opts Durability, obs Observer) (*diskWAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: wal dir: %w", err)
	}
	d := &diskWAL{dir: opts.Dir, opts: opts, obs: obs}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("live: wal dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("live: wal segment %q: bad name", name)
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		d.sealed = append(d.sealed, segmentInfo{
			path:     filepath.Join(opts.Dir, name),
			firstSeq: first,
			size:     info.Size(),
		})
	}
	sort.Slice(d.sealed, func(i, j int) bool { return d.sealed[i].firstSeq < d.sealed[j].firstSeq })
	return d, nil
}

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", firstSeq, segmentSuffix))
}

// encodeRecord appends one framed record to buf. The name-length field is
// biased by one: 0 means "unnamed" (replay trusts the raw label id),
// n+1 means a name of n bytes follows — an interned empty name is a real
// label and must survive the round trip distinct from "no name".
func encodeRecord(buf []byte, r Record) []byte {
	var name string
	nameField := uint16(0)
	if r.Mut.LabelNamed {
		name = r.Mut.LabelName
		nameField = uint16(len(name)) + 1
	}
	payloadLen := 29 + len(name)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen+payloadLen)...)
	payload := buf[start+frameHeaderLen:]
	le := binary.LittleEndian
	le.PutUint64(payload[0:], r.Seq)
	le.PutUint64(payload[8:], r.Epoch)
	payload[16] = byte(r.Mut.Op)
	le.PutUint32(payload[17:], uint32(r.Mut.Src))
	le.PutUint32(payload[21:], uint32(r.Mut.Dst))
	label := uint16(r.Mut.VertexLabel)
	if r.Mut.Op != OpAddVertex {
		label = uint16(r.Mut.EdgeLabel)
	}
	le.PutUint16(payload[25:], label)
	le.PutUint16(payload[27:], nameField)
	copy(payload[29:], name)
	le.PutUint32(buf[start:], uint32(payloadLen))
	le.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodeRecord parses one payload (already CRC-verified).
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 29 {
		return Record{}, fmt.Errorf("payload too short (%d bytes)", len(payload))
	}
	le := binary.LittleEndian
	var r Record
	r.Seq = le.Uint64(payload[0:])
	r.Epoch = le.Uint64(payload[8:])
	r.Mut.Op = Op(payload[16])
	if r.Mut.Op > OpDeleteEdge {
		return Record{}, fmt.Errorf("unknown op %d", payload[16])
	}
	r.Mut.Src = le.Uint32(payload[17:])
	r.Mut.Dst = le.Uint32(payload[21:])
	label := le.Uint16(payload[25:])
	if r.Mut.Op == OpAddVertex {
		r.Mut.VertexLabel = label
	} else {
		r.Mut.EdgeLabel = label
	}
	nameField := int(le.Uint16(payload[27:]))
	if nameField == 0 {
		if len(payload) != 29 {
			return Record{}, fmt.Errorf("payload length %d for unnamed record", len(payload))
		}
		return r, nil
	}
	if len(payload) != 29+nameField-1 {
		return Record{}, fmt.Errorf("payload length %d does not match name length %d", len(payload), nameField-1)
	}
	r.Mut.LabelName = string(payload[29:])
	r.Mut.LabelNamed = true
	return r, nil
}

// readSegment streams the records of one segment file. It returns the
// byte offset of the first invalid frame together with errTornTail when
// the segment ends mid-frame or fails its checksum; validEnd is then the
// truncation point that recovers the longest valid prefix.
func readSegment(path string, fn func(Record) error) (validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return 0, fmt.Errorf("%w: missing segment header", errTornTail)
	}
	if string(magic) != segmentMagic {
		return 0, fmt.Errorf("bad segment magic %q", magic)
	}
	offset := int64(len(segmentMagic))
	header := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if err == io.EOF {
				return offset, nil // clean end
			}
			return offset, errTornTail // partial frame header
		}
		le := binary.LittleEndian
		length := le.Uint32(header[0:])
		crc := le.Uint32(header[4:])
		if length < 29 || length > maxRecordLen {
			return offset, errTornTail
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return offset, errTornTail // partial payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return offset, errTornTail
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return offset, errTornTail
		}
		if err := fn(rec); err != nil {
			return offset, err
		}
		offset += frameHeaderLen + int64(length)
	}
}

// replay streams every record with Seq > afterSeq, in order, across all
// segments. A torn tail in the final segment is truncated away (reported
// via torn); any invalid frame earlier is corruption and fails recovery.
// Sequence numbers are verified gapless across segment boundaries.
func (d *diskWAL) replay(afterSeq uint64, fn func(Record) error) (lastSeq uint64, replayed int, torn bool, err error) {
	lastSeq = afterSeq
	prevSeq := uint64(0)
	for i, seg := range d.sealed {
		final := i == len(d.sealed)-1
		validEnd, segErr := readSegment(seg.path, func(rec Record) error {
			if prevSeq != 0 && rec.Seq != prevSeq+1 {
				return fmt.Errorf("sequence gap: %d follows %d in %s", rec.Seq, prevSeq, filepath.Base(seg.path))
			}
			prevSeq = rec.Seq
			if rec.Seq <= afterSeq {
				return nil
			}
			if err := fn(rec); err != nil {
				return err
			}
			lastSeq = rec.Seq
			replayed++
			return nil
		})
		if errors.Is(segErr, errTornTail) {
			if !final {
				return lastSeq, replayed, false, fmt.Errorf(
					"live: wal segment %s is corrupt mid-log (not a crash tail); refusing to recover a gapped history", filepath.Base(seg.path))
			}
			if terr := os.Truncate(seg.path, validEnd); terr != nil {
				return lastSeq, replayed, false, fmt.Errorf("live: truncate torn tail: %w", terr)
			}
			d.sealed[i].size = validEnd
			return lastSeq, replayed, true, nil
		}
		if segErr != nil {
			return lastSeq, replayed, false, fmt.Errorf("live: wal segment %s: %w", filepath.Base(seg.path), segErr)
		}
	}
	return lastSeq, replayed, false, nil
}

// openAppend makes the WAL writable: the last scanned segment is reopened
// for appending (or a fresh one is created at nextSeq) and the background
// fsync timer starts if the policy asks for one.
func (d *diskWAL) openAppend(nextSeq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.sealed); n > 0 {
		info := d.sealed[n-1]
		f, err := os.OpenFile(info.path, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		if _, err := f.Seek(info.size, io.SeekStart); err != nil {
			_ = f.Close()
			return err
		}
		d.cur = f
		d.curInfo = info
		d.sealed = d.sealed[:n-1]
	} else {
		f, err := os.OpenFile(segmentPath(d.dir, nextSeq), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteString(segmentMagic); err != nil {
			_ = f.Close()
			return err
		}
		d.cur = f
		d.curInfo = segmentInfo{path: f.Name(), firstSeq: nextSeq, size: int64(len(segmentMagic))}
	}
	if d.opts.Fsync == FsyncInterval {
		d.stopFlush = make(chan struct{})
		d.flushDone = make(chan struct{})
		go d.flushLoop()
	}
	return nil
}

// flushLoop is the FsyncInterval timer: it syncs the active segment
// whenever bytes were written since the last sync.
func (d *diskWAL) flushLoop() {
	defer close(d.flushDone)
	t := time.NewTicker(d.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stopFlush:
			return
		case <-t.C:
			d.mu.Lock()
			if d.dirty && d.cur != nil {
				start := time.Now()
				if err := d.cur.Sync(); err == nil {
					d.dirty = false
					d.fsyncs++
					observe(d.obs.WALFsync, start)
				}
			}
			d.mu.Unlock()
		}
	}
}

// append writes one committed batch as a single write(2), syncs per
// policy, and rotates the segment when it outgrew SegmentSize. Called
// under the graph's writer lock, before the batch becomes visible: an
// error here aborts the commit.
func (d *diskWAL) append(recs []Record) error {
	start := time.Now()
	var buf []byte
	for _, r := range recs {
		if r.Mut.LabelNamed && len(r.Mut.LabelName) > 0xFFFE {
			return fmt.Errorf("live: label name of %d bytes exceeds the WAL record limit", len(r.Mut.LabelName))
		}
		buf = encodeRecord(buf, r)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, err := d.cur.Write(buf); err != nil {
		return fmt.Errorf("live: wal append: %w", err)
	}
	d.curInfo.size += int64(len(buf))
	switch d.opts.Fsync {
	case FsyncAlways:
		syncStart := time.Now()
		if err := d.cur.Sync(); err != nil {
			return fmt.Errorf("live: wal fsync: %w", err)
		}
		d.fsyncs++
		observe(d.obs.WALFsync, syncStart)
	default:
		d.dirty = true
	}
	if d.curInfo.size >= d.opts.SegmentSize {
		if err := d.rotateLocked(recs[len(recs)-1].Seq + 1); err != nil {
			return fmt.Errorf("live: wal rotate: %w", err)
		}
	}
	observe(d.obs.WALAppend, start)
	return nil
}

// rotateLocked seals the active segment (sync + close) and opens a fresh
// one whose name is the next sequence number to be written.
func (d *diskWAL) rotateLocked(nextSeq uint64) error {
	if err := d.cur.Sync(); err != nil {
		return err
	}
	d.fsyncs++
	if err := d.cur.Close(); err != nil {
		return err
	}
	d.sealed = append(d.sealed, d.curInfo)
	d.dirty = false
	f, err := os.OpenFile(segmentPath(d.dir, nextSeq), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segmentMagic); err != nil {
		_ = f.Close()
		return err
	}
	d.cur = f
	d.curInfo = segmentInfo{path: f.Name(), firstSeq: nextSeq, size: int64(len(segmentMagic))}
	return nil
}

// needsCheckpoint reports whether enough sealed segments accumulated for
// retention to demand a checkpoint + truncation.
func (d *diskWAL) needsCheckpoint() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sealed) > d.opts.KeepSegments
}

// writeCheckpoint atomically replaces the checkpoint file with a store
// serialized at (seq, epoch), then deletes every sealed segment whose
// records are all covered by it. st must be overlay-free or private to
// the caller (Store.Encode compacts in place).
func (d *diskWAL) writeCheckpoint(st *ccsr.Store, seq, epoch uint64) error {
	start := time.Now()
	tmp := filepath.Join(d.dir, checkpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	header := make([]byte, len(checkpointMagic)+16)
	copy(header, checkpointMagic)
	binary.LittleEndian.PutUint64(header[len(checkpointMagic):], seq)
	binary.LittleEndian.PutUint64(header[len(checkpointMagic)+8:], epoch)
	if _, err := f.Write(header); err != nil {
		_ = f.Close()
		return err
	}
	if err := st.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, checkpointName)); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkpoints++
	// A sealed segment holds records [firstSeq, next segment's firstSeq);
	// it is deletable once that whole range is <= seq.
	kept := d.sealed[:0]
	for i, seg := range d.sealed {
		var upper uint64 // one past the last seq the segment can hold
		if i+1 < len(d.sealed) {
			upper = d.sealed[i+1].firstSeq
		} else {
			upper = d.curInfo.firstSeq
		}
		if upper != 0 && upper-1 <= seq {
			if err := os.Remove(seg.path); err != nil {
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	d.sealed = kept
	observe(d.obs.WALCheckpoint, start)
	return nil
}

// loadCheckpoint decodes the checkpoint file, if present.
func (d *diskWAL) loadCheckpoint() (st *ccsr.Store, seq, epoch uint64, ok bool, err error) {
	f, err := os.Open(filepath.Join(d.dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, false, nil
	}
	if err != nil {
		return nil, 0, 0, false, err
	}
	defer f.Close()
	header := make([]byte, len(checkpointMagic)+16)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, 0, 0, false, fmt.Errorf("live: checkpoint header: %w", err)
	}
	if string(header[:len(checkpointMagic)]) != checkpointMagic {
		return nil, 0, 0, false, fmt.Errorf("live: bad checkpoint magic")
	}
	seq = binary.LittleEndian.Uint64(header[len(checkpointMagic):])
	epoch = binary.LittleEndian.Uint64(header[len(checkpointMagic)+8:])
	st, err = ccsr.Decode(f)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("live: checkpoint store: %w", err)
	}
	return st, seq, epoch, true, nil
}

// diskStats reports segment count (sealed + active) and total bytes.
func (d *diskWAL) diskStats() (segments int, bytes int64, fsyncs, checkpoints uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	segments = len(d.sealed)
	for _, s := range d.sealed {
		bytes += s.size
	}
	if d.cur != nil {
		segments++
		bytes += d.curInfo.size
	}
	return segments, bytes, d.fsyncs, d.checkpoints
}

// close flushes, syncs, and closes the active segment and stops the
// background fsync timer. Idempotent.
func (d *diskWAL) close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	stop := d.stopFlush
	done := d.flushDone
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cur == nil {
		return nil
	}
	if err := d.cur.Sync(); err != nil {
		_ = d.cur.Close()
		return err
	}
	d.fsyncs++
	return d.cur.Close()
}

package live

import (
	"sync/atomic"

	"csce/internal/ccsr"
	"csce/internal/core"
)

// Snapshot is one published, immutable version of a live graph. Queries
// pin it with Graph.Acquire, run against Engine()/Store() without any
// locking (the underlying store is overlay-free and never mutated), and
// Release it when done. The publisher holds one reference from swap-in to
// swap-out, so a snapshot drains — and its drain hook fires — only after
// it has been superseded and the last query has finished.
type Snapshot struct {
	epoch   uint64
	eng     *core.Engine
	refs    atomic.Int64
	onDrain func()
}

func newSnapshot(epoch uint64, eng *core.Engine, onDrain func()) *Snapshot {
	s := &Snapshot{epoch: epoch, eng: eng, onDrain: onDrain}
	s.refs.Store(1) // publisher bias, dropped at swap-out
	return s
}

// Epoch is the version number: 0 for the registration-time snapshot, then
// +1 per committed batch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Engine returns the matching engine over this version.
func (s *Snapshot) Engine() *core.Engine { return s.eng }

// Store returns the CCSR store of this version.
func (s *Snapshot) Store() *ccsr.Store { return s.eng.Store() }

// Release drops one reference; the final drop fires the drain hook.
// Each Acquire must be paired with exactly one Release.
func (s *Snapshot) Release() {
	if n := s.refs.Add(-1); n == 0 {
		if s.onDrain != nil {
			s.onDrain()
		}
	} else if n < 0 {
		panic("live: Snapshot.Release without matching Acquire")
	}
}

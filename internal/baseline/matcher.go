package baseline

import (
	"time"

	"csce/internal/graph"
)

// Options bounds a baseline matching run.
type Options struct {
	// Limit stops after this many embeddings (0 = all).
	Limit uint64
	// TimeLimit aborts the run (0 = none). Timed-out runs report the
	// partial count found so far with TimedOut set, following the paper's
	// convention of charging the full time limit to failed runs.
	TimeLimit time.Duration
}

// Result reports a baseline run.
type Result struct {
	Embeddings uint64
	// Steps counts candidate extensions attempted, for pruning comparisons.
	Steps    uint64
	TimedOut bool
	LimitHit bool
	// PlanTime is the portion of Elapsed spent on plan/optimization work
	// (significant for SymBreak, mirroring GraphPi's Finding 2 behavior).
	PlanTime time.Duration
	Elapsed  time.Duration
}

// Throughput returns embeddings per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Embeddings) / r.Elapsed.Seconds()
}

// Capabilities mirrors the columns of the paper's Table III.
type Capabilities struct {
	Name         string
	Variants     []graph.Variant
	VertexLabels bool
	EdgeLabels   bool
	Directed     bool
	Undirected   bool
	MaxTested    int // largest pattern size in the original paper's experiments
}

// Supports reports whether the capability matrix covers a task.
func (c Capabilities) Supports(variant graph.Variant, directed, vertexLabeled, edgeLabeled bool) bool {
	ok := false
	for _, v := range c.Variants {
		if v == variant {
			ok = true
			break
		}
	}
	if !ok {
		return false
	}
	if directed && !c.Directed {
		return false
	}
	if !directed && !c.Undirected {
		return false
	}
	if vertexLabeled && !c.VertexLabels {
		return false
	}
	if edgeLabeled && !c.EdgeLabels {
		return false
	}
	return true
}

// Matcher is a baseline subgraph-matching algorithm.
type Matcher interface {
	Capabilities() Capabilities
	Match(g, p *graph.Graph, variant graph.Variant, opts Options) (Result, error)
}

// All returns the baseline matchers in Table III order.
func All() []Matcher {
	return []Matcher{
		NewSymBreak(),     // GraphPi
		NewJoinWCOJ(),     // Graphflow (GF)
		NewBacktrack(),    // GuP-family backtracking
		NewBacktrackFSP(), // RapidMatch/VEQ-style failing-set pruning
		NewVF3Like(),      // VF3
	}
}

// deadline converts a TimeLimit into an absolute deadline (zero = none).
func (o Options) deadline() time.Time {
	if o.TimeLimit <= 0 {
		return time.Time{}
	}
	return time.Now().Add(o.TimeLimit)
}

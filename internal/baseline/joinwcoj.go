package baseline

import (
	"sort"
	"time"

	"csce/internal/graph"
)

// JoinWCOJ is the relation-based worst-case-optimal join engine in the
// style of Graphflow and RapidMatch: for every pattern edge it materializes
// a relation (the data edges matching that edge's labels) by scanning the
// whole edge list, then grows embeddings one vertex at a time by
// intersecting relation adjacency. It differs from CSCE in both
// motivations the paper calls out: relation construction rescans the data
// graph per pattern edge (no offline cluster index), and there is no
// sequential candidate equivalence (every extension recomputes its
// intersection).
type JoinWCOJ struct{}

// NewJoinWCOJ returns the Graphflow-style baseline.
func NewJoinWCOJ() *JoinWCOJ { return &JoinWCOJ{} }

// Capabilities mirrors Graphflow's Table III row, extended with
// edge-induced support (RapidMatch's variant) so the harness can use one
// join baseline across figures.
func (j *JoinWCOJ) Capabilities() Capabilities {
	return Capabilities{
		Name:         "JoinWCOJ(GF/RM)",
		Variants:     []graph.Variant{graph.Homomorphic, graph.EdgeInduced},
		VertexLabels: true,
		EdgeLabels:   true,
		Directed:     true,
		Undirected:   true,
		MaxTested:    32,
	}
}

// relation is the adjacency of one pattern edge's matching data edges.
type relation struct {
	fwd map[graph.VertexID][]graph.VertexID // src -> sorted dsts
	rev map[graph.VertexID][]graph.VertexID // dst -> sorted srcs
}

// Match enumerates embeddings by pipelined WCOJ over per-edge relations.
func (j *JoinWCOJ) Match(g, p *graph.Graph, variant graph.Variant, opts Options) (Result, error) {
	start := time.Now()
	if variant == graph.VertexInduced {
		// Out of the baseline's supported variants (Table III).
		return Result{Elapsed: time.Since(start)}, errUnsupported("JoinWCOJ", variant)
	}

	// Build one relation per pattern edge by scanning all data edges.
	type pedge struct {
		src, dst graph.VertexID
		label    graph.EdgeLabel
	}
	var pedges []pedge
	p.Edges(func(a, b graph.VertexID, l graph.EdgeLabel) {
		pedges = append(pedges, pedge{a, b, l})
	})
	rels := make([]relation, len(pedges))
	for i, pe := range pedges {
		r := relation{
			fwd: make(map[graph.VertexID][]graph.VertexID),
			rev: make(map[graph.VertexID][]graph.VertexID),
		}
		srcL, dstL := p.Label(pe.src), p.Label(pe.dst)
		g.Edges(func(a, b graph.VertexID, l graph.EdgeLabel) {
			if l != pe.label {
				return
			}
			if g.Label(a) == srcL && g.Label(b) == dstL {
				r.fwd[a] = append(r.fwd[a], b)
				r.rev[b] = append(r.rev[b], a)
			}
			if !g.Directed() && g.Label(b) == srcL && g.Label(a) == dstL {
				r.fwd[b] = append(r.fwd[b], a)
				r.rev[a] = append(r.rev[a], b)
			}
		})
		for v := range r.fwd {
			sort.Slice(r.fwd[v], func(x, y int) bool { return r.fwd[v][x] < r.fwd[v][y] })
		}
		for v := range r.rev {
			sort.Slice(r.rev[v], func(x, y int) bool { return r.rev[v][x] < r.rev[v][y] })
		}
		rels[i] = r
	}

	order := connectivityOrder(p, func(u graph.VertexID) int { return -p.Degree(u) })
	pos := make([]int, p.NumVertices())
	for i, u := range order {
		pos[u] = i
	}

	// Per depth: relations constraining the new vertex given earlier ones.
	type constraintT struct {
		parent graph.VertexID
		adj    map[graph.VertexID][]graph.VertexID
	}
	cons := make([][]constraintT, len(order))
	for i, pe := range pedges {
		ps, pd := pos[pe.src], pos[pe.dst]
		if ps < pd {
			cons[pd] = append(cons[pd], constraintT{parent: pe.src, adj: rels[i].fwd})
		} else {
			cons[ps] = append(cons[ps], constraintT{parent: pe.dst, adj: rels[i].rev})
		}
	}

	st := struct {
		count    uint64
		steps    uint64
		stop     bool
		timedOut bool
		limitHit bool
	}{}
	deadline := opts.deadline()
	assigned := make([]graph.VertexID, p.NumVertices())
	used := make(map[graph.VertexID]bool)

	var rec func(d int)
	rec = func(d int) {
		if st.stop {
			return
		}
		if d == len(order) {
			st.count++
			if opts.Limit > 0 && st.count >= opts.Limit {
				st.limitHit = true
				st.stop = true
			}
			return
		}
		u := order[d]
		var cands []graph.VertexID
		if d == 0 {
			// First vertex: all distinct sources of any incident relation.
			seen := map[graph.VertexID]bool{}
			for i, pe := range pedges {
				if pe.src == u {
					for v := range rels[i].fwd {
						if !seen[v] {
							seen[v] = true
							cands = append(cands, v)
						}
					}
					break
				}
				if pe.dst == u {
					for v := range rels[i].rev {
						if !seen[v] {
							seen[v] = true
							cands = append(cands, v)
						}
					}
					break
				}
			}
			sort.Slice(cands, func(x, y int) bool { return cands[x] < cands[y] })
		} else {
			cs := cons[d]
			if len(cs) == 0 {
				return // disconnected pattern prefix: unsupported
			}
			base := cs[0].adj[assigned[cs[0].parent]]
			for _, v := range base {
				ok := true
				for _, c := range cs[1:] {
					if !containsID(c.adj[assigned[c.parent]], v) {
						ok = false
						break
					}
				}
				if ok {
					cands = append(cands, v)
				}
			}
		}
		for _, v := range cands {
			if st.stop {
				return
			}
			st.steps++
			if st.steps&1023 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
				st.timedOut = true
				st.stop = true
				return
			}
			if variant.Injective() && used[v] {
				continue
			}
			assigned[u] = v
			if variant.Injective() {
				used[v] = true
			}
			rec(d + 1)
			if variant.Injective() {
				delete(used, v)
			}
		}
	}
	if len(order) > 0 && p.NumEdges() > 0 {
		rec(0)
	}
	return Result{
		Embeddings: st.count,
		Steps:      st.steps,
		TimedOut:   st.timedOut,
		LimitHit:   st.limitHit,
		Elapsed:    time.Since(start),
	}, nil
}

func containsID(xs []graph.VertexID, v graph.VertexID) bool {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(xs) && xs[lo] == v
}

type unsupportedError struct {
	matcher string
	variant graph.Variant
}

func (e unsupportedError) Error() string {
	return "baseline: " + e.matcher + " does not support " + e.variant.String()
}

func errUnsupported(matcher string, variant graph.Variant) error {
	return unsupportedError{matcher, variant}
}

// IsUnsupported reports whether err marks a variant/matcher mismatch, so
// the harness can skip the combination like the paper omits unsupported
// cells.
func IsUnsupported(err error) bool {
	_, ok := err.(unsupportedError)
	return ok
}

// Package baseline reimplements, in spirit, the algorithms the paper
// compares against (Table III): plain backtracking with LDF/NLF filtering
// (the GuP/VEQ family's foundation), failing-set pruning (DAF, RapidMatch,
// VEQ), a relation-based worst-case-optimal join without clustering
// (Graphflow, RapidMatch), a VF3-style vertex-induced matcher with
// lookahead, and GraphPi-style symmetry breaking. A tiny exhaustive
// matcher (BruteForce) serves as the correctness oracle for every engine.
package baseline

import (
	"csce/internal/graph"
)

// BruteForce exhaustively enumerates the embeddings of p in g under the
// given variant. It tries every label-compatible assignment with no
// pruning beyond constraint checking, so it is only usable on tiny inputs;
// the test suites use it as the ground-truth oracle.
func BruteForce(g, p *graph.Graph, variant graph.Variant) uint64 {
	n := p.NumVertices()
	if n == 0 {
		return 0
	}
	f := make([]graph.VertexID, n)
	used := make(map[graph.VertexID]bool, n)
	var count uint64

	var rec func(k int)
	rec = func(k int) {
		if k == n {
			count++
			return
		}
		uk := graph.VertexID(k)
		for v := 0; v < g.NumVertices(); v++ {
			vk := graph.VertexID(v)
			if g.Label(vk) != p.Label(uk) {
				continue
			}
			if variant.Injective() && used[vk] {
				continue
			}
			if !consistent(g, p, variant, f, k, vk) {
				continue
			}
			f[k] = vk
			if variant.Injective() {
				used[vk] = true
			}
			rec(k + 1)
			if variant.Injective() {
				delete(used, vk)
			}
		}
	}
	rec(0)
	return count
}

// consistent checks the constraints between the new assignment uk -> vk and
// every previously assigned pattern vertex.
func consistent(g, p *graph.Graph, variant graph.Variant, f []graph.VertexID, k int, vk graph.VertexID) bool {
	uk := graph.VertexID(k)
	for w := 0; w < k; w++ {
		uw := graph.VertexID(w)
		vw := f[w]
		if variant == graph.VertexInduced {
			// Induced isomorphism: the arc label multiset between the data
			// pair must equal the pattern pair's, in both directions.
			if !equalLabels(arcLabels(p, uw, uk), arcLabels(g, vw, vk)) {
				return false
			}
			if p.Directed() && !equalLabels(arcLabels(p, uk, uw), arcLabels(g, vk, vw)) {
				return false
			}
			continue
		}
		// Homomorphic / edge-induced: every pattern arc needs a data arc
		// with the same label.
		for _, l := range arcLabels(p, uw, uk) {
			if !g.HasEdgeLabeled(vw, vk, l) {
				return false
			}
		}
		for _, l := range arcLabels(p, uk, uw) {
			if !g.HasEdgeLabeled(vk, vw, l) {
				return false
			}
		}
	}
	return true
}

// arcLabels returns the sorted labels of all arcs a -> b.
func arcLabels(g *graph.Graph, a, b graph.VertexID) []graph.EdgeLabel {
	var out []graph.EdgeLabel
	for _, nb := range g.Out(a) {
		if nb.To == b {
			out = append(out, nb.Label)
		}
	}
	return out // adjacency is sorted by (To, Label), so out is sorted
}

func equalLabels(a, b []graph.EdgeLabel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package baseline

import (
	"time"

	"csce/internal/graph"
)

// VF3Like is a vertex-induced (induced isomorphism) matcher in the style
// of VF3: a static matching order chosen by label rarity and degree, plus a
// lookahead feasibility rule that compares the unmapped-neighbor counts of
// the pattern vertex and its candidate, pruning branches whose
// neighborhoods can never complete.
type VF3Like struct{}

// NewVF3Like returns the VF3-style baseline.
func NewVF3Like() *VF3Like { return &VF3Like{} }

// Capabilities mirrors VF3's Table III row.
func (m *VF3Like) Capabilities() Capabilities {
	return Capabilities{
		Name:         "VF3Like",
		Variants:     []graph.Variant{graph.VertexInduced},
		VertexLabels: true,
		EdgeLabels:   true,
		Directed:     true,
		Undirected:   true,
		MaxTested:    2000,
	}
}

// Match enumerates induced embeddings of p in g.
func (m *VF3Like) Match(g, p *graph.Graph, variant graph.Variant, opts Options) (Result, error) {
	start := time.Now()
	if variant != graph.VertexInduced {
		return Result{Elapsed: time.Since(start)}, errUnsupported("VF3Like", variant)
	}

	// VF3-light ordering: lowest label frequency first, then highest
	// degree, with a connected prefix.
	labelFreq := map[graph.Label]int{}
	for v := 0; v < g.NumVertices(); v++ {
		labelFreq[g.Label(graph.VertexID(v))]++
	}
	order := connectivityOrder(p, func(u graph.VertexID) int {
		return labelFreq[p.Label(u)]*1000 - p.Degree(u)
	})

	st := &btState{
		g: g, p: p, variant: graph.VertexInduced, opts: opts,
		deadline: opts.deadline(),
	}
	st.prepare()
	if st.order != nil {
		st.order = order // override with the VF3 order
		st.rebindOrder()
		st.dfsLookahead(0, m)
	}
	return Result{
		Embeddings: st.count,
		Steps:      st.steps,
		TimedOut:   st.timedOut,
		LimitHit:   st.limitHit,
		Elapsed:    time.Since(start),
	}, nil
}

// rebindOrder recomputes the per-depth backward neighbor lists after the
// order was replaced.
func (s *btState) rebindOrder() {
	n := s.p.NumVertices()
	pos := make([]int, n)
	for i, u := range s.order {
		pos[u] = i
	}
	s.backNbrs = make([][]graph.VertexID, n)
	for i, u := range s.order {
		for _, w := range s.p.UndirectedNeighbors(u) {
			if pos[w] < i {
				s.backNbrs[i] = append(s.backNbrs[i], w)
			}
		}
	}
}

// dfsLookahead is the VF3-style search: the plain induced backtracking of
// btState plus the unmapped-neighbor lookahead filter.
func (s *btState) dfsLookahead(d int, m *VF3Like) {
	if s.stop {
		return
	}
	if d == len(s.order) {
		s.count++
		if s.opts.Limit > 0 && s.count >= s.opts.Limit {
			s.limitHit = true
			s.stop = true
		}
		return
	}
	u := s.order[d]
	for _, v := range s.candidates[u] {
		if s.stop {
			return
		}
		s.steps++
		if s.steps&1023 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.timedOut = true
			s.stop = true
			return
		}
		if s.variant.Injective() {
			if _, taken := s.used[v]; taken {
				continue
			}
		}
		if !s.edgesOK(d, u, v) {
			continue
		}
		if !s.lookaheadOK(u, v) {
			continue
		}
		s.mapping[d] = v
		s.assigned[u] = v
		s.isSet[u] = true
		s.used[v] = int(u)
		s.dfsLookahead(d+1, m)
		delete(s.used, v)
		s.isSet[u] = false
	}
}

// lookaheadOK prunes candidates whose free neighborhood is too small to
// host the pattern vertex's unmapped neighbors.
func (s *btState) lookaheadOK(u, v graph.VertexID) bool {
	unmappedP := 0
	for _, w := range s.p.UndirectedNeighbors(u) {
		if !s.isSet[w] {
			unmappedP++
		}
	}
	freeG := 0
	for _, x := range s.g.UndirectedNeighbors(v) {
		if _, taken := s.used[x]; !taken {
			freeG++
		}
	}
	return freeG >= unmappedP
}

package baseline

import (
	"time"

	"csce/internal/graph"
)

// Backtrack is the classic filtering-plus-backtracking matcher family
// (CFL-Match, GuP, VEQ share this skeleton): per-vertex candidate sets are
// computed once with label-degree filtering (LDF) and neighborhood label
// frequency filtering (NLF), then a connectivity-preserving order is
// searched depth-first, validating edges against the raw adjacency lists.
// Unlike CSCE it has no cluster index and recomputes candidate
// intersections on every extension.
type Backtrack struct {
	fsp bool // enable DAF-style failing-set pruning
}

// NewBacktrack returns the plain backtracking matcher (GuP stand-in).
func NewBacktrack() *Backtrack { return &Backtrack{} }

// NewBacktrackFSP returns backtracking with failing-set pruning
// (DAF/RapidMatch/VEQ stand-in).
func NewBacktrackFSP() *Backtrack { return &Backtrack{fsp: true} }

// Capabilities mirrors GuP's Table III row (edge-induced, vertex labels,
// undirected) extended to the variants this reimplementation handles; the
// harness consults MaxTested for reporting only.
func (b *Backtrack) Capabilities() Capabilities {
	name := "Backtrack(GuP)"
	if b.fsp {
		name = "BacktrackFSP(RM/VEQ)"
	}
	return Capabilities{
		Name:         name,
		Variants:     []graph.Variant{graph.EdgeInduced, graph.VertexInduced, graph.Homomorphic},
		VertexLabels: true,
		EdgeLabels:   false,
		Directed:     true,
		Undirected:   true,
		MaxTested:    32,
	}
}

// Match enumerates the embeddings of p in g.
func (b *Backtrack) Match(g, p *graph.Graph, variant graph.Variant, opts Options) (Result, error) {
	start := time.Now()
	// Failing-set pruning uses edge-induced semantics: a blame set of a
	// failed extension is its mapped pattern neighbors. Vertex-induced
	// failures can also be caused by negation against non-neighbors and
	// homomorphic "conflicts" are not failures at all, so — exactly as the
	// paper notes in Section I — FSP applies to edge-induced matching only.
	st := &btState{
		g: g, p: p, variant: variant, opts: opts,
		deadline: opts.deadline(),
		fsp:      b.fsp && variant == graph.EdgeInduced,
	}
	st.prepare()
	if st.order != nil {
		st.dfs(0)
	}
	res := Result{
		Embeddings: st.count,
		Steps:      st.steps,
		TimedOut:   st.timedOut,
		LimitHit:   st.limitHit,
		Elapsed:    time.Since(start),
	}
	return res, nil
}

type btState struct {
	g, p    *graph.Graph
	variant graph.Variant
	opts    Options

	order      []graph.VertexID // pattern vertices in matching order
	candidates [][]graph.VertexID
	backNbrs   [][]graph.VertexID // pattern neighbors mapped earlier, per depth

	mapping  []graph.VertexID // by depth
	assigned []graph.VertexID // by pattern vertex
	isSet    []bool
	used     map[graph.VertexID]int // data vertex -> pattern vertex using it

	count    uint64
	steps    uint64
	timedOut bool
	limitHit bool
	stop     bool
	deadline time.Time

	fsp bool
	// symCons lists f(a) < f(b) symmetry-breaking constraints (SymBreak).
	symCons [][2]graph.VertexID
}

// symOK checks the symmetry constraints that involve u against already
// assigned vertices.
func (s *btState) symOK(u, v graph.VertexID) bool {
	for _, c := range s.symCons {
		a, b := c[0], c[1]
		if a == u && s.isSet[b] && v >= s.assigned[b] {
			return false
		}
		if b == u && s.isSet[a] && s.assigned[a] >= v {
			return false
		}
	}
	return true
}

func (s *btState) prepare() {
	p, g := s.p, s.g
	n := p.NumVertices()

	// LDF + NLF candidate filtering. Multiplicity-based filters are only
	// sound for injective variants; homomorphism can map several pattern
	// neighbors onto one data neighbor, so it gets presence-only checks.
	injective := s.variant.Injective()
	s.candidates = make([][]graph.VertexID, n)
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		var cands []graph.VertexID
		for v := 0; v < g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			if g.Label(vid) != p.Label(uid) {
				continue
			}
			if injective && (g.OutDegree(vid) < p.OutDegree(uid) || g.InDegree(vid) < p.InDegree(uid)) {
				continue
			}
			if !nlfOK(g, p, vid, uid, injective) {
				continue
			}
			cands = append(cands, vid)
		}
		if len(cands) == 0 {
			return // no embeddings; leave order nil
		}
		s.candidates[u] = cands
	}

	// Order: smallest candidate set first, then keep the prefix connected.
	s.order = connectivityOrder(p, func(u graph.VertexID) int { return len(s.candidates[u]) })

	s.backNbrs = make([][]graph.VertexID, n)
	pos := make([]int, n)
	for i, u := range s.order {
		pos[u] = i
	}
	for i, u := range s.order {
		for _, w := range p.UndirectedNeighbors(u) {
			if pos[w] < i {
				s.backNbrs[i] = append(s.backNbrs[i], w)
			}
		}
	}

	s.mapping = make([]graph.VertexID, n)
	s.assigned = make([]graph.VertexID, n)
	s.isSet = make([]bool, n)
	s.used = make(map[graph.VertexID]int, n)
}

// nlfOK checks neighborhood label frequency: for every neighbor label the
// pattern vertex requires, the data vertex must offer at least as many
// (injective variants) or at least one (homomorphism).
func nlfOK(g, p *graph.Graph, v, u graph.VertexID, injective bool) bool {
	check := func(pNbrs []graph.Neighbor, gNbrs []graph.Neighbor) bool {
		need := map[graph.Label]int{}
		for _, nb := range pNbrs {
			need[p.Label(nb.To)]++
		}
		have := map[graph.Label]int{}
		for _, nb := range gNbrs {
			have[g.Label(nb.To)]++
		}
		for l, c := range need {
			if !injective {
				c = 1
			}
			if have[l] < c {
				return false
			}
		}
		return true
	}
	if !check(p.Out(u), g.Out(v)) {
		return false
	}
	if p.Directed() && !check(p.In(u), g.In(v)) {
		return false
	}
	return true
}

// connectivityOrder greedily orders pattern vertices by ascending score,
// requiring every vertex after the first to touch an earlier one when the
// pattern is connected.
func connectivityOrder(p *graph.Graph, score func(graph.VertexID) int) []graph.VertexID {
	n := p.NumVertices()
	order := make([]graph.VertexID, 0, n)
	inOrder := make([]bool, n)
	best := graph.VertexID(0)
	for v := 1; v < n; v++ {
		if score(graph.VertexID(v)) < score(best) {
			best = graph.VertexID(v)
		}
	}
	order = append(order, best)
	inOrder[best] = true
	for len(order) < n {
		bestV, bestScore, found := graph.VertexID(0), 0, false
		for v := 0; v < n; v++ {
			vid := graph.VertexID(v)
			if inOrder[v] {
				continue
			}
			connected := false
			for _, w := range p.UndirectedNeighbors(vid) {
				if inOrder[w] {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			if !found || score(vid) < bestScore {
				bestV, bestScore, found = vid, score(vid), true
			}
		}
		if !found { // disconnected pattern: take any remaining vertex
			for v := 0; v < n; v++ {
				if !inOrder[v] {
					bestV, found = graph.VertexID(v), true
					break
				}
			}
		}
		order = append(order, bestV)
		inOrder[bestV] = true
	}
	return order
}

// failSet is a bitset over pattern vertices for failing-set pruning.
// Vertices beyond 64 share bits (u mod 64); collisions only coarsen blame,
// which loses pruning opportunities but never prunes incorrectly (a prune
// requires the bit to be clear, which implies no collider is in the set).
type failSet uint64

func (f failSet) with(u graph.VertexID) failSet { return f | 1<<uint(u%64) }
func (f failSet) has(u graph.VertexID) bool     { return f&(1<<uint(u%64)) != 0 }

// dfs extends the embedding at depth d; with fsp enabled it returns whether
// any embedding was found below and the failing set explaining failures.
func (s *btState) dfs(d int) (bool, failSet) {
	if s.stop {
		return false, 0
	}
	if d == len(s.order) {
		s.count++
		if s.opts.Limit > 0 && s.count >= s.opts.Limit {
			s.limitHit = true
			s.stop = true
		}
		return true, 0
	}
	u := s.order[d]
	var fs failSet
	anyFound := false
	extended := false

	for _, v := range s.candidates[u] {
		if s.stop {
			break
		}
		s.steps++
		if s.steps&1023 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.timedOut = true
			s.stop = true
			break
		}
		if s.variant.Injective() {
			if w, taken := s.used[v]; taken {
				if s.fsp {
					fs = fs.with(u).with(graph.VertexID(w))
				}
				continue
			}
		}
		if !s.edgesOK(d, u, v) {
			continue
		}
		if len(s.symCons) > 0 && !s.symOK(u, v) {
			continue
		}
		extended = true
		s.mapping[d] = v
		s.assigned[u] = v
		s.isSet[u] = true
		if s.variant.Injective() {
			s.used[v] = int(u)
		}
		found, childFS := s.dfs(d + 1)
		if s.variant.Injective() {
			delete(s.used, v)
		}
		s.isSet[u] = false
		if found {
			anyFound = true
		} else if s.fsp && !s.stop {
			if !childFS.has(u) && childFS != 0 {
				// The failure below does not involve u: every sibling
				// mapping of u fails identically, so prune them.
				fs = childFS
				return anyFound, fs
			}
			fs |= childFS
		}
	}
	if s.fsp && !anyFound && !extended {
		// Nothing matched: blame u and its mapped pattern neighbors.
		fs = fs.with(u)
		for _, w := range s.backNbrs[d] {
			fs = fs.with(w)
		}
	}
	return anyFound, fs
}

// edgesOK validates the new assignment u -> v against all mapped pattern
// vertices, under the run's variant semantics (shared with BruteForce).
func (s *btState) edgesOK(d int, u, v graph.VertexID) bool {
	p, g := s.p, s.g
	if s.variant == graph.VertexInduced {
		for w := 0; w < p.NumVertices(); w++ {
			wid := graph.VertexID(w)
			if !s.isSet[wid] || wid == u {
				continue
			}
			vw := s.assigned[wid]
			if !equalLabels(arcLabels(p, wid, u), arcLabels(g, vw, v)) {
				return false
			}
			if p.Directed() && !equalLabels(arcLabels(p, u, wid), arcLabels(g, v, vw)) {
				return false
			}
		}
		return true
	}
	for _, wid := range s.backNbrs[d] {
		vw := s.assigned[wid]
		for _, l := range arcLabels(p, wid, u) {
			if !g.HasEdgeLabeled(vw, v, l) {
				return false
			}
		}
		for _, l := range arcLabels(p, u, wid) {
			if !g.HasEdgeLabeled(v, vw, l) {
				return false
			}
		}
	}
	return true
}

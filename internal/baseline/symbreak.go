package baseline

import (
	"time"

	"csce/internal/graph"
	"csce/internal/plan"
)

// SymBreak is the GraphPi-style matcher: it computes the pattern's
// automorphism group, derives symmetry-breaking order constraints through a
// stabilizer chain, searches for a matching order by exhaustively scoring
// vertex permutations (the expensive optimization that the paper's
// Finding 2 shows does not scale past small patterns), and finally runs a
// constrained backtracking search. The reported embedding count is
// multiplied by |Aut(P)| to agree with algorithms that enumerate
// automorphic images separately, as the paper does in Section VII-B.
type SymBreak struct {
	// PlanBudget caps the permutation-enumeration plan search; when the
	// budget is exhausted the best order found so far is used. The time
	// spent is reported as Result.PlanTime either way.
	PlanBudget time.Duration
}

// NewSymBreak returns the GraphPi-style baseline with a 30s plan budget.
func NewSymBreak() *SymBreak { return &SymBreak{PlanBudget: 30 * time.Second} }

// Capabilities mirrors GraphPi's Table III row (edge-induced, unlabeled,
// undirected, patterns up to 7).
func (m *SymBreak) Capabilities() Capabilities {
	return Capabilities{
		Name:       "SymBreak(GraphPi)",
		Variants:   []graph.Variant{graph.EdgeInduced},
		Directed:   false,
		Undirected: true,
		MaxTested:  7,
	}
}

// Match runs the symmetry-broken search.
func (m *SymBreak) Match(g, p *graph.Graph, variant graph.Variant, opts Options) (Result, error) {
	start := time.Now()
	if variant != graph.EdgeInduced {
		return Result{Elapsed: time.Since(start)}, errUnsupported("SymBreak", variant)
	}
	deadline := opts.deadline()

	// ---- Plan phase (GraphPi's scalability bottleneck) ----
	planStart := time.Now()
	auts := plan.Automorphisms(p)
	cons := plan.SymmetryConstraints(p, auts)
	planDeadline := planStart.Add(m.PlanBudget)
	if !deadline.IsZero() && deadline.Before(planDeadline) {
		planDeadline = deadline
	}
	order, planTimedOut := permutationOrderSearch(p, planDeadline)
	planTime := time.Since(planStart)
	if planTimedOut && !deadline.IsZero() && time.Now().After(deadline) {
		return Result{TimedOut: true, PlanTime: planTime, Elapsed: time.Since(start)}, nil
	}

	// ---- Execution phase ----
	st := &btState{
		g: g, p: p, variant: graph.EdgeInduced, opts: opts,
		deadline: deadline,
		symCons:  cons,
	}
	st.prepare()
	if st.order != nil {
		st.order = order
		st.rebindOrder()
		st.dfs(0)
	}
	return Result{
		Embeddings: st.count * uint64(len(auts)),
		Steps:      st.steps,
		TimedOut:   st.timedOut,
		LimitHit:   st.limitHit,
		PlanTime:   planTime,
		Elapsed:    time.Since(start),
	}, nil
}

// permutationOrderSearch emulates GraphPi's exhaustive matching-order
// search: it scores every permutation of the pattern vertices with a
// degree-based cost model and keeps the cheapest connected one. The
// factorial enumeration is the point — it reproduces the optimization cost
// blow-up of Finding 2 — so only the deadline bounds it.
func permutationOrderSearch(p *graph.Graph, deadline time.Time) ([]graph.VertexID, bool) {
	n := p.NumVertices()
	best := connectivityOrder(p, func(u graph.VertexID) int { return -p.Degree(u) })
	bestCost := orderCost(p, best)

	perm := make([]graph.VertexID, n)
	for i := range perm {
		perm[i] = graph.VertexID(i)
	}
	timedOut := false
	steps := 0
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			if c := orderCost(p, perm); c < bestCost {
				bestCost = c
				copy(best, perm)
			}
			return true
		}
		for i := k; i < n; i++ {
			steps++
			if steps&255 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
				timedOut = true
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	rec(0)
	return best, timedOut
}

// orderCost estimates a matching order's cost: orders whose prefixes stay
// connected and bind high-degree vertices early are cheaper. Disconnected
// prefixes are heavily penalized.
func orderCost(p *graph.Graph, order []graph.VertexID) float64 {
	cost := 0.0
	weight := 1.0
	for i, u := range order {
		back := 0
		for j := 0; j < i; j++ {
			if p.Adjacent(order[j], u) {
				back++
			}
		}
		if i > 0 && back == 0 {
			cost += 1e9 // disconnected prefix
		}
		// Fewer backward constraints means a larger candidate fan-out.
		weight *= float64(1+p.Degree(u)) / float64(1+back*2)
		cost += weight
	}
	return cost
}

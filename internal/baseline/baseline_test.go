package baseline

import (
	"math/rand"
	"testing"
	"time"

	"csce/internal/graph"
	"csce/internal/plan"
)

func randomGraph(rng *rand.Rand, n, m, labels, edgeLabels int, directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		v := graph.VertexID(rng.Intn(n))
		w := graph.VertexID(rng.Intn(n))
		if v == w {
			continue
		}
		var el graph.EdgeLabel
		if edgeLabels > 1 {
			el = graph.EdgeLabel(rng.Intn(edgeLabels))
		}
		b.AddEdge(v, w, el)
	}
	return b.MustBuild()
}

func randomConnectedPattern(rng *rand.Rand, n, labels int, directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		b.AddEdge(graph.VertexID(j), graph.VertexID(i), 0)
	}
	for k := 0; k < rng.Intn(n); k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
		}
	}
	return b.MustBuild()
}

func TestBruteForceKnownCounts(t *testing.T) {
	k5, k3 := graph.Clique(5, 0), graph.Clique(3, 0)
	if got := BruteForce(k5, k3, graph.EdgeInduced); got != 60 {
		t.Fatalf("K3 in K5 edge-induced = %d, want 60", got)
	}
	if got := BruteForce(k5, k3, graph.VertexInduced); got != 60 {
		t.Fatalf("K3 in K5 vertex-induced = %d, want 60", got)
	}
	p5, p3 := graph.Path(5, 0), graph.Path(3, 0)
	if got := BruteForce(p5, p3, graph.EdgeInduced); got != 6 {
		t.Fatalf("P3 in P5 edge-induced = %d, want 6", got)
	}
	if got := BruteForce(p5, p3, graph.Homomorphic); got != 14 {
		t.Fatalf("P3 in P5 homomorphic = %d, want 14", got)
	}
	// Vertex-induced P3 in a triangle: none.
	if got := BruteForce(graph.Cycle(3), p3, graph.VertexInduced); got != 0 {
		t.Fatalf("P3 in C3 vertex-induced = %d, want 0", got)
	}
}

// TestBacktrackMatchesBruteForce covers both the plain and the
// failing-set-pruned backtracking across variants and directedness.
func TestBacktrackMatchesBruteForce(t *testing.T) {
	matchers := []Matcher{NewBacktrack(), NewBacktrackFSP()}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g := randomGraph(rng, 10, 30, 3, 1, directed)
		p := randomConnectedPattern(rng, 2+rng.Intn(4), 3, directed)
		for _, variant := range graph.Variants() {
			want := BruteForce(g, p, variant)
			for _, m := range matchers {
				res, err := m.Match(g, p, variant, Options{})
				if err != nil {
					t.Fatalf("seed %d %v %s: %v", seed, variant, m.Capabilities().Name, err)
				}
				if res.Embeddings != want {
					t.Fatalf("seed %d %v %s: got %d want %d",
						seed, variant, m.Capabilities().Name, res.Embeddings, want)
				}
			}
		}
	}
}

func TestJoinWCOJMatchesBruteForce(t *testing.T) {
	m := NewJoinWCOJ()
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 1
		g := randomGraph(rng, 10, 30, 3, 2, directed)
		p := randomConnectedPattern(rng, 2+rng.Intn(4), 3, directed)
		for _, variant := range []graph.Variant{graph.EdgeInduced, graph.Homomorphic} {
			want := BruteForce(g, p, variant)
			res, err := m.Match(g, p, variant, Options{})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, variant, err)
			}
			if res.Embeddings != want {
				t.Fatalf("seed %d %v: got %d want %d", seed, variant, res.Embeddings, want)
			}
		}
	}
	if _, err := m.Match(graph.Clique(3, 0), graph.Path(2, 0), graph.VertexInduced, Options{}); !IsUnsupported(err) {
		t.Fatal("JoinWCOJ must reject vertex-induced")
	}
}

func TestVF3LikeMatchesBruteForce(t *testing.T) {
	m := NewVF3Like()
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g := randomGraph(rng, 10, 30, 3, 1, directed)
		p := randomConnectedPattern(rng, 2+rng.Intn(4), 3, directed)
		want := BruteForce(g, p, graph.VertexInduced)
		res, err := m.Match(g, p, graph.VertexInduced, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Embeddings != want {
			t.Fatalf("seed %d: got %d want %d", seed, res.Embeddings, want)
		}
	}
	if _, err := m.Match(graph.Clique(3, 0), graph.Path(2, 0), graph.Homomorphic, Options{}); !IsUnsupported(err) {
		t.Fatal("VF3Like must reject homomorphic")
	}
}

func TestSymBreakMatchesBruteForce(t *testing.T) {
	m := NewSymBreak()
	m.PlanBudget = 200 * time.Millisecond
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 9, 22, 1, 1, false)
		p := randomConnectedPattern(rng, 2+rng.Intn(4), 1, false)
		want := BruteForce(g, p, graph.EdgeInduced)
		res, err := m.Match(g, p, graph.EdgeInduced, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Embeddings != want {
			t.Fatalf("seed %d: symmetry-broken count %d, want %d", seed, res.Embeddings, want)
		}
		if res.PlanTime <= 0 {
			t.Fatal("plan time must be reported")
		}
	}
	if _, err := m.Match(graph.Clique(3, 0), graph.Path(2, 0), graph.Homomorphic, Options{}); !IsUnsupported(err) {
		t.Fatal("SymBreak must reject non-edge-induced variants")
	}
}

func TestSymmetryConstraintsReduceSearch(t *testing.T) {
	p := graph.Clique(4, 0)
	auts := plan.Automorphisms(p)
	cons := plan.SymmetryConstraints(p, auts)
	if len(auts) != 24 {
		t.Fatalf("Aut(K4) = %d", len(auts))
	}
	if len(cons) == 0 {
		t.Fatal("K4 must yield constraints")
	}
	// Constrained search on K6 must count C(6,4) = 15 canonical instances,
	// recovered to 15 * 24 = 360 total by the multiplier.
	m := NewSymBreak()
	m.PlanBudget = 200 * time.Millisecond
	res, err := m.Match(graph.Clique(6, 0), p, graph.EdgeInduced, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 360 {
		t.Fatalf("K4 in K6 = %d, want 360", res.Embeddings)
	}
}

func TestCapabilitiesMatrix(t *testing.T) {
	for _, m := range All() {
		c := m.Capabilities()
		if c.Name == "" || len(c.Variants) == 0 || c.MaxTested == 0 {
			t.Fatalf("incomplete capabilities: %+v", c)
		}
	}
	gp := NewSymBreak().Capabilities()
	if gp.Supports(graph.EdgeInduced, false, true, false) {
		t.Fatal("GraphPi row must reject vertex labels")
	}
	if !gp.Supports(graph.EdgeInduced, false, false, false) {
		t.Fatal("GraphPi row must accept unlabeled undirected edge-induced")
	}
	if gp.Supports(graph.Homomorphic, false, false, false) {
		t.Fatal("GraphPi row must reject homomorphic")
	}
	vf3 := NewVF3Like().Capabilities()
	if !vf3.Supports(graph.VertexInduced, true, true, true) {
		t.Fatal("VF3 row must accept directed labeled vertex-induced")
	}
}

func TestBaselineTimeLimit(t *testing.T) {
	g := graph.Clique(30, 0)
	p := graph.Clique(5, 0)
	for _, m := range []Matcher{NewBacktrack(), NewBacktrackFSP()} {
		res, err := m.Match(g, p, graph.EdgeInduced, Options{TimeLimit: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if !res.TimedOut {
			t.Fatalf("%s: expected timeout", m.Capabilities().Name)
		}
	}
}

func TestBaselineLimit(t *testing.T) {
	g := graph.Clique(8, 0)
	p := graph.Path(3, 0)
	res, err := NewBacktrack().Match(g, p, graph.EdgeInduced, Options{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LimitHit || res.Embeddings != 5 {
		t.Fatalf("limit run: %+v", res)
	}
}

func TestFSPNeverTakesMoreSteps(t *testing.T) {
	// Failing-set pruning can only skip sibling candidates, so on identical
	// inputs it must never attempt more extensions than plain backtracking,
	// while producing identical counts.
	prunedHelped := false
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 14, 28, 1, 1, false) // sparse, unlabeled: failures abound
		p := randomConnectedPattern(rng, 5, 1, false)
		plain, err := NewBacktrack().Match(g, p, graph.EdgeInduced, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := NewBacktrackFSP().Match(g, p, graph.EdgeInduced, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Embeddings != pruned.Embeddings {
			t.Fatalf("seed %d: counts diverge %d vs %d", seed, plain.Embeddings, pruned.Embeddings)
		}
		if pruned.Steps > plain.Steps {
			t.Fatalf("seed %d: FSP took more steps (%d) than plain (%d)", seed, pruned.Steps, plain.Steps)
		}
		if pruned.Steps < plain.Steps {
			prunedHelped = true
		}
	}
	_ = prunedHelped // random cases rarely trigger prunes; the deterministic test below does
}

// TestFSPPrunesIndependentRegion reproduces the paper's R1/R2 motivation
// deterministically: a leaf region (many B leaves) is conditionally
// independent of a failing region (an A-C-C triangle the data lacks). With
// the leaf ordered before the failing region, plain backtracking re-fails
// once per leaf while FSP blames only the triangle vertices and prunes all
// sibling leaf mappings.
func TestFSPPrunesIndependentRegion(t *testing.T) {
	gb := graph.NewBuilder(false)
	a0 := gb.AddVertex(0) // A
	for i := 0; i < 20; i++ {
		leaf := gb.AddVertex(1) // B leaves
		gb.AddEdge(a0, leaf, 0)
	}
	c1 := gb.AddVertex(2) // C
	c2 := gb.AddVertex(2) // C
	gb.AddEdge(a0, c1, 0)
	gb.AddEdge(a0, c2, 0)
	// Pendant C's so c1 and c2 pass NLF (they need a C neighbor) without
	// forming the triangle the pattern wants.
	c3 := gb.AddVertex(2)
	c4 := gb.AddVertex(2)
	gb.AddEdge(c1, c3, 0)
	gb.AddEdge(c2, c4, 0)
	g := gb.MustBuild()

	pb := graph.NewBuilder(false)
	pc := pb.AddVertex(0) // A center
	pl := pb.AddVertex(1) // B leaf (region R1)
	pm := pb.AddVertex(2) // C      (region R2...)
	px := pb.AddVertex(2) // C
	pb.AddEdge(pc, pl, 0)
	pb.AddEdge(pc, pm, 0)
	pb.AddEdge(pc, px, 0)
	pb.AddEdge(pm, px, 0) // the A-C-C triangle: absent from the data
	p := pb.MustBuild()

	run := func(fsp bool) *btState {
		st := &btState{g: g, p: p, variant: graph.EdgeInduced, fsp: fsp}
		st.prepare()
		if st.order == nil {
			t.Fatal("candidates vanished; NLF too strict for the fixture")
		}
		st.order = []graph.VertexID{pc, pl, pm, px} // leaf before the failing region
		st.rebindOrder()
		st.dfs(0)
		return st
	}
	plain := run(false)
	pruned := run(true)
	if plain.count != 0 || pruned.count != 0 {
		t.Fatalf("pattern must be unsatisfiable: %d/%d", plain.count, pruned.count)
	}
	if pruned.steps >= plain.steps {
		t.Fatalf("FSP must prune the independent leaf region: fsp=%d plain=%d steps",
			pruned.steps, plain.steps)
	}
}

func TestConnectivityOrder(t *testing.T) {
	p := graph.Path(6, 0)
	order := connectivityOrder(p, func(u graph.VertexID) int { return int(u) })
	if len(order) != 6 {
		t.Fatal("order incomplete")
	}
	seen := map[graph.VertexID]bool{order[0]: true}
	for _, u := range order[1:] {
		touched := false
		for _, w := range p.UndirectedNeighbors(u) {
			if seen[w] {
				touched = true
			}
		}
		if !touched {
			t.Fatalf("order %v breaks prefix connectivity at %d", order, u)
		}
		seen[u] = true
	}
}

package motifcluster

import (
	"testing"

	"csce/internal/dataset"
	"csce/internal/graph"
)

func TestPairwiseF1(t *testing.T) {
	// Perfect clustering.
	if got := PairwiseF1([]int{0, 0, 1, 1}, []int{5, 5, 9, 9}); got != 1 {
		t.Fatalf("perfect clustering F1 = %f, want 1", got)
	}
	// Everything in one cluster against two truth communities of two:
	// tp=2, fp=4, fn=0 -> precision 1/3, recall 1 -> F1 = 0.5.
	if got := PairwiseF1([]int{0, 0, 0, 0}, []int{0, 0, 1, 1}); got != 0.5 {
		t.Fatalf("single-cluster F1 = %f, want 0.5", got)
	}
	// Singletons: no same-cluster predictions -> F1 0.
	if got := PairwiseF1([]int{0, 1, 2, 3}, []int{0, 0, 1, 1}); got != 0 {
		t.Fatalf("singleton F1 = %f, want 0", got)
	}
}

func TestPropagateRecoversCleanCommunities(t *testing.T) {
	// Two disjoint triangles: propagation must find two clusters.
	b := graph.NewBuilder(false)
	b.AddVertices(6, 0)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		b.AddEdge(e[0], e[1], 0)
	}
	g := b.MustBuild()
	w := map[[2]graph.VertexID]float64{}
	g.Edges(func(a, bb graph.VertexID, _ graph.EdgeLabel) { w[pairKey(a, bb)] = 1 })
	labels := propagate(g, w)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("first triangle split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatalf("second triangle split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("triangles merged: %v", labels)
	}
}

// TestCaseStudy reproduces the Section VII-G result shape on a small
// EMAIL-EU analogue: motif-based clustering must beat edge-based
// clustering, using 4-cliques to keep the test fast (the benchmark harness
// runs the paper's 8-cliques).
func TestCaseStudy(t *testing.T) {
	spec := dataset.EmailEU()
	spec.Vertices = 200
	spec.Communities = 10
	spec.IntraProb = 0.55
	spec.InterDegree = 6
	g, truth := spec.GenerateWithCommunities()
	res, err := Run(g, truth, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CliqueInstances == 0 {
		t.Fatal("no cliques found; the planted communities are too sparse")
	}
	if res.MotifF1 <= res.EdgeF1 {
		t.Fatalf("motif clustering (%.3f) must beat edge clustering (%.3f)",
			res.MotifF1, res.EdgeF1)
	}
	if res.MotifF1 < 0.4 {
		t.Fatalf("motif F1 %.3f unexpectedly low", res.MotifF1)
	}
}

func TestRunValidatesTruth(t *testing.T) {
	g := graph.Clique(5, 0)
	if _, err := Run(g, []int{0, 1}, 3); err == nil {
		t.Fatal("mismatched truth length must error")
	}
}

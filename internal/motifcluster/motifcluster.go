// Package motifcluster reproduces the paper's case study (Section VII-G):
// higher-order graph clustering of an EMAIL-EU-style communication network.
// Members of a research institution are clustered by department using
// either raw email edges or 8-clique motif weights; the paper reports the
// motif-based clustering improving the pairwise F1 score (0.398 -> 0.515)
// while CSCE makes the 8-clique enumeration fast.
package motifcluster

import (
	"fmt"
	"time"

	"csce/internal/core"
	"csce/internal/dataset"
	"csce/internal/graph"
)

// Result summarizes one clustering comparison.
type Result struct {
	// EdgeF1 and MotifF1 are pairwise F1 scores against ground truth for
	// edge-based and k-clique-based clustering.
	EdgeF1, MotifF1 float64
	// EdgeClusters and MotifClusters count the produced clusters.
	EdgeClusters, MotifClusters int
	// CliqueInstances is the number of distinct k-clique instances found.
	CliqueInstances uint64
	// CliqueTime is the enumeration time (the paper's 11.57s -> 0.39s
	// headline is about this stage).
	CliqueTime time.Duration
}

// Run clusters g by both weightings and scores them against truth.
// k is the clique size (8 in the paper).
func Run(g *graph.Graph, truth []int, k int) (Result, error) {
	var res Result
	if len(truth) != g.NumVertices() {
		return res, fmt.Errorf("motifcluster: truth length %d != vertices %d", len(truth), g.NumVertices())
	}

	// Edge-based clustering: label propagation on unit edge weights.
	edgeWeights := make(map[[2]graph.VertexID]float64)
	g.Edges(func(a, b graph.VertexID, _ graph.EdgeLabel) {
		edgeWeights[pairKey(a, b)] = 1
	})
	edgeLabels := propagate(g, edgeWeights)
	res.EdgeF1 = PairwiseF1(edgeLabels, truth)
	res.EdgeClusters = countClusters(edgeLabels)

	// Motif weights: for every k-clique instance, every vertex pair inside
	// it gains weight — the higher-order graph G_P of the paper's
	// introduction, with symmetry breaking so each instance counts once.
	engine := core.NewEngine(g)
	pattern := dataset.CliquePattern(g, k)
	start := time.Now()
	pairWeights, instances, err := engine.BuildHigherOrder(pattern, core.HigherOrderOptions{
		Variant:              graph.EdgeInduced,
		CountAutomorphicOnce: true,
	})
	if err != nil {
		return res, fmt.Errorf("motifcluster: clique enumeration: %w", err)
	}
	res.CliqueTime = time.Since(start)
	res.CliqueInstances = instances
	motifWeights := make(map[[2]graph.VertexID]float64, len(pairWeights))
	for pr, w := range pairWeights {
		motifWeights[pr] = float64(w)
	}

	motifLabels := propagate(g, motifWeights)
	res.MotifF1 = PairwiseF1(motifLabels, truth)
	res.MotifClusters = countClusters(motifLabels)
	return res, nil
}

func pairKey(a, b graph.VertexID) [2]graph.VertexID {
	if b < a {
		a, b = b, a
	}
	return [2]graph.VertexID{a, b}
}

// propagate is deterministic weighted label propagation: every vertex
// starts in its own cluster; for a fixed number of rounds each vertex (in
// ID order) adopts the label with the highest incident weight sum,
// breaking ties toward the smaller label.
func propagate(g *graph.Graph, weights map[[2]graph.VertexID]float64) []int {
	n := g.NumVertices()
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v
	}
	for round := 0; round < 12; round++ {
		changed := false
		for v := 0; v < n; v++ {
			vid := graph.VertexID(v)
			score := map[int]float64{}
			for _, w := range g.UndirectedNeighbors(vid) {
				wt := weights[pairKey(vid, w)]
				if wt > 0 {
					score[labels[w]] += wt
				}
			}
			bestLabel, bestScore := labels[v], 0.0
			for l, s := range score {
				if s > bestScore || (s == bestScore && l < bestLabel) {
					bestLabel, bestScore = l, s
				}
			}
			if bestScore > 0 && bestLabel != labels[v] {
				labels[v] = bestLabel
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return labels
}

func countClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// PairwiseF1 scores a clustering against ground truth over all vertex
// pairs: precision and recall of "same cluster" predictions.
func PairwiseF1(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("motifcluster: length mismatch")
	}
	var tp, fp, fn float64
	n := len(pred)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			samePred := pred[i] == pred[j]
			sameTruth := truth[i] == truth[j]
			switch {
			case samePred && sameTruth:
				tp++
			case samePred && !sameTruth:
				fp++
			case !samePred && sameTruth:
				fn++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 2 * precision * recall / (precision + recall)
}

package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of logarithmic latency buckets. Bucket 0
// covers [0, 1µs); bucket i (i ≥ 1) covers [2^(i-1), 2^i) µs. 40 buckets
// reach 2^39 µs ≈ 6.4 days, far beyond any query the daemon admits.
const histBuckets = 40

// Histogram is a lock-free latency histogram with logarithmic bucketing.
// The zero value is ready to use. Record is wait-free apart from the
// bounded CAS loop maintaining the maximum: one atomic add per bucket, one
// for the sum, and a max update — no locks, no allocation — so it can sit
// on the per-step hot path of every query phase.
//
// Log-spaced buckets trade fine absolute resolution for constant relative
// error (< 2× within a bucket, halved by interpolation), which is the
// right trade for latencies spanning microseconds to minutes: p99 of a
// 3ms distribution and p99 of a 30s distribution are both read from a
// bucket whose width is proportional to the value.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
}

// bucketIndex maps a duration to its bucket: Len64 of the duration in
// whole microseconds, clamped to the top bucket.
//
//csce:hotpath pure arithmetic on the per-request metrics path
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(d) / 1000)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Record adds one observation. Safe for concurrent use; negative
// durations clamp to zero.
//
//csce:hotpath called on every served request; must stay atomics-only
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sumNs.Add(uint64(d))
	for {
		cur := h.maxNs.Load()
		if uint64(d) <= cur || h.maxNs.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to read
// without synchronization. Counts are conserved: the bucket sum equals
// Count (each Record increments exactly one bucket).
type HistogramSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	SumNs   uint64
	MaxNs   uint64
}

// Snapshot atomically reads every bucket. Concurrent Records may land
// between bucket reads, so a snapshot is a consistent-enough view for
// monitoring, not a linearizable cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.SumNs = h.sumNs.Load()
	s.MaxNs = h.maxNs.Load()
	return s
}

// bucketBoundsUs returns the [lo, hi) bounds of bucket i in microseconds.
func bucketBoundsUs(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) in milliseconds by
// linear interpolation within the bucket holding the target rank. Returns
// 0 for an empty histogram. Estimates are monotone in q and never exceed
// Max.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketBoundsUs(i)
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			est := lo + frac*(hi-lo)
			if maxUs := float64(s.MaxNs) / 1e3; est > maxUs {
				est = maxUs // the top observation bounds every quantile
			}
			return est / 1e3
		}
		cum = next
	}
	return float64(s.MaxNs) / 1e6
}

// PromBuckets renders the snapshot in Prometheus cumulative form: the
// inclusive upper bound of every bucket except the clamped top one, in
// seconds and ascending, with the cumulative observation count at each
// bound. The caller reports the top bucket as le="+Inf" with Count (so
// conservation holds even for observations the clamp folded in).
func (s HistogramSnapshot) PromBuckets() (uppersSec []float64, cumulative []uint64) {
	uppersSec = make([]float64, histBuckets-1)
	cumulative = make([]uint64, histBuckets-1)
	var cum uint64
	for i := 0; i < histBuckets-1; i++ {
		cum += s.Buckets[i]
		_, hi := bucketBoundsUs(i)
		uppersSec[i] = hi / 1e6
		cumulative[i] = cum
	}
	return uppersSec, cumulative
}

// SumSeconds returns the total observed latency in seconds (exact).
func (s HistogramSnapshot) SumSeconds() float64 { return float64(s.SumNs) / 1e9 }

// MeanMs returns the mean latency in milliseconds (exact, from the sum).
func (s HistogramSnapshot) MeanMs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count) / 1e6
}

// MaxMs returns the largest recorded latency in milliseconds (exact).
func (s HistogramSnapshot) MaxMs() float64 { return float64(s.MaxNs) / 1e6 }

// Doc renders the snapshot as the /metrics JSON sub-document: count, mean,
// p50/p90/p99, and max, all in milliseconds.
func (s HistogramSnapshot) Doc() map[string]any {
	return map[string]any{
		"count":   s.Count,
		"mean_ms": round3(s.MeanMs()),
		"p50_ms":  round3(s.Quantile(0.50)),
		"p90_ms":  round3(s.Quantile(0.90)),
		"p99_ms":  round3(s.Quantile(0.99)),
		"max_ms":  round3(s.MaxMs()),
	}
}

func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTraceIDsUnique(t *testing.T) {
	const n = 2000
	seen := make(map[TraceID]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				id := NewTraceID()
				if len(id) != 16 {
					t.Errorf("trace ID %q is not 16 hex chars", id)
					return
				}
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate trace ID %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom returned %v, want the stored trace", got)
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("untraced context yielded %v", got)
	}
	if got := TraceFrom(nil); got != nil { //nolint:staticcheck // nil-safety is the contract under test
		t.Fatalf("nil context yielded %v", got)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	end := tr.StartSpan("plan")
	time.Sleep(time.Millisecond)
	end()
	tr.AddSpan("exec", 10*time.Millisecond, 30*time.Millisecond)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "plan" || spans[0].Duration() < time.Millisecond {
		t.Errorf("plan span wrong: %+v", spans[0])
	}
	if spans[1].Duration() != 20*time.Millisecond {
		t.Errorf("exec span duration %v, want 20ms", spans[1].Duration())
	}
	doc := tr.SpanDoc()
	if doc["exec"] != 20 {
		t.Errorf("SpanDoc exec = %v, want 20 (ms)", doc["exec"])
	}

	// All span operations are no-ops on a nil trace.
	var nilTrace *Trace
	nilTrace.StartSpan("x")()
	nilTrace.AddSpan("y", 0, time.Second)
	if nilTrace.Spans() != nil || nilTrace.SpanDoc() != nil {
		t.Error("nil trace must report no spans")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.StartSpan("s")()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("lost spans under contention: %d, want 800", got)
	}
}

package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(4, 100*time.Millisecond)
	if l.Qualifies(99 * time.Millisecond) {
		t.Error("sub-threshold latency must not qualify")
	}
	if !l.Qualifies(100 * time.Millisecond) {
		t.Error("threshold is inclusive")
	}
	l.SetThreshold(0)
	if l.Qualifies(time.Hour) {
		t.Error("threshold ≤ 0 disables capture")
	}
	l.SetThreshold(time.Millisecond)
	if l.Threshold() != time.Millisecond {
		t.Errorf("threshold = %v", l.Threshold())
	}
}

// TestSlowLogEvictionOrder fills the ring past capacity and pins the
// eviction contract: strictly oldest-first, snapshot newest-first, with
// sequence numbers revealing what was dropped.
func TestSlowLogEvictionOrder(t *testing.T) {
	const capacity = 4
	l := NewSlowLog(capacity, time.Millisecond)
	for i := 0; i < 10; i++ {
		seq := l.Add(SlowRecord{Graph: fmt.Sprintf("g%d", i)})
		if seq != uint64(i) {
			t.Fatalf("record %d assigned seq %d", i, seq)
		}
	}
	if l.Len() != capacity {
		t.Fatalf("ring holds %d, want %d", l.Len(), capacity)
	}
	if l.Total() != 10 {
		t.Fatalf("total %d, want 10", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot has %d records, want %d", len(snap), capacity)
	}
	// Newest first: g9, g8, g7, g6. Everything older was evicted in order.
	for i, rec := range snap {
		wantSeq := uint64(9 - i)
		if rec.Seq != wantSeq || rec.Graph != fmt.Sprintf("g%d", wantSeq) {
			t.Fatalf("snapshot[%d] = seq %d graph %q, want seq %d", i, rec.Seq, rec.Graph, wantSeq)
		}
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	l := NewSlowLog(8, time.Millisecond)
	l.Add(SlowRecord{Graph: "a"})
	l.Add(SlowRecord{Graph: "b"})
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Graph != "b" || snap[1].Graph != "a" {
		t.Fatalf("partial snapshot wrong: %+v", snap)
	}
	// Degenerate capacity clamps to 1.
	tiny := NewSlowLog(0, time.Millisecond)
	tiny.Add(SlowRecord{Graph: "x"})
	tiny.Add(SlowRecord{Graph: "y"})
	if snap := tiny.Snapshot(); len(snap) != 1 || snap[0].Graph != "y" {
		t.Fatalf("capacity-1 ring wrong: %+v", snap)
	}
}

func TestSlowLogConcurrentAdd(t *testing.T) {
	l := NewSlowLog(16, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Add(SlowRecord{})
				l.Snapshot()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 1600 {
		t.Fatalf("total %d, want 1600", l.Total())
	}
	snap := l.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq-1 {
			t.Fatalf("snapshot seqs not contiguous descending: %d after %d", snap[i].Seq, snap[i-1].Seq)
		}
	}
}

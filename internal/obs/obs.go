// Package obs is the observability layer of the CSCE serving stack:
// lock-free log-bucketed latency histograms, per-query trace IDs with
// phase spans propagated through context.Context, and a fixed-size
// slow-query ring buffer. Everything is stdlib-only and allocation-free on
// the hot path — Record on a histogram is a handful of atomic operations,
// cheap enough to wrap every phase of every query.
//
// The layering is deliberate: obs imports nothing from the rest of the
// repo, so the engine (internal/core, internal/exec), the serving layer
// (internal/server), and the commands can all thread traces and record
// latencies without cycles. Composite records (the slow-query log entry
// with its plan summary and per-level execution profile) are assembled by
// the caller and carried here as opaque detail.
package obs

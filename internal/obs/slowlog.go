package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowRecord is one slow-query log entry. The serving layer fills it from
// the finished query: the trace carries the phase spans, Detail carries
// the layer-specific breakdown (plan summary, per-level execution
// profile) as a JSON-marshalable value obs stays agnostic about.
type SlowRecord struct {
	// Seq is a monotone sequence number assigned by Add; gaps in a
	// snapshot reveal how many records were evicted between reads.
	Seq uint64 `json:"seq"`
	// TraceID correlates the record with response headers and log lines.
	TraceID TraceID `json:"trace_id"`
	// Start is when the query entered the handler.
	Start time.Time `json:"start"`
	// Duration is the end-to-end handler latency that tripped the
	// threshold.
	Duration time.Duration `json:"duration_ns"`
	// Graph and Outcome identify what ran and how it ended ("ok",
	// "timeout", "cancelled", ...).
	Graph   string `json:"graph"`
	Outcome string `json:"outcome"`
	// Spans is the trace's phase breakdown at capture time.
	Spans []Span `json:"spans,omitempty"`
	// Exported records whether the finished trace was accepted by the
	// span exporter (false when no exporter is configured or its queue
	// was full), and TraceURL points at the /debug/trace/{id} endpoint
	// holding the full span tree — together they close the
	// "slow query → full trace" loop.
	Exported bool   `json:"exported"`
	TraceURL string `json:"trace_url,omitempty"`
	// Detail is the caller-composed payload: pattern size, plan summary,
	// per-level execution profile.
	Detail any `json:"detail,omitempty"`
}

// SlowLog is a fixed-size ring of the most recent queries slower than a
// configurable threshold. Eviction is strictly oldest-first; the ring
// never allocates after construction beyond the records themselves.
type SlowLog struct {
	thresholdNs atomic.Int64

	mu   sync.Mutex
	ring []SlowRecord
	next uint64 // total records ever added; next % len(ring) is the write slot
}

// NewSlowLog builds a ring holding the last capacity records (minimum 1)
// with the given initial threshold; d ≤ 0 disables capture.
func NewSlowLog(capacity int, d time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowRecord, 0, capacity)}
	l.SetThreshold(d)
	return l
}

// Threshold returns the current capture threshold (≤ 0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.thresholdNs.Load())
}

// SetThreshold replaces the capture threshold atomically; safe to call
// while queries are running.
func (l *SlowLog) SetThreshold(d time.Duration) { l.thresholdNs.Store(int64(d)) }

// Qualifies reports whether a query of duration d should be captured.
func (l *SlowLog) Qualifies(d time.Duration) bool {
	t := l.thresholdNs.Load()
	return t > 0 && d >= time.Duration(t)
}

// Add appends a record, evicting the oldest when full, and returns the
// assigned sequence number.
func (l *SlowLog) Add(rec SlowRecord) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.Seq = l.next
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
	} else {
		l.ring[l.next%uint64(cap(l.ring))] = rec
	}
	l.next++
	return rec.Seq
}

// Snapshot returns the retained records newest-first.
func (l *SlowLog) Snapshot() []SlowRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowRecord, 0, len(l.ring))
	for i := 0; i < len(l.ring); i++ {
		// Walk backwards from the most recently written slot.
		idx := (l.next - 1 - uint64(i)) % uint64(cap(l.ring))
		out = append(out, l.ring[idx])
	}
	return out
}

// Len returns how many records are retained (≤ capacity).
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Total returns how many records were ever added, retained or evicted.
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Package export ships finished query traces to a standards-based
// collector over HTTP: OTLP/JSON (the OpenTelemetry protobuf-JSON mapping,
// POST /v1/traces) or Zipkin v2 JSON (POST /api/v2/spans), both encoded
// with the standard library only.
//
// The exporter is deliberately asymmetric about who waits: the query path
// never does. Enqueue is a single non-blocking channel send — when the
// bounded queue is full the trace is dropped and counted, never the query
// delayed. A single background loop batches traces (flushing at BatchSize
// or after Linger), POSTs them, and retries transient failures (connection
// errors, 5xx, 429) with exponential backoff and jitter; permanent
// failures (other 4xx) drop the batch immediately. Every outcome is
// self-telemetered: queued/sent/dropped/retries counters plus a POST
// latency histogram, surfaced by the daemon under csce_trace_export_* so
// the export pipeline is as observable as the queries it describes.
//
// Shutdown drains: the daemon stops the HTTP listener first (in-flight
// handlers finish and enqueue their traces), then calls Shutdown, which
// flushes everything queued before returning — no tail spans are lost on
// SIGTERM. A deadline context bounds the drain; on expiry the in-flight
// POST and any backoff sleep are aborted.
package export

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"csce/internal/obs"
)

// Format selects the wire encoding.
type Format int

const (
	// FormatOTLP is OTLP/JSON: the OpenTelemetry OTLP/HTTP protocol with
	// JSON payload, POSTed to a /v1/traces endpoint.
	FormatOTLP Format = iota
	// FormatZipkin is Zipkin v2 JSON: a flat span array POSTed to an
	// /api/v2/spans endpoint.
	FormatZipkin
)

// ParseFormat maps the -trace-export flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "otlp":
		return FormatOTLP, nil
	case "zipkin":
		return FormatZipkin, nil
	default:
		return 0, fmt.Errorf("export: unknown trace export format %q (want otlp or zipkin)", s)
	}
}

// String returns the flag-value form.
func (f Format) String() string {
	switch f {
	case FormatOTLP:
		return "otlp"
	case FormatZipkin:
		return "zipkin"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// Config parameterizes an Exporter. Zero fields take the defaults noted
// on each; only Endpoint is mandatory.
type Config struct {
	// Endpoint is the collector URL to POST batches to, e.g.
	// http://localhost:4318/v1/traces (OTLP) or
	// http://localhost:9411/api/v2/spans (Zipkin).
	Endpoint string
	// Format selects the wire encoding (default OTLP).
	Format Format
	// Service is the service.name resource attribute / Zipkin
	// localEndpoint (default "csced").
	Service string
	// QueueSize bounds the trace queue; a full queue drops (default 4096).
	QueueSize int
	// BatchSize flushes a batch when it reaches this many traces
	// (default 64).
	BatchSize int
	// Linger flushes a non-empty batch this long after its first trace
	// even if under BatchSize (default 200ms).
	Linger time.Duration
	// RequestTimeout bounds each POST attempt (default 5s).
	RequestTimeout time.Duration
	// MaxAttempts caps POST attempts per batch, first try included
	// (default 4).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts (defaults 100ms and 2s); actual sleeps are jittered in
	// [base/2, base).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client overrides the HTTP client (default http.DefaultClient);
	// tests inject one, and RequestTimeout still applies per attempt.
	Client *http.Client
	// Logger receives drop/give-up warnings (default slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Format != FormatZipkin {
		c.Format = FormatOTLP
	}
	if c.Service == "" {
		c.Service = "csced"
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Linger <= 0 {
		c.Linger = 200 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Stats is a point-in-time read of the exporter's self-telemetry
// counters. queued counts accepted traces; sent and dropped count traces
// (not batches) so queued == sent + dropped + in-flight at all times.
type Stats struct {
	Queued  uint64 `json:"queued"`
	Sent    uint64 `json:"sent"`
	Dropped uint64 `json:"dropped"`
	Retries uint64 `json:"retries"`
}

// Exporter is the asynchronous span pipeline: a bounded queue, one
// batching/sending goroutine, and self-telemetry. It implements
// obs.SpanSink, so it plugs directly into Trace.Finish.
type Exporter struct {
	cfg Config

	queue chan obs.FinishedTrace
	stop  chan struct{} // closed by Shutdown; the loop drains then exits
	done  chan struct{} // closed by the loop on exit

	stopOnce sync.Once

	// reqCtx parents every POST and backoff wait; reqCancel aborts them
	// when a Shutdown deadline expires.
	reqCtx    context.Context
	reqCancel context.CancelFunc

	queued  atomic.Uint64
	sent    atomic.Uint64
	dropped atomic.Uint64
	retries atomic.Uint64
	latency obs.Histogram
}

// New starts an exporter (its sender goroutine runs until Shutdown).
func New(cfg Config) (*Exporter, error) {
	cfg = cfg.withDefaults()
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("export: endpoint required")
	}
	reqCtx, reqCancel := context.WithCancel(context.Background())
	e := &Exporter{
		cfg:       cfg,
		queue:     make(chan obs.FinishedTrace, cfg.QueueSize),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		reqCtx:    reqCtx,
		reqCancel: reqCancel,
	}
	go e.loop()
	return e, nil
}

// Enqueue offers a finished trace to the export queue without blocking:
// if the queue is full the trace is dropped and counted. This is the only
// exporter code on the query path.
//
//csce:hotpath called from Trace.Finish on every served request; one
// channel send or a counter bump, never a wait
func (e *Exporter) Enqueue(ft obs.FinishedTrace) bool {
	select {
	case e.queue <- ft:
		e.queued.Add(1)
		return true
	default:
		e.dropped.Add(1)
		return false
	}
}

// TraceFinished implements obs.SpanSink.
func (e *Exporter) TraceFinished(ft obs.FinishedTrace) bool { return e.Enqueue(ft) }

// Stats snapshots the self-telemetry counters.
func (e *Exporter) Stats() Stats {
	return Stats{
		Queued:  e.queued.Load(),
		Sent:    e.sent.Load(),
		Dropped: e.dropped.Load(),
		Retries: e.retries.Load(),
	}
}

// Latency snapshots the POST latency histogram.
func (e *Exporter) Latency() obs.HistogramSnapshot { return e.latency.Snapshot() }

// Format returns the configured wire format.
func (e *Exporter) Format() Format { return e.cfg.Format }

// Endpoint returns the configured collector URL.
func (e *Exporter) Endpoint() string { return e.cfg.Endpoint }

// QueueCap returns the configured queue bound.
func (e *Exporter) QueueCap() int { return cap(e.queue) }

// Shutdown flushes everything queued and stops the sender. It must be
// called after the HTTP listener has drained, so every in-flight handler
// has already enqueued its trace. If ctx expires first, the in-flight
// POST and any backoff sleep are aborted and ctx.Err() is returned;
// either way the sender goroutine has exited when Shutdown returns.
func (e *Exporter) Shutdown(ctx context.Context) error {
	e.stopOnce.Do(func() { close(e.stop) })
	select {
	case <-e.done:
		e.reqCancel()
		return nil
	case <-ctx.Done():
		e.reqCancel() // abort the in-flight attempt; the loop exits promptly
		<-e.done
		return ctx.Err()
	}
}

// loop is the single sender goroutine: it accumulates traces into a
// batch, flushing at BatchSize or Linger, and on stop drains the queue
// before exiting.
func (e *Exporter) loop() {
	defer close(e.done)
	// rng jitters backoff sleeps; owned by this goroutine, so the
	// non-concurrency-safe rand.Rand is fine. Seeded from the global
	// source (Go 1.20+ auto-seeds it).
	rng := rand.New(rand.NewSource(rand.Int63()))
	batch := make([]obs.FinishedTrace, 0, e.cfg.BatchSize)
	linger := time.NewTimer(e.cfg.Linger)
	if !linger.Stop() {
		<-linger.C
	}
	lingerArmed := false
	flush := func() {
		if lingerArmed {
			if !linger.Stop() {
				<-linger.C
			}
			lingerArmed = false
		}
		if len(batch) == 0 {
			return
		}
		e.send(batch, rng)
		batch = batch[:0]
	}
	for {
		select {
		case <-e.stop:
			// Drain whatever made it into the queue before the listener
			// finished, then flush the final batches.
			for {
				select {
				case ft := <-e.queue:
					batch = append(batch, ft)
					if len(batch) >= e.cfg.BatchSize {
						flush()
					}
				default:
					flush()
					return
				}
			}
		case ft := <-e.queue:
			batch = append(batch, ft)
			if len(batch) >= e.cfg.BatchSize {
				flush()
			} else if !lingerArmed {
				linger.Reset(e.cfg.Linger)
				lingerArmed = true
			}
		case <-linger.C:
			lingerArmed = false
			if len(batch) > 0 {
				e.send(batch, rng)
				batch = batch[:0]
			}
		}
	}
}

// send encodes a batch once and POSTs it with bounded retries. Transient
// failures (transport errors, 5xx, 429) back off exponentially with
// jitter; anything else, or attempt exhaustion, drops the batch with a
// warning.
func (e *Exporter) send(batch []obs.FinishedTrace, rng *rand.Rand) {
	var (
		body []byte
		err  error
	)
	switch e.cfg.Format {
	case FormatZipkin:
		body, err = encodeZipkin(batch, e.cfg.Service)
	default:
		body, err = encodeOTLP(batch, e.cfg.Service)
	}
	if err != nil {
		// Encoding is infallible for the types we marshal; belt and
		// braces only.
		e.dropped.Add(uint64(len(batch)))
		e.cfg.Logger.Warn("trace export encode failed", "err", err)
		return
	}
	backoff := e.cfg.BackoffBase
	for attempt := 1; ; attempt++ {
		status, err := e.post(body)
		if err == nil && status >= 200 && status < 300 {
			e.sent.Add(uint64(len(batch)))
			return
		}
		retryable := err != nil || status >= 500 || status == http.StatusTooManyRequests
		if !retryable || attempt >= e.cfg.MaxAttempts {
			e.dropped.Add(uint64(len(batch)))
			e.cfg.Logger.Warn("trace export batch dropped",
				"traces", len(batch), "attempts", attempt, "status", status, "err", err)
			return
		}
		e.retries.Add(1)
		// Jittered exponential backoff: uniform in [backoff/2, backoff),
		// doubling up to BackoffMax. Abortable by Shutdown's deadline.
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-e.reqCtx.Done():
			t.Stop()
			e.dropped.Add(uint64(len(batch)))
			return
		}
		if backoff *= 2; backoff > e.cfg.BackoffMax {
			backoff = e.cfg.BackoffMax
		}
	}
}

// post performs one POST attempt, recording its latency.
func (e *Exporter) post(body []byte) (int, error) {
	ctx, cancel := context.WithTimeout(e.reqCtx, e.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := e.cfg.Client.Do(req)
	e.latency.Record(time.Since(start))
	if err != nil {
		return 0, err
	}
	// Drain so the transport can reuse the connection.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

package export

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"

	"csce/internal/obs"
)

// collector is an in-process fake OTLP/Zipkin endpoint: it records every
// POST body it accepts and can be scripted to fail the first N requests
// or to stall until released.
type collector struct {
	mu       sync.Mutex
	bodies   [][]byte
	requests int
	failures int // respond with failStatus to this many requests first
	failWith int
	stall    chan struct{} // when non-nil, handlers block until it closes
}

func (c *collector) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		stall := c.stall
		c.mu.Unlock()
		if stall != nil {
			<-stall
		}
		body, _ := io.ReadAll(r.Body)
		c.mu.Lock()
		defer c.mu.Unlock()
		c.requests++
		if c.failures > 0 {
			c.failures--
			w.WriteHeader(c.failWith)
			return
		}
		c.bodies = append(c.bodies, body)
		w.WriteHeader(http.StatusOK)
	}
}

func (c *collector) accepted() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.bodies))
	copy(out, c.bodies)
	return out
}

func (c *collector) requestCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests
}

// testTrace builds a finished trace with a root and two children, one of
// them nested, so framing tests can check the parent links on the wire.
func testTrace(t *testing.T) obs.FinishedTrace {
	t.Helper()
	tr := obs.NewTrace()
	ctx, endPlan := obs.StartSpanCtx(obs.WithTrace(context.Background(), tr), "plan")
	_, endExec := obs.StartSpanCtx(ctx, "exec")
	endExec(obs.Int("embeddings", 7))
	endPlan(obs.Str("mode", "sce"))
	ft, _ := tr.Finish("http.match", obs.Str("graph", "g"), obs.Int("epoch", 3))
	return ft
}

func startExporter(t *testing.T, cfg Config) *Exporter {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	return e
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

var (
	hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)
	hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)
)

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("otlp"); err != nil || f != FormatOTLP {
		t.Fatalf("ParseFormat(otlp) = %v, %v", f, err)
	}
	if f, err := ParseFormat("zipkin"); err != nil || f != FormatZipkin {
		t.Fatalf("ParseFormat(zipkin) = %v, %v", f, err)
	}
	if _, err := ParseFormat("jaeger"); err == nil {
		t.Fatal("ParseFormat(jaeger) should fail")
	}
}

func TestNewRequiresEndpoint(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without endpoint should fail")
	}
}

// TestOTLPBatchFraming asserts the proto3-JSON shape of an exported batch:
// one resourceSpans/scopeSpans envelope carrying every trace's spans,
// 32-hex trace IDs, 16-hex span IDs, kind SERVER on the parentless root,
// kind INTERNAL + parentSpanId on children, and nanosecond decimal-string
// timestamps.
func TestOTLPBatchFraming(t *testing.T) {
	var c collector
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	e := startExporter(t, Config{Endpoint: srv.URL, Linger: 10 * time.Millisecond})
	ft1, ft2 := testTrace(t), testTrace(t)
	if !e.Enqueue(ft1) || !e.Enqueue(ft2) {
		t.Fatal("Enqueue rejected with an empty queue")
	}
	waitFor(t, "batch delivery", func() bool { return len(c.accepted()) >= 1 })

	var req struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Kind         int    `json:"kind"`
					StartNano    string `json:"startTimeUnixNano"`
					EndNano      string `json:"endTimeUnixNano"`
					Attributes   []struct {
						Key   string `json:"key"`
						Value struct {
							StringValue *string `json:"stringValue"`
							IntValue    *string `json:"intValue"`
						} `json:"value"`
					} `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	// The linger window batches both traces into one request; if timing
	// split them, every accepted body still has the same envelope shape.
	if err := json.Unmarshal(c.accepted()[0], &req); err != nil {
		t.Fatalf("decode OTLP body: %v", err)
	}
	if len(req.ResourceSpans) != 1 || len(req.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("want exactly one resourceSpans/scopeSpans envelope, got %d/%d",
			len(req.ResourceSpans), len(req.ResourceSpans[0].ScopeSpans))
	}
	res := req.ResourceSpans[0]
	if res.Resource.Attributes[0].Key != "service.name" || res.Resource.Attributes[0].Value.StringValue != "csced" {
		t.Fatalf("resource service.name = %+v", res.Resource.Attributes)
	}
	spans := res.ScopeSpans[0].Spans
	// ft1 has 3 spans (plan, exec, root); a full batch carries 6.
	if len(spans) < 3 {
		t.Fatalf("want >=3 spans, got %d", len(spans))
	}
	wantTID := "0000000000000000" + string(ft1.ID)
	roots, byID := 0, map[string]string{}
	for _, sp := range spans {
		if !hex32.MatchString(sp.TraceID) {
			t.Fatalf("traceId %q is not 32-hex", sp.TraceID)
		}
		if !hex16.MatchString(sp.SpanID) {
			t.Fatalf("spanId %q is not 16-hex", sp.SpanID)
		}
		if sp.StartNano == "" || sp.EndNano == "" {
			t.Fatalf("span %s missing nano timestamps", sp.Name)
		}
		byID[sp.SpanID] = sp.TraceID
		if sp.Name == "http.match" {
			roots++
			if sp.Kind != 2 {
				t.Fatalf("root span kind = %d, want 2 (SERVER)", sp.Kind)
			}
			if sp.ParentSpanID != "" {
				t.Fatalf("root span has parentSpanId %q", sp.ParentSpanID)
			}
		} else if sp.Kind != 1 {
			t.Fatalf("child span %s kind = %d, want 1 (INTERNAL)", sp.Name, sp.Kind)
		}
	}
	if roots == 0 {
		t.Fatal("no root http.match span on the wire")
	}
	foundTID, foundNested := false, false
	for _, sp := range spans {
		if sp.TraceID == wantTID {
			foundTID = true
		}
		if sp.Name == "exec" {
			parentTID, ok := byID[sp.ParentSpanID]
			if !ok {
				t.Fatalf("exec parentSpanId %q not in batch", sp.ParentSpanID)
			}
			if parentTID != sp.TraceID {
				t.Fatalf("exec parent belongs to trace %s, span to %s", parentTID, sp.TraceID)
			}
			foundNested = true
			for _, a := range sp.Attributes {
				if a.Key == "embeddings" {
					if a.Value.IntValue == nil || *a.Value.IntValue != "7" {
						t.Fatalf("embeddings attr = %+v, want intValue \"7\"", a.Value)
					}
				}
			}
		}
	}
	if !foundTID {
		t.Fatalf("trace %s absent from batch", wantTID)
	}
	if !foundNested {
		t.Fatal("nested exec span absent from batch")
	}
}

// TestZipkinFraming asserts the Zipkin v2 shape: a flat span array with
// hex IDs, microsecond timestamps, >=1us durations, the localEndpoint
// service name, SERVER kind on the root, and attributes as string tags.
func TestZipkinFraming(t *testing.T) {
	var c collector
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	e := startExporter(t, Config{
		Endpoint: srv.URL, Format: FormatZipkin, Service: "csce-test",
		Linger: 10 * time.Millisecond,
	})
	ft := testTrace(t)
	e.Enqueue(ft)
	waitFor(t, "batch delivery", func() bool { return len(c.accepted()) >= 1 })

	var spans []struct {
		TraceID       string `json:"traceId"`
		ID            string `json:"id"`
		ParentID      string `json:"parentId"`
		Name          string `json:"name"`
		Kind          string `json:"kind"`
		Timestamp     int64  `json:"timestamp"`
		Duration      int64  `json:"duration"`
		LocalEndpoint struct {
			ServiceName string `json:"serviceName"`
		} `json:"localEndpoint"`
		Tags map[string]string `json:"tags"`
	}
	if err := json.Unmarshal(c.accepted()[0], &spans); err != nil {
		t.Fatalf("decode Zipkin body: %v", err)
	}
	if len(spans) != len(ft.Spans) {
		t.Fatalf("want %d spans, got %d", len(ft.Spans), len(spans))
	}
	var rootID string
	for _, sp := range spans {
		if sp.Name == "http.match" {
			rootID = sp.ID
			if sp.Kind != "SERVER" {
				t.Fatalf("root kind = %q, want SERVER", sp.Kind)
			}
			if sp.Tags["graph"] != "g" || sp.Tags["epoch"] != "3" {
				t.Fatalf("root tags = %v", sp.Tags)
			}
		}
	}
	if rootID == "" {
		t.Fatal("no root span")
	}
	for _, sp := range spans {
		if sp.TraceID != string(ft.ID) {
			t.Fatalf("traceId = %q, want %q", sp.TraceID, ft.ID)
		}
		if !hex16.MatchString(sp.ID) {
			t.Fatalf("id %q is not 16-hex", sp.ID)
		}
		if sp.Timestamp <= 0 || sp.Duration < 1 {
			t.Fatalf("span %s timestamp/duration = %d/%d", sp.Name, sp.Timestamp, sp.Duration)
		}
		if sp.LocalEndpoint.ServiceName != "csce-test" {
			t.Fatalf("localEndpoint = %q", sp.LocalEndpoint.ServiceName)
		}
		if sp.Name == "plan" && sp.ParentID != rootID {
			t.Fatalf("plan parentId = %q, want root %q", sp.ParentID, rootID)
		}
	}
}

// TestRetryBackoff5xx injects two 500s before accepting: the batch must be
// retried (retries counter moves) and eventually counted sent, with
// nothing dropped.
func TestRetryBackoff5xx(t *testing.T) {
	c := collector{failures: 2, failWith: http.StatusInternalServerError}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	e := startExporter(t, Config{
		Endpoint: srv.URL, Linger: 5 * time.Millisecond,
		BackoffBase: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond,
		MaxAttempts: 5,
	})
	e.Enqueue(testTrace(t))
	waitFor(t, "retried delivery", func() bool { return e.Stats().Sent == 1 })
	st := e.Stats()
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", st.Dropped)
	}
	if got := c.requestCount(); got != 3 {
		t.Fatalf("collector saw %d requests, want 3", got)
	}
}

// TestPermanent4xxDrops asserts a non-retryable status drops the batch
// immediately: one request, no retries, the whole batch counted dropped.
func TestPermanent4xxDrops(t *testing.T) {
	c := collector{failures: 100, failWith: http.StatusBadRequest}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	e := startExporter(t, Config{Endpoint: srv.URL, Linger: 5 * time.Millisecond})
	e.Enqueue(testTrace(t))
	e.Enqueue(testTrace(t))
	waitFor(t, "drop accounting", func() bool { return e.Stats().Dropped == 2 })
	st := e.Stats()
	if st.Retries != 0 || st.Sent != 0 {
		t.Fatalf("stats = %+v, want no retries and nothing sent", st)
	}
}

// TestQueueFullDrops stalls the collector so the sender goroutine wedges
// on the in-flight POST, fills the queue, and asserts Enqueue keeps
// returning instantly with drops counted — the "stalled collector never
// blocks a query" contract.
func TestQueueFullDrops(t *testing.T) {
	stall := make(chan struct{})
	c := collector{stall: stall}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()
	defer close(stall)

	e := startExporter(t, Config{
		Endpoint: srv.URL, QueueSize: 4, BatchSize: 1, Linger: time.Millisecond,
		MaxAttempts: 1, RequestTimeout: 30 * time.Second,
	})
	// Overfill: the loop takes at most a few traces out of the queue before
	// wedging on the stalled POST, so 64 enqueues must hit the full queue.
	accepted, rejected := 0, 0
	for i := 0; i < 64; i++ {
		start := time.Now()
		if e.Enqueue(testTrace(t)) {
			accepted++
		} else {
			rejected++
		}
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("Enqueue blocked for %v against a stalled collector", elapsed)
		}
	}
	if rejected == 0 {
		t.Fatal("no enqueues rejected with a stalled collector and a 4-deep queue")
	}
	st := e.Stats()
	if st.Dropped != uint64(rejected) {
		t.Fatalf("dropped = %d, want %d (one per rejected enqueue)", st.Dropped, rejected)
	}
	if st.Queued != uint64(accepted) {
		t.Fatalf("queued = %d, want %d", st.Queued, accepted)
	}
}

// TestShutdownDrains enqueues a tail of traces and immediately shuts
// down: every queued trace must reach the collector before Shutdown
// returns — the no-lost-tail-spans-on-SIGTERM contract.
func TestShutdownDrains(t *testing.T) {
	var c collector
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	// A long linger proves Shutdown flushes without waiting for the timer.
	e, err := New(Config{Endpoint: srv.URL, Linger: time.Hour, BatchSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if !e.Enqueue(testTrace(t)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := e.Stats(); st.Sent != n || st.Dropped != 0 {
		t.Fatalf("stats after drain = %+v, want sent=%d dropped=0", st, n)
	}
	total := 0
	for _, body := range c.accepted() {
		var req struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []struct {
						Name string `json:"name"`
					} `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("decode drained body: %v", err)
		}
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				for _, sp := range ss.Spans {
					if sp.Name == "http.match" {
						total++
					}
				}
			}
		}
	}
	if total != n {
		t.Fatalf("collector received %d traces, want %d", total, n)
	}
}

// TestShutdownAbortsOnDeadline wedges the collector and asserts an
// already-expired Shutdown context aborts the in-flight POST instead of
// hanging, returning the context error.
func TestShutdownAbortsOnDeadline(t *testing.T) {
	stall := make(chan struct{})
	c := collector{stall: stall}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()
	defer close(stall)

	e, err := New(Config{
		Endpoint: srv.URL, BatchSize: 1, Linger: time.Millisecond,
		RequestTimeout: 30 * time.Second, MaxAttempts: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.Enqueue(testTrace(t))
	waitFor(t, "POST in flight", func() bool { return c.requestCount() >= 0 && len(c.accepted()) == 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = e.Shutdown(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v after its deadline", elapsed)
	}
}

// TestShutdownIdempotent calls Shutdown twice; the second must not panic
// or hang.
func TestShutdownIdempotent(t *testing.T) {
	var c collector
	srv := httptest.NewServer(c.handler())
	defer srv.Close()
	e, err := New(Config{Endpoint: srv.URL})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

package export

import (
	"os"
	"testing"

	"csce/internal/obs"
)

// benchFinishedTrace builds a representative finished trace: a root plus
// the four spans every served query records, each with an attribute.
func benchFinishedTrace() obs.FinishedTrace {
	tr := obs.NewTrace()
	for _, name := range []string{"admission", "plan", "exec", "stream"} {
		end := tr.StartSpan(name)
		end(obs.Int("n", 1))
	}
	ft, _ := tr.Finish("http.match", obs.Str("graph", "bench"))
	return ft
}

// benchExporter builds an exporter whose sender loop is not running, so
// the measurements below see only the query-path side of the queue.
func benchExporter(queueSize int) *Exporter {
	return &Exporter{queue: make(chan obs.FinishedTrace, queueSize)}
}

// BenchmarkEnqueue measures the accept path: one buffered-channel send plus
// a counter bump. The queue is drained between fills outside the timer so
// every timed iteration takes the send, not the drop.
func BenchmarkEnqueue(b *testing.B) {
	e := benchExporter(4096)
	ft := benchFinishedTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !e.Enqueue(ft) {
			b.StopTimer()
			for len(e.queue) > 0 {
				<-e.queue
			}
			b.StartTimer()
		}
	}
}

// BenchmarkEnqueueFull measures the overload path: the queue stays full, so
// every call is a select-default plus a dropped-counter bump. This is what
// a stalled collector costs each query.
func BenchmarkEnqueueFull(b *testing.B) {
	e := benchExporter(1)
	ft := benchFinishedTrace()
	e.Enqueue(ft) // fill the queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Enqueue(ft)
	}
}

// BenchmarkSpanRecordEnqueue is the full per-request pipeline: record four
// spans, finish the trace, enqueue it. Finish snapshots the span slice, so
// this one allocates by design — it bounds the whole observability tax per
// query, not the hot single operation.
func BenchmarkSpanRecordEnqueue(b *testing.B) {
	e := benchExporter(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace()
		tr.Sink = e
		end := tr.StartSpan("exec")
		end(obs.Int("embeddings", 12))
		tr.Finish("http.match", obs.Str("graph", "bench"))
		if len(e.queue) == cap(e.queue) {
			b.StopTimer()
			for len(e.queue) > 0 {
				<-e.queue
			}
			b.StartTimer()
		}
	}
}

// TestEnqueueBudget gates the query-path cost of Enqueue, following the
// histogram Record budget pattern: the assertion only runs under
// OBS_BENCH=1 (`make bench-obs` sets it); otherwise the measurement is
// logged and the test passes. Budget: <150ns/op for the accept path — a
// buffered channel send is the floor here, so this catches any accidental
// lock, allocation, or encode sneaking onto the query path, while leaving
// headroom over the ~50ns raw send cost for scheduler noise.
func TestEnqueueBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	e := benchExporter(4096)
	ft := benchFinishedTrace()
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !e.Enqueue(ft) {
				b.StopTimer()
				for len(e.queue) > 0 {
					<-e.queue
				}
				b.StartTimer()
			}
		}
	})
	perOp := res.NsPerOp()
	t.Logf("export Enqueue: %d ns/op (budget 150)", perOp)
	if os.Getenv("OBS_BENCH") == "" {
		return
	}
	if perOp >= 150 {
		t.Fatalf("export Enqueue costs %d ns/op, budget is <150", perOp)
	}
}

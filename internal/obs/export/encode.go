package export

import (
	"encoding/json"
	"strconv"

	"csce/internal/obs"
)

// This file renders finished traces into the two supported wire formats
// using only encoding/json — no generated protobuf code. Both formats
// carry the same facts: 32-hex trace IDs (our 16-hex IDs left-padded with
// zeros, which OTLP and Zipkin both accept), 16-hex span IDs, parent
// links, absolute wall-clock windows derived from the trace start plus
// each span's offsets, and the span attributes as typed key/values (OTLP)
// or string tags (Zipkin).

// --- OTLP/JSON (OTLP/HTTP with JSON payload, /v1/traces) ---
//
// The shapes below follow the proto3 JSON mapping of
// opentelemetry.proto.collector.trace.v1.ExportTraceServiceRequest:
// lowerCamelCase field names, 64-bit integers as decimal strings, byte
// IDs as hex strings.

type otlpExportRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string         `json:"traceId"`
	SpanID       string         `json:"spanId"`
	ParentSpanID string         `json:"parentSpanId,omitempty"`
	Name         string         `json:"name"`
	Kind         int            `json:"kind"`
	StartNano    string         `json:"startTimeUnixNano"`
	EndNano      string         `json:"endTimeUnixNano"`
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

// otlpAnyValue is the oneof: exactly one pointer is set.
type otlpAnyValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	IntValue    *string `json:"intValue,omitempty"` // int64 as decimal string per proto3 JSON
}

const (
	otlpKindInternal = 1 // SPAN_KIND_INTERNAL
	otlpKindServer   = 2 // SPAN_KIND_SERVER
)

// otlpTraceID left-pads the 16-hex trace ID to OTLP's 32 hex chars.
func otlpTraceID(id obs.TraceID) string {
	return "0000000000000000" + string(id)
}

func otlpAttr(a obs.Attr) otlpKeyValue {
	if a.IsNum {
		v := strconv.FormatInt(a.Num, 10)
		return otlpKeyValue{Key: a.Key, Value: otlpAnyValue{IntValue: &v}}
	}
	s := a.Str
	return otlpKeyValue{Key: a.Key, Value: otlpAnyValue{StringValue: &s}}
}

// encodeOTLP renders a batch as one ExportTraceServiceRequest: a single
// resource (this daemon) and scope, every trace's spans concatenated.
func encodeOTLP(batch []obs.FinishedTrace, service string) ([]byte, error) {
	var spans []otlpSpan
	for _, ft := range batch {
		tid := otlpTraceID(ft.ID)
		for _, sp := range ft.Spans {
			o := otlpSpan{
				TraceID:   tid,
				SpanID:    sp.ID.Hex(),
				Name:      sp.Name,
				Kind:      otlpKindInternal,
				StartNano: strconv.FormatInt(ft.Begin.Add(sp.Start).UnixNano(), 10),
				EndNano:   strconv.FormatInt(ft.Begin.Add(sp.End).UnixNano(), 10),
			}
			if sp.ID == ft.Root {
				o.Kind = otlpKindServer // the root is the served request
			} else if sp.Parent != 0 {
				o.ParentSpanID = sp.Parent.Hex()
			}
			if len(sp.Attrs) > 0 {
				o.Attributes = make([]otlpKeyValue, 0, len(sp.Attrs))
				for _, a := range sp.Attrs {
					o.Attributes = append(o.Attributes, otlpAttr(a))
				}
			}
			spans = append(spans, o)
		}
	}
	svc := service
	req := otlpExportRequest{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKeyValue{
			{Key: "service.name", Value: otlpAnyValue{StringValue: &svc}},
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "csce/internal/obs"},
			Spans: spans,
		}},
	}}}
	return json.Marshal(req)
}

// --- Zipkin v2 JSON (/api/v2/spans) ---
//
// Zipkin takes a flat span array; timestamps and durations are in
// microseconds, attributes become string tags.

type zipkinSpan struct {
	TraceID       string            `json:"traceId"`
	ID            string            `json:"id"`
	ParentID      string            `json:"parentId,omitempty"`
	Name          string            `json:"name"`
	Kind          string            `json:"kind,omitempty"`
	Timestamp     int64             `json:"timestamp"`
	Duration      int64             `json:"duration"`
	LocalEndpoint zipkinEndpoint    `json:"localEndpoint"`
	Tags          map[string]string `json:"tags,omitempty"`
}

type zipkinEndpoint struct {
	ServiceName string `json:"serviceName"`
}

// encodeZipkin renders a batch as one flat Zipkin v2 span array.
func encodeZipkin(batch []obs.FinishedTrace, service string) ([]byte, error) {
	var spans []zipkinSpan
	ep := zipkinEndpoint{ServiceName: service}
	for _, ft := range batch {
		tid := string(ft.ID)
		for _, sp := range ft.Spans {
			dur := sp.Duration().Microseconds()
			if dur < 1 {
				dur = 1 // Zipkin rejects zero durations
			}
			z := zipkinSpan{
				TraceID:       tid,
				ID:            sp.ID.Hex(),
				Name:          sp.Name,
				Timestamp:     ft.Begin.Add(sp.Start).UnixMicro(),
				Duration:      dur,
				LocalEndpoint: ep,
			}
			if sp.ID == ft.Root {
				z.Kind = "SERVER"
			} else if sp.Parent != 0 {
				z.ParentID = sp.Parent.Hex()
			}
			if len(sp.Attrs) > 0 {
				z.Tags = make(map[string]string, len(sp.Attrs))
				for _, a := range sp.Attrs {
					if a.IsNum {
						z.Tags[a.Key] = strconv.FormatInt(a.Num, 10)
					} else {
						z.Tags[a.Key] = a.Str
					}
				}
			}
			spans = append(spans, z)
		}
	}
	return json.Marshal(spans)
}

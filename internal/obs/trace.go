package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one query end to end: generated at admission, carried
// through the engine via context, echoed in the X-Trace-Id response header
// and the NDJSON summary line, and stamped on every structured log line —
// one grep correlates all of them.
type TraceID string

// traceCounter salts IDs so they stay unique even if the random source
// fails (it never should; the counter also makes IDs cheap to distinguish
// in tests).
var traceCounter atomic.Uint64

// NewTraceID returns a 16-hex-char process-unique ID: 6 random bytes plus
// a 2-byte counter, so IDs are unguessable across processes and strictly
// distinct within one.
func NewTraceID() TraceID {
	var b [8]byte
	_, _ = rand.Read(b[:6])
	binary.BigEndian.PutUint16(b[6:], uint16(traceCounter.Add(1)))
	return TraceID(hex.EncodeToString(b[:]))
}

// Span is one timed phase of a query, as an offset window from the trace
// start — admission wait, planning, execution, streaming.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Trace collects the spans of one query under its ID. A Trace is carried
// in the query's context; all methods are nil-safe so uninstrumented code
// paths (library use, tests) pay nothing.
type Trace struct {
	ID    TraceID
	Begin time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace now under a fresh ID.
func NewTrace() *Trace { return &Trace{ID: NewTraceID(), Begin: time.Now()} }

// StartSpan opens a named span and returns the func that closes it.
// Nil-safe: on a nil trace the returned func is a no-op.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Since(t.Begin)
	return func() {
		end := time.Since(t.Begin)
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start, End: end})
		t.mu.Unlock()
	}
}

// AddSpan records an already-measured phase (for callers that time phases
// themselves). Nil-safe.
func (t *Trace) AddSpan(name string, start, end time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, End: end})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
// Nil-safe: a nil trace has none.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SpanDoc renders the spans as a JSON-ready map of name → duration in
// milliseconds (later spans with the same name overwrite earlier ones).
func (t *Trace) SpanDoc() map[string]float64 {
	spans := t.Spans()
	if spans == nil {
		return nil
	}
	doc := make(map[string]float64, len(spans))
	for _, s := range spans {
		doc[s.Name] = round3(float64(s.Duration()) / 1e6)
	}
	return doc
}

// traceKey is the context key for the query's Trace.
type traceKey struct{}

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the context's trace, or nil when the query is not
// traced. Combined with the nil-safe Trace methods, callers never need to
// branch.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one query end to end: generated at admission, carried
// through the engine via context, echoed in the X-Trace-Id response header
// and the NDJSON summary line, and stamped on every structured log line —
// one grep correlates all of them.
type TraceID string

// traceCounter salts IDs so they stay unique even if the random source
// fails (it never should; the counter also makes IDs cheap to distinguish
// in tests).
var traceCounter atomic.Uint64

// NewTraceID returns a 16-hex-char process-unique ID: 6 random bytes plus
// a 2-byte counter, so IDs are unguessable across processes and strictly
// distinct within one.
func NewTraceID() TraceID {
	var b [8]byte
	_, _ = rand.Read(b[:6])
	binary.BigEndian.PutUint16(b[6:], uint16(traceCounter.Add(1)))
	return TraceID(hex.EncodeToString(b[:]))
}

// SpanID identifies one span within its trace. IDs are unique within a
// trace and never zero; a zero Parent marks a child of the trace's root
// span (the root itself has Parent zero too — it is the only span whose ID
// equals Trace.Root()).
type SpanID uint64

// MarshalText renders the ID as 16 lowercase hex characters (the wire form
// Zipkin and OTLP expect, and what /debug/trace and the slowlog emit).
func (s SpanID) MarshalText() ([]byte, error) {
	return []byte(s.Hex()), nil
}

// UnmarshalText parses the 16-hex-char form back.
func (s *SpanID) UnmarshalText(b []byte) error {
	v, err := hex.DecodeString(string(b))
	if err != nil || len(v) != 8 {
		return fmt.Errorf("obs: bad span id %q", b)
	}
	*s = SpanID(binary.BigEndian.Uint64(v))
	return nil
}

// Hex returns the 16-hex-char wire form.
func (s SpanID) Hex() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(s))
	return hex.EncodeToString(b[:])
}

// Attr is one structured span attribute: a string or an int64 under a key.
// Attributes ride on finished spans into the exporter, the completed-trace
// ring, and the slow-query log, so "which shard", "which epoch", and "how
// many candidates" survive past the process.
type Attr struct {
	Key   string `json:"key"`
	Str   string `json:"str,omitempty"`
	Num   int64  `json:"num,omitempty"`
	IsNum bool   `json:"is_num,omitempty"`
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Num: val, IsNum: true} }

// Value returns the attribute's payload as a string or an int64.
func (a Attr) Value() any {
	if a.IsNum {
		return a.Num
	}
	return a.Str
}

// Span is one timed phase of a query, as an offset window from the trace
// start — admission wait, planning, execution, streaming. ID/Parent link
// the spans of one trace into a tree; Attrs carry the phase's structured
// facts (shard id, epoch, candidate counts, WAL seqs).
type Span struct {
	Name   string        `json:"name"`
	ID     SpanID        `json:"span_id"`
	Parent SpanID        `json:"parent_id,omitempty"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// FinishedTrace is the immutable result of Trace.Finish: every recorded
// span (the root, named at finish time, last) plus the identifiers needed
// to rebuild the tree. It is what flows into SpanSinks — the exporter
// queue and the completed-trace ring.
type FinishedTrace struct {
	ID    TraceID   `json:"trace_id"`
	Begin time.Time `json:"begin"`
	Root  SpanID    `json:"root"`
	Spans []Span    `json:"spans"`
}

// SpanSink consumes finished traces. TraceFinished must not block — it is
// called on the request path — and reports whether the trace was accepted
// (a drop-on-full exporter queue returns false).
type SpanSink interface {
	TraceFinished(ft FinishedTrace) bool
}

// Trace collects the spans of one query under its ID. A Trace is carried
// in the query's context; all methods are nil-safe so uninstrumented code
// paths (library use, tests) pay nothing.
type Trace struct {
	ID    TraceID
	Begin time.Time
	// Sink, when set, receives the FinishedTrace from Finish. Set it
	// right after NewTrace, before any span can end.
	Sink SpanSink

	idBase  uint64 // random per-trace basis for span IDs
	spanCtr atomic.Uint64
	root    SpanID

	mu    sync.Mutex
	spans []Span
	done  bool
}

// NewTrace starts a trace now under a fresh ID and allocates its root
// span ID (the root span itself is materialized by Finish).
func NewTrace() *Trace {
	id := NewTraceID()
	var raw [8]byte
	_, _ = hex.Decode(raw[:], []byte(id))
	t := &Trace{ID: id, Begin: time.Now(), idBase: binary.BigEndian.Uint64(raw[:]) | 1}
	t.root = t.newSpanID()
	return t
}

// newSpanID mints the next span ID: the random trace basis plus a strictly
// increasing counter, so IDs are unique within the trace (injective in the
// counter) and unguessable across traces. Never zero.
func (t *Trace) newSpanID() SpanID {
	id := SpanID(t.idBase + t.spanCtr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Root returns the trace's root span ID. Nil-safe.
func (t *Trace) Root() SpanID {
	if t == nil {
		return 0
	}
	return t.root
}

// endSpan records one completed span.
func (t *Trace) endSpan(name string, id, parent SpanID, start time.Duration, attrs []Attr) {
	end := time.Since(t.Begin)
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, ID: id, Parent: parent, Start: start, End: end, Attrs: attrs})
	t.mu.Unlock()
}

// StartSpan opens a named span parented at the trace's root and returns
// the func that closes it (optionally attaching attributes). Nil-safe: on
// a nil trace the returned func is a no-op. For spans that must nest under
// the caller's current span, use StartSpanCtx instead.
func (t *Trace) StartSpan(name string) func(...Attr) {
	if t == nil {
		return func(...Attr) {}
	}
	id := t.newSpanID()
	start := time.Since(t.Begin)
	return func(attrs ...Attr) { t.endSpan(name, id, t.root, start, attrs) }
}

// AddSpan records an already-measured phase (for callers that time phases
// themselves), parented at the root. Nil-safe.
func (t *Trace) AddSpan(name string, start, end time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	id := t.newSpanID()
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, ID: id, Parent: t.root, Start: start, End: end, Attrs: attrs})
	t.mu.Unlock()
}

// Finish closes the trace: the root span is materialized under the given
// name covering [0, now] with the given attributes, the span set is
// snapshotted, and the FinishedTrace is handed to the Sink (when set).
// Returns the finished trace and whether the sink accepted it. Nil-safe
// and idempotent: a nil or already-finished trace returns the zero value
// and false.
func (t *Trace) Finish(name string, attrs ...Attr) (FinishedTrace, bool) {
	if t == nil {
		return FinishedTrace{}, false
	}
	end := time.Since(t.Begin)
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return FinishedTrace{}, false
	}
	t.done = true
	t.spans = append(t.spans, Span{Name: name, ID: t.root, Start: 0, End: end, Attrs: attrs})
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	ft := FinishedTrace{ID: t.ID, Begin: t.Begin, Root: t.root, Spans: spans}
	accepted := false
	if t.Sink != nil {
		accepted = t.Sink.TraceFinished(ft)
	}
	return ft, accepted
}

// Spans returns a copy of the recorded spans in completion order.
// Nil-safe: a nil trace has none.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SpanDoc renders the spans as a JSON-ready map of name → duration in
// milliseconds (later spans with the same name overwrite earlier ones).
func (t *Trace) SpanDoc() map[string]float64 {
	spans := t.Spans()
	if spans == nil {
		return nil
	}
	doc := make(map[string]float64, len(spans))
	for _, s := range spans {
		doc[s.Name] = round3(float64(s.Duration()) / 1e6)
	}
	return doc
}

// traceKey is the context key for the query's Trace; spanKey carries the
// current span ID so StartSpanCtx can nest children correctly.
type (
	traceKey struct{}
	spanKey  struct{}
)

// WithTrace returns a context carrying t; the current span is the root.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the context's trace, or nil when the query is not
// traced. Combined with the nil-safe Trace methods, callers never need to
// branch.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpanCtx opens a named span as a child of the context's current span
// (the root when no span is open) and returns a derived context under
// which further spans nest below it, plus the closing func. Nil-safe: an
// untraced context comes back unchanged with a no-op closer.
func StartSpanCtx(ctx context.Context, name string) (context.Context, func(...Attr)) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, func(...Attr) {}
	}
	parent := t.root
	if sid, ok := ctx.Value(spanKey{}).(SpanID); ok {
		parent = sid
	}
	id := t.newSpanID()
	start := time.Since(t.Begin)
	return context.WithValue(ctx, spanKey{}, id), func(attrs ...Attr) {
		t.endSpan(name, id, parent, start, attrs)
	}
}

package obs

import "sync"

// TraceRing retains the most recent finished traces so /debug/trace/{id}
// can serve the full span tree of a slowlog entry even when no collector
// is configured. It is a fixed-size overwrite ring: eviction is strictly
// oldest-first, and lookup is a linear scan (the ring is small — hundreds
// of entries — and lookups are operator-driven, not on the query path).
type TraceRing struct {
	mu   sync.Mutex
	ring []FinishedTrace
	next uint64 // total traces ever added; next % cap is the write slot
}

// NewTraceRing builds a ring holding the last capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{ring: make([]FinishedTrace, 0, capacity)}
}

// Add retains a finished trace, evicting the oldest when full. Nil-safe:
// a nil ring (retention disabled) retains nothing.
func (r *TraceRing) Add(ft FinishedTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ft)
	} else {
		r.ring[r.next%uint64(cap(r.ring))] = ft
	}
	r.next++
}

// Get returns the retained trace with the given ID, if still present.
// Nil-safe: a nil ring misses.
func (r *TraceRing) Get(id TraceID) (FinishedTrace, bool) {
	if r == nil {
		return FinishedTrace{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Scan newest-first so a (theoretical) ID collision resolves to the
	// most recent trace.
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next - 1 - uint64(i)) % uint64(cap(r.ring))
		if r.ring[idx].ID == id {
			return r.ring[idx], true
		}
	}
	return FinishedTrace{}, false
}

// Len returns how many traces are retained (≤ capacity). Nil-safe.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Total returns how many traces were ever added, retained or evicted.
// Nil-safe.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

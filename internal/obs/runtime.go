package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// RuntimeStats is one sample of the Go runtime's health signals, taken via
// runtime/metrics: how many goroutines are live (a leak shows as monotone
// growth), how much heap is held by objects, and how the GC is behaving.
// Pause quantiles come from the runtime's own /gc/pauses histogram, so
// they cover the whole process lifetime, not just the last interval.
type RuntimeStats struct {
	Goroutines int64     `json:"goroutines"`
	HeapBytes  int64     `json:"heap_bytes"`
	GCCycles   int64     `json:"gc_cycles"`
	GCPauseP50 float64   `json:"gc_pause_p50_ms"`
	GCPauseMax float64   `json:"gc_pause_max_ms"`
	SampledAt  time.Time `json:"sampled_at"`
}

// runtimeSamples is the fixed query set handed to metrics.Read each poll.
const (
	metricGoroutines = "/sched/goroutines:goroutines"
	metricHeapBytes  = "/memory/classes/heap/objects:bytes"
	metricGCCycles   = "/gc/cycles/total:gc-cycles"
	metricGCPauses   = "/gc/pauses:seconds"
)

// RuntimeCollector polls runtime/metrics on a fixed interval and exposes
// the latest sample lock-free. One collector runs per daemon; the sample
// feeds the /metrics gauge surface (JSON and Prometheus) so operators see
// goroutine leaks, heap growth, and GC stalls without attaching a
// profiler.
type RuntimeCollector struct {
	interval time.Duration
	latest   atomic.Pointer[RuntimeStats]

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRuntimeCollector starts a collector polling every interval (minimum
// one second, to bound the sampling cost). An initial sample is taken
// synchronously so Latest never returns a zero-value sample.
func NewRuntimeCollector(interval time.Duration) *RuntimeCollector {
	if interval < time.Second {
		interval = time.Second
	}
	c := &RuntimeCollector{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.sample()
	go c.loop()
	return c
}

// Latest returns the most recent sample. Nil-safe: a nil collector (stats
// disabled) returns the zero sample and false.
func (c *RuntimeCollector) Latest() (RuntimeStats, bool) {
	if c == nil {
		return RuntimeStats{}, false
	}
	s := c.latest.Load()
	if s == nil {
		return RuntimeStats{}, false
	}
	return *s, true
}

// Close stops the polling goroutine and waits for it to exit. Idempotent
// and nil-safe.
func (c *RuntimeCollector) Close() {
	if c == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

func (c *RuntimeCollector) loop() {
	defer close(c.done)
	tick := time.NewTicker(c.interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.sample()
		}
	}
}

// sample reads the runtime metrics and publishes a fresh snapshot.
func (c *RuntimeCollector) sample() {
	samples := []metrics.Sample{
		{Name: metricGoroutines},
		{Name: metricHeapBytes},
		{Name: metricGCCycles},
		{Name: metricGCPauses},
	}
	metrics.Read(samples)
	s := &RuntimeStats{SampledAt: time.Now()}
	for _, m := range samples {
		switch m.Name {
		case metricGoroutines:
			s.Goroutines = uint64AsInt64(m.Value)
		case metricHeapBytes:
			s.HeapBytes = uint64AsInt64(m.Value)
		case metricGCCycles:
			s.GCCycles = uint64AsInt64(m.Value)
		case metricGCPauses:
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				if h := m.Value.Float64Histogram(); h != nil {
					s.GCPauseP50 = round3(histQuantile(h, 0.5) * 1e3)
					s.GCPauseMax = round3(histMax(h) * 1e3)
				}
			}
		}
	}
	c.latest.Store(s)
}

// uint64AsInt64 extracts a Uint64 sample, clamping to int64 (the JSON
// surface) and tolerating KindBad from older/newer runtimes.
func uint64AsInt64(v metrics.Value) int64 {
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	u := v.Uint64()
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// histQuantile estimates the q-th quantile of a runtime Float64Histogram
// by locating the bucket holding the target rank and taking its midpoint
// (infinite edge buckets fall back to their finite boundary).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank && c > 0 {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) {
				return hi
			}
			if math.IsInf(hi, 1) {
				return lo
			}
			return (lo + hi) / 2
		}
	}
	return 0
}

// histMax returns the upper bound of the highest non-empty bucket (the
// runtime histogram does not retain the exact max).
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] == 0 {
			continue
		}
		hi := h.Buckets[i+1]
		if math.IsInf(hi, 1) {
			return h.Buckets[i]
		}
		return hi
	}
	return 0
}

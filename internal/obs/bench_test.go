package obs

import (
	"os"
	"testing"
	"time"
)

// BenchmarkHistogramRecord measures the hot-path cost of one observation —
// the number the serving layer pays four times per query (admission, plan,
// exec, stream) plus once per endpoint hit. The design budget is <50ns/op
// single-threaded; `make bench-obs` runs this together with the budget
// assertion below.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}

// BenchmarkHistogramRecordParallel shows the contended cost: all
// goroutines hammer the same bucket array, the realistic worst case for a
// hot endpoint.
func BenchmarkHistogramRecordParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 3 * time.Millisecond
		for pb.Next() {
			h.Record(d)
		}
	})
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Quantile(0.99)
	}
}

func BenchmarkTraceSpan(b *testing.B) {
	tr := NewTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartSpan("bench")()
		if i%1024 == 0 {
			tr.mu.Lock()
			tr.spans = tr.spans[:0] // keep the slice from growing unboundedly
			tr.mu.Unlock()
		}
	}
}

// TestHistogramRecordBudget asserts the <50ns/op hot-path budget. Wall
// clock measurements are machine- and load-dependent, so the assertion
// only runs when OBS_BENCH=1 (the `make bench-obs` target sets it); in a
// plain `go test` run it reports the measurement and moves on.
func TestHistogramRecordBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	var h Histogram
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Record(time.Duration(i) * time.Microsecond)
		}
	})
	perOp := res.NsPerOp()
	t.Logf("histogram Record: %d ns/op (budget 50)", perOp)
	if os.Getenv("OBS_BENCH") == "" {
		return
	}
	if perOp >= 50 {
		t.Fatalf("histogram Record costs %d ns/op, budget is <50", perOp)
	}
}

package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},      // 1µs → Len64(1) = 1
		{3 * time.Microsecond, 2},  // [2,4)µs
		{1 * time.Millisecond, 10}, // 1000µs → Len64 = 10
		{1 * time.Second, 20},      // 1e6µs → Len64 = 20
		{10 * time.Minute, 30},     // 6e8µs → Len64 = 30
		{24 * 365 * time.Hour, 39}, // clamps to the top bucket
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogramQuantilesDeterministic(t *testing.T) {
	var h Histogram
	// 90 fast (≈1ms) and 10 slow (≈1s) observations: p50 must sit in the
	// fast mode, p99 in the slow one, and Max must be exact.
	for i := 0; i < 90; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Second)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
	if p50 < 0.5 || p50 > 2.1 {
		t.Errorf("p50 = %.3fms, want ≈1ms (within its 2× bucket)", p50)
	}
	if p99 < 500 || p99 > 1100 {
		t.Errorf("p99 = %.3fms, want ≈1000ms (within its 2× bucket)", p99)
	}
	if got := s.MaxMs(); got != 1000 {
		t.Errorf("max = %.3fms, want exactly 1000 (max is not bucketed)", got)
	}
	if mean := s.MeanMs(); mean < 100.8 || mean > 101.0 {
		t.Errorf("mean = %.4fms, want 100.9 exactly from the sums", mean)
	}
	// Empty histogram: everything reads zero.
	var empty Histogram
	es := empty.Snapshot()
	if es.Count != 0 || es.Quantile(0.99) != 0 || es.MeanMs() != 0 || es.MaxMs() != 0 {
		t.Errorf("empty histogram not all-zero: %+v", es)
	}
}

// TestHistogramConcurrentConservation hammers one histogram from many
// goroutines (run under -race in CI) and asserts the two invariants that
// make the lock-free design trustworthy: no observation is ever lost or
// double-counted (bucket counts sum to exactly the number of Records), and
// quantile estimates are monotone with the exact max as upper bound.
func TestHistogramConcurrentConservation(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5000
	)
	var h Histogram
	var wg sync.WaitGroup
	maxDur := int64(0)
	var maxMu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			localMax := int64(0)
			for i := 0; i < perG; i++ {
				// Spread observations across ~9 decades, 0ns to ~16s.
				d := time.Duration(rng.Int63n(1 << uint(10+rng.Intn(25))))
				if int64(d) > localMax {
					localMax = int64(d)
				}
				h.Record(d)
			}
			maxMu.Lock()
			if localMax > maxDur {
				maxDur = localMax
			}
			maxMu.Unlock()
		}(g)
	}
	wg.Wait()

	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("bucket conservation violated: counted %d, recorded %d", s.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, c := range s.Buckets {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("Count (%d) disagrees with bucket sum (%d)", s.Count, bucketSum)
	}
	if s.MaxNs != uint64(maxDur) {
		t.Fatalf("max lost under contention: %d, want %d", s.MaxNs, maxDur)
	}
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v gives %.6f < previous %.6f", q, v, prev)
		}
		if v > s.MaxMs() {
			t.Fatalf("quantile q=%v (%.6fms) exceeds max (%.6fms)", q, v, s.MaxMs())
		}
		prev = v
	}
}

func TestHistogramDocSchema(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Millisecond)
	doc := h.Snapshot().Doc()
	for _, key := range []string{"count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("histogram doc missing %q: %v", key, doc)
		}
	}
	if doc["count"].(uint64) != 1 {
		t.Errorf("count = %v, want 1", doc["count"])
	}
}

package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanIDHexRoundTrip(t *testing.T) {
	id := SpanID(0xdeadbeef01020304)
	if got := id.Hex(); got != "deadbeef01020304" {
		t.Fatalf("Hex() = %q", got)
	}
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(b) != `"deadbeef01020304"` {
		t.Fatalf("json = %s", b)
	}
	var back SpanID
	if err := json.Unmarshal(b, &back); err != nil || back != id {
		t.Fatalf("unmarshal = %v, %v", back, err)
	}
	if err := back.UnmarshalText([]byte("xyz")); err == nil {
		t.Fatal("bad hex should fail")
	}
}

func TestSpanIDsUniqueWithinTrace(t *testing.T) {
	tr := NewTrace()
	seen := map[SpanID]bool{tr.Root(): true}
	if tr.Root() == 0 {
		t.Fatal("root span ID is zero")
	}
	for i := 0; i < 1000; i++ {
		id := tr.newSpanID()
		if id == 0 {
			t.Fatal("minted a zero span ID")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %s after %d spans", id.Hex(), i)
		}
		seen[id] = true
	}
}

// TestStartSpanCtxNesting proves the parent chain: spans opened under a
// derived context nest below the span that derived it, and siblings share
// a parent.
func TestStartSpanCtxNesting(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)

	scatterCtx, endScatter := StartSpanCtx(ctx, "scatter")
	_, endLocalA := StartSpanCtx(scatterCtx, "local-a")
	_, endLocalB := StartSpanCtx(scatterCtx, "local-b")
	endLocalA()
	endLocalB()
	endScatter(Int("shards", 2))
	_, endJoin := StartSpanCtx(ctx, "join")
	endJoin()

	ft, _ := tr.Finish("root")
	byName := map[string]Span{}
	for _, sp := range ft.Spans {
		byName[sp.Name] = sp
	}
	scatter := byName["scatter"]
	if scatter.Parent != tr.Root() {
		t.Fatalf("scatter parent = %s, want root %s", scatter.Parent.Hex(), tr.Root().Hex())
	}
	for _, name := range []string{"local-a", "local-b"} {
		if byName[name].Parent != scatter.ID {
			t.Fatalf("%s parent = %s, want scatter %s", name, byName[name].Parent.Hex(), scatter.ID.Hex())
		}
	}
	if byName["join"].Parent != tr.Root() {
		t.Fatalf("join parent = %s, want root (siblings of scatter)", byName["join"].Parent.Hex())
	}
	if root := byName["root"]; root.ID != ft.Root || root.Parent != 0 {
		t.Fatalf("root span = %+v", root)
	}
}

func TestStartSpanCtxUntraced(t *testing.T) {
	ctx := context.Background()
	got, end := StartSpanCtx(ctx, "noop")
	if got != ctx {
		t.Fatal("untraced context should come back unchanged")
	}
	end(Str("k", "v")) // must not panic
}

// recordingSink captures sink invocations and scripts the accepted flag.
type recordingSink struct {
	calls  int
	last   FinishedTrace
	accept bool
}

func (r *recordingSink) TraceFinished(ft FinishedTrace) bool {
	r.calls++
	r.last = ft
	return r.accept
}

// TestFinishIdempotentAndSink asserts Finish materializes the root span
// exactly once, hands the snapshot to the sink, propagates the sink's
// verdict, and returns the zero value on any later call.
func TestFinishIdempotentAndSink(t *testing.T) {
	tr := NewTrace()
	sink := &recordingSink{accept: true}
	tr.Sink = sink
	tr.StartSpan("child")(Int("n", 1))

	ft, accepted := tr.Finish("req", Str("outcome", "ok"))
	if !accepted {
		t.Fatal("sink accepted but Finish reported false")
	}
	if sink.calls != 1 {
		t.Fatalf("sink called %d times", sink.calls)
	}
	if len(ft.Spans) != 2 || ft.Spans[len(ft.Spans)-1].Name != "req" {
		t.Fatalf("spans = %+v", ft.Spans)
	}
	if ft.ID != tr.ID || ft.Root != tr.Root() {
		t.Fatalf("finished trace identity mismatch: %+v", ft)
	}

	if ft2, acc2 := tr.Finish("req"); acc2 || len(ft2.Spans) != 0 {
		t.Fatalf("second Finish = %+v, %v; want zero value", ft2, acc2)
	}
	if sink.calls != 1 {
		t.Fatalf("sink called again on second Finish (%d)", sink.calls)
	}

	var nilTrace *Trace
	if _, acc := nilTrace.Finish("x"); acc {
		t.Fatal("nil trace Finish accepted")
	}
}

func TestFinishSinkRejection(t *testing.T) {
	tr := NewTrace()
	tr.Sink = &recordingSink{accept: false}
	if _, accepted := tr.Finish("req"); accepted {
		t.Fatal("Finish should report the sink's rejection")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	mk := func() FinishedTrace {
		tr := NewTrace()
		ft, _ := tr.Finish("req")
		return ft
	}
	a, b, c := mk(), mk(), mk()
	r.Add(a)
	r.Add(b)
	if r.Len() != 2 || r.Total() != 2 {
		t.Fatalf("len/total = %d/%d", r.Len(), r.Total())
	}
	if got, ok := r.Get(a.ID); !ok || got.ID != a.ID {
		t.Fatalf("Get(a) = %+v, %v", got, ok)
	}
	r.Add(c) // evicts a
	if _, ok := r.Get(a.ID); ok {
		t.Fatal("a should have been evicted")
	}
	for _, ft := range []FinishedTrace{b, c} {
		if _, ok := r.Get(ft.ID); !ok {
			t.Fatalf("trace %s missing after eviction", ft.ID)
		}
	}
	if r.Len() != 2 || r.Total() != 3 {
		t.Fatalf("after eviction len/total = %d/%d", r.Len(), r.Total())
	}
	if _, ok := r.Get(TraceID("0000000000000000")); ok {
		t.Fatal("unknown ID should miss")
	}

	var nilRing *TraceRing
	nilRing.Add(a) // nil-safe
	if _, ok := nilRing.Get(a.ID); ok {
		t.Fatal("nil ring Get should miss")
	}
}

func TestRuntimeCollector(t *testing.T) {
	rc := NewRuntimeCollector(time.Second)
	defer rc.Close()
	st, ok := rc.Latest()
	if !ok {
		t.Fatal("collector primed at construction should have a sample")
	}
	if st.Goroutines <= 0 {
		t.Fatalf("goroutines = %d", st.Goroutines)
	}
	if st.HeapBytes <= 0 {
		t.Fatalf("heap bytes = %d", st.HeapBytes)
	}
	if st.SampledAt.IsZero() {
		t.Fatal("sample has no timestamp")
	}
	rc.Close() // idempotent

	var nilRC *RuntimeCollector
	if _, ok := nilRC.Latest(); ok {
		t.Fatal("nil collector should report no sample")
	}
	nilRC.Close() // nil-safe
}

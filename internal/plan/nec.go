package plan

import (
	"csce/internal/graph"
)

// NEC computes TurboISO-style neighborhood equivalence classes over the
// pattern vertices: u and w are equivalent when they share a label and have
// identical labeled neighborhoods once each other is excluded (so the ends
// of a triangle's base are equivalent, for example). Equivalent vertices
// have identical candidate sets under every partial embedding, so the
// executor and the reports can share their candidates.
//
// The result maps every vertex to its class; classes are returned as
// vertex groups sorted by smallest member.
func NEC(p *graph.Graph) [][]graph.VertexID {
	n := p.NumVertices()
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = -1
	}
	var classes [][]graph.VertexID
	for u := 0; u < n; u++ {
		if classOf[u] != -1 {
			continue
		}
		id := len(classes)
		classOf[u] = id
		group := []graph.VertexID{graph.VertexID(u)}
		for w := u + 1; w < n; w++ {
			if classOf[w] == -1 && necEquivalent(p, graph.VertexID(u), graph.VertexID(w)) {
				classOf[w] = id
				group = append(group, graph.VertexID(w))
			}
		}
		classes = append(classes, group)
	}
	return classes
}

// necEquivalent reports whether u and w are neighborhood-equivalent.
func necEquivalent(p *graph.Graph, u, w graph.VertexID) bool {
	if p.Label(u) != p.Label(w) {
		return false
	}
	// Mutual adjacency must be symmetric under swapping u and w: either no
	// edges between them, or edges in both directions with equal labels.
	luw, okUW := p.EdgeLabelOf(u, w)
	lwu, okWU := p.EdgeLabelOf(w, u)
	if p.Directed() {
		if okUW != okWU {
			return false
		}
		if okUW && luw != lwu {
			return false
		}
	}
	if !sameNeighborsExcluding(p.Out(u), p.Out(w), u, w) {
		return false
	}
	if p.Directed() && !sameNeighborsExcluding(p.In(u), p.In(w), u, w) {
		return false
	}
	return true
}

// sameNeighborsExcluding compares two sorted labeled neighbor lists,
// skipping entries that point at u or w themselves.
func sameNeighborsExcluding(a, b []graph.Neighbor, u, w graph.VertexID) bool {
	i, j := 0, 0
	for {
		for i < len(a) && (a[i].To == u || a[i].To == w) {
			i++
		}
		for j < len(b) && (b[j].To == u || b[j].To == w) {
			j++
		}
		if i == len(a) || j == len(b) {
			return i == len(a) && j == len(b)
		}
		if a[i] != b[j] {
			return false
		}
		i++
		j++
	}
}

package plan

import (
	"math"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

// GeneratePlan implements Algorithm 4: it selects a specific topological
// order of H — the Largest-Descendant-Size-First order — as the final
// matching order Φ*. Unlike Kahn's algorithm, ties among ready vertices are
// broken to maximize candidate reuse and minimize candidate counts:
//
//  1. largest descendant size (Algorithm 3),
//  2. smallest minimal cluster size over the pattern edges connecting the
//     vertex to already-ordered vertices,
//  3. lowest data-graph label frequency,
//  4. smallest vertex ID (determinism).
//
// store may be nil; the cluster and frequency tie-breakers then fall back
// to pattern-local information.
func GeneratePlan(h *DAG, descSizes []int, store *ccsr.Store, p *graph.Graph) []graph.VertexID {
	n := h.N()
	order := make([]graph.VertexID, 0, n)
	inOrder := make([]bool, n)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(h.In(v))
	}
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}

	labelFreq := func(v graph.VertexID) int {
		if store != nil {
			return store.LabelFrequency(p.Label(v))
		}
		return p.LabelFrequency(p.Label(v))
	}
	minClusterToOrdered := func(v graph.VertexID) int {
		best := math.MaxInt
		for _, uj := range p.UndirectedNeighbors(v) {
			if !inOrder[uj] {
				continue
			}
			w := math.MaxInt
			if store != nil {
				w = edgeClusterSize(p, store, uj, v)
			}
			if w < best {
				best = w
			}
		}
		return best
	}

	for len(ready) > 0 {
		// Scan the ready set for the LDSF winner. n is at most a few
		// thousand, so the quadratic scan is cheaper than a keyed heap that
		// would need re-prioritization as inOrder changes.
		bestIdx := 0
		bestOmega := minClusterToOrdered(graph.VertexID(ready[0]))
		for i := 1; i < len(ready); i++ {
			cur, best := ready[i], ready[bestIdx]
			var curOmega int
			switch {
			case descSizes[cur] != descSizes[best]:
				if descSizes[cur] > descSizes[best] {
					bestIdx = i
					bestOmega = minClusterToOrdered(graph.VertexID(cur))
				}
				continue
			default:
				curOmega = minClusterToOrdered(graph.VertexID(cur))
				if curOmega != bestOmega {
					if curOmega < bestOmega {
						bestIdx, bestOmega = i, curOmega
					}
					continue
				}
				lf, lb := labelFreq(graph.VertexID(cur)), labelFreq(graph.VertexID(best))
				if lf != lb {
					if lf < lb {
						bestIdx, bestOmega = i, curOmega
					}
					continue
				}
				if cur < best {
					bestIdx, bestOmega = i, curOmega
				}
			}
		}

		v := ready[bestIdx]
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		order = append(order, graph.VertexID(v))
		inOrder[v] = true
		for _, c := range h.Out(v) {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, int(c))
			}
		}
	}
	return order
}

// Package plan turns a pattern graph into an optimized matching order
// (Sections V and VI of the paper): a Greatest-Constraint-First initial
// order with CCSR tie-breaking, the candidate-dependency DAG H
// (Algorithm 2), descendant sizes (Algorithm 3), and the
// Largest-Descendant-Size-First topological reordering (Algorithm 4),
// together with NEC classes and the SCE occurrence statistics of Fig. 12.
package plan

import (
	"fmt"
	"math/bits"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

// DAG is the candidate-dependency graph H over pattern vertices: an edge
// u -> w means the candidates of w depend on the mapping of u. H is acyclic
// because every edge points from an earlier to a later vertex of the
// matching order that defined it.
type DAG struct {
	n   int
	out [][]int32
	in  [][]int32
	adj bitMatrix // adjacency for O(1) HasEdge
}

// NewDAG returns an empty dependency DAG over n pattern vertices.
func NewDAG(n int) *DAG {
	return &DAG{
		n:   n,
		out: make([][]int32, n),
		in:  make([][]int32, n),
		adj: newBitMatrix(n),
	}
}

// N returns the number of vertices.
func (d *DAG) N() int { return d.n }

// AddEdge inserts the dependency u -> w; duplicates are ignored.
func (d *DAG) AddEdge(u, w int) {
	if d.adj.get(u, w) {
		return
	}
	d.adj.set(u, w)
	d.out[u] = append(d.out[u], int32(w))
	d.in[w] = append(d.in[w], int32(u))
}

// HasEdge reports whether the dependency u -> w exists.
func (d *DAG) HasEdge(u, w int) bool { return d.adj.get(u, w) }

// Out returns the direct dependents (children) of u.
func (d *DAG) Out(u int) []int32 { return d.out[u] }

// In returns the direct dependencies (parents) of u.
func (d *DAG) In(u int) []int32 { return d.in[u] }

// NumEdges returns |E_H|.
func (d *DAG) NumEdges() int {
	total := 0
	for _, o := range d.out {
		total += len(o)
	}
	return total
}

// BuildDAG implements Algorithm 2: given clusters, a pattern, its matching
// order, and the SM variant, it returns the candidate-dependency DAG H.
//
// For every pattern edge between order positions i < j it adds the
// dependency Φ[i] -> Φ[j]. For the vertex-induced variant, a non-adjacent
// pair additionally becomes a dependency when data edges could connect
// their candidates — i.e. when some (Φ[i],Φ[j])*-cluster is non-empty
// (Algorithm 2 line 8), since the negation filter then ties Φ[j]'s
// candidates to Φ[i]'s mapping.
//
// Deviation from the paper's pseudo-code, documented in DESIGN.md: the
// printed line 7 requires a pattern neighbor of Φ[j] before position i; we
// require one before position j (trivially true in a connected order).
// Skipping the negation dependency when Φ[i] precedes Φ[j]'s first
// neighbor would declare candidate sets independent that the negation
// filter in fact couples, making SCE reuse unsound.
//
// store may be nil, in which case every non-adjacent pair is conservatively
// treated as dependent (no cluster emptiness information).
func BuildDAG(store *ccsr.Store, p *graph.Graph, order []graph.VertexID, variant graph.Variant) *DAG {
	n := len(order)
	d := NewDAG(p.NumVertices())
	for j := 1; j < n; j++ {
		uj := order[j]
		hasEarlierNeighbor := false
		for i := 0; i < j; i++ {
			if p.Adjacent(order[i], uj) {
				hasEarlierNeighbor = true
				break
			}
		}
		for i := 0; i < j; i++ {
			ui := order[i]
			if p.Adjacent(ui, uj) {
				d.AddEdge(int(ui), int(uj))
				continue
			}
			if variant != graph.VertexInduced || !hasEarlierNeighbor {
				continue
			}
			if store == nil || pairClustersNonEmpty(store, p.Label(ui), p.Label(uj)) {
				d.AddEdge(int(ui), int(uj))
			}
		}
	}
	return d
}

func pairClustersNonEmpty(store *ccsr.Store, a, b graph.Label) bool {
	for _, k := range store.PairClusterKeys(a, b) {
		if store.ClusterSize(k) > 0 {
			return true
		}
	}
	return false
}

// DescendantSizes implements Algorithm 3: for every pattern vertex, the
// number of distinct direct and indirect children in H. Descendant sets are
// shared between parents, so they are computed once bottom-up (reverse
// topological order) as bitsets.
func (d *DAG) DescendantSizes() []int {
	desc := d.descendantSets()
	sizes := make([]int, d.n)
	for v := range sizes {
		sizes[v] = desc.popcount(v)
	}
	return sizes
}

// descendantSets returns, for each vertex, the bitset of its descendants.
func (d *DAG) descendantSets() bitMatrix {
	desc := newBitMatrix(d.n)
	// Kahn peeling from childless vertices, as in Algorithm 3.
	remaining := make([]int, d.n)
	var frontier []int
	for v := 0; v < d.n; v++ {
		remaining[v] = len(d.out[v])
		if remaining[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, c := range d.out[v] {
				desc.set(v, int(c))
				desc.or(v, int(c))
			}
			for _, p := range d.in[v] {
				remaining[p]--
				if remaining[p] == 0 {
					next = append(next, int(p))
				}
			}
		}
		frontier = next
	}
	return desc
}

// Reaches reports whether a path u ->* w exists in H. It recomputes the
// descendant set of u; callers needing many queries should use
// descendantSets via SCEOccurrence.
func (d *DAG) Reaches(u, w int) bool {
	seen := make([]bool, d.n)
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range d.out[x] {
			if int(c) == w {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, int(c))
			}
		}
	}
	return false
}

// IsTopologicalOrder reports whether order visits every H-parent before its
// children; both Φ (the GCF order that defined H) and Φ* (the LDSF order)
// must satisfy it.
func (d *DAG) IsTopologicalOrder(order []graph.VertexID) bool {
	if len(order) != d.n {
		return false
	}
	pos := make([]int, d.n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if pos[v] != -1 {
			return false
		}
		pos[v] = i
	}
	for u := 0; u < d.n; u++ {
		for _, w := range d.out[u] {
			if pos[u] >= pos[w] {
				return false
			}
		}
	}
	return true
}

// String renders H for debugging.
func (d *DAG) String() string {
	s := fmt.Sprintf("DAG(%d vertices, %d edges)", d.n, d.NumEdges())
	return s
}

// bitMatrix is an n x n bit matrix used for adjacency and descendant sets.
type bitMatrix struct {
	n     int
	words int
	rows  []uint64
}

func newBitMatrix(n int) bitMatrix {
	words := (n + 63) / 64
	return bitMatrix{n: n, words: words, rows: make([]uint64, n*words)}
}

func (m bitMatrix) row(i int) []uint64 { return m.rows[i*m.words : (i+1)*m.words] }

func (m bitMatrix) set(i, j int) { m.row(i)[j/64] |= 1 << (uint(j) % 64) }

func (m bitMatrix) get(i, j int) bool { return m.row(i)[j/64]&(1<<(uint(j)%64)) != 0 }

// or merges row j into row i.
func (m bitMatrix) or(i, j int) {
	ri, rj := m.row(i), m.row(j)
	for w := range ri {
		ri[w] |= rj[w]
	}
}

func (m bitMatrix) popcount(i int) int {
	total := 0
	for _, w := range m.row(i) {
		total += bits.OnesCount64(w)
	}
	return total
}

package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

func fig1Data(t testing.TB) (*graph.Graph, *ccsr.Store) {
	t.Helper()
	g, err := graph.ParseString(`
t directed
v 0 A
v 1 B
v 2 C
v 3 A
v 4 B
v 5 B
v 6 D
v 7 C
v 8 A
v 9 C
e 0 1
e 0 5
e 0 2
e 0 9
e 6 0
e 3 4
e 3 2
e 1 2
e 4 7
e 8 7
e 8 9
`)
	if err != nil {
		t.Fatal(err)
	}
	return g, ccsr.Build(g)
}

// paperPattern approximates the paper's Fig. 1 pattern P: 8 vertices,
// u1(A)->u2(B), u1->u3(C), u1-u6, u1-u7(D) region structure. Exact topology
// differs from the (unpublished) original; tests only rely on structural
// invariants.
func paperPattern(t testing.TB) *graph.Graph {
	t.Helper()
	p, err := graph.ParseString(`
t directed
v 0 A
v 1 B
v 2 C
v 3 B
v 4 C
v 5 A
v 6 D
v 7 A
e 0 1
e 0 2
e 0 5
e 6 0
e 1 3
e 3 4
e 5 7
e 7 4
`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randomConnectedPattern(seed int64, n, labels int, directed bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	// Random spanning tree keeps it connected.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		if directed && rng.Intn(2) == 0 {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
		} else {
			b.AddEdge(graph.VertexID(j), graph.VertexID(i), 0)
		}
	}
	extra := rng.Intn(n)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
		}
	}
	return b.MustBuild()
}

func TestGCFIsPermutationAndConnected(t *testing.T) {
	g, store := fig1Data(t)
	_ = g
	for seed := int64(0); seed < 10; seed++ {
		p := randomConnectedPattern(seed, 8+int(seed), 4, true)
		order := GCF(p, store)
		checkPermutation(t, order, p.NumVertices())
		// Every vertex after the first must touch an earlier vertex
		// (connectivity of the prefix), which GCF's T1 rule guarantees for
		// connected patterns.
		for j := 1; j < len(order); j++ {
			touched := false
			for i := 0; i < j; i++ {
				if p.Adjacent(order[i], order[j]) {
					touched = true
					break
				}
			}
			if !touched {
				t.Fatalf("seed %d: order position %d (%d) has no earlier neighbor", seed, j, order[j])
			}
		}
	}
}

func TestGCFStartsAtMaxDegree(t *testing.T) {
	p := paperPattern(t)
	order := GCF(p, nil)
	maxDeg := 0
	for v := 0; v < p.NumVertices(); v++ {
		if d := p.Degree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if p.Degree(order[0]) != maxDeg {
		t.Fatalf("GCF must start at a max-degree vertex: got deg %d, max %d",
			p.Degree(order[0]), maxDeg)
	}
}

func TestGCFClusterTieBreakUsesData(t *testing.T) {
	// Two vertices tie on all RI rules; the cluster tie-break must pick the
	// one whose edge cluster is smaller in the data graph.
	data := graph.MustParse(`
t undirected
v 0 A
v 1 B
v 2 B
v 3 B
v 4 C
v 5 A
e 0 1
e 0 2
e 0 3
e 5 4
e 0 4
`)
	store := ccsr.Build(data)
	// Pattern: center A adjacent to B and C. B-cluster has 3 edges,
	// C-cluster has 2 -> after the center, C must be preferred.
	p := graph.MustParse(`
t undirected
v 0 A
v 1 B
v 2 C
e 0 1
e 0 2
`)
	order := GCF(p, store)
	if order[0] != 0 {
		t.Fatalf("center must come first, got %v", order)
	}
	if order[1] != 2 {
		t.Fatalf("cluster tie-break must prefer the C vertex (smaller cluster): %v", order)
	}
	// Without the store, the tie falls to the smaller vertex ID.
	orderRI := GCF(p, nil)
	if orderRI[1] != 1 {
		t.Fatalf("pure RI tie-break must pick smallest ID: %v", orderRI)
	}
}

func TestBuildDAGEdgeInduced(t *testing.T) {
	_, store := fig1Data(t)
	p := paperPattern(t)
	order := GCF(p, store)
	h := BuildDAG(store, p, order, graph.EdgeInduced)
	// Edge-induced H has exactly one dependency per pattern edge.
	if h.NumEdges() != p.NumEdges() {
		t.Fatalf("edge-induced H has %d edges, want |E_P| = %d", h.NumEdges(), p.NumEdges())
	}
	if !h.IsTopologicalOrder(order) {
		t.Fatal("the defining order must be a topological order of H")
	}
	// Every dependency edge corresponds to a pattern adjacency.
	for u := 0; u < h.N(); u++ {
		for _, w := range h.Out(u) {
			if !p.Adjacent(graph.VertexID(u), graph.VertexID(w)) {
				t.Fatalf("H edge (%d,%d) without pattern edge", u, w)
			}
		}
	}
}

func TestBuildDAGVertexInducedAddsNegationDeps(t *testing.T) {
	_, store := fig1Data(t)
	p := paperPattern(t)
	order := GCF(p, store)
	he := BuildDAG(store, p, order, graph.EdgeInduced)
	hv := BuildDAG(store, p, order, graph.VertexInduced)
	if hv.NumEdges() < he.NumEdges() {
		t.Fatal("vertex-induced H cannot have fewer dependencies than edge-induced")
	}
	if !hv.IsTopologicalOrder(order) {
		t.Fatal("order must remain a TO of the augmented H")
	}
	// A nil store must add all non-adjacent pairs conservatively.
	hAll := BuildDAG(nil, p, order, graph.VertexInduced)
	n := p.NumVertices()
	if want := n * (n - 1) / 2; hAll.NumEdges() != want {
		t.Fatalf("conservative vertex-induced H has %d edges, want %d", hAll.NumEdges(), want)
	}
}

func TestBuildDAGEmptyClusterSkipsNegationDep(t *testing.T) {
	// Data graph has no D-D edges, so two non-adjacent D pattern vertices
	// stay independent in the vertex-induced DAG (Algorithm 2 line 8).
	data := graph.MustParse(`
t undirected
v 0 A
v 1 D
v 2 D
e 0 1
e 0 2
`)
	store := ccsr.Build(data)
	p := graph.MustParse(`
t undirected
v 0 A
v 1 D
v 2 D
e 0 1
e 0 2
`)
	order := []graph.VertexID{0, 1, 2}
	h := BuildDAG(store, p, order, graph.VertexInduced)
	if h.HasEdge(1, 2) || h.HasEdge(2, 1) {
		t.Fatal("empty (D,D)*-clusters must not create a dependency")
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(0, 2) {
		t.Fatal("pattern-edge dependencies missing")
	}
}

func TestDescendantSizes(t *testing.T) {
	// Chain a->b->c plus a->c: desc(a)={b,c}, desc(b)={c}, desc(c)={}.
	d := NewDAG(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(0, 2)
	sizes := d.DescendantSizes()
	if sizes[0] != 2 || sizes[1] != 1 || sizes[2] != 0 {
		t.Fatalf("descendant sizes = %v, want [2 1 0]", sizes)
	}
	// Shared descendants are counted once (diamond).
	dd := NewDAG(4)
	dd.AddEdge(0, 1)
	dd.AddEdge(0, 2)
	dd.AddEdge(1, 3)
	dd.AddEdge(2, 3)
	s := dd.DescendantSizes()
	if s[0] != 3 {
		t.Fatalf("diamond root descendant size = %d, want 3", s[0])
	}
}

func TestDescendantSizesMatchBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		d := NewDAG(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					d.AddEdge(i, j)
				}
			}
		}
		sizes := d.DescendantSizes()
		for v := 0; v < n; v++ {
			brute := 0
			for w := 0; w < n; w++ {
				if w != v && d.Reaches(v, w) {
					brute++
				}
			}
			if sizes[v] != brute {
				t.Fatalf("seed %d: desc size of %d = %d, brute force %d", seed, v, sizes[v], brute)
			}
		}
	}
}

func TestGeneratePlanIsTopologicalOrder(t *testing.T) {
	_, store := fig1Data(t)
	for seed := int64(0); seed < 10; seed++ {
		p := randomConnectedPattern(seed, 10, 4, true)
		for _, variant := range graph.Variants() {
			initial := GCF(p, store)
			h := BuildDAG(store, p, initial, variant)
			order := GeneratePlan(h, h.DescendantSizes(), store, p)
			checkPermutation(t, order, p.NumVertices())
			if !h.IsTopologicalOrder(order) {
				t.Fatalf("seed %d %v: LDSF order is not a TO of H", seed, variant)
			}
		}
	}
}

func TestGeneratePlanPrefersLargeDescendants(t *testing.T) {
	// H: 0->{1,2}; 1->{3,4}; 2->{} — after 0, LDSF must pick 1 (descendant
	// size 2) before 2 (size 0).
	d := NewDAG(5)
	d.AddEdge(0, 1)
	d.AddEdge(0, 2)
	d.AddEdge(1, 3)
	d.AddEdge(1, 4)
	p := graph.MustParse(`
t undirected
v 0 A
v 1 B
v 2 B
v 3 C
v 4 C
e 0 1
e 0 2
e 1 3
e 1 4
`)
	order := GeneratePlan(d, d.DescendantSizes(), nil, p)
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("LDSF order = %v, want vertex 1 right after root", order)
	}
}

func TestOptimizePipeline(t *testing.T) {
	g, store := fig1Data(t)
	_ = g
	p := paperPattern(t)
	for _, variant := range graph.Variants() {
		for _, mode := range []Mode{ModeCSCE, ModeRI, ModeRICluster, ModeRM, ModeCostBased} {
			pl, err := Optimize(p, store, variant, mode)
			if err != nil {
				t.Fatalf("%v/%v: %v", variant, mode, err)
			}
			checkPermutation(t, pl.Order, p.NumVertices())
			if !pl.DAG.IsTopologicalOrder(pl.Order) {
				t.Fatalf("%v/%v: order not a TO of its DAG", variant, mode)
			}
			if pl.SCE.PatternVertices != p.NumVertices() {
				t.Fatalf("%v/%v: SCE stats incomplete", variant, mode)
			}
		}
	}
}

func TestOptimizeRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertices(4, 0)
	b.AddEdge(0, 1, 0)
	if _, err := Optimize(b.MustBuild(), nil, graph.EdgeInduced, ModeRI); err == nil {
		t.Fatal("disconnected pattern must be rejected")
	}
}

func TestFromOrderValidation(t *testing.T) {
	p := paperPattern(t)
	if _, err := FromOrder(p, nil, graph.EdgeInduced, []graph.VertexID{0, 1}); err == nil {
		t.Fatal("short order must be rejected")
	}
	bad := make([]graph.VertexID, p.NumVertices())
	if _, err := FromOrder(p, nil, graph.EdgeInduced, bad); err == nil {
		t.Fatal("non-permutation must be rejected")
	}
	good := make([]graph.VertexID, p.NumVertices())
	for i := range good {
		good[i] = graph.VertexID(i)
	}
	pl, err := FromOrder(p, nil, graph.EdgeInduced, good)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.DAG.IsTopologicalOrder(pl.Order) {
		t.Fatal("identity order must be a TO of its own DAG")
	}
}

func TestSCEStatsHomomorphicAtLeastEdgeInduced(t *testing.T) {
	// Finding 12: homomorphism exhibits at least as much SCE as the
	// edge-induced variant on the same pattern (its H never has more
	// edges). With the same GCF order the DAGs coincide for these two
	// variants, so compare against vertex-induced instead, whose H gains
	// negation dependencies and can only lose independence.
	_, store := fig1Data(t)
	for seed := int64(0); seed < 8; seed++ {
		p := randomConnectedPattern(seed, 9, 4, true)
		edge, err := Optimize(p, store, graph.EdgeInduced, ModeCSCE)
		if err != nil {
			t.Fatal(err)
		}
		vert, err := Optimize(p, store, graph.VertexInduced, ModeCSCE)
		if err != nil {
			t.Fatal(err)
		}
		if vert.SCE.IndependentPairs > edge.SCE.IndependentPairs {
			t.Fatalf("seed %d: vertex-induced independence (%d) exceeds edge-induced (%d)",
				seed, vert.SCE.IndependentPairs, edge.SCE.IndependentPairs)
		}
	}
}

func TestNECClasses(t *testing.T) {
	// A star with three identical leaves: leaves form one NEC class.
	star := graph.MustParse(`
t undirected
v 0 A
v 1 B
v 2 B
v 3 B
e 0 1
e 0 2
e 0 3
`)
	classes := NEC(star)
	if len(classes) != 2 {
		t.Fatalf("star has %d NEC classes, want 2 (center + leaves): %v", len(classes), classes)
	}
	var leafClass []graph.VertexID
	for _, c := range classes {
		if len(c) == 3 {
			leafClass = c
		}
	}
	if leafClass == nil {
		t.Fatalf("three leaves must share one class: %v", classes)
	}

	// A triangle's two base vertices adjacent to each other are equivalent.
	tri := graph.MustParse(`
t undirected
v 0 A
v 1 B
v 2 B
e 0 1
e 0 2
e 1 2
`)
	cls := NEC(tri)
	if len(cls) != 2 {
		t.Fatalf("triangle NEC classes = %v, want base pair together", cls)
	}

	// Different labels never share a class.
	mixed := graph.MustParse(`
t undirected
v 0 A
v 1 B
v 2 C
e 0 1
e 0 2
`)
	if got := len(NEC(mixed)); got != 3 {
		t.Fatalf("mixed-label NEC classes = %d, want 3", got)
	}

	// Directed edge asymmetry breaks equivalence.
	dir := graph.MustParse(`
t directed
v 0 A
v 1 B
v 2 B
e 0 1
e 2 0
`)
	if got := len(NEC(dir)); got != 3 {
		t.Fatalf("directed asymmetric NEC classes = %d, want 3", got)
	}
}

func TestRMOrderIsPermutation(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := randomConnectedPattern(seed, 12, 3, false)
		checkPermutation(t, RMOrder(p), p.NumVertices())
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{ModeCSCE: "CSCE", ModeRI: "RI", ModeRICluster: "RI+Cluster", ModeRM: "RM", ModeCostBased: "CostBased"}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("mode %d prints %q, want %q", m, m.String(), want)
		}
	}
}

func TestPlanStringAndPosition(t *testing.T) {
	_, store := fig1Data(t)
	p := paperPattern(t)
	pl, err := Optimize(p, store, graph.EdgeInduced, ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	if pl.String() == "" {
		t.Fatal("plan string empty")
	}
	for i, v := range pl.Order {
		if pl.PositionOf(v) != i {
			t.Fatal("PositionOf inconsistent with Order")
		}
	}
	if pl.PositionOf(99) != -1 {
		t.Fatal("PositionOf of unknown vertex must be -1")
	}
}

func checkPermutation(t *testing.T, order []graph.VertexID, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if int(v) >= n || seen[v] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[v] = true
	}
}

func TestAutomorphisms(t *testing.T) {
	if got := len(Automorphisms(graph.Clique(4, 0))); got != 24 {
		t.Fatalf("Aut(K4) = %d, want 24", got)
	}
	if got := len(Automorphisms(graph.Path(3, 0))); got != 2 {
		t.Fatalf("Aut(P3) = %d, want 2", got)
	}
	if got := len(Automorphisms(graph.Cycle(5))); got != 10 {
		t.Fatalf("Aut(C5) = %d, want 10 (dihedral)", got)
	}
	// Labels break symmetry.
	if got := len(Automorphisms(graph.Path(3, 1, 2, 3))); got != 1 {
		t.Fatalf("Aut of fully labeled path = %d, want 1", got)
	}
	// Directed cycle has only rotations.
	b := graph.NewBuilder(true)
	b.AddVertices(4, 0)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%4), 0)
	}
	if got := len(Automorphisms(b.MustBuild())); got != 4 {
		t.Fatalf("Aut of directed C4 = %d, want 4", got)
	}
}

func TestPlanDOT(t *testing.T) {
	_, store := fig1Data(t)
	p := paperPattern(t)
	pl, err := Optimize(p, store, graph.VertexInduced, ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	dot := pl.DOT()
	if !strings.HasPrefix(dot, "digraph H {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed DOT:\n%s", dot)
	}
	for u := 0; u < p.NumVertices(); u++ {
		if !strings.Contains(dot, fmt.Sprintf("u%d [", u)) {
			t.Fatalf("vertex u%d missing from DOT", u)
		}
	}
	if strings.Count(dot, "->") < pl.DAG.NumEdges() {
		t.Fatal("DOT misses dependency edges")
	}
	// Vertex-induced plans have negation dependencies rendered dashed.
	if !strings.Contains(dot, "dashed") {
		t.Fatal("vertex-induced DOT should show dashed negation dependencies")
	}
}

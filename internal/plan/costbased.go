package plan

import (
	"math"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

// CostBasedOrder is the alternative ordering heuristic the paper's
// conclusion points at as future work: instead of RI's purely structural
// Greatest-Constraint-First rules, it greedily minimizes an estimated
// partial-embedding cardinality derived from CCSR cluster statistics —
// the systematic-estimation school (Graphflow) made cheap by reusing the
// cluster sizes the index already maintains.
//
// The estimate treats the average cluster fan-out (cluster size divided by
// the frequency of the already-matched side's label) as the expected
// number of extensions one backward edge contributes, and takes the
// minimum over all backward edges, since execution intersects them.
func CostBasedOrder(p *graph.Graph, store *ccsr.Store) []graph.VertexID {
	n := p.NumVertices()
	if n == 0 {
		return nil
	}
	nbrs := undirectedAdjacency(p)
	inOrder := make([]bool, n)
	order := make([]graph.VertexID, 0, n)

	// First vertex: smallest estimated candidate pool — the frequency of
	// its label, sharpened by its smallest incident cluster.
	best, bestEst := 0, math.MaxFloat64
	for v := 0; v < n; v++ {
		est := float64(store.LabelFrequency(p.Label(graph.VertexID(v))))
		if s := minIncidentClusterSize(p, store, graph.VertexID(v)); s != math.MaxInt {
			if cs := float64(s); cs < est {
				est = cs
			}
		}
		// Prefer constrained (high-degree) starts among equals.
		est /= float64(1 + p.Degree(graph.VertexID(v)))
		if est < bestEst {
			best, bestEst = v, est
		}
	}
	order = append(order, graph.VertexID(best))
	inOrder[best] = true

	for len(order) < n {
		bestV := -1
		bestCost := math.MaxFloat64
		for x := 0; x < n; x++ {
			if inOrder[x] {
				continue
			}
			ux := graph.VertexID(x)
			fanout := math.MaxFloat64
			backEdges := 0
			for _, u := range nbrs[ux] {
				if !inOrder[u] {
					continue
				}
				backEdges++
				if f := edgeFanout(p, store, u, ux); f < fanout {
					fanout = f
				}
			}
			if backEdges == 0 {
				continue // keep the prefix connected
			}
			// More backward edges intersect more lists: damp the estimate.
			cost := fanout / float64(backEdges)
			if cost < bestCost || (cost == bestCost && bestV > x) {
				bestV, bestCost = x, cost
			}
		}
		if bestV == -1 { // disconnected pattern: take any remaining vertex
			for x := 0; x < n; x++ {
				if !inOrder[x] {
					bestV = x
					break
				}
			}
		}
		order = append(order, graph.VertexID(bestV))
		inOrder[bestV] = true
	}
	return order
}

// edgeFanout estimates how many candidates one mapped endpoint of the
// pattern edge (u, x) contributes: cluster size over the matched side's
// label frequency.
func edgeFanout(p *graph.Graph, store *ccsr.Store, u, x graph.VertexID) float64 {
	size := edgeClusterSize(p, store, u, x)
	if size == math.MaxInt {
		return math.MaxFloat64
	}
	freq := store.LabelFrequency(p.Label(u))
	if freq == 0 {
		return 0
	}
	return float64(size) / float64(freq)
}

package plan

import (
	"fmt"
	"strings"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

// Mode selects which of the paper's optimization stages run; the Fig. 13
// plan-quality ablation compares them.
type Mode uint8

const (
	// ModeCSCE is the full pipeline: GCF with cluster tie-breaking, then
	// LDSF re-ordering over the dependency DAG. The paper's Φ*.
	ModeCSCE Mode = iota
	// ModeRI uses only the RI heuristic rules (no data-graph tie-breaking,
	// no LDSF): the plain GCF baseline.
	ModeRI
	// ModeRICluster adds the CCSR tie-breaking to RI but skips LDSF.
	ModeRICluster
	// ModeRM uses the RapidMatch ordering heuristic.
	ModeRM
	// ModeCostBased replaces GCF with the cluster-statistics cost model of
	// CostBasedOrder, then applies the LDSF refinement — the alternative
	// heuristic the paper's conclusion suggests exploring.
	ModeCostBased
)

// String names the mode as in Fig. 13.
func (m Mode) String() string {
	switch m {
	case ModeCSCE:
		return "CSCE"
	case ModeRI:
		return "RI"
	case ModeRICluster:
		return "RI+Cluster"
	case ModeRM:
		return "RM"
	case ModeCostBased:
		return "CostBased"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Plan is an optimized matching order together with everything the
// executor needs: the dependency DAG H, per-vertex descendant sizes, NEC
// classes, and SCE occurrence statistics.
type Plan struct {
	Pattern *graph.Graph
	Variant graph.Variant
	Mode    Mode

	// Order is Φ*: pattern vertex IDs in matching order.
	Order []graph.VertexID
	// DAG is the candidate-dependency graph H built from Order.
	DAG *DAG
	// DescendantSizes[v] is |descendants(v)| in H, per Algorithm 3.
	DescendantSizes []int
	// NECClasses groups neighborhood-equivalent pattern vertices.
	NECClasses [][]graph.VertexID
	// SCE summarizes sequential candidate equivalence occurrence (Fig. 12).
	SCE SCEStats
}

// SCEStats quantifies how often sequential candidate equivalence occurs in
// a plan, the Fig. 12 measurements.
type SCEStats struct {
	// SCEVertices counts pattern vertices with at least one earlier,
	// path-independent vertex in Φ*.
	SCEVertices int
	// ClusterSCEVertices counts SCE vertices whose equivalence additionally
	// satisfies injectivity through label disjointness or empty
	// (ui,uj)*-clusters (the "Cluster" sub-bars; meaningless for
	// homomorphism, which needs no injectivity).
	ClusterSCEVertices int
	// IndependentPairs counts ordered pairs (i<j) with no H-path.
	IndependentPairs int
	// TotalPairs is n*(n-1)/2.
	TotalPairs int
	// PatternVertices is n.
	PatternVertices int
}

// Ratio returns SCEVertices / n, the bar height of Fig. 12.
func (s SCEStats) Ratio() float64 {
	if s.PatternVertices == 0 {
		return 0
	}
	return float64(s.SCEVertices) / float64(s.PatternVertices)
}

// ClusterRatio returns the cluster sub-bar share of the SCE bar.
func (s SCEStats) ClusterRatio() float64 {
	if s.SCEVertices == 0 {
		return 0
	}
	return float64(s.ClusterSCEVertices) / float64(s.SCEVertices)
}

// Optimize runs the paper's plan-optimization pipeline (the orange stage of
// Fig. 2) for pattern p against the clustered data graph: GCF initial
// order, dependency DAG (Algorithm 2), descendant sizes (Algorithm 3), and
// LDSF re-ordering (Algorithm 4). mode selects ablations for Fig. 13.
//
// store may be nil only for modes that do not consult the data graph; the
// executor still requires a store-backed view at run time.
func Optimize(p *graph.Graph, store *ccsr.Store, variant graph.Variant, mode Mode) (*Plan, error) {
	if p.NumVertices() == 0 {
		return nil, fmt.Errorf("plan: empty pattern")
	}
	if !graph.IsConnected(p) {
		return nil, fmt.Errorf("plan: pattern must be connected")
	}

	var initial []graph.VertexID
	switch mode {
	case ModeRM:
		initial = RMOrder(p)
	case ModeRI:
		initial = GCF(p, nil)
	case ModeCostBased:
		if store == nil {
			return nil, fmt.Errorf("plan: cost-based ordering needs cluster statistics")
		}
		initial = CostBasedOrder(p, store)
	default:
		initial = GCF(p, store)
	}

	h := BuildDAG(store, p, initial, variant)
	desc := h.DescendantSizes()

	order := initial
	if mode == ModeCSCE || mode == ModeCostBased {
		order = GeneratePlan(h, desc, store, p)
	}

	pl := &Plan{
		Pattern:         p,
		Variant:         variant,
		Mode:            mode,
		Order:           order,
		DAG:             h,
		DescendantSizes: desc,
		NECClasses:      NEC(p),
	}
	pl.SCE = computeSCE(pl, store)
	return pl, nil
}

// FromOrder builds a Plan around a caller-supplied matching order (used by
// baselines and tests). The order must be a permutation of the pattern
// vertices.
func FromOrder(p *graph.Graph, store *ccsr.Store, variant graph.Variant, order []graph.VertexID) (*Plan, error) {
	if len(order) != p.NumVertices() {
		return nil, fmt.Errorf("plan: order has %d vertices, pattern has %d", len(order), p.NumVertices())
	}
	seen := make([]bool, p.NumVertices())
	for _, v := range order {
		if int(v) >= len(seen) || seen[v] {
			return nil, fmt.Errorf("plan: order is not a permutation")
		}
		seen[v] = true
	}
	h := BuildDAG(store, p, order, variant)
	pl := &Plan{
		Pattern:         p,
		Variant:         variant,
		Order:           append([]graph.VertexID(nil), order...),
		DAG:             h,
		DescendantSizes: h.DescendantSizes(),
		NECClasses:      NEC(p),
	}
	pl.SCE = computeSCE(pl, store)
	return pl, nil
}

// computeSCE measures sequential candidate equivalence over the plan's
// order: vertex Φ[j] exhibits SCE when some earlier Φ[i] has no H-path to
// it (Definition 1). The cluster contribution counts SCE vertices whose
// independence also guarantees injectivity for free — every independent
// predecessor either carries a different label or shares no data edges
// (empty (ui,uj)*-clusters).
func computeSCE(pl *Plan, store *ccsr.Store) SCEStats {
	n := len(pl.Order)
	stats := SCEStats{PatternVertices: n, TotalPairs: n * (n - 1) / 2}
	desc := pl.DAG.descendantSets()
	p := pl.Pattern
	for j := 1; j < n; j++ {
		uj := pl.Order[j]
		hasSCE := false
		clusterOK := true
		for i := 0; i < j; i++ {
			ui := pl.Order[i]
			if desc.get(int(ui), int(uj)) {
				continue // dependent: a path ui ->* uj exists
			}
			hasSCE = true
			stats.IndependentPairs++
			if p.Label(ui) == p.Label(uj) && (store == nil || pairClustersNonEmpty(store, p.Label(ui), p.Label(uj))) {
				clusterOK = false
			}
		}
		if hasSCE {
			stats.SCEVertices++
			if clusterOK {
				stats.ClusterSCEVertices++
			}
		}
	}
	return stats
}

// String renders the plan compactly for logs.
func (pl *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan[%s,%s] order=", pl.Mode, pl.Variant)
	for i, v := range pl.Order {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "u%d", v)
	}
	fmt.Fprintf(&b, " H=%d edges, SCE=%.0f%%", pl.DAG.NumEdges(), 100*pl.SCE.Ratio())
	return b.String()
}

// PositionOf returns the order position of pattern vertex v, or -1.
func (pl *Plan) PositionOf(v graph.VertexID) int {
	for i, u := range pl.Order {
		if u == v {
			return i
		}
	}
	return -1
}

package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

// genDAG derives a random DAG (edges always low -> high) from a seed.
func genDAG(seed int64) *DAG {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(24)
	d := NewDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				d.AddEdge(i, j)
			}
		}
	}
	return d
}

// TestPropertyDescendantMonotonicity: a parent's descendant count is
// strictly greater than each child's contribution — desc(u) >= desc(c)+1
// is not guaranteed when children overlap, but desc(u) >= desc(c) always
// holds, and desc(u) >= outdegree(u).
func TestPropertyDescendantMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		d := genDAG(seed)
		sizes := d.DescendantSizes()
		for u := 0; u < d.N(); u++ {
			if sizes[u] < len(d.Out(u)) {
				return false
			}
			for _, c := range d.Out(u) {
				if sizes[u] < sizes[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGeneratePlanTopological: for random DAGs with any
// descendant-size vector, GeneratePlan emits a topological order covering
// every vertex. (H vertices map onto a star pattern of the right size so
// the tie-breakers have something to chew on.)
func TestPropertyGeneratePlanTopological(t *testing.T) {
	f := func(seed int64) bool {
		d := genDAG(seed)
		b := graph.NewBuilder(false)
		b.AddVertices(d.N(), 0)
		for v := 1; v < d.N(); v++ {
			b.AddEdge(0, graph.VertexID(v), 0)
		}
		p := b.MustBuild()
		order := GeneratePlan(d, d.DescendantSizes(), nil, p)
		if len(order) != d.N() {
			return false
		}
		return d.IsTopologicalOrder(order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNECIsEquivalenceRelation: NEC classes partition the vertex
// set, and any two members of a class are pairwise necEquivalent
// (transitivity of the grouping).
func TestPropertyNECIsEquivalenceRelation(t *testing.T) {
	f := func(seed int64) bool {
		p := randomConnectedPattern(seed, 4+absMod(seed, 6), 3, absMod(seed, 2) == 0)
		classes := NEC(p)
		seen := make([]bool, p.NumVertices())
		for _, class := range classes {
			for _, v := range class {
				if seen[v] {
					return false // overlap
				}
				seen[v] = true
			}
			for i := 0; i < len(class); i++ {
				for j := i + 1; j < len(class); j++ {
					if !necEquivalent(p, class[i], class[j]) {
						return false
					}
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false // not a cover
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAutomorphismsFormAGroup: the automorphism set contains the
// identity, is closed under composition, and every element preserves
// adjacency exactly.
func TestPropertyAutomorphismsFormAGroup(t *testing.T) {
	f := func(seed int64) bool {
		p := randomConnectedPattern(seed, 3+absMod(seed, 4), 2, false)
		auts := Automorphisms(p)
		n := p.NumVertices()
		key := func(perm []graph.VertexID) string {
			b := make([]byte, n)
			for i, v := range perm {
				b[i] = byte(v)
			}
			return string(b)
		}
		set := map[string]bool{}
		for _, a := range auts {
			set[key(a)] = true
		}
		id := make([]graph.VertexID, n)
		for i := range id {
			id[i] = graph.VertexID(i)
		}
		if !set[key(id)] {
			return false
		}
		// Closure under composition.
		for _, a := range auts {
			for _, b := range auts {
				comp := make([]graph.VertexID, n)
				for i := range comp {
					comp[i] = a[b[i]]
				}
				if !set[key(comp)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOptimizeOrderIsAlwaysValid: for random patterns, data
// graphs, variants and modes, the optimized order is a permutation, a TO
// of its DAG, and keeps a connected prefix.
func TestPropertyOptimizeOrderIsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		directed := rng.Intn(2) == 0
		gb := graph.NewBuilder(directed)
		n := 10 + rng.Intn(20)
		for i := 0; i < n; i++ {
			gb.AddVertex(graph.Label(rng.Intn(3)))
		}
		for i := 0; i < 4*n; i++ {
			v, w := rng.Intn(n), rng.Intn(n)
			if v != w {
				gb.AddEdge(graph.VertexID(v), graph.VertexID(w), 0)
			}
		}
		store := ccsr.Build(gb.MustBuild())
		p := randomConnectedPattern(seed^0x77, 3+rng.Intn(6), 3, directed)
		variant := graph.Variants()[rng.Intn(3)]
		mode := []Mode{ModeCSCE, ModeRI, ModeRICluster, ModeRM, ModeCostBased}[rng.Intn(5)]
		pl, err := Optimize(p, store, variant, mode)
		if err != nil {
			return false
		}
		if len(pl.Order) != p.NumVertices() || !pl.DAG.IsTopologicalOrder(pl.Order) {
			return false
		}
		for j := 1; j < len(pl.Order); j++ {
			connected := false
			for i := 0; i < j; i++ {
				if p.Adjacent(pl.Order[i], pl.Order[j]) {
					connected = true
					break
				}
			}
			if !connected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// absMod returns |seed| mod k, safe for negative quick-generated seeds.
func absMod(seed int64, k int64) int {
	m := seed % k
	if m < 0 {
		m += k
	}
	return int(m)
}

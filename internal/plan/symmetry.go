package plan

import (
	"csce/internal/graph"
)

// Automorphisms enumerates Aut(P): all label- and adjacency-preserving
// bijections of the pattern onto itself (exact arc structure, i.e. induced
// self-isomorphisms). Exponential in the worst case, which is precisely why
// symmetry breaking does not scale to large patterns (Finding 2).
func Automorphisms(p *graph.Graph) [][]graph.VertexID {
	n := p.NumVertices()
	perm := make([]graph.VertexID, n)
	used := make([]bool, n)
	var out [][]graph.VertexID
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]graph.VertexID(nil), perm...))
			return
		}
		uk := graph.VertexID(k)
		for v := 0; v < n; v++ {
			vk := graph.VertexID(v)
			if used[v] || p.Label(vk) != p.Label(uk) || p.Degree(vk) != p.Degree(uk) {
				continue
			}
			ok := true
			for w := 0; w < k && ok; w++ {
				ww := graph.VertexID(w)
				if !equalEdgeLabels(patternArcLabels(p, ww, uk), patternArcLabels(p, perm[w], vk)) {
					ok = false
				}
				if ok && p.Directed() && !equalEdgeLabels(patternArcLabels(p, uk, ww), patternArcLabels(p, vk, perm[w])) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			perm[k] = vk
			used[v] = true
			rec(k + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}

// SymmetryConstraints derives f(a) < f(b) constraints from the
// automorphism group via a pointwise stabilizer chain: each orbit of the
// current stabilizer pins its smallest member below the rest, then the
// group is restricted to maps fixing that member. Every Aut-orbit of
// embeddings contains exactly one embedding satisfying all constraints.
func SymmetryConstraints(p *graph.Graph, auts [][]graph.VertexID) [][2]graph.VertexID {
	var cons [][2]graph.VertexID
	current := auts
	n := p.NumVertices()
	for u := 0; u < n && len(current) > 1; u++ {
		uid := graph.VertexID(u)
		orbit := map[graph.VertexID]bool{}
		for _, sigma := range current {
			orbit[sigma[u]] = true
		}
		for w := range orbit {
			if w != uid {
				cons = append(cons, [2]graph.VertexID{uid, w})
			}
		}
		var stab [][]graph.VertexID
		for _, sigma := range current {
			if sigma[u] == uid {
				stab = append(stab, sigma)
			}
		}
		current = stab
	}
	return cons
}

// patternArcLabels returns the sorted labels of all arcs a -> b in p.
func patternArcLabels(p *graph.Graph, a, b graph.VertexID) []graph.EdgeLabel {
	var out []graph.EdgeLabel
	for _, nb := range p.Out(a) {
		if nb.To == b {
			out = append(out, nb.Label)
		}
	}
	return out
}

func equalEdgeLabels(a, b []graph.EdgeLabel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package plan

import (
	"math"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

// This file implements the initial matching-order heuristics of Section VI:
// RI's Greatest-Constraint-First rules (Eq. 1), the paper's CCSR-based
// tie-breaking (Eq. 2), and the RapidMatch-style order used as the Fig. 13
// baseline.
//
// GCF is implemented incrementally: the Eq. 1 counters of every unordered
// vertex are maintained as the order grows, so selecting a full order costs
// O(|V_P| * |E_P|) instead of the naive cubic scan — the difference between
// seconds and hours for the paper's 2000-vertex patterns (Fig. 10).

// GCF computes a Greatest-Constraint-First matching order for pattern p.
// When store is non-nil, ties are broken using cluster sizes (Eq. 2);
// otherwise the pure RI rules apply (ties fall through to the smallest
// vertex ID for determinism).
func GCF(p *graph.Graph, store *ccsr.Store) []graph.VertexID {
	n := p.NumVertices()
	if n == 0 {
		return nil
	}
	st := &gcfState{
		p:          p,
		store:      store,
		nbrs:       undirectedAdjacency(p),
		inOrder:    make([]bool, n),
		adjToOrder: make([]bool, n),
		t1:         make([]int, n),
		om1:        make([]int, n),
	}
	for v := range st.om1 {
		st.om1[v] = math.MaxInt
	}

	// First vertex: highest degree; cluster tie-break minimizes the
	// smallest incident cluster size.
	best := -1
	bestDeg := -1
	bestOmega := math.MaxInt
	for v := 0; v < n; v++ {
		deg := p.Degree(graph.VertexID(v))
		omega := minIncidentClusterSize(p, store, graph.VertexID(v))
		if deg > bestDeg || (deg == bestDeg && omega < bestOmega) {
			best, bestDeg, bestOmega = v, deg, omega
		}
	}
	order := make([]graph.VertexID, 0, n)
	order = st.take(order, graph.VertexID(best))
	for len(order) < n {
		order = st.take(order, st.pick())
	}
	return order
}

// gcfState carries the incrementally maintained Eq. 1/Eq. 2 quantities.
type gcfState struct {
	p     *graph.Graph
	store *ccsr.Store
	nbrs  [][]graph.VertexID // precomputed undirected adjacency

	inOrder    []bool
	adjToOrder []bool // vertex has >= 1 ordered neighbor
	t1         []int  // |T1|: ordered neighbors (valid for unordered vertices)
	om1        []int  // omega1: min cluster size over edges to ordered neighbors
}

// take appends u to the order and updates neighbor counters.
func (st *gcfState) take(order []graph.VertexID, u graph.VertexID) []graph.VertexID {
	st.inOrder[u] = true
	for _, w := range st.nbrs[u] {
		st.adjToOrder[w] = true
		if !st.inOrder[w] {
			st.t1[w]++
			if st.store != nil {
				if s := edgeClusterSize(st.p, st.store, u, w); s < st.om1[w] {
					st.om1[w] = s
				}
			}
		}
	}
	return append(order, u)
}

// pick scores every unordered vertex with the three RI counters of Eq. 1
// and the cluster tie-breakers of Eq. 2, returning the winner.
func (st *gcfState) pick() graph.VertexID {
	var best *gcfScore
	for x := 0; x < len(st.inOrder); x++ {
		if st.inOrder[x] {
			continue
		}
		ux := graph.VertexID(x)
		s := gcfScore{v: ux, t1: st.t1[x], om1: st.om1[x], om2: math.MaxInt, om3: math.MaxInt}
		// T2 and T3 classify the unordered neighbors uj of ux: T2 if uj is
		// also adjacent to some ordered vertex, T3 otherwise.
		for _, uj := range st.nbrs[ux] {
			if st.inOrder[uj] {
				continue
			}
			w := math.MaxInt
			if st.store != nil {
				w = edgeClusterSize(st.p, st.store, ux, uj)
			}
			if st.adjToOrder[uj] {
				s.t2++
				if w < s.om2 {
					s.om2 = w
				}
			} else {
				s.t3++
				if w < s.om3 {
					s.om3 = w
				}
			}
		}
		if best == nil || gcfLess(best, &s) {
			cp := s
			best = &cp
		}
	}
	return best.v
}

// gcfScore carries the Eq. 1 counters and Eq. 2 tie-breakers of one
// candidate vertex.
type gcfScore struct {
	t1, t2, t3    int
	om1, om2, om3 int
	v             graph.VertexID
}

// gcfLess reports whether candidate b beats the current best a under the
// cascade: higher |T1|, |T2|, |T3|; then smaller ω1, ω2, ω3; then smaller
// vertex ID.
func gcfLess(a, b *gcfScore) bool {
	switch {
	case b.t1 != a.t1:
		return b.t1 > a.t1
	case b.t2 != a.t2:
		return b.t2 > a.t2
	case b.t3 != a.t3:
		return b.t3 > a.t3
	case b.om1 != a.om1:
		return b.om1 < a.om1
	case b.om2 != a.om2:
		return b.om2 < a.om2
	case b.om3 != a.om3:
		return b.om3 < a.om3
	default:
		return b.v < a.v
	}
}

// edgeClusterSize returns |I_C| of the cluster holding data edges
// isomorphic to the pattern edge(s) between ua and ub; when both
// orientations exist the smaller cluster counts.
func edgeClusterSize(p *graph.Graph, store *ccsr.Store, ua, ub graph.VertexID) int {
	best := math.MaxInt
	if l, ok := p.EdgeLabelOf(ua, ub); ok {
		if w := store.EdgeClusterSize(p.Label(ua), p.Label(ub), l); w < best {
			best = w
		}
	}
	if p.Directed() {
		if l, ok := p.EdgeLabelOf(ub, ua); ok {
			if w := store.EdgeClusterSize(p.Label(ub), p.Label(ua), l); w < best {
				best = w
			}
		}
	}
	return best
}

// minIncidentClusterSize is the Eq. 2 first-vertex tie-breaker: the
// smallest cluster size over all pattern edges incident to ux. Without a
// store it returns a constant so degree alone decides.
func minIncidentClusterSize(p *graph.Graph, store *ccsr.Store, ux graph.VertexID) int {
	if store == nil {
		return math.MaxInt
	}
	best := math.MaxInt
	for _, uj := range p.UndirectedNeighbors(ux) {
		if w := edgeClusterSize(p, store, ux, uj); w < best {
			best = w
		}
	}
	return best
}

// RMOrder reproduces the RapidMatch ordering heuristic used as the Fig. 13
// baseline: repeatedly pick the vertex connecting the highest number of
// already-ordered vertices, starting from the highest-degree vertex; ties
// fall to higher degree, then smaller ID.
func RMOrder(p *graph.Graph) []graph.VertexID {
	n := p.NumVertices()
	if n == 0 {
		return nil
	}
	order := make([]graph.VertexID, 0, n)
	inOrder := make([]bool, n)
	conn := make([]int, n)
	best := 0
	for v := 1; v < n; v++ {
		if p.Degree(graph.VertexID(v)) > p.Degree(graph.VertexID(best)) {
			best = v
		}
	}
	take := func(u graph.VertexID) {
		order = append(order, u)
		inOrder[u] = true
		for _, w := range p.UndirectedNeighbors(u) {
			conn[w]++
		}
	}
	take(graph.VertexID(best))
	for len(order) < n {
		bestV, bestConn, bestDeg := -1, -1, -1
		for x := 0; x < n; x++ {
			if inOrder[x] {
				continue
			}
			deg := p.Degree(graph.VertexID(x))
			if conn[x] > bestConn || (conn[x] == bestConn && deg > bestDeg) {
				bestV, bestConn, bestDeg = x, conn[x], deg
			}
		}
		take(graph.VertexID(bestV))
	}
	return order
}

// undirectedAdjacency precomputes the distinct-neighbor lists of every
// pattern vertex, so the order heuristics do not re-merge in/out adjacency
// on every evaluation.
func undirectedAdjacency(p *graph.Graph) [][]graph.VertexID {
	out := make([][]graph.VertexID, p.NumVertices())
	for v := range out {
		out[v] = p.UndirectedNeighbors(graph.VertexID(v))
	}
	return out
}

package plan

import (
	"fmt"
	"strings"

	"csce/internal/graph"
)

// DOT renders the plan's dependency DAG H in Graphviz format for
// inspection: vertices are annotated with their matching-order position
// and label, pattern-edge dependencies are solid, vertex-induced negation
// dependencies dashed. Paste into `dot -Tsvg` to visualize a plan.
func (pl *Plan) DOT() string {
	var b strings.Builder
	b.WriteString("digraph H {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=circle, fontsize=10];\n")
	fmt.Fprintf(&b, "  label=%q;\n", fmt.Sprintf("plan %s / %s", pl.Mode, pl.Variant))

	pos := make([]int, pl.Pattern.NumVertices())
	for i, u := range pl.Order {
		pos[u] = i
	}
	names := pl.Pattern.Names
	for u := 0; u < pl.Pattern.NumVertices(); u++ {
		label := names.VertexName(pl.Pattern.Label(graph.VertexID(u)))
		fmt.Fprintf(&b, "  u%d [label=%q];\n", u,
			fmt.Sprintf("u%d:%s\n#%d", u, label, pos[u]))
	}
	for u := 0; u < pl.DAG.N(); u++ {
		for _, w := range pl.DAG.Out(u) {
			style := "solid"
			if !pl.Pattern.Adjacent(graph.VertexID(u), graph.VertexID(w)) {
				style = "dashed" // negation dependency
			}
			fmt.Fprintf(&b, "  u%d -> u%d [style=%s];\n", u, w, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"csce/internal/dataset"
	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/prefilter"
)

// manglePattern shifts every vertex label, usually making the pattern
// label-impossible; the property gate verifies soundness either way.
func manglePattern(t *testing.T, p *graph.Graph, shift graph.Label) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(p.Directed())
	for v := 0; v < p.NumVertices(); v++ {
		b.AddVertex(p.Label(graph.VertexID(v)) + shift)
	}
	p.Edges(func(v, w graph.VertexID, el graph.EdgeLabel) { b.AddEdge(v, w, el) })
	return b.MustBuild()
}

// TestPrefilterNeverWrong is the issue's property gate: for every corpus
// dataset × K ∈ {1,2,4} × mutation interleavings, a prefilter Reject must
// coincide with an executor count of zero — checked by forcing the scatter
// with SkipPrefilter and comparing, for sampled patterns, their mangled
// variants, and both supported matching variants, after every mutation
// round. Runs under -race via make prefilter-race.
func TestPrefilterNeverWrong(t *testing.T) {
	for _, spec := range exactnessCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, k := range []int{1, 2, 4} {
				k := k
				t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
					g := spec.Generate()
					c := openCoord(t, g, k, SchemeID)

					set := make(edgeSet)
					g.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
						set[canonEdge(g.Directed(), src, dst, el)] = true
					})
					verts := g.NumVertices()
					labels := append([]graph.Label(nil), g.Labels()...)
					rng := rand.New(rand.NewSource(spec.Seed * 101))

					rejects, admits := 0, 0
					stage := func(round int) {
						ref := rebuild(g.Directed(), verts, labels, set)
						patterns := samplePatterns(t, ref, spec.Seed+int64(round))
						for _, p := range patterns {
							patterns = append(patterns, manglePattern(t, p, graph.Label(1+rng.Intn(4))))
							break
						}
						for pi, p := range patterns {
							for _, variant := range []graph.Variant{graph.EdgeInduced, graph.Homomorphic} {
								d := c.PrefilterCheck(p, variant)
								res, err := c.Match(context.Background(), p, MatchOptions{Variant: variant, SkipPrefilter: true})
								if err != nil {
									t.Fatalf("round %d pattern %d: forced match: %v", round, pi, err)
								}
								if !d.Admit {
									rejects++
									if res.Embeddings != 0 {
										t.Fatalf("round %d pattern %d %s: FALSE REJECT by %s (%s) with %d embeddings",
											round, pi, variant, d.Filter, d.Reason(c.Names()), res.Embeddings)
									}
									// The unforced path must agree and skip the scatter.
									gated, err := c.Match(context.Background(), p, MatchOptions{Variant: variant})
									if err != nil {
										t.Fatalf("gated match: %v", err)
									}
									if gated.RejectedBy != d.Filter || gated.Embeddings != 0 || gated.Twigs != 0 {
										t.Fatalf("gated match = %+v, want reject by %s with no decomposition", gated, d.Filter)
									}
								} else {
									admits++
								}
							}
						}
					}

					stage(0)
					for round := 1; round <= 3; round++ {
						var muts []live.Mutation
						for j := 0; j < 6; j++ {
							if rng.Intn(4) == 0 {
								muts = append(muts, live.Mutation{Op: live.OpAddVertex, VertexLabel: graph.Label(rng.Intn(5))})
								continue
							}
							pending := verts + countAdds(muts)
							src := graph.VertexID(rng.Intn(pending))
							dst := graph.VertexID(rng.Intn(pending))
							if src == dst {
								continue
							}
							e := canonEdge(g.Directed(), src, dst, 0)
							cs, cd := graph.VertexID(e[0]), graph.VertexID(e[1])
							if edgeInBatch(muts, cs, cd) {
								continue
							}
							if set[e] {
								muts = append(muts, live.Mutation{Op: live.OpDeleteEdge, Src: cs, Dst: cd})
							} else {
								muts = append(muts, live.Mutation{Op: live.OpInsertEdge, Src: cs, Dst: cd})
							}
						}
						if len(muts) == 0 {
							continue
						}
						if _, err := c.Mutate(context.Background(), muts); err != nil {
							t.Fatalf("round %d mutate: %v", round, err)
						}
						applyRef(set, muts, g.Directed(), &verts, &labels)
						stage(round)
					}
					if rejects == 0 {
						t.Error("property gate never exercised a reject (mangling too weak?)")
					}
					t.Logf("%s k=%d: %d rejects, %d admits", spec.Name, k, rejects, admits)
				})
			}
		})
	}
}

// TestPrefilterConcurrentChecks races admission checks against live
// mutation batches (the signature's RLock path against Batch's write
// path); the race detector is the assertion, plus a quiesced final
// soundness check. Runs under -race via make prefilter-race.
func TestPrefilterConcurrentChecks(t *testing.T) {
	spec := dataset.Spec{Kind: dataset.PPI, Vertices: 160, TargetEdges: 500, VertexLabels: 3, Seed: 51}
	g := spec.Generate()
	c := openCoord(t, g, 4, SchemeID)
	real := samplePatterns(t, g, 51)[0]
	impossible := manglePattern(t, real, 7)

	const writers = 3
	var wg sync.WaitGroup
	errCh := make(chan error, writers+2)
	inserted := make([][]live.Mutation, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			for r := 0; r < 15; r++ {
				var muts []live.Mutation
				for len(muts) < 3 {
					src := graph.VertexID(rng.Intn(g.NumVertices()/writers))*writers + graph.VertexID(w)
					dst := graph.VertexID(rng.Intn(g.NumVertices()/writers))*writers + graph.VertexID(w)
					if src == dst || g.HasEdge(src, dst) || edgeInBatch(muts, src, dst) || edgeInBatch(inserted[w], src, dst) {
						continue
					}
					muts = append(muts, live.Mutation{Op: live.OpInsertEdge, Src: src, Dst: dst})
				}
				if _, err := c.Mutate(context.Background(), muts); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				inserted[w] = append(inserted[w], muts...)
			}
		}(w)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				c.PrefilterCheck(real, graph.EdgeInduced)
				c.PrefilterCheck(impossible, graph.Homomorphic)
				if r%10 == 0 {
					if _, err := c.Match(context.Background(), impossible, MatchOptions{Variant: graph.EdgeInduced}); err != nil {
						errCh <- fmt.Errorf("checker %d: %w", i, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesced: rejects still imply empty, and per-shard signatures still
	// equal a from-scratch rebuild of each shard's published store.
	for _, variant := range []graph.Variant{graph.EdgeInduced, graph.Homomorphic} {
		if d := c.PrefilterCheck(impossible, variant); !d.Admit {
			res, err := c.Match(context.Background(), impossible, MatchOptions{Variant: variant, SkipPrefilter: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Embeddings != 0 {
				t.Fatalf("%s: false reject after concurrent load: %d embeddings", variant, res.Embeddings)
			}
		}
	}
	for i, sh := range c.locals {
		st, _, release := sh.engineSnapshot()
		want, err := prefilter.Build(st)
		release()
		if err != nil {
			t.Fatal(err)
		}
		if got, wantS := sh.g.Prefilter().Dump(), want.Dump(); got != wantS {
			t.Fatalf("shard %d signature diverged after concurrent load:\n--- live\n%s\n--- rebuild\n%s", i, got, wantS)
		}
	}
}

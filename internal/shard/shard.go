// Package shard is the scatter-gather serving subsystem: one logical
// graph partitioned into K shards, each wrapping its own live.Graph (own
// CCSR store, WAL directory, and mutation applier — K shards give K
// concurrent writers), behind a coordinator that decomposes each pattern
// into STwig-style rooted stars, fans them out to every shard, and joins
// the returned partial embeddings on shared query vertices.
//
// Partitioning contract (see ccsr.Partition): every shard keeps the full
// vertex-label array under the global dense IDs, and stores exactly the
// edges incident to at least one vertex it owns — boundary edges are
// replicated into both owners. A shard therefore sees the complete
// adjacency of every vertex it owns.
//
// Exactness argument. Each STwig is a star: every edge is incident to the
// root. The coordinator matches each twig homomorphically on every shard
// and keeps only rows whose root maps to a vertex the shard owns. A twig
// embedding with root image r exists in owner(r)'s store iff it exists in
// the full graph (all its edges touch r, so all are replicated there),
// and r has exactly one owner — so each twig embedding is produced exactly
// once globally, with no duplicates and no misses across boundaries. The
// natural join on shared query vertices then enforces exactly the pattern
// edges (the twigs cover every edge), which is the homomorphism count;
// the injectivity filter applied while emitting turns it into the
// edge-induced count. Vertex-induced matching needs a cross-shard
// NON-adjacency oracle and is rejected (ErrVertexInduced), mirroring the
// live subscription contract.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/plan"
)

// ErrVertexInduced is returned by Coordinator.Match for the vertex-induced
// variant: deciding non-adjacency of two vertices owned by different
// shards needs edges neither shard is required to store.
var ErrVertexInduced = errors.New(
	"shard: vertex-induced matching needs a cross-shard non-adjacency oracle; sharded graphs serve edge-induced and homomorphic queries only")

// ErrPattern wraps pattern-shape failures (empty or disconnected
// patterns) so the HTTP layer can classify them as client errors.
var ErrPattern = errors.New("shard: invalid pattern")

// Scheme selects how vertices map to shards.
type Scheme uint8

const (
	// SchemeID assigns vertex v to shard v mod K.
	SchemeID Scheme = iota
	// SchemeLabel assigns vertex v to shard label(v) mod K, clustering
	// same-labeled vertices (and so whole CCSR clusters) per shard.
	SchemeLabel
)

// String renders the scheme as its flag name.
func (s Scheme) String() string {
	switch s {
	case SchemeID:
		return "id"
	case SchemeLabel:
		return "label"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// ParseScheme parses a scheme flag value.
func ParseScheme(v string) (Scheme, error) {
	switch v {
	case "", "id":
		return SchemeID, nil
	case "label":
		return SchemeLabel, nil
	default:
		return SchemeID, fmt.Errorf("shard: unknown scheme %q (id, label)", v)
	}
}

// assign computes the owner of one vertex under a scheme.
func (s Scheme) assign(v graph.VertexID, l graph.Label, k int) int {
	if s == SchemeLabel {
		return int(l) % k
	}
	return int(v) % k
}

// ownership is the coordinator's vertex→shard map, shared with every
// local shard for root filtering. The slice is append-only: existing
// entries never change, so a snapshot of the header taken under the read
// lock stays valid (and immutable) however long a match holds it.
type ownership struct {
	mu     sync.RWMutex
	owners []uint16
}

func (o *ownership) snapshot() []uint16 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.owners
}

func (o *ownership) len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.owners)
}

func (o *ownership) append(owners ...uint16) {
	o.mu.Lock()
	o.owners = append(o.owners, owners...)
	o.mu.Unlock()
}

// truncate withdraws an optimistic extension after a batch that applied
// nowhere. Only ever called by the vertex-adding writer, which holds the
// coordinator's exclusive vertex lock; concurrent readers hold older
// snapshots whose prefix is untouched.
func (o *ownership) truncate(n int) {
	o.mu.Lock()
	o.owners = o.owners[:n]
	o.mu.Unlock()
}

// Twig is one rooted sub-pattern of a decomposition, shipped to shards.
type Twig struct {
	// Sub is the star pattern; vertex 0 is the root.
	Sub *graph.Graph
	// Root is Sub's root index (always 0; kept explicit for the wire).
	Root graph.VertexID
	// QVerts maps Sub vertex index -> original pattern vertex.
	QVerts []graph.VertexID
}

// PartialRequest asks a shard to match every twig of one query against a
// single pinned snapshot, so all partials from one shard observe one
// epoch.
type PartialRequest struct {
	Twigs []Twig
	// Mode selects the local plan-optimization pipeline.
	Mode plan.Mode
	// Workers sizes the shard-local parallel executor (<=1 serial).
	Workers int
}

// TwigMatches holds one twig's shard-local rows, aligned to Twig.QVerts.
type TwigMatches struct {
	Rows [][]graph.VertexID
}

// PartialResult is one shard's answer: per-twig rows rooted at vertices
// the shard owns, all read at Epoch.
type PartialResult struct {
	Epoch     uint64
	Twigs     []TwigMatches
	Steps     uint64
	Cancelled bool
}

// Stats is one shard's point-in-time state.
type Stats struct {
	ID    int    `json:"id"`
	Epoch uint64 `json:"epoch"`
	// Vertices is the global vertex count (label arrays are replicated).
	Vertices int `json:"vertices"`
	// LocalVertices is how many vertices this shard owns.
	LocalVertices int `json:"local_vertices"`
	// Edges is how many edges the shard stores, replicated boundary edges
	// included.
	Edges int `json:"edges"`
	// BoundaryEdges is how many stored edges cross into another shard.
	BoundaryEdges int `json:"boundary_edges"`
	// Live carries the shard's live-ingest counters (WAL, batches, ...).
	Live live.Stats `json:"live"`
}

// Shard is the narrow coordinator↔shard interface. It is everything the
// coordinator needs, so a future remote shard (its own csced process)
// only has to carry these three calls over the wire.
type Shard interface {
	// MatchPartial matches every requested twig homomorphically against
	// one pinned snapshot, returning only rows rooted at vertices the
	// shard owns.
	MatchPartial(ctx context.Context, req PartialRequest) (PartialResult, error)
	// ApplyBatch applies one mutation sub-batch atomically (per shard).
	ApplyBatch(ctx context.Context, muts []live.Mutation) (live.Commit, error)
	// Stats reports the shard's current state.
	Stats() Stats
}

// localShard is the in-process Shard: a live.Graph over a partitioned
// store, plus the shared ownership map for root filtering.
type localShard struct {
	id  int
	g   *live.Graph
	own *ownership

	localVerts atomic.Int64
	boundary   atomic.Int64
}

// newLocalShard wraps one partition; counters are seeded by the caller.
func newLocalShard(id int, g *live.Graph, own *ownership) *localShard {
	return &localShard{id: id, g: g, own: own}
}

func (sh *localShard) MatchPartial(ctx context.Context, req PartialRequest) (PartialResult, error) {
	snap := sh.g.Acquire()
	defer snap.Release()
	eng := snap.Engine()
	owners := sh.own.snapshot()
	out := PartialResult{Epoch: snap.Epoch(), Twigs: make([]TwigMatches, len(req.Twigs))}
	for ti, tw := range req.Twigs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		var rows [][]graph.VertexID
		root := tw.Root
		res, err := eng.Match(tw.Sub, core.MatchOptions{
			// Twigs always match homomorphically: injectivity is a property
			// of the full embedding and is enforced at the join.
			Variant: graph.Homomorphic,
			Mode:    req.Mode,
			Workers: req.Workers,
			Context: ctx,
			// OnEmbedding is serialized by the executor even with Workers>1.
			OnEmbedding: func(m []graph.VertexID) bool {
				r := m[root]
				if int(r) >= len(owners) || int(owners[r]) != sh.id {
					return true // another shard owns this root
				}
				rows = append(rows, append([]graph.VertexID(nil), m...))
				return true
			},
		})
		if err != nil {
			return out, err
		}
		out.Steps += res.Exec.Steps
		if res.Exec.Cancelled {
			out.Cancelled = true
			return out, nil
		}
		out.Twigs[ti] = TwigMatches{Rows: rows}
	}
	return out, nil
}

func (sh *localShard) ApplyBatch(ctx context.Context, muts []live.Mutation) (live.Commit, error) {
	return sh.g.Mutate(ctx, muts)
}

func (sh *localShard) Stats() Stats {
	snap := sh.g.Acquire()
	defer snap.Release()
	st := snap.Store()
	return Stats{
		ID:            sh.id,
		Epoch:         snap.Epoch(),
		Vertices:      st.NumVertices(),
		LocalVertices: int(sh.localVerts.Load()),
		Edges:         st.NumEdges(),
		BoundaryEdges: int(sh.boundary.Load()),
		Live:          sh.g.Stats(),
	}
}

// seedCounts initializes the maintained gauges from a startup scan.
func (sh *localShard) seedCounts(localVerts, boundary int) {
	sh.localVerts.Store(int64(localVerts))
	sh.boundary.Store(int64(boundary))
}

// store pins the current snapshot's store; the caller must treat it as
// read-only and not hold it across mutations (it is released immediately —
// callers only read immutable label data).
func (sh *localShard) engineSnapshot() (*ccsr.Store, uint64, func()) {
	snap := sh.g.Acquire()
	return snap.Store(), snap.Epoch(), snap.Release
}

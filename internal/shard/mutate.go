package shard

import (
	"context"
	"fmt"

	"csce/internal/graph"
	"csce/internal/live"
)

// Mutation routing. One logical batch is split into per-shard sub-batches:
// vertex adds are broadcast to every shard (label arrays are replicated),
// an edge op goes to its endpoints' owner shard — or BOTH owners when the
// edge crosses shards, keeping boundary replication intact. Sub-batches
// apply in parallel, one writer per shard.
//
// Atomicity is per shard, not global: each shard applies its sub-batch
// atomically (live.Graph rolls back on failure), and on partial failure
// the coordinator restores a consistent global state best-effort — edge
// ops are compensated (inverse ops, reverse order) on the shards that had
// committed them, while vertex adds are re-applied to the shards that
// rolled them back (adds cannot fail), so every shard keeps the identical
// vertex set the ownership map describes. The failed batch's vertices
// therefore REMAIN added even when Mutate returns an error; its edge ops
// do not survive anywhere.

// BatchResult reports one routed mutation batch.
type BatchResult struct {
	// Mutations is the logical batch size (before routing fan-out).
	Mutations int
	// AddedVertices lists the new global vertex IDs, in mutation order.
	AddedVertices []graph.VertexID
	// Epochs is the post-commit epoch vector.
	Epochs []uint64
	// ShardsTouched counts shards that received a non-empty sub-batch.
	ShardsTouched int
}

// crossOp records one cross-shard edge op for boundary-gauge accounting.
type crossOp struct {
	a, b  int
	delta int64
}

// Mutate routes one batch to the shards. Vertex-adding batches serialize
// against each other (they grow the ownership map on every shard in
// lockstep); edge-only batches on disjoint shards run concurrently.
func (c *Coordinator) Mutate(ctx context.Context, muts []live.Mutation) (BatchResult, error) {
	var res BatchResult
	if len(muts) == 0 {
		return res, fmt.Errorf("shard: empty mutation batch")
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	hasAdd := false
	for _, m := range muts {
		if m.Op == live.OpAddVertex {
			hasAdd = true
			break
		}
	}
	if hasAdd {
		c.vmu.Lock()
		defer c.vmu.Unlock()
	} else {
		c.vmu.RLock()
		defer c.vmu.RUnlock()
	}

	base := c.own.len()
	owners := c.own.snapshot()
	batches := make([][]live.Mutation, c.k)
	var newOwners []uint16
	var cross []crossOp

	ownerAt := func(v graph.VertexID) (int, error) {
		switch {
		case int(v) < base:
			return int(owners[v]), nil
		case int(v) < base+len(newOwners):
			return int(newOwners[int(v)-base]), nil
		default:
			return 0, fmt.Errorf("shard: vertex %d out of range (have %d)", v, base+len(newOwners))
		}
	}
	for _, m := range muts {
		switch m.Op {
		case live.OpAddVertex:
			// VertexLabel must be resolved by the caller (the server interns
			// names before routing); SchemeLabel hashes the resolved id.
			id := graph.VertexID(base + len(newOwners))
			newOwners = append(newOwners, uint16(c.scheme.assign(id, m.VertexLabel, c.k)))
			res.AddedVertices = append(res.AddedVertices, id)
			for i := range batches {
				batches[i] = append(batches[i], m)
			}
		case live.OpInsertEdge, live.OpDeleteEdge:
			ou, err := ownerAt(m.Src)
			if err != nil {
				return BatchResult{}, err
			}
			ov, err := ownerAt(m.Dst)
			if err != nil {
				return BatchResult{}, err
			}
			batches[ou] = append(batches[ou], m)
			if ov != ou {
				batches[ov] = append(batches[ov], m)
				delta := int64(1)
				if m.Op == live.OpDeleteEdge {
					delta = -1
				}
				cross = append(cross, crossOp{a: ou, b: ov, delta: delta})
			}
		default:
			return BatchResult{}, fmt.Errorf("shard: unknown mutation op %d", m.Op)
		}
	}

	// Extend ownership BEFORE applying: a reader pinning a post-commit
	// snapshot must find owners for every vertex it can see. On total
	// failure the extension is truncated back; on partial failure the
	// repair below makes it accurate.
	if len(newOwners) > 0 {
		c.own.append(newOwners...)
	}

	touched := make([]int, 0, c.k)
	for i := range batches {
		if len(batches[i]) > 0 {
			touched = append(touched, i)
		}
	}
	res.Mutations = len(muts)
	res.ShardsTouched = len(touched)

	errs := applyParallel(ctx, c.shards, batches, touched)

	firstErr := error(nil)
	succeeded := make([]int, 0, len(touched))
	failed := make([]int, 0, len(touched))
	for _, i := range touched {
		if errs[i] != nil {
			failed = append(failed, i)
			if firstErr == nil {
				firstErr = errs[i]
			}
		} else {
			succeeded = append(succeeded, i)
		}
	}

	if firstErr == nil {
		for _, co := range cross {
			c.locals[co.a].boundary.Add(co.delta)
			c.locals[co.b].boundary.Add(co.delta)
		}
		for _, o := range newOwners {
			c.locals[o].localVerts.Add(1)
		}
		c.mutBatches.Add(1)
		res.Epochs = c.EpochVector()
		return res, nil
	}

	c.mutFailed.Add(1)
	if len(succeeded) == 0 {
		// Nothing applied anywhere: withdraw the optimistic ownership growth.
		if len(newOwners) > 0 {
			c.own.truncate(base)
		}
		return BatchResult{}, fmt.Errorf("shard: batch rejected: %w", firstErr)
	}
	// Partial failure: repair toward "all adds applied, no edge ops". The
	// repair context survives caller cancellation — leaving shards with
	// diverged vertex sets is worse than finishing a few appends.
	rctx := context.WithoutCancel(ctx)
	var repairErrs []error
	if len(newOwners) > 0 {
		adds := make([]live.Mutation, 0, len(newOwners))
		for _, m := range muts {
			if m.Op == live.OpAddVertex {
				adds = append(adds, m)
			}
		}
		for _, i := range failed {
			if _, err := c.shards[i].ApplyBatch(rctx, adds); err != nil {
				repairErrs = append(repairErrs, fmt.Errorf("re-add vertices on shard %d: %w", i, err))
			}
		}
		for _, o := range newOwners {
			c.locals[o].localVerts.Add(1)
		}
	}
	for _, i := range succeeded {
		comp := invertEdgeOps(batches[i])
		if len(comp) == 0 {
			continue
		}
		if _, err := c.shards[i].ApplyBatch(rctx, comp); err != nil {
			repairErrs = append(repairErrs, fmt.Errorf("compensate shard %d: %w", i, err))
		}
	}
	if len(repairErrs) > 0 {
		return BatchResult{}, fmt.Errorf("shard: batch failed (%w) and repair incomplete: %v", firstErr, repairErrs)
	}
	return BatchResult{}, fmt.Errorf("shard: batch rejected, edge ops rolled back (vertex adds kept): %w", firstErr)
}

// applyParallel fans sub-batches out to their shards, one goroutine each.
func applyParallel(ctx context.Context, shards []Shard, batches [][]live.Mutation, touched []int) []error {
	errs := make([]error, len(shards))
	done := make(chan int, len(touched))
	for _, i := range touched {
		go func(i int) {
			_, errs[i] = shards[i].ApplyBatch(ctx, batches[i])
			done <- i
		}(i)
	}
	for range touched {
		<-done
	}
	return errs
}

// invertEdgeOps builds the compensation batch for one shard: the inverse
// of each applied edge op, in reverse order. Vertex adds are kept.
func invertEdgeOps(batch []live.Mutation) []live.Mutation {
	var out []live.Mutation
	for i := len(batch) - 1; i >= 0; i-- {
		m := batch[i]
		switch m.Op {
		case live.OpInsertEdge:
			m.Op = live.OpDeleteEdge
		case live.OpDeleteEdge:
			m.Op = live.OpInsertEdge
		default:
			continue
		}
		out = append(out, m)
	}
	return out
}

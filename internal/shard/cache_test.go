package shard

import (
	"context"
	"testing"

	"csce/internal/dataset"
	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/plan"
)

func pathPattern() *graph.Graph {
	b := graph.NewBuilder(false)
	b.AddVertices(3, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	return b.MustBuild()
}

// TestDecompKeyCoversEveryEpoch is the satellite-5 unit regression: the
// cache key must change when ANY shard's epoch moves, not just shard 0's.
func TestDecompKeyCoversEveryEpoch(t *testing.T) {
	p := pathPattern()
	base := decompKey(graph.EdgeInduced, plan.ModeCSCE, []uint64{3, 7, 1, 4}, p)
	for i := 0; i < 4; i++ {
		epochs := []uint64{3, 7, 1, 4}
		epochs[i]++
		if decompKey(graph.EdgeInduced, plan.ModeCSCE, epochs, p) == base {
			t.Fatalf("bumping shard %d epoch did not change the key", i)
		}
	}
	if decompKey(graph.Homomorphic, plan.ModeCSCE, []uint64{3, 7, 1, 4}, p) == base {
		t.Fatal("variant not in key")
	}
	if decompKey(graph.EdgeInduced, plan.ModeRI, []uint64{3, 7, 1, 4}, p) == base {
		t.Fatal("mode not in key")
	}
	if decompKey(graph.EdgeInduced, plan.ModeCSCE, []uint64{3, 7, 1, 4}, pathPattern()) != base {
		t.Fatal("identical pattern must produce the same key")
	}
	// A vector that only REORDERS the same epochs must still differ.
	if decompKey(graph.EdgeInduced, plan.ModeCSCE, []uint64{7, 3, 1, 4}, p) == base {
		t.Fatal("epoch positions not distinguished")
	}
}

// TestDecompCacheInvalidationOnAnyShard is the end-to-end regression: a
// mutation committed on a NON-zero shard must miss the decomposition
// cache on the next match. A key carrying only one shard's epoch would
// keep serving the stale decomposition here.
func TestDecompCacheInvalidationOnAnyShard(t *testing.T) {
	g := dataset.Spec{Kind: dataset.PowerLaw, Vertices: 120, TargetEdges: 340, VertexLabels: 3, Seed: 61}.Generate()
	c := openCoord(t, g, 4, SchemeID)
	p := samplePatterns(t, g, 61)[0]

	res, err := c.Match(context.Background(), p, MatchOptions{Variant: graph.Homomorphic})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecompCacheHit {
		t.Fatal("first match cannot hit the cache")
	}
	res, err = c.Match(context.Background(), p, MatchOptions{Variant: graph.Homomorphic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DecompCacheHit {
		t.Fatal("second identical match should hit the cache")
	}

	// Mutate an edge strictly inside shard 3 (SchemeID: both endpoints
	// ≡ 3 mod 4); shard 0's epoch stays put.
	var src, dst graph.VertexID = 3, 7
	for g.HasEdge(src, dst) {
		dst += 4
	}
	before := c.EpochVector()
	if _, err := c.Mutate(context.Background(), []live.Mutation{{Op: live.OpInsertEdge, Src: src, Dst: dst}}); err != nil {
		t.Fatal(err)
	}
	after := c.EpochVector()
	if after[0] != before[0] {
		t.Fatalf("shard 0 epoch moved (%d -> %d); the regression needs a non-zero shard", before[0], after[0])
	}
	if after[3] == before[3] {
		t.Fatal("shard 3 epoch did not move")
	}

	res, err = c.Match(context.Background(), p, MatchOptions{Variant: graph.Homomorphic})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecompCacheHit {
		t.Fatal("match after a shard-3 commit must miss: the key must cover the whole epoch vector")
	}
}

func TestDecompCacheLRUEviction(t *testing.T) {
	cch := newDecompCache(2)
	d := &Decomposition{}
	cch.put("a", d)
	cch.put("b", d)
	if _, ok := cch.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	cch.put("c", d) // evicts b (a was just touched)
	if _, ok := cch.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := cch.get("a"); !ok {
		t.Fatal("a lost")
	}
	if cch.len() != 2 {
		t.Fatalf("len %d, want 2", cch.len())
	}
	disabled := newDecompCache(0)
	disabled.put("x", d)
	if _, ok := disabled.get("x"); ok {
		t.Fatal("disabled cache should not store")
	}
}

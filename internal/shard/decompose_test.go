package shard

import (
	"math/rand"
	"testing"

	"csce/internal/dataset"
	"csce/internal/graph"
)

func uniformFreq(graph.Label) int { return 1 }

// checkCover asserts the twigs cover every pattern edge exactly once, are
// stars around their roots, and (after the first) root at already-bound
// pattern vertices.
func checkCover(t *testing.T, p *graph.Graph, dec *Decomposition) {
	t.Helper()
	type pe struct {
		src, dst graph.VertexID
		label    graph.EdgeLabel
	}
	canon := func(src, dst graph.VertexID, el graph.EdgeLabel) pe {
		if !p.Directed() && dst < src {
			src, dst = dst, src
		}
		return pe{src, dst, el}
	}
	covered := make(map[pe]int)
	bound := make(map[graph.VertexID]bool)
	for ti, tw := range dec.Twigs {
		if tw.Root != 0 {
			t.Fatalf("twig %d root %d, want 0", ti, tw.Root)
		}
		if len(tw.QVerts) != tw.Sub.NumVertices() {
			t.Fatalf("twig %d: %d qverts for %d sub vertices", ti, len(tw.QVerts), tw.Sub.NumVertices())
		}
		rootQ := tw.QVerts[0]
		if ti > 0 && !bound[rootQ] {
			t.Fatalf("twig %d root %d not bound by earlier twigs", ti, rootQ)
		}
		for i, qv := range tw.QVerts {
			if tw.Sub.Label(graph.VertexID(i)) != p.Label(qv) {
				t.Fatalf("twig %d vertex %d label mismatch", ti, i)
			}
		}
		tw.Sub.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
			if src != 0 && dst != 0 {
				t.Fatalf("twig %d has non-star edge %d-%d", ti, src, dst)
			}
			covered[canon(tw.QVerts[src], tw.QVerts[dst], el)]++
		})
		for _, qv := range tw.QVerts {
			bound[qv] = true
		}
	}
	total := 0
	p.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		total++
		if covered[canon(src, dst, el)] != 1 {
			t.Fatalf("pattern edge %d-%d covered %d times", src, dst, covered[canon(src, dst, el)])
		}
	})
	distinct := 0
	for _, n := range covered {
		distinct += n
	}
	if distinct != total {
		t.Fatalf("cover has %d edges, pattern has %d", distinct, total)
	}
}

func TestDecomposeTriangle(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertices(3, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	p := b.MustBuild()
	dec, err := Decompose(p, uniformFreq)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, p, dec)
	if len(dec.Twigs) != 2 {
		t.Fatalf("triangle decomposed into %d twigs, want 2", len(dec.Twigs))
	}
	// First twig should take the max-degree root's full star (2 edges).
	if dec.Twigs[0].Sub.NumEdges() != 2 || dec.Twigs[1].Sub.NumEdges() != 1 {
		t.Fatalf("twig sizes %d,%d; want 2,1",
			dec.Twigs[0].Sub.NumEdges(), dec.Twigs[1].Sub.NumEdges())
	}
}

func TestDecomposePrefersRareLabels(t *testing.T) {
	// Path a-b with freq(a)=1000, freq(b)=1: root must be the b vertex.
	b := graph.NewBuilder(false)
	b.AddVertex(0)
	b.AddVertex(1)
	b.AddEdge(0, 1, 0)
	p := b.MustBuild()
	freq := func(l graph.Label) int {
		if l == 0 {
			return 1000
		}
		return 1
	}
	dec, err := Decompose(p, freq)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Twigs[0].QVerts[0]; got != 1 {
		t.Fatalf("root pattern vertex %d, want the rare-labeled 1", got)
	}
}

func TestDecomposeSingleVertex(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertex(3)
	p := b.MustBuild()
	dec, err := Decompose(p, uniformFreq)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Twigs) != 1 || dec.Twigs[0].Sub.NumVertices() != 1 {
		t.Fatalf("unexpected decomposition %+v", dec)
	}
}

func TestDecomposeRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertices(4, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(2, 3, 0)
	p := b.MustBuild()
	if _, err := Decompose(p, uniformFreq); err == nil {
		t.Fatal("disconnected pattern should be rejected")
	}
	b2 := graph.NewBuilder(false)
	b2.AddVertices(2, 0)
	if _, err := Decompose(b2.MustBuild(), uniformFreq); err == nil {
		t.Fatal("edgeless multi-vertex pattern should be rejected")
	}
}

func TestDecomposeSampledPatterns(t *testing.T) {
	g := dataset.Spec{Kind: dataset.PPI, Vertices: 400, TargetEdges: 1400, VertexLabels: 6, Seed: 7}.Generate()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		size := 3 + rng.Intn(5)
		p, err := dataset.SamplePattern(g, size, i%2 == 0, rng)
		if err != nil {
			continue
		}
		dec, err := Decompose(p, func(l graph.Label) int { return g.LabelFrequency(l) })
		if err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
		checkCover(t, p, dec)
	}
}

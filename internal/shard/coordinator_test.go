package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/dataset"
	"csce/internal/graph"
	"csce/internal/live"
)

func openCoord(t *testing.T, g *graph.Graph, k int, scheme Scheme) *Coordinator {
	t.Helper()
	c, err := Open("test", ccsr.Build(g), Options{K: k, Scheme: scheme})
	if err != nil {
		t.Fatalf("Open k=%d: %v", k, err)
	}
	t.Cleanup(c.Close)
	return c
}

func singleCount(t *testing.T, g *graph.Graph, p *graph.Graph, variant graph.Variant) uint64 {
	t.Helper()
	res, err := core.FromStore(ccsr.Build(g)).Match(p, core.MatchOptions{Variant: variant})
	if err != nil {
		t.Fatalf("single-store match: %v", err)
	}
	return res.Embeddings
}

func shardedCount(t *testing.T, c *Coordinator, p *graph.Graph, opts MatchOptions) uint64 {
	t.Helper()
	res, err := c.Match(context.Background(), p, opts)
	if err != nil {
		t.Fatalf("sharded match: %v", err)
	}
	if res.Cancelled {
		t.Fatal("sharded match cancelled unexpectedly")
	}
	return res.Embeddings
}

// exactnessCorpus is the scaled-down dataset sweep the exactness gate runs
// over: every generator family, directed and undirected, labeled and not.
func exactnessCorpus() []dataset.Spec {
	return []dataset.Spec{
		{Name: "ppi", Kind: dataset.PPI, Vertices: 220, TargetEdges: 700, VertexLabels: 5, Seed: 21},
		{Name: "road", Kind: dataset.Road, Vertices: 196, TargetEdges: 380, Seed: 22},
		{Name: "powerlaw", Kind: dataset.PowerLaw, Vertices: 240, TargetEdges: 720, VertexLabels: 4, EdgeLabels: 2, Seed: 23},
		{Name: "cite", Kind: dataset.PowerLaw, Directed: true, Vertices: 200, TargetEdges: 560, VertexLabels: 6, Seed: 24},
		{Name: "community", Kind: dataset.Community, Vertices: 180, TargetEdges: 600, VertexLabels: 3,
			Communities: 4, IntraProb: 0.12, InterDegree: 1.5, Seed: 25},
	}
}

func samplePatterns(t *testing.T, g *graph.Graph, seed int64) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []*graph.Graph
	for _, cfg := range []struct {
		size  int
		dense bool
	}{{3, false}, {4, true}, {5, false}} {
		p, err := dataset.SamplePattern(g, cfg.size, cfg.dense, rng)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		t.Fatal("no patterns sampled")
	}
	return out
}

// TestExactnessCorpus is the gate the issue requires: sharded counts equal
// single-store counts for every corpus dataset, K ∈ {1,2,4,7}, both
// partition schemes, edge-induced and homomorphic, serial and parallel
// local executors.
func TestExactnessCorpus(t *testing.T) {
	for _, spec := range exactnessCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate()
			patterns := samplePatterns(t, g, spec.Seed)
			type ref struct {
				edge, homo uint64
			}
			refs := make([]ref, len(patterns))
			for i, p := range patterns {
				refs[i] = ref{
					edge: singleCount(t, g, p, graph.EdgeInduced),
					homo: singleCount(t, g, p, graph.Homomorphic),
				}
			}
			for _, k := range []int{1, 2, 4, 7} {
				for _, scheme := range []Scheme{SchemeID, SchemeLabel} {
					c := openCoord(t, g, k, scheme)
					for i, p := range patterns {
						workers := 0
						if i == 0 {
							workers = 4
						}
						if got := shardedCount(t, c, p, MatchOptions{Variant: graph.EdgeInduced, Workers: workers}); got != refs[i].edge {
							t.Errorf("k=%d scheme=%s pattern=%d edge-induced: sharded %d, single %d",
								k, scheme, i, got, refs[i].edge)
						}
						if got := shardedCount(t, c, p, MatchOptions{Variant: graph.Homomorphic}); got != refs[i].homo {
							t.Errorf("k=%d scheme=%s pattern=%d homomorphic: sharded %d, single %d",
								k, scheme, i, got, refs[i].homo)
						}
					}
					c.Close()
				}
			}
		})
	}
}

// TestBoundaryExactlyOnce pins the cross-shard dedup property on a
// handcrafted graph where every embedding spans both shards: each one must
// surface exactly once, under serial and parallel local executors.
func TestBoundaryExactlyOnce(t *testing.T) {
	// K=2, SchemeID: evens on shard 0, odds on shard 1. Two triangles
	// sharing edge 1-2, plus a pendant: every triangle crosses shards.
	b := graph.NewBuilder(false)
	b.AddVertices(5, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	b.AddEdge(2, 3, 0)
	b.AddEdge(1, 3, 0)
	b.AddEdge(3, 4, 0)
	g := b.MustBuild()

	tri := graph.NewBuilder(false)
	tri.AddVertices(3, 0)
	tri.AddEdge(0, 1, 0)
	tri.AddEdge(1, 2, 0)
	tri.AddEdge(0, 2, 0)
	p := tri.MustBuild()

	path := graph.NewBuilder(false)
	path.AddVertices(4, 0)
	path.AddEdge(0, 1, 0)
	path.AddEdge(1, 2, 0)
	path.AddEdge(2, 3, 0)
	p4 := path.MustBuild()

	for _, workers := range []int{0, 4} {
		c := openCoord(t, g, 2, SchemeID)
		for _, tc := range []struct {
			name    string
			pattern *graph.Graph
		}{{"triangle", p}, {"path4", p4}} {
			want := singleCount(t, g, tc.pattern, graph.EdgeInduced)
			seen := make(map[string]int)
			res, err := c.Match(context.Background(), tc.pattern, MatchOptions{
				Variant: graph.EdgeInduced,
				Workers: workers,
				OnEmbedding: func(m []graph.VertexID) bool {
					seen[fmt.Sprint(m)]++
					return true
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Embeddings != want {
				t.Fatalf("workers=%d %s: %d embeddings, want %d", workers, tc.name, res.Embeddings, want)
			}
			if uint64(len(seen)) != want {
				t.Fatalf("workers=%d %s: %d distinct embeddings, want %d", workers, tc.name, len(seen), want)
			}
			for m, n := range seen {
				if n != 1 {
					t.Fatalf("workers=%d %s: embedding %s emitted %d times", workers, tc.name, m, n)
				}
			}
		}
		c.Close()
	}
}

func TestVertexInducedRejected(t *testing.T) {
	g := dataset.Spec{Kind: dataset.Road, Vertices: 25, TargetEdges: 40, Seed: 3}.Generate()
	c := openCoord(t, g, 2, SchemeID)
	b := graph.NewBuilder(false)
	b.AddVertices(2, 0)
	b.AddEdge(0, 1, 0)
	if _, err := c.Match(context.Background(), b.MustBuild(), MatchOptions{Variant: graph.VertexInduced}); err != ErrVertexInduced {
		t.Fatalf("got %v, want ErrVertexInduced", err)
	}
}

func TestMatchLimit(t *testing.T) {
	g := dataset.Spec{Kind: dataset.PPI, Vertices: 200, TargetEdges: 640, VertexLabels: 3, Seed: 9}.Generate()
	c := openCoord(t, g, 4, SchemeID)
	p := samplePatterns(t, g, 9)[0]
	total := singleCount(t, g, p, graph.Homomorphic)
	if total < 10 {
		t.Skipf("pattern too selective (%d embeddings)", total)
	}
	res, err := c.Match(context.Background(), p, MatchOptions{Variant: graph.Homomorphic, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 5 || !res.LimitHit {
		t.Fatalf("limit run: embeddings=%d limitHit=%v", res.Embeddings, res.LimitHit)
	}
}

func TestMatchCancelled(t *testing.T) {
	g := dataset.Spec{Kind: dataset.Road, Vertices: 49, TargetEdges: 90, Seed: 4}.Generate()
	c := openCoord(t, g, 2, SchemeID)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := graph.NewBuilder(false)
	b.AddVertices(2, 0)
	b.AddEdge(0, 1, 0)
	if _, err := c.Match(ctx, b.MustBuild(), MatchOptions{Variant: graph.Homomorphic}); err == nil {
		t.Fatal("pre-cancelled context should fail fast")
	}
}

// referenceApply mirrors a mutation batch onto a plain graph builder-less
// model so mutated sharded counts can be checked against a rebuilt graph.
type edgeSet map[[3]uint32]bool

func applyRef(set edgeSet, muts []live.Mutation, directed bool, verts *int, labels *[]graph.Label) {
	for _, m := range muts {
		switch m.Op {
		case live.OpAddVertex:
			*verts++
			*labels = append(*labels, m.VertexLabel)
		case live.OpInsertEdge:
			set[canonEdge(directed, m.Src, m.Dst, m.EdgeLabel)] = true
		case live.OpDeleteEdge:
			delete(set, canonEdge(directed, m.Src, m.Dst, m.EdgeLabel))
		}
	}
}

func canonEdge(directed bool, src, dst graph.VertexID, el graph.EdgeLabel) [3]uint32 {
	if !directed && dst < src {
		src, dst = dst, src
	}
	return [3]uint32{uint32(src), uint32(dst), uint32(el)}
}

func rebuild(directed bool, verts int, labels []graph.Label, set edgeSet) *graph.Graph {
	b := graph.NewBuilder(directed)
	for _, l := range labels {
		b.AddVertex(l)
	}
	_ = verts
	for e := range set {
		b.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.EdgeLabel(e[2]))
	}
	return b.MustBuild()
}

// TestMutateEquivalence routes batches (vertex adds, cross- and
// intra-shard edge inserts and deletes) through the coordinator and checks
// counts and counters against a freshly rebuilt single store.
func TestMutateEquivalence(t *testing.T) {
	spec := dataset.Spec{Kind: dataset.PowerLaw, Vertices: 150, TargetEdges: 420, VertexLabels: 4, Seed: 31}
	g := spec.Generate()
	c := openCoord(t, g, 4, SchemeID)

	set := make(edgeSet)
	g.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		set[canonEdge(g.Directed(), src, dst, el)] = true
	})
	verts := g.NumVertices()
	labels := append([]graph.Label(nil), g.Labels()...)

	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 12; round++ {
		var muts []live.Mutation
		n := 1 + rng.Intn(5)
		for j := 0; j < n; j++ {
			if rng.Intn(4) == 0 {
				muts = append(muts, live.Mutation{Op: live.OpAddVertex, VertexLabel: graph.Label(rng.Intn(4))})
				continue
			}
			pending := verts + countAdds(muts)
			src := graph.VertexID(rng.Intn(pending))
			dst := graph.VertexID(rng.Intn(pending))
			if src == dst {
				continue
			}
			e := canonEdge(false, src, dst, 0)
			cs, cd := graph.VertexID(e[0]), graph.VertexID(e[1])
			if set[e] && !edgeInBatch(muts, cs, cd) {
				muts = append(muts, live.Mutation{Op: live.OpDeleteEdge, Src: cs, Dst: cd})
			} else if !set[e] && !edgeInBatch(muts, cs, cd) {
				muts = append(muts, live.Mutation{Op: live.OpInsertEdge, Src: cs, Dst: cd})
			}
		}
		if len(muts) == 0 {
			continue
		}
		if _, err := c.Mutate(context.Background(), muts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		applyRef(set, muts, false, &verts, &labels)
	}

	ref := rebuild(false, verts, labels, set)
	cv, ce := c.Counts()
	if cv != ref.NumVertices() || ce != ref.NumEdges() {
		t.Fatalf("counts after mutations: coordinator %d/%d, reference %d/%d",
			cv, ce, ref.NumVertices(), ref.NumEdges())
	}
	for i, p := range samplePatterns(t, ref, 32) {
		want := singleCount(t, ref, p, graph.EdgeInduced)
		if got := shardedCount(t, c, p, MatchOptions{Variant: graph.EdgeInduced}); got != want {
			t.Fatalf("pattern %d after mutations: sharded %d, single %d", i, got, want)
		}
	}
	// Boundary gauges must equal a fresh scan.
	ownersNow := c.own.snapshot()
	for i, sh := range c.locals {
		st, _, release := sh.engineSnapshot()
		want := 0
		err := st.EdgesAll(func(src, dst graph.VertexID, _ graph.EdgeLabel) {
			if ownersNow[src] != ownersNow[dst] {
				want++
			}
		})
		release()
		if err != nil {
			t.Fatal(err)
		}
		if got := int(sh.boundary.Load()); got != want {
			t.Fatalf("shard %d boundary gauge %d, scan %d", i, got, want)
		}
	}
}

func countAdds(muts []live.Mutation) int {
	n := 0
	for _, m := range muts {
		if m.Op == live.OpAddVertex {
			n++
		}
	}
	return n
}

func edgeInBatch(muts []live.Mutation, src, dst graph.VertexID) bool {
	for _, m := range muts {
		if m.Op == live.OpAddVertex {
			continue
		}
		if (m.Src == src && m.Dst == dst) || (m.Src == dst && m.Dst == src) {
			return true
		}
	}
	return false
}

// TestConcurrentMutateAndMatch exercises the issue's concurrency gate:
// edge-only batches on different shards run concurrently with matches;
// afterwards sharded counts still equal a single-store rebuild. Run under
// -race via make shard-race.
func TestConcurrentMutateAndMatch(t *testing.T) {
	spec := dataset.Spec{Kind: dataset.PPI, Vertices: 160, TargetEdges: 500, VertexLabels: 3, Seed: 41}
	g := spec.Generate()
	c := openCoord(t, g, 4, SchemeID)
	p := samplePatterns(t, g, 41)[0]

	// Each writer owns a disjoint stripe of fresh edges between vertices of
	// one residue class (intra-shard under SchemeID), so batches land on
	// different shards and never conflict.
	const writers = 4
	const rounds = 20
	var wg sync.WaitGroup
	errCh := make(chan error, writers+1)
	inserted := make([][]live.Mutation, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for r := 0; r < rounds; r++ {
				var muts []live.Mutation
				for len(muts) < 3 {
					src := graph.VertexID(rng.Intn(g.NumVertices()/writers))*writers + graph.VertexID(w)
					dst := graph.VertexID(rng.Intn(g.NumVertices()/writers))*writers + graph.VertexID(w)
					if src == dst || g.HasEdge(src, dst) || edgeInBatch(muts, src, dst) || edgeInBatch(inserted[w], src, dst) {
						continue
					}
					muts = append(muts, live.Mutation{Op: live.OpInsertEdge, Src: src, Dst: dst})
				}
				if _, err := c.Mutate(context.Background(), muts); err != nil {
					errCh <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
				inserted[w] = append(inserted[w], muts...)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.Match(context.Background(), p, MatchOptions{Variant: graph.Homomorphic, Workers: 2}); err != nil {
				errCh <- fmt.Errorf("reader: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	set := make(edgeSet)
	g.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		set[canonEdge(false, src, dst, el)] = true
	})
	verts := g.NumVertices()
	labels := append([]graph.Label(nil), g.Labels()...)
	for _, muts := range inserted {
		applyRef(set, muts, false, &verts, &labels)
	}
	ref := rebuild(false, verts, labels, set)
	want := singleCount(t, ref, p, graph.Homomorphic)
	if got := shardedCount(t, c, p, MatchOptions{Variant: graph.Homomorphic}); got != want {
		t.Fatalf("after concurrent mutations: sharded %d, single %d", got, want)
	}
}

// TestMutateRejectedBatchRollsBack checks the compensation path: a batch
// whose later op fails must leave edge state untouched on every shard.
func TestMutateRejectedBatchRollsBack(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertices(8, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(2, 3, 0)
	g := b.MustBuild()
	c := openCoord(t, g, 2, SchemeID)
	_, beforeEdges := c.Counts()

	// 4-5 is new (crosses shards), then inserting the existing 0-1 fails.
	_, err := c.Mutate(context.Background(), []live.Mutation{
		{Op: live.OpInsertEdge, Src: 4, Dst: 5},
		{Op: live.OpInsertEdge, Src: 0, Dst: 1},
	})
	if err == nil {
		t.Fatal("duplicate insert should fail the batch")
	}
	if _, after := c.Counts(); after != beforeEdges {
		t.Fatalf("edge count changed across rejected batch: %d -> %d", beforeEdges, after)
	}
	// The edge 4-5 must not exist on either shard: inserting it again
	// succeeds only if the compensation removed it everywhere.
	if _, err := c.Mutate(context.Background(), []live.Mutation{{Op: live.OpInsertEdge, Src: 4, Dst: 5}}); err != nil {
		t.Fatalf("re-insert after rollback: %v", err)
	}
}

// TestMutateOutOfRangeVertex must fail before touching any shard.
func TestMutateOutOfRangeVertex(t *testing.T) {
	g := dataset.Spec{Kind: dataset.Road, Vertices: 25, TargetEdges: 40, Seed: 5}.Generate()
	c := openCoord(t, g, 2, SchemeID)
	epochs := c.EpochVector()
	if _, err := c.Mutate(context.Background(), []live.Mutation{
		{Op: live.OpInsertEdge, Src: 0, Dst: graph.VertexID(g.NumVertices() + 10)},
	}); err == nil {
		t.Fatal("out-of-range endpoint should be rejected")
	}
	for i, e := range c.EpochVector() {
		if e != epochs[i] {
			t.Fatalf("shard %d epoch moved on rejected batch", i)
		}
	}
}

// TestWALRecovery reopens a sharded graph from its per-shard WAL
// directories and checks the recovered state still matches exactly.
func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := dataset.Spec{Kind: dataset.PowerLaw, Vertices: 120, TargetEdges: 300, VertexLabels: 3, Seed: 51}
	g := spec.Generate()
	base := ccsr.Build(g)

	c, err := Open("waltest", base, Options{K: 3, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	muts := []live.Mutation{
		{Op: live.OpAddVertex, VertexLabel: 1},
		{Op: live.OpAddVertex, VertexLabel: 2},
		{Op: live.OpInsertEdge, Src: 0, Dst: graph.VertexID(g.NumVertices())},
		{Op: live.OpInsertEdge, Src: graph.VertexID(g.NumVertices()), Dst: graph.VertexID(g.NumVertices() + 1)},
	}
	if _, err := c.Mutate(context.Background(), muts); err != nil {
		t.Fatal(err)
	}
	p := samplePatterns(t, g, 51)[0]
	want := shardedCount(t, c, p, MatchOptions{Variant: graph.EdgeInduced})
	wantV, wantE := c.Counts()
	c.Close()

	r, err := Open("waltest", base, Options{K: 3, WALDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	gotV, gotE := r.Counts()
	if gotV != wantV || gotE != wantE {
		t.Fatalf("recovered counts %d/%d, want %d/%d", gotV, gotE, wantV, wantE)
	}
	if got := shardedCount(t, r, p, MatchOptions{Variant: graph.EdgeInduced}); got != want {
		t.Fatalf("recovered match count %d, want %d", got, want)
	}
}

package shard

import (
	"context"
	"sort"

	"csce/internal/graph"
)

// Cross-shard join: the coordinator hash-joins the per-twig partial
// embeddings on their shared query vertices, smallest relation first, and
// streams fully joined rows through the caller's emit hook. Intermediate
// joins materialize; the LAST join streams row by row, so Limit stops the
// work (not just the output) on the final, usually largest, step.

// partialRel is one twig's rows as a relation over pattern vertices.
type partialRel struct {
	cols []graph.VertexID   // pattern vertices, in row column order
	rows [][]graph.VertexID // each row aligned to cols
}

// joinStats reports what one join pass did.
type joinStats struct {
	Emitted uint64
	// Candidates counts hash-bucket entries probed across all join steps —
	// the join-explosion signal exported as csce_shard_join_candidates.
	Candidates uint64
	LimitHit   bool
	Cancelled  bool
}

// joinPartials joins the twig relations and emits full embeddings indexed
// by pattern vertex. emit returning false stops the enumeration (limit
// semantics are the caller's: it usually counts and returns false at its
// cap). injective enforces distinct data vertices per embedding
// (edge-induced); the check also prunes intermediate rows, since no
// extension of a non-injective row can become injective.
func joinPartials(
	ctx context.Context,
	numPatternVerts int,
	rels []partialRel,
	injective bool,
	emit func(mapping []graph.VertexID) bool,
) joinStats {
	var st joinStats
	if len(rels) == 0 {
		return st
	}
	order := planJoinOrder(rels)
	acc := rels[order[0]]
	if injective {
		acc = filterInjective(acc)
	}

	// Intermediate joins: all but the final relation materialize.
	for i := 1; i < len(rels)-1; i++ {
		if pollCancelled(ctx) {
			st.Cancelled = true
			return st
		}
		acc = hashJoin(acc, rels[order[i]], injective, &st.Candidates)
		if len(acc.rows) == 0 {
			return st
		}
	}

	// Final step streams. With a single relation the "join" is an identity
	// pass over its rows.
	mapping := make([]graph.VertexID, numPatternVerts)
	emitRow := func(cols []graph.VertexID, row []graph.VertexID) bool {
		for i, qv := range cols {
			mapping[qv] = row[i]
		}
		if !emit(mapping) {
			st.LimitHit = true
			return false
		}
		st.Emitted++
		return true
	}
	if len(rels) == 1 {
		for ri, row := range acc.rows {
			if ri%1024 == 0 && pollCancelled(ctx) {
				st.Cancelled = true
				return st
			}
			if !emitRow(acc.cols, row) {
				return st
			}
		}
		return st
	}

	last := rels[order[len(rels)-1]]
	shared, lastNew := splitColumns(acc.cols, last.cols)
	idx := buildHashIndex(last, shared)
	outCols := append(append([]graph.VertexID(nil), acc.cols...), lastNew.cols...)
	key := make([]byte, 0, 4*len(shared))
	for ri, row := range acc.rows {
		if ri%1024 == 0 && pollCancelled(ctx) {
			st.Cancelled = true
			return st
		}
		key = appendJoinKey(key[:0], acc.cols, row, shared)
		bucket := idx[string(key)]
		st.Candidates += uint64(len(bucket))
		for _, other := range bucket {
			merged := mergeRow(row, other, lastNew.idx)
			if injective && !distinctRow(merged) {
				continue
			}
			if !emitRow(outCols, merged) {
				return st
			}
		}
	}
	return st
}

// planJoinOrder orders relations smallest first, then greedily appends the
// smallest relation sharing a column with the accumulated set (connected
// patterns always have one; a disconnected remainder falls back to any
// smallest, which degrades to a cartesian join but stays correct).
func planJoinOrder(rels []partialRel) []int {
	n := len(rels)
	order := make([]int, 0, n)
	used := make([]bool, n)
	seen := make(map[graph.VertexID]bool)

	pick := func(requireShared bool) int {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if requireShared {
				sharesAny := false
				for _, c := range rels[i].cols {
					if seen[c] {
						sharesAny = true
						break
					}
				}
				if !sharesAny {
					continue
				}
			}
			if best < 0 || len(rels[i].rows) < len(rels[best].rows) {
				best = i
			}
		}
		return best
	}
	for len(order) < n {
		i := pick(len(order) > 0)
		if i < 0 {
			i = pick(false)
		}
		used[i] = true
		order = append(order, i)
		for _, c := range rels[i].cols {
			seen[c] = true
		}
	}
	return order
}

// sharedCol pairs a shared pattern vertex with its index in each side.
type sharedCol struct {
	left, right int
}

// newCols lists the right side's novel columns and their right indices.
type newCols struct {
	cols []graph.VertexID
	idx  []int
}

// splitColumns computes the shared and right-only columns of a join.
func splitColumns(left, right []graph.VertexID) ([]sharedCol, newCols) {
	leftPos := make(map[graph.VertexID]int, len(left))
	for i, c := range left {
		leftPos[c] = i
	}
	var shared []sharedCol
	var nc newCols
	for j, c := range right {
		if i, ok := leftPos[c]; ok {
			shared = append(shared, sharedCol{left: i, right: j})
		} else {
			nc.cols = append(nc.cols, c)
			nc.idx = append(nc.idx, j)
		}
	}
	// Deterministic key layout: shared columns in right-index order already.
	sort.Slice(shared, func(a, b int) bool { return shared[a].right < shared[b].right })
	return shared, nc
}

// buildHashIndex buckets the right relation by its shared-column values.
func buildHashIndex(right partialRel, shared []sharedCol) map[string][][]graph.VertexID {
	idx := make(map[string][][]graph.VertexID, len(right.rows))
	key := make([]byte, 0, 4*len(shared))
	for _, row := range right.rows {
		key = key[:0]
		for _, sc := range shared {
			key = appendVert(key, row[sc.right])
		}
		idx[string(key)] = append(idx[string(key)], row)
	}
	return idx
}

// appendJoinKey encodes the left row's shared-column values in the same
// layout buildHashIndex used.
//
//csce:hotpath once per probe row; writes into the caller's reused buffer
func appendJoinKey(key []byte, _ []graph.VertexID, row []graph.VertexID, shared []sharedCol) []byte {
	for _, sc := range shared {
		key = appendVert(key, row[sc.left])
	}
	return key
}

//csce:hotpath the key-encoding primitive under both index build and probe
func appendVert(b []byte, v graph.VertexID) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// mergeRow extends a left row with the right row's novel columns.
//
//csce:hotpath once per joined row pair; its output make is pinned in the
// budget because each merged row must own distinct backing memory
func mergeRow(left, right []graph.VertexID, rightNewIdx []int) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(left)+len(rightNewIdx))
	out = append(out, left...)
	for _, j := range rightNewIdx {
		out = append(out, right[j])
	}
	return out
}

// hashJoin materializes one intermediate join step.
//
//csce:hotpath the cross-shard join inner loop; per-step setup allocations
// are pinned, per-row work must reuse the probe key buffer
func hashJoin(left, right partialRel, injective bool, candidates *uint64) partialRel {
	shared, nc := splitColumns(left.cols, right.cols)
	idx := buildHashIndex(right, shared)
	out := partialRel{cols: append(append([]graph.VertexID(nil), left.cols...), nc.cols...)}
	key := make([]byte, 0, 4*len(shared))
	for _, row := range left.rows {
		key = appendJoinKey(key[:0], left.cols, row, shared)
		bucket := idx[string(key)]
		*candidates += uint64(len(bucket))
		for _, other := range bucket {
			merged := mergeRow(row, other, nc.idx)
			if injective && !distinctRow(merged) {
				continue
			}
			out.rows = append(out.rows, merged)
		}
	}
	return out
}

// filterInjective drops rows mapping two pattern vertices to one data
// vertex (pattern rows are short; the quadratic scan beats a map).
func filterInjective(r partialRel) partialRel {
	out := partialRel{cols: r.cols, rows: r.rows[:0:0]}
	for _, row := range r.rows {
		if distinctRow(row) {
			out.rows = append(out.rows, row)
		}
	}
	return out
}

//csce:hotpath injectivity scan per merged row; pure comparisons
func distinctRow(row []graph.VertexID) bool {
	for i := 1; i < len(row); i++ {
		for j := 0; j < i; j++ {
			if row[i] == row[j] {
				return false
			}
		}
	}
	return true
}

// pollCancelled is the join loops' cooperative cancellation check.
func pollCancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

package shard

import (
	"fmt"
	"strconv"
	"strings"

	"csce/internal/graph"
)

// STwig-style pattern decomposition, after Sun et al., "Efficient Subgraph
// Matching on Billion Node Graphs" (PAPERS.md): the pattern is covered by
// rooted stars (each edge in exactly one star), roots picked greedily by
// the selectivity score deg(u)/freq(label(u)) computed from the
// coordinator's aggregated per-shard label statistics. After the first
// twig, roots are restricted to vertices already bound by earlier twigs,
// so every join step shares at least one query vertex with the
// accumulated result — no cartesian products for connected patterns.

// Decomposition is the sharded-path "plan": the twig cover of one pattern.
type Decomposition struct {
	Twigs []Twig
}

// patternEdge is one pattern edge in its original orientation.
type patternEdge struct {
	src, dst graph.VertexID
	label    graph.EdgeLabel
}

// Decompose covers p's edges with rooted stars. freq gives the data-graph
// frequency of a vertex label (0 is fine — rarer is more selective); it
// steers root choice only, never correctness. An edgeless single-vertex
// pattern becomes one twig holding the whole pattern.
func Decompose(p *graph.Graph, freq func(graph.Label) int) (*Decomposition, error) {
	n := p.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty pattern", ErrPattern)
	}
	var edges []patternEdge
	p.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		edges = append(edges, patternEdge{src, dst, el})
	})
	if len(edges) == 0 {
		if n > 1 {
			// plan.Optimize rejects disconnected patterns too; fail the same
			// way before shipping anything to shards.
			return nil, fmt.Errorf("%w: pattern must be connected", ErrPattern)
		}
		sub := cloneVertices(p, []graph.VertexID{0})
		return &Decomposition{Twigs: []Twig{{Sub: sub, Root: 0, QVerts: []graph.VertexID{0}}}}, nil
	}

	// incident[v] lists edge indices touching v; covered marks spent edges.
	incident := make([][]int, n)
	for i, e := range edges {
		incident[e.src] = append(incident[e.src], i)
		incident[e.dst] = append(incident[e.dst], i)
	}
	covered := make([]bool, len(edges))
	uncov := make([]int, n) // uncovered degree per vertex
	for v := range incident {
		uncov[v] = len(incident[v])
	}
	bound := make([]bool, n) // vertices appearing in an emitted twig
	remaining := len(edges)

	score := func(v int) float64 {
		// Higher is better: cover many edges per twig, prefer rare labels.
		return float64(uncov[v]) / float64(freq(p.Label(graph.VertexID(v)))+1)
	}
	pickRoot := func(restrictToBound bool) int {
		best, bestScore := -1, -1.0
		for v := 0; v < n; v++ {
			if uncov[v] == 0 || (restrictToBound && !bound[v]) {
				continue
			}
			if sc := score(v); sc > bestScore {
				best, bestScore = v, sc
			}
		}
		return best
	}

	var twigs []Twig
	for remaining > 0 {
		root := pickRoot(len(twigs) > 0)
		if root < 0 {
			// No bound vertex has uncovered edges: the pattern is
			// disconnected (a connected pattern always grows the bound
			// component edge by edge).
			return nil, fmt.Errorf("%w: pattern must be connected", ErrPattern)
		}
		// The twig takes every uncovered edge incident to the root.
		qverts := []graph.VertexID{graph.VertexID(root)}
		subIdx := make(map[graph.VertexID]graph.VertexID, 4)
		subIdx[graph.VertexID(root)] = 0
		var twigEdges []patternEdge
		for _, ei := range incident[root] {
			if covered[ei] {
				continue
			}
			covered[ei] = true
			remaining--
			e := edges[ei]
			uncov[e.src]--
			uncov[e.dst]--
			other := e.src
			if other == graph.VertexID(root) {
				other = e.dst
			}
			if _, ok := subIdx[other]; !ok {
				subIdx[other] = graph.VertexID(len(qverts))
				qverts = append(qverts, other)
			}
			twigEdges = append(twigEdges, e)
		}
		b := graph.NewBuilder(p.Directed())
		b.SetNames(p.Names)
		for _, qv := range qverts {
			b.AddVertex(p.Label(qv))
		}
		for _, e := range twigEdges {
			b.AddEdge(subIdx[e.src], subIdx[e.dst], e.label)
		}
		sub, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("shard: build twig: %w", err)
		}
		twigs = append(twigs, Twig{Sub: sub, Root: 0, QVerts: qverts})
		for _, qv := range qverts {
			bound[qv] = true
		}
	}
	return &Decomposition{Twigs: twigs}, nil
}

// cloneVertices builds a sub-pattern holding just the listed vertices.
func cloneVertices(p *graph.Graph, verts []graph.VertexID) *graph.Graph {
	b := graph.NewBuilder(p.Directed())
	b.SetNames(p.Names)
	for _, v := range verts {
		b.AddVertex(p.Label(v))
	}
	return b.MustBuild()
}

// patternSignature serializes a pattern's exact structure the way the
// server plan cache does: directedness, vertex labels, and the labeled
// edge list in deterministic adjacency order.
func patternSignature(p *graph.Graph) string {
	var b strings.Builder
	b.Grow(16 + 8*p.NumVertices() + 12*p.NumEdges())
	if p.Directed() {
		b.WriteByte('d')
	} else {
		b.WriteByte('u')
	}
	b.WriteByte('|')
	for v := 0; v < p.NumVertices(); v++ {
		b.WriteString(strconv.Itoa(int(p.Label(graph.VertexID(v)))))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	p.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		b.WriteString(strconv.Itoa(int(src)))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(int(dst)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(el)))
		b.WriteByte(';')
	})
	return b.String()
}

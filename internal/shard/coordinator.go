package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/obs"
	"csce/internal/plan"
	"csce/internal/prefilter"
)

// Options configures one sharded graph; the zero value of everything but
// K takes defaults.
type Options struct {
	// K is the shard count (required, >= 1).
	K int
	// Scheme maps vertices to shards (default SchemeID).
	Scheme Scheme
	// Live is the per-shard live.Graph template. Durability.Dir inside it
	// is ignored; WALDir governs durability.
	Live live.Options
	// WALDir, when non-empty, gives every shard its own durable WAL under
	// WALDir/shard-<i>; reopening the same directory recovers each shard
	// and reconciles vertex counts across them.
	WALDir string
	// PlanCacheSize bounds the decomposition LRU (default 128; negative
	// disables caching).
	PlanCacheSize int
	// Observer receives scatter/local/join durations for external
	// histogramming. All hooks optional.
	Observer Observer
	// DisablePrefilter turns off the admission pre-filter check inside
	// Match (PrefilterCheck then always admits). The per-shard signatures
	// are still maintained — they ride each shard's commit path.
	DisablePrefilter bool
}

// Observer carries the coordinator's latency hooks.
type Observer struct {
	// Scatter observes one full fan-out (all shards, all twigs).
	Scatter func(time.Duration)
	// Local observes one shard's MatchPartial call.
	Local func(time.Duration)
	// Join observes one cross-shard join.
	Join func(time.Duration)
}

// Coordinator owns K shards of one logical graph and serves scatter-
// gather matches and routed mutation batches over them. All methods are
// safe for concurrent use.
type Coordinator struct {
	name     string
	k        int
	scheme   Scheme
	directed bool
	names    *graph.LabelTable
	obsv     Observer

	shards []Shard       // the narrow interface the scatter path uses
	locals []*localShard // same shards, for cheap epoch/owner bookkeeping

	// sigs are the per-shard admission signatures, in shard order. Checked
	// as a union: each shard owns its vertices' complete adjacency, so
	// cross-shard sums can only overcount (false admits, never false
	// rejects). Empty when Options.DisablePrefilter was set.
	sigs []*prefilter.Signature

	// own maps every vertex to its shard; vmu serializes ownership
	// growth: vertex-adding batches hold it exclusively (all shards must
	// append vertices in lockstep), edge-only batches share it.
	own *ownership
	vmu sync.RWMutex

	decomp *decompCache

	// statsMu guards the per-shard stats cache, keyed by shard epoch —
	// the GraphMini-style candidate summaries the decomposer reads.
	statsMu    sync.Mutex
	statsCache []cachedStats

	matches          atomic.Uint64
	prefilterRejects atomic.Uint64

	partials       atomic.Uint64
	joinCandidates atomic.Uint64
	mutBatches     atomic.Uint64
	mutFailed      atomic.Uint64
}

type cachedStats struct {
	epoch uint64
	ok    bool
	st    Stats
	freq  map[graph.Label]int
}

// Open partitions a built store into K shards, wraps each in its own
// live.Graph (own WAL directory under opts.WALDir), and returns the
// coordinator. With durable WALs, each shard first recovers its own log;
// a crash between two shards' appends can leave vertex counts skewed, so
// Open reconciles by topping lagging shards up to the most advanced one
// (labels copied from it — vertex adds are broadcast identically to every
// shard, so the most advanced shard has them all).
func Open(name string, base *ccsr.Store, opts Options) (*Coordinator, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("shard: K must be >= 1, got %d", opts.K)
	}
	if opts.PlanCacheSize == 0 {
		opts.PlanCacheSize = 128
	}
	c := &Coordinator{
		name:     name,
		k:        opts.K,
		scheme:   opts.Scheme,
		directed: base.Directed(),
		names:    base.Names(),
		obsv:     opts.Observer,
		own:      &ownership{},
		decomp:   newDecompCache(opts.PlanCacheSize),
	}
	owners := make([]uint16, base.NumVertices())
	for v := range owners {
		owners[v] = uint16(c.scheme.assign(graph.VertexID(v), base.VertexLabel(graph.VertexID(v)), c.k))
	}
	c.own.append(owners...)

	stores, _, err := base.Partition(c.k, func(v graph.VertexID) int {
		return int(owners[v])
	})
	if err != nil {
		return nil, err
	}
	lopts := opts.Live
	for i, st := range stores {
		lopts.Durability.Dir = ""
		if opts.WALDir != "" {
			lopts.Durability.Dir = filepath.Join(opts.WALDir, fmt.Sprintf("shard-%d", i))
		}
		lg, err := live.Open(fmt.Sprintf("%s/shard-%d", name, i), core.FromStore(st), lopts)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard: open shard %d: %w", i, err)
		}
		sh := newLocalShard(i, lg, c.own)
		c.locals = append(c.locals, sh)
		c.shards = append(c.shards, sh)
		if !opts.DisablePrefilter {
			c.sigs = append(c.sigs, lg.Prefilter())
		}
	}
	c.statsCache = make([]cachedStats, c.k)
	if err := c.reconcileRecovered(); err != nil {
		c.Close()
		return nil, err
	}
	if err := c.seedCounters(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// reconcileRecovered aligns per-shard vertex counts after WAL recovery
// and extends the ownership map past the base partition.
func (c *Coordinator) reconcileRecovered() error {
	counts := make([]int, c.k)
	maxN, ref := 0, 0
	for i, sh := range c.locals {
		st, _, release := sh.engineSnapshot()
		counts[i] = st.NumVertices()
		release()
		if counts[i] > maxN {
			maxN, ref = counts[i], i
		}
	}
	if maxN > c.own.len() {
		refStore, _, release := c.locals[ref].engineSnapshot()
		extra := make([]uint16, 0, maxN-c.own.len())
		for v := c.own.len(); v < maxN; v++ {
			l := refStore.VertexLabel(graph.VertexID(v))
			extra = append(extra, uint16(c.scheme.assign(graph.VertexID(v), l, c.k)))
		}
		release()
		c.own.append(extra...)
	}
	for i, sh := range c.locals {
		if counts[i] == maxN {
			continue
		}
		refStore, _, release := c.locals[ref].engineSnapshot()
		muts := make([]live.Mutation, 0, maxN-counts[i])
		for v := counts[i]; v < maxN; v++ {
			muts = append(muts, live.Mutation{Op: live.OpAddVertex, VertexLabel: refStore.VertexLabel(graph.VertexID(v))})
		}
		release()
		if _, err := sh.ApplyBatch(context.Background(), muts); err != nil {
			return fmt.Errorf("shard: reconcile shard %d vertices: %w", i, err)
		}
	}
	return nil
}

// seedCounters scans each shard's snapshot once to initialize the
// maintained local-vertex and boundary-edge gauges.
func (c *Coordinator) seedCounters() error {
	owners := c.own.snapshot()
	localVerts := make([]int, c.k)
	for _, o := range owners {
		localVerts[o]++
	}
	for i, sh := range c.locals {
		st, _, release := sh.engineSnapshot()
		boundary := 0
		err := st.EdgesAll(func(src, dst graph.VertexID, _ graph.EdgeLabel) {
			if owners[src] != owners[dst] {
				boundary++
			}
		})
		release()
		if err != nil {
			return fmt.Errorf("shard: scan shard %d: %w", i, err)
		}
		sh.seedCounts(localVerts[i], boundary)
	}
	return nil
}

// Name returns the coordinator's registry name.
func (c *Coordinator) Name() string { return c.name }

// K returns the shard count.
func (c *Coordinator) K() int { return c.k }

// Scheme returns the partitioning scheme.
func (c *Coordinator) Scheme() Scheme { return c.scheme }

// Directed reports the sharded graph's directedness.
func (c *Coordinator) Directed() bool { return c.directed }

// Names returns the shared label table (all shards intern through it).
func (c *Coordinator) Names() *graph.LabelTable { return c.names }

// EpochVector returns every shard's published epoch, in shard order. Two
// vectors are equal iff no shard committed in between — this is the
// freshness component of the decomposition cache key.
func (c *Coordinator) EpochVector() []uint64 {
	out := make([]uint64, c.k)
	for i, sh := range c.locals {
		out[i] = sh.g.Epoch()
	}
	return out
}

// Counts returns the logical graph's current vertex and edge totals. A
// cross-shard edge is stored twice and counted by both owners' boundary
// gauges, so the global count is Σ stored − Σ boundary / 2.
func (c *Coordinator) Counts() (vertices, edges int) {
	vertices = c.own.len()
	stored, boundary := 0, 0
	for _, sh := range c.locals {
		st, _, release := sh.engineSnapshot()
		stored += st.NumEdges()
		release()
		boundary += int(sh.boundary.Load())
	}
	return vertices, stored - boundary/2
}

// ShardStats returns every shard's stats, served from the epoch-keyed
// cache: a shard's summary is recomputed only after it commits a new
// epoch (purely monotonic live counters may lag one epoch).
func (c *Coordinator) ShardStats() []Stats {
	out := make([]Stats, c.k)
	for i := range c.locals {
		st, _ := c.cachedShardStats(i)
		out[i] = st
	}
	return out
}

func (c *Coordinator) cachedShardStats(i int) (Stats, map[graph.Label]int) {
	epoch := c.locals[i].g.Epoch()
	c.statsMu.Lock()
	if cs := c.statsCache[i]; cs.ok && cs.epoch == epoch {
		c.statsMu.Unlock()
		return cs.st, cs.freq
	}
	c.statsMu.Unlock()
	// Recompute outside the lock: Stats pins a snapshot and copies maps.
	st := c.locals[i].Stats()
	store, _, release := c.locals[i].engineSnapshot()
	freq := store.LabelFrequencies()
	release()
	c.statsMu.Lock()
	c.statsCache[i] = cachedStats{epoch: st.Epoch, ok: true, st: st, freq: freq}
	c.statsMu.Unlock()
	return st, freq
}

// aggregateLabelFreq merges the per-shard label statistics for root
// selection. Vertex labels are replicated to every shard, so the merge
// takes the max per label (all shards agree; max tolerates a shard
// observed mid-commit).
func (c *Coordinator) aggregateLabelFreq() map[graph.Label]int {
	agg := make(map[graph.Label]int)
	for i := range c.locals {
		_, freq := c.cachedShardStats(i)
		for l, n := range freq {
			if n > agg[l] {
				agg[l] = n
			}
		}
	}
	return agg
}

// PrefilterCheck runs the O(pattern) admission cascade over the union of
// the per-shard signatures without touching any shard. It always admits
// when the coordinator was opened with DisablePrefilter.
func (c *Coordinator) PrefilterCheck(p *graph.Graph, variant graph.Variant) prefilter.Decision {
	if len(c.sigs) == 0 {
		return prefilter.Decision{Admit: true}
	}
	return prefilter.CheckMany(c.sigs, p, variant)
}

// CacheStats reports the decomposition cache's counters.
func (c *Coordinator) CacheStats() (size int, hits, misses uint64) {
	return c.decomp.len(), c.decomp.hits.Load(), c.decomp.misses.Load()
}

// CoordStats is the coordinator-level stats document.
type CoordStats struct {
	K              int     `json:"k"`
	Scheme         string  `json:"scheme"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	Matches          uint64 `json:"matches"`
	PrefilterRejects uint64 `json:"prefilter_rejects"`

	Partials       uint64  `json:"partials"`
	JoinCandidates uint64  `json:"join_candidates"`
	MutationOK     uint64  `json:"mutation_batches"`
	MutationFailed uint64  `json:"mutation_batches_failed"`
	DecompHits     uint64  `json:"decomp_cache_hits"`
	DecompMisses   uint64  `json:"decomp_cache_misses"`
	DecompSize     int     `json:"decomp_cache_size"`
	Shards         []Stats `json:"shards"`
}

// Stats returns the coordinator document, including per-shard stats.
func (c *Coordinator) Stats() CoordStats {
	v, e := c.Counts()
	size, hits, misses := c.CacheStats()
	return CoordStats{
		K:              c.k,
		Scheme:         c.scheme.String(),
		Vertices:       v,
		Edges:          e,
		Matches:          c.matches.Load(),
		PrefilterRejects: c.prefilterRejects.Load(),
		Partials:         c.partials.Load(),
		JoinCandidates: c.joinCandidates.Load(),
		MutationOK:     c.mutBatches.Load(),
		MutationFailed: c.mutFailed.Load(),
		DecompHits:     hits,
		DecompMisses:   misses,
		DecompSize:     size,
		Shards:         c.ShardStats(),
	}
}

// Close closes every shard's live graph. Idempotent.
func (c *Coordinator) Close() {
	for _, sh := range c.locals {
		sh.g.Close()
	}
}

// MatchOptions are the knobs of one scatter-gather match.
type MatchOptions struct {
	// Variant selects edge-induced or homomorphic matching;
	// vertex-induced returns ErrVertexInduced.
	Variant graph.Variant
	// Mode selects each shard's local plan-optimization pipeline.
	Mode plan.Mode
	// Limit stops after this many embeddings (0 = all), exact.
	Limit uint64
	// Workers sizes each shard's local executor (<=1 serial).
	Workers int
	// SkipPrefilter bypasses Match's admission check. Set it only when the
	// caller already ran PrefilterCheck for this exact pattern and variant
	// (the serving layer checks before taking an admission slot, so the
	// scatter path must not check — and count — the query twice).
	SkipPrefilter bool
	// OnEmbedding receives each full embedding, indexed by pattern
	// vertex. The slice is reused between calls — copy to retain. Return
	// false to stop.
	OnEmbedding func(mapping []graph.VertexID) bool
}

// MatchResult reports one scatter-gather match.
type MatchResult struct {
	Embeddings uint64
	// Twigs is the decomposition width; Partials the total twig rows the
	// shards returned; JoinCandidates the hash-bucket entries probed.
	Twigs          int
	Partials       uint64
	JoinCandidates uint64
	Steps          uint64
	// Epochs is the snapshot epoch each shard actually answered at.
	Epochs    []uint64
	Cancelled bool
	LimitHit  bool
	// DecompCacheHit reports whether the twig decomposition came from the
	// epoch-vector-keyed cache.
	DecompCacheHit bool
	// RejectedBy names the admission pre-filter that proved the pattern
	// unmatchable before any decomposition or scatter ("" when the query
	// was admitted); Reject carries the full decision for reporting.
	RejectedBy prefilter.Filter
	Reject     prefilter.Decision
	ScatterTime    time.Duration
	JoinTime       time.Duration
}

// Match runs one pattern over all shards: decompose (cached by pattern +
// variant + mode + epoch vector), scatter every twig to every shard in
// parallel, then join the partials on shared query vertices, streaming
// full embeddings. When ctx carries an obs.Trace, "shard.scatter",
// per-shard "shard.local", and "shard.join" spans record the breakdown.
// Cancellation mid-search is graceful: partial counts return with
// Cancelled set and a nil error, mirroring core.Match.
func (c *Coordinator) Match(ctx context.Context, p *graph.Graph, opts MatchOptions) (MatchResult, error) {
	var res MatchResult
	if opts.Variant == graph.VertexInduced {
		return res, ErrVertexInduced
	}
	if p.Directed() != c.directed {
		return res, fmt.Errorf("shard: pattern directedness does not match graph %q", c.name)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	c.matches.Add(1)

	// Admission pre-filter: a provably-empty pattern answers here, before
	// the decomposition cache is consulted and before any shard sees a
	// scatter. The serving layer checks earlier still (before its admission
	// slot) and sets SkipPrefilter so the query is not counted twice.
	if !opts.SkipPrefilter {
		_, endCheck := obs.StartSpanCtx(ctx, "prefilter.check")
		d := c.PrefilterCheck(p, opts.Variant)
		if !d.Admit {
			c.prefilterRejects.Add(1)
			endCheck(obs.Str("decision", "reject"), obs.Str("filter", string(d.Filter)),
				obs.Str("reason", d.Reason(c.names)))
			res.RejectedBy = d.Filter
			res.Reject = d
			return res, nil
		}
		endCheck(obs.Str("decision", "admit"))
	}

	_, endDecomp := obs.StartSpanCtx(ctx, "shard.plan")
	key := decompKey(opts.Variant, opts.Mode, c.EpochVector(), p)
	dec, hit := c.decomp.get(key)
	if !hit {
		freq := c.aggregateLabelFreq()
		var err error
		dec, err = Decompose(p, func(l graph.Label) int { return freq[l] })
		if err != nil {
			endDecomp()
			return res, err
		}
		c.decomp.put(key, dec)
	}
	res.DecompCacheHit = hit
	res.Twigs = len(dec.Twigs)
	cached := "miss"
	if hit {
		cached = "hit"
	}
	endDecomp(obs.Int("twigs", int64(res.Twigs)), obs.Str("cache", cached))

	// Scatter: one MatchPartial per shard, all twigs against one pinned
	// snapshot each, in parallel. Span nesting follows the fan-out: each
	// shard's "shard.local" is a child of "shard.scatter", and the local
	// context flows into MatchPartial so core.read/core.plan/exec.search
	// nest under the shard that ran them.
	scatterCtx, endScatter := obs.StartSpanCtx(ctx, "shard.scatter")
	scatterStart := time.Now()
	req := PartialRequest{Twigs: dec.Twigs, Mode: opts.Mode, Workers: opts.Workers}
	results := make([]PartialResult, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			localCtx, endLocal := obs.StartSpanCtx(scatterCtx, "shard.local")
			localStart := time.Now()
			results[i], errs[i] = sh.MatchPartial(localCtx, req)
			var rows uint64
			for _, tw := range results[i].Twigs {
				rows += uint64(len(tw.Rows))
			}
			endLocal(obs.Int("shard", int64(i)),
				obs.Int("epoch", int64(results[i].Epoch)),
				obs.Int("rows", int64(rows)),
				obs.Int("steps", int64(results[i].Steps)))
			if c.obsv.Local != nil {
				c.obsv.Local(time.Since(localStart))
			}
		}(i, sh)
	}
	wg.Wait()
	res.ScatterTime = time.Since(scatterStart)
	endScatter(obs.Int("shards", int64(len(c.shards))))
	if c.obsv.Scatter != nil {
		c.obsv.Scatter(res.ScatterTime)
	}

	res.Epochs = make([]uint64, len(results))
	for i, r := range results {
		res.Epochs[i] = r.Epoch
		res.Steps += r.Steps
		if r.Cancelled {
			res.Cancelled = true
		}
	}
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			res.Cancelled = true
			continue
		}
		return res, err
	}
	if res.Cancelled {
		return res, nil
	}

	// Assemble per-twig relations across shards.
	rels := make([]partialRel, len(dec.Twigs))
	for ti, tw := range dec.Twigs {
		rels[ti].cols = tw.QVerts
		for _, r := range results {
			rels[ti].rows = append(rels[ti].rows, r.Twigs[ti].Rows...)
		}
		res.Partials += uint64(len(rels[ti].rows))
	}
	c.partials.Add(res.Partials)

	_, endJoin := obs.StartSpanCtx(ctx, "shard.join")
	joinStart := time.Now()
	emit := func(m []graph.VertexID) bool {
		if opts.OnEmbedding != nil && !opts.OnEmbedding(m) {
			return false
		}
		res.Embeddings++
		return opts.Limit == 0 || res.Embeddings < opts.Limit
	}
	jst := joinPartials(ctx, p.NumVertices(), rels, opts.Variant.Injective(), emit)
	res.JoinTime = time.Since(joinStart)
	endJoin(obs.Int("partials", int64(res.Partials)),
		obs.Int("candidates", int64(jst.Candidates)),
		obs.Int("embeddings", int64(res.Embeddings)))
	if c.obsv.Join != nil {
		c.obsv.Join(res.JoinTime)
	}
	res.JoinCandidates = jst.Candidates
	c.joinCandidates.Add(jst.Candidates)
	res.Cancelled = jst.Cancelled
	res.LimitHit = opts.Limit > 0 && res.Embeddings >= opts.Limit
	return res, nil
}

package shard

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"csce/internal/graph"
	"csce/internal/plan"
)

// decompCache is the sharded path's plan cache: a bounded LRU of twig
// decompositions. The key includes the FULL shard-set epoch vector, not a
// single epoch — a mutation on any one shard changes that shard's label
// statistics, and a key carrying only (say) shard 0's epoch would keep
// serving a decomposition whose root-selectivity inputs are stale for the
// mutated shard. Superseded vectors age out of the LRU.
type decompCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type decompEntry struct {
	key string
	dec *Decomposition
}

func newDecompCache(capacity int) *decompCache {
	return &decompCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *decompCache) get(key string) (*Decomposition, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*decompEntry).dec, true
}

func (c *decompCache) put(key string, dec *Decomposition) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*decompEntry).dec = dec
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&decompEntry{key: key, dec: dec})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*decompEntry).key)
	}
}

func (c *decompCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// decompKey builds the cache key: variant, mode, the epoch of EVERY shard
// in shard order, and the pattern signature.
func decompKey(variant graph.Variant, mode plan.Mode, epochs []uint64, p *graph.Graph) string {
	var b strings.Builder
	b.Grow(32 + 12*len(epochs) + 16*p.NumVertices())
	b.WriteString(strconv.Itoa(int(variant)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(mode)))
	b.WriteByte('|')
	for _, e := range epochs {
		b.WriteString(strconv.FormatUint(e, 10))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(patternSignature(p))
	return b.String()
}

package graph

import "fmt"

// LabelTable interns symbolic label names to dense Label / EdgeLabel
// values. It keeps vertex and edge label namespaces separate, mirroring the
// paper's distinct L and Σ label functions.
type LabelTable struct {
	vertexByName map[string]Label
	vertexNames  []string
	edgeByName   map[string]EdgeLabel
	edgeNames    []string
}

// NewLabelTable returns an empty table. The empty string is pre-interned as
// edge label 0 so unlabeled edges print cleanly.
func NewLabelTable() *LabelTable {
	t := &LabelTable{
		vertexByName: make(map[string]Label),
		edgeByName:   make(map[string]EdgeLabel),
	}
	t.edgeByName[""] = 0
	t.edgeNames = append(t.edgeNames, "")
	return t
}

// Vertex interns a vertex label name.
func (t *LabelTable) Vertex(name string) Label {
	if l, ok := t.vertexByName[name]; ok {
		return l
	}
	l := Label(len(t.vertexNames))
	t.vertexByName[name] = l
	t.vertexNames = append(t.vertexNames, name)
	return l
}

// Edge interns an edge label name. The empty name is edge label 0 (NULL).
func (t *LabelTable) Edge(name string) EdgeLabel {
	if l, ok := t.edgeByName[name]; ok {
		return l
	}
	l := EdgeLabel(len(t.edgeNames))
	t.edgeByName[name] = l
	t.edgeNames = append(t.edgeNames, name)
	return l
}

// VertexName returns the symbolic name of a vertex label, or a numeric
// placeholder when the label was never interned by name.
func (t *LabelTable) VertexName(l Label) string {
	if t != nil && int(l) < len(t.vertexNames) {
		return t.vertexNames[l]
	}
	return fmt.Sprintf("L%d", l)
}

// EdgeName returns the symbolic name of an edge label.
func (t *LabelTable) EdgeName(l EdgeLabel) string {
	if t != nil && int(l) < len(t.edgeNames) {
		return t.edgeNames[l]
	}
	return fmt.Sprintf("E%d", l)
}

// NumVertexLabels returns how many vertex label names are interned.
func (t *LabelTable) NumVertexLabels() int { return len(t.vertexNames) }

// NumEdgeLabels returns how many edge label names are interned (including
// the pre-interned empty name at label 0).
func (t *LabelTable) NumEdgeLabels() int { return len(t.edgeNames) }

package graph

// This file provides subgraph extraction and structural helpers used by the
// pattern samplers, the baselines, and the test oracles.

// InducedSubgraph returns the vertex-induced subgraph G[vs] as a standalone
// graph whose vertex i corresponds to vs[i]. The second return value maps
// new IDs back to original IDs.
func InducedSubgraph(g *Graph, vs []VertexID) (*Graph, []VertexID) {
	idx := make(map[VertexID]VertexID, len(vs))
	for i, v := range vs {
		idx[v] = VertexID(i)
	}
	b := NewBuilder(g.Directed())
	b.SetNames(g.Names)
	for _, v := range vs {
		b.AddVertex(g.Label(v))
	}
	for _, v := range vs {
		for _, n := range g.Out(v) {
			w, ok := idx[n.To]
			if !ok {
				continue
			}
			if !g.Directed() && w < idx[v] {
				continue // undirected edge emitted once, from the lower new ID
			}
			b.AddEdge(idx[v], w, n.Label)
		}
	}
	sub := b.MustBuild()
	back := append([]VertexID(nil), vs...)
	return sub, back
}

// EdgeSubgraph returns the edge-induced subgraph formed by the given edges
// of g (each edge expressed as src, dst, label triples valid in g), with
// remapped dense vertex IDs, plus the new-to-old vertex mapping.
func EdgeSubgraph(g *Graph, edges [][3]uint32) (*Graph, []VertexID) {
	idx := make(map[VertexID]VertexID)
	var order []VertexID
	intern := func(v VertexID) VertexID {
		if i, ok := idx[v]; ok {
			return i
		}
		i := VertexID(len(order))
		idx[v] = i
		order = append(order, v)
		return i
	}
	type e struct {
		s, d VertexID
		l    EdgeLabel
	}
	var es []e
	for _, raw := range edges {
		es = append(es, e{intern(VertexID(raw[0])), intern(VertexID(raw[1])), EdgeLabel(raw[2])})
	}
	b := NewBuilder(g.Directed())
	b.SetNames(g.Names)
	for _, v := range order {
		b.AddVertex(g.Label(v))
	}
	for _, x := range es {
		b.AddEdge(x.s, x.d, x.l)
	}
	return b.MustBuild(), order
}

// IsConnected reports whether g is connected when edge directions are
// ignored. The empty graph counts as connected.
func IsConnected(g *Graph) bool {
	n := g.NumVertices()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []VertexID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.UndirectedNeighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// Clique returns an undirected clique on n vertices, all carrying label l.
// Used by the higher-order clustering case study (8-cliques) and tests.
func Clique(n int, l Label) *Graph {
	b := NewBuilder(false)
	b.AddVertices(n, l)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(VertexID(i), VertexID(j), 0)
		}
	}
	return b.MustBuild()
}

// Path returns an undirected path on n vertices with the given labels
// (cycled if shorter than n).
func Path(n int, labels ...Label) *Graph {
	b := NewBuilder(false)
	for i := 0; i < n; i++ {
		var l Label
		if len(labels) > 0 {
			l = labels[i%len(labels)]
		}
		b.AddVertex(l)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1), 0)
	}
	return b.MustBuild()
}

// Cycle returns an undirected cycle on n >= 3 vertices with the given
// labels (cycled).
func Cycle(n int, labels ...Label) *Graph {
	b := NewBuilder(false)
	for i := 0; i < n; i++ {
		var l Label
		if len(labels) > 0 {
			l = labels[i%len(labels)]
		}
		b.AddVertex(l)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(VertexID(i), VertexID((i+1)%n), 0)
	}
	return b.MustBuild()
}

package graph

import (
	"fmt"
	"strings"
)

// DOT renders g in Graphviz format with symbolic labels, for inspection
// and documentation. Undirected graphs use "graph"/"--", directed ones
// "digraph"/"->"; non-zero edge labels become edge annotations.
func DOT(name string, g *Graph) string {
	var b strings.Builder
	kind, arrow := "graph", "--"
	if g.Directed() {
		kind, arrow = "digraph", "->"
	}
	fmt.Fprintf(&b, "%s %q {\n", kind, name)
	b.WriteString("  node [shape=circle, fontsize=10];\n")
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(&b, "  v%d [label=%q];\n", v,
			fmt.Sprintf("v%d:%s", v, g.Names.VertexName(g.Label(VertexID(v)))))
	}
	g.Edges(func(a, c VertexID, l EdgeLabel) {
		if l == 0 {
			fmt.Fprintf(&b, "  v%d %s v%d;\n", a, arrow, c)
		} else {
			fmt.Fprintf(&b, "  v%d %s v%d [label=%q];\n", a, arrow, c, g.Names.EdgeName(l))
		}
	})
	b.WriteString("}\n")
	return b.String()
}

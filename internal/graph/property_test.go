package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// genGraph derives a random graph from a seed; used by the quick-check
// properties below.
func genGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	directed := rng.Intn(2) == 0
	n := 2 + rng.Intn(30)
	b := NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(Label(rng.Intn(4)))
	}
	m := rng.Intn(4 * n)
	for i := 0; i < m; i++ {
		v, w := rng.Intn(n), rng.Intn(n)
		if v != w {
			b.AddEdge(VertexID(v), VertexID(w), EdgeLabel(rng.Intn(3)))
		}
	}
	return b.MustBuild()
}

// TestPropertyAdjacencySortedDedup: every adjacency list is sorted by
// (To, Label) with no duplicates — the invariant the CSR builders and the
// intersection kernels rely on.
func TestPropertyAdjacencySortedDedup(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		check := func(ns []Neighbor) bool {
			for i := 1; i < len(ns); i++ {
				prev, cur := ns[i-1], ns[i]
				if cur.To < prev.To || (cur.To == prev.To && cur.Label <= prev.Label) {
					return false
				}
			}
			return true
		}
		for v := 0; v < g.NumVertices(); v++ {
			if !check(g.Out(VertexID(v))) || !check(g.In(VertexID(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUndirectedSymmetry: on undirected graphs, adjacency is
// symmetric and In == Out.
func TestPropertyUndirectedSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		if g.Directed() {
			return true
		}
		for v := 0; v < g.NumVertices(); v++ {
			vid := VertexID(v)
			for _, n := range g.Out(vid) {
				if !g.HasEdgeLabeled(n.To, vid, n.Label) {
					return false
				}
			}
			if len(g.In(vid)) != len(g.Out(vid)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDegreeSums: the handshake lemma — out-degrees sum to the
// directed edge count; undirected degrees sum to twice the edge count.
func TestPropertyDegreeSums(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		outSum, inSum := 0, 0
		for v := 0; v < g.NumVertices(); v++ {
			outSum += g.OutDegree(VertexID(v))
			inSum += g.InDegree(VertexID(v))
		}
		if g.Directed() {
			return outSum == g.NumEdges() && inSum == g.NumEdges()
		}
		return outSum == 2*g.NumEdges() && inSum == outSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFormatParseIdentity: Format then Parse reproduces the graph
// up to label interning order — vertex IDs, directedness, edge counts, and
// the *named* labels of every vertex and adjacency entry are preserved
// (Parse re-interns names in first-seen order, so raw label values may
// permute).
func TestPropertyFormatParseIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		var buf bytes.Buffer
		if err := Format(&buf, g); err != nil {
			return false
		}
		g2, err := Parse(&buf)
		if err != nil {
			return false
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() ||
			g2.Directed() != g.Directed() {
			return false
		}
		namedRow := func(gr *Graph, v VertexID) []string {
			var out []string
			for _, n := range gr.Out(v) {
				name := "" // edge label 0 is the unlabeled NULL on both sides
				if n.Label != 0 {
					name = gr.Names.EdgeName(n.Label)
				}
				out = append(out, fmt.Sprintf("%d:%s", n.To, name))
			}
			sort.Strings(out)
			return out
		}
		for v := 0; v < g.NumVertices(); v++ {
			vid := VertexID(v)
			if g.Names.VertexName(g.Label(vid)) != g2.Names.VertexName(g2.Label(vid)) {
				return false
			}
			a, b := namedRow(g, vid), namedRow(g2, vid)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEdgesIterationCount: the Edges iterator visits exactly
// NumEdges edges.
func TestPropertyEdgesIterationCount(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		count := 0
		g.Edges(func(v, w VertexID, l EdgeLabel) { count++ })
		return count == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInducedSubgraphIsSubset: induced subgraphs preserve labels
// and contain exactly the original edges among the chosen vertices.
func TestPropertyInducedSubgraphIsSubset(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5ad))
		k := 1 + rng.Intn(g.NumVertices())
		perm := rng.Perm(g.NumVertices())[:k]
		vs := make([]VertexID, k)
		for i, x := range perm {
			vs[i] = VertexID(x)
		}
		sub, back := InducedSubgraph(g, vs)
		if sub.NumVertices() != k {
			return false
		}
		for i := 0; i < k; i++ {
			if sub.Label(VertexID(i)) != g.Label(back[i]) {
				return false
			}
		}
		// Every subgraph edge exists in g between the mapped endpoints.
		ok := true
		sub.Edges(func(a, b VertexID, l EdgeLabel) {
			if !g.HasEdgeLabeled(back[a], back[b], l) {
				ok = false
			}
		})
		if !ok {
			return false
		}
		// Count edges of g inside the vertex set; must equal sub's count.
		in := map[VertexID]bool{}
		for _, v := range vs {
			in[v] = true
		}
		want := 0
		g.Edges(func(a, b VertexID, l EdgeLabel) {
			if in[a] && in[b] {
				want++
			}
		})
		return want == sub.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyParseNeverPanics feeds the text parser mutated valid files
// and arbitrary strings: errors are fine, panics are not.
func TestPropertyParseNeverPanics(t *testing.T) {
	var base bytes.Buffer
	if err := Format(&base, genGraph(3)); err != nil {
		t.Fatal(err)
	}
	valid := base.String()
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: Parse panicked: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var input string
		if rng.Intn(2) == 0 {
			b := []byte(valid)
			for i := 0; i < 1+rng.Intn(6); i++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			}
			input = string(b[:rng.Intn(len(b)+1)])
		} else {
			b := make([]byte, rng.Intn(200))
			for i := range b {
				b[i] = byte(rng.Intn(128))
			}
			input = string(b)
		}
		_, _ = ParseString(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// here we only pin the graph text reader.

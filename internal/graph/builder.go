package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	directed bool
	labels   []Label
	edges    []builderEdge
	names    *LabelTable
}

type builderEdge struct {
	src, dst VertexID
	label    EdgeLabel
}

// NewBuilder returns a Builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed}
}

// SetNames attaches a label table so the built graph can print symbolic
// label names. Optional.
func (b *Builder) SetNames(t *LabelTable) { b.names = t }

// AddVertex appends a vertex with the given label and returns its ID.
func (b *Builder) AddVertex(l Label) VertexID {
	b.labels = append(b.labels, l)
	return VertexID(len(b.labels) - 1)
}

// AddVertices appends n vertices sharing label l and returns the first ID.
func (b *Builder) AddVertices(n int, l Label) VertexID {
	first := VertexID(len(b.labels))
	for i := 0; i < n; i++ {
		b.labels = append(b.labels, l)
	}
	return first
}

// SetVertexLabel overrides the label of an existing vertex.
func (b *Builder) SetVertexLabel(v VertexID, l Label) { b.labels[v] = l }

// AddEdge records an edge from src to dst with the given edge label. For an
// undirected builder the edge is symmetric regardless of argument order.
// Self-loops are rejected at Build time.
func (b *Builder) AddEdge(src, dst VertexID, l EdgeLabel) {
	b.edges = append(b.edges, builderEdge{src, dst, l})
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// Build validates the accumulated data and returns the finished Graph.
// Duplicate edges (same endpoints, direction, and label) are collapsed.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	g := &Graph{
		directed:  b.directed,
		labels:    append([]Label(nil), b.labels...),
		out:       make([][]Neighbor, n),
		labelFreq: make(map[Label]int),
		Names:     b.names,
	}
	if b.directed {
		g.in = make([][]Neighbor, n)
	}
	for _, l := range g.labels {
		g.labelFreq[l]++
	}
	g.vertexLabelCount = len(g.labelFreq)

	edgeLabels := make(map[EdgeLabel]struct{})
	for _, e := range b.edges {
		if int(e.src) >= n || int(e.dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references vertex beyond %d", e.src, e.dst, n-1)
		}
		if e.src == e.dst {
			return nil, fmt.Errorf("graph: self-loop on vertex %d is not allowed", e.src)
		}
		edgeLabels[e.label] = struct{}{}
		g.out[e.src] = append(g.out[e.src], Neighbor{e.dst, e.label})
		if b.directed {
			g.in[e.dst] = append(g.in[e.dst], Neighbor{e.src, e.label})
		} else {
			g.out[e.dst] = append(g.out[e.dst], Neighbor{e.src, e.label})
		}
	}
	if len(edgeLabels) > 1 || (len(edgeLabels) == 1 && !hasZeroLabel(edgeLabels)) {
		g.edgeLabelCount = len(edgeLabels)
	}

	for v := range g.out {
		g.out[v] = sortDedup(g.out[v])
	}
	if b.directed {
		for v := range g.in {
			g.in[v] = sortDedup(g.in[v])
		}
	}
	for v := range g.out {
		if b.directed {
			g.numEdges += len(g.out[v])
		} else {
			g.numEdges += len(g.out[v])
		}
	}
	if !b.directed {
		g.numEdges /= 2
	}
	return g, nil
}

// MustBuild is Build but panics on error; intended for tests and literals.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func hasZeroLabel(m map[EdgeLabel]struct{}) bool {
	_, ok := m[0]
	return ok
}

func sortDedup(ns []Neighbor) []Neighbor {
	if len(ns) == 0 {
		return ns
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].To != ns[j].To {
			return ns[i].To < ns[j].To
		}
		return ns[i].Label < ns[j].Label
	})
	out := ns[:1]
	for _, n := range ns[1:] {
		if last := out[len(out)-1]; last != n {
			out = append(out, n)
		}
	}
	return out
}

package graph

import "fmt"

// Stats summarizes a graph with the columns of the paper's Table IV.
type Stats struct {
	Name         string
	Directed     bool
	VertexCount  int
	EdgeCount    int
	LabelCount   int // distinct vertex labels; 0 means unlabeled per Table IV
	AvgDegree    float64
	MaxInDegree  int
	MaxOutDegree int
}

// ComputeStats gathers Table IV statistics for g. Per the paper, an
// unlabeled graph (one distinct label) reports LabelCount 0, and each
// undirected edge counts once toward EdgeCount and twice toward degrees.
func ComputeStats(name string, g *Graph) Stats {
	s := Stats{
		Name:        name,
		Directed:    g.Directed(),
		VertexCount: g.NumVertices(),
		EdgeCount:   g.NumEdges(),
		LabelCount:  g.VertexLabelCount(),
	}
	if s.LabelCount == 1 {
		s.LabelCount = 0
	}
	var totalDeg int
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		in, out := g.InDegree(id), g.OutDegree(id)
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		totalDeg += g.Degree(id)
	}
	if g.NumVertices() > 0 {
		s.AvgDegree = float64(totalDeg) / float64(g.NumVertices())
	}
	return s
}

// String renders the stats as one Table IV row.
func (s Stats) String() string {
	dir := "U"
	if s.Directed {
		dir = "D"
	}
	return fmt.Sprintf("%-14s %s %9d %10d %5d %6.1f %7d %7d",
		s.Name, dir, s.VertexCount, s.EdgeCount, s.LabelCount, s.AvgDegree, s.MaxInDegree, s.MaxOutDegree)
}

// AvgDegreeOf returns the average degree of g (sum of per-vertex degrees
// over |V|), the density measure the paper uses to split dense (>2) from
// sparse patterns.
func AvgDegreeOf(g *Graph) float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		total += g.Degree(VertexID(v))
	}
	return float64(total) / float64(g.NumVertices())
}

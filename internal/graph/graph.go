// Package graph defines the heterogeneous graph model shared by every
// component of the CSCE reproduction: vertex- and edge-labeled graphs that
// are either directed or undirected, together with the subgraph-matching
// variant vocabulary (edge-induced, vertex-induced, homomorphic) from the
// paper's problem statement (Section II).
//
// A Graph is immutable once built (see Builder). Vertices are dense
// integers; labels are small interned integers managed by a LabelTable.
// An undirected edge v–w is stored once but visible from both endpoints,
// matching the paper's convention of modelling it as the ordered pairs
// (v,w) and (w,v) while counting it as a single edge.
package graph

import "fmt"

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// exactly the IDs 0..n-1.
type VertexID = uint32

// Label is an interned vertex label. The zero Label is a valid label (it is
// what unlabeled graphs use for every vertex).
type Label = uint16

// EdgeLabel is an interned edge label. The zero EdgeLabel plays the role of
// the paper's NULL edge label for graphs without edge labels.
type EdgeLabel = uint16

// Variant selects the subgraph-matching semantics. The paper (Section II)
// studies all three; most prior systems support only one.
type Variant uint8

const (
	// EdgeInduced finds all edge-induced (a.k.a. non-induced, monomorphic)
	// subgraphs isomorphic to the pattern: every pattern edge must map to a
	// data edge and the mapping is injective, but data vertices mapped from
	// unconnected pattern vertices may be adjacent.
	EdgeInduced Variant = iota
	// VertexInduced finds all vertex-induced (a.k.a. induced) subgraphs:
	// in addition to the edge-induced constraints, unconnected pattern
	// vertices must map to non-adjacent data vertices.
	VertexInduced
	// Homomorphic finds all homomorphisms: every pattern edge must map to a
	// data edge, but distinct pattern vertices may map to the same data
	// vertex.
	Homomorphic
)

// String returns the variant name used throughout logs and reports.
func (v Variant) String() string {
	switch v {
	case EdgeInduced:
		return "edge-induced"
	case VertexInduced:
		return "vertex-induced"
	case Homomorphic:
		return "homomorphic"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Injective reports whether the variant forbids mapping two pattern
// vertices to the same data vertex.
func (v Variant) Injective() bool { return v != Homomorphic }

// Variants lists all supported variants in a stable order.
func Variants() []Variant { return []Variant{EdgeInduced, VertexInduced, Homomorphic} }

// Neighbor is one adjacency entry: the endpoint reached and the label of
// the connecting edge.
type Neighbor struct {
	To    VertexID
	Label EdgeLabel
}

// Graph is an immutable heterogeneous graph. Construct one with a Builder
// or one of the parsing helpers in this package.
//
// For a directed graph, out[v] holds v's outgoing neighbors and in[v] its
// incoming neighbors. For an undirected graph, out[v] holds all neighbors
// of v and in is nil. Neighbor slices are sorted by (To, Label) and contain
// no duplicates; self-loops are rejected at build time, mirroring the
// paper's requirement that G has no self-loops.
type Graph struct {
	directed bool
	labels   []Label // labels[v] is the label of vertex v
	out      [][]Neighbor
	in       [][]Neighbor
	numEdges int // undirected edges counted once

	vertexLabelCount int // number of distinct vertex labels
	edgeLabelCount   int // number of distinct edge labels (0 when all edges use the zero label)
	labelFreq        map[Label]int

	Names *LabelTable // optional label names; nil for purely numeric graphs
}

// Directed reports whether the graph's edges are directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns |E|, counting each undirected edge once.
func (g *Graph) NumEdges() int { return g.numEdges }

// Label returns the label of vertex v.
func (g *Graph) Label(v VertexID) Label { return g.labels[v] }

// Labels returns the label slice indexed by vertex ID. Callers must not
// modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Out returns v's outgoing neighbors (all neighbors for an undirected
// graph), sorted by (To, Label). Callers must not modify the slice.
func (g *Graph) Out(v VertexID) []Neighbor { return g.out[v] }

// In returns v's incoming neighbors. For an undirected graph In and Out
// coincide.
func (g *Graph) In(v VertexID) []Neighbor {
	if !g.directed {
		return g.out[v]
	}
	return g.in[v]
}

// Degree returns the number of neighbor vertices of v, counting a vertex
// reachable both ways once, per the paper's definition d(v).
func (g *Graph) Degree(v VertexID) int {
	if !g.directed {
		return len(g.out[v])
	}
	return len(mergeDistinct(g.out[v], g.in[v]))
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.out[v]) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v VertexID) int { return len(g.In(v)) }

// HasEdge reports whether an edge v->w exists (any edge label). On an
// undirected graph it reports whether v and w are adjacent.
func (g *Graph) HasEdge(v, w VertexID) bool {
	_, ok := g.EdgeLabelOf(v, w)
	return ok
}

// Adjacent reports whether there is an edge between v and w in either
// direction.
func (g *Graph) Adjacent(v, w VertexID) bool {
	if g.HasEdge(v, w) {
		return true
	}
	return g.directed && g.HasEdge(w, v)
}

// EdgeLabelOf returns the label of the edge v->w, if present. When parallel
// edges with different labels exist, the smallest label is returned.
func (g *Graph) EdgeLabelOf(v, w VertexID) (EdgeLabel, bool) {
	row := g.out[v]
	i := searchNeighbor(row, w)
	if i < len(row) && row[i].To == w {
		return row[i].Label, true
	}
	return 0, false
}

// HasEdgeLabeled reports whether an edge v->w with the given label exists.
func (g *Graph) HasEdgeLabeled(v, w VertexID, l EdgeLabel) bool {
	row := g.out[v]
	for i := searchNeighbor(row, w); i < len(row) && row[i].To == w; i++ {
		if row[i].Label == l {
			return true
		}
	}
	return false
}

// VertexLabelCount returns the number of distinct vertex labels. Following
// Table IV, a graph whose vertices all share one label reports it as
// "unlabeled" via Heterogeneous.
func (g *Graph) VertexLabelCount() int { return g.vertexLabelCount }

// EdgeLabelCount returns the number of distinct non-zero edge labels.
func (g *Graph) EdgeLabelCount() int { return g.edgeLabelCount }

// Heterogeneous reports whether the graph is heterogeneous per the paper's
// definition: more than two label kinds across vertices and edges
// (l_v + l_e > 2).
func (g *Graph) Heterogeneous() bool {
	lv := g.vertexLabelCount
	le := g.edgeLabelCount
	if le == 0 {
		le = 1 // the implicit NULL edge label
	}
	return lv+le > 2
}

// LabelFrequency returns how many vertices carry label l.
func (g *Graph) LabelFrequency(l Label) int { return g.labelFreq[l] }

// VerticesWithLabel returns all vertices carrying label l, in ascending ID
// order. It allocates; prefer LabelFrequency when only the count matters.
func (g *Graph) VerticesWithLabel(l Label) []VertexID {
	out := make([]VertexID, 0, g.labelFreq[l])
	for v, lab := range g.labels {
		if lab == l {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Edges calls fn for every edge exactly once. Directed graphs visit each
// arc (v,w); undirected graphs visit each edge once with v < w.
func (g *Graph) Edges(fn func(v, w VertexID, l EdgeLabel)) {
	for v := range g.out {
		for _, n := range g.out[v] {
			if !g.directed && n.To < VertexID(v) {
				continue
			}
			fn(VertexID(v), n.To, n.Label)
		}
	}
}

// UndirectedNeighbors returns the distinct neighbor IDs of v ignoring edge
// direction and labels, sorted ascending.
func (g *Graph) UndirectedNeighbors(v VertexID) []VertexID {
	var ns []Neighbor
	if g.directed {
		ns = mergeDistinct(g.out[v], g.in[v])
	} else {
		ns = g.out[v]
	}
	out := make([]VertexID, 0, len(ns))
	for _, n := range ns {
		if len(out) == 0 || out[len(out)-1] != n.To {
			out = append(out, n.To)
		}
	}
	return out
}

// searchNeighbor returns the first index in row whose To is >= w.
func searchNeighbor(row []Neighbor, w VertexID) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid].To < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mergeDistinct merges two sorted neighbor lists, dropping entries whose To
// repeats.
func mergeDistinct(a, b []Neighbor) []Neighbor {
	out := make([]Neighbor, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(n Neighbor) {
		if len(out) == 0 || out[len(out)-1].To != n.To {
			out = append(out, n)
		}
	}
	for i < len(a) && j < len(b) {
		if a[i].To <= b[j].To {
			push(a[i])
			i++
		} else {
			push(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(b); j++ {
		push(b[j])
	}
	return out
}

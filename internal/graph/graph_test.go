package graph

import (
	"bytes"
	"strings"
	"testing"
)

// paperExampleG builds the data graph G of the paper's Fig. 1 (vertices
// v1..v10 as IDs 0..9; labels A,B,C,D). Edges follow the running example:
// v1 has outgoing neighbors v2, v6 and neighbors v3, v10 (label C) and v7
// (label D); the two isomorphism clusters of Fig. 4 are reproduced by the
// cluster tests in package ccsr.
func paperExampleG(t testing.TB) *Graph {
	t.Helper()
	const text = `
t directed
v 0 A
v 1 B
v 2 C
v 3 A
v 4 B
v 5 B
v 6 D
v 7 C
v 8 A
v 9 C
e 0 1
e 0 5
e 0 2
e 0 9
e 6 0
e 3 4
e 3 2
e 1 2
e 4 7
e 8 7
e 8 9
`
	g, err := ParseString(text)
	if err != nil {
		t.Fatalf("parse example: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(false)
	a := b.AddVertex(1)
	c := b.AddVertex(2)
	d := b.AddVertex(1)
	b.AddEdge(a, c, 0)
	b.AddEdge(d, c, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges, want 3 and 2", g.NumVertices(), g.NumEdges())
	}
	if g.Directed() {
		t.Fatal("graph should be undirected")
	}
	if g.Degree(c) != 2 || g.Degree(a) != 1 {
		t.Fatalf("degrees wrong: deg(c)=%d deg(a)=%d", g.Degree(c), g.Degree(a))
	}
	if !g.HasEdge(c, a) || !g.HasEdge(a, c) {
		t.Fatal("undirected edge must be visible from both sides")
	}
	if l, ok := g.EdgeLabelOf(d, c); !ok || l != 5 {
		t.Fatalf("edge label = %d,%v want 5,true", l, ok)
	}
	if g.LabelFrequency(1) != 2 || g.LabelFrequency(2) != 1 {
		t.Fatal("label frequencies wrong")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(true)
	v := b.AddVertex(0)
	b.AddEdge(v, v, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-loop should be rejected")
	}
}

func TestBuilderRejectsDanglingEdge(t *testing.T) {
	b := NewBuilder(true)
	v := b.AddVertex(0)
	b.AddEdge(v, 7, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("edge to undeclared vertex should be rejected")
	}
}

func TestBuilderCollapsesDuplicateEdges(t *testing.T) {
	b := NewBuilder(true)
	a := b.AddVertex(0)
	c := b.AddVertex(0)
	b.AddEdge(a, c, 3)
	b.AddEdge(a, c, 3)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge not collapsed: %d edges", g.NumEdges())
	}
}

func TestDirectedAdjacency(t *testing.T) {
	g := paperExampleG(t)
	if !g.HasEdge(0, 1) {
		t.Fatal("expected edge v1->v2")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("reverse direction must not exist")
	}
	if !g.Adjacent(1, 0) {
		t.Fatal("Adjacent ignores direction")
	}
	if got := g.InDegree(2); got != 3 {
		t.Fatalf("in-degree of v3 = %d, want 3", got)
	}
	if got := g.OutDegree(0); got != 4 {
		t.Fatalf("out-degree of v1 = %d, want 4", got)
	}
	// Degree counts distinct neighbors once.
	if got := g.Degree(0); got != 5 {
		t.Fatalf("degree of v1 = %d, want 5", got)
	}
}

func TestHeterogeneous(t *testing.T) {
	if !paperExampleG(t).Heterogeneous() {
		t.Fatal("example graph has 4 vertex labels and must be heterogeneous")
	}
	uni := NewBuilder(false)
	uni.AddVertices(3, 0)
	uni.AddEdge(0, 1, 0)
	g := uni.MustBuild()
	if g.Heterogeneous() {
		t.Fatal("single-label graph must be homogeneous")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	g := paperExampleG(t)
	var buf bytes.Buffer
	if err := Format(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Out(VertexID(v)), g2.Out(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d adjacency size changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency changed at %d: %v vs %v", v, i, a[i], b[i])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":   "v 0 A\n",
		"sparse ids":       "t directed\nv 0 A\nv 2 B\n",
		"duplicate vertex": "t directed\nv 0 A\nv 0 B\nv 1 C\n",
		"bad record":       "t directed\nx 1 2\n",
		"bad type":         "t sideways\n",
		"dangling edge":    "t directed\nv 0 A\ne 0 3\n",
	}
	for name, text := range cases {
		if _, err := ParseString(text); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseEdgeLabels(t *testing.T) {
	g, err := ParseString("t directed\nv 0 A\nv 1 B\ne 0 1 knows\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeLabelCount() != 1 {
		t.Fatalf("edge label count = %d, want 1", g.EdgeLabelCount())
	}
	l, ok := g.EdgeLabelOf(0, 1)
	if !ok || g.Names.EdgeName(l) != "knows" {
		t.Fatalf("edge label lost: %v %v", l, ok)
	}
}

func TestComputeStats(t *testing.T) {
	g := paperExampleG(t)
	s := ComputeStats("fig1", g)
	if s.VertexCount != 10 || s.EdgeCount != 11 {
		t.Fatalf("stats size wrong: %+v", s)
	}
	if s.LabelCount != 4 {
		t.Fatalf("label count = %d, want 4", s.LabelCount)
	}
	if s.MaxOutDegree != 4 || s.MaxInDegree != 3 {
		t.Fatalf("max degrees wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "fig1") {
		t.Fatal("String() must include the dataset name")
	}
	// Unlabeled graphs report 0 labels like Table IV.
	b := NewBuilder(false)
	b.AddVertices(4, 0)
	b.AddEdge(0, 1, 0)
	if got := ComputeStats("u", b.MustBuild()).LabelCount; got != 0 {
		t.Fatalf("unlabeled LabelCount = %d, want 0", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := paperExampleG(t)
	sub, back := InducedSubgraph(g, []VertexID{0, 1, 2})
	if sub.NumVertices() != 3 {
		t.Fatalf("subgraph has %d vertices", sub.NumVertices())
	}
	// v1->v2, v1->v3, v2->v3 are all inside {v1,v2,v3}.
	if sub.NumEdges() != 3 {
		t.Fatalf("induced subgraph has %d edges, want 3", sub.NumEdges())
	}
	if back[0] != 0 || back[1] != 1 || back[2] != 2 {
		t.Fatalf("back-mapping wrong: %v", back)
	}
	if sub.Label(0) != g.Label(0) {
		t.Fatal("labels must be preserved")
	}
}

func TestEdgeSubgraph(t *testing.T) {
	g := paperExampleG(t)
	sub, back := EdgeSubgraph(g, [][3]uint32{{0, 1, 0}, {1, 2, 0}})
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("edge subgraph %d/%d, want 3/2", sub.NumVertices(), sub.NumEdges())
	}
	if back[0] != 0 || back[1] != 1 || back[2] != 2 {
		t.Fatalf("back-mapping wrong: %v", back)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(paperExampleG(t)) {
		t.Fatal("example graph is connected")
	}
	b := NewBuilder(false)
	b.AddVertices(4, 0)
	b.AddEdge(0, 1, 0)
	if IsConnected(b.MustBuild()) {
		t.Fatal("graph with isolated vertices is not connected")
	}
	if !IsConnected(Clique(5, 0)) || !IsConnected(Path(4)) || !IsConnected(Cycle(6)) {
		t.Fatal("clique/path/cycle constructors must build connected graphs")
	}
}

func TestCliquePathCycleShapes(t *testing.T) {
	c := Clique(5, 3)
	if c.NumEdges() != 10 {
		t.Fatalf("K5 has %d edges, want 10", c.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if c.Label(VertexID(v)) != 3 || c.Degree(VertexID(v)) != 4 {
			t.Fatal("clique labels/degrees wrong")
		}
	}
	p := Path(5, 1, 2)
	if p.NumEdges() != 4 || p.Label(0) != 1 || p.Label(1) != 2 || p.Label(2) != 1 {
		t.Fatal("path shape wrong")
	}
	cy := Cycle(4)
	if cy.NumEdges() != 4 || cy.Degree(0) != 2 {
		t.Fatal("cycle shape wrong")
	}
}

func TestVerticesWithLabel(t *testing.T) {
	g := paperExampleG(t)
	names := g.Names
	aLabel := names.Vertex("A")
	got := g.VerticesWithLabel(aLabel)
	want := []VertexID{0, 3, 8}
	if len(got) != len(want) {
		t.Fatalf("A vertices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A vertices = %v, want %v", got, want)
		}
	}
}

func TestEdgesIterationCountsUndirectedOnce(t *testing.T) {
	g := Clique(4, 0)
	count := 0
	g.Edges(func(v, w VertexID, l EdgeLabel) {
		if v >= w {
			t.Fatalf("undirected iteration must have v < w, got (%d,%d)", v, w)
		}
		count++
	})
	if count != 6 {
		t.Fatalf("iterated %d edges, want 6", count)
	}
}

func TestUndirectedNeighborsDirected(t *testing.T) {
	g := paperExampleG(t)
	ns := g.UndirectedNeighbors(0) // v1: out v2,v3,v6,v10; in v7
	want := []VertexID{1, 2, 5, 6, 9}
	if len(ns) != len(want) {
		t.Fatalf("neighbors of v1 = %v, want %v", ns, want)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("neighbors of v1 = %v, want %v", ns, want)
		}
	}
}

func TestDOT(t *testing.T) {
	g := paperExampleG(t)
	dot := DOT("fig1", g)
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Fatalf("directed DOT malformed:\n%s", dot)
	}
	if !strings.Contains(dot, "v0:A") {
		t.Fatal("labels missing from DOT")
	}
	und := DOT("clique", Clique(3, 0))
	if !strings.HasPrefix(und, "graph") || !strings.Contains(und, "--") {
		t.Fatalf("undirected DOT malformed:\n%s", und)
	}
	labeled, _ := ParseString("t undirected\nv 0 A\nv 1 B\ne 0 1 rel\n")
	if !strings.Contains(DOT("l", labeled), "rel") {
		t.Fatal("edge labels missing from DOT")
	}
}

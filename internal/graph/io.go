package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format understood by Parse/Format is a small superset of the
// edge-list format used by the subgraph-matching literature:
//
//	# comment
//	t directed|undirected
//	v <id> <vertexLabel>
//	e <src> <dst> [edgeLabel]
//
// Vertex IDs must be dense starting at 0 but may appear in any order.
// Labels are arbitrary tokens interned through a LabelTable, so both
// numeric ("7") and symbolic ("Person") labels work.

// Parse reads a graph in the text format from r with a fresh label table.
func Parse(r io.Reader) (*Graph, error) { return ParseWith(r, NewLabelTable()) }

// ParseWith reads a graph in the text format from r, interning labels into
// the supplied table. A pattern graph must be parsed with its data graph's
// table so that equal label names map to equal label values.
func ParseWith(r io.Reader, names *LabelTable) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	directed := false
	sawHeader := false
	type rawVertex struct {
		id    int
		label Label
	}
	var vertices []rawVertex
	type rawEdge struct {
		src, dst int
		label    EdgeLabel
	}
	var edges []rawEdge
	maxID := -1

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want \"t directed|undirected\"", lineNo)
			}
			switch fields[1] {
			case "directed":
				directed = true
			case "undirected":
				directed = false
			default:
				return nil, fmt.Errorf("graph: line %d: unknown graph type %q", lineNo, fields[1])
			}
			sawHeader = true
		case "v":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want \"v id label\"", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", lineNo, fields[1])
			}
			vertices = append(vertices, rawVertex{id, names.Vertex(fields[2])})
			if id > maxID {
				maxID = id
			}
		case "e":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want \"e src dst [label]\"", lineNo)
			}
			src, err1 := strconv.Atoi(fields[1])
			dst, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || src < 0 || dst < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge endpoints", lineNo)
			}
			var el EdgeLabel
			if len(fields) == 4 {
				el = names.Edge(fields[3])
			}
			edges = append(edges, rawEdge{src, dst, el})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("graph: missing \"t directed|undirected\" header")
	}
	if len(vertices) != maxID+1 {
		return nil, fmt.Errorf("graph: vertex ids not dense: %d declarations, max id %d", len(vertices), maxID)
	}

	b := NewBuilder(directed)
	b.SetNames(names)
	b.AddVertices(maxID+1, 0)
	seen := make([]bool, maxID+1)
	for _, v := range vertices {
		if seen[v.id] {
			return nil, fmt.Errorf("graph: vertex %d declared twice", v.id)
		}
		seen[v.id] = true
		b.SetVertexLabel(VertexID(v.id), v.label)
	}
	for _, e := range edges {
		if e.src > maxID || e.dst > maxID {
			return nil, fmt.Errorf("graph: edge (%d,%d) references undeclared vertex", e.src, e.dst)
		}
		b.AddEdge(VertexID(e.src), VertexID(e.dst), e.label)
	}
	return b.Build()
}

// ParseString parses a graph from an in-memory string; convenient for tests
// and examples.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// ParseStringWith parses a graph from a string, sharing the label table.
func ParseStringWith(s string, names *LabelTable) (*Graph, error) {
	return ParseWith(strings.NewReader(s), names)
}

// MustParse is ParseString but panics on error.
func MustParse(s string) *Graph {
	g, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return g
}

// Format writes g to w in the text format read by Parse.
func Format(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	fmt.Fprintf(bw, "t %s\n", kind)
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "v %d %s\n", v, g.Names.VertexName(g.Label(VertexID(v))))
	}
	var err error
	g.Edges(func(v, w2 VertexID, l EdgeLabel) {
		if l == 0 {
			_, err = fmt.Fprintf(bw, "e %d %d\n", v, w2)
		} else {
			_, err = fmt.Fprintf(bw, "e %d %d %s\n", v, w2, g.Names.EdgeName(l))
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

package exec

import (
	"math/rand"
	"testing"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/plan"
)

// benchSetup builds one deterministic data graph, pattern, plan, and view
// so every benchmark iteration measures only the extension search.
func benchSetup(b *testing.B, patternSize int) (*ccsr.View, *plan.Plan) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 3000, 15000, 4, 2, true)
	p := randomConnectedPattern(rng, patternSize, 4, 2, true)
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.Homomorphic, plan.ModeCSCE)
	if err != nil {
		b.Fatalf("optimize: %v", err)
	}
	view, err := store.ReadCSR(p, graph.Homomorphic)
	if err != nil {
		b.Fatalf("read: %v", err)
	}
	return view, pl
}

// BenchmarkExtend is the allocation ground truth behind the //csce:hotpath
// annotations in engine.go: allocs/op here is dominated by engine
// construction plus whatever the extend/intersect loop leaks per step.
// The static gate (cscelint -checks allocfree) catches escape-visible
// regressions; this catches the append-growth and inlining cases it
// cannot see.
func BenchmarkExtend(b *testing.B) {
	view, pl := benchSetup(b, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(view, pl, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtendPinned drives the delta-matching path: a pinned level's
// candidate list used to be rebuilt with a fresh one-element slice on
// every visit; it is now a slice built once at engine construction.
func BenchmarkExtendPinned(b *testing.B) {
	view, pl := benchSetup(b, 5)
	u := pl.Order[len(pl.Order)-1]
	var pin graph.VertexID
	for v := 0; v < view.NumVertices(); v++ {
		if view.VertexLabel(graph.VertexID(v)) == pl.Pattern.Label(u) {
			pin = graph.VertexID(v)
			break
		}
	}
	opts := Options{Pinned: [][2]graph.VertexID{{u, pin}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(view, pl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtendParallel covers the worker construction path: workers
// now receive their chunk of the prototype's depth-0 pool instead of
// re-scanning the clusters and re-filtering by label per worker.
func BenchmarkExtendParallel(b *testing.B) {
	view, pl := benchSetup(b, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunParallel(view, pl, Options{}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

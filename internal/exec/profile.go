package exec

import (
	"fmt"
	"strings"
	"time"

	"csce/internal/graph"
)

// LevelProfile is the per-matching-order-position breakdown of one run —
// the PROFILE counterpart to a query plan, showing where the search spent
// its work and how much the SCE machinery saved at each depth.
type LevelProfile struct {
	// Vertex is the pattern vertex matched at this position.
	Vertex graph.VertexID
	// Steps counts candidate extensions attempted at this depth.
	Steps uint64
	// CandidateBuilds and CandidateReuses split candidate-set requests at
	// this depth into fresh intersections and SCE cache hits.
	CandidateBuilds uint64
	CandidateReuses uint64
	// NECShares counts candidate lists borrowed from an equivalent level.
	NECShares uint64
	// CandidateTotal sums the sizes of candidate sets built here, so
	// CandidateTotal/CandidateBuilds is the mean fresh fan-out.
	CandidateTotal uint64
	// Factorized counts how often this level was folded into a product.
	Factorized uint64
}

// Profile is the per-level execution profile of one run.
type Profile struct {
	Levels  []LevelProfile
	Elapsed time.Duration
}

// String renders the profile as an aligned table.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-7s %-12s %-10s %-10s %-10s %-10s %-10s\n",
		"pos", "vertex", "steps", "builds", "reuses", "nec", "avgCands", "factorized")
	for i, lv := range p.Levels {
		avg := "-"
		if lv.CandidateBuilds > 0 {
			avg = fmt.Sprintf("%.1f", float64(lv.CandidateTotal)/float64(lv.CandidateBuilds))
		}
		fmt.Fprintf(&b, "%-5d u%-6d %-12d %-10d %-10d %-10d %-10s %-10d\n",
			i, lv.Vertex, lv.Steps, lv.CandidateBuilds, lv.CandidateReuses,
			lv.NECShares, avg, lv.Factorized)
	}
	return b.String()
}

// profiler accumulates per-depth counters; attached to an engine when
// profiling is requested.
type profiler struct {
	levels []LevelProfile
}

func newProfiler(e *engine) *profiler {
	p := &profiler{levels: make([]LevelProfile, e.n)}
	for d := range e.levels {
		p.levels[d].Vertex = e.levels[d].u
	}
	return p
}

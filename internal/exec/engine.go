package exec

import (
	"time"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/plan"
)

// posConstraint requires a candidate to appear in the adjacency row of an
// earlier mapping inside a specific cluster CSR.
type posConstraint struct {
	parentDepth int
	csr         *ccsr.CSR
}

// negConstraint rejects candidates adjacent (in any listed cluster side) to
// an earlier mapping whose pattern vertex is a non-neighbor — the
// vertex-induced negation of Algorithm 1/2.
type negConstraint struct {
	parentDepth int
	csrs        []*ccsr.CSR
}

// symConstraint enforces f(order[parentDepth]) < candidate (greater=true)
// or candidate < f(order[parentDepth]) (greater=false).
type symConstraint struct {
	parentDepth int
	greater     bool
}

// level holds the static per-depth matching state plus the SCE cache.
type level struct {
	u     graph.VertexID
	label graph.Label

	pos  []posConstraint
	neg  []negConstraint
	sym  []symConstraint
	pool []graph.VertexID // depth-0 candidate pool

	parentDepths []int // depths whose mapping the candidate set depends on

	// SCE cache: cands is valid while cacheVers matches the version of
	// every parent mapping.
	cands      []graph.VertexID
	candsBuf   []graph.VertexID
	cacheVers  []uint64
	cacheValid bool

	// factorizable: no later order position depends on this vertex, and
	// injectivity cannot couple it to later vertices.
	factorizable bool

	// necAlias, when >= 0, is an earlier depth whose vertex is
	// NEC-equivalent with the same dependency parents: its candidate list
	// is this level's candidate list (TurboISO-style candidate sharing,
	// applied at the end of optimization as in Section III).
	necAlias int

	// pinned restricts this level to a single data vertex (delta matching).
	pinned    bool
	pinnedVal graph.VertexID
	// pinnedSlice is the fixed one-element candidate list match hands out
	// for a pinned level, built once at construction so the hot loop never
	// materializes it per visit.
	pinnedSlice []graph.VertexID
}

type engine struct {
	view *ccsr.View
	pl   *plan.Plan
	opts Options

	n       int
	levels  []level
	mapping []graph.VertexID // by depth
	byVert  []graph.VertexID // by pattern vertex ID, for callbacks
	used    []bool
	version []uint64

	stats    Stats
	deadline time.Time
	done     <-chan struct{} // Options.Ctx.Done(); nil when uncancellable
	stop     bool

	// rowsBuf is buildCandidates' scratch for the positive parent rows,
	// sized once to the widest constraint list; buildCandidates is never
	// reentered, so one buffer per engine suffices.
	rowsBuf [][]graph.VertexID

	// shared coordinates the workers of a RunParallel invocation; nil for
	// single-threaded runs.
	shared *sharedState

	// prof, when non-nil, accumulates the per-level profile.
	prof *profiler
}

// newEngine precompiles the plan into per-depth constraint lists. It
// returns (nil, nil) when some pattern edge has no matching cluster, which
// means the result is trivially empty.
func newEngine(view *ccsr.View, pl *plan.Plan, opts Options) (*engine, error) {
	return buildEngine(view, pl, opts, nil)
}

// buildEngine is newEngine with an optional preset depth-0 pool: RunParallel
// workers pass their chunk of the prototype's pool so each worker skips the
// cluster scan and label filter buildPool would redo.
func buildEngine(view *ccsr.View, pl *plan.Plan, opts Options, presetPool []graph.VertexID) (*engine, error) {
	p := pl.Pattern
	n := len(pl.Order)
	e := &engine{
		view:    view,
		pl:      pl,
		opts:    opts,
		n:       n,
		levels:  make([]level, n),
		mapping: make([]graph.VertexID, n),
		byVert:  make([]graph.VertexID, p.NumVertices()),
		used:    make([]bool, view.NumVertices()),
		version: make([]uint64, n),
	}
	if opts.TimeLimit > 0 {
		e.deadline = time.Now().Add(opts.TimeLimit)
	}
	if opts.Ctx != nil {
		e.done = opts.Ctx.Done()
	}

	depthOf := make([]int, p.NumVertices())
	for d, u := range pl.Order {
		depthOf[u] = d
	}
	laterLabels := make(map[graph.Label]int) // label -> count among later vertices

	for d := n - 1; d >= 0; d-- {
		u := pl.Order[d]
		lv := &e.levels[d]
		lv.u = u
		lv.label = p.Label(u)

		// Positive constraints: one per pattern edge between u and an
		// earlier vertex, resolved to the cluster side whose rows are
		// indexed by the earlier vertex's mapping.
		ok, err := e.buildPositive(lv, d, depthOf)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil // missing cluster: no embeddings exist
		}

		// Negation constraints come from the dependency DAG: an H-parent
		// that is not a pattern neighbor is a vertex-induced negation
		// dependency.
		if pl.Variant == graph.VertexInduced {
			e.buildNegation(lv, d, depthOf)
		}

		// Factorization eligibility (see package comment).
		if pl.DAG != nil {
			lv.factorizable = len(pl.DAG.Out(int(u))) == 0
		}
		if pl.Variant.Injective() && laterLabels[lv.label] > 0 {
			lv.factorizable = false
		}
		laterLabels[lv.label]++

		lv.parentDepths = collectParents(lv)
		lv.cacheVers = make([]uint64, len(lv.parentDepths))
	}

	// Depth 0 candidate pool: the smallest incident cluster's non-empty
	// rows, filtered to the right label.
	if presetPool != nil {
		e.levels[0].pool = presetPool
	} else if err := e.buildPool(); err != nil {
		return nil, err
	}
	if e.levels[0].pool == nil {
		return nil, nil
	}

	maxPos := 0
	for d := range e.levels {
		if len(e.levels[d].pos) > maxPos {
			maxPos = len(e.levels[d].pos)
		}
	}
	e.rowsBuf = make([][]graph.VertexID, maxPos)

	e.bindNECAliases(depthOf)

	// Symmetry constraints attach to the later-ordered endpoint.
	for _, c := range opts.SymmetryConstraints {
		a, b := c[0], c[1] // f(a) < f(b)
		da, db := depthOf[a], depthOf[b]
		if da < db {
			e.levels[db].sym = append(e.levels[db].sym, symConstraint{parentDepth: da, greater: true})
		} else {
			e.levels[da].sym = append(e.levels[da].sym, symConstraint{parentDepth: db, greater: false})
		}
	}
	// Pinned assignments restrict single levels; a pin whose label cannot
	// match makes the whole search empty.
	for _, pin := range opts.Pinned {
		u, v := pin[0], pin[1]
		d := depthOf[u]
		if int(v) >= view.NumVertices() || view.VertexLabel(v) != p.Label(u) {
			return nil, nil
		}
		lv := &e.levels[d]
		lv.pinned = true
		lv.pinnedVal = v
		lv.pinnedSlice = []graph.VertexID{v}
		lv.factorizable = false
	}
	if len(opts.SymmetryConstraints) > 0 || opts.OnEmbedding != nil || opts.DisableFactorization {
		for d := range e.levels {
			e.levels[d].factorizable = false
		}
	}
	return e, nil
}

// buildPositive resolves the pattern edges between order[d] and earlier
// vertices into cluster CSR constraints. It reports ok=false when a needed
// cluster does not exist in the data graph.
func (e *engine) buildPositive(lv *level, d int, depthOf []int) (bool, error) {
	p := e.pl.Pattern
	u := lv.u
	add := func(w graph.VertexID, csr *ccsr.CSR) bool {
		if csr == nil {
			return false
		}
		lv.pos = append(lv.pos, posConstraint{parentDepth: depthOf[w], csr: csr})
		return true
	}
	if p.Directed() {
		// Edges w -> u: candidates are outgoing neighbors of f(w).
		for _, nb := range p.In(u) {
			if depthOf[nb.To] >= d {
				continue
			}
			c := e.view.EdgeCluster(p.Label(nb.To), lv.label, nb.Label)
			if c == nil || !add(nb.To, c.FromSrc()) {
				return false, nil
			}
		}
		// Edges u -> w: candidates are incoming neighbors of f(w).
		for _, nb := range p.Out(u) {
			if depthOf[nb.To] >= d {
				continue
			}
			c := e.view.EdgeCluster(lv.label, p.Label(nb.To), nb.Label)
			if c == nil || !add(nb.To, c.FromDst()) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, nb := range p.Out(u) {
		if depthOf[nb.To] >= d {
			continue
		}
		c := e.view.EdgeCluster(lv.label, p.Label(nb.To), nb.Label)
		if c == nil || !add(nb.To, c.FromSrc()) {
			return false, nil
		}
	}
	return true, nil
}

// buildNegation derives the vertex-induced negation checks for depth d
// from the dependency DAG. For a non-neighbor H-parent, every data arc
// between the mappings is forbidden. For a pattern-neighbor parent, only
// the arcs the pattern actually has are allowed: a reverse arc or an arc
// with a different edge label in the data graph would make the induced
// subgraph non-isomorphic to P, so clusters holding such arcs become
// negation checks too.
func (e *engine) buildNegation(lv *level, d int, depthOf []int) {
	p := e.pl.Pattern
	u := lv.u
	for _, par := range e.pl.DAG.In(int(u)) {
		w := graph.VertexID(par)
		if depthOf[w] >= d {
			continue
		}
		nc := negConstraint{parentDepth: depthOf[w]}
		for _, c := range e.view.PairClusters(p.Label(w), p.Label(u)) {
			if !c.Key.Directed {
				if !patternHasUndirected(p, w, u, c.Key.Edge) {
					nc.csrs = append(nc.csrs, c.Out)
				}
				continue
			}
			// Directed cluster (L(w) -> L(u)): rows of Out are indexed by
			// the w-side; (L(u) -> L(w)): rows of In are indexed by the
			// w-side. Either way Has(f(w), candidate) answers adjacency.
			// Clusters whose arc the pattern requires are excluded — the
			// positive constraints already enforce their presence.
			if c.Key.Src == p.Label(w) && !p.HasEdgeLabeled(w, u, c.Key.Edge) {
				nc.csrs = append(nc.csrs, c.Out)
			}
			if c.Key.Dst == p.Label(w) && !p.HasEdgeLabeled(u, w, c.Key.Edge) {
				nc.csrs = append(nc.csrs, c.In)
			}
		}
		if len(nc.csrs) > 0 {
			lv.neg = append(lv.neg, nc)
		}
	}
}

// patternHasUndirected reports whether the undirected pattern has an edge
// between w and u with the given label.
func patternHasUndirected(p *graph.Graph, w, u graph.VertexID, el graph.EdgeLabel) bool {
	return p.HasEdgeLabeled(w, u, el)
}

// buildPool selects the depth-0 candidate pool from the smallest incident
// cluster of the first pattern vertex, label-filtered.
func (e *engine) buildPool() error {
	p := e.pl.Pattern
	lv := &e.levels[0]
	u := lv.u

	type side struct {
		csr  *ccsr.CSR
		size int
	}
	var best *side
	consider := func(csr *ccsr.CSR) {
		if csr == nil {
			return
		}
		s := side{csr: csr, size: csr.Len()}
		if best == nil || s.size < best.size {
			best = &s
		}
	}
	if p.Directed() {
		for _, nb := range p.Out(u) {
			if c := e.view.EdgeCluster(lv.label, p.Label(nb.To), nb.Label); c != nil {
				consider(c.FromSrc())
			} else {
				return nil // missing cluster: empty result (pool stays nil)
			}
		}
		for _, nb := range p.In(u) {
			if c := e.view.EdgeCluster(p.Label(nb.To), lv.label, nb.Label); c != nil {
				consider(c.FromDst())
			} else {
				return nil
			}
		}
	} else {
		for _, nb := range p.Out(u) {
			if c := e.view.EdgeCluster(lv.label, p.Label(nb.To), nb.Label); c != nil {
				consider(c.FromSrc())
			} else {
				return nil
			}
		}
	}
	if best == nil {
		if e.n == 1 {
			// Single-vertex pattern: every data vertex with the label.
			var pool []graph.VertexID
			for v := 0; v < e.view.NumVertices(); v++ {
				if e.view.VertexLabel(graph.VertexID(v)) == lv.label {
					pool = append(pool, graph.VertexID(v))
				}
			}
			lv.pool = pool
			if lv.pool == nil {
				lv.pool = []graph.VertexID{}
			}
			return nil
		}
		return errInternal("first order vertex u%d has no incident pattern edge", u)
	}
	pool := best.csr.NonEmptyRows()
	filtered := make([]graph.VertexID, 0, len(pool))
	for _, v := range pool {
		if e.view.VertexLabel(v) == lv.label {
			filtered = append(filtered, v)
		}
	}
	lv.pool = filtered
	return nil
}

// bindNECAliases links each level to the earliest NEC-equivalent level
// with identical dependency parents, so their candidate lists are shared.
// Sharing is restricted to the edge-induced and homomorphic variants: in
// the vertex-induced variant a later equivalent vertex additionally
// filters against the earlier one's mapping (mutual non-adjacency), so the
// lists differ.
func (e *engine) bindNECAliases(depthOf []int) {
	for d := range e.levels {
		e.levels[d].necAlias = -1
	}
	if e.pl.Variant == graph.VertexInduced || e.pl.NECClasses == nil || e.opts.DisableSCECache {
		// Sharing rides on the candidate cache: with the cache disabled a
		// deeper alias lookup would rebuild into the buffer the aliased
		// level is iterating.
		return
	}
	for _, class := range e.pl.NECClasses {
		if len(class) < 2 {
			continue
		}
		// Order class members by depth; alias each to the earliest member
		// whose parent set matches.
		depths := make([]int, 0, len(class))
		for _, u := range class {
			depths = append(depths, depthOf[u])
		}
		sortInts(depths)
		for i := 1; i < len(depths); i++ {
			d := depths[i]
			for j := 0; j < i; j++ {
				ea := depths[j]
				if sameParents(e.levels[d].parentDepths, e.levels[ea].parentDepths) {
					e.levels[d].necAlias = ea
					break
				}
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sameParents(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func collectParents(lv *level) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range lv.pos {
		if !seen[c.parentDepth] {
			seen[c.parentDepth] = true
			out = append(out, c.parentDepth)
		}
	}
	for _, c := range lv.neg {
		if !seen[c.parentDepth] {
			seen[c.parentDepth] = true
			out = append(out, c.parentDepth)
		}
	}
	return out
}

// run drives the search from depth 0.
func (e *engine) run() {
	if e.cancelled() {
		return // already-dead context: do zero work
	}
	e.match(0, 1)
}

// match extends the partial embedding at depth d; factor is the product of
// factorized level counts accumulated so far.
//
//csce:hotpath the per-embedding extension loop; one allocation here scales with Steps
func (e *engine) match(d int, factor uint64) {
	if e.stop {
		return
	}
	if d == e.n {
		e.emit(factor)
		return
	}
	lv := &e.levels[d]
	cands := e.candidates(d)
	if len(cands) == 0 {
		return
	}
	if lv.pinned {
		// A pinned level contributes its fixed vertex or nothing.
		if !containsSorted(cands, lv.pinnedVal) {
			return
		}
		cands = lv.pinnedSlice
	}

	if lv.factorizable {
		if e.prof != nil {
			e.prof.levels[d].Factorized++
		}
		// Count valid candidates without descending per candidate: no later
		// level depends on this mapping and injectivity cannot couple it.
		valid := uint64(0)
		if e.pl.Variant.Injective() {
			for _, v := range cands {
				if !e.used[v] {
					valid++
				}
			}
		} else {
			valid = uint64(len(cands))
		}
		if valid == 0 {
			return
		}
		e.stats.FactorizedLevels++
		e.match(d+1, factor*valid)
		return
	}

	injective := e.pl.Variant.Injective()
	for _, v := range cands {
		if e.stop {
			return
		}
		e.stats.Steps++
		if e.prof != nil {
			e.prof.levels[d].Steps++
		}
		if e.stats.Steps&1023 == 0 {
			if e.overDeadline() || e.cancelled() {
				return
			}
			if e.shared != nil && e.shared.stop.Load() {
				e.stop = true
				return
			}
		}
		if injective && e.used[v] {
			continue
		}
		if !e.symOK(lv, v) {
			continue
		}
		e.mapping[d] = v
		e.byVert[lv.u] = v
		e.version[d]++
		if injective {
			e.used[v] = true
		}
		e.match(d+1, factor)
		if injective {
			e.used[v] = false
		}
	}
}

// emit accounts one (possibly factorized) embedding. The limit is enforced
// exactly: the factor is clamped to the remaining budget *before* it is
// counted, and in parallel runs the budget lives in a shared counter whose
// slots are reserved with CompareAndSwap, so no worker can push the total
// past the limit between check and emission.
//
//csce:hotpath runs once per embedding; counting must not allocate
func (e *engine) emit(factor uint64) {
	switch {
	case e.shared != nil && e.shared.limit > 0:
		for {
			cur := e.shared.total.Load()
			if cur >= e.shared.limit {
				e.shared.stop.Store(true)
				e.stop = true
				return
			}
			take := factor
			if cur+take >= e.shared.limit {
				take = e.shared.limit - cur
			}
			if e.shared.total.CompareAndSwap(cur, cur+take) {
				factor = take
				if cur+take == e.shared.limit {
					e.stats.LimitHit = true
					e.shared.stop.Store(true)
					e.stop = true
				}
				break
			}
		}
	case e.shared != nil:
		e.shared.total.Add(factor)
	case e.opts.Limit > 0:
		if remaining := e.opts.Limit - e.stats.Embeddings; factor >= remaining {
			factor = remaining
			e.stats.LimitHit = true
			e.stop = true
		}
	}
	e.stats.Embeddings += factor
	if e.opts.OnEmbedding != nil {
		// A callback disables factorization, so factor is 1 here and the
		// reservation above admitted exactly this embedding.
		if !e.opts.OnEmbedding(e.byVert) {
			e.stop = true
		}
	}
}

// candidates returns the candidate list of depth d, reusing the SCE cache
// when no parent mapping changed since it was built.
//
//csce:hotpath the cache-hit path must stay allocation-free
func (e *engine) candidates(d int) []graph.VertexID {
	lv := &e.levels[d]
	if d == 0 {
		return lv.pool
	}
	if lv.necAlias >= 0 {
		// NEC sharing: an equivalent earlier vertex with the same parents
		// has this exact candidate list (its cache is necessarily valid,
		// since its parents are all mapped above us and unchanged).
		e.stats.NECShares++
		if e.prof != nil {
			e.prof.levels[d].NECShares++
		}
		return e.candidates(lv.necAlias)
	}
	if !e.opts.DisableSCECache && lv.cacheValid {
		hit := true
		for i, pd := range lv.parentDepths {
			if lv.cacheVers[i] != e.version[pd] {
				hit = false
				break
			}
		}
		if hit {
			e.stats.CandidateReuses++
			if e.prof != nil {
				e.prof.levels[d].CandidateReuses++
			}
			return lv.cands
		}
	}
	e.stats.CandidateBuilds++
	lv.cands = e.buildCandidates(lv)
	if e.prof != nil {
		e.prof.levels[d].CandidateBuilds++
		e.prof.levels[d].CandidateTotal += uint64(len(lv.cands))
	}
	if !e.opts.DisableSCECache {
		for i, pd := range lv.parentDepths {
			lv.cacheVers[i] = e.version[pd]
		}
		lv.cacheValid = true
	}
	return lv.cands
}

// buildCandidates intersects the positive parent rows and applies the
// negation filter. The returned slice aliases lv.candsBuf unless there is a
// single positive constraint and no negation, in which case it aliases
// cluster memory directly (zero copy).
//
//csce:hotpath rebuilt on every cache miss; row scratch and output buffer are engine-owned
func (e *engine) buildCandidates(lv *level) []graph.VertexID {
	rows := e.rowsBuf[:len(lv.pos)]
	smallest := 0
	for i, c := range lv.pos {
		rows[i] = c.csr.Row(e.mapping[c.parentDepth])
		if len(rows[i]) < len(rows[smallest]) {
			smallest = i
		}
	}
	base := rows[smallest]
	if len(lv.pos) == 1 && len(lv.neg) == 0 {
		return base
	}

	out := lv.candsBuf[:0]
	for _, v := range base {
		ok := true
		for i, row := range rows {
			if i == smallest {
				continue
			}
			if !containsSorted(row, v) {
				ok = false
				break
			}
		}
		if ok {
			for _, nc := range lv.neg {
				w := e.mapping[nc.parentDepth]
				for _, csr := range nc.csrs {
					if csr.Has(w, v) {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	lv.candsBuf = out
	return out
}

//csce:hotpath checked once per candidate vertex
func (e *engine) symOK(lv *level, v graph.VertexID) bool {
	for _, s := range lv.sym {
		w := e.mapping[s.parentDepth]
		if s.greater {
			if v <= w {
				return false
			}
		} else if v >= w {
			return false
		}
	}
	return true
}

// cancelled polls the context's done channel (non-blocking). It is called
// on entry and every ~1k extension steps, so cancellation latency is
// bounded by a short burst of in-memory work, never by the search size.
func (e *engine) cancelled() bool {
	if e.done == nil {
		return false
	}
	select {
	case <-e.done:
		e.stats.Cancelled = true
		e.stop = true
		return true
	default:
		return false
	}
}

func (e *engine) overDeadline() bool {
	if e.deadline.IsZero() {
		return false
	}
	if time.Now().After(e.deadline) {
		e.stats.TimedOut = true
		e.stop = true
		return true
	}
	return false
}

// containsSorted reports whether v occurs in the ascending slice xs.
//
//csce:hotpath the intersection probe; pure index arithmetic
func containsSorted(xs []graph.VertexID, v graph.VertexID) bool {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(xs) && xs[lo] == v
}

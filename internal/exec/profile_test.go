package exec

import (
	"math/rand"
	"strings"
	"testing"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/plan"
)

func TestRunWithProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 40, 160, 3, 1, false)
	p := randomConnectedPattern(rng, 5, 3, 1, false)
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(view, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, prof, err := RunWithProfile(view, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != plain.Embeddings {
		t.Fatalf("profiling changed the count: %d vs %d", st.Embeddings, plain.Embeddings)
	}
	if len(prof.Levels) != p.NumVertices() {
		t.Fatalf("profile has %d levels, want %d", len(prof.Levels), p.NumVertices())
	}
	// Per-level counters must sum to the global ones.
	var steps, builds, reuses uint64
	for _, lv := range prof.Levels {
		steps += lv.Steps
		builds += lv.CandidateBuilds
		reuses += lv.CandidateReuses
	}
	if steps != st.Steps || builds != st.CandidateBuilds || reuses != st.CandidateReuses {
		t.Fatalf("per-level sums diverge: steps %d/%d builds %d/%d reuses %d/%d",
			steps, st.Steps, builds, st.CandidateBuilds, reuses, st.CandidateReuses)
	}
	// Every plan vertex appears once, in order.
	for i, lv := range prof.Levels {
		if lv.Vertex != pl.Order[i] {
			t.Fatalf("level %d profiles u%d, want u%d", i, lv.Vertex, pl.Order[i])
		}
	}
	out := prof.String()
	if !strings.Contains(out, "steps") || strings.Count(out, "\n") < p.NumVertices() {
		t.Fatalf("profile table malformed:\n%s", out)
	}
}

func TestRunWithProfileEmptyResult(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 B\ne 0 1\n")
	p, err := graph.ParseStringWith("t undirected\nv 0 A\nv 1 C\ne 0 1\n", g.Names)
	if err != nil {
		t.Fatal(err)
	}
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	st, prof, err := RunWithProfile(view, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 0 || len(prof.Levels) != 0 {
		t.Fatalf("empty result must yield an empty profile: %+v", prof)
	}
}

// TestRunParallelProfileMerge pins the parallel profile path: per-worker
// level profiles merge into one whose per-level sums equal the merged
// global counters, with the plan's vertex at every position.
func TestRunParallelProfileMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 60, 240, 3, 1, false)
	p := randomConnectedPattern(rng, 5, 3, 1, false)
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(view, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunParallel(view, pl, Options{Profile: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != serial.Embeddings {
		t.Fatalf("parallel profiling changed the count: %d vs %d", st.Embeddings, serial.Embeddings)
	}
	if st.Profile == nil {
		t.Fatal("parallel run with Options.Profile returned no profile")
	}
	if len(st.Profile.Levels) != p.NumVertices() {
		t.Fatalf("merged profile has %d levels, want %d", len(st.Profile.Levels), p.NumVertices())
	}
	var steps, builds, reuses, nec uint64
	for i, lv := range st.Profile.Levels {
		if lv.Vertex != pl.Order[i] {
			t.Fatalf("level %d profiles u%d, want u%d", i, lv.Vertex, pl.Order[i])
		}
		steps += lv.Steps
		builds += lv.CandidateBuilds
		reuses += lv.CandidateReuses
		nec += lv.NECShares
	}
	if steps != st.Steps || builds != st.CandidateBuilds ||
		reuses != st.CandidateReuses || nec != st.NECShares {
		t.Fatalf("merged per-level sums diverge from merged stats: steps %d/%d builds %d/%d reuses %d/%d nec %d/%d",
			steps, st.Steps, builds, st.CandidateBuilds, reuses, st.CandidateReuses, nec, st.NECShares)
	}
}

package exec

import (
	"math/rand"
	"sync"
	"testing"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/plan"
)

func parallelFixture(t testing.TB, seed int64) (*ccsr.View, *plan.Plan) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := randomGraph(rng, 60, 240, 3, 1, seed%2 == 0)
	p := randomConnectedPattern(rng, 4, 3, 1, seed%2 == 0)
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	return view, pl
}

func TestRunParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		view, pl := parallelFixture(t, seed)
		seq, err := Run(view, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			par, err := RunParallel(view, pl, Options{}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Embeddings != seq.Embeddings {
				t.Fatalf("seed %d workers %d: parallel %d, sequential %d",
					seed, workers, par.Embeddings, seq.Embeddings)
			}
		}
	}
}

func TestRunParallelSingleWorkerDelegates(t *testing.T) {
	view, pl := parallelFixture(t, 3)
	a, err := Run(view, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(view, pl, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Embeddings != b.Embeddings {
		t.Fatal("workers=1 must behave exactly like Run")
	}
}

func TestRunParallelCallbackSerialized(t *testing.T) {
	view, pl := parallelFixture(t, 5)
	var mu sync.Mutex
	inCallback := false
	var count uint64
	_, err := RunParallel(view, pl, Options{
		OnEmbedding: func(m []graph.VertexID) bool {
			mu.Lock()
			if inCallback {
				t.Error("callback reentered concurrently")
			}
			inCallback = true
			mu.Unlock()

			mu.Lock()
			inCallback = false
			count++
			mu.Unlock()
			return true
		},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(view, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if count != seq.Embeddings {
		t.Fatalf("callback saw %d embeddings, want %d", count, seq.Embeddings)
	}
}

func TestRunParallelLimitStops(t *testing.T) {
	view, pl := parallelFixture(t, 7)
	seq, err := Run(view, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Embeddings < 50 {
		t.Skip("fixture too small for a meaningful limit test")
	}
	par, err := RunParallel(view, pl, Options{Limit: 20, DisableFactorization: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !par.LimitHit {
		t.Fatalf("limit not reported: %+v", par)
	}
	// Workers reserve slots on the shared counter, so the limit is exact.
	if par.Embeddings != 20 {
		t.Fatalf("limited parallel run found %d embeddings, want exactly 20", par.Embeddings)
	}
}

func TestRunParallelEmptyResult(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 B\ne 0 1\n")
	p, err := graph.ParseStringWith("t undirected\nv 0 A\nv 1 C\ne 0 1\n", g.Names)
	if err != nil {
		t.Fatal(err)
	}
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunParallel(view, pl, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 0 {
		t.Fatalf("expected empty result, got %d", st.Embeddings)
	}
}

package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/obs"
	"csce/internal/plan"
)

// RunParallel is the multi-goroutine variant of Run: the depth-0 candidate
// pool is split into contiguous chunks, each searched by an independent
// engine instance over the shared (read-only) cluster view. The paper's
// evaluation is single-threaded; this is the natural Go extension for
// multi-core machines and is exact — counts equal Run's.
//
// Semantics notes:
//   - OnEmbedding callbacks are serialized by a mutex, so they may observe
//     embeddings in any order but never concurrently.
//   - Limit is exact: workers reserve slots on a shared counter with
//     CompareAndSwap before emitting, so the total never exceeds the limit
//     (factorized factors are clamped to the remaining budget).
//   - Cancellation via Options.Ctx is cooperative: every worker polls the
//     context and the merged Stats carries Cancelled.
//   - Per-worker SCE caches are independent, so CandidateReuses may be
//     lower than a single-threaded run's.
func RunParallel(view *ccsr.View, pl *plan.Plan, opts Options, workers int) (Stats, error) {
	if workers <= 1 {
		return Run(view, pl, opts)
	}
	var out Stats
	_, endSpan := obs.StartSpanCtx(opts.Ctx, "exec.search")
	defer func() {
		endSpan(obs.Int("embeddings", int64(out.Embeddings)),
			obs.Int("steps", int64(out.Steps)),
			obs.Int("workers", int64(workers)))
	}()

	// Build a prototype engine to materialize the depth-0 pool (and to
	// fail fast on structural problems).
	proto, err := newEngine(view, pl, opts)
	if err != nil {
		return Stats{}, err
	}
	if proto == nil {
		return Stats{}, nil
	}
	pool := proto.levels[0].pool
	if len(pool) == 0 {
		return Stats{}, nil
	}
	if workers > len(pool) {
		workers = len(pool)
	}

	var (
		mu       sync.Mutex // serializes OnEmbedding
		total    atomic.Uint64
		stopFlag atomic.Bool
	)
	sharedOpts := opts
	if opts.OnEmbedding != nil {
		userCB := opts.OnEmbedding
		// cbStopped (not stopFlag) gates delivery: stopFlag is also set by
		// the limit reservation, and an embedding whose slot was already
		// reserved must still reach the consumer or the exact limit would
		// undercount. Only a false return from the user callback suppresses
		// further deliveries.
		cbStopped := false
		sharedOpts.OnEmbedding = func(m []graph.VertexID) bool {
			mu.Lock()
			defer mu.Unlock()
			if cbStopped {
				return false
			}
			if !userCB(m) {
				cbStopped = true
				stopFlag.Store(true)
				return false
			}
			return true
		}
	}
	// Workers watch the shared embedding count for the limit; each keeps
	// its own local Limit disabled and uses a periodic check instead.
	perWorker := make([]Stats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pool) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pool) {
			hi = len(pool)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			workerOpts := sharedOpts
			workerOpts.Limit = 0 // the shared counter enforces the limit
			// The prototype already scanned the clusters and label-filtered
			// the depth-0 pool; hand each worker its chunk directly instead
			// of rebuilding the pool K times.
			e, err := buildEngine(view, pl, workerOpts, pool[lo:hi])
			if err != nil {
				errs[w] = err
				return
			}
			if e == nil {
				return
			}
			if workerOpts.Profile {
				e.prof = newProfiler(e)
			}
			e.shared = &sharedState{total: &total, stop: &stopFlag, limit: opts.Limit}
			start := time.Now()
			e.run()
			e.stats.Elapsed = time.Since(start)
			if e.prof != nil {
				e.stats.Profile = &Profile{Levels: e.prof.levels, Elapsed: e.stats.Elapsed}
			}
			perWorker[w] = e.stats
		}(w, lo, hi)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return out, errs[w]
		}
		s := perWorker[w]
		out.Embeddings += s.Embeddings
		out.Steps += s.Steps
		out.CandidateBuilds += s.CandidateBuilds
		out.CandidateReuses += s.CandidateReuses
		out.NECShares += s.NECShares
		out.FactorizedLevels += s.FactorizedLevels
		out.TimedOut = out.TimedOut || s.TimedOut
		out.Cancelled = out.Cancelled || s.Cancelled
		out.LimitHit = out.LimitHit || s.LimitHit
		if s.Elapsed > out.Elapsed {
			out.Elapsed = s.Elapsed // wall clock = slowest worker
		}
		if s.Profile != nil {
			out.Profile = mergeProfiles(out.Profile, s.Profile)
		}
	}
	if out.Profile != nil {
		out.Profile.Elapsed = out.Elapsed
	}
	return out, nil
}

// mergeProfiles sums per-level counters across workers. All workers run the
// same plan, so the level vectors are parallel (same length, same vertex at
// each position).
func mergeProfiles(acc, p *Profile) *Profile {
	if acc == nil {
		levels := append([]LevelProfile(nil), p.Levels...)
		return &Profile{Levels: levels}
	}
	for i := range acc.Levels {
		if i >= len(p.Levels) {
			break
		}
		acc.Levels[i].Steps += p.Levels[i].Steps
		acc.Levels[i].CandidateBuilds += p.Levels[i].CandidateBuilds
		acc.Levels[i].CandidateReuses += p.Levels[i].CandidateReuses
		acc.Levels[i].NECShares += p.Levels[i].NECShares
		acc.Levels[i].CandidateTotal += p.Levels[i].CandidateTotal
		acc.Levels[i].Factorized += p.Levels[i].Factorized
	}
	return acc
}

// sharedState coordinates workers of a parallel run.
type sharedState struct {
	total *atomic.Uint64
	stop  *atomic.Bool
	limit uint64
}

package exec

import (
	"context"
	"testing"
	"time"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/plan"
)

// explodingFixture builds a search with a huge combinatorial space, for
// tests that must observe an abort mid-search.
func explodingFixture(t testing.TB) (*ccsr.View, *plan.Plan) {
	t.Helper()
	g := graph.Clique(40, 0)
	p := graph.Clique(6, 0)
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	return view, pl
}

func TestContextCancelStopsSearch(t *testing.T) {
	view, pl := explodingFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	st, err := Run(view, pl, Options{Ctx: ctx, DisableFactorization: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled {
		t.Fatalf("expected Cancelled, stats: %+v", st)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not abort promptly (%v)", elapsed)
	}
}

func TestContextCancelStopsParallelSearch(t *testing.T) {
	view, pl := explodingFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	st, err := RunParallel(view, pl, Options{Ctx: ctx, DisableFactorization: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled {
		t.Fatalf("expected Cancelled, stats: %+v", st)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not abort promptly (%v)", elapsed)
	}
}

func TestAlreadyCancelledContextDoesNoWork(t *testing.T) {
	view, pl := explodingFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := Run(view, pl, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled {
		t.Fatalf("expected Cancelled, stats: %+v", st)
	}
	if st.Embeddings != 0 || st.Steps != 0 {
		t.Fatalf("dead context must do zero work, stats: %+v", st)
	}
}

// TestLimitExactSerial: the limit is exact even with factorized counting,
// whose multiplicative factors are clamped to the remaining budget.
func TestLimitExactSerial(t *testing.T) {
	g := graph.Clique(10, 0)
	p := graph.Path(3, 0)
	total := countCSCE(t, g, p, graph.EdgeInduced, Options{}).Embeddings
	if total < 100 {
		t.Fatalf("fixture too small: %d embeddings", total)
	}
	for _, factorized := range []bool{false, true} {
		for _, limit := range []uint64{1, 2, 3, 7, 50, total, total + 10} {
			st := countCSCE(t, g, p, graph.EdgeInduced, Options{Limit: limit, DisableFactorization: !factorized})
			want := limit
			if limit > total {
				want = total
			}
			if st.Embeddings != want {
				t.Fatalf("factorized=%v limit=%d: found %d, want exactly %d",
					factorized, limit, st.Embeddings, want)
			}
			if (limit <= total) != st.LimitHit {
				t.Fatalf("factorized=%v limit=%d: LimitHit=%v, total=%d",
					factorized, limit, st.LimitHit, total)
			}
		}
	}
}

// TestLimitExactParallelHammer hammers a high-match pattern with small
// limits and many workers: every run must return exactly the limit.
func TestLimitExactParallelHammer(t *testing.T) {
	g := graph.Clique(12, 0)
	p := graph.Path(3, 0)
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	total, err := Count(view, pl)
	if err != nil {
		t.Fatal(err)
	}
	if total < 500 {
		t.Fatalf("fixture too small: %d embeddings", total)
	}
	for _, workers := range []int{2, 4, 8} {
		for _, factorized := range []bool{false, true} {
			for limit := uint64(1); limit <= 20; limit++ {
				st, err := RunParallel(view, pl,
					Options{Limit: limit, DisableFactorization: !factorized}, workers)
				if err != nil {
					t.Fatal(err)
				}
				if st.Embeddings != limit {
					t.Fatalf("workers=%d factorized=%v limit=%d: found %d, want exactly %d",
						workers, factorized, limit, st.Embeddings, limit)
				}
				if !st.LimitHit {
					t.Fatalf("workers=%d limit=%d: LimitHit not set", workers, limit)
				}
			}
		}
	}
}

// TestLimitExactWithCallback: when streaming embeddings through a
// callback, the consumer sees exactly the limit, serially and in parallel.
func TestLimitExactWithCallback(t *testing.T) {
	g := graph.Clique(10, 0)
	p := graph.Path(3, 0)
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var seen uint64
		opts := Options{
			Limit:       17,
			OnEmbedding: func([]graph.VertexID) bool { seen++; return true },
		}
		st, err := RunParallel(view, pl, opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if seen != 17 || st.Embeddings != 17 {
			t.Fatalf("workers=%d: callback saw %d, stats counted %d, want exactly 17",
				workers, seen, st.Embeddings)
		}
	}
}

package exec

import (
	"math/rand"
	"testing"
	"time"

	"csce/internal/baseline"
	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/plan"
)

// countCSCE runs the full CSCE pipeline (cluster, plan, execute) and
// returns the embedding count.
func countCSCE(t testing.TB, g, p *graph.Graph, variant graph.Variant, opts Options) Stats {
	t.Helper()
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, variant, plan.ModeCSCE)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	view, err := store.ReadCSR(p, variant)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	st, err := Run(view, pl, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st
}

func randomGraph(rng *rand.Rand, n, m, labels, edgeLabels int, directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		v := graph.VertexID(rng.Intn(n))
		w := graph.VertexID(rng.Intn(n))
		if v == w {
			continue
		}
		var el graph.EdgeLabel
		if edgeLabels > 1 {
			el = graph.EdgeLabel(rng.Intn(edgeLabels))
		}
		b.AddEdge(v, w, el)
	}
	return b.MustBuild()
}

func randomConnectedPattern(rng *rand.Rand, n, labels, edgeLabels int, directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		var el graph.EdgeLabel
		if edgeLabels > 1 {
			el = graph.EdgeLabel(rng.Intn(edgeLabels))
		}
		if directed && rng.Intn(2) == 0 {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j), el)
		} else {
			b.AddEdge(graph.VertexID(j), graph.VertexID(i), el)
		}
	}
	for k := 0; k < rng.Intn(n); k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		var el graph.EdgeLabel
		if edgeLabels > 1 {
			el = graph.EdgeLabel(rng.Intn(edgeLabels))
		}
		b.AddEdge(graph.VertexID(i), graph.VertexID(j), el)
	}
	return b.MustBuild()
}

// TestMatchesBruteForce is the central differential test: on hundreds of
// random (graph, pattern, variant) triples, the CSCE engine must agree
// exactly with the exhaustive oracle.
func TestMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		labels := 1 + rng.Intn(3)
		edgeLabels := 1 + rng.Intn(2)
		g := randomGraph(rng, 8+rng.Intn(6), 20+rng.Intn(15), labels, edgeLabels, directed)
		p := randomConnectedPattern(rng, 2+rng.Intn(4), labels, edgeLabels, directed)
		for _, variant := range graph.Variants() {
			want := baseline.BruteForce(g, p, variant)
			got := countCSCE(t, g, p, variant, Options{}).Embeddings
			if got != want {
				t.Fatalf("seed %d %v (directed=%v): CSCE found %d, brute force %d\npattern:\n%s",
					seed, variant, directed, got, want, dump(p))
			}
		}
	}
}

func dump(p *graph.Graph) string {
	s := "t\n"
	for v := 0; v < p.NumVertices(); v++ {
		s += "v " + itoa(v) + " " + itoa(int(p.Label(graph.VertexID(v)))) + "\n"
	}
	p.Edges(func(a, b graph.VertexID, l graph.EdgeLabel) {
		s += "e " + itoa(int(a)) + " " + itoa(int(b)) + " " + itoa(int(l)) + "\n"
	})
	return s
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b []byte
	for x > 0 {
		b = append([]byte{byte('0' + x%10)}, b...)
		x /= 10
	}
	return string(b)
}

// TestAblationsAgree verifies the SCE cache and factorization are pure
// optimizations: switching them off never changes counts.
func TestAblationsAgree(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g := randomGraph(rng, 12, 40, 3, 1, directed)
		p := randomConnectedPattern(rng, 5, 3, 1, directed)
		for _, variant := range graph.Variants() {
			base := countCSCE(t, g, p, variant, Options{}).Embeddings
			noCache := countCSCE(t, g, p, variant, Options{DisableSCECache: true}).Embeddings
			noFact := countCSCE(t, g, p, variant, Options{DisableFactorization: true}).Embeddings
			neither := countCSCE(t, g, p, variant, Options{DisableSCECache: true, DisableFactorization: true}).Embeddings
			if base != noCache || base != noFact || base != neither {
				t.Fatalf("seed %d %v: counts diverge: %d / %d / %d / %d",
					seed, variant, base, noCache, noFact, neither)
			}
		}
	}
}

func TestPlanModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 14, 50, 3, 1, false)
	p := randomConnectedPattern(rng, 6, 3, 1, false)
	store := ccsr.Build(g)
	for _, variant := range graph.Variants() {
		view, err := store.ReadCSR(p, variant)
		if err != nil {
			t.Fatal(err)
		}
		var counts []uint64
		for _, mode := range []plan.Mode{plan.ModeCSCE, plan.ModeRI, plan.ModeRICluster, plan.ModeRM, plan.ModeCostBased} {
			pl, err := plan.Optimize(p, store, variant, mode)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Run(view, pl, Options{})
			if err != nil {
				t.Fatal(err)
			}
			counts = append(counts, st.Embeddings)
		}
		for _, c := range counts[1:] {
			if c != counts[0] {
				t.Fatalf("%v: plan modes disagree: %v", variant, counts)
			}
		}
	}
}

func TestTrianglesInClique(t *testing.T) {
	// K5 contains 5*4*3 = 60 ordered triangles (edge-induced embeddings of
	// K3), all of them also vertex-induced; homomorphic adds nothing for a
	// clique pattern since self-mappings need self-loops.
	g := graph.Clique(5, 0)
	p := graph.Clique(3, 0)
	for _, variant := range graph.Variants() {
		got := countCSCE(t, g, p, variant, Options{}).Embeddings
		if got != 60 {
			t.Fatalf("%v: K3 in K5 = %d, want 60", variant, got)
		}
	}
}

func TestPathCounts(t *testing.T) {
	// Path pattern a-b-c (all one label) in a path graph of 5 vertices:
	// edge-induced embeddings = ordered walks v-w-x with distinct ends
	// = 2 * (number of length-2 paths) = 2*3 = 6.
	g := graph.Path(5, 0)
	p := graph.Path(3, 0)
	if got := countCSCE(t, g, p, graph.EdgeInduced, Options{}).Embeddings; got != 6 {
		t.Fatalf("edge-induced P3 in P5 = %d, want 6", got)
	}
	// Homomorphic adds the walks that fold back (v-w-v): each edge twice.
	if got := countCSCE(t, g, p, graph.Homomorphic, Options{}).Embeddings; got != 14 {
		t.Fatalf("homomorphic P3 in P5 = %d, want 14", got)
	}
}

func TestVertexInducedExcludesChords(t *testing.T) {
	// Data: triangle. Pattern: path of 3. Edge-induced finds the 6 ordered
	// paths; vertex-induced finds none because every vertex triple is a
	// triangle, not a path.
	g := graph.Cycle(3)
	p := graph.Path(3)
	if got := countCSCE(t, g, p, graph.EdgeInduced, Options{}).Embeddings; got != 6 {
		t.Fatalf("edge-induced = %d, want 6", got)
	}
	if got := countCSCE(t, g, p, graph.VertexInduced, Options{}).Embeddings; got != 0 {
		t.Fatalf("vertex-induced = %d, want 0", got)
	}
}

func TestVertexInducedDirectedReverseArc(t *testing.T) {
	// Data has arcs in both directions between 0 and 1; the pattern wants
	// exactly one arc. Vertex-induced must reject the pair, edge-induced
	// accepts it.
	g := graph.MustParse("t directed\nv 0 A\nv 1 B\ne 0 1\ne 1 0\n")
	p := graph.MustParse("t directed\nv 0 A\nv 1 B\ne 0 1\n")
	if got := countCSCE(t, g, p, graph.EdgeInduced, Options{}).Embeddings; got != 1 {
		t.Fatalf("edge-induced = %d, want 1", got)
	}
	if got := countCSCE(t, g, p, graph.VertexInduced, Options{}).Embeddings; got != 0 {
		t.Fatalf("vertex-induced = %d, want 0 (reverse arc present)", got)
	}
}

func TestVertexInducedEdgeLabelExactness(t *testing.T) {
	// Data edge carries labels x and y (parallel edges); pattern asks for x
	// only. The induced subgraph includes the y edge, so no vertex-induced
	// match; edge-induced matches.
	g := graph.MustParse("t undirected\nv 0 A\nv 1 B\ne 0 1 x\ne 0 1 y\n")
	p := graph.MustParse("t undirected\nv 0 A\nv 1 B\ne 0 1 x\n")
	if got := countCSCE(t, g, p, graph.EdgeInduced, Options{}).Embeddings; got != 1 {
		t.Fatalf("edge-induced = %d, want 1", got)
	}
	if got := countCSCE(t, g, p, graph.VertexInduced, Options{}).Embeddings; got != 0 {
		t.Fatalf("vertex-induced = %d, want 0 (extra parallel label)", got)
	}
}

func TestHeterogeneousDirectedLabels(t *testing.T) {
	g := graph.MustParse(`
t directed
v 0 A
v 1 B
v 2 B
v 3 C
e 0 1 r
e 0 2 r
e 1 3 s
e 2 3 s
`)
	p := graph.MustParse("t directed\nv 0 A\nv 1 B\nv 2 C\ne 0 1 r\ne 1 2 s\n")
	for _, variant := range graph.Variants() {
		want := baseline.BruteForce(g, p, variant)
		got := countCSCE(t, g, p, variant, Options{}).Embeddings
		if got != want {
			t.Fatalf("%v: got %d want %d", variant, got, want)
		}
		if variant == graph.EdgeInduced && got != 2 {
			t.Fatalf("expected the two A->B->C chains, got %d", got)
		}
	}
}

func TestMissingClusterShortCircuits(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 B\ne 0 1\n")
	// Parse the pattern with the data graph's label table so "C" really is
	// a different label than anything in the data.
	p, err := graph.ParseStringWith("t undirected\nv 0 A\nv 1 C\ne 0 1\n", g.Names)
	if err != nil {
		t.Fatal(err)
	}
	st := countCSCE(t, g, p, graph.EdgeInduced, Options{})
	if st.Embeddings != 0 || st.Steps != 0 {
		t.Fatalf("missing cluster must yield an immediate empty result: %+v", st)
	}
}

func TestSingleVertexPattern(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 B\nv 2 A\ne 0 1\n")
	p := graph.MustParse("t undirected\nv 0 A\n")
	for _, variant := range graph.Variants() {
		if got := countCSCE(t, g, p, variant, Options{}).Embeddings; got != 2 {
			t.Fatalf("%v: single-vertex pattern found %d, want 2", variant, got)
		}
	}
}

func TestLimitStopsSearch(t *testing.T) {
	g := graph.Clique(8, 0)
	p := graph.Path(3, 0)
	st := countCSCE(t, g, p, graph.EdgeInduced, Options{Limit: 10, DisableFactorization: true})
	if !st.LimitHit {
		t.Fatal("limit must be reported")
	}
	if st.Embeddings != 10 {
		t.Fatalf("limit run found %d, want exactly 10 without factorization", st.Embeddings)
	}
}

func TestTimeLimit(t *testing.T) {
	// A large clique with a clique pattern explodes combinatorially; a tiny
	// time limit must abort quickly and report it.
	g := graph.Clique(40, 0)
	p := graph.Clique(6, 0)
	start := time.Now()
	st := countCSCE(t, g, p, graph.EdgeInduced, Options{TimeLimit: 20 * time.Millisecond, DisableFactorization: true})
	if !st.TimedOut {
		t.Fatalf("expected timeout, stats: %+v", st)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not abort promptly")
	}
}

func TestOnEmbeddingCallback(t *testing.T) {
	g := graph.Clique(4, 0)
	p := graph.Path(2, 0) // single edge: 12 ordered embeddings in K4
	var got [][2]graph.VertexID
	st := countCSCE(t, g, p, graph.EdgeInduced, Options{
		OnEmbedding: func(m []graph.VertexID) bool {
			got = append(got, [2]graph.VertexID{m[0], m[1]})
			return true
		},
	})
	if st.Embeddings != 12 || len(got) != 12 {
		t.Fatalf("callback saw %d embeddings, stats %d, want 12", len(got), st.Embeddings)
	}
	seen := map[[2]graph.VertexID]bool{}
	for _, m := range got {
		if m[0] == m[1] || seen[m] {
			t.Fatalf("invalid or duplicate embedding %v", m)
		}
		seen[m] = true
	}
	// Early stop.
	n := 0
	st = countCSCE(t, g, p, graph.EdgeInduced, Options{
		OnEmbedding: func(m []graph.VertexID) bool {
			n++
			return n < 3
		},
	})
	if n != 3 {
		t.Fatalf("callback stop after 3, saw %d", n)
	}
}

func TestSymmetryConstraints(t *testing.T) {
	// A single-edge unlabeled pattern has automorphism group of size 2;
	// constraining f(u0) < f(u1) must halve the embedding count.
	g := graph.Clique(5, 0)
	p := graph.Path(2, 0)
	full := countCSCE(t, g, p, graph.EdgeInduced, Options{}).Embeddings
	half := countCSCE(t, g, p, graph.EdgeInduced, Options{
		SymmetryConstraints: [][2]graph.VertexID{{0, 1}},
	}).Embeddings
	if full != 2*half {
		t.Fatalf("symmetry breaking: full=%d half=%d", full, half)
	}
	// Fully ordered triangle in K5: C(5,3) = 10 unordered instances.
	tri := graph.Clique(3, 0)
	ordered := countCSCE(t, g, tri, graph.EdgeInduced, Options{
		SymmetryConstraints: [][2]graph.VertexID{{0, 1}, {1, 2}},
	}).Embeddings
	if ordered != 10 {
		t.Fatalf("ordered triangles in K5 = %d, want 10", ordered)
	}
}

func TestSCECacheReusesCandidates(t *testing.T) {
	// Star data graph and two-leaf star pattern: the second leaf's
	// candidates are independent of the first leaf's mapping, so the cache
	// must report reuse.
	b := graph.NewBuilder(false)
	center := b.AddVertex(0)
	for i := 0; i < 10; i++ {
		leaf := b.AddVertex(1)
		b.AddEdge(center, leaf, 0)
	}
	g := b.MustBuild()
	pb := graph.NewBuilder(false)
	c := pb.AddVertex(0)
	l1 := pb.AddVertex(1)
	l2 := pb.AddVertex(1)
	pb.AddEdge(c, l1, 0)
	pb.AddEdge(c, l2, 0)
	p := pb.MustBuild()

	st := countCSCE(t, g, p, graph.EdgeInduced, Options{DisableFactorization: true})
	if st.Embeddings != 10*9 {
		t.Fatalf("two-leaf star count = %d, want 90", st.Embeddings)
	}
	if st.CandidateReuses == 0 {
		t.Fatalf("expected SCE candidate reuse, stats: %+v", st)
	}
	// Without the cache, every sibling mapping rebuilds candidates.
	off := countCSCE(t, g, p, graph.EdgeInduced, Options{DisableSCECache: true, DisableFactorization: true})
	if off.CandidateReuses != 0 {
		t.Fatal("cache disabled but reuse reported")
	}
	if off.CandidateBuilds <= st.CandidateBuilds {
		t.Fatalf("cache must reduce builds: with=%d without=%d", st.CandidateBuilds, off.CandidateBuilds)
	}
}

func TestNECCandidateSharing(t *testing.T) {
	// A star pattern with four identical leaves: all leaf levels are
	// NEC-equivalent with the same single parent, so their candidate lists
	// must be shared rather than rebuilt.
	b := graph.NewBuilder(false)
	center := b.AddVertex(0)
	for i := 0; i < 12; i++ {
		leaf := b.AddVertex(1)
		b.AddEdge(center, leaf, 0)
	}
	g := b.MustBuild()
	pb := graph.NewBuilder(false)
	c := pb.AddVertex(0)
	for i := 0; i < 4; i++ {
		l := pb.AddVertex(1)
		pb.AddEdge(c, l, 0)
	}
	p := pb.MustBuild()

	st := countCSCE(t, g, p, graph.EdgeInduced, Options{DisableFactorization: true})
	if want := uint64(12 * 11 * 10 * 9); st.Embeddings != want {
		t.Fatalf("4-leaf star count = %d, want %d", st.Embeddings, want)
	}
	if st.NECShares == 0 {
		t.Fatalf("expected NEC candidate sharing, stats: %+v", st)
	}
	// The shared levels never build their own candidates: one build for
	// the first leaf level serves all four.
	if st.CandidateBuilds != 1 {
		t.Fatalf("candidate builds = %d, want 1 (shared across equivalent leaves)", st.CandidateBuilds)
	}
	// Equivalence must not change counts vs the cache-disabled run (which
	// cannot share).
	off := countCSCE(t, g, p, graph.EdgeInduced, Options{DisableSCECache: true, DisableFactorization: true})
	if off.Embeddings != st.Embeddings {
		t.Fatalf("NEC sharing changed the count: %d vs %d", st.Embeddings, off.Embeddings)
	}
	if off.NECShares != 0 {
		t.Fatal("sharing must be off with the cache disabled")
	}
}

func TestFactorizationCountsLeaves(t *testing.T) {
	b := graph.NewBuilder(false)
	center := b.AddVertex(0)
	for i := 0; i < 50; i++ {
		leaf := b.AddVertex(1)
		b.AddEdge(center, leaf, 0)
	}
	g := b.MustBuild()
	p := graph.Path(2, 0, 1) // center-leaf edge
	st := countCSCE(t, g, p, graph.EdgeInduced, Options{})
	if st.Embeddings != 50 {
		t.Fatalf("count = %d, want 50", st.Embeddings)
	}
	if st.FactorizedLevels == 0 {
		t.Fatalf("leaf level should be factorized: %+v", st)
	}
	if st.Steps >= 50 {
		t.Fatalf("factorization should avoid per-leaf steps, took %d", st.Steps)
	}
}

func TestThroughputMetric(t *testing.T) {
	st := Stats{Embeddings: 100, Elapsed: 2 * time.Second}
	if st.Throughput() != 50 {
		t.Fatalf("throughput = %f, want 50", st.Throughput())
	}
	if (Stats{}).Throughput() != 0 {
		t.Fatal("zero elapsed must give zero throughput")
	}
}

func TestCountHelper(t *testing.T) {
	g := graph.Clique(4, 0)
	p := graph.Clique(3, 0)
	store := ccsr.Build(g)
	pl, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(view, pl)
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Fatalf("K3 in K4 = %d, want 24", n)
	}
}

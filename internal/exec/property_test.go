package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/plan"
)

// TestPropertyVariantOrdering: for any graph and pattern, the three
// variants' counts obey vertex-induced <= edge-induced <= homomorphic
// (every induced embedding is edge-induced; every edge-induced embedding
// is a homomorphism).
func TestPropertyVariantOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		directed := rng.Intn(2) == 0
		g := randomGraph(rng, 10+rng.Intn(8), 30+rng.Intn(20), 1+rng.Intn(3), 1, directed)
		p := randomConnectedPattern(rng, 2+rng.Intn(4), 3, 1, directed)
		vi := countCSCE(t, g, p, graph.VertexInduced, Options{}).Embeddings
		ei := countCSCE(t, g, p, graph.EdgeInduced, Options{}).Embeddings
		ho := countCSCE(t, g, p, graph.Homomorphic, Options{}).Embeddings
		return vi <= ei && ei <= ho
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIsomorphismInvariance: permuting data-graph vertex IDs must
// not change any embedding count — the engine depends only on structure.
func TestPropertyIsomorphismInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		directed := rng.Intn(2) == 0
		g := randomGraph(rng, 12, 36, 3, 2, directed)
		p := randomConnectedPattern(rng, 2+rng.Intn(3), 3, 2, directed)

		// Relabel data vertices by a random permutation.
		perm := rng.Perm(g.NumVertices())
		b := graph.NewBuilder(directed)
		labels := make([]graph.Label, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			labels[perm[v]] = g.Label(graph.VertexID(v))
		}
		for _, l := range labels {
			b.AddVertex(l)
		}
		g.Edges(func(v, w graph.VertexID, l graph.EdgeLabel) {
			b.AddEdge(graph.VertexID(perm[v]), graph.VertexID(perm[w]), l)
		})
		g2 := b.MustBuild()

		for _, variant := range graph.Variants() {
			a := countCSCE(t, g, p, variant, Options{}).Embeddings
			c := countCSCE(t, g2, p, variant, Options{}).Embeddings
			if a != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEmbeddingsAreValid: every enumerated edge-induced embedding
// satisfies labels, injectivity, and all pattern edges.
func TestPropertyEmbeddingsAreValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		directed := rng.Intn(2) == 0
		g := randomGraph(rng, 12, 40, 2, 1, directed)
		p := randomConnectedPattern(rng, 2+rng.Intn(3), 2, 1, directed)
		ok := true
		countCSCE(t, g, p, graph.EdgeInduced, Options{
			OnEmbedding: func(m []graph.VertexID) bool {
				seen := map[graph.VertexID]bool{}
				for u := 0; u < p.NumVertices(); u++ {
					v := m[u]
					if seen[v] || g.Label(v) != p.Label(graph.VertexID(u)) {
						ok = false
						return false
					}
					seen[v] = true
				}
				p.Edges(func(a, b graph.VertexID, l graph.EdgeLabel) {
					if !g.HasEdgeLabeled(m[a], m[b], l) {
						ok = false
					}
				})
				return ok
			},
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLimitNeverExceededWithoutFactorization: with factorization
// off, Limit is exact.
func TestPropertyLimitNeverExceeded(t *testing.T) {
	f := func(seed int64, rawLimit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		limit := uint64(rawLimit%20) + 1
		g := randomGraph(rng, 12, 48, 1, 1, false)
		p := randomConnectedPattern(rng, 3, 1, 1, false)
		st := countCSCE(t, g, p, graph.EdgeInduced, Options{
			Limit:                limit,
			DisableFactorization: true,
		})
		return st.Embeddings <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPlanOrderIndependence: the count does not depend on which
// valid matching order executes — compare the CSCE plan against a plan
// built from the identity order.
func TestPropertyPlanOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12, 40, 2, 1, false)
		p := randomConnectedPattern(rng, 4, 2, 1, false)
		store := ccsr.Build(g)
		view, err := store.ReadCSR(p, graph.EdgeInduced)
		if err != nil {
			return false
		}
		optimized, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeCSCE)
		if err != nil {
			return false
		}
		// The identity order may have disconnected prefixes; FromOrder and
		// the executor must still count correctly (depth-0 pool plus
		// intersection handles any topological arrangement of H)... the
		// identity order is only valid when it is a TO of H and keeps a
		// connected prefix, so fall back to the GCF order reversed within
		// ties instead: use ModeRM as the alternative plan.
		alt, err := plan.Optimize(p, store, graph.EdgeInduced, plan.ModeRM)
		if err != nil {
			return false
		}
		a, err := Count(view, optimized)
		if err != nil {
			return false
		}
		b, err := Count(view, alt)
		if err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

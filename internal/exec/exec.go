// Package exec is the execution stage of CSCE (the green stage of the
// paper's Fig. 2): a pipelined worst-case-optimal join that grows partial
// embeddings one pattern vertex at a time by intersecting CCSR cluster
// adjacency, for all three subgraph-matching variants.
//
// Sequential candidate equivalence (Section V) is exploited in two ways:
//
//   - Candidate reuse: the candidate set of a pattern vertex depends only on
//     the mappings of its dependency-DAG parents. Each depth caches its
//     candidate list together with the version of every parent mapping; when
//     backtracking changes only independent vertices, the cached list is
//     reused instead of recomputed. An empty cached list prunes whole
//     subtrees, subsuming failing-set pruning (Finding 3).
//
//   - Factorized counting: a vertex with no dependents among later order
//     positions contributes a plain multiplicative factor to the embedding
//     count, so its candidates need never be enumerated individually. This
//     applies only when counting (no per-embedding callback), and, for
//     injective variants, only when no later pattern vertex shares its label.
package exec

import (
	"context"
	"fmt"
	"time"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/obs"
	"csce/internal/plan"
)

// Options controls one matching run.
type Options struct {
	// Limit stops the search once this many embeddings were found
	// (0 = unlimited). The limit is exact in both the serial and parallel
	// paths: a factorized level's multiplicative factor is clamped to the
	// remaining budget, and parallel workers reserve slots on the shared
	// counter before emitting.
	Limit uint64
	// TimeLimit aborts the search after the given duration (0 = none).
	TimeLimit time.Duration
	// Ctx, when non-nil, cancels the search cooperatively: the backtracking
	// loop polls Ctx.Done() every ~1k extension steps and stops with
	// Stats.Cancelled set. Cancellation is graceful — partial statistics are
	// returned with a nil error, mirroring TimeLimit — so callers decide
	// whether a cut-short search is a failure. This is what lets a serving
	// layer stop burning cores when a client disconnects.
	Ctx context.Context
	// OnEmbedding, when non-nil, receives every embedding as a slice
	// indexed by pattern vertex ID (valid only during the call). Returning
	// false stops the search. Setting a callback disables factorized
	// counting so every embedding is materialized.
	OnEmbedding func(mapping []graph.VertexID) bool
	// DisableSCECache turns off candidate reuse (ablation).
	DisableSCECache bool
	// DisableFactorization turns off factorized counting (ablation).
	DisableFactorization bool
	// SymmetryConstraints lists pattern vertex pairs (a,b) that must map
	// with f(a) < f(b); used by the symmetry-breaking ablation (Fig. 14a)
	// and the clique case study. Constraints disable factorization.
	SymmetryConstraints [][2]graph.VertexID
	// Pinned fixes pattern vertices to specific data vertices before the
	// search starts — the building block of continuous (delta) matching,
	// where a pattern edge is pinned onto a freshly inserted data edge.
	// Pinned levels disable factorization.
	Pinned [][2]graph.VertexID
	// Profile collects a per-level execution profile into Stats.Profile
	// (a few counter increments per step; prefer leaving it off when
	// benchmarking the engine itself). In the parallel path the per-worker
	// profiles are merged level-wise.
	Profile bool
}

// Stats reports the outcome of a run.
type Stats struct {
	// Embeddings is the number of embeddings found (mappings, as in the
	// paper's convention of counting automorphic images separately unless
	// symmetry constraints are given).
	Embeddings uint64
	// Steps counts candidate extensions attempted.
	Steps uint64
	// CandidateBuilds counts candidate-set constructions.
	CandidateBuilds uint64
	// CandidateReuses counts SCE cache hits — candidate sets reused across
	// sibling mappings of independent vertices.
	CandidateReuses uint64
	// NECShares counts candidate lists shared between NEC-equivalent
	// pattern vertices.
	NECShares uint64
	// FactorizedLevels counts how often a level was folded into a
	// multiplicative factor instead of being enumerated.
	FactorizedLevels uint64
	// TimedOut is set when TimeLimit aborted the search.
	TimedOut bool
	// Cancelled is set when Options.Ctx aborted the search.
	Cancelled bool
	// LimitHit is set when Limit stopped the search.
	LimitHit bool
	// Elapsed is the wall-clock matching time.
	Elapsed time.Duration
	// Profile is the per-level execution profile when Options.Profile was
	// set, else nil.
	Profile *Profile
}

// Throughput returns embeddings per second, the Fig. 7/8 metric.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Embeddings) / s.Elapsed.Seconds()
}

// Run matches the plan's pattern against the clustered data graph view and
// returns matching statistics. The view must come from the same store the
// plan was optimized against and must have been read with the same variant
// (ReadCSR loads the negation clusters vertex-induced matching needs).
func Run(view *ccsr.View, pl *plan.Plan, opts Options) (Stats, error) {
	e, err := newEngine(view, pl, opts)
	if err != nil {
		return Stats{}, err
	}
	if e == nil {
		return Stats{}, nil // a pattern edge has no matching cluster: empty result
	}
	if opts.Profile {
		e.prof = newProfiler(e)
	}
	// A traced context (obs.WithTrace) gets an "exec.search" span covering
	// the backtracking loop — the deepest hop of the trace's propagation
	// chain (server → core → exec). Untraced callers pay one nil check.
	_, endSpan := obs.StartSpanCtx(opts.Ctx, "exec.search")
	start := time.Now()
	e.run()
	e.stats.Elapsed = time.Since(start)
	endSpan(obs.Int("embeddings", int64(e.stats.Embeddings)),
		obs.Int("steps", int64(e.stats.Steps)),
		obs.Int("candidate_builds", int64(e.stats.CandidateBuilds)),
		obs.Int("candidate_reuses", int64(e.stats.CandidateReuses)))
	if e.prof != nil {
		e.stats.Profile = &Profile{Levels: e.prof.levels, Elapsed: e.stats.Elapsed}
	}
	return e.stats, nil
}

// RunWithProfile is Run plus a per-level execution profile (the PROFILE
// counterpart to the plan's EXPLAIN view) — a convenience wrapper over
// Options.Profile for callers that always want the breakdown.
func RunWithProfile(view *ccsr.View, pl *plan.Plan, opts Options) (Stats, Profile, error) {
	opts.Profile = true
	st, err := Run(view, pl, opts)
	if err != nil || st.Profile == nil {
		return st, Profile{}, err
	}
	return st, *st.Profile, nil
}

// Count is a convenience wrapper returning only the embedding count.
func Count(view *ccsr.View, pl *plan.Plan) (uint64, error) {
	st, err := Run(view, pl, Options{})
	return st.Embeddings, err
}

// errInternal marks impossible states; surfaced instead of panicking.
func errInternal(format string, args ...any) error {
	return fmt.Errorf("exec: internal: "+format, args...)
}

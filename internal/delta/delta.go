// Package delta implements continuous (incremental) subgraph matching on
// top of the CSCE engine: after an edge is inserted into the clustered
// data graph, NewEmbeddings enumerates exactly the embeddings that did not
// exist before — the delta a continuous query (Graphflow-style, Table III)
// reports to its subscribers.
//
// The classic decomposition is used: every new embedding must map at least
// one pattern edge onto the inserted data edge, so for each compatible
// pattern edge the engine runs with that edge pinned onto the insertion.
// Double counting (a homomorphism can map several pattern edges onto the
// same data edge) is removed by the standard exclusion rule: the run for
// pattern edge i rejects embeddings that also map an earlier-indexed
// compatible pattern edge onto the insertion.
package delta

import (
	"context"
	"fmt"

	"csce/internal/ccsr"
	"csce/internal/exec"
	"csce/internal/graph"
	"csce/internal/plan"
)

// Edge identifies a data edge, as passed to Store.InsertEdge.
type Edge struct {
	Src, Dst graph.VertexID
	Label    graph.EdgeLabel
}

// Options bounds a delta enumeration.
type Options struct {
	// Variant selects the matching semantics.
	Variant graph.Variant
	// Limit stops after this many delta embeddings (0 = all).
	Limit uint64
	// Ctx, when non-nil, cancels the enumeration cooperatively (same
	// contract as exec.Options.Ctx): the live-ingest notifier runs delta
	// enumerations under the writer lock, and a cancelled mutation request
	// must stop them instead of holding the lock for the full search.
	Ctx context.Context
	// OnEmbedding receives each new embedding (indexed by pattern vertex).
	// Return false to stop.
	OnEmbedding func(mapping []graph.VertexID) bool
}

// NewEmbeddings counts (and optionally streams) the embeddings of p that
// use the just-inserted edge. The store must already contain the edge
// (call it after Store.InsertEdge); counts satisfy
//
//	count(after) = count(before) + NewEmbeddings(...).
//
// Only the monotone variants are supported: under vertex-induced
// semantics an insertion can also destroy existing embeddings (their
// vertex sets now induce an extra edge), so its delta is not a pure
// addition.
func NewEmbeddings(store *ccsr.Store, p *graph.Graph, inserted Edge, opts Options) (uint64, error) {
	return embeddingsUsing(store, p, inserted, opts)
}

// RemovedEmbeddings counts the embeddings that an upcoming edge deletion
// will destroy. Call it on the store *before* Store.DeleteEdge; counts
// satisfy count(after) = count(before) - RemovedEmbeddings(...).
func RemovedEmbeddings(store *ccsr.Store, p *graph.Graph, toDelete Edge, opts Options) (uint64, error) {
	return embeddingsUsing(store, p, toDelete, opts)
}

// embeddingsUsing enumerates the embeddings mapping at least one pattern
// edge onto the given data edge.
func embeddingsUsing(store *ccsr.Store, p *graph.Graph, inserted Edge, opts Options) (uint64, error) {
	if p.Directed() != store.Directed() {
		return 0, fmt.Errorf("delta: pattern directedness mismatch")
	}
	if opts.Variant == graph.VertexInduced {
		return 0, fmt.Errorf("delta: vertex-induced matching is not monotone under edge updates; recount instead")
	}
	pl, err := plan.Optimize(p, store, opts.Variant, plan.ModeCSCE)
	if err != nil {
		return 0, fmt.Errorf("delta: %w", err)
	}
	view, err := store.ReadCSR(p, opts.Variant)
	if err != nil {
		return 0, fmt.Errorf("delta: %w", err)
	}

	// The candidate pins: every pattern edge whose labels match the
	// insertion, in both orientations for undirected graphs.
	type pin struct{ a, b graph.VertexID } // f(a)=Src, f(b)=Dst
	var pins []pin
	srcL := store.VertexLabel(inserted.Src)
	dstL := store.VertexLabel(inserted.Dst)
	p.Edges(func(ua, ub graph.VertexID, l graph.EdgeLabel) {
		if l != inserted.Label {
			return
		}
		if p.Directed() {
			if p.Label(ua) == srcL && p.Label(ub) == dstL {
				pins = append(pins, pin{ua, ub})
			}
			return
		}
		if p.Label(ua) == srcL && p.Label(ub) == dstL {
			pins = append(pins, pin{ua, ub})
		}
		if ua != ub && p.Label(ub) == srcL && p.Label(ua) == dstL {
			pins = append(pins, pin{ub, ua})
		}
	})

	// mapsOnInsertion reports whether embedding m maps pattern pair
	// (a, b) onto the inserted edge (in the pin's orientation).
	mapsOnInsertion := func(m []graph.VertexID, pn pin) bool {
		return m[pn.a] == inserted.Src && m[pn.b] == inserted.Dst
	}

	var total uint64
	stopped := false
	for i, pn := range pins {
		if stopped {
			break
		}
		earlier := pins[:i]
		execOpts := exec.Options{
			Ctx:    opts.Ctx,
			Pinned: [][2]graph.VertexID{{pn.a, inserted.Src}, {pn.b, inserted.Dst}},
			OnEmbedding: func(m []graph.VertexID) bool {
				// Exclusion rule: skip embeddings already produced by an
				// earlier pin.
				for _, ep := range earlier {
					if mapsOnInsertion(m, ep) {
						return true
					}
				}
				total++
				if opts.OnEmbedding != nil && !opts.OnEmbedding(m) {
					stopped = true
					return false
				}
				if opts.Limit > 0 && total >= opts.Limit {
					stopped = true
					return false
				}
				return true
			},
		}
		if _, err := exec.Run(view, pl, execOpts); err != nil {
			return total, fmt.Errorf("delta: pin %d: %w", i, err)
		}
	}
	return total, nil
}

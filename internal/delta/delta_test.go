package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"csce/internal/ccsr"
	"csce/internal/exec"
	"csce/internal/graph"
	"csce/internal/plan"
)

func countAll(t testing.TB, store *ccsr.Store, p *graph.Graph, variant graph.Variant) uint64 {
	t.Helper()
	pl, err := plan.Optimize(p, store, variant, plan.ModeCSCE)
	if err != nil {
		t.Fatal(err)
	}
	view, err := store.ReadCSR(p, variant)
	if err != nil {
		t.Fatal(err)
	}
	n, err := exec.Count(view, pl)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestPropertyDeltaEqualsRecount is the defining property of continuous
// matching: for random graphs, patterns, and insertions,
// count(before) + NewEmbeddings == count(after), for both monotone
// variants, directed and undirected.
func TestPropertyDeltaEqualsRecount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		directed := rng.Intn(2) == 0
		n := 10 + rng.Intn(8)
		b := graph.NewBuilder(directed)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.Label(rng.Intn(3)))
		}
		type edgeT struct {
			s, d graph.VertexID
			l    graph.EdgeLabel
		}
		present := map[edgeT]bool{}
		for i := 0; i < 3*n; i++ {
			v, w := rng.Intn(n), rng.Intn(n)
			if v == w {
				continue
			}
			e := edgeT{graph.VertexID(v), graph.VertexID(w), graph.EdgeLabel(rng.Intn(2))}
			if present[e] || (!directed && present[edgeT{e.d, e.s, e.l}]) {
				continue
			}
			present[e] = true
			b.AddEdge(e.s, e.d, e.l)
		}
		g := b.MustBuild()
		store := ccsr.Build(g)

		// A small connected pattern using the data labels.
		pb := graph.NewBuilder(directed)
		for i := 0; i < 3; i++ {
			pb.AddVertex(graph.Label(rng.Intn(3)))
		}
		pb.AddEdge(0, 1, graph.EdgeLabel(rng.Intn(2)))
		pb.AddEdge(1, 2, graph.EdgeLabel(rng.Intn(2)))
		p := pb.MustBuild()

		// Pick a random absent edge to insert.
		var ins Edge
		found := false
		for tries := 0; tries < 50; tries++ {
			v, w := rng.Intn(n), rng.Intn(n)
			if v == w {
				continue
			}
			e := edgeT{graph.VertexID(v), graph.VertexID(w), graph.EdgeLabel(rng.Intn(2))}
			if present[e] || (!directed && present[edgeT{e.d, e.s, e.l}]) {
				continue
			}
			ins = Edge{Src: e.s, Dst: e.d, Label: e.l}
			found = true
			break
		}
		if !found {
			return true // graph saturated; nothing to test
		}

		for _, variant := range []graph.Variant{graph.EdgeInduced, graph.Homomorphic} {
			before := countAll(t, store, p, variant)
			if err := store.InsertEdge(ins.Src, ins.Dst, ins.Label); err != nil {
				t.Logf("insert: %v", err)
				return false
			}
			delta, err := NewEmbeddings(store, p, ins, Options{Variant: variant})
			if err != nil {
				t.Logf("delta: %v", err)
				return false
			}
			after := countAll(t, store, p, variant)
			if before+delta != after {
				t.Logf("seed %d %v: before=%d delta=%d after=%d", seed, variant, before, delta, after)
				return false
			}
			// Deletion is the mirror image.
			removed, err := RemovedEmbeddings(store, p, ins, Options{Variant: variant})
			if err != nil {
				t.Logf("removed: %v", err)
				return false
			}
			if removed != delta {
				t.Logf("seed %d %v: removed=%d delta=%d", seed, variant, removed, delta)
				return false
			}
			if err := store.DeleteEdge(ins.Src, ins.Dst, ins.Label); err != nil {
				t.Logf("delete: %v", err)
				return false
			}
			if got := countAll(t, store, p, variant); got != before {
				t.Logf("seed %d %v: delete did not restore: %d vs %d", seed, variant, got, before)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaStreamsOnlyNewEmbeddings(t *testing.T) {
	// Star data graph: center A with two B leaves; pattern is an A-B edge.
	// Inserting a third leaf edge must stream exactly the embeddings using
	// it.
	b := graph.NewBuilder(false)
	center := b.AddVertex(0)
	for i := 0; i < 2; i++ {
		leaf := b.AddVertex(1)
		b.AddEdge(center, leaf, 0)
	}
	leaf3 := b.AddVertex(1) // isolated for now
	g := b.MustBuild()
	store := ccsr.Build(g)

	pb := graph.NewBuilder(false)
	pa := pb.AddVertex(0)
	pbv := pb.AddVertex(1)
	pb.AddEdge(pa, pbv, 0)
	p := pb.MustBuild()

	if err := store.InsertEdge(center, leaf3, 0); err != nil {
		t.Fatal(err)
	}
	var seen [][2]graph.VertexID
	delta, err := NewEmbeddings(store, p, Edge{Src: center, Dst: leaf3}, Options{
		Variant: graph.EdgeInduced,
		OnEmbedding: func(m []graph.VertexID) bool {
			seen = append(seen, [2]graph.VertexID{m[pa], m[pbv]})
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if delta != 1 || len(seen) != 1 {
		t.Fatalf("delta = %d, embeddings %v, want exactly the new leaf edge", delta, seen)
	}
	if seen[0][0] != center || seen[0][1] != leaf3 {
		t.Fatalf("streamed wrong embedding %v", seen[0])
	}
}

func TestDeltaHomomorphicExclusion(t *testing.T) {
	// A two-edge path pattern with identical labels can map both pattern
	// edges onto the same inserted edge homomorphically; the exclusion
	// rule must still count each new embedding once (checked against a
	// recount).
	b := graph.NewBuilder(false)
	b.AddVertices(4, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	g := b.MustBuild()
	store := ccsr.Build(g)

	p := graph.Path(3, 0)
	before := countAll(t, store, p, graph.Homomorphic)
	ins := Edge{Src: 2, Dst: 3}
	if err := store.InsertEdge(ins.Src, ins.Dst, 0); err != nil {
		t.Fatal(err)
	}
	delta, err := NewEmbeddings(store, p, ins, Options{Variant: graph.Homomorphic})
	if err != nil {
		t.Fatal(err)
	}
	after := countAll(t, store, p, graph.Homomorphic)
	if before+delta != after {
		t.Fatalf("homomorphic delta wrong: %d + %d != %d", before, delta, after)
	}
}

func TestDeltaRejectsVertexInduced(t *testing.T) {
	g := graph.Clique(4, 0)
	store := ccsr.Build(g)
	_, err := NewEmbeddings(store, graph.Path(3, 0), Edge{Src: 0, Dst: 1}, Options{Variant: graph.VertexInduced})
	if err == nil {
		t.Fatal("vertex-induced delta must be rejected")
	}
}

func TestDeltaLimit(t *testing.T) {
	b := graph.NewBuilder(false)
	center := b.AddVertex(0)
	other := b.AddVertex(0)
	for i := 0; i < 10; i++ {
		leaf := b.AddVertex(1)
		b.AddEdge(center, leaf, 0)
		b.AddEdge(other, leaf, 0)
	}
	g := b.MustBuild()
	store := ccsr.Build(g)
	// Pattern: A-B-A wedge; inserting one more center-leaf edge creates
	// many new wedges.
	pb := graph.NewBuilder(false)
	a1 := pb.AddVertex(0)
	bb := pb.AddVertex(1)
	a2 := pb.AddVertex(0)
	pb.AddEdge(a1, bb, 0)
	pb.AddEdge(bb, a2, 0)
	p := pb.MustBuild()

	leafNew := store.AddVertex(1)
	if err := store.InsertEdge(center, leafNew, 0); err != nil {
		t.Fatal(err)
	}
	if err := store.InsertEdge(other, leafNew, 0); err != nil {
		t.Fatal(err)
	}
	n, err := NewEmbeddings(store, p, Edge{Src: center, Dst: leafNew}, Options{
		Variant: graph.EdgeInduced,
		Limit:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("limited delta = %d, want 1", n)
	}
}

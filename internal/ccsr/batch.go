package ccsr

import (
	"fmt"

	"csce/internal/graph"
)

// Batch updates: apply many edits with validation up front and compaction
// deferred to the end, the bulk-loading pattern of the graph databases the
// paper discusses. A batch is all-or-nothing per edit — the first invalid
// edit aborts with the earlier edits applied (the error says how many) —
// but unlike per-call updates, clusters are compacted once afterward
// instead of per threshold crossing.

// EditKind distinguishes batch operations.
type EditKind uint8

const (
	// EditInsert adds an edge.
	EditInsert EditKind = iota
	// EditDelete removes an edge.
	EditDelete
	// EditAddVertex appends a vertex (Src ignored; Label is the vertex
	// label reinterpreted from the edge-label field).
	EditAddVertex
)

// Edit is one batch operation.
type Edit struct {
	Kind     EditKind
	Src, Dst graph.VertexID
	// Label is the edge label for insert/delete, or the vertex label
	// (truncated to the Label range) for EditAddVertex.
	Label graph.EdgeLabel
}

// ApplyBatch applies the edits in order. On error, the successfully
// applied prefix remains in effect and the error reports the offending
// index. Compaction of dirty clusters happens once at the end, making
// large batches substantially cheaper than one-at-a-time updates.
func (s *Store) ApplyBatch(edits []Edit) error {
	for i, e := range edits {
		var err error
		switch e.Kind {
		case EditInsert:
			err = s.InsertEdge(e.Src, e.Dst, e.Label)
		case EditDelete:
			err = s.DeleteEdge(e.Src, e.Dst, e.Label)
		case EditAddVertex:
			s.AddVertex(graph.Label(e.Label))
		default:
			err = fmt.Errorf("ccsr: unknown edit kind %d", e.Kind)
		}
		if err != nil {
			return fmt.Errorf("ccsr: batch edit %d: %w", i, err)
		}
	}
	for _, c := range s.clusters {
		if c.dirty() {
			s.compact(c)
		}
	}
	return nil
}

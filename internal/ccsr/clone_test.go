package ccsr

import (
	"bytes"
	"sync"
	"testing"

	"csce/internal/graph"
)

// TestCloneIsIndependent mutates original and clone divergently and checks
// neither sees the other's edits.
func TestCloneIsIndependent(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 A\nv 2 B\ne 0 1\ne 1 2\n")
	s := Build(g)
	if err := s.DeleteEdge(0, 1, 0); err != nil { // leave a pending overlay
		t.Fatal(err)
	}
	c := s.Clone()
	// Clone compacts the source: no cluster on either side stays dirty.
	for k, cl := range s.clusters {
		if cl.dirty() {
			t.Fatalf("source cluster %v dirty after Clone", k)
		}
	}
	if !storesEquivalent(t, s, c) {
		t.Fatal("fresh clone differs from source")
	}

	// Diverge: re-add 0-1 on the original only, and grow the clone only.
	if err := s.InsertEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	v := c.AddVertex(1) // another B
	if err := c.InsertEdge(1, v, 0); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 2 || c.NumEdges() != 2 {
		t.Fatalf("edge counts diverged wrongly: %d vs %d", s.NumEdges(), c.NumEdges())
	}
	if s.NumVertices() != 3 || c.NumVertices() != 4 {
		t.Fatalf("vertex counts: %d vs %d, want 3 and 4", s.NumVertices(), c.NumVertices())
	}
	// Each equals a scratch rebuild of its own graph.
	sb := graph.NewBuilder(false)
	sb.AddVertex(0)
	sb.AddVertex(0)
	sb.AddVertex(1)
	sb.AddEdge(0, 1, 0)
	sb.AddEdge(1, 2, 0)
	if !storesEquivalent(t, s, Build(sb.MustBuild())) {
		t.Fatal("original corrupted by clone mutation")
	}
	cb := graph.NewBuilder(false)
	cb.AddVertex(0)
	cb.AddVertex(0)
	cb.AddVertex(1)
	cb.AddVertex(1)
	cb.AddEdge(1, 2, 0)
	cb.AddEdge(1, 3, 0)
	if !storesEquivalent(t, c, Build(cb.MustBuild())) {
		t.Fatal("clone corrupted by original mutation")
	}
}

// TestCloneSharesNames pins the documented aliasing: the label table is
// shared, everything else is private.
func TestCloneSharesNames(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 B\ne 0 1 knows\n")
	s := Build(g)
	c := s.Clone()
	if c.Names() != s.Names() {
		t.Fatal("label table must be shared across clones")
	}
	if &c.vertexLabels[0] == &s.vertexLabels[0] {
		t.Fatal("vertex label slice must be copied")
	}
}

// TestCloneConcurrentReadersWhileWriterMutates is the snapshot-swap usage
// pattern under the race detector: readers hammer a published clone while
// the private original keeps mutating.
func TestCloneConcurrentReadersWhileWriterMutates(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertices(64, 0)
	for i := 1; i < 64; i++ {
		b.AddEdge(0, graph.VertexID(i), 0)
	}
	writer := Build(b.MustBuild())
	published := writer.Clone()

	p := graph.MustParse("t undirected\nv 0 0\nv 1 0\ne 0 1\n")
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				view, err := published.ReadCSR(p, graph.EdgeInduced)
				if err != nil {
					t.Error(err)
					return
				}
				if got := view.EdgeCluster(0, 0, 0).NumEdges; got != 63 {
					t.Errorf("published snapshot saw %d edges, want 63", got)
					return
				}
			}
		}()
	}
	for i := 1; i < 64; i++ {
		if err := writer.DeleteEdge(0, graph.VertexID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

// TestCompactionExactlyAtThreshold pins the boundary arithmetic of
// maybeCompact: overlay < len(outCol)/deltaCompactionFraction +
// deltaCompactionMin stays lazy; reaching it compacts. A directed store
// keeps overlay entries 1:1 with edits, so the boundary is exact.
func TestCompactionExactlyAtThreshold(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddVertices(2*deltaCompactionMin+4, 0)
	s := Build(b.MustBuild())
	key := NewKey(0, 0, 0, true)

	// Empty base: threshold = 0/8 + deltaCompactionMin.
	for i := 0; i < deltaCompactionMin-1; i++ {
		if err := s.InsertEdge(0, graph.VertexID(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	c := s.clusters[key]
	if !c.dirty() || len(c.addPairs) != deltaCompactionMin-1 {
		t.Fatalf("one below threshold must stay lazy: dirty=%v adds=%d", c.dirty(), len(c.addPairs))
	}
	if err := s.InsertEdge(0, graph.VertexID(deltaCompactionMin), 0); err != nil {
		t.Fatal(err)
	}
	if c.dirty() {
		t.Fatalf("overlay of %d on empty base must compact", deltaCompactionMin)
	}
	if len(c.outCol) != deltaCompactionMin || c.NumEdges != deltaCompactionMin {
		t.Fatalf("compacted base has %d cols / %d edges, want %d", len(c.outCol), c.NumEdges, deltaCompactionMin)
	}

	// Non-empty base: threshold = base/deltaCompactionFraction + min. The
	// base now holds deltaCompactionMin edges, so the fraction term adds
	// deltaCompactionMin/deltaCompactionFraction to the budget.
	extra := deltaCompactionMin/deltaCompactionFraction + deltaCompactionMin
	for i := 0; i < extra-1; i++ {
		if err := s.InsertEdge(1, graph.VertexID(i+2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !c.dirty() || len(c.addPairs) != extra-1 {
		t.Fatalf("one below fraction threshold must stay lazy: dirty=%v adds=%d, want %d",
			c.dirty(), len(c.addPairs), extra-1)
	}
	if err := s.InsertEdge(1, graph.VertexID(extra+1), 0); err != nil {
		t.Fatal(err)
	}
	if c.dirty() {
		t.Fatalf("overlay of %d on base %d must compact", extra, deltaCompactionMin)
	}
}

// TestCodecRoundTripWithPendingDeleteOverlay pins the Encode-compacts-first
// equivalence for tombstones: a store with a pending DeleteEdge overlay
// encodes to the same bytes as its explicitly compacted twin, and the
// decoded store matches a scratch rebuild of the post-delete graph.
func TestCodecRoundTripWithPendingDeleteOverlay(t *testing.T) {
	build := func() *Store {
		g := graph.MustParse("t undirected\nv 0 A\nv 1 A\nv 2 A\nv 3 B\ne 0 1\ne 1 2\ne 0 2\ne 2 3\n")
		s := Build(g)
		if err := s.DeleteEdge(1, 2, 0); err != nil {
			t.Fatal(err)
		}
		return s
	}

	dirty := build()
	key := NewKey(0, 0, 0, false)
	if !dirty.clusters[key].dirty() {
		t.Fatal("precondition: delete must leave a pending overlay")
	}
	var dirtyBuf bytes.Buffer
	if err := dirty.Encode(&dirtyBuf); err != nil {
		t.Fatal(err)
	}
	if dirty.clusters[key].dirty() {
		t.Fatal("Encode must compact pending overlays in place")
	}

	compacted := build()
	compacted.compact(compacted.clusters[key])
	var compactBuf bytes.Buffer
	if err := compacted.Encode(&compactBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dirtyBuf.Bytes(), compactBuf.Bytes()) {
		t.Fatal("encoding with a pending overlay must equal encoding after explicit compaction")
	}

	decoded, err := Decode(&dirtyBuf)
	if err != nil {
		t.Fatal(err)
	}
	rb := graph.NewBuilder(false)
	rb.AddVertex(0)
	rb.AddVertex(0)
	rb.AddVertex(0)
	rb.AddVertex(1)
	rb.AddEdge(0, 1, 0)
	rb.AddEdge(0, 2, 0)
	rb.AddEdge(2, 3, 0)
	if !storesEquivalent(t, decoded, Build(rb.MustBuild())) {
		t.Fatal("decoded store differs from rebuild of the post-delete graph")
	}
}

// Package ccsr implements the paper's Clustered Compressed Sparse Row
// (CCSR) index (Section IV). The data graph is clustered offline into
// edge-isomorphism classes — all edges sharing endpoint labels, edge label,
// and direction land in the same cluster — and each cluster is stored as
// run-length-compressed CSR arrays. At query time, ReadCSR (Algorithm 1)
// selects and decompresses only the clusters a pattern needs, so candidate
// lookup is a direct cluster access instead of repeated label matching.
//
// Space follows the paper's analysis: every edge appears exactly twice
// across all clusters (outgoing+incoming CSR for directed clusters, both
// orientations in one CSR for undirected clusters), and the run-length
// compression of row indices keeps the total row-index footprint at no more
// than two integers per edge.
package ccsr

import (
	"fmt"
	"sort"

	"csce/internal/graph"
)

// Key identifies an edge-isomorphism cluster: the labels of both endpoints
// in the outgoing direction, the edge label, and whether the edges are
// directed. For undirected clusters the label pair is canonicalized with
// Src <= Dst, mirroring the paper's alphabetically sorted pair identifier.
type Key struct {
	Src      graph.Label
	Dst      graph.Label
	Edge     graph.EdgeLabel
	Directed bool
}

// NewKey builds the cluster identifier for an edge between vertex labels
// src and dst. Undirected keys canonicalize the label pair.
func NewKey(src, dst graph.Label, el graph.EdgeLabel, directed bool) Key {
	if !directed && dst < src {
		src, dst = dst, src
	}
	return Key{Src: src, Dst: dst, Edge: el, Directed: directed}
}

// String renders the key like the paper's (A,B,NULL)-cluster notation.
func (k Key) String() string {
	arrow := "--"
	if k.Directed {
		arrow = "->"
	}
	return fmt.Sprintf("(%d%s%d,e%d)", k.Src, arrow, k.Dst, k.Edge)
}

// pairKey is an unordered vertex-label pair used to index the
// (ux,uy)*-clusters needed by vertex-induced negation.
type pairKey struct{ lo, hi graph.Label }

func newPairKey(a, b graph.Label) pairKey {
	if b < a {
		a, b = b, a
	}
	return pairKey{a, b}
}

// rle is a run-length-encoded non-decreasing uint32 sequence, used to
// compress CSR row-start arrays: vals[i] repeats counts[i] times.
type rle struct {
	vals   []uint32
	counts []uint32
}

func compressRLE(xs []uint32) rle {
	var r rle
	for _, x := range xs {
		if n := len(r.vals); n > 0 && r.vals[n-1] == x {
			r.counts[n-1]++
		} else {
			r.vals = append(r.vals, x)
			r.counts = append(r.counts, 1)
		}
	}
	return r
}

func (r rle) decompress() []uint32 {
	var total int
	for _, c := range r.counts {
		total += int(c)
	}
	out := make([]uint32, 0, total)
	for i, v := range r.vals {
		for j := uint32(0); j < r.counts[i]; j++ {
			out = append(out, v)
		}
	}
	return out
}

func (r rle) bytes() int { return 4 * (len(r.vals) + len(r.counts)) }

// Compressed is the at-rest form of one cluster: run-length-compressed
// base CSR arrays plus the incremental-update overlays maintained by
// InsertEdge/DeleteEdge (merged back into the base by compaction).
type Compressed struct {
	Key      Key
	NumEdges int

	outRow rle
	outCol []uint32
	inRow  rle // directed clusters only
	inCol  []uint32

	// Update overlays: edges inserted since the base was built, and
	// tombstones for deleted base edges. Undirected clusters carry both
	// orientations of each overlay edge, like the base.
	addPairs []pair
	delPairs []pair
}

// dirty reports whether the cluster has unmerged overlay entries.
func (c *Compressed) dirty() bool { return len(c.addPairs)+len(c.delPairs) > 0 }

// Bytes returns the approximate in-memory footprint of the compressed
// cluster, used for the Fig. 11 overhead experiment.
func (c *Compressed) Bytes() int {
	return c.outRow.bytes() + 4*len(c.outCol) + c.inRow.bytes() + 4*len(c.inCol) +
		8*(len(c.addPairs)+len(c.delPairs))
}

// CSR is a decompressed compressed-sparse-row adjacency: Row(v) returns the
// sorted neighbor list of v in constant time, as the paper requires.
type CSR struct {
	rowStart []uint32 // length numVertices+1
	col      []graph.VertexID

	nonEmpty []graph.VertexID // lazily built list of vertices with a non-empty row
}

// Row returns the sorted neighbors of v within this cluster CSR.
func (c *CSR) Row(v graph.VertexID) []graph.VertexID {
	return c.col[c.rowStart[v]:c.rowStart[v+1]]
}

// RowLen returns len(Row(v)) without slicing.
func (c *CSR) RowLen(v graph.VertexID) int {
	return int(c.rowStart[v+1] - c.rowStart[v])
}

// Has reports whether w appears in v's row, by binary search.
func (c *CSR) Has(v, w graph.VertexID) bool {
	row := c.Row(v)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= w })
	return i < len(row) && row[i] == w
}

// NonEmptyRows returns the vertices with at least one neighbor in this
// cluster, ascending. The result is memoized; callers must not modify it.
// It serves as the candidate pool for the first vertex of a matching order.
func (c *CSR) NonEmptyRows() []graph.VertexID {
	if c.nonEmpty == nil {
		c.nonEmpty = make([]graph.VertexID, 0, 16)
		for v := 0; v+1 < len(c.rowStart); v++ {
			if c.rowStart[v+1] > c.rowStart[v] {
				c.nonEmpty = append(c.nonEmpty, graph.VertexID(v))
			}
		}
	}
	return c.nonEmpty
}

// Len returns the number of entries in the column array (the cluster size
// |I_C| from the paper's tie-breaking formulas).
func (c *CSR) Len() int { return len(c.col) }

func (c *CSR) bytes() int { return 4 * (len(c.rowStart) + len(c.col)) }

// Cluster is a decompressed cluster ready for matching. For a directed
// cluster, Out indexes source vertices and In indexes destination vertices.
// For an undirected cluster, Out holds both orientations and In is nil.
type Cluster struct {
	Key      Key
	NumEdges int
	Out      *CSR
	In       *CSR
}

// FromSrc returns the CSR to consult for neighbors of a vertex playing the
// source role of this cluster's edges; FromDst the destination role.
func (c *Cluster) FromSrc() *CSR { return c.Out }

// FromDst returns the CSR indexing destination-side vertices.
func (c *Cluster) FromDst() *CSR {
	if c.In != nil {
		return c.In
	}
	return c.Out
}

// Bytes returns the decompressed footprint.
func (c *Cluster) Bytes() int {
	b := c.Out.bytes()
	if c.In != nil {
		b += c.In.bytes()
	}
	return b
}

package ccsr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds Decode mangled copies of a valid encoding
// and arbitrary byte soup: it must return an error or a store, never
// panic. Stores that do decode from mutated input may be semantically
// wrong (a flipped column index is still a plausible stream) but must be
// structurally safe to have decoded.
func TestDecodeNeverPanics(t *testing.T) {
	g := randomGraph(1, 60, 200, 3, 2, false)
	var valid bytes.Buffer
	if err := Build(g).Encode(&valid); err != nil {
		t.Fatal(err)
	}
	base := valid.Bytes()

	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: Decode panicked: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var input []byte
		if rng.Intn(2) == 0 {
			// Mutate a valid stream: flip bits, then maybe truncate.
			input = append([]byte(nil), base...)
			for i := 0; i < 1+rng.Intn(8); i++ {
				input[rng.Intn(len(input))] ^= byte(1 << rng.Intn(8))
			}
			if rng.Intn(2) == 0 {
				input = input[:rng.Intn(len(input)+1)]
			}
		} else {
			// Arbitrary bytes.
			input = make([]byte, rng.Intn(256))
			rng.Read(input)
		}
		_, _ = Decode(bytes.NewReader(input))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeTruncatedAtEveryPrefix exercises every truncation point of a
// small valid stream: all must error cleanly, none may succeed except the
// full stream.
func TestDecodeTruncatedAtEveryPrefix(t *testing.T) {
	g := randomGraph(2, 12, 30, 2, 1, true)
	var valid bytes.Buffer
	if err := Build(g).Encode(&valid); err != nil {
		t.Fatal(err)
	}
	data := valid.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(data))
		}
	}
	if _, err := Decode(bytes.NewReader(data)); err != nil {
		t.Fatalf("full stream must decode: %v", err)
	}
}

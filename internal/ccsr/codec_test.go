package ccsr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"csce/internal/graph"
)

// TestDecodeNeverPanics feeds Decode mangled copies of a valid encoding
// and arbitrary byte soup: it must return an error or a store, never
// panic. Stores that do decode from mutated input may be semantically
// wrong (a flipped column index is still a plausible stream) but must be
// structurally safe to have decoded.
func TestDecodeNeverPanics(t *testing.T) {
	g := randomGraph(1, 60, 200, 3, 2, false)
	var valid bytes.Buffer
	if err := Build(g).Encode(&valid); err != nil {
		t.Fatal(err)
	}
	base := valid.Bytes()

	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: Decode panicked: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var input []byte
		if rng.Intn(2) == 0 {
			// Mutate a valid stream: flip bits, then maybe truncate.
			input = append([]byte(nil), base...)
			for i := 0; i < 1+rng.Intn(8); i++ {
				input[rng.Intn(len(input))] ^= byte(1 << rng.Intn(8))
			}
			if rng.Intn(2) == 0 {
				input = input[:rng.Intn(len(input)+1)]
			}
		} else {
			// Arbitrary bytes.
			input = make([]byte, rng.Intn(256))
			rng.Read(input)
		}
		_, _ = Decode(bytes.NewReader(input))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeTruncatedAtEveryPrefix exercises every truncation point of a
// small valid stream: all must error cleanly, none may succeed except the
// full stream.
func TestDecodeTruncatedAtEveryPrefix(t *testing.T) {
	g := randomGraph(2, 12, 30, 2, 1, true)
	var valid bytes.Buffer
	if err := Build(g).Encode(&valid); err != nil {
		t.Fatal(err)
	}
	data := valid.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(data))
		}
	}
	if _, err := Decode(bytes.NewReader(data)); err != nil {
		t.Fatalf("full stream must decode: %v", err)
	}
}

// TestLabelTableRoundTrip pins the codec-v2 trailer: a store built from a
// graph with symbolic label names decodes with a table that interns every
// name to the identical value, and a store without a table decodes to a
// nil one (matching legacy version-1 behavior).
func TestLabelTableRoundTrip(t *testing.T) {
	g, err := graph.ParseString("t undirected\nv 0 Person\nv 1 City\nv 2 Person\ne 0 1 lives\ne 0 2 knows\n")
	if err != nil {
		t.Fatal(err)
	}
	s := Build(g)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	names := s2.Names()
	if names == nil {
		t.Fatal("decoded store lost its label table")
	}
	if names.NumVertexLabels() != g.Names.NumVertexLabels() ||
		names.NumEdgeLabels() != g.Names.NumEdgeLabels() {
		t.Fatalf("table sizes changed: %d/%d vertex, %d/%d edge",
			names.NumVertexLabels(), g.Names.NumVertexLabels(),
			names.NumEdgeLabels(), g.Names.NumEdgeLabels())
	}
	for _, name := range []string{"Person", "City"} {
		if names.Vertex(name) != g.Names.Vertex(name) {
			t.Fatalf("vertex label %q re-interned to a different value", name)
		}
	}
	for _, name := range []string{"", "lives", "knows"} {
		if names.Edge(name) != g.Names.Edge(name) {
			t.Fatalf("edge label %q re-interned to a different value", name)
		}
	}

	// A store without a table (programmatically built graph) stays nil.
	bare := Build(randomGraph(7, 20, 40, 2, 1, false))
	buf.Reset()
	if err := bare.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s3, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Names() != nil {
		t.Fatal("nameless store grew a label table after round trip")
	}
}

package ccsr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"csce/internal/graph"
)

// randomGraph builds a seeded random labeled graph for property tests.
func randomGraph(seed int64, n, m, labels, edgeLabels int, directed bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		v := graph.VertexID(rng.Intn(n))
		w := graph.VertexID(rng.Intn(n))
		if v == w {
			continue
		}
		var el graph.EdgeLabel
		if edgeLabels > 0 {
			el = graph.EdgeLabel(rng.Intn(edgeLabels))
		}
		b.AddEdge(v, w, el)
	}
	return b.MustBuild()
}

func fig1Graph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.ParseString(`
t directed
v 0 A
v 1 B
v 2 C
v 3 A
v 4 B
v 5 B
v 6 D
v 7 C
v 8 A
v 9 C
e 0 1
e 0 5
e 0 2
e 0 9
e 6 0
e 3 4
e 3 2
e 1 2
e 4 7
e 8 7
e 8 9
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildClusterPartition(t *testing.T) {
	g := fig1Graph(t)
	s := Build(g)
	total := 0
	for _, k := range s.Keys() {
		total += s.ClusterSize(k)
	}
	if total != g.NumEdges() {
		t.Fatalf("cluster sizes sum to %d, want %d (each edge in exactly one cluster)",
			total, g.NumEdges())
	}
	if s.NumVertices() != g.NumVertices() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("store size mismatch: %d/%d", s.NumVertices(), s.NumEdges())
	}
}

func TestFig4Clusters(t *testing.T) {
	g := fig1Graph(t)
	s := Build(g)
	names := g.Names
	a, b := names.Vertex("A"), names.Vertex("B")

	// The (A,B,NULL)-cluster of Fig. 4 holds the A->B edges:
	// v1->v2, v1->v6, v4->v5  (IDs 0->1, 0->5, 3->4).
	key := NewKey(a, b, 0, true)
	if got := s.ClusterSize(key); got != 3 {
		t.Fatalf("(A,B) cluster size = %d, want 3", got)
	}
	view, err := s.ReadCSR(graph.MustParse("t directed\nv 0 A\nv 1 B\ne 0 1\n"), graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	c := view.Cluster(key)
	if c == nil {
		t.Fatal("cluster not loaded")
	}
	// Outgoing CSR: v1 (ID 0) has outgoing B-neighbors v2 and v6 (IDs 1, 5).
	row := c.Out.Row(0)
	if len(row) != 2 || row[0] != 1 || row[1] != 5 {
		t.Fatalf("out row of v1 = %v, want [1 5]", row)
	}
	// Incoming CSR: v5 (ID 4) has incoming A-neighbor v4 (ID 3).
	in := c.In.Row(4)
	if len(in) != 1 || in[0] != 3 {
		t.Fatalf("in row of v5 = %v, want [3]", in)
	}
	if c.Out.Len() != c.In.Len() || c.Out.Len() != 3 {
		t.Fatalf("|I_C| must equal the cluster size in both CSRs: %d/%d", c.Out.Len(), c.In.Len())
	}
}

func TestRLERoundTrip(t *testing.T) {
	f := func(deltas []uint8) bool {
		xs := make([]uint32, len(deltas))
		var cur uint32
		for i, d := range deltas {
			cur += uint32(d % 3) // many repeats, like row starts
			xs[i] = cur
		}
		got := compressRLE(xs).decompress()
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRLECompressionBound(t *testing.T) {
	// The paper bounds the compressed row index at 2 integers per edge.
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(seed, 200, 800, 4, 2, seed%2 == 0)
		s := Build(g)
		for k, c := range s.clusters {
			if len(c.outRow.vals) > 2*c.NumEdges+1 {
				t.Fatalf("cluster %v: outRow rle has %d runs for %d edges", k, len(c.outRow.vals), c.NumEdges)
			}
		}
	}
}

// TestClusterAdjacencyEqualsGraph is the core CCSR correctness property:
// for every data edge (v,w,l) the cluster keyed by its labels contains it,
// and clusters contain nothing else.
func TestClusterAdjacencyEqualsGraph(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		directed := seed%2 == 0
		g := randomGraph(seed, 120, 500, 3, 2, directed)
		s := Build(g)

		// Load every cluster through a view by matching the trivial pattern
		// of each cluster key.
		total := 0
		for _, k := range s.Keys() {
			pb := graph.NewBuilder(directed)
			pb.AddVertex(k.Src)
			pb.AddVertex(k.Dst)
			pb.AddEdge(0, 1, k.Edge)
			view, err := s.ReadCSR(pb.MustBuild(), graph.EdgeInduced)
			if err != nil {
				t.Fatal(err)
			}
			c := view.Cluster(k)
			if c == nil {
				t.Fatalf("cluster %v missing after ReadCSR", k)
			}
			// Every cluster entry is a real graph edge with matching labels.
			for v := 0; v < s.NumVertices(); v++ {
				for _, w := range c.Out.Row(graph.VertexID(v)) {
					if directed {
						srcOK := g.Label(graph.VertexID(v)) == k.Src && g.Label(w) == k.Dst
						if !srcOK || !g.HasEdgeLabeled(graph.VertexID(v), w, k.Edge) {
							t.Fatalf("cluster %v contains non-edge (%d,%d)", k, v, w)
						}
					} else if !g.HasEdgeLabeled(graph.VertexID(v), w, k.Edge) {
						t.Fatalf("cluster %v contains non-edge (%d,%d)", k, v, w)
					}
				}
			}
			total += c.NumEdges
		}
		if total != g.NumEdges() {
			t.Fatalf("seed %d: clusters cover %d edges, want %d", seed, total, g.NumEdges())
		}
	}
}

func TestUndirectedClusterBothOrientations(t *testing.T) {
	g := randomGraph(3, 60, 200, 3, 1, false)
	s := Build(g)
	for _, k := range s.Keys() {
		pb := graph.NewBuilder(false)
		pb.AddVertex(k.Src)
		pb.AddVertex(k.Dst)
		pb.AddEdge(0, 1, k.Edge)
		view, err := s.ReadCSR(pb.MustBuild(), graph.EdgeInduced)
		if err != nil {
			t.Fatal(err)
		}
		c := view.Cluster(k)
		for v := 0; v < s.NumVertices(); v++ {
			for _, w := range c.Out.Row(graph.VertexID(v)) {
				if !c.Out.Has(w, graph.VertexID(v)) {
					t.Fatalf("undirected cluster %v misses reverse orientation of (%d,%d)", k, v, w)
				}
			}
		}
	}
}

func TestCSRHelpers(t *testing.T) {
	c := &CSR{rowStart: []uint32{0, 2, 2, 3}, col: []graph.VertexID{5, 9, 7}}
	if got := c.Row(0); len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("Row(0) = %v", got)
	}
	if c.RowLen(1) != 0 || c.RowLen(2) != 1 {
		t.Fatal("RowLen wrong")
	}
	if !c.Has(0, 9) || c.Has(0, 7) || c.Has(1, 5) {
		t.Fatal("Has wrong")
	}
	ne := c.NonEmptyRows()
	if len(ne) != 2 || ne[0] != 0 || ne[1] != 2 {
		t.Fatalf("NonEmptyRows = %v", ne)
	}
}

func TestReadCSRSelectsOnlyNeededClusters(t *testing.T) {
	g := fig1Graph(t)
	s := Build(g)
	p := graph.MustParse("t directed\nv 0 A\nv 1 B\ne 0 1\n")
	view, err := s.ReadCSR(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	if view.NumClusters() != 1 {
		t.Fatalf("edge-induced view loaded %d clusters, want 1", view.NumClusters())
	}
	// Vertex-induced loads negation clusters too: pattern v0 A, v1 B, v2 B
	// with edges (0,1),(0,2) leaves pair (1,2) = (B,B) unconnected; the data
	// graph has no B-B edges, so still only pattern-edge clusters load.
	p2 := graph.MustParse("t directed\nv 0 A\nv 1 B\nv 2 B\ne 0 1\ne 0 2\n")
	view2, err := s.ReadCSR(p2, graph.VertexInduced)
	if err != nil {
		t.Fatal(err)
	}
	if view2.NumClusters() != 1 {
		t.Fatalf("vertex-induced view loaded %d clusters, want 1", view2.NumClusters())
	}
	// Pattern with unconnected A,C pair must pull in the A->C cluster.
	p3 := graph.MustParse("t directed\nv 0 A\nv 1 B\nv 2 C\ne 0 1\ne 1 2\n")
	view3, err := s.ReadCSR(p3, graph.VertexInduced)
	if err != nil {
		t.Fatal(err)
	}
	names := g.Names
	if got := view3.PairClusters(names.Vertex("A"), names.Vertex("C")); len(got) == 0 {
		t.Fatal("negation clusters for (A,C) not loaded")
	}
}

func TestReadCSRDirectednessMismatch(t *testing.T) {
	s := Build(fig1Graph(t))
	p := graph.MustParse("t undirected\nv 0 A\nv 1 B\ne 0 1\n")
	if _, err := s.ReadCSR(p, graph.EdgeInduced); err == nil {
		t.Fatal("directedness mismatch must error")
	}
}

func TestViewAdjacent(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		directed := seed%2 == 0
		g := randomGraph(seed, 80, 300, 3, 2, directed)
		s := Build(g)
		// A complete pattern over all label pairs forces all clusters in.
		pb := graph.NewBuilder(directed)
		for l := 0; l < 3; l++ {
			pb.AddVertex(graph.Label(l))
			pb.AddVertex(graph.Label(l)) // two per label so same-label pairs load too
		}
		pv := pb.MustBuild() // no edges; vertex-induced loads all pair clusters
		view, err := s.ReadCSR(pv, graph.VertexInduced)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < 500; i++ {
			v := graph.VertexID(rng.Intn(g.NumVertices()))
			w := graph.VertexID(rng.Intn(g.NumVertices()))
			if v == w {
				continue
			}
			if got, want := view.Adjacent(v, w), g.Adjacent(v, w); got != want {
				t.Fatalf("seed %d: Adjacent(%d,%d) = %v, graph says %v", seed, v, w, got, want)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		directed := seed%2 == 0
		g := randomGraph(seed, 100, 400, 4, 2, directed)
		s := Build(g)
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		s2, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if s2.NumVertices() != s.NumVertices() || s2.NumEdges() != s.NumEdges() ||
			s2.Directed() != s.Directed() || s2.NumClusters() != s.NumClusters() {
			t.Fatalf("decoded store header mismatch")
		}
		for _, k := range s.Keys() {
			if s.ClusterSize(k) != s2.ClusterSize(k) {
				t.Fatalf("cluster %v size changed after round trip", k)
			}
			a, err1 := s.decompress(k)
			b, err2 := s2.decompress(k)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if len(a.Out.col) != len(b.Out.col) {
				t.Fatalf("cluster %v column array changed", k)
			}
			for i := range a.Out.col {
				if a.Out.col[i] != b.Out.col[i] {
					t.Fatalf("cluster %v column %d changed", k, i)
				}
			}
			for v := 0; v <= s.NumVertices(); v++ {
				if a.Out.rowStart[v] != b.Out.rowStart[v] {
					t.Fatalf("cluster %v rowStart %d changed", k, v)
				}
			}
		}
		if s2.CompressedBytes() != s.CompressedBytes() {
			t.Fatal("compressed footprint changed after round trip")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a ccsr file"))); err == nil {
		t.Fatal("garbage must not decode")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must not decode")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	k1 := NewKey(3, 1, 0, false)
	k2 := NewKey(1, 3, 0, false)
	if k1 != k2 {
		t.Fatal("undirected keys must canonicalize the label pair")
	}
	d1 := NewKey(3, 1, 0, true)
	d2 := NewKey(1, 3, 0, true)
	if d1 == d2 {
		t.Fatal("directed keys must preserve orientation")
	}
}

func TestPairClusterKeys(t *testing.T) {
	g := fig1Graph(t)
	s := Build(g)
	names := g.Names
	a, bl := names.Vertex("A"), names.Vertex("B")
	keys := s.PairClusterKeys(a, bl)
	if len(keys) != 1 {
		t.Fatalf("pair (A,B) has %d clusters, want 1", len(keys))
	}
	// D connects only to A in the example (v7->v1): both orientations of
	// the unordered pair must resolve to the same keys.
	d := names.Vertex("D")
	if len(s.PairClusterKeys(a, d)) != len(s.PairClusterKeys(d, a)) {
		t.Fatal("pair lookup must be orientation independent")
	}
}

package ccsr

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"csce/internal/graph"
)

// edgeSet mirrors the store's edge content so random edit sequences can
// be replayed into a from-scratch rebuild for comparison.
type edgeSet map[[3]uint32]bool

func edgeSetOf(g *graph.Graph) edgeSet {
	es := edgeSet{}
	g.Edges(func(a, b graph.VertexID, l graph.EdgeLabel) {
		es[[3]uint32{uint32(a), uint32(b), uint32(l)}] = true
	})
	return es
}

func (es edgeSet) toGraph(labels []graph.Label, directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	for _, l := range labels {
		b.AddVertex(l)
	}
	for e := range es {
		b.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.EdgeLabel(e[2]))
	}
	return b.MustBuild()
}

func (es edgeSet) has(directed bool, src, dst graph.VertexID, l graph.EdgeLabel) bool {
	if es[[3]uint32{uint32(src), uint32(dst), uint32(l)}] {
		return true
	}
	return !directed && es[[3]uint32{uint32(dst), uint32(src), uint32(l)}]
}

// storesEquivalent compares every cluster of two stores structurally.
func storesEquivalent(t testing.TB, a, b *Store) bool {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Logf("header mismatch: %d/%d vs %d/%d", a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
		return false
	}
	keysA, keysB := liveKeys(a), liveKeys(b)
	if len(keysA) != len(keysB) {
		t.Logf("cluster count mismatch: %d vs %d", len(keysA), len(keysB))
		return false
	}
	for i, k := range keysA {
		if keysB[i] != k {
			t.Logf("key mismatch: %v vs %v", k, keysB[i])
			return false
		}
		ca, err1 := a.decompress(k)
		cb, err2 := b.decompress(k)
		if err1 != nil || err2 != nil {
			t.Logf("decompress: %v %v", err1, err2)
			return false
		}
		for v := 0; v < a.NumVertices(); v++ {
			ra, rb := ca.Out.Row(graph.VertexID(v)), cb.Out.Row(graph.VertexID(v))
			if len(ra) != len(rb) {
				t.Logf("cluster %v row %d: %v vs %v", k, v, ra, rb)
				return false
			}
			for j := range ra {
				if ra[j] != rb[j] {
					t.Logf("cluster %v row %d: %v vs %v", k, v, ra, rb)
					return false
				}
			}
		}
	}
	return true
}

// liveKeys lists cluster keys with at least one edge, sorted.
func liveKeys(s *Store) []Key {
	var out []Key
	for _, k := range s.Keys() {
		if s.ClusterSize(k) > 0 {
			out = append(out, k)
		}
	}
	return out
}

// TestPropertyIncrementalEqualsRebuild is the central update property: a
// store mutated by any sequence of inserts and deletes is structurally
// identical to clustering the mutated graph from scratch.
func TestPropertyIncrementalEqualsRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		directed := rng.Intn(2) == 0
		n := 8 + rng.Intn(12)
		labels := make([]graph.Label, n)
		b := graph.NewBuilder(directed)
		for i := range labels {
			labels[i] = graph.Label(rng.Intn(3))
			b.AddVertex(labels[i])
		}
		for i := 0; i < 3*n; i++ {
			v, w := rng.Intn(n), rng.Intn(n)
			if v != w {
				b.AddEdge(graph.VertexID(v), graph.VertexID(w), graph.EdgeLabel(rng.Intn(2)))
			}
		}
		g := b.MustBuild()
		store := Build(g)
		es := edgeSetOf(g)

		// Random edit sequence, mirrored into the edge set.
		for step := 0; step < 120; step++ {
			src := graph.VertexID(rng.Intn(n))
			dst := graph.VertexID(rng.Intn(n))
			if src == dst {
				continue
			}
			l := graph.EdgeLabel(rng.Intn(2))
			key := [3]uint32{uint32(src), uint32(dst), uint32(l)}
			if rng.Intn(2) == 0 {
				if es.has(directed, src, dst, l) {
					continue
				}
				if err := store.InsertEdge(src, dst, l); err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				es[key] = true
			} else {
				if !es.has(directed, src, dst, l) {
					continue
				}
				if err := store.DeleteEdge(src, dst, l); err != nil {
					t.Logf("delete: %v", err)
					return false
				}
				// Remove whichever orientation the set holds.
				delete(es, key)
				if !directed {
					delete(es, [3]uint32{uint32(dst), uint32(src), uint32(l)})
				}
			}
		}
		rebuilt := Build(es.toGraph(labels, directed))
		return storesEquivalent(t, store, rebuilt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteValidation(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 B\ne 0 1\n")
	s := Build(g)
	if err := s.InsertEdge(0, 0, 0); err == nil {
		t.Fatal("self-loop insert must fail")
	}
	if err := s.InsertEdge(0, 9, 0); err == nil {
		t.Fatal("out-of-range insert must fail")
	}
	if err := s.InsertEdge(0, 1, 0); err == nil {
		t.Fatal("duplicate insert must fail")
	}
	if err := s.InsertEdge(1, 0, 0); err == nil {
		t.Fatal("duplicate insert must fail for the reverse orientation too (undirected)")
	}
	if err := s.DeleteEdge(0, 1, 5); err == nil {
		t.Fatal("deleting a missing label must fail")
	}
	if err := s.DeleteEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 0 {
		t.Fatalf("edge count = %d after delete", s.NumEdges())
	}
	if err := s.DeleteEdge(0, 1, 0); err == nil {
		t.Fatal("double delete must fail")
	}
	// Reinsert after delete (tombstone cancellation).
	if err := s.InsertEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 1 {
		t.Fatalf("edge count = %d after reinsert", s.NumEdges())
	}
}

func TestAddVertexExtendsClusters(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 A\ne 0 1\n")
	s := Build(g)
	v := s.AddVertex(0) // another A
	if int(v) != 2 || s.NumVertices() != 3 {
		t.Fatalf("new vertex id %d, count %d", v, s.NumVertices())
	}
	if err := s.InsertEdge(0, v, 0); err != nil {
		t.Fatal(err)
	}
	pb := graph.NewBuilder(false)
	pb.AddVertex(0)
	pb.AddVertex(0)
	pb.AddEdge(0, 1, 0)
	view, err := s.ReadCSR(pb.MustBuild(), graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	c := view.EdgeCluster(0, 0, 0)
	if c == nil {
		t.Fatal("cluster missing")
	}
	row := c.Out.Row(0)
	if len(row) != 2 || row[0] != 1 || row[1] != 2 {
		t.Fatalf("row of v0 = %v, want [1 2]", row)
	}
}

func TestCompactionTriggers(t *testing.T) {
	// Insert enough edges into one cluster to cross the compaction
	// threshold; the overlay must drain.
	b := graph.NewBuilder(false)
	b.AddVertices(400, 0)
	b.AddEdge(0, 1, 0)
	s := Build(b.MustBuild())
	key := NewKey(0, 0, 0, false)
	for i := 2; i < 200; i++ {
		if err := s.InsertEdge(0, graph.VertexID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	c := s.clusters[key]
	if c.dirty() && len(c.addPairs) > 2*deltaCompactionMin+16 {
		t.Fatalf("overlay never compacted: %d adds", len(c.addPairs))
	}
	if got := s.ClusterSize(key); got != 199 {
		t.Fatalf("cluster size = %d, want 199", got)
	}
}

func TestEncodeCompactsOverlays(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 A\nv 2 A\ne 0 1\n")
	s := Build(g)
	if err := s.InsertEdge(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumEdges() != 2 {
		t.Fatalf("decoded edge count = %d, want 2", s2.NumEdges())
	}
	if !storesEquivalent(t, s, s2) {
		t.Fatal("encode/decode after updates not equivalent")
	}
}

func TestApplyBatch(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 A\nv 2 B\ne 0 1\n")
	s := Build(g)
	err := s.ApplyBatch([]Edit{
		{Kind: EditAddVertex, Label: 1},    // v3, label B
		{Kind: EditInsert, Src: 0, Dst: 2}, // A-B
		{Kind: EditInsert, Src: 1, Dst: 3}, // A-B (new vertex)
		{Kind: EditDelete, Src: 0, Dst: 1}, // drop the base edge
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() != 4 || s.NumEdges() != 2 {
		t.Fatalf("after batch: %d vertices %d edges, want 4 and 2", s.NumVertices(), s.NumEdges())
	}
	// Compaction ran: no cluster stays dirty.
	for k, c := range s.clusters {
		if c.dirty() {
			t.Fatalf("cluster %v still dirty after batch", k)
		}
	}
	// Equivalent to a scratch rebuild.
	nb := graph.NewBuilder(false)
	nb.AddVertex(0) // A
	nb.AddVertex(0) // A
	nb.AddVertex(1) // B
	nb.AddVertex(1) // B
	nb.AddEdge(0, 2, 0)
	nb.AddEdge(1, 3, 0)
	if !storesEquivalent(t, s, Build(nb.MustBuild())) {
		t.Fatal("batched store differs from rebuild")
	}
}

func TestApplyBatchReportsFailingIndex(t *testing.T) {
	g := graph.MustParse("t undirected\nv 0 A\nv 1 A\ne 0 1\n")
	s := Build(g)
	err := s.ApplyBatch([]Edit{
		{Kind: EditDelete, Src: 0, Dst: 1},
		{Kind: EditDelete, Src: 0, Dst: 1}, // double delete fails
	})
	if err == nil || !strings.Contains(err.Error(), "edit 1") {
		t.Fatalf("error must name the failing edit: %v", err)
	}
	// The applied prefix remains.
	if s.NumEdges() != 0 {
		t.Fatalf("prefix not applied: %d edges", s.NumEdges())
	}
	if err := s.ApplyBatch([]Edit{{Kind: 99}}); err == nil {
		t.Fatal("unknown edit kind must error")
	}
}

package ccsr

import (
	"fmt"

	"csce/internal/graph"
)

// View is the result of ReadCSR (Algorithm 1): the subset G_C^* of clusters
// a specific (pattern, variant) task needs, decompressed into standard CSRs
// ready for constant-time neighbor access.
type View struct {
	store    *Store
	clusters map[Key]*Cluster
}

// ReadCSR implements Algorithm 1: it selects, reads, and decompresses the
// clusters matching each pattern edge, and — for the vertex-induced variant
// — every (ux,uy)*-cluster between unconnected pattern vertex pairs, which
// the executor uses for negation.
func (s *Store) ReadCSR(p *graph.Graph, variant graph.Variant) (*View, error) {
	if p.Directed() != s.directed {
		return nil, fmt.Errorf("ccsr: pattern directedness (%v) does not match data graph (%v)",
			p.Directed(), s.directed)
	}
	v := &View{store: s, clusters: make(map[Key]*Cluster)}

	var err error
	p.Edges(func(ux, uy graph.VertexID, el graph.EdgeLabel) {
		if err != nil {
			return
		}
		key := NewKey(p.Label(ux), p.Label(uy), el, s.directed)
		err = v.load(key)
	})
	if err != nil {
		return nil, err
	}

	if variant == graph.VertexInduced {
		// Negation needs the (ux,uy)*-clusters of every pattern vertex
		// pair: non-adjacent pairs must map to non-adjacent data vertices,
		// and adjacent pairs must not pick up extra data arcs (reverse
		// direction or different edge label) that the pattern lacks —
		// otherwise the induced subgraph would not be isomorphic to P.
		n := p.NumVertices()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ux, uy := graph.VertexID(i), graph.VertexID(j)
				for _, key := range s.PairClusterKeys(p.Label(ux), p.Label(uy)) {
					if err := v.load(key); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return v, nil
}

// load decompresses cluster k into the view if present and not yet loaded.
// A missing cluster is not an error: it simply means no data edge matches,
// which the executor turns into an empty result.
func (v *View) load(k Key) error {
	if _, done := v.clusters[k]; done {
		return nil
	}
	if _, ok := v.store.clusters[k]; !ok {
		return nil
	}
	c, err := v.store.decompress(k)
	if err != nil {
		return err
	}
	v.clusters[k] = c
	return nil
}

// NumVertices returns the data graph vertex count.
func (v *View) NumVertices() int { return v.store.numVertices }

// Store returns the backing store.
func (v *View) Store() *Store { return v.store }

// Cluster returns the decompressed cluster for key k, or nil when no data
// edge belongs to that isomorphism class (or the cluster was not selected
// by ReadCSR).
func (v *View) Cluster(k Key) *Cluster { return v.clusters[k] }

// EdgeCluster returns the cluster matching a pattern edge between vertex
// labels src and dst with edge label el.
func (v *View) EdgeCluster(src, dst graph.Label, el graph.EdgeLabel) *Cluster {
	return v.clusters[NewKey(src, dst, el, v.store.directed)]
}

// PairClusters returns all loaded clusters holding edges between vertex
// labels a and b regardless of edge label or direction — the
// (ux,uy)*-clusters used for vertex-induced negation.
func (v *View) PairClusters(a, b graph.Label) []*Cluster {
	keys := v.store.PairClusterKeys(a, b)
	out := make([]*Cluster, 0, len(keys))
	for _, k := range keys {
		if c := v.clusters[k]; c != nil {
			out = append(out, c)
		}
	}
	return out
}

// NumClusters returns how many clusters the view decompressed.
func (v *View) NumClusters() int { return len(v.clusters) }

// DecompressedBytes returns the total footprint of the decompressed
// clusters, for the Fig. 11 overhead experiment.
func (v *View) DecompressedBytes() int {
	total := 0
	for _, c := range v.clusters {
		total += c.Bytes()
	}
	return total
}

// VertexLabel returns the label of data vertex x.
func (v *View) VertexLabel(x graph.VertexID) graph.Label { return v.store.vertexLabels[x] }

// Adjacent reports whether data vertices x and y are connected by any edge
// in any loaded cluster between their labels, in either direction. It is
// the negation test of vertex-induced matching; ReadCSR guarantees the
// relevant clusters are loaded for that variant.
func (v *View) Adjacent(x, y graph.VertexID) bool {
	for _, c := range v.PairClusters(v.VertexLabel(x), v.VertexLabel(y)) {
		if c.Key.Directed {
			if c.Out.Has(x, y) || c.Out.Has(y, x) {
				return true
			}
		} else if c.Out.Has(x, y) {
			return true
		}
	}
	return false
}

package ccsr

import (
	"fmt"

	"csce/internal/graph"
)

// Partitioning helpers for the sharding subsystem (internal/shard): a
// loaded store is split into K shard-local stores that together cover the
// graph exactly once. The contract the shard coordinator's exactness
// argument rests on:
//
//   - every shard keeps the FULL vertex-label array under the global dense
//     vertex IDs — join keys and label statistics line up across shards
//     without any ID translation;
//
//   - shard i stores exactly the edges incident to at least one vertex it
//     owns. A boundary edge (u,v) with owner(u) != owner(v) is replicated
//     into both owners' stores, so every vertex sees its complete
//     adjacency in its owner's shard.
//
// Empty adjacency rows RLE-compress to almost nothing, so the per-shard
// overhead of the global ID space is a few bytes per run of foreign
// vertices, not O(n) per shard.

// PartitionStats describes one shard produced by Partition.
type PartitionStats struct {
	// LocalVertices is how many vertices the shard owns.
	LocalVertices int
	// Edges is how many edges the shard stores (boundary edges included).
	Edges int
	// BoundaryEdges is how many stored edges have their other endpoint
	// owned by a different shard (each cross-shard edge counts once in
	// both owners' stats).
	BoundaryEdges int
}

// EdgesAll visits every edge of the clustered graph exactly once —
// undirected edges once regardless of stored orientation, directed arcs
// once each — in deterministic cluster-key order. Clusters with pending
// update overlays are compacted first (like Clone), so the receiver must
// not be a store concurrent readers are matching against.
func (s *Store) EdgesAll(fn func(src, dst graph.VertexID, el graph.EdgeLabel)) error {
	for _, k := range s.Keys() {
		cl, err := s.decompress(k)
		if err != nil {
			return err
		}
		out := cl.Out
		for v := 0; v < s.numVertices; v++ {
			src := graph.VertexID(v)
			for _, dst := range out.Row(src) {
				if !k.Directed && dst < src {
					continue // the (dst,src) orientation already emitted it
				}
				fn(src, dst, k.Edge)
			}
		}
	}
	return nil
}

// Partition splits the store into k shard-local stores under the given
// ownership function (owner(v) must return a stable value in [0,k)).
// Every shard receives the full vertex-label array; shard i receives the
// edges incident to at least one vertex it owns, with boundary edges
// replicated into both owners. The label table is shared across all
// shards (append-only, interning serialized by callers), matching Clone's
// contract.
func (s *Store) Partition(k int, owner func(graph.VertexID) int) ([]*Store, []PartitionStats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("ccsr: partition count %d < 1", k)
	}
	builders := make([]*graph.Builder, k)
	stats := make([]PartitionStats, k)
	for i := range builders {
		builders[i] = graph.NewBuilder(s.directed)
		builders[i].SetNames(s.names)
	}
	owners := make([]int, s.numVertices)
	for v := 0; v < s.numVertices; v++ {
		o := owner(graph.VertexID(v))
		if o < 0 || o >= k {
			return nil, nil, fmt.Errorf("ccsr: owner(%d) = %d out of range [0,%d)", v, o, k)
		}
		owners[v] = o
		stats[o].LocalVertices++
		l := s.vertexLabels[v]
		for i := range builders {
			builders[i].AddVertex(l)
		}
	}
	err := s.EdgesAll(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		ou, ov := owners[src], owners[dst]
		builders[ou].AddEdge(src, dst, el)
		stats[ou].Edges++
		if ov != ou {
			builders[ov].AddEdge(src, dst, el)
			stats[ov].Edges++
			stats[ou].BoundaryEdges++
			stats[ov].BoundaryEdges++
		}
	})
	if err != nil {
		return nil, nil, err
	}
	shards := make([]*Store, k)
	for i := range builders {
		g, err := builders[i].Build()
		if err != nil {
			return nil, nil, fmt.Errorf("ccsr: build shard %d: %w", i, err)
		}
		shards[i] = Build(g)
	}
	return shards, stats, nil
}

// LabelFrequencies returns a copy of the vertex-label histogram — the
// per-shard statistic the shard coordinator aggregates for STwig root
// selection.
func (s *Store) LabelFrequencies() map[graph.Label]int {
	out := make(map[graph.Label]int, len(s.labelFreq))
	for l, n := range s.labelFreq {
		out[l] = n
	}
	return out
}

package ccsr

import (
	"fmt"
	"sort"

	"csce/internal/graph"
)

// Incremental maintenance of the clustered index. The paper positions CCSR
// against graph-database storage (Kùzu's CSR adjacency indices, Section
// II), where updates are a core requirement; this file adds them without
// giving up the compressed at-rest layout: each cluster keeps small delta
// overlays (inserted and deleted edge pairs) that decompression merges
// with the base arrays, and a cluster is compacted — its base rebuilt —
// once the overlay grows past a fraction of its size.
//
// Update semantics match Build exactly: a mutated store is always
// equivalent to Build applied to the mutated graph (asserted by the
// property tests in update_test.go).

// deltaCompactionFraction triggers compaction once the overlay exceeds
// this fraction of the base size (or deltaCompactionMin, whichever is
// larger).
const (
	deltaCompactionFraction = 8 // base/8
	deltaCompactionMin      = 64
)

// AddVertex appends a vertex with label l to the clustered graph and
// returns its ID. The new vertex has no edges; cluster row indices are
// extended lazily at decompression time.
func (s *Store) AddVertex(l graph.Label) graph.VertexID {
	s.vertexLabels = append(s.vertexLabels, l)
	s.labelFreq[l]++
	s.numVertices++
	return graph.VertexID(s.numVertices - 1)
}

// InsertEdge adds an edge between existing vertices. For an undirected
// store the edge is symmetric. Inserting an edge that already exists (same
// endpoints, direction, and label) is an error, as is a self-loop.
func (s *Store) InsertEdge(src, dst graph.VertexID, el graph.EdgeLabel) error {
	if err := s.checkEndpoints(src, dst); err != nil {
		return err
	}
	if s.hasEdge(src, dst, el) {
		return fmt.Errorf("ccsr: edge (%d,%d,e%d) already present", src, dst, el)
	}
	key := NewKey(s.vertexLabels[src], s.vertexLabels[dst], el, s.directed)
	c, ok := s.clusters[key]
	if !ok {
		c = &Compressed{Key: key}
		// Empty base: an all-zero row-start array compresses to one run.
		c.outRow = compressRLE(make([]uint32, s.numVertices+1))
		if key.Directed {
			c.inRow = compressRLE(make([]uint32, s.numVertices+1))
		}
		s.clusters[key] = c
		pk := newPairKey(key.Src, key.Dst)
		s.pairIndex[pk] = insertKeySorted(s.pairIndex[pk], key)
	}
	// Re-inserting a base edge that carries a tombstone cancels the
	// tombstone instead of stacking an insert on top of it, keeping every
	// pair in at most one overlay.
	if removePair(&c.delPairs, pair{src, dst}) {
		if !s.directed {
			removePair(&c.delPairs, pair{dst, src})
		}
	} else {
		c.addPairs = append(c.addPairs, pair{src, dst})
		if !s.directed {
			c.addPairs = append(c.addPairs, pair{dst, src})
		}
	}
	c.NumEdges++
	s.numEdges++
	s.maybeCompact(c)
	return nil
}

// DeleteEdge removes an existing edge (same endpoints, direction, label).
func (s *Store) DeleteEdge(src, dst graph.VertexID, el graph.EdgeLabel) error {
	if err := s.checkEndpoints(src, dst); err != nil {
		return err
	}
	key := NewKey(s.vertexLabels[src], s.vertexLabels[dst], el, s.directed)
	c, ok := s.clusters[key]
	if !ok || !s.hasEdge(src, dst, el) {
		return fmt.Errorf("ccsr: edge (%d,%d,e%d) not present", src, dst, el)
	}
	// If the edge is still in the insert overlay, cancel it there;
	// otherwise record a tombstone.
	if removePair(&c.addPairs, pair{src, dst}) {
		if !s.directed {
			removePair(&c.addPairs, pair{dst, src})
		}
	} else {
		c.delPairs = append(c.delPairs, pair{src, dst})
		if !s.directed {
			c.delPairs = append(c.delPairs, pair{dst, src})
		}
	}
	c.NumEdges--
	s.numEdges--
	s.maybeCompact(c)
	return nil
}

// hasEdge reports whether the store currently holds the edge, consulting
// base arrays and overlays.
func (s *Store) hasEdge(src, dst graph.VertexID, el graph.EdgeLabel) bool {
	key := NewKey(s.vertexLabels[src], s.vertexLabels[dst], el, s.directed)
	c, ok := s.clusters[key]
	if !ok {
		return false
	}
	p := pair{src, dst}
	for _, d := range c.delPairs {
		if d == p {
			return false
		}
	}
	for _, a := range c.addPairs {
		if a == p {
			return true
		}
	}
	return baseHasPair(c, p, s.numVertices)
}

// baseHasPair checks the compressed base arrays for one orientation.
func baseHasPair(c *Compressed, p pair, numVertices int) bool {
	rowStart := c.outRow.decompress()
	rowStart = padRowStarts(rowStart, numVertices)
	lo, hi := rowStart[p.a], rowStart[p.a+1]
	row := c.outCol[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= uint32(p.b) })
	return i < len(row) && row[i] == uint32(p.b)
}

func (s *Store) checkEndpoints(src, dst graph.VertexID) error {
	if int(src) >= s.numVertices || int(dst) >= s.numVertices {
		return fmt.Errorf("ccsr: vertex out of range (have %d vertices)", s.numVertices)
	}
	if src == dst {
		return fmt.Errorf("ccsr: self-loop on vertex %d is not allowed", src)
	}
	return nil
}

// maybeCompact rebuilds the base arrays when the overlay is large.
func (s *Store) maybeCompact(c *Compressed) {
	overlay := len(c.addPairs) + len(c.delPairs)
	threshold := len(c.outCol)/deltaCompactionFraction + deltaCompactionMin
	if overlay < threshold {
		return
	}
	s.compact(c)
}

// compact merges the overlays of c into fresh base arrays.
func (s *Store) compact(c *Compressed) {
	pairs := c.mergedPairs(s.numVertices)
	*c = *makeCompressed(c.Key, pairs, s.numVertices)
}

// mergedPairs materializes the cluster's current pair list.
func (c *Compressed) mergedPairs(numVertices int) []pair {
	rowStart := padRowStarts(c.outRow.decompress(), numVertices)
	dead := make(map[pair]bool, len(c.delPairs))
	for _, d := range c.delPairs {
		dead[d] = true
	}
	est := len(c.outCol) + len(c.addPairs) - len(c.delPairs)
	if est < 0 {
		est = 0
	}
	pairs := make([]pair, 0, est)
	for v := 0; v < numVertices && v+1 < len(rowStart); v++ {
		for _, w := range c.outCol[rowStart[v]:rowStart[v+1]] {
			p := pair{graph.VertexID(v), w}
			if !dead[p] {
				pairs = append(pairs, p)
			}
		}
	}
	pairs = append(pairs, c.addPairs...)
	return pairs
}

// padRowStarts extends a decompressed row-start array to cover vertices
// added after the base was built.
func padRowStarts(rowStart []uint32, numVertices int) []uint32 {
	for len(rowStart) < numVertices+1 {
		rowStart = append(rowStart, rowStart[len(rowStart)-1])
	}
	return rowStart
}

func removePair(ps *[]pair, p pair) bool {
	for i, x := range *ps {
		if x == p {
			(*ps)[i] = (*ps)[len(*ps)-1]
			*ps = (*ps)[:len(*ps)-1]
			return true
		}
	}
	return false
}

func insertKeySorted(keys []Key, k Key) []Key {
	i := sort.Search(len(keys), func(i int) bool { return !keyLess(keys[i], k) })
	keys = append(keys, Key{})
	copy(keys[i+1:], keys[i:])
	keys[i] = k
	return keys
}

package ccsr

import (
	"fmt"
	"sort"

	"csce/internal/graph"
)

// Store is the offline product of clustering a data graph: the complete set
// G_C of compressed clusters, plus the vertex labels and label statistics
// needed at plan time. A Store fully replaces the original graph for
// matching purposes — per the paper, "as G_C is equivalent to G, we do not
// keep G".
type Store struct {
	directed     bool
	numVertices  int
	vertexLabels []graph.Label
	labelFreq    map[graph.Label]int
	clusters     map[Key]*Compressed
	pairIndex    map[pairKey][]Key // unordered label pair -> clusters, for (ux,uy)*-lookups
	numEdges     int
	names        *graph.LabelTable // symbolic label names of the originating graph (may be nil)
}

// Build clusters every edge of g into its isomorphism class and compresses
// each cluster. Time is O(|E| log |E|) from the per-cluster sorts, matching
// the paper's analysis.
func Build(g *graph.Graph) *Store {
	s := &Store{
		directed:     g.Directed(),
		numVertices:  g.NumVertices(),
		vertexLabels: append([]graph.Label(nil), g.Labels()...),
		labelFreq:    make(map[graph.Label]int),
		clusters:     make(map[Key]*Compressed),
		pairIndex:    make(map[pairKey][]Key),
		numEdges:     g.NumEdges(),
		names:        g.Names,
	}
	for _, l := range s.vertexLabels {
		s.labelFreq[l]++
	}

	byKey := make(map[Key][]pair)
	g.Edges(func(v, w graph.VertexID, el graph.EdgeLabel) {
		key := NewKey(g.Label(v), g.Label(w), el, g.Directed())
		if g.Directed() {
			byKey[key] = append(byKey[key], pair{v, w})
			return
		}
		// Undirected: store both orientations in the single CSR. The
		// canonical key may have swapped the label pair; orientation of the
		// stored pairs is per-vertex, so no swap is needed here.
		byKey[key] = append(byKey[key], pair{v, w}, pair{w, v})
	})

	for key, pairs := range byKey {
		s.clusters[key] = makeCompressed(key, pairs, s.numVertices)
		pk := newPairKey(key.Src, key.Dst)
		s.pairIndex[pk] = append(s.pairIndex[pk], key)
	}
	for _, keys := range s.pairIndex {
		sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	}
	return s
}

// pair is one stored edge orientation.
type pair struct{ a, b graph.VertexID }

// makeCompressed builds a compressed cluster from its pair list. For an
// undirected key the list must already contain both orientations.
func makeCompressed(key Key, pairs []pair, numVertices int) *Compressed {
	n := uint32(numVertices)
	c := &Compressed{Key: key}
	if key.Directed {
		c.NumEdges = len(pairs)
	} else {
		c.NumEdges = len(pairs) / 2
	}

	// Outgoing side: rows keyed by the first element of each pair.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	outStart := make([]uint32, n+1)
	outCol := make([]uint32, len(pairs))
	for i, p := range pairs {
		outCol[i] = uint32(p.b)
	}
	fillRowStarts(outStart, pairs, func(p pair) graph.VertexID { return p.a })
	c.outRow = compressRLE(outStart)
	c.outCol = outCol

	if key.Directed {
		// Incoming side: rows keyed by destination.
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].b != pairs[j].b {
				return pairs[i].b < pairs[j].b
			}
			return pairs[i].a < pairs[j].a
		})
		inStart := make([]uint32, n+1)
		inCol := make([]uint32, len(pairs))
		for i, p := range pairs {
			inCol[i] = uint32(p.a)
		}
		fillRowStarts(inStart, pairs, func(p pair) graph.VertexID { return p.b })
		c.inRow = compressRLE(inStart)
		c.inCol = inCol
	}
	return c
}

// fillRowStarts computes CSR row starts for pairs sorted by rowOf.
func fillRowStarts[P any](rowStart []uint32, pairs []P, rowOf func(P) graph.VertexID) {
	n := len(rowStart) - 1
	cur := 0
	for v := 0; v < n; v++ {
		rowStart[v] = uint32(cur)
		for cur < len(pairs) && int(rowOf(pairs[cur])) == v {
			cur++
		}
	}
	rowStart[n] = uint32(cur)
}

func keyLess(a, b Key) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Edge != b.Edge {
		return a.Edge < b.Edge
	}
	return !a.Directed && b.Directed
}

// Directed reports whether the clustered graph is directed.
func (s *Store) Directed() bool { return s.directed }

// Names returns the label table of the originating graph, or nil when the
// graph was built programmatically without one. The table round-trips
// through Encode/Decode so patterns parsed against a reloaded index intern
// labels identically to the original graph.
func (s *Store) Names() *graph.LabelTable { return s.names }

// NumVertices returns the clustered graph's vertex count.
func (s *Store) NumVertices() int { return s.numVertices }

// NumEdges returns the clustered graph's edge count (undirected edges
// counted once).
func (s *Store) NumEdges() int { return s.numEdges }

// NumClusters returns |G_C|.
func (s *Store) NumClusters() int { return len(s.clusters) }

// VertexLabel returns the label of data vertex v.
func (s *Store) VertexLabel(v graph.VertexID) graph.Label { return s.vertexLabels[v] }

// LabelFrequency returns the number of data vertices with label l.
func (s *Store) LabelFrequency(l graph.Label) int { return s.labelFreq[l] }

// ClusterSize returns the number of edges in the identified cluster, or 0
// if the cluster does not exist. This is the |I_C| statistic the GCF and
// LDSF tie-breaking rules consume; it never decompresses anything.
func (s *Store) ClusterSize(k Key) int {
	if c, ok := s.clusters[k]; ok {
		return c.NumEdges
	}
	return 0
}

// EdgeClusterSize returns the size of the cluster matching an edge between
// vertex labels src and dst with the given edge label, honoring the store's
// directedness.
func (s *Store) EdgeClusterSize(src, dst graph.Label, el graph.EdgeLabel) int {
	return s.ClusterSize(NewKey(src, dst, el, s.directed))
}

// PairClusterKeys returns the identifiers of all clusters holding edges
// between vertex labels a and b, in either direction and with any edge
// label — the paper's (ux,uy)*-clusters.
func (s *Store) PairClusterKeys(a, b graph.Label) []Key {
	return s.pairIndex[newPairKey(a, b)]
}

// CompressedBytes returns the total at-rest footprint of all clusters.
func (s *Store) CompressedBytes() int {
	total := 4 * len(s.vertexLabels) / 2 // labels are uint16
	for _, c := range s.clusters {
		total += c.Bytes()
	}
	return total
}

// Keys returns all cluster identifiers in deterministic order.
func (s *Store) Keys() []Key {
	keys := make([]Key, 0, len(s.clusters))
	for k := range s.clusters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

// decompress builds the matchable form of cluster k. Clusters with
// pending update overlays are compacted first so the CSR arrays always
// reflect the current graph; row-start arrays are padded to cover vertices
// added after the base was built.
func (s *Store) decompress(k Key) (*Cluster, error) {
	c, ok := s.clusters[k]
	if !ok {
		return nil, fmt.Errorf("ccsr: no cluster %v", k)
	}
	if c.dirty() {
		s.compact(c)
	}
	out := &CSR{rowStart: padRowStarts(c.outRow.decompress(), s.numVertices), col: c.outCol}
	cl := &Cluster{Key: k, NumEdges: c.NumEdges, Out: out}
	if k.Directed {
		cl.In = &CSR{rowStart: padRowStarts(c.inRow.decompress(), s.numVertices), col: c.inCol}
	}
	return cl, nil
}

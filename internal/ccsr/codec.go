package ccsr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"csce/internal/graph"
)

// Binary serialization of a Store, so the offline clustering stage can run
// once per data graph and its output be reloaded for every subsequent
// subgraph-matching task (the red offline stage of the paper's Fig. 2).
//
// Layout (little endian):
//
//	magic "CCSR" | version u32 | directed u8 | numVertices u64 | numEdges u64
//	vertexLabels [numVertices]u16
//	numClusters u64, then per cluster:
//	  key (src u16, dst u16, edge u16, directed u8) | numEdges u64
//	  outRow rle | outCol []u32 | [inRow rle | inCol []u32]  (in* iff directed)
//
// where an rle is: count u64, vals [count]u32, counts [count]u32, and a
// []u32 is: count u64 then the values.

const (
	codecMagic   = "CCSR"
	codecVersion = 1
)

// Encode writes the store to w. Clusters with pending update overlays are
// compacted first, so the serialized form is always overlay-free.
func (s *Store) Encode(w io.Writer) error {
	for _, c := range s.clusters {
		if c.dirty() {
			s.compact(c)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(x uint32) error { return binary.Write(bw, le, x) }
	writeU64 := func(x uint64) error { return binary.Write(bw, le, x) }

	if err := writeU32(codecVersion); err != nil {
		return err
	}
	dir := byte(0)
	if s.directed {
		dir = 1
	}
	if err := bw.WriteByte(dir); err != nil {
		return err
	}
	if err := writeU64(uint64(s.numVertices)); err != nil {
		return err
	}
	if err := writeU64(uint64(s.numEdges)); err != nil {
		return err
	}
	if err := binary.Write(bw, le, s.vertexLabels); err != nil {
		return err
	}
	keys := s.Keys()
	if err := writeU64(uint64(len(keys))); err != nil {
		return err
	}
	writeSlice := func(xs []uint32) error {
		if err := writeU64(uint64(len(xs))); err != nil {
			return err
		}
		return binary.Write(bw, le, xs)
	}
	writeRLE := func(r rle) error {
		if err := writeU64(uint64(len(r.vals))); err != nil {
			return err
		}
		if err := binary.Write(bw, le, r.vals); err != nil {
			return err
		}
		return binary.Write(bw, le, r.counts)
	}
	for _, k := range keys {
		c := s.clusters[k]
		if err := binary.Write(bw, le, k.Src); err != nil {
			return err
		}
		if err := binary.Write(bw, le, k.Dst); err != nil {
			return err
		}
		if err := binary.Write(bw, le, k.Edge); err != nil {
			return err
		}
		kd := byte(0)
		if k.Directed {
			kd = 1
		}
		if err := bw.WriteByte(kd); err != nil {
			return err
		}
		if err := writeU64(uint64(c.NumEdges)); err != nil {
			return err
		}
		if err := writeRLE(c.outRow); err != nil {
			return err
		}
		if err := writeSlice(c.outCol); err != nil {
			return err
		}
		if k.Directed {
			if err := writeRLE(c.inRow); err != nil {
				return err
			}
			if err := writeSlice(c.inCol); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a store previously written by Encode.
func Decode(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ccsr: decode magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("ccsr: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("ccsr: unsupported version %d", version)
	}
	dir, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	var nv, ne uint64
	if err := binary.Read(br, le, &nv); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, &ne); err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 32
	if nv > maxReasonable || ne > maxReasonable {
		return nil, fmt.Errorf("ccsr: implausible sizes %d/%d", nv, ne)
	}
	s := &Store{
		directed:     dir == 1,
		numVertices:  int(nv),
		numEdges:     int(ne),
		vertexLabels: make([]graph.Label, nv),
		labelFreq:    make(map[graph.Label]int),
		clusters:     make(map[Key]*Compressed),
		pairIndex:    make(map[pairKey][]Key),
	}
	if err := binary.Read(br, le, s.vertexLabels); err != nil {
		return nil, err
	}
	for _, l := range s.vertexLabels {
		s.labelFreq[l]++
	}

	var nc uint64
	if err := binary.Read(br, le, &nc); err != nil {
		return nil, err
	}
	readSlice := func() ([]uint32, error) {
		var n uint64
		if err := binary.Read(br, le, &n); err != nil {
			return nil, err
		}
		if n > maxReasonable {
			return nil, fmt.Errorf("ccsr: implausible array length %d", n)
		}
		xs := make([]uint32, n)
		if err := binary.Read(br, le, xs); err != nil {
			return nil, err
		}
		return xs, nil
	}
	readRLE := func() (rle, error) {
		var n uint64
		if err := binary.Read(br, le, &n); err != nil {
			return rle{}, err
		}
		if n > maxReasonable {
			return rle{}, fmt.Errorf("ccsr: implausible rle length %d", n)
		}
		r := rle{vals: make([]uint32, n), counts: make([]uint32, n)}
		if err := binary.Read(br, le, r.vals); err != nil {
			return rle{}, err
		}
		if err := binary.Read(br, le, r.counts); err != nil {
			return rle{}, err
		}
		return r, nil
	}
	for i := uint64(0); i < nc; i++ {
		var k Key
		if err := binary.Read(br, le, &k.Src); err != nil {
			return nil, err
		}
		if err := binary.Read(br, le, &k.Dst); err != nil {
			return nil, err
		}
		if err := binary.Read(br, le, &k.Edge); err != nil {
			return nil, err
		}
		kd, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		k.Directed = kd == 1
		var cne uint64
		if err := binary.Read(br, le, &cne); err != nil {
			return nil, err
		}
		c := &Compressed{Key: k, NumEdges: int(cne)}
		if c.outRow, err = readRLE(); err != nil {
			return nil, err
		}
		if c.outCol, err = readSlice(); err != nil {
			return nil, err
		}
		if k.Directed {
			if c.inRow, err = readRLE(); err != nil {
				return nil, err
			}
			if c.inCol, err = readSlice(); err != nil {
				return nil, err
			}
		}
		s.clusters[k] = c
		pk := newPairKey(k.Src, k.Dst)
		s.pairIndex[pk] = append(s.pairIndex[pk], k)
	}
	return s, nil
}

package ccsr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"csce/internal/graph"
)

// Binary serialization of a Store, so the offline clustering stage can run
// once per data graph and its output be reloaded for every subsequent
// subgraph-matching task (the red offline stage of the paper's Fig. 2).
//
// Layout (little endian):
//
//	magic "CCSR" | version u32 | directed u8 | numVertices u64 | numEdges u64
//	vertexLabels [numVertices]u16
//	numClusters u64, then per cluster:
//	  key (src u16, dst u16, edge u16, directed u8) | numEdges u64
//	  outRow rle | outCol []u32 | [inRow rle | inCol []u32]  (in* iff directed)
//	hasNames u8 | [numVertexNames u64, names... | numEdgeNames u64, names...]
//
// where an rle is: count u64, vals [count]u32, counts [count]u32, a []u32
// is: count u64 then the values, and a name is: length u64 then the bytes.
//
// Version 2 added the label-table trailer. Label values are interned in
// first-seen order, so a pattern parsed against a fresh table maps the same
// names to different values than the original data graph did — without the
// trailer, a reloaded index silently matched patterns against the wrong
// clusters. Version-1 files still decode, with a nil table.

const (
	codecMagic   = "CCSR"
	codecVersion = 2
)

// Encode writes the store to w. Clusters with pending update overlays are
// compacted first, so the serialized form is always overlay-free.
func (s *Store) Encode(w io.Writer) error {
	for _, c := range s.clusters {
		if c.dirty() {
			s.compact(c)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(x uint32) error { return binary.Write(bw, le, x) }
	writeU64 := func(x uint64) error { return binary.Write(bw, le, x) }

	if err := writeU32(codecVersion); err != nil {
		return err
	}
	dir := byte(0)
	if s.directed {
		dir = 1
	}
	if err := bw.WriteByte(dir); err != nil {
		return err
	}
	if err := writeU64(uint64(s.numVertices)); err != nil {
		return err
	}
	if err := writeU64(uint64(s.numEdges)); err != nil {
		return err
	}
	if err := binary.Write(bw, le, s.vertexLabels); err != nil {
		return err
	}
	keys := s.Keys()
	if err := writeU64(uint64(len(keys))); err != nil {
		return err
	}
	writeSlice := func(xs []uint32) error {
		if err := writeU64(uint64(len(xs))); err != nil {
			return err
		}
		return binary.Write(bw, le, xs)
	}
	writeRLE := func(r rle) error {
		if err := writeU64(uint64(len(r.vals))); err != nil {
			return err
		}
		if err := binary.Write(bw, le, r.vals); err != nil {
			return err
		}
		return binary.Write(bw, le, r.counts)
	}
	for _, k := range keys {
		c := s.clusters[k]
		if err := binary.Write(bw, le, k.Src); err != nil {
			return err
		}
		if err := binary.Write(bw, le, k.Dst); err != nil {
			return err
		}
		if err := binary.Write(bw, le, k.Edge); err != nil {
			return err
		}
		kd := byte(0)
		if k.Directed {
			kd = 1
		}
		if err := bw.WriteByte(kd); err != nil {
			return err
		}
		if err := writeU64(uint64(c.NumEdges)); err != nil {
			return err
		}
		if err := writeRLE(c.outRow); err != nil {
			return err
		}
		if err := writeSlice(c.outCol); err != nil {
			return err
		}
		if k.Directed {
			if err := writeRLE(c.inRow); err != nil {
				return err
			}
			if err := writeSlice(c.inCol); err != nil {
				return err
			}
		}
	}
	if err := writeNames(bw, writeU64, s.names); err != nil {
		return err
	}
	return bw.Flush()
}

// writeNames serializes the label table trailer (presence byte + both
// namespaces in interned order).
func writeNames(bw *bufio.Writer, writeU64 func(uint64) error, names *graph.LabelTable) error {
	if names == nil {
		return bw.WriteByte(0)
	}
	if err := bw.WriteByte(1); err != nil {
		return err
	}
	writeString := func(s string) error {
		if err := writeU64(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeU64(uint64(names.NumVertexLabels())); err != nil {
		return err
	}
	for l := 0; l < names.NumVertexLabels(); l++ {
		if err := writeString(names.VertexName(graph.Label(l))); err != nil {
			return err
		}
	}
	if err := writeU64(uint64(names.NumEdgeLabels())); err != nil {
		return err
	}
	for l := 0; l < names.NumEdgeLabels(); l++ {
		if err := writeString(names.EdgeName(graph.EdgeLabel(l))); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads a store previously written by Encode.
func Decode(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ccsr: decode magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("ccsr: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != 1 && version != codecVersion {
		return nil, fmt.Errorf("ccsr: unsupported version %d", version)
	}
	dir, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	var nv, ne uint64
	if err := binary.Read(br, le, &nv); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, &ne); err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 32
	if nv > maxReasonable || ne > maxReasonable {
		return nil, fmt.Errorf("ccsr: implausible sizes %d/%d", nv, ne)
	}
	s := &Store{
		directed:     dir == 1,
		numVertices:  int(nv),
		numEdges:     int(ne),
		vertexLabels: make([]graph.Label, nv),
		labelFreq:    make(map[graph.Label]int),
		clusters:     make(map[Key]*Compressed),
		pairIndex:    make(map[pairKey][]Key),
	}
	if err := binary.Read(br, le, s.vertexLabels); err != nil {
		return nil, err
	}
	for _, l := range s.vertexLabels {
		s.labelFreq[l]++
	}

	var nc uint64
	if err := binary.Read(br, le, &nc); err != nil {
		return nil, err
	}
	readSlice := func() ([]uint32, error) {
		var n uint64
		if err := binary.Read(br, le, &n); err != nil {
			return nil, err
		}
		if n > maxReasonable {
			return nil, fmt.Errorf("ccsr: implausible array length %d", n)
		}
		xs := make([]uint32, n)
		if err := binary.Read(br, le, xs); err != nil {
			return nil, err
		}
		return xs, nil
	}
	readRLE := func() (rle, error) {
		var n uint64
		if err := binary.Read(br, le, &n); err != nil {
			return rle{}, err
		}
		if n > maxReasonable {
			return rle{}, fmt.Errorf("ccsr: implausible rle length %d", n)
		}
		r := rle{vals: make([]uint32, n), counts: make([]uint32, n)}
		if err := binary.Read(br, le, r.vals); err != nil {
			return rle{}, err
		}
		if err := binary.Read(br, le, r.counts); err != nil {
			return rle{}, err
		}
		return r, nil
	}
	for i := uint64(0); i < nc; i++ {
		var k Key
		if err := binary.Read(br, le, &k.Src); err != nil {
			return nil, err
		}
		if err := binary.Read(br, le, &k.Dst); err != nil {
			return nil, err
		}
		if err := binary.Read(br, le, &k.Edge); err != nil {
			return nil, err
		}
		kd, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		k.Directed = kd == 1
		var cne uint64
		if err := binary.Read(br, le, &cne); err != nil {
			return nil, err
		}
		c := &Compressed{Key: k, NumEdges: int(cne)}
		if c.outRow, err = readRLE(); err != nil {
			return nil, err
		}
		if c.outCol, err = readSlice(); err != nil {
			return nil, err
		}
		if k.Directed {
			if c.inRow, err = readRLE(); err != nil {
				return nil, err
			}
			if c.inCol, err = readSlice(); err != nil {
				return nil, err
			}
		}
		s.clusters[k] = c
		pk := newPairKey(k.Src, k.Dst)
		s.pairIndex[pk] = append(s.pairIndex[pk], k)
	}
	if version >= 2 {
		if s.names, err = readNames(br, le); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// readNames decodes the label-table trailer, re-interning every name in its
// original order so label values are bit-identical to the encoding graph's.
func readNames(br *bufio.Reader, le binary.ByteOrder) (*graph.LabelTable, error) {
	present, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("ccsr: decode names: %w", err)
	}
	if present == 0 {
		return nil, nil
	}
	const maxReasonable = 1 << 32
	readString := func() (string, error) {
		var n uint64
		if err := binary.Read(br, le, &n); err != nil {
			return "", err
		}
		if n > maxReasonable {
			return "", fmt.Errorf("ccsr: implausible name length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	names := graph.NewLabelTable()
	var nv uint64
	if err := binary.Read(br, le, &nv); err != nil {
		return nil, err
	}
	if nv > maxReasonable {
		return nil, fmt.Errorf("ccsr: implausible name count %d", nv)
	}
	for i := uint64(0); i < nv; i++ {
		name, err := readString()
		if err != nil {
			return nil, fmt.Errorf("ccsr: decode vertex name %d: %w", i, err)
		}
		if got := names.Vertex(name); uint64(got) != i {
			return nil, fmt.Errorf("ccsr: duplicate vertex label name %q", name)
		}
	}
	var ne uint64
	if err := binary.Read(br, le, &ne); err != nil {
		return nil, err
	}
	if ne > maxReasonable {
		return nil, fmt.Errorf("ccsr: implausible name count %d", ne)
	}
	for i := uint64(0); i < ne; i++ {
		name, err := readString()
		if err != nil {
			return nil, fmt.Errorf("ccsr: decode edge name %d: %w", i, err)
		}
		if got := names.Edge(name); uint64(got) != i {
			return nil, fmt.Errorf("ccsr: duplicate edge label name %q", name)
		}
	}
	return names, nil
}

package ccsr

import "csce/internal/graph"

// Clone returns an independent copy of the store for snapshot-based
// mutation: the live-ingest subsystem applies updates to a private clone
// and publishes the result, so in-flight queries keep reading a store
// nothing mutates.
//
// Dirty clusters are compacted in the receiver first (exactly as Encode
// does), which makes the copy cheap and safe at once: after compaction the
// base CSR arrays are immutable — InsertEdge/DeleteEdge only append to the
// overlay slices, and compaction replaces base arrays wholesale with fresh
// allocations via makeCompressed — so clone and original can share them.
// Per-cluster structs, overlay slices, and all index maps are copied, so
// mutations on either store never reach the other. The label table is
// shared: it is append-only and callers already serialize interning.
//
// Compacting first also means a clone never carries pending overlays, so
// concurrent readers of a published clone can decompress clusters without
// ever triggering the (mutating) compaction path.
func (s *Store) Clone() *Store {
	for _, c := range s.clusters {
		if c.dirty() {
			s.compact(c)
		}
	}
	out := &Store{
		directed:     s.directed,
		numVertices:  s.numVertices,
		vertexLabels: append([]graph.Label(nil), s.vertexLabels...),
		labelFreq:    make(map[graph.Label]int, len(s.labelFreq)),
		clusters:     make(map[Key]*Compressed, len(s.clusters)),
		pairIndex:    make(map[pairKey][]Key, len(s.pairIndex)),
		numEdges:     s.numEdges,
		names:        s.names,
	}
	for l, n := range s.labelFreq {
		out.labelFreq[l] = n
	}
	for k, c := range s.clusters {
		cc := *c // base arrays shared; see above for why that is safe
		cc.addPairs = nil
		cc.delPairs = nil
		out.clusters[k] = &cc
	}
	for pk, keys := range s.pairIndex {
		out.pairIndex[pk] = append([]Key(nil), keys...)
	}
	return out
}

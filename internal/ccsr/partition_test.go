package ccsr

import (
	"testing"

	"csce/internal/dataset"
	"csce/internal/graph"
)

type edgeKey struct {
	src, dst graph.VertexID
	label    graph.EdgeLabel
}

// canon normalizes an undirected edge so both orientations compare equal.
func canon(directed bool, src, dst graph.VertexID, el graph.EdgeLabel) edgeKey {
	if !directed && dst < src {
		src, dst = dst, src
	}
	return edgeKey{src, dst, el}
}

func collectEdges(t *testing.T, s *Store) map[edgeKey]int {
	t.Helper()
	out := make(map[edgeKey]int)
	err := s.EdgesAll(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		out[canon(s.Directed(), src, dst, el)]++
	})
	if err != nil {
		t.Fatalf("EdgesAll: %v", err)
	}
	return out
}

func partitionFixtures() []dataset.Spec {
	return []dataset.Spec{
		{Name: "pl", Kind: dataset.PowerLaw, Vertices: 200, TargetEdges: 600, VertexLabels: 4, Seed: 11},
		{Name: "pl-edgelabels", Kind: dataset.PowerLaw, Vertices: 150, TargetEdges: 400, VertexLabels: 3, EdgeLabels: 2, Seed: 12},
		{Name: "road", Kind: dataset.Road, Vertices: 196, TargetEdges: 380, Seed: 13},
		{Name: "cite", Kind: dataset.PowerLaw, Directed: true, Vertices: 180, TargetEdges: 500, VertexLabels: 5, Seed: 14},
	}
}

func TestEdgesAllMatchesGraph(t *testing.T) {
	for _, spec := range partitionFixtures() {
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate()
			s := Build(g)
			want := make(map[edgeKey]int)
			g.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
				want[canon(g.Directed(), src, dst, el)]++
			})
			got := collectEdges(t, s)
			if len(got) != len(want) {
				t.Fatalf("EdgesAll saw %d distinct edges, graph has %d", len(got), len(want))
			}
			for k, n := range got {
				if n != 1 {
					t.Fatalf("edge %v emitted %d times", k, n)
				}
				if want[k] != 1 {
					t.Fatalf("edge %v not in source graph", k)
				}
			}
		})
	}
}

func TestPartitionInvariants(t *testing.T) {
	for _, spec := range partitionFixtures() {
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate()
			s := Build(g)
			for _, k := range []int{1, 2, 4, 7} {
				owner := func(v graph.VertexID) int { return int(v) % k }
				parts, stats, err := s.Partition(k, owner)
				if err != nil {
					t.Fatalf("Partition k=%d: %v", k, err)
				}
				if len(parts) != k || len(stats) != k {
					t.Fatalf("Partition k=%d returned %d stores, %d stats", k, len(parts), len(stats))
				}
				global := collectEdges(t, s)

				seenLocal := 0
				boundaryHalves := 0
				for i, p := range parts {
					// Full replicated vertex-label array under global IDs.
					if p.NumVertices() != s.NumVertices() {
						t.Fatalf("k=%d shard %d has %d vertices, want %d", k, i, p.NumVertices(), s.NumVertices())
					}
					for v := 0; v < s.NumVertices(); v++ {
						if p.VertexLabel(graph.VertexID(v)) != s.VertexLabel(graph.VertexID(v)) {
							t.Fatalf("k=%d shard %d label mismatch at v%d", k, i, v)
						}
					}
					// Shard i stores exactly the global edges incident to an
					// owned vertex; count boundary edges as we go.
					local := collectEdges(t, parts[i])
					bnd := 0
					for e, n := range local {
						if n != 1 {
							t.Fatalf("k=%d shard %d stores edge %v %d times", k, i, e, n)
						}
						if global[e] != 1 {
							t.Fatalf("k=%d shard %d has edge %v not in the base graph", k, i, e)
						}
						if owner(e.src) != i && owner(e.dst) != i {
							t.Fatalf("k=%d shard %d stores foreign edge %v", k, i, e)
						}
						if owner(e.src) != owner(e.dst) {
							bnd++
						}
					}
					for e := range global {
						if owner(e.src) == i || owner(e.dst) == i {
							if local[e] != 1 {
								t.Fatalf("k=%d shard %d missing incident edge %v", k, i, e)
							}
						}
					}
					if stats[i].BoundaryEdges != bnd {
						t.Fatalf("k=%d shard %d boundary stat %d, counted %d", k, i, stats[i].BoundaryEdges, bnd)
					}
					seenLocal += len(local)
					boundaryHalves += bnd
				}
				// Σ stored − Σ boundary/2 == global edge count (each boundary
				// edge is stored by both owners).
				if boundaryHalves%2 != 0 {
					t.Fatalf("k=%d odd boundary total %d", k, boundaryHalves)
				}
				if got := seenLocal - boundaryHalves/2; got != len(global) {
					t.Fatalf("k=%d reconstructed %d edges, want %d", k, got, len(global))
				}
			}
		})
	}
}

func TestPartitionRejectsBadK(t *testing.T) {
	g := dataset.Spec{Kind: dataset.Road, Vertices: 25, TargetEdges: 40, Seed: 1}.Generate()
	s := Build(g)
	if _, _, err := s.Partition(0, func(graph.VertexID) int { return 0 }); err == nil {
		t.Fatal("Partition(0) should fail")
	}
	if _, _, err := s.Partition(2, func(graph.VertexID) int { return 5 }); err == nil {
		t.Fatal("out-of-range owner should fail")
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPropagation guards the serving subsystem's cancellation contract: a
// client disconnect or per-query deadline must stop the search instead of
// burning a core until the enumeration finishes. The check applies to the
// packages where that contract lives (ctxCheckedPkgs) and enforces three
// rules:
//
//  1. a context.Context parameter must actually be used in the function
//     body — accepting and then dropping a context silently severs the
//     cancellation chain;
//
//  2. a function that already receives a context must not mint a fresh
//     root with context.Background()/context.TODO() — deriving from the
//     caller's context is what keeps the chain intact;
//
//  3. a goroutine whose body loops must be able to observe cancellation:
//     its function must reference a context-typed value, or a value whose
//     struct type carries a context field (the exec.Options pattern).
var CtxPropagation = &Check{
	Name: "ctxpropagation",
	Doc:  "exec/server code must thread and consult cancellation contexts",
	Run:  runCtxPropagation,
}

// ctxCheckedPkgs are the import path suffixes (relative to the module)
// the cancellation contract covers. internal/obs is included because trace
// propagation rides the same context chain: a helper that drops its
// context would silently detach every downstream span. internal/live is
// included because mutation batches run delta enumerations under the
// writer lock — a dropped context there would hold the lock for the full
// search after the client has gone. internal/shard is included because the
// coordinator fans twig matches out to goroutine-per-shard scatters — a
// scatter goroutine that cannot observe cancellation would keep K local
// searches running after the query's deadline fired. cmd is included
// because the binaries (csced, cscebenchserve) wire signal handling into
// the same chain — a dropped context at the outermost layer defeats every
// propagation rule below it. internal/prefilter is included because
// signature rebuilds walk whole recovered stores on the startup path and
// bulk re-checks walk query backlogs: any helper there that takes a
// context must actually consult it, or a slow rebuild outlives its
// deadline unseen.
var ctxCheckedPkgs = []string{"internal/exec", "internal/server", "internal/obs", "internal/live", "internal/shard", "internal/prefilter", "cmd"}

func ctxApplies(p *Package) bool {
	rel := strings.TrimPrefix(p.Path, p.ModulePath+"/")
	for _, sfx := range ctxCheckedPkgs {
		if rel == sfx || strings.HasPrefix(rel, sfx+"/") {
			return true
		}
	}
	return false
}

func runCtxPropagation(p *Pass) {
	if !ctxApplies(p.Package) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxParamUsed(p, fd.Type, fd.Body)
			checkNoFreshRoot(p, fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					checkCtxParamUsed(p, n.Type, n.Body)
				case *ast.GoStmt:
					checkGoroutineObservesCtx(p, n)
				}
				return true
			})
		}
	}
}

// ctxParams returns the declared context.Context parameters of a function
// signature (skipping the blank identifier, which is an explicit opt-out).
func ctxParams(p *Pass, ft *ast.FuncType) []*ast.Ident {
	var out []*ast.Ident
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		t := p.Info.Types[field.Type].Type
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				out = append(out, name)
			}
		}
	}
	return out
}

// checkCtxParamUsed flags context parameters never mentioned in the body.
func checkCtxParamUsed(p *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	for _, param := range ctxParams(p, ft) {
		obj := p.Info.Defs[param]
		if obj == nil {
			continue
		}
		used := false
		ast.Inspect(body, func(n ast.Node) bool {
			if used {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				used = true
			}
			return true
		})
		if !used {
			p.Reportf(param.Pos(), "context parameter %s is never used; thread it into the blocking work or drop it", param.Name)
		}
	}
}

// checkNoFreshRoot flags context.Background()/TODO() calls inside
// functions that already have a context parameter.
func checkNoFreshRoot(p *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	if len(ctxParams(p, ft)) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are checked against their own signature
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [...]string{"Background", "TODO"} {
			if p.isPkgCall(call, "context", name) {
				p.Reportf(call.Pos(), "context.%s() discards the caller's context; derive from the context parameter instead", name)
			}
		}
		return true
	})
}

// checkGoroutineObservesCtx flags `go func() { ... }` whose body contains
// a loop but references nothing cancellation can reach it through.
func checkGoroutineObservesCtx(p *Pass, g *ast.GoStmt) {
	fl, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	loops := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = true
		}
		return !loops
	})
	if !loops {
		return
	}
	if len(ctxParams(p, fl.Type)) > 0 {
		return
	}
	observes := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if observes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		if typeCarriesContext(v.Type()) {
			observes = true
		}
		return true
	})
	if !observes {
		p.Reportf(g.Pos(), "goroutine loops without a reachable context; it cannot observe cancellation")
	}
}

// typeCarriesContext reports whether t is a context, or a (pointer to)
// struct with a direct context-typed field, or a channel (a done-channel
// is an accepted cancellation idiom).
func typeCarriesContext(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if isContextType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isContextType(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

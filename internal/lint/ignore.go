package lint

import (
	"go/token"
	"os"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. It suppresses the
// named checks on its target line of its file.
type ignoreDirective struct {
	file   string
	line   int
	checks []string
}

const ignorePrefix = "lint:ignore"

// collectIgnores scans a package's comments for //lint:ignore directives.
// A directive trailing a statement targets its own line; a directive on a
// line of its own targets the next line. Malformed directives (missing
// check list or reason, or naming an unknown check) come back as
// diagnostics so they fail the build instead of silently ignoring nothing.
func collectIgnores(pkg *Package, known map[string]bool) ([]ignoreDirective, []Diagnostic) {
	var (
		dirs []ignoreDirective
		bad  []Diagnostic
	)
	report := func(pos token.Position, msg string) {
		bad = append(bad, Diagnostic{Pos: pos, Check: "directive", Message: msg})
	}
	for i, f := range pkg.Files {
		// A trailing directive shares its line with code; detect that by
		// checking the source text before the comment. Reading the file a
		// second time is cheap next to typechecking.
		src, err := os.ReadFile(pkg.Filenames[i])
		if err != nil {
			src = nil
		}
		lineStarts := lineOffsets(src)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(pos, "malformed //lint:ignore: want \"//lint:ignore check1[,check2] reason\"")
					continue
				}
				checks := strings.Split(fields[0], ",")
				valid := true
				for _, name := range checks {
					if !known[name] {
						report(pos, "//lint:ignore names unknown check "+name)
						valid = false
					}
				}
				if !valid {
					continue
				}
				target := pos.Line
				if !codeBefore(src, lineStarts, pos) {
					target++ // standalone comment line: suppress the next line
				}
				dirs = append(dirs, ignoreDirective{file: pos.Filename, line: target, checks: checks})
			}
		}
	}
	return dirs, bad
}

// filterIgnored drops diagnostics matched by a directive.
func filterIgnored(diags []Diagnostic, dirs []ignoreDirective) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file  string
		line  int
		check string
	}
	suppressed := map[key]bool{}
	for _, d := range dirs {
		for _, c := range d.checks {
			suppressed[key{d.file, d.line, c}] = true
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if !suppressed[key{d.Pos.Filename, d.Pos.Line, d.Check}] {
			out = append(out, d)
		}
	}
	return out
}

// lineOffsets returns the byte offset of the start of each 1-based line.
func lineOffsets(src []byte) []int {
	offsets := []int{0, 0} // offsets[1] = 0: lines are 1-based
	for i, b := range src {
		if b == '\n' {
			offsets = append(offsets, i+1)
		}
	}
	return offsets
}

// codeBefore reports whether anything other than whitespace precedes the
// position on its own line (i.e. the comment trails a statement). With no
// source available it assumes a trailing comment, the conservative choice
// (the directive then targets its own line only).
func codeBefore(src []byte, lineStarts []int, pos token.Position) bool {
	if src == nil || pos.Line >= len(lineStarts) {
		return true
	}
	line := src[lineStarts[pos.Line]:]
	if pos.Column-1 < len(line) {
		line = line[:pos.Column-1]
	}
	return len(strings.TrimSpace(string(line))) > 0
}

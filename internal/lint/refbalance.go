package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// RefBalance enforces the snapshot refcount protocol that keeps live-graph
// epochs collectable: every pinned snapshot must be unpinned. A call to a
// method named Acquire whose result is a (pointer to a) named type with a
// Release() method — live.Graph.Acquire returning *live.Snapshot is the
// instance this repo cares about — starts an obligation on the assigned
// variable, and the obligation must be discharged on every path out of the
// function by x.Release() or defer x.Release(). A leaked snapshot pins its
// epoch's whole store: the swap-based commit protocol can never free it,
// which is invisible to the race detector and to every test that doesn't
// measure memory.
//
// The analysis is the same conservative abstract interpretation over the
// statement tree as mutexdiscipline, with two traps called out explicitly:
//
//   - defer x.Release() inside a loop runs at function exit, not per
//     iteration, so snapshots acquired per iteration pile up — reported at
//     the defer;
//   - a return between Acquire and Release leaks on that path — reported
//     at the return.
//
// Ownership transfer is recognized and ends the obligation: returning the
// snapshot, passing it (or its Release method value) to another function,
// or storing it anywhere escapes the variable, and the receiver becomes
// responsible. Discarding the result of Acquire outright is always a leak.
var RefBalance = &Check{
	Name: "refbalance",
	Doc:  "every snapshot Acquire() needs a Release() on all paths",
	Run:  runRefBalance,
}

// isAcquireCall reports whether call is x.Acquire() returning a
// releasable handle (a named type, possibly behind a pointer, with a
// Release() method in its method set).
func isAcquireCall(p *Package, call *ast.CallExpr) bool {
	sel := calleeSelector(call)
	if sel == nil || sel.Sel.Name != "Acquire" {
		return false
	}
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return hasReleaseMethod(tv.Type)
}

func hasReleaseMethod(t types.Type) bool {
	if _, ok := t.(*types.Tuple); ok {
		return false
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == "Release" {
			sig := f.Type().(*types.Signature)
			if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
				return true
			}
		}
	}
	return false
}

func runRefBalance(p *Pass) {
	funcDecls(p.Package, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
		analyzeRefBalance(p, body)
	})
}

// refOp is one tracked acquisition.
type refOp struct {
	obj     types.Object // the variable holding the handle
	display string
	pos     ast.Node
}

type refState map[types.Object]refOp

func (s refState) clone() refState {
	c := make(refState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s refState) intersect(o refState) refState {
	c := refState{}
	for k, v := range s {
		if _, ok := o[k]; ok {
			c[k] = v
		}
	}
	return c
}

// refScope accumulates function-level facts for one body.
type refScope struct {
	p *Pass
	// escaped holds handle variables whose ownership leaves the function
	// (returned, passed along, stored, or Release used as a method value);
	// they are never tracked.
	escaped map[types.Object]bool
	// deferred holds variables covered by a deferred Release outside any
	// loop (a defer inside a loop is the trap, reported separately).
	deferred map[types.Object]bool
}

func analyzeRefBalance(p *Pass, body *ast.BlockStmt) {
	sc := &refScope{p: p, escaped: map[types.Object]bool{}, deferred: map[types.Object]bool{}}
	sc.prescan(body)
	st, terminated := sc.walkRefStmts(body.List, refState{})
	if !terminated {
		sc.reportHeld(st, "end of function")
	}
}

// prescan finds (a) escaping uses of handle variables and (b) deferred
// Releases, classifying defers inside loops as the pile-up trap.
func (sc *refScope) prescan(body *ast.BlockStmt) {
	// Handle variables: every object assigned from an Acquire call.
	handles := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are analyzed as functions in their own right
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isAcquireCall(sc.p.Package, call) || len(as.Lhs) != 1 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := sc.p.Info.Defs[id]; obj != nil {
				handles[obj] = true
			} else if obj := sc.p.Info.Uses[id]; obj != nil {
				handles[obj] = true
			}
		}
		return true
	})
	if len(handles) == 0 {
		return
	}
	// Uses that transfer ownership. A use is safe only as the receiver of
	// a method call, a field read, or an assignment target; anything else
	// (return value, call argument, assignment source, composite literal
	// element, method value like x.Release handed away) escapes the handle
	// and the receiver becomes responsible for releasing it.
	parent := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := sc.p.Info.Uses[id]
		if !handles[obj] {
			return true
		}
		switch par := parent[ast.Node(id)].(type) {
		case *ast.SelectorExpr:
			if par.X != ast.Expr(id) {
				return true
			}
			if call, ok := parent[ast.Node(par)].(*ast.CallExpr); ok && call.Fun == ast.Expr(par) {
				return true // receiver of a method call
			}
			if _, isField := sc.p.Info.Uses[par.Sel].(*types.Var); isField {
				return true // field read
			}
			sc.escaped[obj] = true // method value: x.Release handed away
		case *ast.AssignStmt:
			for _, lhs := range par.Lhs {
				if lhs == ast.Expr(id) {
					return true // assignment target (the Acquire itself)
				}
			}
			sc.escaped[obj] = true // assignment source: aliased away
		default:
			sc.escaped[obj] = true
		}
		return true
	})
	// Deferred releases; loop-resident defers are the pile-up trap.
	sc.scanDefers(body, false)
}

// scanDefers records defer x.Release() coverage, reporting the loop trap.
func (sc *refScope) scanDefers(n ast.Node, inLoop bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return
	case *ast.ForStmt:
		sc.scanDefers(n.Body, true)
		return
	case *ast.RangeStmt:
		sc.scanDefers(n.Body, true)
		return
	case *ast.DeferStmt:
		obj := sc.releaseTarget(n.Call)
		if obj == nil {
			// A deferred closure releasing the handle also covers it.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if es, ok := m.(*ast.ExprStmt); ok {
						if o := sc.releaseTarget(es.X); o != nil && !inLoop {
							sc.deferred[o] = true
						}
					}
					return true
				})
			}
			return
		}
		if inLoop {
			sc.p.Reportf(n.Pos(), "defer %s.Release() inside a loop runs at function exit, not per iteration; snapshots acquired in the loop pile up — release explicitly each iteration", objName(obj))
		} else {
			sc.deferred[obj] = true
		}
		return
	}
	// Generic recursion over children.
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		switch m.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.DeferStmt:
			sc.scanDefers(m, inLoop)
			return false
		}
		return true
	})
}

// releaseTarget decodes expr as x.Release() on a tracked-looking handle
// and returns x's object (nil otherwise).
func (sc *refScope) releaseTarget(expr ast.Expr) types.Object {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel := calleeSelector(call)
	if sel == nil || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return sc.p.Info.Uses[id]
}

func objName(obj types.Object) string {
	if obj == nil {
		return "snapshot"
	}
	return obj.Name()
}

func (sc *refScope) reportHeld(st refState, where string) {
	for obj, op := range st {
		if sc.deferred[obj] {
			continue
		}
		sc.p.Reportf(op.pos.Pos(), "%s acquired here is not released at %s on some path (Release it or defer the Release); a leaked snapshot pins its epoch forever", op.display, where)
	}
}

func (sc *refScope) walkRefStmts(stmts []ast.Stmt, st refState) (refState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = sc.walkRefStmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (sc *refScope) walkRefStmt(stmt ast.Stmt, st refState) (refState, bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && isAcquireCall(sc.p.Package, call) {
				if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					obj := sc.p.Info.Defs[id]
					if obj == nil {
						obj = sc.p.Info.Uses[id]
					}
					if obj != nil && !sc.escaped[obj] {
						if held, already := st[obj]; already && !sc.deferred[obj] {
							sc.p.Reportf(call.Pos(), "%s is reassigned while the snapshot acquired at line %d is still pinned; the old snapshot leaks",
								id.Name, sc.p.Fset.Position(held.pos.Pos()).Line)
						}
						st = st.clone()
						st[obj] = refOp{obj: obj, display: id.Name, pos: call}
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isAcquireCall(sc.p.Package, call) {
			sc.p.Reportf(call.Pos(), "result of Acquire() is discarded; the snapshot can never be released")
			return st, false
		}
		if obj := sc.releaseTarget(s.X); obj != nil {
			st = st.clone()
			delete(st, obj)
		}
	case *ast.ReturnStmt:
		sc.reportHeld(st, fmt.Sprintf("the return on line %d", sc.p.Fset.Position(s.Pos()).Line))
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.BlockStmt:
		return sc.walkRefStmts(s.List, st)
	case *ast.LabeledStmt:
		return sc.walkRefStmt(s.Stmt, st)
	case *ast.IfStmt:
		thenSt, thenTerm := sc.walkRefStmts(s.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = sc.walkRefStmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return thenSt.intersect(elseSt), false
		}
	case *ast.ForStmt:
		return sc.walkRefLoop(s.Body, st)
	case *ast.RangeStmt:
		return sc.walkRefLoop(s.Body, st)
	case *ast.SwitchStmt:
		return sc.walkRefCases(caseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.TypeSwitchStmt:
		return sc.walkRefCases(caseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		return sc.walkRefCases(bodies, true, st)
	}
	return st, false
}

// walkRefLoop checks that acquisitions made inside a loop body are also
// released inside it: a handle still pinned at the end of an iteration
// accumulates once per iteration.
func (sc *refScope) walkRefLoop(body *ast.BlockStmt, st refState) (refState, bool) {
	bodySt, _ := sc.walkRefStmts(body.List, st.clone())
	for obj, op := range bodySt {
		if _, before := st[obj]; before || sc.deferred[obj] {
			continue
		}
		sc.p.Reportf(op.pos.Pos(), "%s is acquired inside the loop but still pinned at the end of the iteration; release it before the next iteration", op.display)
	}
	return st.intersect(bodySt), false
}

func (sc *refScope) walkRefCases(bodies [][]ast.Stmt, exhaustive bool, st refState) (refState, bool) {
	merged := refState(nil)
	allTerm := len(bodies) > 0
	for _, b := range bodies {
		caseSt, term := sc.walkRefStmts(b, st.clone())
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = caseSt
		} else {
			merged = merged.intersect(caseSt)
		}
	}
	if !exhaustive {
		if merged == nil {
			merged = st
		} else {
			merged = merged.intersect(st)
		}
		allTerm = false
	}
	if allTerm {
		return st, true
	}
	if merged == nil {
		merged = st
	}
	return merged, false
}

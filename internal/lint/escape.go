package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// This file is the suite's second loader mode: where loader.go feeds
// go/types from `go list` + export data, AttachAllocs feeds the allocfree
// check from the compiler's escape analysis. `go build -gcflags='-m -m'`
// is the only stdlib-sanctioned way to see where the gc compiler places
// allocations, so the gate shells out, parses the diagnostics, and maps
// them onto the loaded ASTs. The build cache replays compiler diagnostics
// on cache hits, so repeated gate runs are cheap and still see the full
// output.

// AllocSite is one heap-allocation site the compiler reported: a
// `... escapes to heap` or `moved to heap: x` diagnostic.
type AllocSite struct {
	Pos token.Position
	// Expr is the compiler's rendering of the allocating expression
	// ("make([]uint32, 0, len(pool))", "&engine{...}", "moved to heap: s").
	// Note the compiler prints underlying types (graph.VertexID shows as
	// uint32); budget entries must quote this rendering verbatim.
	Expr string
}

// escapeRe matches the two allocation diagnostics. The detailed -m -m form
// repeats each site with a trailing colon and indented flow lines; those
// duplicates are folded by the seen set in parseEscapes.
var escapeRe = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*escapes to heap|moved to heap: .+?):?$`)

// AttachAllocs compiles the module packages with escape-analysis
// diagnostics enabled and attaches the parsed allocation sites to each
// loaded package. dir and patterns must be the ones Load was called with.
// It is required before running the allocfree check; without it the check
// reports a configuration finding rather than silently passing.
func AttachAllocs(dir string, pkgs []*Package, patterns ...string) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", "-gcflags=-m -m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Same rule as the type loader: analysis never touches the network.
	cmd.Env = append(cmd.Environ(), "GOPROXY=off")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go build -gcflags='-m -m' %s: %v\n%s", strings.Join(patterns, " "), err, out.String())
	}
	byPkg := parseEscapes(dir, out.Bytes())
	for _, p := range pkgs {
		p.Allocs = byPkg[p.Path]
		p.AllocsLoaded = true
	}
	return nil
}

// parseEscapes splits the compiler output into per-package allocation
// sites. Lines are grouped by the "# importpath" headers go build emits;
// relative file names are resolved against dir so they match the absolute
// Filenames the loader records.
func parseEscapes(dir string, out []byte) map[string][]AllocSite {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	byPkg := map[string][]AllocSite{}
	seen := map[string]bool{}
	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := escapeRe.FindStringSubmatch(line)
		if m == nil || pkg == "" {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(abs, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		expr := strings.TrimSuffix(m[4], ":")
		// "X escapes to heap" → "X"; the "moved to heap: x" form already
		// reads as a description and stays whole.
		expr = strings.TrimSuffix(expr, " escapes to heap")
		key := fmt.Sprintf("%s:%d:%d:%s", file, lineNo, col, expr)
		if seen[key] {
			continue
		}
		seen[key] = true
		byPkg[pkg] = append(byPkg[pkg], AllocSite{
			Pos:  token.Position{Filename: file, Line: lineNo, Column: col},
			Expr: expr,
		})
	}
	return byPkg
}

// HasHotPathAnnotations reports whether any loaded package declares a
// //csce:hotpath function — the driver uses it to decide whether the
// escape-analysis build is needed at all.
func HasHotPathAnnotations(pkgs []*Package) bool {
	for _, p := range pkgs {
		if len(hotPathDecls(p)) > 0 {
			return true
		}
	}
	return false
}

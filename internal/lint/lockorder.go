package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a module-wide lock-ordering graph over *named* mutexes
// — mutexes identifiable across functions and packages, i.e. fields of
// named structs ("live.Graph.mu") and package-level variables — and
// reports cycles as potential deadlocks. Four hand-rolled protocols in
// this repo nest locks across package boundaries (the shard coordinator's
// vmu over each shard's live.Graph.mu over the WAL's mu, the registry over
// graph commit locks), and a consistent global order is the only deadlock
// argument any of them has; no test can prove its absence.
//
// Edges come from two sources, both collected during the per-package walk
// with the same conservative held-set interpretation mutexdiscipline uses:
//
//   - direct: Lock(B) executed while A is held adds A → B;
//   - interprocedural: calling f() while A is held adds A → X for every
//     mutex X that f (transitively, through module-internal calls) may
//     lock. Function summaries reach fixpoint in Finish, so the graph sees
//     nesting that spans packages (Coordinator.Mutate holding vmu calls
//     live.Graph.Mutate which locks g.mu).
//
// A cycle A → B → A means two executions can acquire A and B in opposite
// orders and deadlock; it is reported once, anchored at one witness
// acquisition. RLock participates like Lock: a read lock opposite a write
// lock still deadlocks.
var LockOrder = &Check{
	Name:   "lockorder",
	Doc:    "named mutexes must have an acyclic module-wide acquisition order",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// lockEdge is one A-before-B observation with its witness position.
type lockEdge struct {
	from, to string
	pos      token.Position
	// via names the call chain for interprocedural edges ("" for direct).
	via string
}

// callRec is one call made while holding locks.
type callRec struct {
	callee string
	held   []string
	pos    token.Position
}

// fnSummary is what one function does to the lock graph.
type fnSummary struct {
	acquires map[string]token.Position // named locks this function may take
	calls    []callRec
}

// lockSession aggregates summaries and direct edges across packages.
type lockSession struct {
	fns   map[string]*fnSummary
	edges []lockEdge
}

func lockOrderState(p *Pass) *lockSession {
	return p.Session.State("lockorder", func() any {
		return &lockSession{fns: map[string]*fnSummary{}}
	}).(*lockSession)
}

// lockWitness is the sample acquisition backing one edge in the graph.
type lockWitness struct {
	pos token.Position
	via string
}

// namedLockKey renders the receiver of a Lock/Unlock call as a
// module-wide identity: "pkg.Type.field" for struct fields,
// "pkg.var" for package-level mutexes. Locals return "" (no stable
// cross-function identity).
func namedLockKey(p *Package, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	case *ast.SelectorExpr:
		sel, ok := p.Info.Selections[e]
		if !ok {
			return ""
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok || !field.IsField() {
			return ""
		}
		t := sel.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			return ""
		}
		return obj.Pkg().Path() + "." + obj.Name() + "." + field.Name()
	case *ast.StarExpr:
		return namedLockKey(p, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return namedLockKey(p, e.X)
		}
	}
	return ""
}

// calleeID resolves a call to a module-internal function's stable
// identity (types.Func.FullName), or "" for calls the analysis cannot or
// need not follow (stdlib, interface methods, function values).
func calleeID(p *Package, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return ""
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return ""
	}
	if f.Pkg().Path() != p.ModulePath && !strings.HasPrefix(f.Pkg().Path(), p.ModulePath+"/") {
		return ""
	}
	return f.FullName()
}

// fnID is the summary identity of a declared function.
func fnID(p *Package, fd *ast.FuncDecl) string {
	if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		return obj.FullName()
	}
	return p.Path + "." + fd.Name.Name
}

func runLockOrder(p *Pass) {
	s := lockOrderState(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sum := &fnSummary{acquires: map[string]token.Position{}}
			w := &lockWalker{p: p.Package, s: s, sum: sum}
			w.walkStmts(fd.Body.List, map[string]token.Position{})
			s.fns[fnID(p.Package, fd)] = sum
		}
	}
}

// lockWalker interprets one function body, held-set style (clone into
// branches, merge by intersection — same conservatism as
// mutexdiscipline), recording acquisitions, direct edges, and calls made
// under locks.
type lockWalker struct {
	p   *Package
	s   *lockSession
	sum *fnSummary
}

type heldSet = map[string]token.Position

func cloneHeld(h heldSet) heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func intersectHeld(a, b heldSet) heldSet {
	c := heldSet{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			c[k] = v
		}
	}
	return c
}

func heldKeys(h heldSet) []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, stmt := range stmts {
		var term bool
		held, term = w.walkStmt(stmt, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held heldSet) (heldSet, bool) {
	// Calls can hide anywhere in a statement (RHS of assign, condition,
	// argument). Scan the whole statement for them — except nested
	// literals and the lock ops themselves — before interpreting control
	// flow.
	w.scanCalls(stmt, held)
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if op, ok := mutexCallOp(w.p, s.X); ok {
			key := namedLockKey(w.p, calleeSelector(ast.Unparen(s.X).(*ast.CallExpr)).X)
			if key == "" {
				return held, false
			}
			pos := w.p.Fset.Position(op.pos.Pos())
			if op.lock {
				w.sum.acquires[key] = pos
				for from := range held {
					if from != key {
						w.s.edges = append(w.s.edges, lockEdge{from: from, to: key, pos: pos})
					}
				}
				held = cloneHeld(held)
				held[key] = pos
			} else {
				held = cloneHeld(held)
				delete(held, key)
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end; model it
		// by simply not removing (defer is scanned for calls above).
		return held, false
	case *ast.ReturnStmt:
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		thenH, thenT := w.walkStmts(s.Body.List, cloneHeld(held))
		elseH, elseT := held, false
		if s.Else != nil {
			elseH, elseT = w.walkStmt(s.Else, cloneHeld(held))
		}
		switch {
		case thenT && elseT:
			return held, true
		case thenT:
			return elseH, false
		case elseT:
			return thenH, false
		default:
			return intersectHeld(thenH, elseH), false
		}
	case *ast.ForStmt:
		bodyH, _ := w.walkStmts(s.Body.List, cloneHeld(held))
		return intersectHeld(held, bodyH), false
	case *ast.RangeStmt:
		bodyH, _ := w.walkStmts(s.Body.List, cloneHeld(held))
		return intersectHeld(held, bodyH), false
	case *ast.SwitchStmt:
		return w.walkCases(caseBodies(s.Body), hasDefaultClause(s.Body), held)
	case *ast.TypeSwitchStmt:
		return w.walkCases(caseBodies(s.Body), hasDefaultClause(s.Body), held)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		return w.walkCases(bodies, true, held)
	}
	return held, false
}

func (w *lockWalker) walkCases(bodies [][]ast.Stmt, exhaustive bool, held heldSet) (heldSet, bool) {
	merged := heldSet(nil)
	allTerm := len(bodies) > 0
	for _, b := range bodies {
		caseH, term := w.walkStmts(b, cloneHeld(held))
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = caseH
		} else {
			merged = intersectHeld(merged, caseH)
		}
	}
	if !exhaustive {
		if merged == nil {
			merged = held
		} else {
			merged = intersectHeld(merged, held)
		}
		allTerm = false
	}
	if allTerm {
		return held, true
	}
	if merged == nil {
		merged = held
	}
	return merged, false
}

// scanCalls records module-internal calls lexically inside one statement,
// with the current held set. Nested function literals are skipped (they
// execute later, under whatever locks their call site holds); control-flow
// statements are scanned shallowly, their bodies get their own walk.
func (w *lockWalker) scanCalls(stmt ast.Stmt, held heldSet) {
	if len(held) == 0 {
		return
	}
	shallow := func(n ast.Node) []ast.Expr {
		switch s := n.(type) {
		case *ast.ExprStmt:
			return []ast.Expr{s.X}
		case *ast.AssignStmt:
			return append(append([]ast.Expr{}, s.Lhs...), s.Rhs...)
		case *ast.ReturnStmt:
			return s.Results
		case *ast.IfStmt:
			return []ast.Expr{s.Cond}
		case *ast.ForStmt:
			if s.Cond != nil {
				return []ast.Expr{s.Cond}
			}
		case *ast.RangeStmt:
			return []ast.Expr{s.X}
		case *ast.SwitchStmt:
			if s.Tag != nil {
				return []ast.Expr{s.Tag}
			}
		case *ast.DeferStmt:
			return []ast.Expr{s.Call}
		case *ast.GoStmt:
			// A goroutine runs without the launcher's locks.
			return nil
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				var out []ast.Expr
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						out = append(out, vs.Values...)
					}
				}
				return out
			}
		case *ast.SendStmt:
			return []ast.Expr{s.Chan, s.Value}
		case *ast.IncDecStmt:
			return []ast.Expr{s.X}
		}
		return nil
	}
	for _, e := range shallow(stmt) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, isLock := mutexCallOp(w.p, call); isLock {
				return true
			}
			id := calleeID(w.p, call)
			if id == "" {
				return true
			}
			w.sum.calls = append(w.sum.calls, callRec{
				callee: id,
				held:   heldKeys(held),
				pos:    w.p.Fset.Position(call.Pos()),
			})
			return true
		})
	}
}

// finishLockOrder closes the summaries transitively, materializes the
// interprocedural edges, and reports every elementary cycle once.
func finishLockOrder(p *Pass) {
	s := lockOrderState(p)

	// Transitive acquires per function (fixpoint over the call graph;
	// cycles in the call graph converge because sets only grow).
	trans := map[string]map[string]bool{}
	var ids []string
	for id := range s.fns {
		ids = append(ids, id)
		set := map[string]bool{}
		for k := range s.fns[id].acquires {
			set[k] = true
		}
		trans[id] = set
	}
	sort.Strings(ids)
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			for _, c := range s.fns[id].calls {
				callee, ok := trans[c.callee]
				if !ok {
					continue
				}
				for k := range callee {
					if !trans[id][k] {
						trans[id][k] = true
						changed = true
					}
				}
			}
		}
	}

	// Interprocedural edges: call under held locks → every lock the callee
	// may (transitively) acquire.
	edges := append([]lockEdge(nil), s.edges...)
	for _, id := range ids {
		for _, c := range s.fns[id].calls {
			for k := range trans[c.callee] {
				for _, from := range c.held {
					if from != k {
						edges = append(edges, lockEdge{from: from, to: k, pos: c.pos, via: c.callee})
					}
				}
			}
		}
	}

	// Adjacency with one witness per (from, to).
	adj := map[string]map[string]lockWitness{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]lockWitness{}
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = lockWitness{pos: e.pos, via: e.via}
		}
	}

	// Cycle detection: DFS from each node in sorted order; report each
	// cycle once via a canonical rotation.
	reported := map[string]bool{}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var path []string
	onPath := map[string]bool{}
	visited := map[string]bool{}
	var dfs func(n string)
	dfs = func(n string) {
		path = append(path, n)
		onPath[n] = true
		var nexts []string
		for to := range adj[n] {
			nexts = append(nexts, to)
		}
		sort.Strings(nexts)
		for _, to := range nexts {
			if onPath[to] {
				// Extract the cycle to..n.
				start := 0
				for i, v := range path {
					if v == to {
						start = i
						break
					}
				}
				cycle := append([]string(nil), path[start:]...)
				key := canonicalCycle(cycle)
				if !reported[key] {
					reported[key] = true
					reportCycle(p, cycle, adj)
				}
				continue
			}
			if !visited[to] {
				dfs(to)
			}
		}
		onPath[n] = false
		visited[n] = true
		path = path[:len(path)-1]
	}
	for _, n := range nodes {
		if !visited[n] {
			dfs(n)
		}
	}
}

// canonicalCycle rotates the cycle so its smallest element leads, giving
// every discovery of the same cycle one key.
func canonicalCycle(cycle []string) string {
	min := 0
	for i, v := range cycle {
		if v < cycle[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	return strings.Join(rot, "→")
}

// reportCycle emits one diagnostic per cycle, anchored at the witness of
// the edge leaving the cycle's smallest node, listing the full order and
// the call chain of each hop.
func reportCycle(p *Pass, cycle []string, adj map[string]map[string]lockWitness) {
	min := 0
	for i, v := range cycle {
		if v < cycle[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	var hops []string
	var anchor token.Position
	for i, from := range rot {
		to := rot[(i+1)%len(rot)]
		w := adj[from][to]
		if i == 0 {
			anchor = w.pos
		}
		hop := fmt.Sprintf("%s → %s (%s:%d", from, to, w.pos.Filename, w.pos.Line)
		if w.via != "" {
			hop += " via " + w.via
		}
		hop += ")"
		hops = append(hops, hop)
	}
	p.ReportAt(anchor, "lock-order cycle (potential deadlock): %s", strings.Join(hops, "; "))
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EnumExhaustive keeps switches over the project's enum types honest. A
// switch over graph.Variant or plan.Mode that silently falls past a newly
// added constant is how "add a fourth matching variant" turns into wrong
// answers instead of a compile-side checklist. Any switch whose tag has a
// named integer type with two or more package-level constants of exactly
// that type must either cover every declared constant or carry a default
// clause.
var EnumExhaustive = &Check{
	Name: "enumexhaustive",
	Doc:  "switches over enum types must cover every constant or have a default",
	Run:  runEnumExhaustive,
}

func runEnumExhaustive(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitchExhaustive(p, sw)
			return true
		})
	}
}

func checkSwitchExhaustive(p *Pass, sw *ast.SwitchStmt) {
	tagType := p.Info.Types[sw.Tag].Type
	members, typeName := enumMembers(tagType)
	if len(members) < 2 {
		return
	}
	covered := map[string]bool{}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: exhaustive by construction
		}
		for _, e := range cc.List {
			tv, ok := p.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: cannot reason about coverage
			}
			for name, v := range members {
				if constant.Compare(tv.Value, token.EQL, v) {
					covered[name] = true
				}
			}
		}
	}
	var missing []string
	for name := range members {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(sw.Pos(), "switch over %s is missing cases %s (add them or a default clause)",
		typeName, strings.Join(missing, ", "))
}

// enumMembers collects the package-level constants declared with exactly
// the tag's named type; fewer than two means the type is not enum-like.
func enumMembers(t types.Type) (map[string]constant.Value, string) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, ""
	}
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil {
		return nil, ""
	}
	members := map[string]constant.Value{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		members[name] = c.Val()
	}
	display := obj.Name()
	if pkg.Name() != "" {
		display = pkg.Name() + "." + display
	}
	return members, display
}

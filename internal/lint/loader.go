package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked module package ready for analysis.
// Only non-test files are loaded: the invariants the suite enforces are
// production-code contracts, and typechecking test variants would drag in
// the testing dependency graph for no additional signal.
type Package struct {
	// Path is the import path ("csce/internal/server").
	Path string
	// ModulePath is the enclosing module ("csce").
	ModulePath string
	// ModuleDir is the module root on disk — where module-level companion
	// files (ALLOC_BUDGET.json) are resolved from.
	ModuleDir string
	Fset      *token.FileSet
	Files     []*ast.File
	// Filenames holds the absolute path of Files[i].
	Filenames []string
	Types     *types.Package
	Info      *types.Info
	// Stdlib reports whether an import path names a standard-library
	// package, as determined authoritatively by the go tool.
	Stdlib map[string]bool

	// Allocs holds the package's heap-allocation sites parsed from the
	// compiler's escape analysis, attached by AttachAllocs. Nil until then;
	// AllocsLoaded distinguishes "not loaded" from "loaded, none found" so
	// the allocfree check can fail loudly instead of passing vacuously.
	Allocs       []AllocSite
	AllocsLoaded bool
}

// Load lists, parses, and typechecks every module package matched by the
// patterns (e.g. "./...") under dir, resolving out-of-module imports
// through the compiler's export data. It is the stdlib-only equivalent of
// x/tools' packages.Load: `go list -e -export -deps -json` supplies the
// file sets and export-data locations, go/parser + go/types do the rest.
//
// Unresolvable imports do not abort the load: the affected import is given
// a synthesized empty package so analysis (in particular the stdlibonly
// check, whose whole job is to flag such imports) can still run over the
// surrounding code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Never touch the network during analysis: a missing dependency is a
	// finding, not something to fetch.
	cmd.Env = append(os.Environ(), "GOPROXY=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	type listModule struct {
		Path string
		Dir  string
	}
	type listPackage struct {
		ImportPath string
		Dir        string
		Name       string
		GoFiles    []string
		Export     string
		Standard   bool
		Module     *listModule
	}

	var modPkgs []listPackage
	exports := map[string]string{}
	stdlib := map[string]bool{}
	modulePath := ""
	moduleDir := ""
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Standard {
			stdlib[lp.ImportPath] = true
		}
		if lp.Module != nil && !lp.Standard {
			if modulePath == "" {
				modulePath = lp.Module.Path
				moduleDir = lp.Module.Dir
			}
			if lp.Module.Path == modulePath {
				// -deps emits dependencies before dependents, so appending
				// preserves a valid typechecking order.
				modPkgs = append(modPkgs, lp)
				continue
			}
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	if len(modPkgs) == 0 {
		return nil, fmt.Errorf("go list %s: no module packages found under %s", strings.Join(patterns, " "), dir)
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{}
	imp := &moduleImporter{
		exports: exports,
		checked: checked,
		fake:    map[string]*types.Package{},
	}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)

	var pkgs []*Package
	for _, lp := range modPkgs {
		var (
			files     []*ast.File
			filenames []string
		)
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			af, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", path, err)
			}
			files = append(files, af)
			filenames = append(filenames, path)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: imp,
			// Synthesized packages for unresolvable imports make some
			// downstream expressions untypeable; those errors are expected
			// and analysis degrades gracefully, so collect instead of abort.
			Error: func(error) {},
		}
		tp, _ := conf.Check(lp.ImportPath, fset, files, info)
		pkgs = append(pkgs, &Package{
			Path:       lp.ImportPath,
			ModulePath: modulePath,
			ModuleDir:  moduleDir,
			Fset:       fset,
			Files:      files,
			Filenames:  filenames,
			Types:      tp,
			Info:       info,
			Stdlib:     stdlib,
		})
		checked[lp.ImportPath] = tp
	}
	return pkgs, nil
}

// moduleImporter resolves module-internal imports from the packages
// typechecked so far, everything else from gc export data, and imports
// with neither (unresolvable dependencies) as synthesized empty packages.
type moduleImporter struct {
	exports map[string]string
	checked map[string]*types.Package
	fake    map[string]*types.Package
	gc      types.Importer
}

func (m *moduleImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := m.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	if _, ok := m.exports[path]; ok {
		return m.gc.Import(path)
	}
	if p, ok := m.fake[path]; ok {
		return p, nil
	}
	// Unresolvable (e.g. a third-party import the stdlibonly check exists
	// to reject): synthesize an empty, complete package so typechecking of
	// the importer can proceed.
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	m.fake[path] = p
	return p, nil
}

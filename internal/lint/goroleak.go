package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroLeak flags goroutines that can never exit. The long-lived processes
// in this repo (the query server, the live-graph mutator, the shard
// coordinator, and the command binaries that drive them) all follow the
// same worker shape — `go func() { for { ... } }()` — and a worker whose
// loop neither receives from a channel nor consults a context runs until
// process death no matter what Close/Shutdown does. Each one pins its
// captures (snapshots, stores, connections) and shows up as a -race /
// goroutine-dump ghost long after the subsystem that spawned it is gone.
//
// The rule: a `go func` literal whose body contains an unbounded loop
// (`for { ... }` with no condition) must contain, somewhere in the body,
// at least one of
//
//   - a channel receive (`<-ch`, `v, ok := <-ch`, or a select case) —
//     close(ch) can unblock it;
//   - a range over a channel — it ends when the channel closes;
//   - a use of a context-typed value — ctx.Done()/ctx.Err() can stop it.
//
// This is deliberately stricter than ctxpropagation's goroutine rule,
// which accepts a mere *reference* to a channel-typed value: sending on a
// channel, or holding one without receiving, does not give the goroutine
// an exit path. Bounded loops (`for i := 0; i < n; i++`, range over a
// slice) terminate on their own and are not flagged. The check cannot
// verify the received-from channel is ever closed, or that the context is
// ever cancelled — it checks that an exit path exists, not that it is
// taken.
var GoroLeak = &Check{
	Name: "goroleak",
	Doc:  "unbounded goroutine loops must observe a ctx.Done()/channel-close exit path",
	Run:  runGoroLeak,
}

// goroLeakPkgs scopes the check to the packages that spawn long-lived
// goroutines: the serving/ingest/sharding subsystems, the span-export
// pipeline (its sender loop must observe shutdown), and every command
// binary (csced and cscebenchserve run workers of their own that no
// internal package reviews).
var goroLeakPkgs = []string{"internal/server", "internal/live", "internal/shard", "internal/obs/export", "cmd"}

// pkgInScope reports whether the package's module-relative path falls
// under one of the listed prefixes.
func pkgInScope(p *Package, prefixes []string) bool {
	rel := strings.TrimPrefix(p.Path, p.ModulePath+"/")
	for _, sfx := range prefixes {
		if rel == sfx || strings.HasPrefix(rel, sfx+"/") {
			return true
		}
	}
	return false
}

func runGoroLeak(p *Pass) {
	if !pkgInScope(p.Package, goroLeakPkgs) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoroExit(p, g)
				}
				return true
			})
		}
	}
}

// checkGoroExit applies the exit-path rule to one go statement.
func checkGoroExit(p *Pass, g *ast.GoStmt) {
	fl, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		// `go method()` launches code reviewed where it is declared.
		return
	}
	unbounded := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if unbounded {
			return false
		}
		if fs, ok := n.(*ast.ForStmt); ok && fs.Cond == nil {
			unbounded = true
		}
		return true
	})
	if !unbounded {
		return
	}
	if goroBodyObservesExit(p, fl.Body) {
		return
	}
	p.Reportf(g.Pos(), "goroutine loops forever with no exit path: no channel receive, range-over-channel, or context use in its body — it outlives Close/Shutdown and leaks (receive from a close-able channel or consult ctx.Done())")
}

// goroBodyObservesExit scans a goroutine body for any of the accepted exit
// observations. Nested function literals count: a loop body that calls
// through a closure which receives still has the receive lexically inside
// the goroutine.
func goroBodyObservesExit(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// `<-ch` in any position: statement, assignment, select case.
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			// A *use* of a context-typed value (a declaration alone gives
			// the body nothing to consult).
			if v, ok := p.Info.Uses[n].(*types.Var); ok && isContextType(v.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

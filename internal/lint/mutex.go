package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MutexDiscipline enforces two lock-hygiene rules:
//
//  1. Balance: a mutex locked in a function must be released on every path
//     out of that function — either by a deferred Unlock or by explicit
//     Unlocks covering each return. The analysis is a lightweight abstract
//     interpretation over the statement tree (if/else, switch, select,
//     loops) tracking which lock expressions are held; it is deliberately
//     conservative and merges diverging branches by intersection, so a
//     function that intentionally returns holding a lock needs a
//     //lint:ignore with its justification.
//
//  2. No copies: function parameters and receivers must not take a mutex
//     (or a struct directly containing one) by value; a copied mutex
//     guards nothing.
//
// Lock()/Unlock() and RLock()/RUnlock() pairs are tracked independently
// per lock expression (spelled as written: "c.mu", "s.names", ...).
var MutexDiscipline = &Check{
	Name: "mutexdiscipline",
	Doc:  "every Lock needs an Unlock on all paths; mutexes must not be copied",
	Run:  runMutexDiscipline,
}

// isMutexType reports whether t (after stripping pointers) is sync.Mutex
// or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return namedTypeIn(t, "sync", "Mutex") || namedTypeIn(t, "sync", "RWMutex")
}

// containsMutex reports whether t is a mutex or a struct with a direct
// (possibly embedded) mutex field.
func containsMutex(t types.Type) bool {
	if isMutexType(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isMutexType(ft) {
			return true
		}
	}
	return false
}

// lockOp classifies a statement-level call on a mutex.
type lockOp struct {
	key     string // lock expression + "/r" for the reader half of an RWMutex
	display string // as written, for diagnostics
	lock    bool   // true = Lock/RLock, false = Unlock/RUnlock
	pos     ast.Node
}

// mutexCallOp decodes expr as mu.Lock() / mu.Unlock() / mu.RLock() /
// mu.RUnlock() on a sync mutex; ok is false otherwise.
func mutexCallOp(p *Package, expr ast.Expr) (lockOp, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return lockOp{}, false
	}
	sel := calleeSelector(call)
	if sel == nil {
		return lockOp{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op.lock = true
	case "RLock":
		op.lock = true
		op.key = "/r"
	case "Unlock":
	case "RUnlock":
		op.key = "/r"
	default:
		return lockOp{}, false
	}
	recvType := p.Info.Types[sel.X].Type
	if recvType == nil || !isMutexType(recvType) {
		return lockOp{}, false
	}
	name, ok := exprKey(sel.X)
	if !ok {
		return lockOp{}, false
	}
	op.display = name
	op.key = name + op.key
	op.pos = call
	return op, true
}

// exprKey renders a lock expression as a stable string key. Only chains of
// identifiers and field selections are tracked; anything else (indexing, a
// call result) has no stable identity across statements.
func exprKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return exprKey(e.X)
		}
	}
	return "", false
}

func runMutexDiscipline(p *Pass) {
	checkCopiedParams(p)
	funcDecls(p.Package, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
		analyzeLockBalance(p, body)
	})
}

// checkCopiedParams flags by-value mutex parameters and receivers.
func checkCopiedParams(p *Pass) {
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if containsMutex(t) {
				p.Reportf(field.Pos(), "%s passes %s by value, copying its mutex; use a pointer", what, t)
			}
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			flag(fd.Recv, "receiver")
			flag(fd.Type.Params, "parameter")
		}
	}
}

// lockState maps held lock keys to the operation that acquired them.
type lockState map[string]lockOp

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both states (the conservative merge:
// a lock released on either branch is treated as released).
func (s lockState) intersect(o lockState) lockState {
	c := lockState{}
	for k, v := range s {
		if _, ok := o[k]; ok {
			c[k] = v
		}
	}
	return c
}

// balanceScope accumulates function-level facts during the walk.
type balanceScope struct {
	p *Pass
	// deferred holds lock keys with a deferred Unlock anywhere in the
	// function (flow-insensitively: a conditional defer still counts).
	deferred map[string]bool
}

// analyzeLockBalance walks one function body. Nested function literals are
// not descended into here — funcDecls hands them to this analysis
// separately — except to scan deferred closures for Unlock calls.
func analyzeLockBalance(p *Pass, body *ast.BlockStmt) {
	sc := &balanceScope{p: p, deferred: map[string]bool{}}
	// Pre-scan for deferred unlocks so early returns see later defers
	// (defers run at return regardless of where the statement sits).
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if op, ok := mutexCallOp(p.Package, ds.Call); ok && !op.lock {
			sc.deferred[op.key] = true
		}
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if es, ok := m.(*ast.ExprStmt); ok {
					if op, ok := mutexCallOp(p.Package, es.X); ok && !op.lock {
						sc.deferred[op.key] = true
					}
				}
				return true
			})
		}
		return true
	})
	st, terminated := sc.walkStmts(body.List, lockState{})
	if !terminated {
		sc.reportHeld(st, "end of function")
	}
}

// reportHeld flags every lock still held at an exit point, unless a
// deferred Unlock covers it.
func (sc *balanceScope) reportHeld(st lockState, where string) {
	for key, op := range st {
		if sc.deferred[key] {
			continue
		}
		sc.p.Reportf(op.pos.Pos(), "%s is still locked at %s on some path (unlock it or defer the Unlock)", op.display, where)
	}
}

// walkStmts interprets a statement list, returning the resulting state and
// whether every path through the list terminates (return/branch).
func (sc *balanceScope) walkStmts(stmts []ast.Stmt, st lockState) (lockState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = sc.walkStmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (sc *balanceScope) walkStmt(stmt ast.Stmt, st lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if op, ok := mutexCallOp(sc.p.Package, s.X); ok {
			if op.lock {
				if held, already := st[op.key]; already {
					sc.p.Reportf(op.pos.Pos(), "%s is locked again while already held (locked at line %d); this self-deadlocks",
						op.display, sc.p.Fset.Position(held.pos.Pos()).Line)
				}
				st = st.clone()
				st[op.key] = op
			} else {
				st = st.clone()
				delete(st, op.key)
			}
		}
	case *ast.ReturnStmt:
		sc.reportHeld(st, fmt.Sprintf("the return on line %d", sc.p.Fset.Position(s.Pos()).Line))
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; treating them
		// as terminating keeps the analysis simple and conservative.
		return st, true
	case *ast.BlockStmt:
		return sc.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return sc.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		thenSt, thenTerm := sc.walkStmts(s.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = sc.walkStmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return thenSt.intersect(elseSt), false
		}
	case *ast.ForStmt:
		bodySt, _ := sc.walkStmts(s.Body.List, st.clone())
		return st.intersect(bodySt), false
	case *ast.RangeStmt:
		bodySt, _ := sc.walkStmts(s.Body.List, st.clone())
		return st.intersect(bodySt), false
	case *ast.SwitchStmt:
		return sc.walkCases(caseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.TypeSwitchStmt:
		return sc.walkCases(caseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		// A select blocks until some case runs, so the entry state does
		// not flow around it: merge the cases only.
		return sc.walkCases(bodies, true, st)
	}
	return st, false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var bodies [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			bodies = append(bodies, cc.Body)
		}
	}
	return bodies
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// walkCases merges the branches of a switch/select. Without a default (or
// an exhaustive guarantee) the entry state joins the merge, modeling the
// fall-past path.
func (sc *balanceScope) walkCases(bodies [][]ast.Stmt, exhaustive bool, st lockState) (lockState, bool) {
	merged := lockState(nil)
	allTerm := len(bodies) > 0
	for _, b := range bodies {
		caseSt, term := sc.walkStmts(b, st.clone())
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = caseSt
		} else {
			merged = merged.intersect(caseSt)
		}
	}
	if !exhaustive {
		if merged == nil {
			merged = st
		} else {
			merged = merged.intersect(st)
		}
		allTerm = false
	}
	if allTerm {
		return st, true
	}
	if merged == nil {
		merged = st
	}
	return merged, false
}

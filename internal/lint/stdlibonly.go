package lint

import (
	"strconv"
	"strings"
)

// StdlibOnly enforces the repo's dependency rule: every import must be
// either a standard-library package or a package of the csce module
// itself. The go tool's package classification is authoritative; for
// imports the go tool could not resolve at all (which are therefore not
// classified), the first path segment containing a dot — the module-path
// convention — marks them as third-party.
var StdlibOnly = &Check{
	Name: "stdlibonly",
	Doc:  "imports must come from the standard library or the csce module",
	Run:  runStdlibOnly,
}

func runStdlibOnly(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue // the parser already rejected it
			}
			switch {
			case path == "C":
				p.Reportf(imp.Pos(), "import \"C\": cgo is not part of the stdlib-only contract")
			case path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/"):
				// module-internal
			case p.Stdlib[path]:
				// standard library
			default:
				p.Reportf(imp.Pos(), "import %q is outside the standard library and module %s", path, p.ModulePath)
			}
		}
	}
}

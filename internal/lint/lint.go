// Package lint is a project-specific static analyzer suite built on the
// standard library's go/parser, go/ast, and go/types — no x/tools
// dependency, honoring the repo's stdlib-only rule.
//
// The serving subsystem made the codebase concurrency-heavy: an immutable
// CCSR store scanned by many workers, atomic counters on every hot path,
// cooperative cancellation threaded through core.MatchOptions and
// exec.Options. The invariants that keep that sound (read-only shared
// state, atomics never mixed with plain access, every Lock released,
// contexts consulted rather than dropped) are exactly the class of bug the
// compiler cannot see. Each Check here encodes one of them; cmd/cscelint
// runs them all and make lint wires them into tier-1 CI.
//
// Diagnostics can be suppressed per line with
//
//	//lint:ignore check1[,check2] reason
//
// placed either at the end of the offending line or on the line directly
// above it. The reason is mandatory; a malformed or unknown-check directive
// is itself reported (check name "directive").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Check is one analyzer pass. Run is invoked once per loaded package and
// reports findings through the Pass.
type Check struct {
	// Name is the identifier used in diagnostics, -checks, and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description for -list and DESIGN.md.
	Doc string
	// Run inspects one package.
	Run func(*Pass)
	// Finish, when non-nil, runs once after every package was inspected,
	// with the same Session each Run saw. This is how whole-module checks
	// (lockorder's cross-package lock graph, allocfree's budget staleness)
	// aggregate before reporting; the Pass it receives has a nil Package.
	Finish func(*Pass)
}

// Checks returns the full suite in a stable order.
func Checks() []*Check {
	return []*Check{
		StdlibOnly,
		AtomicConsistency,
		MutexDiscipline,
		CtxPropagation,
		EnumExhaustive,
		ErrcheckLite,
		AllocFree,
		RefBalance,
		LockOrder,
		GoroLeak,
		DocComment,
	}
}

// CheckByName resolves a check name; ok is false for unknown names.
func CheckByName(name string) (*Check, bool) {
	for _, c := range Checks() {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Diagnostic is one finding, positioned and attributed to a check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Session carries state across the packages of one Run invocation, for
// checks whose invariant spans package boundaries. Each check sees its own
// private slot.
type Session struct {
	state map[string]any
}

// State returns the check's cross-package state, initializing it with init
// on first use.
func (s *Session) State(check string, init func() any) any {
	if s.state == nil {
		s.state = map[string]any{}
	}
	v, ok := s.state[check]
	if !ok {
		v = init()
		s.state[check] = v
	}
	return v
}

// Pass is the per-(check, package) context handed to Check.Run. For
// Check.Finish, Package is nil and only Session/ReportAt are usable.
type Pass struct {
	*Package
	Session *Session
	check   *Check
	sink    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Fset.Position(pos), format, args...)
}

// ReportAt records a diagnostic at an already-resolved position — the form
// Finish hooks use, since they outlive any single package's FileSet.
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:     pos,
		Check:   p.check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the given checks over the loaded packages, applies
// //lint:ignore suppression, and returns the surviving diagnostics sorted
// by file, line, column, and check name. Malformed directives surface as
// "directive" diagnostics.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	known := make(map[string]bool, len(checks))
	for _, c := range Checks() {
		known[c.Name] = true
	}
	var ignores []ignoreDirective
	session := &Session{}
	for _, pkg := range pkgs {
		dirs, bad := collectIgnores(pkg, known)
		ignores = append(ignores, dirs...)
		diags = append(diags, bad...)
		for _, c := range checks {
			c.Run(&Pass{Package: pkg, Session: session, check: c, sink: &diags})
		}
	}
	for _, c := range checks {
		if c.Finish != nil {
			c.Finish(&Pass{Session: session, check: c, sink: &diags})
		}
	}
	diags = filterIgnored(diags, ignores)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// --- shared AST/type helpers used by several checks ---

// pkgNameOf returns the imported package an identifier refers to, or nil.
func (p *Package) pkgNameOf(id *ast.Ident) *types.Package {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported()
		}
	}
	return nil
}

// callee splits a call of the form pkg.Fn(...) or recv.Method(...) into its
// selector; nil for plain or non-selector calls.
func calleeSelector(call *ast.CallExpr) *ast.SelectorExpr {
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return sel
}

// isPkgCall reports whether call is pkgPath.name(...).
func (p *Package) isPkgCall(call *ast.CallExpr, pkgPath, name string) bool {
	sel := calleeSelector(call)
	if sel == nil || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	imported := p.pkgNameOf(id)
	return imported != nil && imported.Path() == pkgPath
}

// namedTypeIn reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func namedTypeIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcDecls yields every function body in the package: declarations and
// function literals, each paired with its type. Literals nested in a
// declaration are yielded separately so checks can treat them as functions
// in their own right.
func funcDecls(p *Package, fn func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd.Name.Name, fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					fn(fd.Name.Name+".func", fl.Type, fl.Body)
				}
				return true
			})
		}
	}
}

package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AllocFree is the zero-allocation gate for the executor's hot paths: a
// function annotated
//
//	//csce:hotpath
//
// in its doc comment must not contain heap-allocation sites. The evidence
// comes from the compiler itself — AttachAllocs parses the escape-analysis
// diagnostics of `go build -gcflags='-m -m'` — so the gate tracks what the
// generated code actually does, not what the source looks like. Known,
// justified allocations are pinned in ALLOC_BUDGET.json at the module
// root; a site not covered by the budget fails the check, and a budget
// entry matching nothing is reported as stale so the file cannot rot.
//
// Two honest limitations, both inherited from escape analysis: append
// growth and map inserts allocate at run time without a compile-time site,
// and an annotated function that gets fully inlined reports its sites at
// the caller. The gate is a ratchet on syntactic allocation sites — the
// dominant regression mode (a fresh make/new/composite literal or
// interface boxing on the hot path) — not a proof of zero allocations;
// BenchmarkExtend's allocs/op number is the runtime ground truth.
var AllocFree = &Check{
	Name:   "allocfree",
	Doc:    "//csce:hotpath functions must not allocate beyond ALLOC_BUDGET.json",
	Run:    runAllocFree,
	Finish: finishAllocFree,
}

const hotPathDirective = "//csce:hotpath"

// budgetFileName is resolved against the module root of the analyzed
// packages.
const budgetFileName = "ALLOC_BUDGET.json"

// budgetEntry pins one known allocation: Func is the annotated function's
// qualified name ("csce/internal/shard.mergeRow"), Alloc the compiler's
// rendering of the site (AllocSite.Expr, verbatim), Count how many sites
// with that exact rendering the function may contain (default 1), and Why
// the human justification (mandatory — an unexplained pin defeats the
// gate).
type budgetEntry struct {
	Func  string `json:"func"`
	Alloc string `json:"alloc"`
	Count int    `json:"count,omitempty"`
	Why   string `json:"why"`
}

type budgetFile struct {
	SchemaVersion int           `json:"schema_version"`
	Allocations   []budgetEntry `json:"allocations"`
}

// allocSession tracks, across packages, which budget entries matched so
// Finish can flag stale ones exactly once.
type allocSession struct {
	budgets  map[string]*moduleBudget // module dir -> budget
	analyzed map[string]bool          // package paths this run actually saw
}

type moduleBudget struct {
	path    string
	entries []budgetEntry
	used    []int // sites matched per entry
	loadErr error
	// annotated reports whether any //csce:hotpath declaration was seen in
	// this module; stale-entry reporting only makes sense if so.
	annotated bool
}

func allocState(p *Pass) *allocSession {
	return p.Session.State("allocfree", func() any {
		return &allocSession{budgets: map[string]*moduleBudget{}, analyzed: map[string]bool{}}
	}).(*allocSession)
}

// hotPathDecls returns the //csce:hotpath-annotated function declarations
// of a package, keyed by their qualified diagnostic name.
func hotPathDecls(p *Package) map[*ast.FuncDecl]string {
	out := map[*ast.FuncDecl]string{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(c.Text)
				if text == hotPathDirective || strings.HasPrefix(text, hotPathDirective+" ") {
					out[fd] = qualifiedFuncName(p, fd)
					break
				}
			}
		}
	}
	return out
}

// qualifiedFuncName renders pkgpath.(*Recv).Name / pkgpath.Name — the
// identity budget entries use.
func qualifiedFuncName(p *Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv := types.ExprString(fd.Recv.List[0].Type)
		name = "(" + recv + ")." + name
	}
	return p.Path + "." + name
}

func (s *allocSession) budgetFor(p *Package) *moduleBudget {
	mb, ok := s.budgets[p.ModuleDir]
	if ok {
		return mb
	}
	mb = &moduleBudget{path: filepath.Join(p.ModuleDir, budgetFileName)}
	data, err := os.ReadFile(mb.path)
	switch {
	case os.IsNotExist(err):
		// No budget file: every hot-path allocation is a finding.
	case err != nil:
		mb.loadErr = err
	default:
		var bf budgetFile
		if err := json.Unmarshal(data, &bf); err != nil {
			mb.loadErr = fmt.Errorf("parse %s: %v", mb.path, err)
		} else {
			mb.entries = bf.Allocations
		}
	}
	mb.used = make([]int, len(mb.entries))
	s.budgets[p.ModuleDir] = mb
	return mb
}

func runAllocFree(p *Pass) {
	s := allocState(p)
	s.analyzed[p.Package.Path] = true
	decls := hotPathDecls(p.Package)
	if len(decls) == 0 {
		return
	}
	mb := s.budgetFor(p.Package)
	mb.annotated = true
	if mb.loadErr != nil {
		p.ReportAt(token.Position{Filename: mb.path, Line: 1}, "cannot load allocation budget: %v", mb.loadErr)
		return
	}
	if !p.AllocsLoaded {
		for fd, name := range decls {
			p.Reportf(fd.Pos(), "%s is annotated %s but escape analysis was not loaded; run through cscelint (or AttachAllocs) so the gate has compiler evidence", name, hotPathDirective)
		}
		return
	}
	for fd, name := range decls {
		start := p.Fset.Position(fd.Pos())
		end := p.Fset.Position(fd.End())
		for _, site := range p.Allocs {
			if site.Pos.Filename != start.Filename || site.Pos.Line < start.Line || site.Pos.Line > end.Line {
				continue
			}
			if mb.admit(name, site.Expr) {
				continue
			}
			p.ReportAt(site.Pos, "hot path %s allocates: %s (fix it, or pin it in %s with a justification)", name, site.Expr, budgetFileName)
		}
	}
}

// entryPkgPath extracts the import path from a budget entry's qualified
// function name: "csce/internal/shard.(*T).m" -> "csce/internal/shard".
// The package path ends at the first dot after the last slash (import
// path elements may themselves contain dots, e.g. domain names).
func entryPkgPath(fn string) string {
	slash := strings.LastIndex(fn, "/")
	dot := strings.Index(fn[slash+1:], ".")
	if dot < 0 {
		return fn
	}
	return fn[:slash+1+dot]
}

// admit consumes one budget slot for the (func, alloc) pair if one remains.
func (mb *moduleBudget) admit(fn, alloc string) bool {
	for i, e := range mb.entries {
		if e.Func != fn || e.Alloc != alloc {
			continue
		}
		count := e.Count
		if count == 0 {
			count = 1
		}
		if mb.used[i] < count {
			mb.used[i]++
			return true
		}
	}
	return false
}

// finishAllocFree reports budget entries that matched no allocation site:
// either the allocation was fixed (delete the pin) or the entry drifted
// out of sync with the compiler's rendering (update it). Stale pins are
// latent holes in the gate, so they fail like any other finding. Only
// entries belonging to packages in the analyzed set are judged — a run
// scoped to ./internal/obs cannot tell whether a pin for internal/shard
// is stale, so it stays silent about it; the module-wide `make
// alloc-gate` run is the one that keeps the whole budget honest.
func finishAllocFree(p *Pass) {
	s := allocState(p)
	dirs := make([]string, 0, len(s.budgets))
	for dir := range s.budgets {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		mb := s.budgets[dir]
		if !mb.annotated || mb.loadErr != nil {
			continue
		}
		for i, e := range mb.entries {
			if mb.used[i] == 0 && s.analyzed[entryPkgPath(e.Func)] {
				p.ReportAt(token.Position{Filename: mb.path, Line: 1},
					"stale budget entry: %s no longer allocates %q (remove the pin, or re-sync it with the compiler's rendering)", e.Func, e.Alloc)
			}
		}
	}
}

package live // want `package live has no package comment on any file`

// Documented is a correctly documented exported function: no finding.
func Documented() {}

func Undocumented() {} // want `exported function Undocumented has no doc comment`

// This comment talks about something else entirely.
func Mislabeled() {} // want `doc comment on exported function Mislabeled does not mention "Mislabeled"`

// Store is a documented exported type; its documented method is clean.
type Store struct{}

// Len reports the documented length.
func (s *Store) Len() int { return 0 }

func (s *Store) Close() error { return nil } // want `exported method Store.Close has no doc comment`

type Window struct{} // want `exported type Window has no doc comment on its declaration or group`

// CheckpointMode is documented at the group level, which covers it.
type (
	// Mode selects a strategy.
	Mode int
)

// EventKind values below share one documented group: the group comment
// covers every exported constant, mention rule not applied to runs.
const (
	EventA = iota
	EventB
)

const EventC = 7 // want `exported const EventC has no doc comment on its declaration or group`

// ErrClosed mentions itself, as a doc comment should.
var ErrClosed error

var ErrBroken error // want `exported var ErrBroken has no doc comment on its declaration or group`

// unexported declarations need no doc comments.
func helper() {}

type internalState struct{}

// stringer has an exported method on an unexported receiver: skipped,
// the contract belongs to the interface it satisfies.
type stringer struct{}

func (stringer) String() string { return "" }

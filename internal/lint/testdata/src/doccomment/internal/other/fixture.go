// Package other is outside the doccomment scope: its undocumented
// exports must produce no findings.
package other

func Undocumented() {}

type Window struct{}

var ErrBroken error

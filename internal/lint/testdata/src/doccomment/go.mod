module csce

go 1.22

// Fixture for malformed //lint:ignore directives; the golden test asserts
// the two "directive" diagnostics programmatically because a directive
// cannot carry a want annotation inside itself.
package directive

import "os"

// missingReason omits the mandatory justification.
func missingReason(path string) {
	os.Remove(path) //lint:ignore errchecklite
}

// unknownCheck names a check that does not exist, so nothing is
// suppressed and the underlying finding stays live.
func unknownCheck(path string) {
	os.Remove(path) //lint:ignore nosuchcheck fat-fingered the check name
}

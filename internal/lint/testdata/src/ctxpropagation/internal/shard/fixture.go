// Fixture for the ctxpropagation check in csce/internal/shard: the
// coordinator scatters twig matches to one goroutine per shard and joins
// the partials — both the scatter goroutines and the join loop must be
// able to observe the query's cancellation, or a disconnect leaves K
// shard-local searches burning cores.
package shard

import (
	"context"
	"sync"
)

type fakeShard struct {
	id int
}

func (sh *fakeShard) matchOne() bool { return false }

// goodScatter launches one goroutine per shard; each references the
// caller's ctx, so cancellation reaches every local search.
func goodScatter(ctx context.Context, shards []*fakeShard) {
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *fakeShard) {
			defer wg.Done()
			for ctx.Err() == nil && sh.matchOne() {
			}
		}(sh)
	}
	wg.Wait()
}

// goodJoin polls cancellation between probe rows.
func goodJoin(ctx context.Context, rows [][]int) (int, error) {
	n := 0
	for range rows {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// badJoin accepts a context and never consults it: the join runs to
// completion even after the client disconnected.
func badJoin(ctx context.Context, rows [][]int) int { // want `context parameter ctx is never used`
	n := 0
	for range rows {
		n++
	}
	return n
}

// badScatterRoot mints a fresh root for the fan-out, severing the query's
// deadline from every shard-local search.
func badScatterRoot(ctx context.Context, shards []*fakeShard) error {
	sub, cancel := context.WithCancel(context.Background()) // want `context.Background\(\) discards the caller's context`
	defer cancel()
	_ = ctx
	return sub.Err()
}

// badScatterPump loops in a goroutine with nothing cancellation can reach.
func badScatterPump(shards []*fakeShard) {
	for _, sh := range shards {
		go func(sh *fakeShard) { // want `goroutine loops without a reachable context`
			for sh.matchOne() {
			}
		}(sh)
	}
}

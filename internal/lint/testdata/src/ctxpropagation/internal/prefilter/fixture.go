// Fixture for the ctxpropagation check in csce/internal/prefilter: the
// admission cascade itself is O(pattern) and contextless, but signature
// rebuilds walk whole recovered stores on the startup path and bulk
// re-checks walk query backlogs — helpers there that accept a context
// must consult it, or a slow rebuild outlives its deadline unseen.
package prefilter

import "context"

type fakeStore struct {
	clusters [][]int
}

type fakeSig struct {
	pairs int
}

func (s *fakeSig) absorb(cluster []int) { s.pairs += len(cluster) }

// goodRebuild polls cancellation between clusters, so a startup deadline
// can abort a rebuild of an arbitrarily large recovered store.
func goodRebuild(ctx context.Context, st *fakeStore) (*fakeSig, error) {
	sig := &fakeSig{}
	for _, cl := range st.clusters {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sig.absorb(cl)
	}
	return sig, nil
}

// badRebuild accepts a context and never consults it: the rebuild runs to
// completion even after the startup deadline fired.
func badRebuild(ctx context.Context, st *fakeStore) *fakeSig { // want `context parameter ctx is never used`
	sig := &fakeSig{}
	for _, cl := range st.clusters {
		sig.absorb(cl)
	}
	return sig
}

// badRecheckRoot mints a fresh root for a bulk re-check, severing it from
// the caller's deadline.
func badRecheckRoot(ctx context.Context, st *fakeStore) error {
	sub, cancel := context.WithCancel(context.Background()) // want `context.Background\(\) discards the caller's context`
	defer cancel()
	_ = ctx
	return sub.Err()
}

// badMaintainPump loops in a goroutine with nothing cancellation can
// reach: a background signature maintainer that can never be stopped.
func badMaintainPump(st *fakeStore, sig *fakeSig) {
	go func() { // want `goroutine loops without a reachable context`
		for _, cl := range st.clusters {
			sig.absorb(cl)
		}
	}()
}

// Fixture for the ctxpropagation check. The package path matches
// csce/internal/exec, one of the two packages the cancellation contract
// covers, so the rules apply here.
package exec

import "context"

func work() bool { return false }

// goodConsult threads and polls the caller's context.
func goodConsult(ctx context.Context, steps int) error {
	for i := 0; i < steps; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		work()
	}
	return nil
}

// badDropped accepts a context and ignores it, severing cancellation.
func badDropped(ctx context.Context, steps int) { // want `context parameter ctx is never used`
	for i := 0; i < steps; i++ {
		work()
	}
}

// goodBlankParam opts out explicitly.
func goodBlankParam(_ context.Context, steps int) {
	for i := 0; i < steps; i++ {
		work()
	}
}

// badFreshRoot mints a new root instead of deriving from the caller.
func badFreshRoot(ctx context.Context) error {
	sub, cancel := context.WithTimeout(context.Background(), 0) // want `context.Background\(\) discards the caller's context`
	defer cancel()
	_ = ctx
	return sub.Err()
}

// goodDerived derives from the caller's context.
func goodDerived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return sub.Err()
}

// badBlindGoroutine spawns a looping worker nothing can cancel.
func badBlindGoroutine(done func()) {
	go func() { // want `goroutine loops without a reachable context`
		for work() {
		}
		done()
	}()
}

// goodCtxGoroutine captures the context directly.
func goodCtxGoroutine(ctx context.Context) {
	go func() {
		for work() {
			if ctx.Err() != nil {
				return
			}
		}
	}()
}

// options mirrors exec.Options: the context rides inside a struct.
type options struct {
	Ctx context.Context
	N   int
}

// goodOptsGoroutine captures a value whose type carries the context.
func goodOptsGoroutine(o options) {
	go func() {
		for i := 0; i < o.N; i++ {
			work()
		}
	}()
}

// goodChanGoroutine uses the done-channel idiom.
func goodChanGoroutine(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// goodLooplessGoroutine has nothing to cancel.
func goodLooplessGoroutine(f func()) {
	go func() {
		f()
	}()
}

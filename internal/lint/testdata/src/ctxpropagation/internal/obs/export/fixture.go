// Fixture for the ctxpropagation check in csce/internal/obs/export: the
// exporter's HTTP POSTs ride a request context derived from the exporter
// lifetime, so a helper that drops its context (or mints a fresh root)
// would keep retry sleeps and in-flight requests alive past Shutdown.
package export

import "context"

type poster struct {
	stop chan struct{}
}

func (p *poster) postOnce() bool { return false }

// goodSend consults the caller's context between retry attempts.
func (p *poster) goodSend(ctx context.Context, attempts int) error {
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.postOnce()
	}
	return nil
}

// badSend accepts a context and never consults it: Shutdown cannot abort
// the retry loop.
func (p *poster) badSend(ctx context.Context, attempts int) { // want `context parameter ctx is never used`
	for i := 0; i < attempts; i++ {
		p.postOnce()
	}
}

// badFreshRoot mints a new root for the POST instead of deriving from the
// exporter's request context.
func (p *poster) badFreshRoot(ctx context.Context) error {
	req, cancel := context.WithCancel(context.Background()) // want `context.Background\(\) discards the caller's context`
	defer cancel()
	_ = ctx
	return req.Err()
}

// goodStopLoop loops over a close-able stop channel — the exporter's
// accepted shutdown idiom for its sender goroutine.
func (p *poster) goodStopLoop() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			default:
				p.postOnce()
			}
		}
	}()
}

// badBlindFlusher loops forever with nothing cancellation can reach.
func badBlindFlusher(flush func() bool) {
	go func() { // want `goroutine loops without a reachable context`
		for flush() {
		}
	}()
}

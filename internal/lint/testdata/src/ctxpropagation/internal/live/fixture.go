// Fixture for the ctxpropagation check in csce/internal/live: mutation
// batches run delta enumerations under the writer lock, so a handler that
// drops its context would hold the lock for the whole search after the
// caller has gone.
package live

import (
	"context"
	"sync"
)

type mutGraph struct {
	mu   sync.Mutex
	done chan struct{}
}

func (g *mutGraph) applyOne() bool { return false }

// goodMutate consults the caller's context between mutations.
func (g *mutGraph) goodMutate(ctx context.Context, n int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		g.applyOne()
	}
	return nil
}

// badMutate takes the lock and ignores cancellation entirely.
func (g *mutGraph) badMutate(ctx context.Context, n int) { // want `context parameter ctx is never used`
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < n; i++ {
		g.applyOne()
	}
}

// badNotifierRoot mints a fresh root for the notification fan-out.
func (g *mutGraph) badNotifierRoot(ctx context.Context) error {
	sub, cancel := context.WithCancel(context.Background()) // want `context.Background\(\) discards the caller's context`
	defer cancel()
	_ = ctx
	return sub.Err()
}

// goodDrainGoroutine loops over a done channel — an accepted cancellation
// idiom for subscription pumps.
func (g *mutGraph) goodDrainGoroutine() {
	go func() {
		for {
			select {
			case <-g.done:
				return
			default:
				g.applyOne()
			}
		}
	}()
}

// badBlindPump loops forever with nothing cancellation can reach.
func badBlindPump(step func() bool) {
	go func() { // want `goroutine loops without a reachable context`
		for step() {
		}
	}()
}

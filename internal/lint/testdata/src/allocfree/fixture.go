// Fixture for the allocfree check: //csce:hotpath functions gated by the
// compiler's escape analysis, with one allocation pinned in the module's
// ALLOC_BUDGET.json and one unbudgeted regression that must fire.
package allocfree

// sink keeps returned slices reachable so the compiler cannot prove
// anything stack-local.
var sink []int

// badHot regresses the gate: a fresh make on an annotated hot path with
// no budget entry covering it.
//
//csce:hotpath
func badHot(n int) {
	buf := make([]int, n) // want `hot path csce.badHot allocates`
	sink = buf
}

// goodHot is genuinely allocation-free: index arithmetic over a caller
// buffer.
//
//csce:hotpath
func goodHot(xs []int, v int) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pinnedHot allocates, but the site is pinned in ALLOC_BUDGET.json with a
// justification, so the gate admits it.
//
//csce:hotpath
func pinnedHot(n int) {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	sink = out
}

// coldPath allocates freely; only annotated functions are gated.
func coldPath(n int) {
	sink = make([]int, n)
}

// checkCascade mirrors the prefilter admission probe: sums over
// pre-compiled needs into a caller-owned scratch slice, no allocation —
// the shape internal/prefilter's CheckMany must keep.
//
//csce:hotpath
func checkCascade(sums []uint64, counts []uint32) bool {
	for i := range sums {
		sums[i] = 0
	}
	for i, c := range counts {
		sums[i%len(sums)] += uint64(c)
	}
	for _, s := range sums {
		if s == 0 {
			return false
		}
	}
	return true
}

// badCheckCascade regresses the prefilter shape: building the probe's
// scratch per call instead of pooling it.
//
//csce:hotpath
func badCheckCascade(counts []uint32) bool {
	sums := make([]uint64, len(counts)) // want `hot path csce.badCheckCascade allocates`
	for i, c := range counts {
		sums[i] = uint64(c)
	}
	usink = sums
	return len(sums) > 0
}

// usink keeps uint64 slices reachable.
var usink []uint64

// Fixture for the allocfree check: //csce:hotpath functions gated by the
// compiler's escape analysis, with one allocation pinned in the module's
// ALLOC_BUDGET.json and one unbudgeted regression that must fire.
package allocfree

// sink keeps returned slices reachable so the compiler cannot prove
// anything stack-local.
var sink []int

// badHot regresses the gate: a fresh make on an annotated hot path with
// no budget entry covering it.
//
//csce:hotpath
func badHot(n int) {
	buf := make([]int, n) // want `hot path csce.badHot allocates`
	sink = buf
}

// goodHot is genuinely allocation-free: index arithmetic over a caller
// buffer.
//
//csce:hotpath
func goodHot(xs []int, v int) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pinnedHot allocates, but the site is pinned in ALLOC_BUDGET.json with a
// justification, so the gate admits it.
//
//csce:hotpath
func pinnedHot(n int) {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	sink = out
}

// coldPath allocates freely; only annotated functions are gated.
func coldPath(n int) {
	sink = make([]int, n)
}

// Fixture for the enumexhaustive check: a switch over a named integer
// type with declared constants must cover every constant or default.
package enumexhaustive

type variant uint8

const (
	edgeInduced variant = iota
	vertexInduced
	homomorphic
)

// badMissing silently falls past homomorphic.
func badMissing(v variant) string {
	switch v { // want `switch over .*\.variant is missing cases homomorphic`
	case edgeInduced:
		return "edge"
	case vertexInduced:
		return "vertex"
	}
	return ""
}

// badMissingTwo reports every absent constant.
func badMissingTwo(v variant) bool {
	switch v { // want `switch over .*\.variant is missing cases homomorphic, vertexInduced`
	case edgeInduced:
		return true
	}
	return false
}

// goodAllCases covers the enum exhaustively without a default.
func goodAllCases(v variant) string {
	switch v {
	case edgeInduced, vertexInduced:
		return "injective"
	case homomorphic:
		return "homomorphic"
	}
	return ""
}

// goodDefault is exhaustive by construction.
func goodDefault(v variant) string {
	switch v {
	case edgeInduced:
		return "edge"
	default:
		return "other"
	}
}

// goodNonEnum: switches over plain integers are out of scope.
func goodNonEnum(n int) string {
	switch n {
	case 1:
		return "one"
	}
	return "many"
}

// goodString: string switches carry no enum contract here.
func goodString(s string) bool {
	switch s {
	case "edge":
		return true
	}
	return false
}

// Fixture for the mutexdiscipline check: every Lock released on every
// path, no double locking, no by-value mutex passing.
package mutexdiscipline

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// goodDefer is the canonical pattern.
func goodDefer(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// goodExplicit releases before every exit without defer.
func goodExplicit(b *box) int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n
}

// goodEarlyReturn unlocks on the error path and the happy path.
func goodEarlyReturn(b *box, fail bool) error {
	b.mu.Lock()
	if fail {
		b.mu.Unlock()
		return errFail
	}
	b.n++
	b.mu.Unlock()
	return nil
}

// badLeakOnReturn forgets the error path.
func badLeakOnReturn(b *box, fail bool) error {
	b.mu.Lock() // want `b.mu is still locked at the return on line \d+`
	if fail {
		return errFail
	}
	b.mu.Unlock()
	return nil
}

// badNeverUnlocks holds the lock past the end of the function.
func badNeverUnlocks(b *box) {
	b.mu.Lock() // want `b.mu is still locked at end of function`
	b.n++
}

// badDoubleLock self-deadlocks.
func badDoubleLock(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want `b.mu is locked again while already held`
	b.n++
	b.mu.Unlock()
	b.mu.Unlock()
}

// badReaderLeak covers the RLock/RUnlock pair separately.
func badReaderLeak(b *box) int {
	b.rw.RLock() // want `b.rw is still locked at the return on line \d+`
	return b.n
}

// goodReader pairs the reader half correctly.
func goodReader(b *box) int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

// goodClosureDefer releases through a deferred closure.
func goodClosureDefer(b *box) int {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
	return b.n
}

// badByValueParam copies the mutex with the struct.
func badByValueParam(b box) int { // want `parameter passes .*\.box by value, copying its mutex`
	return b.n
}

// badByValueRecv copies it through the receiver.
func (b box) badByValueRecv() int { // want `receiver passes .*\.box by value, copying its mutex`
	return b.n
}

// goodPointerParam is the fix for both.
func goodPointerParam(b *box) int {
	return b.n
}

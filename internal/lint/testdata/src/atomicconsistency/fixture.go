// Fixture for the atomicconsistency check: objects touched through
// sync/atomic must never be read or written plainly, and typed atomics
// must not be copied by value.
package atomicconsistency

import "sync/atomic"

type stats struct {
	hits  uint64
	total atomic.Uint64
	name  string
}

var global int64

// add uses the atomic functions — the access that puts s.hits and global
// into the atomically-accessed set.
func add(s *stats) {
	atomic.AddUint64(&s.hits, 1)
	atomic.AddInt64(&global, 1)
}

// goodLoad stays on the atomic side everywhere.
func goodLoad(s *stats) uint64 {
	return atomic.LoadUint64(&s.hits) + s.total.Load()
}

// badPlainRead tears against concurrent add calls.
func badPlainRead(s *stats) uint64 {
	return s.hits // want `hits is accessed with sync/atomic elsewhere`
}

// badPlainWrite is the write-side tear.
func badPlainWrite(s *stats) {
	s.hits = 0 // want `hits is accessed with sync/atomic elsewhere`
}

// badGlobal covers package-level variables, not just fields.
func badGlobal() int64 {
	return global // want `global is accessed with sync/atomic elsewhere`
}

// badCopy copies a typed atomic out from under concurrent writers.
func badCopy(s *stats) uint64 {
	c := s.total // want `total has atomic type sync/atomic.Uint64`
	return c.Load()
}

// goodInit initializes via a composite-literal key, which happens before
// the value is shared and is exempt.
func goodInit() *stats {
	return &stats{hits: 0, name: "fresh"}
}

// goodUnrelated shows plainly-used fields stay unflagged.
func goodUnrelated(s *stats) string {
	return s.name
}

// Fixture for the goroleak check in csce/internal/obs/export: the span
// exporter's sender loop runs for the life of the process, so an exporter
// goroutine that cannot observe Shutdown pins its queue, HTTP client, and
// every batched span until process death.
package export

import "time"

type batch struct{ spans []int }

func post(b batch) {}

// badSenderForever encodes and POSTs in an unbounded loop with nothing a
// Shutdown can reach — the drain in Shutdown waits forever.
func badSenderForever(pending batch) {
	go func() { // want `goroutine loops forever with no exit path`
		for {
			post(pending)
			time.Sleep(time.Millisecond)
		}
	}()
}

// badQueueSendOnly only sends into the queue; holding the channel without
// receiving gives close(queue) nothing to unblock.
func badQueueSendOnly(queue chan<- batch, b batch) {
	go func() { // want `goroutine loops forever with no exit path`
		for {
			queue <- b
		}
	}()
}

// goodSenderLoop mirrors the real exporter shape: select over the queue
// and a close-able stop channel, draining what remains before returning.
func goodSenderLoop(queue chan batch, stop chan struct{}) {
	go func() {
		for {
			select {
			case b := <-queue:
				post(b)
			case <-stop:
				for {
					select {
					case b := <-queue:
						post(b)
					default:
						return
					}
				}
			}
		}
	}()
}

// goodRangeQueue drains until the producer closes the queue.
func goodRangeQueue(queue chan batch) {
	go func() {
		for b := range queue {
			post(b)
		}
	}()
}

// goodBoundedRetry terminates on its own after the attempt budget.
func goodBoundedRetry(b batch, attempts int) {
	go func() {
		for i := 0; i < attempts; i++ {
			post(b)
		}
	}()
}

// Fixture for the goroleak check: unbounded goroutine loops must observe
// a ctx.Done()/channel-close exit path. The package path matters — the
// check covers internal/{server,live,shard} and cmd.
package server

import (
	"context"
	"time"
)

func poll() {}

// badForever has no exit path at all: Close/Shutdown cannot stop it.
func badForever() {
	go func() { // want `goroutine loops forever with no exit path`
		for {
			poll()
			time.Sleep(time.Millisecond)
		}
	}()
}

// badSendOnly only sends; holding a channel without receiving gives the
// loop nothing a close can unblock (this is the case ctxpropagation's
// weaker reference-only rule accepts).
func badSendOnly(out chan<- int) {
	go func() { // want `goroutine loops forever with no exit path`
		for {
			out <- 1
		}
	}()
}

// goodCtxSelect consults the context every iteration.
func goodCtxSelect(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				poll()
			}
		}
	}()
}

// goodDoneChannel blocks on a channel a close can release.
func goodDoneChannel(done chan struct{}, tick *time.Ticker) {
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				poll()
			}
		}
	}()
}

// goodRangeChannel drains until the producer closes the channel.
func goodRangeChannel(jobs chan int) {
	go func() {
		for range jobs {
			poll()
		}
	}()
}

// goodBounded terminates on its own; bounded loops need no exit signal.
func goodBounded() {
	go func() {
		for i := 0; i < 3; i++ {
			poll()
		}
	}()
}

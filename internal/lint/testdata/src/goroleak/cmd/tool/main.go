// The cmd half of the goroleak fixture: command binaries spawn workers of
// their own, so the check covers cmd/... too.
package main

import "time"

func tick() {}

func main() {
	go func() { // want `goroutine loops forever with no exit path`
		for {
			tick()
			time.Sleep(time.Second)
		}
	}()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tick()
			}
		}
	}()
	close(stop)
}

// Fixture with no findings: the end-to-end driver test proves cscelint
// exits zero on it with every check enabled.
package clean

import (
	"fmt"
	"sync"
	"sync/atomic"
)

type counterKind uint8

const (
	kindHits counterKind = iota
	kindMisses
)

type counters struct {
	mu     sync.Mutex
	byName map[string]uint64
	total  atomic.Uint64
}

// Bump updates both the locked map and the atomic total correctly.
func (c *counters) Bump(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byName == nil {
		c.byName = make(map[string]uint64)
	}
	c.byName[name]++
	c.total.Add(1)
}

// Total reads through the atomic's method.
func (c *counters) Total() uint64 { return c.total.Load() }

// Describe switches exhaustively.
func Describe(k counterKind) string {
	switch k {
	case kindHits:
		return "hits"
	case kindMisses:
		return "misses"
	}
	return fmt.Sprintf("counterKind(%d)", uint8(k))
}

// Fixture for //lint:ignore suppression: trailing and preceding-line
// directives suppress exactly their target line; anything else still
// fires.
package ignore

import "os"

// suppressedTrailing carries the directive on the offending line.
func suppressedTrailing(path string) {
	os.Remove(path) //lint:ignore errchecklite removal is best-effort cleanup
}

// suppressedPreceding carries the directive on the line above.
func suppressedPreceding(path string) {
	//lint:ignore errchecklite removal is best-effort cleanup
	os.Remove(path)
}

// notReached: a directive does not skip past an intervening line.
func notReached(path string) {
	//lint:ignore errchecklite directives target only the next line
	_ = path
	os.Remove(path) // want `os.Remove returns an error that is not checked`
}

// wrongCheck: suppressing a different check leaves the finding live.
func wrongCheck(path string) {
	os.Remove(path) //lint:ignore stdlibonly not the check that fires here // want `os.Remove returns an error that is not checked`
}

// unsuppressed is the control.
func unsuppressed(path string) {
	os.Remove(path) // want `os.Remove returns an error that is not checked`
}

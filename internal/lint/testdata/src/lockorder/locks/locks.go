// Package locks declares the named mutexes the lockorder fixture orders
// (and misorders) across packages.
package locks

import "sync"

// Pair carries the two mutexes involved in the seeded deadlock.
type Pair struct {
	MuA sync.Mutex
	MuB sync.Mutex
}

// P is the shared instance both packages lock.
var P Pair

// Good carries an independent mutex pair that is always taken in a
// consistent order; it must stay silent.
type Good struct {
	MuC sync.Mutex
	MuD sync.Mutex
}

// G is the shared consistent-order instance.
var G Good

// AcquireBThenA nests MuA under MuB — the direct half of the cycle.
func AcquireBThenA() {
	P.MuB.Lock()
	P.MuA.Lock()
	P.MuA.Unlock()
	P.MuB.Unlock()
}

// CThenD is the consistent order for the good pair.
func CThenD() {
	G.MuC.Lock()
	G.MuD.Lock()
	G.MuD.Unlock()
	G.MuC.Unlock()
}

// Package use closes the lock-order cycle from a different package than
// the one that opened it: the inversion is only visible to a module-wide
// graph with interprocedural summaries.
package use

import "csce/locks"

// AThenB holds MuA while calling into locks.AcquireBThenA, which takes
// MuB then MuA — so the module orders MuA before MuB here and MuB before
// MuA there. Two goroutines running the two paths deadlock.
func AThenB() {
	locks.P.MuA.Lock()
	locks.AcquireBThenA() // want `lock-order cycle \(potential deadlock\)`
	locks.P.MuA.Unlock()
}

// AlsoCThenD repeats the good pair's order from a second package; a
// consistent order never forms a cycle.
func AlsoCThenD() {
	locks.G.MuC.Lock()
	locks.G.MuD.Lock()
	locks.G.MuD.Unlock()
	locks.G.MuC.Unlock()
}

// Fixture for the stdlibonly check: stdlib and module-internal imports
// pass; anything third-party is flagged.
package stdlibonly

import (
	"fmt" // stdlib: ok

	"csce/util" // module-internal: ok

	_ "github.com/fake/dep" // want `import "github.com/fake/dep" is outside the standard library and module csce`
)

// Use keeps the legitimate imports referenced.
func Use() string {
	return fmt.Sprintf("%d", util.N)
}

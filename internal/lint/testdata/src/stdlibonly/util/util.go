// Package util exists so the fixture can prove module-internal imports
// are allowed.
package util

// N is referenced by the fixture's root package.
const N = 1

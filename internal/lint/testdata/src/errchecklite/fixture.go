// Fixture for the errchecklite check: dropped error results are flagged;
// explicit discards and the documented exclusions are not.
package errchecklite

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

// badDropped ignores the error accidentally.
func badDropped() {
	mayFail() // want `mayFail returns an error that is not checked`
}

// badDroppedPair ignores a multi-result error.
func badDroppedPair(path string) {
	os.Create(path) // want `os.Create returns an error that is not checked`
}

// goodHandled consumes the error.
func goodHandled() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := pair()
	_ = n
	return err
}

// goodExplicitDiscard makes ignoring visible.
func goodExplicitDiscard() {
	_ = mayFail()
	_, _ = pair()
}

// goodExclusions: print family and never-failing writers.
func goodExclusions(sb *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("hello")
	fmt.Printf("%d\n", 1)
	fmt.Fprintf(os.Stderr, "diag\n")
	sb.WriteString("x")
	buf.WriteByte('y')
}

// goodDeferredClose: defer statements are excluded by design.
func goodDeferredClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// Fixture for the errchecklite check: dropped error results are flagged;
// explicit discards and the documented exclusions are not.
package errchecklite

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

// badDropped ignores the error accidentally.
func badDropped() {
	mayFail() // want `mayFail returns an error that is not checked`
}

// badDroppedPair ignores a multi-result error.
func badDroppedPair(path string) {
	os.Create(path) // want `os.Create returns an error that is not checked`
}

// goodHandled consumes the error.
func goodHandled() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := pair()
	_ = n
	return err
}

// goodExplicitDiscard makes ignoring visible.
func goodExplicitDiscard() {
	_ = mayFail()
	_, _ = pair()
}

// goodExclusions: print family and never-failing writers.
func goodExclusions(sb *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("hello")
	fmt.Printf("%d\n", 1)
	fmt.Fprintf(os.Stderr, "diag\n")
	sb.WriteString("x")
	buf.WriteByte('y')
}

// goodDeferredClose: defer statements are excluded by design.
func goodDeferredClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// badFileIO: the durability paths. A dropped Sync, Rename, Flush, or
// non-deferred Close on a written file silently loses data — exactly the
// class of bug the WAL commit path must never contain.
func badFileIO(f *os.File, tmp, final string) {
	f.Sync()              // want `Sync returns an error that is not checked`
	os.Rename(tmp, final) // want `os.Rename returns an error that is not checked`
	bw := bufio.NewWriter(f)
	bw.Flush() // want `Flush returns an error that is not checked`
	f.Close()  // want `Close returns an error that is not checked`
}

// goodFileIO: the same operations with every error consumed, in the
// tmp-write / fsync / rename / fsync-dir shape the WAL checkpoint uses.
func goodFileIO(f *os.File, tmp, final string) error {
	bw := bufio.NewWriter(f)
	if _, err := bw.WriteString("payload"); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// Fixture for the refbalance check: every Acquire()d snapshot released on
// every path, the defer-in-loop and early-return traps, and the ownership
// transfers that legitimately end the obligation.
package refbalance

import "errors"

var errFail = errors.New("fail")

// Snapshot mirrors live.Snapshot structurally: a named type with a
// parameterless Release, which is what makes Acquire results tracked.
type Snapshot struct{ epoch uint64 }

func (s *Snapshot) Release()      {}
func (s *Snapshot) Epoch() uint64 { return s.epoch }

type Graph struct{}

func (g *Graph) Acquire() *Snapshot { return &Snapshot{} }

func consume(s *Snapshot)    {}
func work(epoch uint64) bool { return epoch > 0 }

// goodDefer is the canonical pattern.
func goodDefer(g *Graph) uint64 {
	snap := g.Acquire()
	defer snap.Release()
	return snap.Epoch()
}

// goodExplicit releases on both the error path and the happy path.
func goodExplicit(g *Graph, fail bool) error {
	snap := g.Acquire()
	if fail {
		snap.Release()
		return errFail
	}
	_ = snap.Epoch()
	snap.Release()
	return nil
}

// badEarlyReturn leaks on the error path: the return sits between Acquire
// and Release.
func badEarlyReturn(g *Graph, fail bool) error {
	snap := g.Acquire() // want `snap acquired here is not released at the return on line \d+`
	if fail {
		return errFail
	}
	snap.Release()
	return nil
}

// badDeferInLoop is the pile-up trap: the defer runs at function exit, so
// every iteration's snapshot stays pinned until the whole walk finishes.
func badDeferInLoop(g *Graph, n int) {
	for i := 0; i < n; i++ {
		snap := g.Acquire()   // want `snap is acquired inside the loop but still pinned at the end of the iteration`
		defer snap.Release()  // want `defer snap.Release\(\) inside a loop runs at function exit`
		_ = work(snap.Epoch())
	}
}

// badLoopNoRelease never releases the per-iteration snapshot at all.
func badLoopNoRelease(g *Graph, n int) {
	for i := 0; i < n; i++ {
		snap := g.Acquire() // want `snap is acquired inside the loop but still pinned at the end of the iteration`
		_ = work(snap.Epoch())
	}
}

// goodLoopRelease releases each iteration's snapshot before the next.
func goodLoopRelease(g *Graph, n int) {
	for i := 0; i < n; i++ {
		snap := g.Acquire()
		_ = work(snap.Epoch())
		snap.Release()
	}
}

// badDiscard throws the handle away; nothing can ever release it.
func badDiscard(g *Graph) {
	g.Acquire() // want `result of Acquire\(\) is discarded`
}

// badReassign overwrites a pinned handle: the first snapshot leaks.
func badReassign(g *Graph) {
	snap := g.Acquire()
	snap = g.Acquire() // want `snap is reassigned while the snapshot acquired at line \d+ is still pinned`
	snap.Release()
}

// goodTransferReturn hands the pinned snapshot to the caller; the
// obligation moves with it.
func goodTransferReturn(g *Graph) *Snapshot {
	snap := g.Acquire()
	return snap
}

// goodTransferMethodValue is the engineSnapshot pattern: the Release
// method value escapes, so the receiver of the closure releases.
func goodTransferMethodValue(g *Graph) (uint64, func()) {
	snap := g.Acquire()
	return snap.Epoch(), snap.Release
}

// goodTransferArg passes the handle along; the callee owns it now.
func goodTransferArg(g *Graph) {
	snap := g.Acquire()
	consume(snap)
}

// goodBranches releases in every switch arm.
func goodBranches(g *Graph, mode int) {
	snap := g.Acquire()
	switch mode {
	case 0:
		snap.Release()
	case 1:
		_ = work(snap.Epoch())
		snap.Release()
	default:
		snap.Release()
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicConsistency enforces the core rule of mixed-mode shared counters:
// once a variable or struct field is touched through sync/atomic it must
// never be read or written plainly again, anywhere in the package. A plain
// load next to atomic.AddUint64 compiles, passes most tests, and tears
// under load — the exact failure mode the serving layer's metrics and the
// parallel executor's slot counters would hit.
//
// Two field classes are covered:
//
//   - untyped fields/vars passed by address to the sync/atomic functions
//     (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&hits), ...): every
//     other appearance of the same object must also be an atomic call
//     argument. Composite-literal keys are exempt (pre-publication init).
//
//   - typed atomics (atomic.Int64, atomic.Uint64, atomic.Bool, ...): every
//     appearance must be a method call receiver or an address-of; anything
//     else copies the value out from under concurrent writers.
var AtomicConsistency = &Check{
	Name: "atomicconsistency",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicConsistency,
}

// atomicTypeNames are the typed atomics of sync/atomic.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
	"Pointer": true, "Value": true,
}

// isAtomicFuncCall reports whether call invokes one of sync/atomic's
// operation functions (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func (p *Package) isAtomicFuncCall(call *ast.CallExpr) bool {
	sel := calleeSelector(call)
	if sel == nil {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	imported := p.pkgNameOf(id)
	if imported == nil || imported.Path() != "sync/atomic" {
		return false
	}
	name := sel.Sel.Name
	for _, prefix := range [...]string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// isAtomicTyped reports whether t (after stripping pointers) is one of the
// sync/atomic struct types.
func isAtomicTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

func runAtomicConsistency(p *Pass) {
	// Objects (fields and variables) atomically accessed somewhere in the
	// package, and the identifier nodes that constitute those legitimate
	// atomic accesses.
	atomicObjs := map[types.Object]bool{}
	sanctioned := map[*ast.Ident]bool{}
	// Identifiers appearing as composite-literal keys: field names, not
	// accesses.
	litKeys := map[*ast.Ident]bool{}
	// Identifiers that are method-call receivers or address-of operands.
	type useCtx struct {
		methodRecv bool
		addressed  bool
	}
	use := map[*ast.Ident]useCtx{}

	// resolve maps the identifier of an expression like x, s.f, or (&s).f
	// to its object (variable or field).
	resolve := func(e ast.Expr) (*ast.Ident, types.Object) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj, ok := p.Info.Uses[e]; ok {
				return e, obj
			}
		case *ast.SelectorExpr:
			if selInfo, ok := p.Info.Selections[e]; ok && selInfo.Kind() == types.FieldVal {
				return e.Sel, selInfo.Obj()
			}
			if obj, ok := p.Info.Uses[e.Sel]; ok {
				if _, isVar := obj.(*types.Var); isVar {
					return e.Sel, obj
				}
			}
		}
		return nil, nil
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							litKeys[id] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					if id, _ := resolve(n.X); id != nil {
						c := use[id]
						c.addressed = true
						use[id] = c
					}
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if selInfo, ok := p.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
						if id, _ := resolve(sel.X); id != nil {
							c := use[id]
							c.methodRecv = true
							use[id] = c
						}
					}
				}
				if p.isAtomicFuncCall(n) {
					for _, arg := range n.Args {
						un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || un.Op.String() != "&" {
							continue
						}
						if id, obj := resolve(un.X); obj != nil {
							atomicObjs[obj] = true
							sanctioned[id] = true
						}
					}
				}
			}
			return true
		})
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || litKeys[id] {
				return true
			}
			obj, isUse := p.Info.Uses[id]
			if !isUse {
				return true
			}
			if atomicObjs[obj] && !sanctioned[id] {
				p.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere; plain access tears under concurrency (use the atomic functions here too)", id.Name)
				return true
			}
			v, isVar := obj.(*types.Var)
			if !isVar || !isAtomicTyped(v.Type()) {
				return true
			}
			// A typed atomic may only be a method receiver or have its
			// address taken; any other use copies the value.
			if _, isPtr := v.Type().(*types.Pointer); isPtr {
				return true // pointers to atomics copy freely
			}
			if c := use[id]; !c.methodRecv && !c.addressed {
				p.Reportf(id.Pos(), "%s has atomic type %s; use its methods instead of copying the value", id.Name, v.Type())
			}
			return true
		})
	}
}

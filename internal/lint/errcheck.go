package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckLite flags calls whose error result is silently dropped: a call
// with an error among its results used as a bare statement. Discarding
// explicitly (`_ = f()`, `v, _ := f()`) is allowed — the point is that
// ignoring an error must be a visible decision, not an accident.
//
// Deliberate exclusions, to keep every finding actionable:
//   - the fmt print family (terminal/diagnostic output);
//   - methods on strings.Builder and bytes.Buffer, documented to never
//     return an error;
//   - defer and go statements (a deferred Close on a read-only file is
//     idiomatic; writers needing a checked Close already use explicit
//     Close-and-check, which this check enforces by flagging the bare
//     variant).
var ErrcheckLite = &Check{
	Name: "errchecklite",
	Doc:  "error returns must be consumed or explicitly discarded with _ =",
	Run:  runErrcheckLite,
}

func runErrcheckLite(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || excludedCall(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "%s returns an error that is not checked (handle it or discard with _ =)", calleeName(call))
			return true
		})
	}
}

// returnsError reports whether the call has error among its results.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error" // the universe error type
}

// excludedCall applies the deliberate exclusion list.
func excludedCall(p *Pass, call *ast.CallExpr) bool {
	sel := calleeSelector(call)
	if sel == nil {
		return false
	}
	// fmt print family.
	if id, ok := sel.X.(*ast.Ident); ok {
		if imported := p.pkgNameOf(id); imported != nil && imported.Path() == "fmt" {
			if strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint") {
				return true
			}
		}
	}
	// Never-failing writers.
	if recv := p.Info.Types[sel.X].Type; recv != nil {
		if namedTypeIn(recv, "strings", "Builder") || namedTypeIn(recv, "bytes", "Buffer") {
			return true
		}
	}
	return false
}

// calleeName renders the called expression for the diagnostic.
func calleeName(call *ast.CallExpr) string {
	if key, ok := exprKey(call.Fun); ok {
		return key
	}
	if sel := calleeSelector(call); sel != nil {
		return sel.Sel.Name
	}
	return "call"
}

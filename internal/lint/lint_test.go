package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// goldenChecks maps each fixture directory under testdata/src to the
// checks run over it. Fixtures named after a check exercise that check;
// the ignore fixture proves suppression against errchecklite.
var goldenChecks = map[string][]string{
	"stdlibonly":        {"stdlibonly"},
	"atomicconsistency": {"atomicconsistency"},
	"mutexdiscipline":   {"mutexdiscipline"},
	"ctxpropagation":    {"ctxpropagation"},
	"enumexhaustive":    {"enumexhaustive"},
	"errchecklite":      {"errchecklite"},
	"ignore":            {"errchecklite"},
	"allocfree":         {"allocfree"},
	"refbalance":        {"refbalance"},
	"lockorder":         {"lockorder"},
	"goroleak":          {"goroleak"},
	"doccomment":        {"doccomment"},
}

// wantRe matches golden expectations: want `regex`, repeatable within one
// comment.
var wantRe = regexp.MustCompile("want\\s+`([^`]+)`")

// expectation is one want annotation, consumed when a diagnostic on its
// line matches.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func loadFixture(t *testing.T, name string, checkNames []string) ([]Diagnostic, []*Package) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	var checks []*Check
	for _, cn := range checkNames {
		c, ok := CheckByName(cn)
		if !ok {
			t.Fatalf("unknown check %q", cn)
		}
		checks = append(checks, c)
		if c == AllocFree {
			if err := AttachAllocs(dir, pkgs, "./..."); err != nil {
				t.Fatalf("AttachAllocs(%s): %v", dir, err)
			}
		}
	}
	return Run(pkgs, checks), pkgs
}

// collectWants extracts the want annotations from a loaded fixture.
func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", m[1], err)
						}
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

// TestGolden proves each check fires on its seeded violations and stays
// silent on the correct code in the same fixture.
func TestGolden(t *testing.T) {
	names := make([]string, 0, len(goldenChecks))
	for name := range goldenChecks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			diags, pkgs := loadFixture(t, name, goldenChecks[name])
			wants := collectWants(t, pkgs)
			for _, d := range diags {
				rendered := fmt.Sprintf("[%s] %s", d.Check, d.Message)
				found := false
				for _, w := range wants {
					if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(rendered) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.pattern)
				}
			}
		})
	}
}

// TestMalformedDirectives asserts the two "directive" diagnostics (and
// the findings the bad directives fail to suppress) programmatically; a
// want annotation cannot live inside the directive comment it describes.
func TestMalformedDirectives(t *testing.T) {
	diags, _ := loadFixture(t, "directive", []string{"errchecklite"})
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:[%s]", d.Pos.Line, d.Check))
	}
	want := []string{
		"10:[errchecklite]", // the invalid directive suppresses nothing
		"10:[directive]",    // missing reason
		"16:[errchecklite]",
		"16:[directive]", // unknown check name
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("directive fixture: got %v, want %v", got, want)
	}
	for _, d := range diags {
		if d.Check != "directive" {
			continue
		}
		if !strings.Contains(d.Message, "lint:ignore") {
			t.Errorf("directive diagnostic should explain the syntax, got %q", d.Message)
		}
	}
}

// TestAllocBudgetDiscipline drives the two budget failure modes that
// cannot carry want annotations (they are reported at ALLOC_BUDGET.json,
// not at a Go line): a stale entry fails the run, and removing the escape
// data turns annotated functions into loud configuration findings.
func TestAllocBudgetDiscipline(t *testing.T) {
	dir := filepath.Join("testdata", "src", "allocfree")
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Without AttachAllocs the gate must not silently pass.
	diags := Run(pkgs, []*Check{AllocFree})
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "escape analysis was not loaded") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing escape data should be a loud configuration finding, got %v", diags)
	}

	// A budget entry matching no site is stale and fails the run. Point a
	// doctored module at the same sources via an overlay directory.
	stale := t.TempDir()
	for _, name := range []string{"go.mod", "fixture.go"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(stale, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	budget := `{"schema_version":1,"allocations":[` +
		`{"func":"csce.pinnedHot","alloc":"make([]int, 0, n)","count":1,"why":"real"},` +
		`{"func":"csce.goodHot","alloc":"make([]int, 99)","count":1,"why":"stale: goodHot allocates nothing"}]}`
	if err := os.WriteFile(filepath.Join(stale, "ALLOC_BUDGET.json"), []byte(budget), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err = Load(stale, "./...")
	if err != nil {
		t.Fatalf("Load(stale): %v", err)
	}
	if err := AttachAllocs(stale, pkgs, "./..."); err != nil {
		t.Fatalf("AttachAllocs(stale): %v", err)
	}
	var staleFindings, unexpected []string
	for _, d := range Run(pkgs, []*Check{AllocFree}) {
		switch {
		case strings.Contains(d.Message, "stale budget entry"):
			staleFindings = append(staleFindings, d.Message)
		case strings.Contains(d.Message, "badHot"),
			strings.Contains(d.Message, "badCheckCascade"):
			// The seeded regressions still fire alongside.
		default:
			unexpected = append(unexpected, d.String())
		}
	}
	if len(staleFindings) != 1 || !strings.Contains(staleFindings[0], "csce.goodHot") {
		t.Errorf("want exactly one stale-entry finding for csce.goodHot, got %v", staleFindings)
	}
	if len(unexpected) > 0 {
		t.Errorf("unexpected findings: %v", unexpected)
	}
}

// TestCheckRegistry keeps the suite's shape stable: at least the six
// documented checks, unique names, resolvable via CheckByName.
func TestCheckRegistry(t *testing.T) {
	checks := Checks()
	if len(checks) < 6 {
		t.Fatalf("suite has %d checks, want >= 6", len(checks))
	}
	seen := map[string]bool{}
	for _, c := range checks {
		if c.Name == "" || c.Doc == "" {
			t.Errorf("check %+v lacks a name or doc", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
		got, ok := CheckByName(c.Name)
		if !ok || got != c {
			t.Errorf("CheckByName(%q) did not round-trip", c.Name)
		}
	}
	if _, ok := CheckByName("nosuchcheck"); ok {
		t.Error("CheckByName accepted an unknown name")
	}
}

// TestLoadRepo loads the real module and sanity-checks the result shape:
// packages parsed, typechecked, and stdlib classification present. The
// full clean-repo guarantee lives in the cmd/cscelint end-to-end test.
func TestLoadRepo(t *testing.T) {
	pkgs, err := Load("../..", "./internal/lint")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "csce/internal/lint" || p.ModulePath != "csce" {
		t.Fatalf("unexpected identity %q in module %q", p.Path, p.ModulePath)
	}
	if len(p.Files) == 0 || len(p.Files) != len(p.Filenames) {
		t.Fatalf("files/filenames mismatch: %d vs %d", len(p.Files), len(p.Filenames))
	}
	if !p.Stdlib["go/ast"] || p.Stdlib["csce/internal/graph"] {
		t.Fatal("stdlib classification is wrong")
	}
	// Typechecking really happened: the AST resolves through go/types.
	resolved := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] != nil {
				resolved = true
			}
			return !resolved
		})
	}
	if !resolved {
		t.Fatal("no identifiers resolved; typechecking failed silently")
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DocComment enforces godoc discipline on the durability surface. The
// persisted resume log and the incremental checkpoint chain turned
// internal/live into the package operators reason about during recovery,
// and internal/prefilter exports the admission-signature API the server
// composes; both are read far more often than they are edited, usually
// under incident pressure. An exported identifier without a doc comment
// there forces the reader back into the implementation to learn a
// contract (what a CheckpointMode means for data loss, when a resume
// window is Lost versus Restored) that should be one hover away.
//
// The rule, per in-scope package:
//
//   - the package itself must carry a package comment on at least one
//     file;
//   - every exported top-level func — and every exported method on an
//     exported receiver type — must have a doc comment;
//   - every exported top-level type, const, and var must be covered by a
//     doc comment on its declaration group or on its own spec;
//   - a doc comment on a single-name declaration must mention that name,
//     so a comment copy-pasted from a sibling cannot satisfy the check.
//
// Methods on unexported receivers are skipped (String, Less, and friends
// implement interfaces; their contract is the interface's). Struct fields
// and interface methods are godoc-visible but left to review: field-level
// enforcement would force comment noise onto self-describing fields.
var DocComment = &Check{
	Name: "doccomment",
	Doc:  "exported identifiers in the live/prefilter packages must carry godoc comments",
	Run:  runDocComment,
}

// docCommentPkgs scopes the check to the packages whose exported API the
// durability work made operator-facing.
var docCommentPkgs = []string{"internal/live", "internal/prefilter"}

func runDocComment(p *Pass) {
	if !pkgInScope(p.Package, docCommentPkgs) {
		return
	}
	hasPkgDoc := false
	for _, f := range p.Files {
		if f.Doc != nil {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc && len(p.Files) > 0 {
		// Report once, at the package clause of the first file.
		p.Reportf(p.Files[0].Name.Pos(), "package %s has no package comment on any file", p.Files[0].Name.Name)
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(p, d)
			case *ast.GenDecl:
				checkGenDoc(p, d)
			}
		}
	}
}

// checkFuncDoc applies the rule to one function or method declaration.
func checkFuncDoc(p *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	kind := "function "
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !token.IsExported(recv) {
			// Exported methods on unexported types usually satisfy an
			// interface; their doc home is the interface.
			return
		}
		kind = "method " + recv + "."
	}
	if d.Doc == nil {
		p.Reportf(d.Name.Pos(), "exported %s%s has no doc comment", kind, d.Name.Name)
		return
	}
	if !docMentions(d.Doc, d.Name.Name) {
		p.Reportf(d.Name.Pos(), "doc comment on exported %s%s does not mention %q", kind, d.Name.Name, d.Name.Name)
	}
}

// checkGenDoc applies the rule to a type/const/var declaration: the group
// doc covers every spec; otherwise each spec with an exported name needs
// its own.
func checkGenDoc(p *Pass, d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		var names []*ast.Ident
		var doc *ast.CommentGroup
		switch s := spec.(type) {
		case *ast.TypeSpec:
			names, doc = []*ast.Ident{s.Name}, s.Doc
		case *ast.ValueSpec:
			names, doc = s.Names, s.Doc
		}
		var exported *ast.Ident
		for _, n := range names {
			if n.IsExported() {
				exported = n
				break
			}
		}
		if exported == nil {
			continue
		}
		covering := doc
		if covering == nil {
			covering = d.Doc
		}
		if covering == nil {
			p.Reportf(exported.Pos(), "exported %s %s has no doc comment on its declaration or group", d.Tok, exported.Name)
			continue
		}
		// For a lone exported name the comment must actually be about it.
		// Grouped const/var runs (enumerations under one group doc) are
		// exempt from the mention rule: the group comment names the family.
		if len(names) == 1 && doc != nil && !docMentions(doc, exported.Name) {
			p.Reportf(exported.Pos(), "doc comment on exported %s %s does not mention %q", d.Tok, exported.Name, exported.Name)
		}
	}
}

// receiverTypeName unwraps the receiver's base type identifier, looking
// through pointers and type-parameter instantiations.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// docMentions reports whether the comment group contains name as a whole
// word, so `// Foos do X` does not satisfy Foo's sibling Food.
func docMentions(doc *ast.CommentGroup, name string) bool {
	text := doc.Text()
	for i := 0; ; {
		j := strings.Index(text[i:], name)
		if j < 0 {
			return false
		}
		j += i
		end := j + len(name)
		before := j == 0 || !identByte(text[j-1])
		after := end == len(text) || !identByte(text[end])
		if before && after {
			return true
		}
		i = j + 1
	}
}

// identByte reports whether b can extend a Go identifier (ASCII view —
// fixture and repo identifiers are ASCII).
func identByte(b byte) bool {
	return b == '_' ||
		('0' <= b && b <= '9') || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z')
}

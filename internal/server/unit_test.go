package server

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/plan"
)

func TestAdmissionFastPathAndQueue(t *testing.T) {
	a := newAdmission(2, 1)
	if err := a.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := a.inFlight(); got != 2 {
		t.Fatalf("inFlight = %d, want 2", got)
	}

	// Third caller queues; it gets the slot when one is released.
	acquired := make(chan error, 1)
	go func() { acquired <- a.admit(context.Background()) }()
	for a.queued() != 1 {
		runtime.Gosched()
	}
	// Fourth caller exceeds queueDepth=1 and is rejected immediately.
	if err := a.admit(context.Background()); err != ErrQueueFull {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if a.rejectedTotal() != 1 {
		t.Fatalf("rejectedTotal = %d, want 1", a.rejectedTotal())
	}
	a.release()
	if err := <-acquired; err != nil {
		t.Fatalf("queued caller should get the freed slot: %v", err)
	}
	a.release()
	a.release()
	if got := a.inFlight(); got != 0 {
		t.Fatalf("inFlight = %d, want 0", got)
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- a.admit(ctx) }()
	for a.queued() != 1 {
		runtime.Gosched()
	}
	cancel()
	if err := <-res; err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	a.release()
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2)
	p1, p2, p3 := &plan.Plan{}, &plan.Plan{}, &plan.Plan{}
	c.put("a", p1)
	c.put("b", p2)
	if pl, ok := c.get("a"); !ok || pl != p1 {
		t.Fatal("a should be cached")
	}
	c.put("c", p3) // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was recently used and must survive")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if c.hits.Load() != 2 || c.misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", c.hits.Load(), c.misses.Load())
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	c := newPlanCache(-1)
	c.put("a", &plan.Plan{})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache must always miss")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache must stay empty")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := newPlanCache(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := "k" + strconv.Itoa(j%16)
				if _, ok := c.get(key); !ok {
					c.put(key, &plan.Plan{})
				}
			}
		}(i)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Fatalf("cache exceeded capacity: %d", c.len())
	}
}

func TestPlanKeyDistinguishes(t *testing.T) {
	path := graph.MustParse(pathPattern3)
	tri := graph.MustParse(triPattern)
	base := planKey("g", 0, graph.EdgeInduced, plan.ModeCSCE, path)
	for name, other := range map[string]string{
		"pattern": planKey("g", 0, graph.EdgeInduced, plan.ModeCSCE, tri),
		"variant": planKey("g", 0, graph.Homomorphic, plan.ModeCSCE, path),
		"mode":    planKey("g", 0, graph.EdgeInduced, plan.ModeRI, path),
		"graph":   planKey("h", 0, graph.EdgeInduced, plan.ModeCSCE, path),
		"epoch":   planKey("g", 1, graph.EdgeInduced, plan.ModeCSCE, path),
	} {
		if other == base {
			t.Errorf("planKey must distinguish by %s", name)
		}
	}
	if planKey("g", 0, graph.EdgeInduced, plan.ModeCSCE, graph.MustParse(pathPattern3)) != base {
		t.Error("equal patterns must share a key")
	}
}

func TestRegistryDuplicateAndList(t *testing.T) {
	r := NewRegistry()
	g := graph.Clique(4, 0)
	g.Names = NumericLabels(g)
	eng := core.NewEngine(g)
	if _, err := r.Add("g", eng); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("g", eng); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if _, err := r.Add("", eng); err == nil {
		t.Fatal("empty name must fail")
	}
	if r.Len() != 1 || len(r.List()) != 1 {
		t.Fatal("registry size wrong")
	}
	e, ok := r.Get("g")
	if !ok || e.Directed {
		t.Fatalf("entry wrong: %+v", e)
	}
	if v, ed, _ := e.Counts(); v != 4 || ed != 6 {
		t.Fatalf("entry counts wrong: %d vertices, %d edges", v, ed)
	}
	if e.Epoch() != 0 {
		t.Fatalf("fresh entry epoch %d", e.Epoch())
	}
}

func TestNumericLabelsIdentity(t *testing.T) {
	b := graph.NewBuilder(false)
	for i := 0; i < 4; i++ {
		b.AddVertex(graph.Label(i % 3))
	}
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 0)
	g := b.MustBuild()
	tbl := NumericLabels(g)
	for i := 0; i < 3; i++ {
		if got := tbl.Vertex(strconv.Itoa(i)); got != graph.Label(i) {
			t.Fatalf("vertex label %d interned as %d", i, got)
		}
	}
	if got := tbl.Edge("2"); got != graph.EdgeLabel(2) {
		t.Fatalf("edge label 2 interned as %d", got)
	}
	// A pattern parsed with the table matches the numeric data labels.
	p, err := graph.ParseStringWith("t undirected\nv 0 0\nv 1 1\ne 0 1 2\n", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if p.Label(0) != 0 || p.Label(1) != 1 {
		t.Fatalf("pattern labels %d,%d", p.Label(0), p.Label(1))
	}
}

package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"csce/internal/graph"
	"csce/internal/plan"
)

// planCache is a bounded LRU of optimized plans keyed by (graph name,
// variant, plan mode, pattern signature). GCF + DAG + LDSF optimization is
// pure pattern/store analysis, so a repeated pattern can skip the whole
// plan stage; the cached *plan.Plan is read-only during execution and safe
// to share across concurrent queries.
//
// The key carries the graph's snapshot epoch: a plan optimized against
// one epoch's cluster statistics stays structurally valid after a
// mutation commits, but its tie-breaks may drift from optimal, so each
// epoch re-optimizes once and superseded epochs' plans age out of the
// LRU.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type planCacheEntry struct {
	key string
	pl  *plan.Plan
}

// newPlanCache returns a cache holding up to capacity plans; capacity <= 0
// disables caching (every lookup misses, puts are dropped).
func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *planCache) get(key string) (*plan.Plan, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*planCacheEntry).pl, true
}

func (c *planCache) put(key string, pl *plan.Plan) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planCacheEntry).pl = pl
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planCacheEntry{key: key, pl: pl})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*planCacheEntry).key)
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// planKey serializes the identity of a plan: graph name, snapshot epoch,
// variant, mode, and the pattern's exact structure (directedness, vertex
// labels, labeled edge list in deterministic adjacency order). Two
// textually different requests with the same parsed pattern share a key;
// isomorphic but differently numbered patterns intentionally do not —
// canonical-form hashing is not worth its cost at serving time.
func planKey(graphName string, epoch uint64, variant graph.Variant, mode plan.Mode, p *graph.Graph) string {
	var b strings.Builder
	b.Grow(64 + 8*p.NumVertices() + 12*p.NumEdges())
	b.WriteString(graphName)
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(epoch, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(variant)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(mode)))
	b.WriteByte('|')
	if p.Directed() {
		b.WriteByte('d')
	} else {
		b.WriteByte('u')
	}
	b.WriteByte('|')
	for v := 0; v < p.NumVertices(); v++ {
		b.WriteString(strconv.Itoa(int(p.Label(graph.VertexID(v)))))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	p.Edges(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		b.WriteString(strconv.Itoa(int(src)))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(int(dst)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(el)))
		b.WriteByte(';')
	})
	return b.String()
}

package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"csce/internal/graph"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestMetricsDocumentSchema pins the /metrics contract: counters and gauges
// stay at the top level (what existing scrapers read), and the latency
// block nests per-phase and per-endpoint histogram quantiles.
func TestMetricsDocumentSchema(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"tiny": graph.Clique(8, 0)})
	// One real query so the phase histograms have observations.
	_, summary := readStream(t, postMatch(t, base, "tiny", pathPattern2, nil))
	if summary == nil {
		t.Fatal("no summary line")
	}

	doc := getMetrics(t, base)
	topLevel := []string{
		"queries_total", "queries_ok", "queries_rejected", "queries_cancelled",
		"queries_timed_out", "queries_bad_request", "queries_errored", "slow_queries",
		"embeddings_emitted", "exec_steps", "candidate_reuses", "exec_micros", "plan_micros",
		"plan_cache_size", "plan_cache_hits", "plan_cache_misses",
		"in_flight", "queued", "match_slots", "queue_depth", "graphs", "uptime_seconds",
		"slow_query_threshold_ms", "slowlog_len",
	}
	for _, key := range topLevel {
		if _, ok := doc[key]; !ok {
			t.Errorf("/metrics missing top-level key %q", key)
		}
	}

	latency, ok := doc["latency"].(map[string]any)
	if !ok {
		t.Fatalf("latency block missing or not an object: %v", doc["latency"])
	}
	phases, ok := latency["phases"].(map[string]any)
	if !ok {
		t.Fatalf("latency.phases missing: %v", latency)
	}
	histKeys := []string{"count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"}
	for _, phase := range []string{"admission", "plan", "exec", "stream", "total"} {
		h, ok := phases[phase].(map[string]any)
		if !ok {
			t.Fatalf("latency.phases.%s missing: %v", phase, phases)
		}
		for _, key := range histKeys {
			if _, ok := h[key]; !ok {
				t.Errorf("latency.phases.%s missing %q: %v", phase, key, h)
			}
		}
		// The match query passed through every phase exactly once.
		if count := h["count"].(float64); count != 1 {
			t.Errorf("latency.phases.%s.count = %v, want 1", phase, count)
		}
	}
	endpoints, ok := latency["endpoints"].(map[string]any)
	if !ok {
		t.Fatalf("latency.endpoints missing: %v", latency)
	}
	for _, ep := range []string{"match", "graphs", "metrics", "healthz", "slowlog"} {
		if _, ok := endpoints[ep].(map[string]any); !ok {
			t.Errorf("latency.endpoints.%s missing: %v", ep, endpoints)
		}
	}
	if c := endpoints["match"].(map[string]any)["count"].(float64); c != 1 {
		t.Errorf("endpoint match count = %v, want 1", c)
	}
	// p50 ≤ p90 ≤ p99 ≤ max on the total phase.
	th := phases["total"].(map[string]any)
	p50, p90 := th["p50_ms"].(float64), th["p90_ms"].(float64)
	p99, max := th["p99_ms"].(float64), th["max_ms"].(float64)
	if p50 > p90 || p90 > p99 || p99 > max {
		t.Errorf("total quantiles not monotone: p50=%v p90=%v p99=%v max=%v", p50, p90, p99, max)
	}
}

// TestTraceIDCorrelation verifies the one-grep contract: the same 16-hex
// trace ID appears in the X-Trace-Id response header, the NDJSON summary,
// and the structured log line for the query.
func TestTraceIDCorrelation(t *testing.T) {
	logBuf := &syncBuffer{}
	base, _ := startServer(t,
		Config{Logger: slog.New(slog.NewTextHandler(logBuf, nil))},
		map[string]*graph.Graph{"tiny": graph.Clique(8, 0)})

	resp := postMatch(t, base, "tiny", pathPattern2, nil)
	headerID := resp.Header.Get("X-Trace-Id")
	if !traceIDRe.MatchString(headerID) {
		t.Fatalf("X-Trace-Id %q is not 16 hex chars", headerID)
	}
	_, summary := readStream(t, resp)
	if summary["trace_id"] != headerID {
		t.Fatalf("summary trace_id %v != header %q", summary["trace_id"], headerID)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "trace_id="+headerID) {
		t.Fatalf("log output lacks trace_id=%s:\n%s", headerID, logged)
	}
	if !strings.Contains(logged, "outcome=ok") {
		t.Fatalf("log output lacks outcome=ok:\n%s", logged)
	}

	// A second query gets a distinct ID.
	resp2 := postMatch(t, base, "tiny", pathPattern2, nil)
	second := resp2.Header.Get("X-Trace-Id")
	readStream(t, resp2)
	if second == headerID {
		t.Fatalf("two queries share trace ID %q", second)
	}
}

// TestProfileInlineOutput exercises ?profile=1 — the EXPLAIN ANALYZE path:
// the summary gains a per-level profile (one row per plan position, with
// the SCE counters) and the trace's phase spans, including the spans
// recorded inside core and exec, proving the context propagated the trace
// through every layer.
func TestProfileInlineOutput(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"tiny": graph.Clique(8, 0)})

	resp := postMatch(t, base, "tiny", pathPattern3, url.Values{"profile": {"1"}})
	_, summary := readStream(t, resp)
	if summary == nil {
		t.Fatal("no summary line")
	}
	levels, ok := summary["profile"].([]any)
	if !ok || len(levels) != 3 {
		t.Fatalf("profile should have 3 levels (one per pattern vertex): %v", summary["profile"])
	}
	var steps float64
	for i, raw := range levels {
		lv, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("profile level %d not an object: %v", i, raw)
		}
		for _, key := range []string{"pos", "vertex", "steps", "candidate_builds",
			"candidate_reuses", "nec_shares", "candidate_total", "factorized"} {
			if _, ok := lv[key]; !ok {
				t.Errorf("profile level %d missing %q: %v", i, key, lv)
			}
		}
		if lv["pos"].(float64) != float64(i) {
			t.Errorf("profile level %d has pos %v", i, lv["pos"])
		}
		steps += lv["steps"].(float64)
	}
	if steps == 0 {
		t.Error("profile recorded zero steps for a non-empty search")
	}
	if steps != summary["steps"].(float64) {
		t.Errorf("per-level steps sum to %v, summary says %v", steps, summary["steps"])
	}

	spans, ok := summary["spans"].(map[string]any)
	if !ok {
		t.Fatalf("spans missing from profiled summary: %v", summary)
	}
	for _, name := range []string{"admission", "plan", "core.read", "core.plan", "exec.search"} {
		if _, ok := spans[name]; !ok {
			t.Errorf("spans missing %q (trace did not propagate): %v", name, spans)
		}
	}

	// Without the flag neither key appears.
	_, plain := readStream(t, postMatch(t, base, "tiny", pathPattern3, nil))
	if _, ok := plain["profile"]; ok {
		t.Error("profile present without ?profile=1")
	}
	if _, ok := plain["spans"]; ok {
		t.Error("spans present without ?profile=1")
	}

	// A malformed value is a 400, not a silent default.
	bad := postMatch(t, base, "tiny", pathPattern3, url.Values{"profile": {"2"}})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("profile=2 gave status %d, want 400", bad.StatusCode)
	}
}

// TestSlowQueryCaptured drops the threshold so every query qualifies and
// verifies the full slow-query path: capture with the query's trace ID
// (matching the response header), phase spans, plan summary, and per-level
// profile; the slow_queries counter and the warn-level log line move too.
func TestSlowQueryCaptured(t *testing.T) {
	logBuf := &syncBuffer{}
	base, _ := startServer(t,
		Config{SlowQueryThreshold: time.Nanosecond,
			Logger: slog.New(slog.NewTextHandler(logBuf, nil))},
		map[string]*graph.Graph{"tiny": graph.Clique(8, 0)})

	resp := postMatch(t, base, "tiny", triPattern, nil)
	headerID := resp.Header.Get("X-Trace-Id")
	readStream(t, resp)

	slowResp, err := http.Get(base + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer slowResp.Body.Close()
	var doc struct {
		ThresholdMs float64 `json:"threshold_ms"`
		Total       uint64  `json:"total"`
		Records     []struct {
			Seq     uint64         `json:"seq"`
			TraceID string         `json:"trace_id"`
			Graph   string         `json:"graph"`
			Outcome string         `json:"outcome"`
			Spans   []any          `json:"spans"`
			Detail  map[string]any `json:"detail"`
		} `json:"records"`
	}
	if err := json.NewDecoder(slowResp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 1 || len(doc.Records) != 1 {
		t.Fatalf("slowlog should hold exactly the one query: %+v", doc)
	}
	rec := doc.Records[0]
	if rec.TraceID != headerID {
		t.Fatalf("slowlog trace_id %q != response header %q", rec.TraceID, headerID)
	}
	if rec.Graph != "tiny" || rec.Outcome != "ok" {
		t.Fatalf("slowlog record wrong: %+v", rec)
	}
	if len(rec.Spans) == 0 {
		t.Fatal("slowlog record has no spans")
	}
	for _, key := range []string{"pattern", "params", "plan", "profile", "steps"} {
		if _, ok := rec.Detail[key]; !ok {
			t.Errorf("slowlog detail missing %q: %v", key, rec.Detail)
		}
	}
	prof, ok := rec.Detail["profile"].([]any)
	if !ok || len(prof) != 3 {
		t.Fatalf("slowlog profile should have 3 levels: %v", rec.Detail["profile"])
	}

	m := getMetrics(t, base)
	if metric(t, m, "slow_queries") != 1 {
		t.Fatalf("slow_queries = %v, want 1", m["slow_queries"])
	}
	if metric(t, m, "slowlog_len") != 1 {
		t.Fatalf("slowlog_len = %v, want 1", m["slowlog_len"])
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "slow query captured") || !strings.Contains(logged, "trace_id="+headerID) {
		t.Fatalf("missing slow-query warn line for %s:\n%s", headerID, logged)
	}
}

// TestSlowLogDisabled pins that a negative threshold turns capture off.
func TestSlowLogDisabled(t *testing.T) {
	base, _ := startServer(t, Config{SlowQueryThreshold: -1},
		map[string]*graph.Graph{"tiny": graph.Clique(8, 0)})
	readStream(t, postMatch(t, base, "tiny", pathPattern2, nil))
	m := getMetrics(t, base)
	if metric(t, m, "slow_queries") != 0 || metric(t, m, "slowlog_len") != 0 {
		t.Fatalf("slowlog captured with capture disabled: %v", m)
	}
	if metric(t, m, "slow_query_threshold_ms") != 0 {
		t.Fatalf("disabled threshold should render 0: %v", m["slow_query_threshold_ms"])
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/obs"
	"csce/internal/prefilter"
	"csce/internal/shard"
)

// shardedMatchArgs carries the already-validated, already-admitted state
// from handleMatch into the sharded continuation.
type shardedMatchArgs struct {
	start   time.Time
	tr      *obs.Trace
	rctx    context.Context
	ent     *Entry
	params  matchParams
	pattern *graph.Graph
	// pre is the admission pre-filter decision handleMatch already took
	// (always an admit here — rejects return before the slot wait);
	// preChecked distinguishes it from a skipped check so the coordinator
	// is told not to re-check and the false-admit tally stays honest.
	pre        prefilter.Decision
	preChecked bool
}

// matchSharded is the scatter-gather continuation of handleMatch: the
// coordinator decomposes the pattern (cached by the shard-set epoch
// vector), fans the twigs out to every shard, joins the partials, and
// this handler streams the verified full embeddings as NDJSON — the same
// wire format as the single-store path, with a summary line carrying the
// scatter/join breakdown instead of the per-level profile.
func (s *Server) matchSharded(w http.ResponseWriter, r *http.Request, a shardedMatchArgs) {
	coord := a.ent.Sharded
	s.metrics.shardQueries.Add(1)

	ctx, cancel := context.WithTimeout(a.rctx, a.params.timeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var (
		emitted    uint64
		writeErr   error
		lineBuf    []byte
		streamDead bool
		streamNs   int64
	)
	onEmbedding := func(m []graph.VertexID) bool {
		wStart := time.Now()
		lineBuf = append(lineBuf[:0], `{"embedding":[`...)
		for i, v := range m {
			if i > 0 {
				lineBuf = append(lineBuf, ',')
			}
			lineBuf = strconv.AppendUint(lineBuf, uint64(v), 10)
		}
		lineBuf = append(lineBuf, ']', '}', '\n')
		if _, err := w.Write(lineBuf); err != nil {
			writeErr = err
			streamDead = true
			streamNs += int64(time.Since(wStart))
			return false
		}
		emitted++
		if flusher != nil {
			flusher.Flush()
		}
		streamNs += int64(time.Since(wStart))
		return true
	}

	execSpanStart := time.Since(a.tr.Begin)
	matchStart := time.Now()
	res, matchErr := coord.Match(ctx, a.pattern, shard.MatchOptions{
		Variant:     a.params.variant,
		Mode:        a.params.mode,
		Limit:       a.params.limit,
		Workers:     a.params.workers,
		OnEmbedding: onEmbedding,
		// handleMatch already ran the pre-filter before the slot wait;
		// re-checking here would double-count every query.
		SkipPrefilter: a.preChecked,
	})
	if matchErr == nil && res.RejectedBy != "" {
		// Backstop: the coordinator's own gate fired because the server-side
		// check was skipped. Same wire contract as a pre-admission reject;
		// nothing has been streamed yet, so the summary is the whole body.
		s.metrics.recordPrefilterCheck(res.Reject)
		s.writePrefilterReject(w, a.start, a.tr, a.ent, res.Reject, res.Reject.Reason(coord.Names()))
		return
	}
	matchWall := time.Since(matchStart)
	streamDur := time.Duration(streamNs)
	execSpanEnd := time.Since(a.tr.Begin)
	a.tr.AddSpan(phaseExec, execSpanStart, execSpanEnd-streamDur,
		obs.Int("steps", int64(res.Steps)),
		obs.Int("partials", int64(res.Partials)))
	a.tr.AddSpan(phaseStream, execSpanEnd-streamDur, execSpanEnd,
		obs.Int("embeddings", int64(emitted)))
	s.metrics.recordPhase(phaseExec, matchWall-streamDur)
	s.metrics.recordPhase(phaseStream, streamDur)
	s.metrics.embeddingsEmitted.Add(emitted)
	s.metrics.execSteps.Add(res.Steps)
	s.metrics.shardPartials.Add(res.Partials)
	s.metrics.shardJoinCandidates.Add(res.JoinCandidates)

	timedOut := errors.Is(ctx.Err(), context.DeadlineExceeded)
	cancelled := res.Cancelled || errors.Is(matchErr, context.Canceled) ||
		errors.Is(matchErr, context.DeadlineExceeded) || streamDead
	if matchErr != nil && !cancelled {
		// Pattern-shape errors (vertex-induced, disconnected) are the
		// client's; anything else is ours.
		if errors.Is(matchErr, shard.ErrVertexInduced) || errors.Is(matchErr, shard.ErrPattern) {
			s.metrics.queriesBadRequest.Add(1)
			jsonError(w, http.StatusUnprocessableEntity, matchErr.Error())
			return
		}
		s.metrics.queriesErrored.Add(1)
		jsonError(w, http.StatusInternalServerError, fmt.Sprintf("match: %v", matchErr))
		s.log.Error("query failed", "trace_id", a.tr.ID, "graph", a.ent.Name, "error", matchErr)
		a.tr.Finish("http.match", obs.Str("graph", a.ent.Name), obs.Str("outcome", "error"),
			obs.Str("error", matchErr.Error()))
		return
	}
	var outcome string
	switch {
	case timedOut:
		s.metrics.queriesTimedOut.Add(1)
		outcome = "timeout"
	case streamDead:
		s.metrics.queriesCancelled.Add(1)
		outcome = "disconnect"
	case cancelled:
		s.metrics.queriesCancelled.Add(1)
		outcome = "cancelled"
	default:
		s.metrics.queriesOK.Add(1)
		outcome = "ok"
	}
	if a.preChecked && outcome == "ok" && res.Embeddings == 0 {
		s.metrics.recordPrefilterFalseAdmit(a.pre)
	}

	total := time.Since(a.start)
	s.log.Info("query",
		"trace_id", a.tr.ID,
		"graph", a.ent.Name,
		"sharded", true,
		"outcome", outcome,
		"embeddings", res.Embeddings,
		"twigs", res.Twigs,
		"partials", res.Partials,
		"join_candidates", res.JoinCandidates,
		"decomp_cache", cacheOutcome(res.DecompCacheHit),
		"total_ms", durMs(total),
		"scatter_ms", durMs(res.ScatterTime),
		"join_ms", durMs(res.JoinTime),
	)
	ft, exported := a.tr.Finish("http.match",
		obs.Str("graph", a.ent.Name),
		obs.Str("outcome", outcome),
		obs.Int("shards", int64(coord.K())),
		obs.Int("twigs", int64(res.Twigs)),
		obs.Int("partials", int64(res.Partials)),
		obs.Int("embeddings", int64(res.Embeddings)),
		obs.Int("steps", int64(res.Steps)))
	if s.slowlog.Qualifies(total) {
		s.metrics.slowQueries.Add(1)
		s.slowlog.Add(obs.SlowRecord{
			TraceID:  a.tr.ID,
			Start:    a.start,
			Duration: total,
			Graph:    a.ent.Name,
			Outcome:  outcome,
			Spans:    ft.Spans,
			Exported: exported,
			TraceURL: traceURL(a.tr.ID),
			Detail: map[string]any{
				"sharded": true,
				"pattern": map[string]any{
					"vertices": a.pattern.NumVertices(),
					"edges":    a.pattern.NumEdges(),
				},
				"params": map[string]any{
					"variant": a.params.variant.String(),
					"mode":    a.params.mode.String(),
					"limit":   a.params.limit,
					"workers": a.params.workers,
				},
				"twigs":           res.Twigs,
				"partials":        res.Partials,
				"join_candidates": res.JoinCandidates,
				"decomp_cache":    cacheOutcome(res.DecompCacheHit),
				"epochs":          res.Epochs,
				"embeddings":      res.Embeddings,
				"steps":           res.Steps,
			},
		})
	}

	if streamDead && writeErr != nil {
		return // client is gone; no point writing a summary
	}
	summary := map[string]any{
		"done":            true,
		"trace_id":        a.tr.ID,
		"graph":           a.ent.Name,
		"sharded":         true,
		"shards":          coord.K(),
		"embeddings":      res.Embeddings,
		"limit":           a.params.limit,
		"limit_hit":       res.LimitHit,
		"cancelled":       cancelled,
		"timed_out":       timedOut,
		"decomp_cache":    cacheOutcome(res.DecompCacheHit),
		"twigs":           res.Twigs,
		"partials":        res.Partials,
		"join_candidates": res.JoinCandidates,
		"epochs":          res.Epochs,
		"steps":           res.Steps,
		"scatter_ms":      durMs(res.ScatterTime),
		"join_ms":         durMs(res.JoinTime),
	}
	if a.params.profile {
		summary["spans"] = a.tr.SpanDoc()
	}
	line, _ := json.Marshal(summary)
	if _, err := w.Write(append(line, '\n')); err == nil && flusher != nil {
		flusher.Flush()
	}
}

// mutateSharded is handleMutate's coordinator branch: the batch is routed
// into per-shard sub-batches (vertex adds broadcast, edge ops to their
// owners, cross-shard edges to both) and applied with one writer per
// shard.
func (s *Server) mutateSharded(w http.ResponseWriter, tr *obs.Trace, rctx context.Context,
	start time.Time, ent *Entry, muts []live.Mutation) {
	res, err := ent.Sharded.Mutate(rctx, muts)
	if err != nil {
		if errors.Is(err, live.ErrClosed) {
			jsonError(w, http.StatusServiceUnavailable, "graph is closed")
			return
		}
		s.metrics.mutationsFailed.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":    err.Error(),
			"trace_id": tr.ID,
		})
		s.log.Warn("mutation batch rejected", "trace_id", tr.ID, "graph", ent.Name, "error", err)
		tr.Finish("http.mutate", obs.Str("graph", ent.Name), obs.Str("outcome", "rejected"),
			obs.Int("mutations", int64(len(muts))))
		return
	}
	s.metrics.mutationsOK.Add(1)
	s.log.Info("mutation batch",
		"trace_id", tr.ID,
		"graph", ent.Name,
		"sharded", true,
		"mutations", res.Mutations,
		"shards_touched", res.ShardsTouched,
		"total_ms", durMs(time.Since(start)),
	)
	doc := map[string]any{
		"applied":        res.Mutations,
		"trace_id":       tr.ID,
		"sharded":        true,
		"shards_touched": res.ShardsTouched,
		"epochs":         res.Epochs,
	}
	if len(res.AddedVertices) > 0 {
		doc["added_vertices"] = res.AddedVertices
	}
	tr.Finish("http.mutate",
		obs.Str("graph", ent.Name),
		obs.Str("outcome", "ok"),
		obs.Int("mutations", int64(res.Mutations)),
		obs.Int("shards_touched", int64(res.ShardsTouched)))
	writeJSON(w, http.StatusOK, doc)
}

// handleLoadGraph registers a graph at runtime: the body is the edge-list
// text format, ?shards=K (with optional &scheme=id|label) loads it
// sharded behind a scatter-gather coordinator, otherwise it becomes a
// normal single-store live graph. 409 on duplicate names.
func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	tr := s.newTrace()
	w.Header().Set("X-Trace-Id", string(tr.ID))
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	name := r.PathValue("name")
	q := r.URL.Query()
	shards := 0
	if raw := q.Get("shards"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 1024 {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("bad shards %q (1..1024)", raw))
			return
		}
		shards = n
	}
	scheme, err := shard.ParseScheme(q.Get("scheme"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}

	names := graph.NewLabelTable()
	g, err := graph.ParseWith(http.MaxBytesReader(w, r.Body, s.cfg.MaxPatternBytes), names)
	if err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parse graph: %v", err))
		return
	}
	start := time.Now()
	eng := core.FromStore(ccsr.Build(g))

	var ent *Entry
	if shards > 0 {
		ent, err = s.reg.AddSharded(name, eng, shards, scheme)
	} else {
		ent, err = s.reg.Add(name, eng)
	}
	if err != nil {
		status := http.StatusBadRequest
		if _, dup := s.reg.Get(name); dup {
			status = http.StatusConflict
		}
		jsonError(w, status, err.Error())
		return
	}
	v, ed, _ := ent.Counts()
	s.log.Info("graph loaded",
		"trace_id", tr.ID, "graph", name, "vertices", v, "edges", ed,
		"shards", shards, "build_ms", durMs(time.Since(start)))
	tr.Finish("http.load",
		obs.Str("graph", name),
		obs.Int("vertices", int64(v)),
		obs.Int("edges", int64(ed)),
		obs.Int("shards", int64(shards)))
	doc := map[string]any{
		"loaded":   true,
		"trace_id": tr.ID,
		"graph":    name,
		"vertices": v,
		"edges":    ed,
		"directed": ent.Directed,
	}
	if shards > 0 {
		doc["shards"] = shards
		doc["scheme"] = scheme.String()
	}
	writeJSON(w, http.StatusCreated, doc)
}

// shardDoc snapshots every sharded graph's coordinator stats for /metrics.
func (s *Server) shardDoc() map[string]shard.CoordStats {
	out := make(map[string]shard.CoordStats)
	for _, e := range s.reg.List() {
		if e.Sharded != nil {
			out[e.Name] = e.Sharded.Stats()
		}
	}
	return out
}

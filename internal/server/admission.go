package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by admit when the wait queue is at capacity;
// the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("server: match queue full")

// admission is the overload valve: at most `slots` matches execute
// concurrently, at most `queueDepth` more wait for a slot, and everything
// beyond that is rejected immediately. Rejection — not unbounded queueing —
// is what keeps a saturated daemon degrading gracefully instead of
// accumulating goroutines and candidate buffers until it OOMs.
type admission struct {
	slots      chan struct{}
	queueDepth int64
	waiting    atomic.Int64
	running    atomic.Int64
	rejected   atomic.Uint64
}

func newAdmission(slots, queueDepth int) *admission {
	if slots < 1 {
		slots = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots:      make(chan struct{}, slots),
		queueDepth: int64(queueDepth),
	}
}

// admit blocks until a slot is free, the queue is full (ErrQueueFull), or
// the caller's context dies (its error). On nil return the caller holds a
// slot and must release() it.
func (a *admission) admit(ctx context.Context) error {
	// Fast path: free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.running.Add(1)
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queueDepth {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return ErrQueueFull
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.running.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	a.running.Add(-1)
	<-a.slots
}

// inFlight returns the number of matches currently executing.
func (a *admission) inFlight() int64 { return a.running.Load() }

// queued returns the number of admitted-but-waiting matches.
func (a *admission) queued() int64 { return a.waiting.Load() }

// rejectedTotal returns how many queries the valve has turned away.
func (a *admission) rejectedTotal() uint64 { return a.rejected.Load() }

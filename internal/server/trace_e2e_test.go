package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"csce/internal/graph"
	"csce/internal/obs/export"
)

// fakeCollector is an in-process OTLP endpoint that records every accepted
// POST body; when stall is non-nil, handlers block until it closes.
type fakeCollector struct {
	mu     sync.Mutex
	bodies [][]byte
	stall  chan struct{}
}

func (c *fakeCollector) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.stall != nil {
			<-c.stall
		}
		body, _ := io.ReadAll(r.Body)
		c.mu.Lock()
		c.bodies = append(c.bodies, body)
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}
}

// otlpSpans flattens every span the collector has accepted so far.
func (c *fakeCollector) otlpSpans(t *testing.T) []collectedSpan {
	t.Helper()
	c.mu.Lock()
	bodies := make([][]byte, len(c.bodies))
	copy(bodies, c.bodies)
	c.mu.Unlock()
	var out []collectedSpan
	for _, body := range bodies {
		var req struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []collectedSpan `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("decode OTLP body: %v", err)
		}
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				out = append(out, ss.Spans...)
			}
		}
	}
	return out
}

type collectedSpan struct {
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId"`
	Name         string `json:"name"`
	Kind         int    `json:"kind"`
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShardedMatchExportsOTLPTraceTree is the acceptance path: a sharded
// match against a daemon wired to an OTLP collector must produce ONE trace
// whose span tree reads admission → shard.plan → shard.scatter → per-shard
// shard.local (with the core/exec spans nested under each) → shard.join →
// exec → stream, all under the same trace ID with consistent parent links.
func TestShardedMatchExportsOTLPTraceTree(t *testing.T) {
	var c fakeCollector
	col := httptest.NewServer(c.handler())
	defer col.Close()
	exp, err := export.New(export.Config{Endpoint: col.URL, Linger: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	base, _ := startShardedServer(t,
		Config{TraceExporter: exp, SlowQueryThreshold: 1}, shardTestGraph(24, 40, 3), shards)

	resp := postMatch(t, base, "sharded", pathPattern3, nil)
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("match response missing X-Trace-Id")
	}
	readStream(t, resp)

	wantTID := "0000000000000000" + traceID
	waitForCond(t, "trace at collector", func() bool {
		for _, sp := range c.otlpSpans(t) {
			if sp.TraceID == wantTID && sp.Name == "http.match" {
				return true
			}
		}
		return false
	})

	var spans []collectedSpan
	for _, sp := range c.otlpSpans(t) {
		if sp.TraceID == wantTID {
			spans = append(spans, sp)
		}
	}
	byID := map[string]collectedSpan{}
	byName := map[string][]collectedSpan{}
	for _, sp := range spans {
		if _, dup := byID[sp.SpanID]; dup {
			t.Fatalf("duplicate span ID %s on the wire", sp.SpanID)
		}
		byID[sp.SpanID] = sp
		byName[sp.Name] = append(byName[sp.Name], sp)
	}

	root := byName["http.match"]
	if len(root) != 1 {
		t.Fatalf("want exactly one root span, got %d", len(root))
	}
	if root[0].Kind != 2 || root[0].ParentSpanID != "" {
		t.Fatalf("root span kind/parent = %d/%q, want 2/\"\"", root[0].Kind, root[0].ParentSpanID)
	}
	rootID := root[0].SpanID

	// Every non-root span must carry a parent that resolves inside this
	// trace (only the root omits parentSpanId).
	for _, sp := range spans {
		if sp.SpanID == rootID {
			continue
		}
		if _, ok := byID[sp.ParentSpanID]; !ok {
			t.Fatalf("span %s (%s) has parent %q outside the trace", sp.Name, sp.SpanID, sp.ParentSpanID)
		}
	}

	// The scatter tree: shard.scatter under the root, one shard.local per
	// shard under the scatter, and shard.plan/shard.join as its siblings.
	for _, name := range []string{"admission", "shard.plan", "shard.scatter", "shard.join", "exec", "stream"} {
		got := byName[name]
		if len(got) != 1 {
			t.Fatalf("want exactly one %s span, got %d (names: %v)", name, len(got), names(spans))
		}
		if got[0].ParentSpanID != rootID {
			t.Fatalf("%s parent = %s, want root %s", name, got[0].ParentSpanID, rootID)
		}
	}
	scatterID := byName["shard.scatter"][0].SpanID
	locals := byName["shard.local"]
	if len(locals) != shards {
		t.Fatalf("want %d shard.local spans, got %d", shards, len(locals))
	}
	localIDs := map[string]bool{}
	for _, sp := range locals {
		if sp.ParentSpanID != scatterID {
			t.Fatalf("shard.local parent = %s, want shard.scatter %s", sp.ParentSpanID, scatterID)
		}
		localIDs[sp.SpanID] = true
	}
	// The per-shard engine spans nest under their shard.local, not the root.
	for _, name := range []string{"core.read", "core.plan", "exec.search"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %s spans under the scatter (names: %v)", name, names(spans))
		}
		for _, sp := range byName[name] {
			if !localIDs[sp.ParentSpanID] {
				t.Fatalf("%s parent = %s, want one of the shard.local spans", name, sp.ParentSpanID)
			}
		}
	}

	// The same trace is retrievable from the ring.
	var traceDoc struct {
		TraceID string `json:"trace_id"`
		Spans   []any  `json:"spans"`
		Tree    struct {
			Name     string           `json:"name"`
			Children []map[string]any `json:"children"`
		} `json:"tree"`
	}
	if err := json.Unmarshal([]byte(getBody(t, base+"/debug/trace/"+traceID)), &traceDoc); err != nil {
		t.Fatalf("decode /debug/trace: %v", err)
	}
	if traceDoc.TraceID != traceID || traceDoc.Tree.Name != "http.match" {
		t.Fatalf("/debug/trace = id %q root %q", traceDoc.TraceID, traceDoc.Tree.Name)
	}
	if len(traceDoc.Tree.Children) == 0 || len(traceDoc.Spans) != len(spans) {
		t.Fatalf("/debug/trace tree has %d children, %d spans (wire had %d)",
			len(traceDoc.Tree.Children), len(traceDoc.Spans), len(spans))
	}
	if resp, err := http.Get(base + "/debug/trace/ffffffffffffffff"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %v status %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// The slowlog entry (threshold 1ns captures everything) links to the
	// trace and records the export verdict.
	var slowlog struct {
		Records []struct {
			TraceID  string `json:"trace_id"`
			Exported bool   `json:"exported"`
			TraceURL string `json:"trace_url"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(getBody(t, base+"/debug/slowlog")), &slowlog); err != nil {
		t.Fatal(err)
	}
	foundSlow := false
	for _, rec := range slowlog.Records {
		if rec.TraceID == traceID {
			foundSlow = true
			if !rec.Exported {
				t.Fatal("slowlog entry not marked exported despite a healthy collector")
			}
			if rec.TraceURL != "/debug/trace/"+traceID {
				t.Fatalf("slowlog trace_url = %q", rec.TraceURL)
			}
		}
	}
	if !foundSlow {
		t.Fatal("no slowlog entry for the traced query")
	}

	// Self-telemetry: JSON metrics show the export counters and runtime
	// gauges; the Prometheus exposition carries the same families.
	waitForCond(t, "sent counter", func() bool {
		doc := getMetrics(t, base)
		te, _ := doc["trace_export"].(map[string]any)
		if te == nil {
			return false
		}
		sent, _ := te["sent"].(float64)
		return sent >= 1
	})
	doc := getMetrics(t, base)
	te := doc["trace_export"].(map[string]any)
	if dropped, _ := te["dropped"].(float64); dropped != 0 {
		t.Fatalf("dropped = %v under normal load", dropped)
	}
	if rl, _ := doc["trace_ring_len"].(float64); rl < 1 {
		t.Fatalf("trace_ring_len = %v", rl)
	}
	rt, _ := doc["runtime"].(map[string]any)
	if rt == nil {
		t.Fatal("metrics missing runtime block")
	}
	if g, _ := rt["goroutines"].(float64); g <= 0 {
		t.Fatalf("runtime goroutines = %v", g)
	}
	prom := getBody(t, base+"/metrics?format=prom")
	for _, want := range []string{
		"# TYPE csce_trace_export_sent counter",
		"csce_trace_export_queued",
		"csce_trace_export_dropped 0",
		"csce_trace_export_latency_seconds_bucket",
		"csce_trace_ring_len",
		"# TYPE csce_goroutines gauge",
		"csce_heap_bytes",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
}

func names(spans []collectedSpan) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestStalledCollectorNeverBlocksQueries wedges the collector: queries
// must keep serving at full speed while the exporter queue overflows and
// counts drops.
func TestStalledCollectorNeverBlocksQueries(t *testing.T) {
	stall := make(chan struct{})
	c := fakeCollector{stall: stall}
	col := httptest.NewServer(c.handler())
	defer col.Close()
	defer close(stall)

	exp, err := export.New(export.Config{
		Endpoint: col.URL, QueueSize: 2, BatchSize: 1,
		Linger: time.Millisecond, MaxAttempts: 1, RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, Config{TraceExporter: exp}, map[string]*graph.Graph{"g": pathOf(6)})

	const queries = 24
	start := time.Now()
	for i := 0; i < queries; i++ {
		readStream(t, postMatch(t, base, "g", pathPattern2, nil))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("%d queries took %v against a stalled collector", queries, elapsed)
	}
	doc := getMetrics(t, base)
	if got := metric(t, doc, "queries_total"); got != queries {
		t.Fatalf("queries_total = %v, want %d", got, queries)
	}
	te, _ := doc["trace_export"].(map[string]any)
	if te == nil {
		t.Fatal("metrics missing trace_export block")
	}
	dropped, _ := te["dropped"].(float64)
	if dropped == 0 {
		t.Fatal("no drops counted with a 2-deep queue and a stalled collector")
	}
}

// TestMutateAndSubscribeCarryTraceIDs covers the satellite: rejected
// mutations and subscription streams carry the trace ID in their response
// bodies, and both finish traces into the ring.
func TestMutateAndSubscribeCarryTraceIDs(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"g": pathOf(6)})

	// A rejected mutation: 422 body carries the trace_id.
	resp, doc := postMutate(t, base, "g", `{"mutations":[{"op":"insert_edge","src":0,"dst":99}]}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad mutate status = %d, want 422", resp.StatusCode)
	}
	tid, _ := doc["trace_id"].(string)
	if tid == "" || tid != resp.Header.Get("X-Trace-Id") {
		t.Fatalf("422 trace_id = %q, header %q", tid, resp.Header.Get("X-Trace-Id"))
	}

	// An accepted mutation: the ring retains its http.mutate trace.
	resp, doc = postMutate(t, base, "g", `{"mutations":[{"op":"insert_edge","src":0,"dst":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}
	tid, _ = doc["trace_id"].(string)
	if tid == "" {
		t.Fatalf("mutate response missing trace_id: %v", doc)
	}
	var mutTrace struct {
		Tree struct {
			Name string `json:"name"`
		} `json:"tree"`
	}
	if err := json.Unmarshal([]byte(getBody(t, base+"/debug/trace/"+tid)), &mutTrace); err != nil {
		t.Fatal(err)
	}
	if mutTrace.Tree.Name != "http.mutate" {
		t.Fatalf("mutation trace root = %q", mutTrace.Tree.Name)
	}

	// A subscription: the hello line carries the trace_id, and when the
	// client disconnects the finished http.subscribe trace reaches the ring.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/graphs/g/subscribe?pattern="+url.QueryEscape(pathPattern2), nil)
	if err != nil {
		t.Fatal(err)
	}
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	subTID := sresp.Header.Get("X-Trace-Id")
	line := make([]byte, 4096)
	n, err := sresp.Body.Read(line)
	if err != nil {
		t.Fatalf("read hello line: %v", err)
	}
	var hello map[string]any
	if err := json.Unmarshal(line[:n], &hello); err != nil {
		t.Fatalf("decode hello %q: %v", line[:n], err)
	}
	if got, _ := hello["trace_id"].(string); got != subTID || got == "" {
		t.Fatalf("hello trace_id = %q, header %q", got, subTID)
	}
	cancel()
	sresp.Body.Close()
	waitForCond(t, "subscribe trace in ring", func() bool {
		resp, err := http.Get(base + "/debug/trace/" + subTID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		var tdoc struct {
			Tree struct {
				Name string `json:"name"`
			} `json:"tree"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&tdoc); err != nil {
			return false
		}
		return tdoc.Tree.Name == "http.subscribe"
	})
}

package server

import (
	"net/http"
	"sort"

	"csce/internal/obs"
	"csce/internal/obs/export"
)

// traceSink fans a finished trace out to the completed-trace ring (always,
// so /debug/trace/{id} works collector or not) and the span exporter. Its
// TraceFinished return — and therefore Trace.Finish's accepted flag — is
// the exporter's verdict: false when no exporter is configured or its
// queue dropped the trace, which is what the slowlog's "exported" field
// records.
type traceSink struct {
	ring *obs.TraceRing
	exp  *export.Exporter
}

// TraceFinished implements obs.SpanSink.
func (ts traceSink) TraceFinished(ft obs.FinishedTrace) bool {
	if ts.ring != nil {
		ts.ring.Add(ft)
	}
	if ts.exp == nil {
		return false
	}
	return ts.exp.Enqueue(ft)
}

// newTrace builds a query trace wired to the server's sink. Every handler
// that finishes its trace goes through here so rings/exporter coverage is
// uniform across match, mutate, subscribe, and load.
func (s *Server) newTrace() *obs.Trace {
	tr := obs.NewTrace()
	tr.Sink = s.sink
	return tr
}

// traceURL is the /debug/trace link for a trace ID, used by slowlog
// records to close the slow-query → full-trace loop.
func traceURL(id obs.TraceID) string { return "/debug/trace/" + string(id) }

// exportDoc renders the trace-export self-telemetry block of /metrics:
// the queued/sent/dropped/retries counters plus the POST latency
// histogram. Nil when no exporter is configured (the block is absent, not
// zeroed, so dashboards can tell "off" from "idle").
func (s *Server) exportDoc() map[string]any {
	if s.exporter == nil {
		return nil
	}
	st := s.exporter.Stats()
	return map[string]any{
		"format":    s.exporter.Format().String(),
		"endpoint":  s.exporter.Endpoint(),
		"queue_cap": s.exporter.QueueCap(),
		"queued":    st.Queued,
		"sent":      st.Sent,
		"dropped":   st.Dropped,
		"retries":   st.Retries,
	}
}

// runtimeDoc renders the runtime-stats gauge block of /metrics. Nil when
// the collector is disabled.
func (s *Server) runtimeDoc() map[string]any {
	st, ok := s.runtime.Latest()
	if !ok {
		return nil
	}
	return map[string]any{
		"goroutines":      st.Goroutines,
		"heap_bytes":      st.HeapBytes,
		"gc_cycles":       st.GCCycles,
		"gc_pause_p50_ms": st.GCPauseP50,
		"gc_pause_max_ms": st.GCPauseMax,
		"sampled_at":      st.SampledAt,
	}
}

// handleDebugTrace serves one retained trace as a span tree:
// GET /debug/trace/{id}. 404s cover both "never existed" and "evicted
// from the ring" — the ring is fixed-size by design.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := obs.TraceID(r.PathValue("id"))
	if s.traceRing == nil {
		jsonError(w, http.StatusNotFound, "trace retention disabled (TraceRingSize < 0)")
		return
	}
	ft, ok := s.traceRing.Get(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "trace not found (expired from ring or never captured)")
		return
	}
	writeJSON(w, http.StatusOK, traceDoc(ft))
}

// traceDoc renders a finished trace for /debug/trace/{id}: the flat span
// list plus a nested "tree" view rooted at the request span, children
// ordered by start offset.
func traceDoc(ft obs.FinishedTrace) map[string]any {
	return map[string]any{
		"trace_id": ft.ID,
		"begin":    ft.Begin,
		"root":     ft.Root,
		"spans":    ft.Spans,
		"tree":     spanTree(ft),
	}
}

// spanTree nests the spans by parent link. Spans with an unknown parent
// (shouldn't happen) attach to the root so nothing is silently dropped.
func spanTree(ft obs.FinishedTrace) map[string]any {
	byID := make(map[obs.SpanID]obs.Span, len(ft.Spans))
	children := make(map[obs.SpanID][]obs.Span, len(ft.Spans))
	for _, sp := range ft.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range ft.Spans {
		if sp.ID == ft.Root {
			continue
		}
		parent := sp.Parent
		if _, ok := byID[parent]; !ok {
			parent = ft.Root
		}
		children[parent] = append(children[parent], sp)
	}
	var render func(sp obs.Span) map[string]any
	render = func(sp obs.Span) map[string]any {
		node := map[string]any{
			"name":        sp.Name,
			"span_id":     sp.ID,
			"start_ms":    durMs(sp.Start),
			"duration_ms": durMs(sp.Duration()),
		}
		if len(sp.Attrs) > 0 {
			attrs := make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				attrs[a.Key] = a.Value()
			}
			node["attrs"] = attrs
		}
		kids := children[sp.ID]
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })
		if len(kids) > 0 {
			nodes := make([]map[string]any, 0, len(kids))
			for _, k := range kids {
				nodes = append(nodes, render(k))
			}
			node["children"] = nodes
		}
		return node
	}
	root, ok := byID[ft.Root]
	if !ok {
		return nil
	}
	return render(root)
}

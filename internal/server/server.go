// Package server is the concurrent match-serving subsystem: a long-lived
// daemon core that amortizes the offline CCSR clustering across many
// concurrent queries. It owns a registry of resident engines, an admission
// valve that sheds overload with 429s instead of queueing unboundedly, an
// LRU plan cache that lets repeated patterns skip GCF/DAG/LDSF
// optimization, and JSON metrics for all of it.
//
// The cancellation contract: every query runs under a context derived from
// the HTTP request with a per-query timeout. The context is threaded
// through core.MatchOptions into the backtracking executor, which polls it
// every ~1k extension steps — so a client disconnect or a timeout stops
// the search within microseconds of in-memory work instead of burning a
// core until the enumeration finishes. Cancellation mid-stream is
// graceful: the response ends with a summary line marked cancelled.
//
// Resident graphs are writable through the live-ingest subsystem
// (internal/live): queries pin an immutable published snapshot — matching
// against it is lock-free by construction — while mutation batches commit
// new epochs through a WAL + snapshot swap, and continuous-query
// subscribers stream the delta embeddings of every committed insertion.
// Mutations pass their own admission valve, so a mutation storm degrades
// into 429s without ever starving reads.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"csce/internal/core"
	"csce/internal/exec"
	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/obs"
	"csce/internal/obs/export"
	"csce/internal/plan"
	"csce/internal/prefilter"
	"csce/internal/shard"
)

// Config sizes the daemon. The zero value is usable: New fills defaults.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:8372"; use ":0" to
	// pick a free port, which Start reports).
	Addr string
	// MatchSlots bounds concurrently executing matches (default 4).
	MatchSlots int
	// QueueDepth bounds matches waiting for a slot; beyond it requests get
	// 429 (default 2×MatchSlots).
	QueueDepth int
	// MaxLimit is the hard cap on embeddings streamed per query; requests
	// without a limit, or above the cap, are clamped (default 10000).
	MaxLimit uint64
	// DefaultTimeout applies when a request has no timeout_ms (default 5s).
	DefaultTimeout time.Duration
	// MaxTimeout caps timeout_ms (default 60s).
	MaxTimeout time.Duration
	// MaxExecWorkers caps the per-query workers parameter (default 4).
	MaxExecWorkers int
	// PlanCacheSize bounds the LRU of optimized plans (default 256;
	// negative disables caching).
	PlanCacheSize int
	// MaxPatternBytes bounds the request body (default 1 MiB).
	MaxPatternBytes int64
	// MutateSlots bounds concurrently executing mutation batches; the valve
	// is separate from MatchSlots so mutation storms cannot starve reads
	// (default 1 — commits serialize on the writer lock anyway, so extra
	// slots only buy queueing inside the lock).
	MutateSlots int
	// MutateQueueDepth bounds mutations waiting for a slot; beyond it
	// requests get 429 (default 4×MutateSlots).
	MutateQueueDepth int
	// MaxMutationsPerBatch caps the mutations accepted in one request
	// (default 4096).
	MaxMutationsPerBatch int
	// SubscriberBuffer is the per-subscription event buffer; a subscriber
	// that falls this far behind is dropped instead of blocking commits
	// (default 256).
	SubscriberBuffer int
	// WALRetention bounds each graph's in-memory mutation log (default
	// 4096 entries; sequence numbers survive truncation). It is also the
	// subscriber-resume horizon.
	WALRetention int
	// WALDir enables durable WALs: each graph appends committed mutations
	// to segment files under WALDir/<name> and recovers its state from
	// them when registered (default "" — purely in-memory, a restart
	// discards mutations).
	WALDir string
	// WALFsync is the segment fsync policy when WALDir is set (default
	// live.FsyncAlways: acknowledged batches survive power loss).
	WALFsync live.FsyncPolicy
	// WALFsyncInterval is the background sync period under
	// live.FsyncInterval (default 100ms).
	WALFsyncInterval time.Duration
	// WALSegmentSize rotates WAL segments past this many bytes (default
	// 4 MiB).
	WALSegmentSize int64
	// WALKeepSegments checkpoints and truncates the log once more than
	// this many sealed segments accumulate (default 4).
	WALKeepSegments int
	// WALCheckpointMode selects the checkpoint strategy when WALDir is
	// set: live.CheckpointFull serializes the whole store each time,
	// live.CheckpointIncremental chains covered segments and rewrites the
	// base only when the chain grows past Durability.ChainMax (default
	// full).
	WALCheckpointMode live.CheckpointMode
	// SlowQueryThreshold is the end-to-end latency at which a query is
	// captured in /debug/slowlog with its trace, plan summary, and
	// per-level execution profile (default 500ms; negative disables).
	SlowQueryThreshold time.Duration
	// SlowLogSize bounds the slow-query ring buffer (default 128).
	SlowLogSize int
	// Logger receives one structured line per match query, stamped with
	// the query's trace ID (default: discard).
	Logger *slog.Logger
	// TraceExporter, when set, receives every finished query trace for
	// asynchronous export (OTLP/JSON or Zipkin v2 — see internal/obs/
	// export). The server drains it on Shutdown after the HTTP listener
	// has drained, so no tail spans are lost; it does not create it —
	// csced builds one from -trace-export/-trace-endpoint.
	TraceExporter *export.Exporter
	// TraceRingSize bounds the completed-trace ring behind
	// /debug/trace/{id} (default 256; negative disables retention).
	TraceRingSize int
	// RuntimeStatsInterval is the runtime/metrics polling period for the
	// goroutine/heap/GC gauge surface (default 10s; negative disables).
	RuntimeStatsInterval time.Duration
	// DisablePrefilter turns off the O(pattern) admission pre-filters:
	// queries skip the signature check and go straight to the slot wait and
	// plan cache. Signatures are still maintained (they ride the WAL commit
	// and must stay exact for re-enablement), only the gate is skipped.
	// Set by csced's -prefilter=off; a kill switch and an A/B lever.
	DisablePrefilter bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8372"
	}
	if c.MatchSlots <= 0 {
		c.MatchSlots = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.MatchSlots
	}
	if c.MaxLimit == 0 {
		c.MaxLimit = 10000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxExecWorkers <= 0 {
		c.MaxExecWorkers = 4
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.MaxPatternBytes <= 0 {
		c.MaxPatternBytes = 1 << 20
	}
	if c.MutateSlots <= 0 {
		c.MutateSlots = 1
	}
	if c.MutateQueueDepth == 0 {
		c.MutateQueueDepth = 4 * c.MutateSlots
	}
	if c.MaxMutationsPerBatch <= 0 {
		c.MaxMutationsPerBatch = 4096
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 256
	}
	if c.WALRetention <= 0 {
		c.WALRetention = 4096
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 500 * time.Millisecond
	}
	if c.SlowQueryThreshold < 0 {
		c.SlowQueryThreshold = 0 // obs.SlowLog treats ≤0 as disabled
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 128
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.TraceRingSize == 0 {
		c.TraceRingSize = 256
	}
	if c.RuntimeStatsInterval == 0 {
		c.RuntimeStatsInterval = 10 * time.Second
	}
	return c
}

// Server is the daemon core. Build with New, register graphs through
// Registry, then Start/Shutdown (or mount Handler in a test server).
type Server struct {
	cfg      Config
	reg      *Registry
	adm      *admission
	mutAdm   *admission // separate valve: mutation storms must not starve reads
	plans    *planCache
	metrics  *metrics
	slowlog  *obs.SlowLog
	log      *slog.Logger
	started  time.Time
	draining atomic.Bool

	// Telemetry export surface: the completed-trace ring behind
	// /debug/trace/{id}, the (optional, csced-built) span exporter, the
	// runtime-stats collector, and the composite sink new traces get.
	traceRing *obs.TraceRing
	exporter  *export.Exporter
	runtime   *obs.RuntimeCollector
	sink      obs.SpanSink

	mu    sync.Mutex // guards http/listener lifecycle
	http  *http.Server
	ln    net.Listener
	names sync.Mutex // serializes pattern parsing into shared label tables
}

// New builds a server; cfg fields at their zero value take defaults.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		adm:     newAdmission(cfg.MatchSlots, cfg.QueueDepth),
		mutAdm:  newAdmission(cfg.MutateSlots, cfg.MutateQueueDepth),
		plans:   newPlanCache(cfg.PlanCacheSize),
		metrics: newMetrics(),
		slowlog: obs.NewSlowLog(cfg.SlowLogSize, cfg.SlowQueryThreshold),
		log:     cfg.Logger,
		started: time.Now(),
	}
	if cfg.TraceRingSize > 0 {
		s.traceRing = obs.NewTraceRing(cfg.TraceRingSize)
	}
	s.exporter = cfg.TraceExporter
	if cfg.RuntimeStatsInterval > 0 {
		s.runtime = obs.NewRuntimeCollector(cfg.RuntimeStatsInterval)
	}
	s.sink = traceSink{ring: s.traceRing, exp: s.exporter}
	s.reg.LiveOpts = live.Options{
		SubscriberBuffer: cfg.SubscriberBuffer,
		WALRetention:     cfg.WALRetention,
		// Dir stays empty here; Registry.Add derives each graph's own
		// subdirectory from WALRoot.
		Durability: live.Durability{
			Fsync:          cfg.WALFsync,
			FsyncEvery:     cfg.WALFsyncInterval,
			SegmentSize:    cfg.WALSegmentSize,
			KeepSegments:   cfg.WALKeepSegments,
			CheckpointMode: cfg.WALCheckpointMode,
		},
		Observer: live.Observer{
			WALAppend:       func(d time.Duration) { s.metrics.recordWAL(walAppend, d) },
			WALFsync:        func(d time.Duration) { s.metrics.recordWAL(walFsync, d) },
			WALReplay:       func(d time.Duration) { s.metrics.recordWAL(walReplay, d) },
			WALCheckpoint:   func(d time.Duration) { s.metrics.recordWAL(walCheckpoint, d) },
			ResumeReplay:    func(d time.Duration) { s.metrics.recordWAL(walResume, d) },
			SigMaintain:     func(d time.Duration) { s.metrics.recordWAL(walSignature, d) },
			ResumeLogAppend: func(d time.Duration) { s.metrics.recordWAL(walResumeLog, d) },
		},
	}
	s.reg.WALRoot = cfg.WALDir
	s.reg.DisablePrefilter = cfg.DisablePrefilter
	s.reg.ShardObserver = shard.Observer{
		Scatter: func(d time.Duration) { s.metrics.recordShard(shardStageScatter, d) },
		Local:   func(d time.Duration) { s.metrics.recordShard(shardStageLocal, d) },
		Join:    func(d time.Duration) { s.metrics.recordShard(shardStageJoin, d) },
	}
	return s
}

// Registry exposes the graph registry for loading datasets.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the daemon's HTTP mux (also useful under httptest).
// Every route records its end-to-end latency in a per-endpoint histogram.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs/{name}", s.instrument("load", s.handleLoadGraph))
	mux.HandleFunc("POST /v1/graphs/{name}/match", s.instrument("match", s.handleMatch))
	mux.HandleFunc("POST /v1/graphs/{name}/mutate", s.instrument("mutate", s.handleMutate))
	mux.HandleFunc("GET /v1/graphs/{name}/subscribe", s.instrument("subscribe", s.handleSubscribe))
	mux.HandleFunc("GET /v1/graphs", s.instrument("graphs", s.handleGraphs))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /debug/slowlog", s.instrument("slowlog", s.handleSlowlog))
	mux.HandleFunc("POST /debug/slowlog/threshold", s.instrument("slowlog_threshold", s.handleSlowlogThreshold))
	mux.HandleFunc("GET /debug/trace/{id}", s.instrument("trace", s.handleDebugTrace))
	return mux
}

// instrument wraps a handler with per-endpoint latency recording.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.metrics.recordEndpoint(name, time.Since(start))
	}
}

// Start listens on cfg.Addr and serves in a background goroutine. It
// returns the bound address (resolving ":0") once the listener is live.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	srv := s.http
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: new work is refused (healthz reports
// draining), live graphs close — which fails further mutations and ends
// every subscription stream, so those long-lived handlers return —
// in-flight queries run to completion, and if the context expires first
// the listener is closed, which cancels the remaining queries' contexts
// and lets cooperative cancellation stop their searches.
//
// The telemetry pipeline shuts down strictly after the HTTP drain: only
// once every in-flight handler has returned (and therefore finished and
// enqueued its trace) is the exporter asked to flush, so a SIGTERM loses
// no tail spans. The exporter drain shares the same deadline context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.reg.CloseAll()
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	var err error
	if srv != nil {
		if err = srv.Shutdown(ctx); err != nil {
			err = srv.Close()
		}
	}
	s.runtime.Close()
	if s.exporter != nil {
		if expErr := s.exporter.Shutdown(ctx); err == nil {
			err = expErr
		}
	}
	return err
}

// matchParams are the knobs of one match query, parsed and clamped.
type matchParams struct {
	variant graph.Variant
	mode    plan.Mode
	limit   uint64
	timeout time.Duration
	workers int
	profile bool // ?profile=1: return the per-level profile in the summary
}

func (s *Server) parseMatchParams(r *http.Request) (matchParams, error) {
	q := r.URL.Query()
	p := matchParams{
		variant: graph.EdgeInduced,
		mode:    plan.ModeCSCE,
		limit:   s.cfg.MaxLimit,
		timeout: s.cfg.DefaultTimeout,
		workers: 1,
	}
	switch v := q.Get("variant"); v {
	case "", "edge":
		p.variant = graph.EdgeInduced
	case "vertex":
		p.variant = graph.VertexInduced
	case "homo":
		p.variant = graph.Homomorphic
	default:
		return p, fmt.Errorf("unknown variant %q (edge, vertex, homo)", v)
	}
	switch m := q.Get("mode"); m {
	case "", "csce":
		p.mode = plan.ModeCSCE
	case "ri":
		p.mode = plan.ModeRI
	case "ri+cluster":
		p.mode = plan.ModeRICluster
	case "rm":
		p.mode = plan.ModeRM
	case "cost":
		p.mode = plan.ModeCostBased
	default:
		return p, fmt.Errorf("unknown plan mode %q (csce, ri, ri+cluster, rm, cost)", m)
	}
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad limit %q", raw)
		}
		if n == 0 || n > s.cfg.MaxLimit {
			n = s.cfg.MaxLimit
		}
		p.limit = n
	}
	if raw := q.Get("timeout_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			return p, fmt.Errorf("bad timeout_ms %q", raw)
		}
		d := time.Duration(ms) * time.Millisecond
		if d == 0 || d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		p.timeout = d
	}
	if raw := q.Get("workers"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return p, fmt.Errorf("bad workers %q", raw)
		}
		if n > s.cfg.MaxExecWorkers {
			n = s.cfg.MaxExecWorkers
		}
		p.workers = n
	}
	switch raw := q.Get("profile"); raw {
	case "", "0", "false":
	case "1", "true":
		p.profile = true
	default:
		return p, fmt.Errorf("bad profile %q (0 or 1)", raw)
	}
	return p, nil
}

// parsePattern reads the request body in the edge-list text format,
// interning labels through the graph's table. Interning mutates the shared
// table, so parses are serialized; matching itself never touches it.
func (s *Server) parsePattern(r *http.Request, w http.ResponseWriter, ent *Entry) (*graph.Graph, error) {
	s.names.Lock()
	defer s.names.Unlock()
	names := ent.Names
	if names == nil {
		names = graph.NewLabelTable()
	}
	return graph.ParseWith(http.MaxBytesReader(w, r.Body, s.cfg.MaxPatternBytes), names)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	// Every query gets a trace the moment it reaches the handler. The ID
	// goes out in the response header immediately (even for rejections),
	// into every structured log line, into the NDJSON summary, and into
	// the slow-query log — one grep correlates all four.
	start := time.Now()
	tr := s.newTrace()
	w.Header().Set("X-Trace-Id", string(tr.ID))
	rctx := obs.WithTrace(r.Context(), tr)
	defer func() { s.metrics.recordPhase(phaseTotal, time.Since(start)) }()

	s.metrics.queriesTotal.Add(1)
	name := r.PathValue("name")
	ent, ok := s.reg.Get(name)
	if !ok {
		s.metrics.queriesBadRequest.Add(1)
		jsonError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
		return
	}
	params, err := s.parseMatchParams(r)
	if err != nil {
		s.metrics.queriesBadRequest.Add(1)
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := s.parsePattern(r, w, ent)
	if err != nil {
		s.metrics.queriesBadRequest.Add(1)
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parse pattern: %v", err))
		return
	}
	if p.Directed() != ent.Directed {
		s.metrics.queriesBadRequest.Add(1)
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("pattern directedness does not match graph %q", ent.Name))
		return
	}

	// Phase 0: admission pre-filter. An O(pattern) probe of the graph's
	// incrementally-maintained signature runs before the slot wait, the
	// snapshot pin, and the plan-cache lookup, so a provably-empty query
	// costs none of them — it returns a normal 200 summary with a zero
	// count and the rejecting filter's name. Sharded vertex-induced
	// queries skip the check to preserve the coordinator's 422 contract
	// (unsupported variant beats "no results").
	var pre prefilter.Decision
	preChecked := false
	if !s.cfg.DisablePrefilter && !(ent.Sharded != nil && params.variant == graph.VertexInduced) {
		endCheck := tr.StartSpan("prefilter.check")
		if ent.Sharded != nil {
			pre = ent.Sharded.PrefilterCheck(p, params.variant)
		} else {
			pre = ent.Live.Prefilter().Check(p, params.variant)
		}
		preChecked = true
		s.metrics.recordPrefilterCheck(pre)
		if !pre.Admit {
			reason := pre.Reason(ent.Names)
			endCheck(obs.Str("decision", "reject"),
				obs.Str("filter", string(pre.Filter)),
				obs.Str("reason", reason))
			s.writePrefilterReject(w, start, tr, ent, pre, reason)
			return
		}
		endCheck(obs.Str("decision", "admit"),
			obs.Int("filters_checked", int64(pre.Checked)))
	}

	// Phase 1: admission. The wait for a slot is recorded whether the
	// query is admitted, rejected, or abandoned — queueing delay under
	// overload is exactly what the histogram must show.
	endAdmission := tr.StartSpan(phaseAdmission)
	admStart := time.Now()
	admErr := s.adm.admit(rctx)
	s.metrics.recordPhase(phaseAdmission, time.Since(admStart))
	endAdmission()
	if admErr != nil {
		if errors.Is(admErr, ErrQueueFull) {
			s.metrics.queriesRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "match queue full, retry later")
			s.log.Warn("query rejected", "trace_id", tr.ID, "graph", ent.Name, "reason", "queue full")
			return
		}
		// The client went away while queued; nobody is reading the reply.
		s.metrics.queriesCancelled.Add(1)
		jsonError(w, http.StatusServiceUnavailable, "cancelled while queued")
		return
	}
	defer s.adm.release()
	ent.queries.Add(1)

	if ent.Sharded != nil {
		s.matchSharded(w, r, shardedMatchArgs{
			start: start, tr: tr, rctx: rctx, ent: ent, params: params, pattern: p,
			pre: pre, preChecked: preChecked,
		})
		return
	}

	// Pin the current snapshot for the whole query: concurrent mutation
	// batches publish new epochs without touching it, and it is released
	// (possibly draining it) when the handler returns.
	snap := ent.Live.Acquire()
	defer snap.Release()
	eng := snap.Engine()

	// Phase 2: planning. The cache hit path contributes ~0; misses pay
	// GCF/DAG/LDSF. The key carries the snapshot epoch, so plans optimized
	// against superseded statistics age out of the LRU instead of serving
	// forever.
	endPlan := tr.StartSpan(phasePlan)
	planStart := time.Now()
	key := planKey(ent.Name, snap.Epoch(), params.variant, params.mode, p)
	pl, cacheHit := s.plans.get(key)
	if !cacheHit {
		pl, err = plan.Optimize(p, eng.Store(), params.variant, params.mode)
		if err != nil {
			endPlan()
			s.metrics.queriesBadRequest.Add(1)
			jsonError(w, http.StatusUnprocessableEntity, fmt.Sprintf("optimize: %v", err))
			return
		}
		s.plans.put(key, pl)
	}
	planDur := time.Since(planStart)
	s.metrics.recordPhase(phasePlan, planDur)
	s.metrics.planMicros.Add(uint64(planDur.Microseconds()))
	endPlan(obs.Str("cache", cacheOutcome(cacheHit)),
		obs.Int("sce_vertices", int64(pl.SCE.SCEVertices)),
		obs.Int("order_length", int64(len(pl.Order))))

	ctx, cancel := context.WithTimeout(rctx, params.timeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var (
		emitted    uint64
		writeErr   error
		lineBuf    []byte
		streamDead bool
		streamNs   int64 // time spent writing NDJSON lines, accumulated per embedding
	)
	onEmbedding := func(m []graph.VertexID) bool {
		wStart := time.Now()
		lineBuf = append(lineBuf[:0], `{"embedding":[`...)
		for i, v := range m {
			if i > 0 {
				lineBuf = append(lineBuf, ',')
			}
			lineBuf = strconv.AppendUint(lineBuf, uint64(v), 10)
		}
		lineBuf = append(lineBuf, ']', '}', '\n')
		if _, err := w.Write(lineBuf); err != nil {
			writeErr = err
			streamDead = true
			streamNs += int64(time.Since(wStart))
			return false
		}
		emitted++
		if flusher != nil {
			flusher.Flush()
		}
		streamNs += int64(time.Since(wStart))
		return true
	}

	// Phases 3+4: execution and streaming. The engine interleaves them
	// (embeddings stream from inside the search loop), so the exec phase
	// is the engine wall time minus the accumulated write time.
	execSpanStart := time.Since(tr.Begin)
	matchStart := time.Now()
	res, matchErr := eng.Match(p, core.MatchOptions{
		Variant:      params.variant,
		Mode:         params.mode,
		Limit:        params.limit,
		Workers:      params.workers,
		Context:      ctx,
		PreparedPlan: pl,
		OnEmbedding:  onEmbedding,
		// Always profile: the slow-query log must have the per-level
		// breakdown for queries that only reveal themselves as pathological
		// after the fact. Costs a few counter increments per step.
		Profile: true,
	})
	matchWall := time.Since(matchStart)
	streamDur := time.Duration(streamNs)
	execDur := matchWall - streamDur
	if execDur < 0 {
		execDur = 0
	}
	execSpanEnd := time.Since(tr.Begin)
	tr.AddSpan(phaseExec, execSpanStart, execSpanEnd-streamDur,
		obs.Int("steps", int64(res.Exec.Steps)),
		obs.Int("candidate_reuses", int64(res.Exec.CandidateReuses)))
	tr.AddSpan(phaseStream, execSpanEnd-streamDur, execSpanEnd,
		obs.Int("embeddings", int64(emitted)))
	s.metrics.recordPhase(phaseExec, execDur)
	s.metrics.recordPhase(phaseStream, streamDur)
	s.metrics.embeddingsEmitted.Add(emitted)
	s.metrics.execSteps.Add(res.Exec.Steps)
	s.metrics.candidateReuses.Add(res.Exec.CandidateReuses)
	s.metrics.execMicros.Add(uint64(res.ExecTime.Microseconds()))

	// Classify the outcome. A context error surfaced as matchErr means the
	// deadline or disconnect hit before execution started; mid-search
	// cancellation is reported through Exec.Cancelled with a nil error.
	timedOut := errors.Is(ctx.Err(), context.DeadlineExceeded)
	cancelled := res.Exec.Cancelled || errors.Is(matchErr, context.Canceled) ||
		errors.Is(matchErr, context.DeadlineExceeded) || streamDead
	if matchErr != nil && !cancelled {
		s.metrics.queriesErrored.Add(1)
		jsonError(w, http.StatusInternalServerError, fmt.Sprintf("match: %v", matchErr))
		s.log.Error("query failed", "trace_id", tr.ID, "graph", ent.Name, "error", matchErr)
		tr.Finish("http.match", obs.Str("graph", ent.Name), obs.Str("outcome", "error"),
			obs.Str("error", matchErr.Error()))
		return
	}
	var outcome string
	switch {
	case timedOut:
		s.metrics.queriesTimedOut.Add(1)
		outcome = "timeout"
	case streamDead:
		s.metrics.queriesCancelled.Add(1)
		outcome = "disconnect"
	case cancelled:
		s.metrics.queriesCancelled.Add(1)
		outcome = "cancelled"
	default:
		s.metrics.queriesOK.Add(1)
		outcome = "ok"
	}
	if preChecked && outcome == "ok" && res.Embeddings == 0 {
		// The cascade admitted a query the executor proved empty: a false
		// admit, charged to the deepest filter that looked at it.
		s.metrics.recordPrefilterFalseAdmit(pre)
	}

	total := time.Since(start)
	s.log.Info("query",
		"trace_id", tr.ID,
		"graph", ent.Name,
		"outcome", outcome,
		"embeddings", res.Embeddings,
		"steps", res.Exec.Steps,
		"plan_cache", cacheOutcome(cacheHit),
		"total_ms", durMs(total),
		"admission_ms", durMs(phaseDuration(tr, phaseAdmission)),
		"plan_ms", durMs(planDur),
		"exec_ms", durMs(execDur),
		"stream_ms", durMs(streamDur),
	)
	// Finish the trace: the root span covers the whole request and carries
	// the query's headline facts; the FinishedTrace flows to the ring and
	// the exporter queue via the server sink.
	ft, exported := tr.Finish("http.match",
		obs.Str("graph", ent.Name),
		obs.Str("outcome", outcome),
		obs.Str("plan_cache", cacheOutcome(cacheHit)),
		obs.Int("epoch", int64(snap.Epoch())),
		obs.Int("embeddings", int64(res.Embeddings)),
		obs.Int("steps", int64(res.Exec.Steps)))
	if s.slowlog.Qualifies(total) {
		s.metrics.slowQueries.Add(1)
		s.slowlog.Add(obs.SlowRecord{
			TraceID:  tr.ID,
			Start:    start,
			Duration: total,
			Graph:    ent.Name,
			Outcome:  outcome,
			Spans:    ft.Spans,
			Exported: exported,
			TraceURL: traceURL(tr.ID),
			Detail:   slowDetail(p, params, pl, res, cacheHit),
		})
		s.log.Warn("slow query captured",
			"trace_id", tr.ID, "graph", ent.Name, "total_ms", durMs(total),
			"threshold_ms", durMs(s.slowlog.Threshold()))
	}

	if streamDead && writeErr != nil {
		return // client is gone; no point writing a summary
	}

	summary := map[string]any{
		"done":             true,
		"trace_id":         tr.ID,
		"graph":            ent.Name,
		"embeddings":       res.Embeddings,
		"limit":            params.limit,
		"limit_hit":        res.Exec.LimitHit,
		"cancelled":        cancelled,
		"timed_out":        timedOut,
		"plan_cache":       cacheOutcome(cacheHit),
		"read_ms":          float64(res.ReadTime.Microseconds()) / 1e3,
		"plan_ms":          float64(res.PlanTime.Microseconds()) / 1e3,
		"exec_ms":          float64(res.ExecTime.Microseconds()) / 1e3,
		"steps":            res.Exec.Steps,
		"candidate_reuses": res.Exec.CandidateReuses,
	}
	if params.profile {
		// EXPLAIN ANALYZE for CSCE: the per-level profile plus the phase
		// spans, inline in the summary line.
		summary["profile"] = profileDoc(res.Profile)
		summary["spans"] = tr.SpanDoc()
	}
	line, _ := json.Marshal(summary)
	if _, err := w.Write(append(line, '\n')); err == nil && flusher != nil {
		flusher.Flush()
	}
}

// writePrefilterReject finishes a query the admission cascade proved
// empty: a normal 200 NDJSON summary with a zero count and the rejecting
// filter — never a silent empty result — plus the same log line, trace
// finish, and slow-query capture an executed query would get.
func (s *Server) writePrefilterReject(w http.ResponseWriter, start time.Time, tr *obs.Trace,
	ent *Entry, d prefilter.Decision, reason string) {
	s.metrics.queriesOK.Add(1)
	total := time.Since(start)
	s.log.Info("query",
		"trace_id", tr.ID,
		"graph", ent.Name,
		"outcome", "rejected",
		"rejected_by", string(d.Filter),
		"reason", reason,
		"embeddings", 0,
		"total_ms", durMs(total),
	)
	ft, exported := tr.Finish("http.match",
		obs.Str("graph", ent.Name),
		obs.Str("outcome", "rejected"),
		obs.Str("rejected_by", string(d.Filter)),
		obs.Str("reason", reason),
		obs.Int("embeddings", 0))
	if s.slowlog.Qualifies(total) {
		s.metrics.slowQueries.Add(1)
		s.slowlog.Add(obs.SlowRecord{
			TraceID:  tr.ID,
			Start:    start,
			Duration: total,
			Graph:    ent.Name,
			Outcome:  "rejected",
			Spans:    ft.Spans,
			Exported: exported,
			TraceURL: traceURL(tr.ID),
			Detail:   map[string]any{"rejected_by": string(d.Filter), "reason": reason},
		})
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	summary := map[string]any{
		"done":        true,
		"trace_id":    tr.ID,
		"graph":       ent.Name,
		"count":       0,
		"embeddings":  0,
		"rejected_by": string(d.Filter),
		"reason":      reason,
		"cancelled":   false,
		"timed_out":   false,
	}
	if ent.Sharded != nil {
		summary["sharded"] = true
		summary["shards"] = ent.Sharded.K()
	}
	line, _ := json.Marshal(summary)
	_, _ = w.Write(append(line, '\n'))
}

// cacheOutcome renders a plan-cache lookup result for summaries and logs.
func cacheOutcome(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// durMs rounds a duration to milliseconds with µs precision for JSON/log
// output.
func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// phaseDuration returns the recorded duration of the named span (0 when
// the phase never ran).
func phaseDuration(tr *obs.Trace, name string) time.Duration {
	for _, sp := range tr.Spans() {
		if sp.Name == name {
			return sp.Duration()
		}
	}
	return 0
}

// profileDoc renders a per-level execution profile as JSON-ready rows.
func profileDoc(p *exec.Profile) []map[string]any {
	if p == nil {
		return nil
	}
	rows := make([]map[string]any, 0, len(p.Levels))
	for i, lv := range p.Levels {
		rows = append(rows, map[string]any{
			"pos":              i,
			"vertex":           lv.Vertex,
			"steps":            lv.Steps,
			"candidate_builds": lv.CandidateBuilds,
			"candidate_reuses": lv.CandidateReuses,
			"nec_shares":       lv.NECShares,
			"candidate_total":  lv.CandidateTotal,
			"factorized":       lv.Factorized,
		})
	}
	return rows
}

// slowDetail composes the slow-query record payload: what ran (pattern and
// parameters), the plan's SCE summary, and where the time went per level.
func slowDetail(p *graph.Graph, params matchParams, pl *plan.Plan, res core.MatchResult, cacheHit bool) map[string]any {
	detail := map[string]any{
		"pattern": map[string]any{
			"vertices": p.NumVertices(),
			"edges":    p.NumEdges(),
		},
		"params": map[string]any{
			"variant": params.variant.String(),
			"mode":    params.mode.String(),
			"limit":   params.limit,
			"workers": params.workers,
		},
		"plan_cache":       cacheOutcome(cacheHit),
		"embeddings":       res.Embeddings,
		"steps":            res.Exec.Steps,
		"candidate_builds": res.Exec.CandidateBuilds,
		"candidate_reuses": res.Exec.CandidateReuses,
		"clusters_read":    res.ClustersRead,
	}
	if pl != nil {
		detail["plan"] = map[string]any{
			"order_length":      len(pl.Order),
			"sce_vertices":      pl.SCE.SCEVertices,
			"independent_pairs": pl.SCE.IndependentPairs,
			"total_pairs":       pl.SCE.TotalPairs,
		}
	}
	if prof := profileDoc(res.Profile); prof != nil {
		detail["profile"] = prof
	}
	return detail
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	type graphInfo struct {
		Name     string    `json:"name"`
		Vertices int       `json:"vertices"`
		Edges    int       `json:"edges"`
		Clusters int       `json:"clusters"`
		Directed bool      `json:"directed"`
		Epoch    uint64    `json:"epoch"`
		LastSeq  uint64    `json:"last_seq"`
		LoadedAt time.Time `json:"loaded_at"`
		Queries  uint64    `json:"queries"`
		// Sharded graphs: shard count, partition scheme, and the per-shard
		// epoch vector (there is no single epoch).
		Shards      int      `json:"shards,omitempty"`
		ShardScheme string   `json:"shard_scheme,omitempty"`
		Epochs      []uint64 `json:"epochs,omitempty"`
	}
	entries := s.reg.List()
	out := make([]graphInfo, 0, len(entries))
	for _, e := range entries {
		v, ed, cl := e.Counts()
		info := graphInfo{
			Name:     e.Name,
			Vertices: v,
			Edges:    ed,
			Clusters: cl,
			Directed: e.Directed,
			LoadedAt: e.LoadedAt,
			Queries:  e.Queries(),
		}
		if e.Sharded != nil {
			info.Shards = e.Sharded.K()
			info.ShardScheme = e.Sharded.Scheme().String()
			info.Epochs = e.Sharded.EpochVector()
		} else {
			st := e.Live.Stats()
			info.Epoch = st.Epoch
			info.LastSeq = st.LastSeq
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

// handleMetrics renders the whole observability surface as one JSON
// document: monotonic counters and point-in-time gauges at the top level
// (the schema prior dashboards scrape), with the latency histograms nested
// under "latency" (per-phase and per-endpoint quantiles in milliseconds)
// and per-graph live-ingest stats under "live". With ?format=prom or an
// Accept header preferring text/plain, the same surface renders in
// Prometheus text exposition format instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		s.writeProm(w)
		return
	}
	doc := s.metrics.counterDoc()
	pfChecks, pfRejects, pfFalse := s.metrics.prefilterDoc()
	doc["prefilter_checks"] = pfChecks
	doc["prefilter_rejects"] = pfRejects
	doc["prefilter_false_admits"] = pfFalse
	doc["plan_cache_size"] = s.plans.len()
	doc["plan_cache_hits"] = s.plans.hits.Load()
	doc["plan_cache_misses"] = s.plans.misses.Load()
	doc["in_flight"] = s.adm.inFlight()
	doc["queued"] = s.adm.queued()
	doc["match_slots"] = s.cfg.MatchSlots
	doc["queue_depth"] = s.cfg.QueueDepth
	doc["mutate_in_flight"] = s.mutAdm.inFlight()
	doc["mutate_queued"] = s.mutAdm.queued()
	doc["mutate_slots"] = s.cfg.MutateSlots
	doc["mutate_queue_depth"] = s.cfg.MutateQueueDepth
	doc["graphs"] = s.reg.Len()
	doc["live"] = s.liveDoc()
	if sd := s.shardDoc(); len(sd) > 0 {
		doc["shard"] = sd
	}
	doc["uptime_seconds"] = time.Since(s.started).Seconds()
	doc["slow_query_threshold_ms"] = durMs(s.slowlog.Threshold())
	doc["slowlog_len"] = s.slowlog.Len()
	if s.traceRing != nil {
		doc["trace_ring_len"] = s.traceRing.Len()
	}
	if ed := s.exportDoc(); ed != nil {
		doc["trace_export"] = ed
	}
	if rd := s.runtimeDoc(); rd != nil {
		doc["runtime"] = rd
	}
	latency := s.metrics.latencyDoc()
	if s.exporter != nil {
		latency["trace_export"] = s.exporter.Latency().Doc()
	}
	doc["latency"] = latency
	writeJSON(w, http.StatusOK, doc)
}

// handleSlowlog dumps the slow-query ring buffer, newest first. Each record
// carries the query's trace ID (matching its X-Trace-Id response header and
// log lines), phase spans, plan summary, and per-level execution profile.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ms": durMs(s.slowlog.Threshold()),
		"total":        s.slowlog.Total(),
		"records":      s.slowlog.Snapshot(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"graphs": s.reg.Len(),
	})
}

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}

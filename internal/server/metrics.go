package server

import (
	"sync/atomic"
	"time"

	"csce/internal/obs"
	"csce/internal/prefilter"
)

// phase names index the per-phase latency histograms: the four stages a
// query passes through on its way out of the daemon.
const (
	phaseAdmission = "admission" // waiting for a match slot
	phasePlan      = "plan"      // plan-cache lookup + GCF/DAG/LDSF on miss
	phaseExec      = "exec"      // backtracking search (minus streaming writes)
	phaseStream    = "stream"    // writing NDJSON embedding lines to the client
	phaseTotal     = "total"     // end-to-end handler time
)

// metricsPhases lists the histogram keys in render order.
var metricsPhases = []string{phaseAdmission, phasePlan, phaseExec, phaseStream, phaseTotal}

// metricsEndpoints lists the instrumented HTTP endpoints. Every route in
// Handler records its latency under one of these names.
var metricsEndpoints = []string{
	"match", "mutate", "subscribe", "graphs", "load", "metrics", "healthz",
	"slowlog", "slowlog_threshold", "trace",
}

// Shard stage names index the scatter-gather latency histograms: one full
// fan-out, one shard's local twig matching, and one cross-shard join.
const (
	shardStageScatter = "scatter"
	shardStageLocal   = "local"
	shardStageJoin    = "join"
)

// metricsShardStages lists the shard histogram keys in render order.
var metricsShardStages = []string{shardStageScatter, shardStageLocal, shardStageJoin}

// WAL operation names index the durable-log latency histograms.
const (
	walAppend     = "append"     // full disk append of one batch
	walFsync      = "fsync"      // each fsync, whatever the policy
	walReplay     = "replay"     // startup checkpoint load + log replay
	walCheckpoint = "checkpoint" // checkpoint write + segment truncation
	walResume     = "resume"     // subscriber resume replay
	walSignature  = "signature"  // prefilter signature maintenance inside the commit
	walResumeLog  = "resume_log" // resume-log append inside the commit
)

// metricsWALOps lists the WAL histogram keys in render order.
var metricsWALOps = []string{walAppend, walFsync, walReplay, walCheckpoint, walResume, walSignature, walResumeLog}

// prefilterCounters tallies one admission pre-filter's activity. checks
// counts evaluations (a query bumps every filter in the cascade prefix it
// reached), rejects counts rejections the filter proved, and falseAdmits
// counts admitted queries that executed to zero embeddings — attributed to
// the deepest filter evaluated, the one that had the last cheap chance to
// prove emptiness.
type prefilterCounters struct {
	checks      atomic.Uint64
	rejects     atomic.Uint64
	falseAdmits atomic.Uint64
}

// metrics holds the daemon's monotonic counters and latency histograms.
// Everything is a plain atomic so the hot path never takes a lock;
// /metrics renders a snapshot as one JSON document, and gauges (in-flight,
// queue depth, cache size) are read from their owning components at render
// time.
type metrics struct {
	// Query outcomes. queriesTotal counts every POST that reached the match
	// handler; exactly one outcome counter moves per query.
	queriesTotal      atomic.Uint64
	queriesOK         atomic.Uint64
	queriesRejected   atomic.Uint64 // admission queue full (HTTP 429)
	queriesCancelled  atomic.Uint64 // client disconnect mid-search
	queriesTimedOut   atomic.Uint64 // per-query timeout fired
	queriesBadRequest atomic.Uint64 // unparseable pattern / params / 404s
	queriesErrored    atomic.Uint64 // internal errors
	slowQueries       atomic.Uint64 // queries captured by the slow-query log

	// Mutation outcomes; exactly one moves per POST that reached the
	// mutate handler (per-graph detail lives in the "live" metrics block).
	mutationsTotal       atomic.Uint64
	mutationsOK          atomic.Uint64 // committed batches
	mutationsRejected    atomic.Uint64 // mutation valve full (HTTP 429)
	mutationsFailed      atomic.Uint64 // invalid batches rolled back (HTTP 422)
	mutationsBadRequest  atomic.Uint64 // unparseable body / unknown graph
	subscriptionsOpened  atomic.Uint64 // subscribe streams accepted
	subscriptionsResumed atomic.Uint64 // subscribe streams that resumed via from_seq
	subscriptionsGone    atomic.Uint64 // resume refused with 410 (seq truncated)

	// Work volume.
	embeddingsEmitted atomic.Uint64 // NDJSON embedding lines streamed
	execSteps         atomic.Uint64 // candidate extensions across all queries
	candidateReuses   atomic.Uint64 // SCE cache hits across all queries
	execMicros        atomic.Uint64 // summed execution-stage wall time (µs)
	planMicros        atomic.Uint64 // summed plan-stage wall time (µs); cache hits contribute ~0

	// Scatter-gather volume (sharded graphs only). shardJoinCandidates is
	// the join-explosion signal: hash-bucket entries probed while joining
	// partial embeddings across shards.
	shardQueries        atomic.Uint64 // matches served through a coordinator
	shardPartials       atomic.Uint64 // twig rows returned by shards, summed
	shardJoinCandidates atomic.Uint64 // cross-shard join candidates probed

	// Admission pre-filter tallies, one set per cascade filter. Allocated
	// once by newMetrics, so recording never takes a lock or writes the map.
	prefilter map[prefilter.Filter]*prefilterCounters

	// Latency histograms: per query phase, per HTTP endpoint, per
	// durable-WAL operation, and per scatter-gather stage. Allocated once
	// by newMetrics; recording is lock-free (obs.Histogram).
	phases    map[string]*obs.Histogram
	endpoints map[string]*obs.Histogram
	wal       map[string]*obs.Histogram
	shard     map[string]*obs.Histogram
}

func newMetrics() *metrics {
	m := &metrics{
		prefilter: make(map[prefilter.Filter]*prefilterCounters, len(prefilter.Filters())),
		phases:    make(map[string]*obs.Histogram, len(metricsPhases)),
		endpoints: make(map[string]*obs.Histogram, len(metricsEndpoints)),
		wal:       make(map[string]*obs.Histogram, len(metricsWALOps)),
		shard:     make(map[string]*obs.Histogram, len(metricsShardStages)),
	}
	for _, f := range prefilter.Filters() {
		m.prefilter[f] = &prefilterCounters{}
	}
	for _, p := range metricsPhases {
		m.phases[p] = &obs.Histogram{}
	}
	for _, e := range metricsEndpoints {
		m.endpoints[e] = &obs.Histogram{}
	}
	for _, op := range metricsWALOps {
		m.wal[op] = &obs.Histogram{}
	}
	for _, st := range metricsShardStages {
		m.shard[st] = &obs.Histogram{}
	}
	return m
}

// recordPhase adds one observation to a phase histogram.
func (m *metrics) recordPhase(phase string, d time.Duration) {
	if h := m.phases[phase]; h != nil {
		h.Record(d)
	}
}

// recordEndpoint adds one observation to an endpoint histogram.
func (m *metrics) recordEndpoint(name string, d time.Duration) {
	if h := m.endpoints[name]; h != nil {
		h.Record(d)
	}
}

// recordWAL adds one observation to a durable-WAL operation histogram.
func (m *metrics) recordWAL(op string, d time.Duration) {
	if h := m.wal[op]; h != nil {
		h.Record(d)
	}
}

// recordShard adds one observation to a scatter-gather stage histogram.
func (m *metrics) recordShard(stage string, d time.Duration) {
	if h := m.shard[stage]; h != nil {
		h.Record(d)
	}
}

// recordPrefilterCheck tallies one admission-cascade evaluation: every
// filter in the prefix the cascade actually evaluated counts one check,
// and a rejection counts against the filter that proved it.
func (m *metrics) recordPrefilterCheck(d prefilter.Decision) {
	for i, f := range prefilter.Filters() {
		if i >= int(d.Checked) {
			break
		}
		m.prefilter[f].checks.Add(1)
	}
	if !d.Admit {
		if c := m.prefilter[d.Filter]; c != nil {
			c.rejects.Add(1)
		}
	}
}

// recordPrefilterFalseAdmit tallies an admitted query whose execution
// produced zero embeddings, against the deepest filter the cascade
// evaluated. The rate of these against rejects is the cascade's recall.
func (m *metrics) recordPrefilterFalseAdmit(d prefilter.Decision) {
	fs := prefilter.Filters()
	if !d.Admit || d.Checked == 0 || int(d.Checked) > len(fs) {
		return
	}
	m.prefilter[fs[d.Checked-1]].falseAdmits.Add(1)
}

// prefilterDoc returns the per-filter admission counters, keyed for the
// JSON /metrics document: prefilter_checks, prefilter_rejects, and
// prefilter_false_admits each map filter name → count.
func (m *metrics) prefilterDoc() (checks, rejects, falseAdmits map[string]uint64) {
	n := len(m.prefilter)
	checks = make(map[string]uint64, n)
	rejects = make(map[string]uint64, n)
	falseAdmits = make(map[string]uint64, n)
	for f, c := range m.prefilter {
		checks[string(f)] = c.checks.Load()
		rejects[string(f)] = c.rejects.Load()
		falseAdmits[string(f)] = c.falseAdmits.Load()
	}
	return checks, rejects, falseAdmits
}

// counterDoc returns the counter block of the /metrics document.
func (m *metrics) counterDoc() map[string]any {
	return map[string]any{
		"queries_total":         m.queriesTotal.Load(),
		"queries_ok":            m.queriesOK.Load(),
		"queries_rejected":      m.queriesRejected.Load(),
		"queries_cancelled":     m.queriesCancelled.Load(),
		"queries_timed_out":     m.queriesTimedOut.Load(),
		"queries_bad_request":   m.queriesBadRequest.Load(),
		"queries_errored":       m.queriesErrored.Load(),
		"slow_queries":          m.slowQueries.Load(),
		"mutations_total":       m.mutationsTotal.Load(),
		"mutations_ok":          m.mutationsOK.Load(),
		"mutations_rejected":    m.mutationsRejected.Load(),
		"mutations_failed":      m.mutationsFailed.Load(),
		"mutations_bad":         m.mutationsBadRequest.Load(),
		"subscriptions":         m.subscriptionsOpened.Load(),
		"subscriptions_resumed": m.subscriptionsResumed.Load(),
		"subscriptions_gone":    m.subscriptionsGone.Load(),
		"embeddings_emitted":    m.embeddingsEmitted.Load(),
		"exec_steps":            m.execSteps.Load(),
		"candidate_reuses":      m.candidateReuses.Load(),
		"exec_micros":           m.execMicros.Load(),
		"plan_micros":           m.planMicros.Load(),
		"shard_queries":         m.shardQueries.Load(),
		"shard_partials":        m.shardPartials.Load(),
		"shard_join_candidates": m.shardJoinCandidates.Load(),
	}
}

// latencyDoc returns the histogram block: count/mean/p50/p90/p99/max per
// phase, per endpoint, and per durable-WAL operation, all in milliseconds.
func (m *metrics) latencyDoc() map[string]any {
	phases := make(map[string]any, len(m.phases))
	for name, h := range m.phases {
		phases[name] = h.Snapshot().Doc()
	}
	endpoints := make(map[string]any, len(m.endpoints))
	for name, h := range m.endpoints {
		endpoints[name] = h.Snapshot().Doc()
	}
	wal := make(map[string]any, len(m.wal))
	for name, h := range m.wal {
		wal[name] = h.Snapshot().Doc()
	}
	shard := make(map[string]any, len(m.shard))
	for name, h := range m.shard {
		shard[name] = h.Snapshot().Doc()
	}
	return map[string]any{
		"phases":    phases,
		"endpoints": endpoints,
		"wal":       wal,
		"shard":     shard,
	}
}

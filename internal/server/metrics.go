package server

import "sync/atomic"

// metrics holds the daemon's monotonic counters. Everything is a plain
// atomic so the hot path never takes a lock; /metrics renders a snapshot
// as expvar-style JSON, and gauges (in-flight, queue depth, cache size)
// are read from their owning components at render time.
type metrics struct {
	// Query outcomes. queriesTotal counts every POST that reached the match
	// handler; exactly one outcome counter moves per query.
	queriesTotal      atomic.Uint64
	queriesOK         atomic.Uint64
	queriesRejected   atomic.Uint64 // admission queue full (HTTP 429)
	queriesCancelled  atomic.Uint64 // client disconnect mid-search
	queriesTimedOut   atomic.Uint64 // per-query timeout fired
	queriesBadRequest atomic.Uint64 // unparseable pattern / params / 404s
	queriesErrored    atomic.Uint64 // internal errors

	// Work volume.
	embeddingsEmitted atomic.Uint64 // NDJSON embedding lines streamed
	execSteps         atomic.Uint64 // candidate extensions across all queries
	candidateReuses   atomic.Uint64 // SCE cache hits across all queries
	execMicros        atomic.Uint64 // summed execution-stage wall time (µs)
	planMicros        atomic.Uint64 // summed plan-stage wall time (µs); cache hits contribute ~0
}

// snapshot returns the counter block of the /metrics document.
func (m *metrics) snapshot() map[string]any {
	return map[string]any{
		"queries_total":       m.queriesTotal.Load(),
		"queries_ok":          m.queriesOK.Load(),
		"queries_rejected":    m.queriesRejected.Load(),
		"queries_cancelled":   m.queriesCancelled.Load(),
		"queries_timed_out":   m.queriesTimedOut.Load(),
		"queries_bad_request": m.queriesBadRequest.Load(),
		"queries_errored":     m.queriesErrored.Load(),
		"embeddings_emitted":  m.embeddingsEmitted.Load(),
		"exec_steps":          m.execSteps.Load(),
		"candidate_reuses":    m.candidateReuses.Load(),
		"exec_micros":         m.execMicros.Load(),
		"plan_micros":         m.planMicros.Load(),
	}
}

package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"csce/internal/core"
	"csce/internal/graph"
)

func postJSON(t *testing.T, u, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(u, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, doc
}

func postMutate(t *testing.T, base, graphName, body string) (*http.Response, map[string]any) {
	t.Helper()
	return postJSON(t, fmt.Sprintf("%s/v1/graphs/%s/mutate", base, graphName), body)
}

// matchCount runs a match and returns the exact embedding count from the
// summary line.
func matchCount(t *testing.T, base, graphName, pattern string) uint64 {
	t.Helper()
	resp := postMatch(t, base, graphName, pattern, url.Values{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	_, summary := readStream(t, resp)
	if summary == nil {
		t.Fatal("no summary line")
	}
	return uint64(summary["embeddings"].(float64))
}

// pathOf builds an unlabeled undirected path graph on n vertices.
func pathOf(n int) *graph.Graph {
	b := graph.NewBuilder(false)
	b.AddVertices(n, 0)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 0)
	}
	return b.MustBuild()
}

func TestMutateEndpointCommitsBatch(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"g": pathOf(4)})
	before := matchCount(t, base, "g", pathPattern2)

	resp, doc := postMutate(t, base, "g", `{"mutations":[
		{"op":"insert_edge","src":0,"dst":2},
		{"op":"add_vertex","label":"0"},
		{"op":"insert_edge","src":3,"dst":4}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, doc)
	}
	if doc["applied"].(float64) != 3 || doc["epoch"].(float64) != 1 ||
		doc["first_seq"].(float64) != 1 || doc["last_seq"].(float64) != 3 {
		t.Fatalf("commit doc: %v", doc)
	}
	// Two inserted edges on an undirected graph: +4 edge-pattern mappings.
	if after := matchCount(t, base, "g", pathPattern2); after != before+4 {
		t.Fatalf("count %d after mutation, want %d", after, before+4)
	}

	// The registry listing reflects the new epoch and sizes.
	respG, err := http.Get(base + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Graphs []map[string]any `json:"graphs"`
	}
	if err := json.NewDecoder(respG.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	respG.Body.Close()
	if len(listing.Graphs) != 1 {
		t.Fatalf("listing: %v", listing)
	}
	info := listing.Graphs[0]
	if info["epoch"].(float64) != 1 || info["vertices"].(float64) != 5 || info["edges"].(float64) != 5 {
		t.Fatalf("graph info after mutation: %v", info)
	}

	m := getMetrics(t, base)
	if metric(t, m, "mutations_ok") != 1 || metric(t, m, "mutations_total") != 1 {
		t.Fatalf("mutation counters: %v", m)
	}
	liveBlock, ok := m["live"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing live block: %v", m["live"])
	}
	gStats, ok := liveBlock["g"].(map[string]any)
	if !ok || gStats["epoch"].(float64) != 1 || gStats["edges_inserted"].(float64) != 2 ||
		gStats["vertices_added"].(float64) != 1 {
		t.Fatalf("per-graph live stats: %v", liveBlock)
	}
}

func TestMutateEndpointRejectsBadBatches(t *testing.T) {
	base, _ := startServer(t, Config{MaxMutationsPerBatch: 2}, map[string]*graph.Graph{"g": pathOf(4)})

	resp, _ := postMutate(t, base, "nope", `{"mutations":[{"op":"insert_edge","src":0,"dst":2}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: %d", resp.StatusCode)
	}
	resp, _ = postMutate(t, base, "g", `{"mutations":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", resp.StatusCode)
	}
	resp, _ = postMutate(t, base, "g", `{"mutations":[
		{"op":"insert_edge","src":0,"dst":2},{"op":"insert_edge","src":0,"dst":3},{"op":"insert_edge","src":1,"dst":3}
	]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize batch: %d", resp.StatusCode)
	}
	resp, _ = postMutate(t, base, "g", `{"mutations":[{"op":"warp","src":0,"dst":2}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op: %d", resp.StatusCode)
	}

	// An invalid batch (duplicate edge) rolls back atomically: 422, no
	// epoch bump, counts unchanged.
	before := matchCount(t, base, "g", pathPattern2)
	resp, doc := postMutate(t, base, "g", `{"mutations":[
		{"op":"insert_edge","src":0,"dst":2},
		{"op":"insert_edge","src":0,"dst":1}
	]}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid batch: %d %v", resp.StatusCode, doc)
	}
	if after := matchCount(t, base, "g", pathPattern2); after != before {
		t.Fatalf("failed batch leaked: %d -> %d", before, after)
	}
	m := getMetrics(t, base)
	if metric(t, m, "mutations_failed") != 1 {
		t.Fatalf("mutations_failed: %v", m["mutations_failed"])
	}
}

// subscribeStream opens a subscription and returns a line reader plus the
// hello document.
func subscribeStream(t *testing.T, base, graphName, pattern, variant string) (*bufio.Scanner, map[string]any, func()) {
	t.Helper()
	u := fmt.Sprintf("%s/v1/graphs/%s/subscribe?pattern=%s", base, graphName, url.QueryEscape(pattern))
	if variant != "" {
		u += "&variant=" + variant
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var doc map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&doc)
		t.Fatalf("subscribe status %d: %v", resp.StatusCode, doc)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		t.Fatalf("no hello line: %v", sc.Err())
	}
	var hello map[string]any
	if err := json.Unmarshal(sc.Bytes(), &hello); err != nil {
		t.Fatal(err)
	}
	if hello["subscribed"] != true {
		t.Fatalf("hello line: %v", hello)
	}
	return sc, hello, func() { resp.Body.Close() }
}

// TestSubscribeDeltaEquation is the acceptance check over HTTP: the
// subscriber receives exactly the deltas implied by
// count(after) = count(before) + deltas.
func TestSubscribeDeltaEquation(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"g": pathOf(4)})
	before := matchCount(t, base, "g", triPattern)

	sc, hello, closeSub := subscribeStream(t, base, "g", triPattern, "")
	defer closeSub()
	if hello["epoch"].(float64) != 0 {
		t.Fatalf("join epoch: %v", hello)
	}

	// Close triangles 0-1-2 and 1-2-3 over the existing path edges.
	resp, doc := postMutate(t, base, "g", `{"mutations":[
		{"op":"insert_edge","src":0,"dst":2},
		{"op":"insert_edge","src":1,"dst":3}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %v", resp.StatusCode, doc)
	}
	reported := uint64(doc["deltas"].(float64))

	var received uint64
	for {
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["kind"] == "delta" {
			received++
			if len(ev["embedding"].([]any)) != 3 {
				t.Fatalf("delta embedding: %v", ev)
			}
			continue
		}
		if ev["kind"] == "commit" {
			if uint64(ev["deltas"].(float64)) != received {
				t.Fatalf("commit marker %v after %d deltas", ev, received)
			}
			break
		}
		t.Fatalf("unexpected event: %v", ev)
	}
	after := matchCount(t, base, "g", triPattern)
	if after != before+received || received != reported {
		t.Fatalf("count(before)=%d + deltas=%d != count(after)=%d (reported %d)",
			before, received, after, reported)
	}
	if received == 0 {
		t.Fatal("closing a triangle must produce deltas")
	}
}

func TestSubscribeRejectsVertexInducedHTTP(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"g": pathOf(4)})
	u := fmt.Sprintf("%s/v1/graphs/g/subscribe?pattern=%s&variant=vertex", base, url.QueryEscape(triPattern))
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if msg, _ := doc["error"].(string); !strings.Contains(msg, "not monotone") {
		t.Fatalf("error must explain non-monotonicity: %v", doc)
	}
}

// TestE2EConcurrentReadersAcrossSwaps is the headline acceptance test,
// meaningful under -race: reader goroutines stream matches while a writer
// commits batches; every reader's count must equal the exact count of
// some single epoch — a torn read straddling a swap would produce a
// count no epoch ever had.
func TestE2EConcurrentReadersAcrossSwaps(t *testing.T) {
	// Data: K5 on vertices 0..4 plus isolated vertex 5; the writer then
	// attaches 5 to each clique vertex, one batch per edge (epochs 1..5).
	build := func(extra int) *graph.Graph {
		b := graph.NewBuilder(false)
		b.AddVertices(6, 0)
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
			}
		}
		for k := 0; k < extra; k++ {
			b.AddEdge(5, graph.VertexID(k), 0)
		}
		return b.MustBuild()
	}
	pattern := graph.MustParse(pathPattern3)

	// Ground truth per epoch, computed offline with the same engine.
	valid := make(map[uint64]uint64)
	for k := 0; k <= 5; k++ {
		n, err := core.NewEngine(build(k)).Count(pattern, graph.EdgeInduced)
		if err != nil {
			t.Fatal(err)
		}
		valid[n] = uint64(k)
	}
	if len(valid) != 6 {
		t.Fatalf("epoch counts must be distinct: %v", valid)
	}

	base, _ := startServer(t, Config{MatchSlots: 8, QueueDepth: 64},
		map[string]*graph.Graph{"g": build(0)})

	var stop atomic.Bool
	var reads atomic.Uint64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				n := matchCount(t, base, "g", pathPattern3)
				if _, ok := valid[n]; !ok {
					t.Errorf("reader saw count %d, matching no epoch (valid: %v)", n, valid)
					return
				}
				reads.Add(1)
			}
		}()
	}
	for k := 0; k < 5; k++ {
		body := fmt.Sprintf(`{"mutations":[{"op":"insert_edge","src":5,"dst":%d}]}`, k)
		resp, doc := postMutate(t, base, "g", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: %d %v", k, resp.StatusCode, doc)
		}
		if doc["epoch"].(float64) != float64(k+1) {
			t.Fatalf("epoch after batch %d: %v", k, doc)
		}
	}
	stop.Store(true)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}

	// Converged: the final epoch serves the K6-star count.
	final := matchCount(t, base, "g", pathPattern3)
	if valid[final] != 5 {
		t.Fatalf("final count %d is not the 5-extra-edge epoch", final)
	}
	m := getMetrics(t, base)
	liveBlock := m["live"].(map[string]any)["g"].(map[string]any)
	if liveBlock["epoch"].(float64) != 5 || liveBlock["batches"].(float64) != 5 {
		t.Fatalf("live stats after run: %v", liveBlock)
	}
}

func TestSlowlogThresholdEndpoint(t *testing.T) {
	base, s := startServer(t, Config{}, map[string]*graph.Graph{"g": pathOf(4)})

	resp, doc := postJSON(t, base+"/debug/slowlog/threshold", `{"threshold_ms": 0.0001}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, doc)
	}
	if s.slowlog.Threshold() <= 0 {
		t.Fatalf("threshold not applied: %v", s.slowlog.Threshold())
	}
	// Every query now qualifies as slow.
	matchCount(t, base, "g", pathPattern2)
	if s.slowlog.Len() == 0 {
		t.Fatal("query did not reach the slowlog after lowering the threshold")
	}

	resp, _ = postJSON(t, base+"/debug/slowlog/threshold", `{"threshold_ms": -1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative threshold: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, base+"/debug/slowlog/threshold", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing field: %d", resp.StatusCode)
	}
}

package server

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"csce/internal/live"
	"csce/internal/obs"
	"csce/internal/prefilter"
	"csce/internal/shard"
)

// wantsProm reports whether /metrics should answer in Prometheus text
// exposition format: either an explicit ?format=prom or an Accept header
// asking for text/plain (the JSON document stays the default for the
// dashboards that already scrape it).
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// writeProm renders the whole observability surface — counters, gauges,
// per-graph live-ingest stats, and the phase/endpoint latency histograms —
// in Prometheus text exposition format v0.0.4 under the csce_ prefix.
func (s *Server) writeProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	// Monotonic counters, alphabetical for stable scrapes.
	counters := s.metrics.counterDoc()
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		promScalar(bw, "csce_"+k, "counter", counters[k])
	}
	promScalar(bw, "csce_plan_cache_hits", "counter", s.plans.hits.Load())
	promScalar(bw, "csce_plan_cache_misses", "counter", s.plans.misses.Load())

	// Admission pre-filter counters, one sample per cascade filter.
	prefilterFamilies := []struct {
		name string
		get  func(c *prefilterCounters) uint64
	}{
		{"csce_prefilter_checks", func(c *prefilterCounters) uint64 { return c.checks.Load() }},
		{"csce_prefilter_rejects", func(c *prefilterCounters) uint64 { return c.rejects.Load() }},
		{"csce_prefilter_false_admits", func(c *prefilterCounters) uint64 { return c.falseAdmits.Load() }},
	}
	for _, fam := range prefilterFamilies {
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam.name)
		for _, f := range prefilter.Filters() {
			fmt.Fprintf(bw, "%s{filter=%q} %d\n", fam.name, string(f), fam.get(s.metrics.prefilter[f]))
		}
	}

	// Point-in-time gauges.
	promScalar(bw, "csce_in_flight", "gauge", s.adm.inFlight())
	promScalar(bw, "csce_queued", "gauge", s.adm.queued())
	promScalar(bw, "csce_match_slots", "gauge", s.cfg.MatchSlots)
	promScalar(bw, "csce_queue_depth", "gauge", s.cfg.QueueDepth)
	promScalar(bw, "csce_mutate_in_flight", "gauge", s.mutAdm.inFlight())
	promScalar(bw, "csce_mutate_queued", "gauge", s.mutAdm.queued())
	promScalar(bw, "csce_mutate_slots", "gauge", s.cfg.MutateSlots)
	promScalar(bw, "csce_mutate_queue_depth", "gauge", s.cfg.MutateQueueDepth)
	promScalar(bw, "csce_plan_cache_size", "gauge", s.plans.len())
	promScalar(bw, "csce_graphs", "gauge", s.reg.Len())
	promScalar(bw, "csce_slowlog_len", "gauge", s.slowlog.Len())
	promScalar(bw, "csce_slow_query_threshold_seconds", "gauge", s.slowlog.Threshold().Seconds())
	promScalar(bw, "csce_uptime_seconds", "gauge", time.Since(s.started).Seconds())

	// Per-graph live-ingest series. Stats are snapshotted once per graph,
	// then rendered one family at a time so each TYPE header appears once.
	// Sharded graphs render separately below with a shard label.
	entries := s.reg.List()
	liveEntries := make([]*Entry, 0, len(entries))
	liveStats := make(map[string]live.Stats, len(entries))
	for _, e := range entries {
		if e.Live == nil {
			continue
		}
		liveEntries = append(liveEntries, e)
		liveStats[e.Name] = e.Live.Stats()
	}
	liveFamilies := []struct {
		name string
		typ  string
		val  func(st live.Stats) float64
	}{
		{"csce_live_epoch", "gauge", func(st live.Stats) float64 { return float64(st.Epoch) }},
		{"csce_live_last_seq", "gauge", func(st live.Stats) float64 { return float64(st.LastSeq) }},
		{"csce_live_wal_retained", "gauge", func(st live.Stats) float64 { return float64(st.WALRetained) }},
		{"csce_live_wal_truncated", "counter", func(st live.Stats) float64 { return float64(st.WALTruncated) }},
		{"csce_live_batches", "counter", func(st live.Stats) float64 { return float64(st.Batches) }},
		{"csce_live_batches_failed", "counter", func(st live.Stats) float64 { return float64(st.BatchesFailed) }},
		{"csce_live_vertices_added", "counter", func(st live.Stats) float64 { return float64(st.VerticesAdded) }},
		{"csce_live_edges_inserted", "counter", func(st live.Stats) float64 { return float64(st.EdgesInserted) }},
		{"csce_live_edges_deleted", "counter", func(st live.Stats) float64 { return float64(st.EdgesDeleted) }},
		{"csce_live_snapshots_live", "gauge", func(st live.Stats) float64 { return float64(st.SnapshotsLive) }},
		{"csce_live_snapshots_drained", "counter", func(st live.Stats) float64 { return float64(st.SnapshotsDrained) }},
		{"csce_live_subscribers", "gauge", func(st live.Stats) float64 { return float64(st.Subscribers) }},
		{"csce_live_subscribers_opened", "counter", func(st live.Stats) float64 { return float64(st.SubscribersTotal) }},
		{"csce_live_subscribers_dropped", "counter", func(st live.Stats) float64 { return float64(st.SubscribersDropped) }},
		{"csce_live_deltas_delivered", "counter", func(st live.Stats) float64 { return float64(st.DeltasDelivered) }},
		{"csce_live_retractions_delivered", "counter", func(st live.Stats) float64 { return float64(st.RetractionsDelivered) }},
		{"csce_live_subscribers_resumed", "counter", func(st live.Stats) float64 { return float64(st.SubscribersResumed) }},
		{"csce_live_wal_disk_segments", "gauge", func(st live.Stats) float64 { return float64(st.WALDiskSegments) }},
		{"csce_live_wal_disk_bytes", "gauge", func(st live.Stats) float64 { return float64(st.WALDiskBytes) }},
		{"csce_live_wal_fsyncs", "counter", func(st live.Stats) float64 { return float64(st.WALFsyncs) }},
		{"csce_live_wal_checkpoints", "counter", func(st live.Stats) float64 { return float64(st.WALCheckpoints) }},
		{"csce_live_checkpoint_failures", "counter", func(st live.Stats) float64 { return float64(st.CheckpointFailures) }},
		{"csce_live_wal_chain_segments", "gauge", func(st live.Stats) float64 { return float64(st.WALChainSegments) }},
		{"csce_live_wal_chain_bytes", "gauge", func(st live.Stats) float64 { return float64(st.WALChainBytes) }},
		{"csce_live_resume_log_segments", "gauge", func(st live.Stats) float64 { return float64(st.ResumeLogSegments) }},
		{"csce_live_resume_log_bytes", "gauge", func(st live.Stats) float64 { return float64(st.ResumeLogBytes) }},
		{"csce_live_resume_log_rebases", "counter", func(st live.Stats) float64 { return float64(st.ResumeLogRebases) }},
		{"csce_live_resume_log_failures", "counter", func(st live.Stats) float64 { return float64(st.ResumeLogFailures) }},
		{"csce_live_oldest_resumable_seq", "gauge", func(st live.Stats) float64 { return float64(st.OldestResumableSeq) }},
		{"csce_live_snapshot_bytes", "gauge", func(st live.Stats) float64 { return float64(st.SnapshotBytes) }},
		{"csce_live_oldest_pinned_epoch", "gauge", func(st live.Stats) float64 { return float64(st.OldestPinnedEpoch) }},
		{"csce_live_oldest_pinned_age_seconds", "gauge", func(st live.Stats) float64 { return st.OldestPinnedAge }},
	}
	for _, fam := range liveFamilies {
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, e := range liveEntries {
			fmt.Fprintf(bw, "%s{graph=%q} %s\n", fam.name, e.Name, promFloat(fam.val(liveStats[e.Name])))
		}
	}

	// Per-shard series for sharded graphs: one sample per (graph, shard).
	shardStats := make(map[string][]shard.Stats)
	shardNames := make([]string, 0)
	for _, e := range entries {
		if e.Sharded == nil {
			continue
		}
		shardStats[e.Name] = e.Sharded.ShardStats()
		shardNames = append(shardNames, e.Name)
	}
	if len(shardNames) > 0 {
		shardFamilies := []struct {
			name string
			typ  string
			val  func(st shard.Stats) float64
		}{
			{"csce_shard_epoch", "gauge", func(st shard.Stats) float64 { return float64(st.Epoch) }},
			{"csce_shard_vertices", "gauge", func(st shard.Stats) float64 { return float64(st.Vertices) }},
			{"csce_shard_local_vertices", "gauge", func(st shard.Stats) float64 { return float64(st.LocalVertices) }},
			{"csce_shard_edges", "gauge", func(st shard.Stats) float64 { return float64(st.Edges) }},
			{"csce_shard_boundary_edges", "gauge", func(st shard.Stats) float64 { return float64(st.BoundaryEdges) }},
			{"csce_shard_batches", "counter", func(st shard.Stats) float64 { return float64(st.Live.Batches) }},
			{"csce_shard_batches_failed", "counter", func(st shard.Stats) float64 { return float64(st.Live.BatchesFailed) }},
			{"csce_shard_wal_disk_bytes", "gauge", func(st shard.Stats) float64 { return float64(st.Live.WALDiskBytes) }},
		}
		for _, fam := range shardFamilies {
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.typ)
			for _, name := range shardNames {
				for _, st := range shardStats[name] {
					fmt.Fprintf(bw, "%s{graph=%q,shard=\"%d\"} %s\n",
						fam.name, name, st.ID, promFloat(fam.val(st)))
				}
			}
		}
	}

	// Trace-export self-telemetry: the span pipeline is as observable as
	// the queries it describes.
	if s.exporter != nil {
		st := s.exporter.Stats()
		promScalar(bw, "csce_trace_export_queued", "counter", st.Queued)
		promScalar(bw, "csce_trace_export_sent", "counter", st.Sent)
		promScalar(bw, "csce_trace_export_dropped", "counter", st.Dropped)
		promScalar(bw, "csce_trace_export_retries", "counter", st.Retries)
		promScalar(bw, "csce_trace_export_queue_cap", "gauge", s.exporter.QueueCap())
		promHistSnapshot(bw, "csce_trace_export_latency_seconds", "format",
			s.exporter.Format().String(), s.exporter.Latency())
	}
	if s.traceRing != nil {
		promScalar(bw, "csce_trace_ring_len", "gauge", s.traceRing.Len())
	}

	// Runtime-stats gauges from the runtime/metrics collector.
	if rt, ok := s.runtime.Latest(); ok {
		promScalar(bw, "csce_goroutines", "gauge", rt.Goroutines)
		promScalar(bw, "csce_heap_bytes", "gauge", rt.HeapBytes)
		promScalar(bw, "csce_gc_cycles", "counter", rt.GCCycles)
		promScalar(bw, "csce_gc_pause_p50_seconds", "gauge", rt.GCPauseP50/1e3)
		promScalar(bw, "csce_gc_pause_max_seconds", "gauge", rt.GCPauseMax/1e3)
	}

	// Latency histograms.
	promHistFamily(bw, "csce_phase_latency_seconds", "phase", metricsPhases, s.metrics.phases)
	promHistFamily(bw, "csce_endpoint_latency_seconds", "endpoint", metricsEndpoints, s.metrics.endpoints)
	promHistFamily(bw, "csce_wal_latency_seconds", "op", metricsWALOps, s.metrics.wal)
	promHistFamily(bw, "csce_shard_latency_seconds", "stage", metricsShardStages, s.metrics.shard)
}

// promScalar writes one unlabeled sample with its TYPE header.
func promScalar(w io.Writer, name, typ string, v any) {
	fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", name, typ, name, promValue(v))
}

// promValue renders a numeric value without float artifacts for integers.
func promValue(v any) string {
	switch x := v.(type) {
	case uint64:
		return strconv.FormatUint(x, 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case int:
		return strconv.Itoa(x)
	case float64:
		return promFloat(x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// promHistSnapshot writes one single-member histogram family from an
// already-taken snapshot (the exporter owns its histogram; only snapshots
// cross the package boundary).
func promHistSnapshot(w io.Writer, name, label, key string, snap obs.HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	uppers, cum := snap.PromBuckets()
	for i, le := range uppers {
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, key, promFloat(le), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, key, snap.Count)
	fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, label, key, promFloat(snap.SumSeconds()))
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, key, snap.Count)
}

// promHistFamily writes one histogram family with a label per member:
// cumulative _bucket series (le in seconds, closing with +Inf), _sum in
// seconds, and _count.
func promHistFamily(w io.Writer, name, label string, order []string, hists map[string]*obs.Histogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, key := range order {
		h := hists[key]
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		uppers, cum := snap.PromBuckets()
		for i, le := range uppers {
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, key, promFloat(le), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, key, snap.Count)
		fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, label, key, promFloat(snap.SumSeconds()))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, key, snap.Count)
	}
}

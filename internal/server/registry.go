package server

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"csce/internal/core"
	"csce/internal/graph"
)

// Entry is one resident dataset: a clustered engine plus the label table
// patterns must be parsed with. The engine's CCSR store is immutable under
// matching, so a single Entry safely serves any number of concurrent
// queries.
type Entry struct {
	Name     string
	Engine   *core.Engine
	Names    *graph.LabelTable
	Vertices int
	Edges    int
	Clusters int
	Directed bool
	LoadedAt time.Time

	queries atomic.Uint64 // matches served against this graph
}

// Queries returns how many match queries this graph has served.
func (e *Entry) Queries() uint64 { return e.queries.Load() }

// Registry maps dataset names to resident engines. Adding a graph is rare
// (startup, admin); lookups are per-query, so reads take an RLock.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Add registers an engine under a name. The label table is taken from the
// engine; NumericLabels can synthesize one for purely numeric graphs. Add
// fails on duplicate names — replacing a live graph is a snapshot-swap
// problem left to the delta-maintenance roadmap item.
func (r *Registry) Add(name string, engine *core.Engine) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("server: graph name must be non-empty")
	}
	st := engine.Store()
	e := &Entry{
		Name:     name,
		Engine:   engine,
		Names:    engine.Names(),
		Vertices: st.NumVertices(),
		Edges:    st.NumEdges(),
		Clusters: st.NumClusters(),
		Directed: st.Directed(),
		LoadedAt: time.Now(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return nil, fmt.Errorf("server: graph %q already registered", name)
	}
	r.entries[name] = e
	return e, nil
}

// Get returns the entry for a name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// List returns all entries sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// NumericLabels builds an identity label table for a graph whose labels
// are numeric (the synthetic dataset generators): vertex label name "7"
// interns to Label(7), edge label name "3" to EdgeLabel(3), so patterns
// posted in the text format can name labels by their numbers. Attach it to
// the graph before building the engine.
func NumericLabels(g *graph.Graph) *graph.LabelTable {
	t := graph.NewLabelTable()
	maxV := graph.Label(0)
	for _, l := range g.Labels() {
		if l > maxV {
			maxV = l
		}
	}
	for l := graph.Label(0); l <= maxV; l++ {
		t.Vertex(strconv.Itoa(int(l)))
	}
	maxE := graph.EdgeLabel(0)
	g.Edges(func(_, _ graph.VertexID, el graph.EdgeLabel) {
		if el > maxE {
			maxE = el
		}
	})
	// Edge label 0 is pre-interned as the empty name (unlabeled edges).
	for el := graph.EdgeLabel(1); el <= maxE; el++ {
		t.Edge(strconv.Itoa(int(el)))
	}
	return t
}

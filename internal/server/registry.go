package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/shard"
)

// Entry is one resident dataset. A single-store graph is wrapped for live
// mutation through Live: queries pin the current published snapshot
// (lock-free reads against an immutable CCSR store), mutations commit new
// epochs through the same handle. A graph registered sharded has Live nil
// and Sharded set: queries scatter-gather through the coordinator, which
// owns one live.Graph per shard.
type Entry struct {
	Name     string
	Live     *live.Graph        // single-store graphs; nil when sharded
	Sharded  *shard.Coordinator // sharded graphs; nil when single-store
	Names    *graph.LabelTable
	Directed bool
	LoadedAt time.Time

	queries atomic.Uint64 // matches served against this graph
}

// Queries returns how many match queries this graph has served.
func (e *Entry) Queries() uint64 { return e.queries.Load() }

// Epoch returns the currently published snapshot epoch (0 until the first
// mutation commits). A sharded graph has no single epoch — see
// Sharded.EpochVector — so this reports 0.
func (e *Entry) Epoch() uint64 {
	if e.Live == nil {
		return 0
	}
	return e.Live.Epoch()
}

// Counts reads the current snapshot's sizes. They move with mutations, so
// callers get point-in-time values, not registration-time ones. Sharded
// graphs report logical totals (boundary replicas de-duplicated) and no
// cluster count (clusters are per shard).
func (e *Entry) Counts() (vertices, edges, clusters int) {
	if e.Sharded != nil {
		v, ed := e.Sharded.Counts()
		return v, ed, 0
	}
	snap := e.Live.Acquire()
	defer snap.Release()
	st := snap.Store()
	return st.NumVertices(), st.NumEdges(), st.NumClusters()
}

// Registry maps dataset names to resident live graphs. Adding a graph is
// rare (startup, admin); lookups are per-query, so reads take an RLock.
type Registry struct {
	// LiveOpts tunes the live wrapper of subsequently added graphs
	// (subscriber buffers, WAL retention, durability knobs); the server
	// sets it from its config before loading datasets.
	LiveOpts live.Options
	// WALRoot, when non-empty, makes every added graph durable: graph
	// <name> logs to and recovers from WALRoot/<name> (sharded graphs use
	// one subdirectory per shard underneath it).
	WALRoot string
	// ShardObserver receives scatter/local/join durations from every
	// sharded graph's coordinator; the server wires it to its histograms.
	ShardObserver shard.Observer
	// DisablePrefilter turns off the admission gate inside subsequently
	// added sharded coordinators (per-shard signatures are still
	// maintained); the server sets it from Config.DisablePrefilter so a
	// direct Coordinator.Match agrees with the HTTP path.
	DisablePrefilter bool

	mu      sync.RWMutex
	entries map[string]*Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Add registers an engine under a name and wraps it for live mutation.
// With WALRoot set, the graph's durable WAL under WALRoot/<name> is
// replayed first: the entry comes up at the last committed seq and epoch,
// not at the engine's base state. The label table is taken from the live
// writer (after a recovery it includes labels minted by replayed
// mutations); NumericLabels can synthesize one for purely numeric graphs.
// Add fails on duplicate names — replacing a resident graph wholesale is
// still an offline operation; incremental change goes through
// Entry.Live.Mutate.
func (r *Registry) Add(name string, engine *core.Engine) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("server: graph name must be non-empty")
	}
	opts := r.LiveOpts
	if r.WALRoot != "" {
		opts.Durability.Dir = filepath.Join(r.WALRoot, name)
	}
	st := engine.Store()
	lg, err := live.Open(name, engine, opts)
	if err != nil {
		return nil, fmt.Errorf("server: open graph %q: %w", name, err)
	}
	e := &Entry{
		Name:     name,
		Live:     lg,
		Names:    lg.Names(),
		Directed: st.Directed(),
		LoadedAt: time.Now(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		e.Live.Close()
		return nil, fmt.Errorf("server: graph %q already registered", name)
	}
	r.entries[name] = e
	return e, nil
}

// AddSharded registers an engine partitioned into k shards behind a
// scatter-gather coordinator. Each shard wraps its own live.Graph with its
// own WAL directory (WALRoot/<name>/shard-<i> when durable), so mutation
// batches on different shards commit through k independent writers.
func (r *Registry) AddSharded(name string, engine *core.Engine, k int, scheme shard.Scheme) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("server: graph name must be non-empty")
	}
	opts := shard.Options{
		K:                k,
		Scheme:           scheme,
		Live:             r.LiveOpts,
		Observer:         r.ShardObserver,
		DisablePrefilter: r.DisablePrefilter,
	}
	if r.WALRoot != "" {
		opts.WALDir = filepath.Join(r.WALRoot, name)
	}
	st := engine.Store()
	coord, err := shard.Open(name, st, opts)
	if err != nil {
		return nil, fmt.Errorf("server: open sharded graph %q: %w", name, err)
	}
	e := &Entry{
		Name:     name,
		Sharded:  coord,
		Names:    coord.Names(),
		Directed: st.Directed(),
		LoadedAt: time.Now(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		coord.Close()
		return nil, fmt.Errorf("server: graph %q already registered", name)
	}
	r.entries[name] = e
	return e, nil
}

// CloseAll closes every resident live graph (each shard of the sharded
// ones): mutations start failing with ErrClosed and all subscription
// streams end. Shutdown calls it so long-lived subscribe handlers drain
// before the HTTP server waits on them.
func (r *Registry) CloseAll() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if e.Sharded != nil {
			e.Sharded.Close()
			continue
		}
		e.Live.Close()
	}
}

// Get returns the entry for a name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// List returns all entries sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// NumericLabels builds an identity label table for a graph whose labels
// are numeric (the synthetic dataset generators): vertex label name "7"
// interns to Label(7), edge label name "3" to EdgeLabel(3), so patterns
// posted in the text format can name labels by their numbers. Attach it to
// the graph before building the engine.
func NumericLabels(g *graph.Graph) *graph.LabelTable {
	t := graph.NewLabelTable()
	maxV := graph.Label(0)
	for _, l := range g.Labels() {
		if l > maxV {
			maxV = l
		}
	}
	for l := graph.Label(0); l <= maxV; l++ {
		t.Vertex(strconv.Itoa(int(l)))
	}
	maxE := graph.EdgeLabel(0)
	g.Edges(func(_, _ graph.VertexID, el graph.EdgeLabel) {
		if el > maxE {
			maxE = el
		}
	})
	// Edge label 0 is pre-interned as the empty name (unlabeled edges).
	for el := graph.EdgeLabel(1); el <= maxE; el++ {
		t.Edge(strconv.Itoa(int(el)))
	}
	return t
}

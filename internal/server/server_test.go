package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"csce/internal/core"
	"csce/internal/graph"
)

const (
	pathPattern2 = "t undirected\nv 0 0\nv 1 0\ne 0 1\n"
	pathPattern3 = "t undirected\nv 0 0\nv 1 0\nv 2 0\ne 0 1\ne 1 2\n"
	triPattern   = "t undirected\nv 0 0\nv 1 0\nv 2 0\ne 0 1\ne 1 2\ne 0 2\n"
	cliq6Pattern = "t undirected\n" +
		"v 0 0\nv 1 0\nv 2 0\nv 3 0\nv 4 0\nv 5 0\n" +
		"e 0 1\ne 0 2\ne 0 3\ne 0 4\ne 0 5\n" +
		"e 1 2\ne 1 3\ne 1 4\ne 1 5\n" +
		"e 2 3\ne 2 4\ne 2 5\n" +
		"e 3 4\ne 3 5\n" +
		"e 4 5\n"
)

// startServer boots a daemon on a random port with the given graphs and
// tears it down with the test.
func startServer(t *testing.T, cfg Config, graphs map[string]*graph.Graph) (string, *Server) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := New(cfg)
	for name, g := range graphs {
		if g.Names == nil {
			g.Names = NumericLabels(g)
		}
		if _, err := s.Registry().Add(name, core.NewEngine(g)); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return "http://" + addr, s
}

func postMatch(t *testing.T, base, graphName, pattern string, params url.Values) *http.Response {
	t.Helper()
	u := fmt.Sprintf("%s/v1/graphs/%s/match?%s", base, graphName, params.Encode())
	resp, err := http.Post(u, "text/plain", strings.NewReader(pattern))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream consumes an NDJSON match response, returning the embedding
// lines and the trailing summary.
func readStream(t *testing.T, resp *http.Response) (embeddings []map[string]any, summary map[string]any) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if done, _ := doc["done"].(bool); done {
			summary = doc
		} else {
			embeddings = append(embeddings, doc)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return embeddings, summary
}

func getMetrics(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func metric(t *testing.T, doc map[string]any, key string) float64 {
	t.Helper()
	v, ok := doc[key].(float64)
	if !ok {
		t.Fatalf("metric %q missing or not numeric: %v", key, doc[key])
	}
	return v
}

func TestMatchStreamsExactLimit(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"tiny": graph.Clique(12, 0)})
	resp := postMatch(t, base, "tiny", pathPattern3, url.Values{"limit": {"5"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines, summary := readStream(t, resp)
	if len(lines) != 5 {
		t.Fatalf("streamed %d embeddings, want exactly 5", len(lines))
	}
	if summary == nil || summary["limit_hit"] != true {
		t.Fatalf("summary missing or limit_hit unset: %v", summary)
	}
	if got := summary["embeddings"].(float64); got != 5 {
		t.Fatalf("summary counted %v embeddings, want 5", got)
	}
	// Each embedding maps the 3 pattern vertices.
	if emb := lines[0]["embedding"].([]any); len(emb) != 3 {
		t.Fatalf("embedding arity %d, want 3", len(emb))
	}
}

func TestMatchFullEnumerationIsExact(t *testing.T) {
	// path-3 in K12: 12*11*10 ordered mappings.
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"tiny": graph.Clique(12, 0)})
	resp := postMatch(t, base, "tiny", pathPattern3, nil)
	lines, summary := readStream(t, resp)
	if len(lines) != 1320 {
		t.Fatalf("streamed %d embeddings, want 1320", len(lines))
	}
	if summary["limit_hit"] != false || summary["cancelled"] != false {
		t.Fatalf("unexpected summary: %v", summary)
	}
}

func TestPlanCacheHitOnRepeatedPattern(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"tiny": graph.Clique(10, 0)})
	_, first := readStream(t, postMatch(t, base, "tiny", triPattern, url.Values{"limit": {"3"}}))
	if first["plan_cache"] != "miss" {
		t.Fatalf("first query should miss the plan cache: %v", first["plan_cache"])
	}
	_, second := readStream(t, postMatch(t, base, "tiny", triPattern, url.Values{"limit": {"3"}}))
	if second["plan_cache"] != "hit" {
		t.Fatalf("repeated pattern should hit the plan cache: %v", second["plan_cache"])
	}
	m := getMetrics(t, base)
	if metric(t, m, "plan_cache_hits") < 1 {
		t.Fatalf("plan_cache_hits did not move: %v", m)
	}
	if metric(t, m, "plan_cache_size") < 1 {
		t.Fatalf("plan_cache_size did not move: %v", m)
	}
	// A different pattern (or variant) must not share the entry.
	_, other := readStream(t, postMatch(t, base, "tiny", triPattern,
		url.Values{"limit": {"3"}, "variant": {"homo"}}))
	if other["plan_cache"] != "miss" {
		t.Fatalf("different variant must miss the plan cache: %v", other["plan_cache"])
	}
}

func TestTimeoutStopsLargeQueryPromptly(t *testing.T) {
	// Clique-6 in K40 has ~2.8e9 mappings: without cancellation this
	// enumeration runs for hours. MaxLimit is raised so the limit cannot
	// stop it first; only the 50ms deadline can.
	base, _ := startServer(t, Config{MaxLimit: 200_000_000, MaxTimeout: 10 * time.Minute},
		map[string]*graph.Graph{"boom": graph.Clique(40, 0)})
	start := time.Now()
	resp := postMatch(t, base, "boom", cliq6Pattern, url.Values{"timeout_ms": {"50"}})
	_, summary := readStream(t, resp)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("timeout_ms=50 returned after %v; search not stopped", elapsed)
	}
	if summary == nil || summary["timed_out"] != true {
		t.Fatalf("summary missing timed_out: %v", summary)
	}
	m := getMetrics(t, base)
	if metric(t, m, "queries_timed_out") != 1 {
		t.Fatalf("queries_timed_out did not move: %v", m)
	}
	if metric(t, m, "in_flight") != 0 {
		t.Fatalf("query still in flight after timeout: %v", m)
	}
}

func TestClientDisconnectCancelsSearch(t *testing.T) {
	base, s := startServer(t,
		Config{MaxLimit: 200_000_000, DefaultTimeout: 5 * time.Minute, MaxTimeout: 10 * time.Minute},
		map[string]*graph.Graph{"boom": graph.Clique(40, 0)})
	resp := postMatch(t, base, "boom", cliq6Pattern, nil)
	// Read one embedding to be sure the search is live mid-stream, then
	// hang up.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first embedding line: %v", err)
	}
	resp.Body.Close()

	// The handler notices the dead client (context cancellation or write
	// error) and the cooperative flag stops the backtracking loop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := getMetrics(t, base)
		if metric(t, m, "queries_cancelled") >= 1 && metric(t, m, "in_flight") == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("search not cancelled after disconnect: %v (in_flight=%v)",
				m["queries_cancelled"], m["in_flight"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = s
}

func TestAdmissionRejectsWith429WhenQueueFull(t *testing.T) {
	base, _ := startServer(t,
		Config{MatchSlots: 1, QueueDepth: -1, MaxLimit: 200_000_000,
			DefaultTimeout: 5 * time.Minute, MaxTimeout: 10 * time.Minute},
		map[string]*graph.Graph{"boom": graph.Clique(40, 0)})

	// Occupy the only slot with a long-running streaming query.
	hog := postMatch(t, base, "boom", cliq6Pattern, nil)
	defer hog.Body.Close()
	br := bufio.NewReader(hog.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("hog query did not start streaming: %v", err)
	}

	resp := postMatch(t, base, "boom", pathPattern2, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 must carry Retry-After")
	}
	m := getMetrics(t, base)
	if metric(t, m, "queries_rejected") != 1 {
		t.Fatalf("queries_rejected did not move: %v", m)
	}
}

func TestConcurrentMatchesAreExactAndCounted(t *testing.T) {
	base, s := startServer(t, Config{MatchSlots: 4},
		map[string]*graph.Graph{"tiny": graph.Clique(12, 0)})
	want := map[string]int{pathPattern2: 132, pathPattern3: 1320, triPattern: 1320}
	patterns := []string{pathPattern2, pathPattern3, triPattern}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pattern := patterns[i%len(patterns)]
			u := fmt.Sprintf("%s/v1/graphs/tiny/match?workers=%d", base, 1+i%2)
			resp, err := http.Post(u, "text/plain", strings.NewReader(pattern))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			lines := strings.Count(string(body), "\n") - 1 // minus summary
			if lines != want[pattern] {
				errs <- fmt.Errorf("goroutine %d: got %d embeddings, want %d", i, lines, want[pattern])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := getMetrics(t, base)
	if metric(t, m, "queries_ok") != goroutines {
		t.Fatalf("queries_ok = %v, want %d", m["queries_ok"], goroutines)
	}
	if metric(t, m, "embeddings_emitted") == 0 || metric(t, m, "exec_steps") == 0 {
		t.Fatalf("work counters did not move: %v", m)
	}
	ent, _ := s.Registry().Get("tiny")
	if ent.Queries() != goroutines {
		t.Fatalf("registry counted %d queries, want %d", ent.Queries(), goroutines)
	}
}

func TestGraphsAndHealthEndpoints(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{
		"a": graph.Clique(5, 0),
		"b": graph.Clique(6, 0),
	})
	resp, err := http.Get(base + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices int    `json:"vertices"`
			Clusters int    `json:"clusters"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(doc.Graphs) != 2 || doc.Graphs[0].Name != "a" || doc.Graphs[1].Name != "b" {
		t.Fatalf("graph list wrong: %+v", doc.Graphs)
	}
	if doc.Graphs[0].Vertices != 5 || doc.Graphs[0].Clusters == 0 {
		t.Fatalf("graph stats wrong: %+v", doc.Graphs[0])
	}

	h, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", h.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"tiny": graph.Clique(5, 0)})
	cases := []struct {
		name    string
		graph   string
		pattern string
		params  url.Values
		status  int
	}{
		{"unknown graph", "nope", pathPattern2, nil, http.StatusNotFound},
		{"bad pattern", "tiny", "not a graph", nil, http.StatusBadRequest},
		{"bad variant", "tiny", pathPattern2, url.Values{"variant": {"zig"}}, http.StatusBadRequest},
		{"bad limit", "tiny", pathPattern2, url.Values{"limit": {"x"}}, http.StatusBadRequest},
		{"directedness mismatch", "tiny", "t directed\nv 0 0\nv 1 0\ne 0 1\n", nil, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postMatch(t, base, tc.graph, tc.pattern, tc.params)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	m := getMetrics(t, base)
	if metric(t, m, "queries_bad_request") != float64(len(cases)) {
		t.Fatalf("queries_bad_request = %v, want %d", m["queries_bad_request"], len(cases))
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	base, s := startServer(t, Config{MaxLimit: 200_000_000,
		DefaultTimeout: 5 * time.Minute, MaxTimeout: 10 * time.Minute},
		map[string]*graph.Graph{"boom": graph.Clique(40, 0)})

	resp := postMatch(t, base, "boom", cliq6Pattern, nil)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	// The drain budget expires with the query still streaming; Shutdown
	// then closes the listener, which cancels the query's context and the
	// cooperative flag stops the search — the daemon never hangs on exit.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v", elapsed)
	}
}
